module specmine

go 1.23
