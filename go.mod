module specmine

go 1.24
