// Package plan is the cost-aware query planner for rule verification and
// selective mining. The batched verifier answers every rule on every trace;
// the planner uses index statistics — exact per-event trace supports from a
// PositionIndex in memory, summed per-segment statistics out of core — to
// decide, per rule and per trace, how much of that work is provably dead
// before any of it runs:
//
//   - every rule's premise and consequent events become presence probes,
//     ordered rarest-first (ascending estimated trace support, ties by event
//     id), so the probe most likely to kill a rule runs first;
//   - a rule whose premise probe fails is trivially satisfied on the trace
//     (verify.ActionSatisfied); one whose consequent probe fails skips the
//     consequent machinery and violates every temporal point
//     (verify.ActionShortCircuit); a trace on which every rule is gated is
//     answered from the probes alone, without touching position data;
//   - segment-level statistics install the same decisions for a whole
//     segment at once (SetSegmentHints), extending the all-or-nothing
//     SegmentSkippable skip to per-rule granularity.
//
// Probe order affects only which probe fires first — never the reported
// output: reports are keyed by rule, traces are processed in order, and the
// gated outcomes reproduce exactly what full evaluation would have reported
// (the equivalence suite pins byte-identity against the online automaton,
// including under adversarially wrong statistics). Every run accumulates
// verify.Metrics and can render an Explain comparing estimated and actual
// selectivities.
package plan

import (
	"sort"

	"specmine/internal/seqdb"
	"specmine/internal/verify"
)

// Stats supplies the per-event trace supports the planner orders probes by.
// Estimates may be arbitrarily wrong — ordering is a performance decision,
// not a correctness one — but exact counts give the best probe order.
type Stats interface {
	// NumTraces is the trace population the supports are measured over.
	NumTraces() int
	// EventTraces estimates the number of traces containing e. Ids outside
	// the measured space must read as 0 (an absent event is the best gate).
	EventTraces(e seqdb.EventID) int
}

// IndexStats adapts a PositionIndex's exact per-event sequence supports.
type IndexStats struct{ Idx *seqdb.PositionIndex }

// NumTraces implements Stats.
func (s IndexStats) NumTraces() int { return s.Idx.NumSequences() }

// EventTraces implements Stats.
func (s IndexStats) EventTraces(e seqdb.EventID) int {
	if e < 0 || int(e) >= s.Idx.NumEvents() {
		return 0
	}
	return s.Idx.EventSeqSupport(e)
}

// SupportStats is a Stats over a precomputed per-event trace-support array —
// the shape out-of-core callers sum from per-segment statistics.
type SupportStats struct {
	Sup    []int64
	Traces int
}

// NumTraces implements Stats.
func (s SupportStats) NumTraces() int { return s.Traces }

// EventTraces implements Stats.
func (s SupportStats) EventTraces(e seqdb.EventID) int {
	if e < 0 || int(e) >= len(s.Sup) {
		return 0
	}
	return int(s.Sup[e])
}

// probe is one presence test: an event plus its estimated trace support at
// plan time (kept for Explain's estimated-versus-actual comparison).
type probe struct {
	ev  seqdb.EventID
	est int
}

// Planner is a rule set's compiled probe plan: per premise group and per
// distinct consequent, the distinct events to probe in rarest-first order.
// Rules sharing a premise (group) or consequent share the probe list and its
// per-trace memoised outcome. A Planner is immutable after New and safe for
// concurrent use; each concurrent evaluation owns a Run.
type Planner struct {
	engine    *verify.Engine
	numTraces int

	groupOf     []int32 // per rule: premise group
	postOf      []int32 // per rule: distinct-consequent index
	groupProbes [][]probe
	postProbes  [][]probe
	probeSpace  int // event-id space the probe scratch must cover
}

// New compiles the probe plan for engine's rule set under stats.
func New(engine *verify.Engine, stats Stats) *Planner {
	nr := engine.NumRules()
	p := &Planner{
		engine:      engine,
		numTraces:   stats.NumTraces(),
		groupOf:     make([]int32, nr),
		postOf:      make([]int32, nr),
		groupProbes: make([][]probe, engine.NumPremiseGroups()),
		postProbes:  make([][]probe, engine.NumDistinctPosts()),
	}
	for r := 0; r < nr; r++ {
		grp, pi := engine.RuleGroup(r), engine.RulePost(r)
		p.groupOf[r], p.postOf[r] = int32(grp), int32(pi)
		rule := engine.Rule(r)
		if p.groupProbes[grp] == nil {
			p.groupProbes[grp] = p.probeOrder(rule.Pre, stats)
		}
		if p.postProbes[pi] == nil {
			p.postProbes[pi] = p.probeOrder(rule.Post, stats)
		}
	}
	return p
}

// probeOrder deduplicates pat's events and sorts them rarest-first: ascending
// estimated trace support, ties broken by event id so the order — and hence
// every downstream counter — is deterministic for any Stats.
func (p *Planner) probeOrder(pat seqdb.Pattern, stats Stats) []probe {
	probes := make([]probe, 0, len(pat))
	for _, ev := range pat {
		dup := false
		for _, pr := range probes {
			if pr.ev == ev {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		probes = append(probes, probe{ev: ev, est: stats.EventTraces(ev)})
		if int(ev) >= p.probeSpace {
			p.probeSpace = int(ev) + 1
		}
	}
	sort.SliceStable(probes, func(i, j int) bool {
		if probes[i].est != probes[j].est {
			return probes[i].est < probes[j].est
		}
		return probes[i].ev < probes[j].ev
	})
	return probes
}

// Engine returns the compiled verification engine the plan drives.
func (p *Planner) Engine() *verify.Engine { return p.engine }

// Run is one evaluation pass over an index: per-trace probe memos, the
// per-rule action vector, the indexed checker, and the accumulated counters.
// Not safe for concurrent use; create one per goroutine.
type Run struct {
	p   *Planner
	idx *seqdb.PositionIndex
	ck  *verify.IndexedChecker

	epoch      uint32
	presStamp  []uint32 // per event id: presence memo for the current trace
	present    []bool
	groupStamp []uint32 // per premise group: gate memo
	groupDead  []bool
	postStamp  []uint32 // per distinct consequent: gate memo
	postDead   []bool

	hintGroupDead []bool // segment-level hints; nil until SetSegmentHints
	hintPostDead  []bool

	actions []verify.RuleAction

	// Metrics accumulates across every CheckTrace of this run.
	Metrics verify.Metrics

	// Per-rule actuals for Explain.
	ruleGated []int64
	ruleShort []int64
	ruleEval  []int64
}

// NewRun returns an evaluation pass over idx.
func (p *Planner) NewRun(idx *seqdb.PositionIndex) *Run {
	nr := p.engine.NumRules()
	return &Run{
		p:          p,
		idx:        idx,
		ck:         p.engine.NewIndexedChecker(idx),
		presStamp:  make([]uint32, p.probeSpace),
		present:    make([]bool, p.probeSpace),
		groupStamp: make([]uint32, len(p.groupProbes)),
		groupDead:  make([]bool, len(p.groupProbes)),
		postStamp:  make([]uint32, len(p.postProbes)),
		postDead:   make([]bool, len(p.postProbes)),
		actions:    make([]verify.RuleAction, nr),
		ruleGated:  make([]int64, nr),
		ruleShort:  make([]int64, nr),
		ruleEval:   make([]int64, nr),
	}
}

// Rebind points the run at another index (the next segment's fragment in
// out-of-core sweeps), keeping its accumulated counters. Any segment hints
// are cleared; install the new segment's with SetSegmentHints.
func (r *Run) Rebind(idx *seqdb.PositionIndex) {
	r.idx = idx
	r.ck.SetIndex(idx)
	r.hintGroupDead = nil
	r.hintPostDead = nil
}

// SetSegmentHints installs segment-level knowledge: any premise group or
// consequent with a probe event mayContain rules out is dead for every trace
// until the next Rebind, without per-trace probing. mayContain may
// overapproximate (bloom filters); false positives only lose gates.
func (r *Run) SetSegmentHints(mayContain func(seqdb.EventID) bool) {
	if r.hintGroupDead == nil {
		r.hintGroupDead = make([]bool, len(r.p.groupProbes))
		r.hintPostDead = make([]bool, len(r.p.postProbes))
	}
	dead := func(probes []probe) bool {
		for _, pr := range probes {
			if !mayContain(pr.ev) {
				return true
			}
		}
		return false
	}
	for g, probes := range r.p.groupProbes {
		r.hintGroupDead[g] = dead(probes)
	}
	for pi, probes := range r.p.postProbes {
		r.hintPostDead[pi] = dead(probes)
	}
}

// CheckTrace evaluates every rule against trace s of the run's index,
// reporting it as sequence seq in reports (from the engine's NewReports).
// Rules are gated through the probe plan first; a trace every rule is gated
// on is answered without touching position data. The folded reports are
// byte-identical to full evaluation of the same trace.
func (r *Run) CheckTrace(s, seq int, reports []verify.RuleReport) {
	seqdb.BumpEpoch(&r.epoch, r.presStamp, r.groupStamp, r.postStamp)
	p := r.p
	allGated := len(r.actions) > 0
	for i := range r.actions {
		a := verify.ActionEvaluate
		switch {
		case r.groupIsDead(s, p.groupOf[i]):
			a = verify.ActionSatisfied
			r.Metrics.RuleTraceGates++
			r.ruleGated[i]++
		case r.postIsDead(s, p.postOf[i]):
			a = verify.ActionShortCircuit
			r.Metrics.ConsequentShortCircuits++
			r.ruleShort[i]++
			allGated = false
		default:
			r.ruleEval[i]++
			allGated = false
		}
		r.actions[i] = a
	}
	if allGated {
		verify.AccountSkippedTraces(reports, 1)
		r.Metrics.TracesSkipped++
		return
	}
	r.Metrics.TracesChecked++
	r.ck.CheckSeq(s, seq, r.actions, reports)
}

// groupIsDead reports (memoised per trace) whether premise group g cannot
// complete in trace s: a segment hint says so, or a rarest-first presence
// probe fails.
func (r *Run) groupIsDead(s int, g int32) bool {
	if r.groupStamp[g] == r.epoch {
		return r.groupDead[g]
	}
	dead := r.hintGroupDead != nil && r.hintGroupDead[g]
	if !dead {
		for _, pr := range r.p.groupProbes[g] {
			if !r.eventPresent(s, pr.ev) {
				dead = true
				break
			}
		}
	}
	r.groupDead[g] = dead
	r.groupStamp[g] = r.epoch
	return dead
}

// postIsDead is groupIsDead for distinct consequent pi.
func (r *Run) postIsDead(s int, pi int32) bool {
	if r.postStamp[pi] == r.epoch {
		return r.postDead[pi]
	}
	dead := r.hintPostDead != nil && r.hintPostDead[pi]
	if !dead {
		for _, pr := range r.p.postProbes[pi] {
			if !r.eventPresent(s, pr.ev) {
				dead = true
				break
			}
		}
	}
	r.postDead[pi] = dead
	r.postStamp[pi] = r.epoch
	return dead
}

// eventPresent is the memoised presence probe.
func (r *Run) eventPresent(s int, ev seqdb.EventID) bool {
	if r.presStamp[ev] == r.epoch {
		return r.present[ev]
	}
	r.Metrics.ProbesIssued++
	ok := r.idx.SeqContains(s, ev)
	r.present[ev] = ok
	r.presStamp[ev] = r.epoch
	return ok
}

// CheckDatabase evaluates the plan over every trace of db and returns the
// per-rule reports — byte-identical to the engine's unplanned Check — along
// with the Run carrying the counters and Explain.
func (p *Planner) CheckDatabase(db *seqdb.Database) ([]verify.RuleReport, *Run) {
	reports := p.engine.NewReports()
	run := p.NewRun(db.FlatIndex())
	for si := range db.Sequences {
		run.CheckTrace(si, si, reports)
	}
	return reports, run
}
