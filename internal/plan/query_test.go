package plan

import (
	"math/rand"
	"reflect"
	"testing"

	"specmine/internal/seqdb"
)

// drain pulls an Iter to exhaustion.
func drain(it Iter) []int {
	var out []int
	for v := it.Next(); v >= 0; v = it.Next() {
		out = append(out, v)
	}
	return out
}

// bruteSelect is the oracle: per-trace MatchesSeq over an ordinal scan.
func bruteSelect(idx *seqdb.PositionIndex, w Where) []int {
	var out []int
	for s := 0; s < idx.NumSequences(); s++ {
		if w.MatchesSeq(idx, s, s) {
			out = append(out, s)
		}
	}
	return out
}

func queryFixture() (*seqdb.Dictionary, *seqdb.Database) {
	d := seqdb.NewDictionary()
	db := seqdb.NewDatabaseWithDict(d)
	db.AppendNames("open", "use", "close")  // 0
	db.AppendNames("open", "use")           // 1
	db.AppendNames("ping")                  // 2
	db.AppendNames("open", "ping", "close") // 3
	db.AppendNames("use", "use")            // 4
	db.AppendNames("close")                 // 5
	return d, db
}

func TestCompileWhereMatchesBruteForce(t *testing.T) {
	d, db := queryFixture()
	idx := db.FlatIndex()
	open, use, close_, ping := d.Lookup("open"), d.Lookup("use"), d.Lookup("close"), d.Lookup("ping")

	cases := []struct {
		name   string
		w      Where
		driver string
	}{
		{"all", Where{}, "scan"},
		{"window", Where{From: 1, To: 4}, "scan"},
		{"window-open-end", Where{From: 3}, "scan"},
		{"ids", Where{IDs: []int{5, 0, 3, 3, 99, -2}}, "ids"},
		{"ids-windowed", Where{IDs: []int{0, 1, 2, 3}, From: 2}, "ids"},
		{"has-all-one", Where{HasAll: []seqdb.EventID{open}}, "postings"},
		{"has-all-two", Where{HasAll: []seqdb.EventID{open, close_}}, "postings"},
		{"has-all-windowed", Where{HasAll: []seqdb.EventID{use}, To: 2}, "postings"},
		{"has-any", Where{HasAny: []seqdb.EventID{ping, close_}}, "scan"},
		{"all-and-any", Where{HasAll: []seqdb.EventID{open}, HasAny: []seqdb.EventID{use, ping}}, "postings"},
		{"ids-with-events", Where{IDs: []int{0, 1, 2, 3, 4}, HasAll: []seqdb.EventID{use}}, "ids"},
		{"unknown-event", Where{HasAll: []seqdb.EventID{seqdb.EventID(99)}}, "empty"},
		{"negative-event", Where{HasAll: []seqdb.EventID{seqdb.EventID(-1)}}, "empty"},
	}
	for _, tc := range cases {
		it, exp := CompileWhere(idx, tc.w)
		got := drain(it)
		want := bruteSelect(idx, tc.w)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: selected %v want %v", tc.name, got, want)
		}
		if exp.Driver != tc.driver {
			t.Errorf("%s: driver %q want %q", tc.name, exp.Driver, tc.driver)
		}
	}
}

// TestCompileWhereRarestDriver: the postings driver must be the HasAll event
// with the smallest support.
func TestCompileWhereRarestDriver(t *testing.T) {
	d, db := queryFixture()
	idx := db.FlatIndex()
	open, ping := d.Lookup("open"), d.Lookup("ping") // support 3 vs 2
	_, exp := CompileWhere(idx, Where{HasAll: []seqdb.EventID{open, ping}})
	if exp.Driver != "postings" || exp.DriverEvent != ping {
		t.Fatalf("driver %q event %v, want postings on ping", exp.Driver, exp.DriverEvent)
	}
	if exp.EstTraces != 2 {
		t.Fatalf("EstTraces = %d want 2", exp.EstTraces)
	}
	if exp.Filters == 0 {
		t.Fatalf("residual HasAll event must register a filter")
	}
}

func TestCompileWhereRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 40; iter++ {
		db := seqdb.NewDatabase()
		alphabet := 2 + rng.Intn(5)
		for i := 0; i < alphabet; i++ {
			db.Dict.Intern(string(rune('a' + i)))
		}
		for i := 0; i < rng.Intn(12); i++ {
			n := 1 + rng.Intn(6)
			s := make(seqdb.Sequence, n)
			for j := range s {
				s[j] = seqdb.EventID(rng.Intn(alphabet))
			}
			db.Append(s)
		}
		idx := db.FlatIndex()
		w := Where{}
		for i := 0; i < rng.Intn(3); i++ {
			w.HasAll = append(w.HasAll, seqdb.EventID(rng.Intn(alphabet+1)))
		}
		for i := 0; i < rng.Intn(3); i++ {
			w.HasAny = append(w.HasAny, seqdb.EventID(rng.Intn(alphabet+1)))
		}
		if rng.Intn(2) == 0 {
			w.From = rng.Intn(idx.NumSequences() + 2)
			w.To = rng.Intn(idx.NumSequences() + 2)
		}
		if rng.Intn(3) == 0 {
			for i := 0; i < rng.Intn(5); i++ {
				w.IDs = append(w.IDs, rng.Intn(idx.NumSequences()+3)-1)
			}
		}
		it, _ := CompileWhere(idx, w)
		got := drain(it)
		want := bruteSelect(idx, w)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("iter %d: where %+v selected %v want %v", iter, w, got, want)
		}
	}
}

func TestWhereOrdinalHelpers(t *testing.T) {
	w := Where{From: 10, To: 20}
	if w.OrdinalOverlap(0, 10) || !w.OrdinalOverlap(5, 6) || !w.OrdinalOverlap(19, 5) || w.OrdinalOverlap(20, 5) {
		t.Fatal("window overlap wrong")
	}
	if got := w.CountOrdinalMatches(5, 10); got != 5 { // ordinals 10..14
		t.Fatalf("CountOrdinalMatches(5,10) = %d want 5", got)
	}
	if got := w.CountOrdinalMatches(0, 100); got != 10 {
		t.Fatalf("CountOrdinalMatches(0,100) = %d want 10", got)
	}
	wid := Where{IDs: []int{3, 7, 7, 42}, From: 4}
	if !wid.OrdinalOverlap(0, 10) || wid.OrdinalOverlap(8, 10) {
		t.Fatal("id-list overlap wrong")
	}
	if got := wid.CountOrdinalMatches(0, 10); got != 1 { // only 7 (3 < From, dup ignored)
		t.Fatalf("id CountOrdinalMatches = %d want 1", got)
	}
	if !(Where{}).Trivial() || (Where{From: 1}).Trivial() {
		t.Fatal("Trivial wrong")
	}
}
