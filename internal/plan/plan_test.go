package plan

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"specmine/internal/rules"
	"specmine/internal/seqdb"
	"specmine/internal/tracesim"
	"specmine/internal/verify"
)

// invertedStats is an adversarially wrong Stats: it reports every support as
// the complement of the truth, so the planner probes the *commonest* event
// first and its estimates are maximally misleading. Output must not change.
type invertedStats struct{ idx *seqdb.PositionIndex }

func (s invertedStats) NumTraces() int { return s.idx.NumSequences() }
func (s invertedStats) EventTraces(e seqdb.EventID) int {
	if e < 0 || int(e) >= s.idx.NumEvents() {
		return 0
	}
	return s.idx.NumSequences() - s.idx.EventSeqSupport(e)
}

// constStats claims every event occurs everywhere, collapsing the probe order
// to plain event-id order.
type constStats struct{ n int }

func (s constStats) NumTraces() int                { return s.n }
func (s constStats) EventTraces(seqdb.EventID) int { return s.n }

// checkPlannerMatchesOnline asserts that the planned evaluation — under every
// supplied statistics source — produces reports byte-identical to the online
// automaton, and that the run's trace accounting adds up.
func checkPlannerMatchesOnline(t *testing.T, label string, db *seqdb.Database, ruleSet []rules.Rule) {
	t.Helper()
	engine, err := verify.NewEngine(ruleSet)
	if err != nil {
		t.Fatalf("%s: NewEngine: %v", label, err)
	}
	want := engine.Check(db)
	idx := db.FlatIndex()
	for statsName, stats := range map[string]Stats{
		"exact":    IndexStats{Idx: idx},
		"inverted": invertedStats{idx: idx},
		"const":    constStats{n: idx.NumSequences()},
	} {
		p := New(engine, stats)
		got, run := p.CheckDatabase(db)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s/%s: planned reports diverge from online automaton:\n got %+v\nwant %+v",
				label, statsName, got, want)
		}
		m := run.Metrics
		if m.TracesChecked+m.TracesSkipped != int64(db.NumSequences()) {
			t.Fatalf("%s/%s: trace accounting %d+%d != %d",
				label, statsName, m.TracesChecked, m.TracesSkipped, db.NumSequences())
		}
		perRule := int64(db.NumSequences()) * int64(len(ruleSet))
		if m.RuleTraceGates+m.ConsequentShortCircuits > perRule {
			t.Fatalf("%s/%s: gates %d + short-circuits %d exceed rule-trace pairs %d",
				label, statsName, m.RuleTraceGates, m.ConsequentShortCircuits, perRule)
		}
	}
}

func minedRules(t *testing.T, db *seqdb.Database) []rules.Rule {
	t.Helper()
	for _, opts := range []rules.Options{
		{MinSeqSupportRel: 0.9, MinInstanceSupport: 1, MinConfidence: 0.9,
			MaxPremiseLength: 2, MaxConsequentLength: 2},
		{MinSeqSupportRel: 0.5, MinInstanceSupport: 1, MinConfidence: 0.8,
			MaxPremiseLength: 2, MaxConsequentLength: 2},
	} {
		res, err := rules.MineNonRedundant(db, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rules) > 0 {
			return res.Rules
		}
	}
	return nil
}

func TestPlannerMatchesOnlineOnWorkloads(t *testing.T) {
	for name, w := range tracesim.Workloads() {
		train := w.MustGenerate(30, 7)
		ruleSet := minedRules(t, train)
		if len(ruleSet) == 0 {
			t.Fatalf("%s: no rules mined", name)
		}
		checkPlannerMatchesOnline(t, name, train, ruleSet)
	}
}

// TestPlannerMatchesOnlineRandomized drives randomized rule sets — events the
// traces never contain included — through exact, inverted and constant
// statistics. Wrong estimates may cost probes, never answers.
func TestPlannerMatchesOnlineRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for iter := 0; iter < 60; iter++ {
		db := seqdb.NewDatabase()
		alphabet := 3 + rng.Intn(4)
		for i := 0; i < alphabet+1; i++ {
			db.Dict.Intern(string(rune('a' + i)))
		}
		for i := 0; i < 2+rng.Intn(5); i++ {
			n := 1 + rng.Intn(14)
			s := make(seqdb.Sequence, n)
			for j := range s {
				s[j] = seqdb.EventID(rng.Intn(alphabet))
			}
			db.Append(s)
		}
		var ruleSet []rules.Rule
		for r := 0; r < 1+rng.Intn(8); r++ {
			pre := make(seqdb.Pattern, 1+rng.Intn(3))
			for j := range pre {
				pre[j] = seqdb.EventID(rng.Intn(alphabet + 1))
			}
			post := make(seqdb.Pattern, 1+rng.Intn(3))
			for j := range post {
				post[j] = seqdb.EventID(rng.Intn(alphabet + 1))
			}
			ruleSet = append(ruleSet, rules.Rule{Pre: pre, Post: post})
		}
		checkPlannerMatchesOnline(t, "random", db, ruleSet)
	}
}

// TestPlannerProbeOrder pins the rarest-first ordering and its tie-break.
func TestPlannerProbeOrder(t *testing.T) {
	d := seqdb.NewDictionary()
	db := seqdb.NewDatabaseWithDict(d)
	// a in 3 traces, b in 2, c in 1, d in 3.
	db.AppendNames("a", "b", "c", "d")
	db.AppendNames("a", "b", "d")
	db.AppendNames("a", "d")
	ruleSet := []rules.Rule{{
		Pre:  seqdb.ParsePattern(d, "a b c"),
		Post: seqdb.ParsePattern(d, "d a"),
	}}
	engine, err := verify.NewEngine(ruleSet)
	if err != nil {
		t.Fatal(err)
	}
	p := New(engine, IndexStats{Idx: db.FlatIndex()})
	wantPre := []seqdb.EventID{d.Lookup("c"), d.Lookup("b"), d.Lookup("a")}
	gotPre := p.groupProbes[p.groupOf[0]]
	for i, ev := range wantPre {
		if gotPre[i].ev != ev {
			t.Fatalf("premise probe %d = %v want %v (order %v)", i, gotPre[i].ev, ev, gotPre)
		}
	}
	// d and a both have support 3: the tie breaks on ascending event id, and
	// a was interned before d.
	gotPost := p.postProbes[p.postOf[0]]
	if gotPost[0].ev != d.Lookup("a") || gotPost[1].ev != d.Lookup("d") {
		t.Fatalf("consequent probes %v: want [a d] (support tie broken by id)", gotPost)
	}
}

// TestPlannerSegmentHints: hints must produce the same answers as per-trace
// probing (here: hints claiming an event absent that per-trace probes would
// also rule out), and a hint-dead group must not issue probes.
func TestPlannerSegmentHints(t *testing.T) {
	d := seqdb.NewDictionary()
	db := seqdb.NewDatabaseWithDict(d)
	db.AppendNames("x", "y")
	db.AppendNames("x", "y", "x")
	ruleSet := []rules.Rule{
		{Pre: seqdb.ParsePattern(d, "a"), Post: seqdb.ParsePattern(d, "b")}, // a,b never occur
		{Pre: seqdb.ParsePattern(d, "x"), Post: seqdb.ParsePattern(d, "y")},
	}
	engine, err := verify.NewEngine(ruleSet)
	if err != nil {
		t.Fatal(err)
	}
	idx := db.FlatIndex()
	want := engine.Check(db)

	p := New(engine, IndexStats{Idx: idx})
	run := p.NewRun(idx)
	run.SetSegmentHints(func(e seqdb.EventID) bool { return idx.EventSeqSupport(e) > 0 })
	got := engine.NewReports()
	for s := range db.Sequences {
		run.CheckTrace(s, s, got)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("hinted reports diverge:\n got %+v\nwant %+v", got, want)
	}
	// Rule 0's premise group is hint-dead: only rule 1's probes (x, y) should
	// have been issued, once per trace each.
	if run.Metrics.ProbesIssued != 4 {
		t.Fatalf("ProbesIssued = %d, want 4 (hints must suppress dead groups' probes)", run.Metrics.ProbesIssued)
	}
	if run.Metrics.RuleTraceGates != 2 {
		t.Fatalf("RuleTraceGates = %d, want 2", run.Metrics.RuleTraceGates)
	}
}

// TestPlannerExplain checks the counters and render of a run's Explain.
func TestPlannerExplain(t *testing.T) {
	d := seqdb.NewDictionary()
	db := seqdb.NewDatabaseWithDict(d)
	db.AppendNames("open", "use", "close")
	db.AppendNames("open", "use") // violates open->close at its temporal point
	db.AppendNames("ping")        // neither rule applies
	ruleSet := []rules.Rule{
		{Pre: seqdb.ParsePattern(d, "open"), Post: seqdb.ParsePattern(d, "close")},
	}
	engine, err := verify.NewEngine(ruleSet)
	if err != nil {
		t.Fatal(err)
	}
	p := New(engine, IndexStats{Idx: db.FlatIndex()})
	_, run := p.CheckDatabase(db)
	ex := run.Explain()
	if ex.PlannedTraces != 3 || len(ex.Rules) != 1 {
		t.Fatalf("Explain header: %+v", ex)
	}
	rp := ex.Rules[0]
	if rp.Gated != 1 || rp.ShortCircuited != 1 || rp.Evaluated != 1 {
		t.Fatalf("rule partition gated=%d short=%d eval=%d, want 1/1/1", rp.Gated, rp.ShortCircuited, rp.Evaluated)
	}
	if got := rp.ActualSelectivity(); got != 2.0/3.0 {
		t.Fatalf("ActualSelectivity = %v, want 2/3", got)
	}
	out := ex.Render(d)
	for _, want := range []string{"query plan: 1 rule(s) over 3 planned trace(s)", "open", "close", "gated=1", "rule-trace gates=1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render missing %q:\n%s", want, out)
		}
	}
}
