package plan

import (
	"fmt"
	"strings"

	"specmine/internal/rules"
	"specmine/internal/seqdb"
	"specmine/internal/verify"
)

// Probe is one presence test in a rule's plan, with the trace support the
// planner estimated for it at plan time.
type Probe struct {
	Event     seqdb.EventID
	EstTraces int
}

// RulePlan is the per-rule slice of an Explain: the chosen probe orders, the
// estimated premise selectivity they imply, and what actually happened.
type RulePlan struct {
	Rule rules.Rule

	// PremiseProbes and ConsequentProbes are in execution (rarest-first) order.
	PremiseProbes    []Probe
	ConsequentProbes []Probe

	// EstSelectivity is the planner's estimate of the fraction of traces that
	// survive the premise gate: the rarest premise event's support over the
	// planned trace population (1 when the population is empty).
	EstSelectivity float64

	// Gated, ShortCircuited and Evaluated partition the traces this rule saw.
	// ActualSelectivity — (ShortCircuited+Evaluated)/total — is what
	// EstSelectivity estimated.
	Gated          int64
	ShortCircuited int64
	Evaluated      int64
}

// ActualSelectivity returns the measured fraction of traces that survived the
// premise gate, or 1 when the rule saw no traces.
func (rp *RulePlan) ActualSelectivity() float64 {
	total := rp.Gated + rp.ShortCircuited + rp.Evaluated
	if total == 0 {
		return 1
	}
	return float64(rp.ShortCircuited+rp.Evaluated) / float64(total)
}

// SelectionExplain describes how a Where predicate was compiled: which
// operator drives trace enumeration and how many candidates it was estimated
// to yield before residual filters.
type SelectionExplain struct {
	// Driver is "scan" (ordinal range), "ids" (explicit list), "postings"
	// (the rarest required event's postings), or "empty" (provably no trace
	// matches).
	Driver string
	// DriverEvent is the event whose postings drive enumeration; valid only
	// when Driver is "postings".
	DriverEvent seqdb.EventID
	// EstTraces is the driver's cardinality estimate before residual filters.
	EstTraces int
	// Filters counts residual predicates applied to each candidate.
	Filters int
}

// Explain is the human- and machine-readable account of one planned query:
// the chosen probe orders, estimated versus actual selectivities, gating
// counters, and — for out-of-core or predicated queries — segment pruning and
// the selection operator tree.
type Explain struct {
	// PlannedTraces is the trace population the statistics were measured over.
	PlannedTraces int
	Rules         []RulePlan
	Metrics       verify.Metrics

	// SegmentsPruned / SegmentsTotal count catalog segments answered (or
	// discarded) from statistics alone. Zero outside out-of-core queries.
	SegmentsPruned int
	SegmentsTotal  int

	// Selection is set when the query carried a Where predicate.
	Selection *SelectionExplain
}

// Explain snapshots the run's counters into a plan report. Call it after the
// pass completes; segment and selection fields are the caller's to fill.
func (r *Run) Explain() *Explain {
	p := r.p
	ex := &Explain{
		PlannedTraces: p.numTraces,
		Rules:         make([]RulePlan, len(r.p.groupOf)),
		Metrics:       r.Metrics,
	}
	for i := range ex.Rules {
		rp := &ex.Rules[i]
		rp.Rule = p.engine.Rule(i)
		rp.PremiseProbes = exportProbes(p.groupProbes[p.groupOf[i]])
		rp.ConsequentProbes = exportProbes(p.postProbes[p.postOf[i]])
		rp.EstSelectivity = 1
		if p.numTraces > 0 && len(rp.PremiseProbes) > 0 {
			rp.EstSelectivity = float64(rp.PremiseProbes[0].EstTraces) / float64(p.numTraces)
		}
		rp.Gated = r.ruleGated[i]
		rp.ShortCircuited = r.ruleShort[i]
		rp.Evaluated = r.ruleEval[i]
	}
	return ex
}

func exportProbes(probes []probe) []Probe {
	out := make([]Probe, len(probes))
	for i, pr := range probes {
		out[i] = Probe{Event: pr.ev, EstTraces: pr.est}
	}
	return out
}

// Render formats the plan for humans. dict resolves event names and may be
// nil, in which case raw event ids are printed.
func (ex *Explain) Render(dict *seqdb.Dictionary) string {
	name := func(e seqdb.EventID) string { return dict.Name(e) }
	probeList := func(probes []Probe) string {
		parts := make([]string, len(probes))
		for i, pr := range probes {
			parts[i] = fmt.Sprintf("%s(%d)", name(pr.Event), pr.EstTraces)
		}
		return strings.Join(parts, " ")
	}
	var b strings.Builder
	fmt.Fprintf(&b, "query plan: %d rule(s) over %d planned trace(s)\n", len(ex.Rules), ex.PlannedTraces)
	if ex.Selection != nil {
		sel := ex.Selection
		fmt.Fprintf(&b, "  selection: driver=%s", sel.Driver)
		if sel.Driver == "postings" {
			fmt.Fprintf(&b, "[%s]", name(sel.DriverEvent))
		}
		fmt.Fprintf(&b, " est=%d filters=%d\n", sel.EstTraces, sel.Filters)
	}
	if ex.SegmentsTotal > 0 {
		fmt.Fprintf(&b, "  segments: %d/%d pruned by statistics\n", ex.SegmentsPruned, ex.SegmentsTotal)
	}
	for i := range ex.Rules {
		rp := &ex.Rules[i]
		fmt.Fprintf(&b, "  rule %s => %s: probe premise [%s] consequent [%s] sel est=%.4f actual=%.4f gated=%d short-circuited=%d evaluated=%d\n",
			rp.Rule.Pre.String(dict), rp.Rule.Post.String(dict),
			probeList(rp.PremiseProbes), probeList(rp.ConsequentProbes),
			rp.EstSelectivity, rp.ActualSelectivity(),
			rp.Gated, rp.ShortCircuited, rp.Evaluated)
	}
	m := ex.Metrics
	fmt.Fprintf(&b, "  metrics: traces checked=%d skipped=%d; segments checked=%d skipped=%d; probes=%d; rule-trace gates=%d; consequent short-circuits=%d\n",
		m.TracesChecked, m.TracesSkipped, m.SegmentsChecked, m.SegmentsSkipped,
		m.ProbesIssued, m.RuleTraceGates, m.ConsequentShortCircuits)
	return b.String()
}
