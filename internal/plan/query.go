package plan

import (
	"sort"

	"specmine/internal/seqdb"
)

// Where is a trace-selection predicate for MineWhere/CheckWhere-style
// queries. The database carries no wall-clock timestamps or external trace
// ids, so windows and id lists are expressed over trace ordinals — the stable
// seal-order position every trace keeps in memory and across the segment
// catalog. The zero value selects every trace; all set fields conjoin.
type Where struct {
	// HasAll keeps traces containing every listed event.
	HasAll []seqdb.EventID
	// HasAny keeps traces containing at least one listed event (when non-empty).
	HasAny []seqdb.EventID
	// From/To keep traces with ordinal in the half-open window [From, To).
	// To <= 0 means "to the end".
	From, To int
	// IDs keeps only the listed trace ordinals (when non-empty). Duplicates
	// and out-of-range entries are ignored.
	IDs []int
}

// Trivial reports whether w selects every trace unconditionally.
func (w Where) Trivial() bool {
	return len(w.HasAll) == 0 && len(w.HasAny) == 0 && w.From <= 0 && w.To <= 0 && len(w.IDs) == 0
}

// Iter is a lazy pull-based trace enumerator: Next returns ascending trace
// ordinals and -1 when exhausted. Operators compose by wrapping; nothing is
// materialised until the consumer pulls.
type Iter interface {
	Next() int
}

// rangeIter drives enumeration with a plain ordinal scan over [next, end).
type rangeIter struct{ next, end int }

func (it *rangeIter) Next() int {
	if it.next >= it.end {
		return -1
	}
	v := it.next
	it.next++
	return v
}

// listIter drives enumeration with an explicit ascending ordinal list,
// windowed to [lo, hi).
type listIter struct {
	ids    []int
	i      int
	lo, hi int
}

func (it *listIter) Next() int {
	for it.i < len(it.ids) {
		v := it.ids[it.i]
		it.i++
		if v >= it.lo && v < it.hi {
			return v
		}
	}
	return -1
}

// postingsIter drives enumeration with an index postings list — the ascending
// sequence ids containing the rarest required event — windowed to [lo, hi).
type postingsIter struct {
	seqs   []int32
	i      int
	lo, hi int
}

func (it *postingsIter) Next() int {
	for it.i < len(it.seqs) {
		v := int(it.seqs[it.i])
		it.i++
		if v >= it.hi {
			return -1 // ascending: nothing later can re-enter the window
		}
		if v >= it.lo {
			return v
		}
	}
	return -1
}

// filterIter applies a residual predicate to each candidate its input yields.
type filterIter struct {
	in   Iter
	keep func(int) bool
}

func (it *filterIter) Next() int {
	for {
		v := it.in.Next()
		if v < 0 || it.keep(v) {
			return v
		}
	}
}

// emptyIter is the provably-empty selection (e.g. a required event that is
// not in the dictionary).
type emptyIter struct{}

func (emptyIter) Next() int { return -1 }

// CompileWhere compiles w into a lazy operator tree over idx and returns the
// enumerator plus an explanation of the chosen driver. Driver choice mirrors
// the rule gating's cost model: an explicit id list beats everything, else
// the rarest HasAll event's postings drive (predicate pushdown into the
// index), else an ordinal scan; remaining predicates become residual filters.
func CompileWhere(idx *seqdb.PositionIndex, w Where) (Iter, SelectionExplain) {
	n := idx.NumSequences()
	lo, hi := w.From, w.To
	if lo < 0 {
		lo = 0
	}
	if hi <= 0 || hi > n {
		hi = n
	}
	if lo > hi {
		lo = hi
	}

	// A required event outside the index's event space occurs nowhere.
	for _, e := range w.HasAll {
		if e < 0 || int(e) >= idx.NumEvents() {
			return emptyIter{}, SelectionExplain{Driver: "empty"}
		}
	}

	var (
		it      Iter
		exp     SelectionExplain
		residue []seqdb.EventID // HasAll events not consumed by the driver
	)
	switch {
	case len(w.IDs) > 0:
		ids := append([]int(nil), w.IDs...)
		sort.Ints(ids)
		dedup := ids[:0]
		for i, v := range ids {
			if i == 0 || v != ids[i-1] {
				dedup = append(dedup, v)
			}
		}
		it = &listIter{ids: dedup, lo: lo, hi: hi}
		exp = SelectionExplain{Driver: "ids", EstTraces: len(dedup)}
		residue = w.HasAll
	case len(w.HasAll) > 0:
		driver := w.HasAll[0]
		for _, e := range w.HasAll[1:] {
			if sup, ds := idx.EventSeqSupport(e), idx.EventSeqSupport(driver); sup < ds || (sup == ds && e < driver) {
				driver = e
			}
		}
		for _, e := range w.HasAll {
			if e != driver {
				residue = append(residue, e)
			}
		}
		it = &postingsIter{seqs: idx.SeqsContaining(driver), lo: lo, hi: hi}
		exp = SelectionExplain{Driver: "postings", DriverEvent: driver, EstTraces: idx.EventSeqSupport(driver)}
	default:
		it = &rangeIter{next: lo, end: hi}
		exp = SelectionExplain{Driver: "scan", EstTraces: hi - lo}
	}

	if len(residue) > 0 {
		events := residue
		exp.Filters++
		it = &filterIter{in: it, keep: func(s int) bool {
			for _, e := range events {
				if !idx.SeqContains(s, e) {
					return false
				}
			}
			return true
		}}
	}
	if len(w.HasAny) > 0 {
		events := append([]seqdb.EventID(nil), w.HasAny...)
		exp.Filters++
		it = &filterIter{in: it, keep: func(s int) bool {
			for _, e := range events {
				if idx.SeqContains(s, e) {
					return true
				}
			}
			return false
		}}
	}
	return it, exp
}

// MatchesSeq reports whether local sequence s of idx — whose global trace
// ordinal is global — satisfies w. It is the per-trace form CompileWhere's
// operator tree reduces to when the enumeration is driven externally, as in
// segment sweeps where the catalog already chose which bodies to decode.
func (w Where) MatchesSeq(idx *seqdb.PositionIndex, s, global int) bool {
	if !w.matchesOrdinal(global) {
		return false
	}
	for _, e := range w.HasAll {
		if !idx.SeqContains(s, e) {
			return false
		}
	}
	if len(w.HasAny) > 0 {
		any := false
		for _, e := range w.HasAny {
			if idx.SeqContains(s, e) {
				any = true
				break
			}
		}
		if !any {
			return false
		}
	}
	return true
}

// matchesOrdinal checks only the ordinal predicates (window and id list).
func (w Where) matchesOrdinal(global int) bool {
	if global < w.From || (w.To > 0 && global >= w.To) {
		return false
	}
	if len(w.IDs) > 0 {
		ok := false
		for _, id := range w.IDs {
			if id == global {
				ok = true
				break
			}
		}
		return ok
	}
	return true
}

// OrdinalOverlap reports whether any ordinal in the half-open range
// [base, base+n) can satisfy w's ordinal predicates — the catalog-level prune
// for segment sweeps (a segment's traces occupy one contiguous ordinal range).
func (w Where) OrdinalOverlap(base, n int) bool {
	end := base + n
	if end <= w.From || (w.To > 0 && base >= w.To) {
		return false
	}
	if len(w.IDs) > 0 {
		for _, id := range w.IDs {
			if id >= base && id < end && w.matchesOrdinal(id) {
				return true
			}
		}
		return false
	}
	return true
}

// CountOrdinalMatches returns how many ordinals in [base, base+n) satisfy w's
// ordinal predicates. When w has no event predicates this answers "how many
// traces of this segment are selected" without decoding the body — the bulk
// accounting path for segments every rule is statically dead on.
func (w Where) CountOrdinalMatches(base, n int) int {
	if len(w.IDs) > 0 {
		count := 0
		seen := make(map[int]struct{}, len(w.IDs))
		for _, id := range w.IDs {
			if _, dup := seen[id]; dup {
				continue
			}
			seen[id] = struct{}{}
			if id >= base && id < base+n && w.matchesOrdinal(id) {
				count++
			}
		}
		return count
	}
	lo, hi := base, base+n
	if w.From > lo {
		lo = w.From
	}
	if w.To > 0 && w.To < hi {
		hi = w.To
	}
	if hi < lo {
		hi = lo
	}
	return hi - lo
}

// HasEventPredicates reports whether w constrains trace contents (as opposed
// to ordinals only).
func (w Where) HasEventPredicates() bool {
	return len(w.HasAll) > 0 || len(w.HasAny) > 0
}
