// Package seqpattern implements classic sequential pattern mining over a
// sequence database: patterns supported by the number of sequences that
// contain them as subsequences (Agrawal & Srikant; mined here with
// PrefixSpan-style prefix-projected pattern growth).
//
// The repository uses it in two roles: as the comparator that Section 2 of
// the paper contrasts iterative patterns against, and as the premise
// generator of the recurrent rule miner (a rule premise is "frequent" when
// enough sequences contain it as a subsequence — Theorem 2).
package seqpattern

import (
	"errors"
	"sort"
	"time"

	"specmine/internal/seqdb"
)

// Options configures sequential pattern mining.
type Options struct {
	// MinSeqSupport is the absolute minimum number of sequences that must
	// contain a pattern.
	MinSeqSupport int
	// MinSupportRel, when positive, overrides MinSeqSupport with
	// ceil(rel * number of sequences).
	MinSupportRel float64
	// MaxPatternLength bounds pattern length; 0 means unlimited.
	MaxPatternLength int
	// ClosedOnly keeps only closed sequential patterns: patterns with no
	// super-sequence of equal sequence support.
	ClosedOnly bool
}

// Validate reports configuration errors.
func (o Options) Validate() error {
	if o.MinSeqSupport < 1 && o.MinSupportRel <= 0 {
		return errors.New("seqpattern: MinSeqSupport must be >= 1 or MinSupportRel > 0")
	}
	if o.MaxPatternLength < 0 {
		return errors.New("seqpattern: MaxPatternLength must be >= 0")
	}
	return nil
}

func (o Options) absoluteSupport(numSequences int) int {
	if o.MinSupportRel > 0 {
		n := int(o.MinSupportRel*float64(numSequences) + 0.5)
		if n < 1 {
			n = 1
		}
		return n
	}
	return o.MinSeqSupport
}

// MinedPattern is a sequential pattern with its sequence support.
type MinedPattern struct {
	Pattern    seqdb.Pattern
	SeqSupport int
}

// Result is the outcome of a mining run.
type Result struct {
	Patterns   []MinedPattern
	MinSupport int
	Duration   time.Duration
}

// Sort orders patterns by decreasing support then content for deterministic
// output.
func (r *Result) Sort() {
	sort.Slice(r.Patterns, func(i, j int) bool {
		a, b := r.Patterns[i], r.Patterns[j]
		if a.SeqSupport != b.SeqSupport {
			return a.SeqSupport > b.SeqSupport
		}
		return seqdb.ComparePatterns(a.Pattern, b.Pattern) < 0
	})
}

// Mine returns the frequent sequential patterns of db under opts.
func Mine(db *seqdb.Database, opts Options) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	m := &miner{
		db:     db,
		opts:   opts,
		minSup: opts.absoluteSupport(db.NumSequences()),
	}
	m.run()
	res := &Result{Patterns: m.out, MinSupport: m.minSup}
	if opts.ClosedOnly {
		res.Patterns = filterClosed(res.Patterns)
	}
	res.Duration = time.Since(start)
	res.Sort()
	return res, nil
}

// projection records, per sequence that still matches the current prefix, the
// position right after the last matched event (the classic PrefixSpan
// pseudo-projection).
type projection struct {
	seq  int
	next int
}

type miner struct {
	db     *seqdb.Database
	opts   Options
	minSup int
	out    []MinedPattern
}

func (m *miner) run() {
	// Initial projection: every sequence from position 0.
	initial := make([]projection, 0, m.db.NumSequences())
	for i := range m.db.Sequences {
		initial = append(initial, projection{seq: i, next: 0})
	}
	m.grow(nil, initial)
}

// grow extends the current prefix pattern using the projected database proj.
func (m *miner) grow(prefix seqdb.Pattern, proj []projection) {
	if m.opts.MaxPatternLength > 0 && len(prefix) >= m.opts.MaxPatternLength {
		return
	}
	// Count, for every event, the sequences whose projected suffix contains
	// it, remembering the first occurrence to build the next projection.
	type occ struct {
		proj []projection
	}
	counts := make(map[seqdb.EventID]*occ)
	for _, pr := range proj {
		s := m.db.Sequences[pr.seq]
		seen := make(map[seqdb.EventID]bool)
		for j := pr.next; j < len(s); j++ {
			ev := s[j]
			if seen[ev] {
				continue
			}
			seen[ev] = true
			o := counts[ev]
			if o == nil {
				o = &occ{}
				counts[ev] = o
			}
			o.proj = append(o.proj, projection{seq: pr.seq, next: j + 1})
		}
	}
	events := make([]seqdb.EventID, 0, len(counts))
	for ev, o := range counts {
		if len(o.proj) >= m.minSup {
			events = append(events, ev)
		}
	}
	sort.Slice(events, func(i, j int) bool { return events[i] < events[j] })
	for _, ev := range events {
		o := counts[ev]
		p := prefix.Append(ev)
		m.out = append(m.out, MinedPattern{Pattern: p, SeqSupport: len(o.proj)})
		m.grow(p, o.proj)
	}
}

// filterClosed removes patterns that have a super-sequence with equal
// sequence support among the mined set.
func filterClosed(patterns []MinedPattern) []MinedPattern {
	// Group by support so only equal-support patterns are compared.
	bySupport := make(map[int][]MinedPattern)
	for _, p := range patterns {
		bySupport[p.SeqSupport] = append(bySupport[p.SeqSupport], p)
	}
	keep := patterns[:0]
	for _, p := range patterns {
		closed := true
		for _, q := range bySupport[p.SeqSupport] {
			if len(q.Pattern) > len(p.Pattern) && p.Pattern.IsSubsequenceOf(q.Pattern) {
				closed = false
				break
			}
		}
		if closed {
			keep = append(keep, p)
		}
	}
	return keep
}

// SeqSupport recounts the sequence support of p directly, independent of the
// miner. It is used by tests and by callers that need to evaluate arbitrary
// patterns.
func SeqSupport(db *seqdb.Database, p seqdb.Pattern) int {
	n := 0
	for _, s := range db.Sequences {
		if s.ContainsSubsequence(p) {
			n++
		}
	}
	return n
}
