// Package seqpattern implements classic sequential pattern mining over a
// sequence database: patterns supported by the number of sequences that
// contain them as subsequences (Agrawal & Srikant; mined here with
// PrefixSpan-style prefix-projected pattern growth).
//
// The repository uses it in two roles: as the comparator that Section 2 of
// the paper contrasts iterative patterns against, and as the premise
// generator of the recurrent rule miner (a rule premise is "frequent" when
// enough sequences contain it as a subsequence — Theorem 2).
//
// Since the unified-kernel refactor the miner runs on the shared count-first
// search framework (internal/mine) over seqdb.PositionIndex: seed patterns
// come straight from the per-event postings, each search node keeps the
// classic last-position pseudo-projection (one mine.Proj per supporting
// sequence), and one counting pass over the projected suffixes decides
// frequency before any extension projection is materialised. The seed
// implementation is preserved under internal/bench/baseline as the
// equivalence oracle.
package seqpattern

import (
	"errors"
	"sort"
	"time"

	"specmine/internal/mine"
	"specmine/internal/seqdb"
)

// Options configures sequential pattern mining.
type Options struct {
	// MinSeqSupport is the absolute minimum number of sequences that must
	// contain a pattern.
	MinSeqSupport int
	// MinSupportRel, when positive, overrides MinSeqSupport with
	// ceil(rel * number of sequences).
	MinSupportRel float64
	// MaxPatternLength bounds pattern length; 0 means unlimited.
	MaxPatternLength int
	// ClosedOnly keeps only closed sequential patterns: patterns with no
	// super-sequence of equal sequence support.
	ClosedOnly bool
	// Workers bounds the parallel worker pool (0/1 sequential, negative =
	// GOMAXPROCS). Results are identical for any value.
	Workers int
}

// Validate reports configuration errors.
func (o Options) Validate() error {
	if o.MinSeqSupport < 1 && o.MinSupportRel <= 0 {
		return errors.New("seqpattern: MinSeqSupport must be >= 1 or MinSupportRel > 0")
	}
	if o.MaxPatternLength < 0 {
		return errors.New("seqpattern: MaxPatternLength must be >= 0")
	}
	return nil
}

func (o Options) absoluteSupport(numSequences int) int {
	if o.MinSupportRel > 0 {
		n := int(o.MinSupportRel*float64(numSequences) + 0.5)
		if n < 1 {
			n = 1
		}
		return n
	}
	return o.MinSeqSupport
}

// MinedPattern is a sequential pattern with its sequence support.
type MinedPattern struct {
	Pattern    seqdb.Pattern
	SeqSupport int
}

// Result is the outcome of a mining run.
type Result struct {
	Patterns   []MinedPattern
	MinSupport int
	Duration   time.Duration
}

// Sort orders patterns by decreasing support then content for deterministic
// output.
func (r *Result) Sort() {
	sort.Slice(r.Patterns, func(i, j int) bool {
		a, b := r.Patterns[i], r.Patterns[j]
		if a.SeqSupport != b.SeqSupport {
			return a.SeqSupport > b.SeqSupport
		}
		return seqdb.ComparePatterns(a.Pattern, b.Pattern) < 0
	})
}

// Mine returns the frequent sequential patterns of db under opts.
func Mine(db *seqdb.Database, opts Options) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	minSup := opts.absoluteSupport(db.NumSequences())
	idx := db.FlatIndex()

	// Frequent seed events straight from the postings (apriori base case:
	// a pattern's support is bounded by its rarest event's sequence support).
	events := idx.FrequentEventsBySeqSupport(minSup)
	workers := mine.EffectiveWorkers(opts.Workers)
	newWorker := func() *worker {
		return &worker{
			ext:    mine.NewExtender(db.Sequences, idx),
			minSup: minSup,
			maxLen: opts.MaxPatternLength,
			path:   make(seqdb.Pattern, 0, 32),
		}
	}
	// Each frequent seed event roots an independent subtree; merging
	// per-seed outputs in seed order keeps the result byte-identical to the
	// sequential run for any worker count.
	outs := mine.ForSeeds(len(events), workers, newWorker, func(w *worker, i int) []MinedPattern {
		w.out = nil
		w.mineSeed(events[i])
		return w.out
	})
	res := &Result{MinSupport: minSup}
	for _, o := range outs {
		res.Patterns = append(res.Patterns, o...)
	}
	if opts.ClosedOnly {
		res.Patterns = filterClosed(res.Patterns)
	}
	res.Duration = time.Since(start)
	res.Sort()
	return res, nil
}

type worker struct {
	ext    *mine.Extender
	minSup int
	maxLen int

	// path is the shared pattern buffer for the current search path; the
	// node for depth d works on path[:d+1], so descending never allocates.
	// Emission clones it.
	path seqdb.Pattern
	out  []MinedPattern
}

func (w *worker) mineSeed(e seqdb.EventID) {
	proj := w.ext.SeedProj(e)
	w.path = append(w.path[:0], e)
	w.emit(w.path, proj)
	w.grow(w.path, proj)
	w.ext.ReleaseProj(proj)
}

// grow extends the pattern p (a view of the shared path buffer) whose
// pseudo-projection is proj. Count-first: the extension pass counts every
// candidate's sequence support (one projection entry per sequence, so counts
// are supports), and only supra-threshold extensions carry a materialised
// projection to recurse on.
func (w *worker) grow(p seqdb.Pattern, proj []mine.Proj) {
	if w.maxLen > 0 && len(p) >= w.maxLen {
		return
	}
	es := w.ext.Extensions(proj, nil, int32(w.minSup))
	for i := range es.Exts {
		x := &es.Exts[i]
		if int(x.Count) < w.minSup {
			continue
		}
		child := append(p, x.Event)
		w.emit(child, x.Proj)
		w.grow(child, x.Proj)
	}
	w.ext.Release(es)
}

func (w *worker) emit(p seqdb.Pattern, proj []mine.Proj) {
	w.out = append(w.out, MinedPattern{Pattern: p.Clone(), SeqSupport: len(proj)})
}

// patternHash is the content hash the closedness filter buckets on.
func patternHash(p seqdb.Pattern) uint64 {
	h := seqdb.NewHash64()
	for _, e := range p {
		h = h.Mix32(int32(e))
	}
	return uint64(h)
}

// filterClosed removes patterns that have a super-sequence with equal
// sequence support among the mined set.
//
// The seed compared all pairs within each equal-support group — quadratic,
// and catastrophically so on dense workloads where most patterns share one
// support level. This pass is exact and near-linear instead: because the
// miner emits the complete frequent set, a pattern p is non-closed exactly
// when some mined pattern one event longer is a super-sequence with equal
// support (any longer witness q implies such an intermediate — drop all but
// one of q's extra events; the result contains p, is a subsequence of q, is
// therefore frequent with the same sandwiched support, and was mined). So
// it suffices to take every mined pattern q, form each of its len(q)
// single-deletion subsequences, and mark the ones present in the set with
// q's support. Patterns are located through a content-hash index; the
// support check keeps the decision within equal-support buckets.
func filterClosed(patterns []MinedPattern) []MinedPattern {
	byHash := make(map[uint64][]int32, len(patterns))
	for i := range patterns {
		h := patternHash(patterns[i].Pattern)
		byHash[h] = append(byHash[h], int32(i))
	}
	nonClosed := make([]bool, len(patterns))
	sub := make(seqdb.Pattern, 0, 64)
	for i := range patterns {
		q := patterns[i].Pattern
		if len(q) < 2 {
			continue
		}
		for d := 0; d < len(q); d++ {
			if d > 0 && q[d] == q[d-1] {
				// Deleting either of two equal adjacent events yields the
				// same subsequence.
				continue
			}
			sub = append(sub[:0], q[:d]...)
			sub = append(sub, q[d+1:]...)
			for _, j := range byHash[patternHash(sub)] {
				p := &patterns[j]
				if !nonClosed[j] && p.SeqSupport == patterns[i].SeqSupport && p.Pattern.Equal(sub) {
					nonClosed[j] = true
				}
			}
		}
	}
	keep := make([]MinedPattern, 0, len(patterns))
	for i := range patterns {
		if !nonClosed[i] {
			keep = append(keep, patterns[i])
		}
	}
	return keep
}

// SeqSupport recounts the sequence support of p directly, independent of the
// miner. It is used by tests and by callers that need to evaluate arbitrary
// patterns.
func SeqSupport(db *seqdb.Database, p seqdb.Pattern) int {
	n := 0
	for _, s := range db.Sequences {
		if s.ContainsSubsequence(p) {
			n++
		}
	}
	return n
}
