package seqpattern

import (
	"math/rand"
	"sort"
	"testing"

	"specmine/internal/seqdb"
)

func mkdb(traces ...[]string) *seqdb.Database {
	db := seqdb.NewDatabase()
	for _, t := range traces {
		db.AppendNames(t...)
	}
	return db
}

func supports(res *Result, dict *seqdb.Dictionary) map[string]int {
	out := make(map[string]int)
	for _, p := range res.Patterns {
		out[p.Pattern.String(dict)] = p.SeqSupport
	}
	return out
}

func TestOptionsValidate(t *testing.T) {
	if err := (Options{}).Validate(); err == nil {
		t.Errorf("zero options accepted")
	}
	if err := (Options{MinSeqSupport: 1}).Validate(); err != nil {
		t.Errorf("valid options rejected: %v", err)
	}
	if err := (Options{MinSeqSupport: 1, MaxPatternLength: -2}).Validate(); err == nil {
		t.Errorf("negative MaxPatternLength accepted")
	}
	if _, err := Mine(seqdb.NewDatabase(), Options{}); err == nil {
		t.Errorf("Mine must reject invalid options")
	}
	if got := (Options{MinSupportRel: 0.25}).absoluteSupport(8); got != 2 {
		t.Errorf("absoluteSupport=%d want 2", got)
	}
}

func TestMineClassicExample(t *testing.T) {
	db := mkdb(
		[]string{"a", "b", "c"},
		[]string{"a", "c"},
		[]string{"b", "c"},
		[]string{"a", "b"},
	)
	res, err := Mine(db, Options{MinSeqSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	got := supports(res, db.Dict)
	want := map[string]int{
		"<a>":    3,
		"<b>":    3,
		"<c>":    3,
		"<a, b>": 2,
		"<a, c>": 2,
		"<b, c>": 2,
	}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s: support %d want %d", k, got[k], v)
		}
	}
}

func TestMineCountsSequencesNotOccurrences(t *testing.T) {
	// A pattern repeated many times inside a single trace counts once:
	// sequence support differs from the instance support of iterative mining.
	db := mkdb(
		[]string{"lock", "unlock", "lock", "unlock", "lock", "unlock"},
		[]string{"idle"},
	)
	res, err := Mine(db, Options{MinSeqSupport: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := supports(res, db.Dict)
	if got["<lock, unlock>"] != 1 {
		t.Errorf("<lock, unlock> seq support = %d want 1", got["<lock, unlock>"])
	}
	if got["<lock, unlock, lock, unlock, lock, unlock>"] != 1 {
		t.Errorf("long repetition should still be found with support 1: %v", got)
	}
}

func TestMaxPatternLength(t *testing.T) {
	db := mkdb([]string{"a", "b", "c", "d"}, []string{"a", "b", "c", "d"})
	res, err := Mine(db, Options{MinSeqSupport: 2, MaxPatternLength: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Patterns {
		if p.Pattern.Len() > 2 {
			t.Errorf("pattern %s exceeds length bound", p.Pattern.String(db.Dict))
		}
	}
}

func TestClosedOnly(t *testing.T) {
	db := mkdb(
		[]string{"a", "b", "c"},
		[]string{"a", "b", "c"},
		[]string{"a", "b"},
	)
	res, err := Mine(db, Options{MinSeqSupport: 2, ClosedOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	got := supports(res, db.Dict)
	// <a,b> support 3 is closed; <a,b,c> support 2 is closed; <a> (3), <b>
	// (3) are absorbed by <a,b>; <c>, <a,c>, <b,c> (2) are absorbed by <a,b,c>.
	want := map[string]int{"<a, b>": 3, "<a, b, c>": 2}
	if len(got) != len(want) {
		t.Fatalf("closed set %v want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s support %d want %d", k, got[k], v)
		}
	}
}

// bruteMine enumerates frequent sequential patterns by recursive candidate
// generation with direct support counting.
func bruteMine(db *seqdb.Database, minSup, maxLen int) map[string]int {
	events := db.FrequentEvents(minSup)
	out := make(map[string]int)
	var grow func(p seqdb.Pattern)
	grow = func(p seqdb.Pattern) {
		sup := SeqSupport(db, p)
		if sup < minSup {
			return
		}
		out[p.Key()] = sup
		if maxLen > 0 && len(p) >= maxLen {
			return
		}
		for _, e := range events {
			grow(p.Append(e))
		}
	}
	for _, e := range events {
		grow(seqdb.Pattern{e})
	}
	return out
}

func TestMineAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for iter := 0; iter < 25; iter++ {
		db := seqdb.NewDatabase()
		for i := 0; i < 4; i++ {
			n := 1 + rng.Intn(7)
			names := make([]string, n)
			for j := range names {
				names[j] = string(rune('a' + rng.Intn(3)))
			}
			db.AppendNames(names...)
		}
		minSup := 2
		res, err := Mine(db, Options{MinSeqSupport: minSup})
		if err != nil {
			t.Fatal(err)
		}
		want := bruteMine(db, minSup, 0)
		if len(res.Patterns) != len(want) {
			t.Fatalf("iter %d: miner %d patterns, brute force %d", iter, len(res.Patterns), len(want))
		}
		for _, p := range res.Patterns {
			if want[p.Pattern.Key()] != p.SeqSupport {
				t.Fatalf("iter %d: support mismatch for %s: %d vs %d", iter, p.Pattern.String(db.Dict), p.SeqSupport, want[p.Pattern.Key()])
			}
		}
	}
}

func TestClosedOnlyProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for iter := 0; iter < 15; iter++ {
		db := seqdb.NewDatabase()
		for i := 0; i < 5; i++ {
			n := 1 + rng.Intn(6)
			names := make([]string, n)
			for j := range names {
				names[j] = string(rune('a' + rng.Intn(3)))
			}
			db.AppendNames(names...)
		}
		full, err := Mine(db, Options{MinSeqSupport: 2})
		if err != nil {
			t.Fatal(err)
		}
		closed, err := Mine(db, Options{MinSeqSupport: 2, ClosedOnly: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(closed.Patterns) > len(full.Patterns) {
			t.Fatalf("closed larger than full")
		}
		// Every full pattern must have a closed super-pattern (or itself) with
		// the same support.
		for _, fp := range full.Patterns {
			found := false
			for _, cp := range closed.Patterns {
				if cp.SeqSupport == fp.SeqSupport && fp.Pattern.IsSubsequenceOf(cp.Pattern) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("iter %d: pattern %s (sup %d) not covered by closed set", iter, fp.Pattern.String(db.Dict), fp.SeqSupport)
			}
		}
	}
}

func TestResultSortDeterministic(t *testing.T) {
	db := mkdb([]string{"b", "a"}, []string{"a", "b"})
	res, err := Mine(db, Options{MinSeqSupport: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(res.Patterns, func(i, j int) bool {
		a, b := res.Patterns[i], res.Patterns[j]
		if a.SeqSupport != b.SeqSupport {
			return a.SeqSupport > b.SeqSupport
		}
		return seqdb.ComparePatterns(a.Pattern, b.Pattern) < 0
	}) {
		t.Errorf("result not sorted")
	}
}
