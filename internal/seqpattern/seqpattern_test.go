package seqpattern

import (
	"math/rand"
	"sort"
	"testing"

	"specmine/internal/seqdb"
)

func mkdb(traces ...[]string) *seqdb.Database {
	db := seqdb.NewDatabase()
	for _, t := range traces {
		db.AppendNames(t...)
	}
	return db
}

func supports(res *Result, dict *seqdb.Dictionary) map[string]int {
	out := make(map[string]int)
	for _, p := range res.Patterns {
		out[p.Pattern.String(dict)] = p.SeqSupport
	}
	return out
}

func TestOptionsValidate(t *testing.T) {
	if err := (Options{}).Validate(); err == nil {
		t.Errorf("zero options accepted")
	}
	if err := (Options{MinSeqSupport: 1}).Validate(); err != nil {
		t.Errorf("valid options rejected: %v", err)
	}
	if err := (Options{MinSeqSupport: 1, MaxPatternLength: -2}).Validate(); err == nil {
		t.Errorf("negative MaxPatternLength accepted")
	}
	if _, err := Mine(seqdb.NewDatabase(), Options{}); err == nil {
		t.Errorf("Mine must reject invalid options")
	}
	if got := (Options{MinSupportRel: 0.25}).absoluteSupport(8); got != 2 {
		t.Errorf("absoluteSupport=%d want 2", got)
	}
}

func TestMineClassicExample(t *testing.T) {
	db := mkdb(
		[]string{"a", "b", "c"},
		[]string{"a", "c"},
		[]string{"b", "c"},
		[]string{"a", "b"},
	)
	res, err := Mine(db, Options{MinSeqSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	got := supports(res, db.Dict)
	want := map[string]int{
		"<a>":    3,
		"<b>":    3,
		"<c>":    3,
		"<a, b>": 2,
		"<a, c>": 2,
		"<b, c>": 2,
	}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s: support %d want %d", k, got[k], v)
		}
	}
}

func TestMineCountsSequencesNotOccurrences(t *testing.T) {
	// A pattern repeated many times inside a single trace counts once:
	// sequence support differs from the instance support of iterative mining.
	db := mkdb(
		[]string{"lock", "unlock", "lock", "unlock", "lock", "unlock"},
		[]string{"idle"},
	)
	res, err := Mine(db, Options{MinSeqSupport: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := supports(res, db.Dict)
	if got["<lock, unlock>"] != 1 {
		t.Errorf("<lock, unlock> seq support = %d want 1", got["<lock, unlock>"])
	}
	if got["<lock, unlock, lock, unlock, lock, unlock>"] != 1 {
		t.Errorf("long repetition should still be found with support 1: %v", got)
	}
}

func TestMaxPatternLength(t *testing.T) {
	db := mkdb([]string{"a", "b", "c", "d"}, []string{"a", "b", "c", "d"})
	res, err := Mine(db, Options{MinSeqSupport: 2, MaxPatternLength: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Patterns {
		if p.Pattern.Len() > 2 {
			t.Errorf("pattern %s exceeds length bound", p.Pattern.String(db.Dict))
		}
	}
}

func TestClosedOnly(t *testing.T) {
	db := mkdb(
		[]string{"a", "b", "c"},
		[]string{"a", "b", "c"},
		[]string{"a", "b"},
	)
	res, err := Mine(db, Options{MinSeqSupport: 2, ClosedOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	got := supports(res, db.Dict)
	// <a,b> support 3 is closed; <a,b,c> support 2 is closed; <a> (3), <b>
	// (3) are absorbed by <a,b>; <c>, <a,c>, <b,c> (2) are absorbed by <a,b,c>.
	want := map[string]int{"<a, b>": 3, "<a, b, c>": 2}
	if len(got) != len(want) {
		t.Fatalf("closed set %v want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s support %d want %d", k, got[k], v)
		}
	}
}

// bruteMine enumerates frequent sequential patterns by recursive candidate
// generation with direct support counting.
func bruteMine(db *seqdb.Database, minSup, maxLen int) map[string]int {
	events := db.FrequentEvents(minSup)
	out := make(map[string]int)
	var grow func(p seqdb.Pattern)
	grow = func(p seqdb.Pattern) {
		sup := SeqSupport(db, p)
		if sup < minSup {
			return
		}
		out[p.Key()] = sup
		if maxLen > 0 && len(p) >= maxLen {
			return
		}
		for _, e := range events {
			grow(p.Append(e))
		}
	}
	for _, e := range events {
		grow(seqdb.Pattern{e})
	}
	return out
}

func TestMineAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for iter := 0; iter < 25; iter++ {
		db := seqdb.NewDatabase()
		for i := 0; i < 4; i++ {
			n := 1 + rng.Intn(7)
			names := make([]string, n)
			for j := range names {
				names[j] = string(rune('a' + rng.Intn(3)))
			}
			db.AppendNames(names...)
		}
		minSup := 2
		res, err := Mine(db, Options{MinSeqSupport: minSup})
		if err != nil {
			t.Fatal(err)
		}
		want := bruteMine(db, minSup, 0)
		if len(res.Patterns) != len(want) {
			t.Fatalf("iter %d: miner %d patterns, brute force %d", iter, len(res.Patterns), len(want))
		}
		for _, p := range res.Patterns {
			if want[p.Pattern.Key()] != p.SeqSupport {
				t.Fatalf("iter %d: support mismatch for %s: %d vs %d", iter, p.Pattern.String(db.Dict), p.SeqSupport, want[p.Pattern.Key()])
			}
		}
	}
}

func TestClosedOnlyProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for iter := 0; iter < 15; iter++ {
		db := seqdb.NewDatabase()
		for i := 0; i < 5; i++ {
			n := 1 + rng.Intn(6)
			names := make([]string, n)
			for j := range names {
				names[j] = string(rune('a' + rng.Intn(3)))
			}
			db.AppendNames(names...)
		}
		full, err := Mine(db, Options{MinSeqSupport: 2})
		if err != nil {
			t.Fatal(err)
		}
		closed, err := Mine(db, Options{MinSeqSupport: 2, ClosedOnly: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(closed.Patterns) > len(full.Patterns) {
			t.Fatalf("closed larger than full")
		}
		// Every full pattern must have a closed super-pattern (or itself) with
		// the same support.
		for _, fp := range full.Patterns {
			found := false
			for _, cp := range closed.Patterns {
				if cp.SeqSupport == fp.SeqSupport && fp.Pattern.IsSubsequenceOf(cp.Pattern) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("iter %d: pattern %s (sup %d) not covered by closed set", iter, fp.Pattern.String(db.Dict), fp.SeqSupport)
			}
		}
	}
}

// TestWorkersByteIdentical asserts the parallel miner reproduces the
// sequential result exactly for any worker count.
func TestWorkersByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for iter := 0; iter < 10; iter++ {
		db := seqdb.NewDatabase()
		for i := 0; i < 6; i++ {
			n := 1 + rng.Intn(8)
			names := make([]string, n)
			for j := range names {
				names[j] = string(rune('a' + rng.Intn(4)))
			}
			db.AppendNames(names...)
		}
		for _, closedOnly := range []bool{false, true} {
			opts := Options{MinSeqSupport: 2, ClosedOnly: closedOnly, Workers: 1}
			seq, err := Mine(db, opts)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 4, -1} {
				opts.Workers = workers
				par, err := Mine(db, opts)
				if err != nil {
					t.Fatal(err)
				}
				if len(par.Patterns) != len(seq.Patterns) {
					t.Fatalf("iter %d closed=%v workers=%d: %d patterns want %d",
						iter, closedOnly, workers, len(par.Patterns), len(seq.Patterns))
				}
				for k := range seq.Patterns {
					if !par.Patterns[k].Pattern.Equal(seq.Patterns[k].Pattern) ||
						par.Patterns[k].SeqSupport != seq.Patterns[k].SeqSupport {
						t.Fatalf("iter %d closed=%v workers=%d: pattern %d differs", iter, closedOnly, workers, k)
					}
				}
			}
		}
	}
}

// quadraticClosedFilter is the seed's all-pairs closedness filter, kept here
// as the reference the bucketed filter is regression-tested against.
func quadraticClosedFilter(patterns []MinedPattern) []MinedPattern {
	bySupport := make(map[int][]MinedPattern)
	for _, p := range patterns {
		bySupport[p.SeqSupport] = append(bySupport[p.SeqSupport], p)
	}
	var keep []MinedPattern
	for _, p := range patterns {
		closed := true
		for _, q := range bySupport[p.SeqSupport] {
			if len(q.Pattern) > len(p.Pattern) && p.Pattern.IsSubsequenceOf(q.Pattern) {
				closed = false
				break
			}
		}
		if closed {
			keep = append(keep, p)
		}
	}
	return keep
}

// equalSupportWorkload builds the adversarial closedness workload: `groups`
// pairs of identical sequences over disjoint alphabets. Every subsequence of
// every group pattern is frequent with the same sequence support (2), so the
// seed's equal-support all-pairs pass degenerates to a single quadratic
// bucket of thousands of patterns, while the supporting-set buckets stay at
// group size.
func equalSupportWorkload(groups, patternLen int) *seqdb.Database {
	db := seqdb.NewDatabase()
	for g := 0; g < groups; g++ {
		names := make([]string, patternLen)
		for i := range names {
			names[i] = "g" + string(rune('0'+g/10)) + string(rune('0'+g%10)) + "e" + string(rune('a'+i))
		}
		db.AppendNames(names...)
		db.AppendNames(names...)
	}
	return db
}

// TestFilterClosedSupportBuckets is the regression test for the bucketed
// closedness filter on a workload where the seed's quadratic pass is
// measurable (~5k same-support patterns, tens of millions of pair tests):
// the bucketed result must match the all-pairs reference exactly.
func TestFilterClosedSupportBuckets(t *testing.T) {
	db := equalSupportWorkload(40, 7)
	full, err := Mine(db, Options{MinSeqSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Patterns) < 5000 {
		t.Fatalf("workload too small to stress the filter: %d patterns", len(full.Patterns))
	}
	closed, err := Mine(db, Options{MinSeqSupport: 2, ClosedOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	want := quadraticClosedFilter(full.Patterns)
	res := Result{Patterns: want}
	res.Sort()
	if len(closed.Patterns) != len(want) {
		t.Fatalf("bucketed filter kept %d patterns, reference kept %d", len(closed.Patterns), len(want))
	}
	for i := range want {
		if !closed.Patterns[i].Pattern.Equal(want[i].Pattern) || closed.Patterns[i].SeqSupport != want[i].SeqSupport {
			t.Fatalf("pattern %d differs from reference: %v vs %v", i,
				closed.Patterns[i].Pattern.String(db.Dict), want[i].Pattern.String(db.Dict))
		}
	}
	// Each group's full-length pattern is the only closed one in its group.
	if len(closed.Patterns) != 40 {
		t.Errorf("closed set size %d, want one pattern per group (40)", len(closed.Patterns))
	}
}

// BenchmarkClosedMiningEqualSupport measures closed mining on the
// equal-support workload; the closedness filter dominates it, so this is the
// regression benchmark for the bucketed filter.
func BenchmarkClosedMiningEqualSupport(b *testing.B) {
	db := equalSupportWorkload(40, 7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Mine(db, Options{MinSeqSupport: 2, ClosedOnly: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestResultSortDeterministic(t *testing.T) {
	db := mkdb([]string{"b", "a"}, []string{"a", "b"})
	res, err := Mine(db, Options{MinSeqSupport: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(res.Patterns, func(i, j int) bool {
		a, b := res.Patterns[i], res.Patterns[j]
		if a.SeqSupport != b.SeqSupport {
			return a.SeqSupport > b.SeqSupport
		}
		return seqdb.ComparePatterns(a.Pattern, b.Pattern) < 0
	}) {
		t.Errorf("result not sorted")
	}
}
