package rank

import (
	"testing"

	"specmine/internal/iterpattern"
	"specmine/internal/rules"
	"specmine/internal/seqdb"
)

func mkdb(traces ...[]string) *seqdb.Database {
	db := seqdb.NewDatabase()
	for _, t := range traces {
		db.AppendNames(t...)
	}
	return db
}

func TestDefaultWeights(t *testing.T) {
	w := Weights{}.orDefault()
	if w != DefaultWeights() {
		t.Errorf("zero weights should become defaults")
	}
	custom := Weights{Support: 3}
	if custom.orDefault() != custom {
		t.Errorf("non-zero weights must be preserved")
	}
}

func TestRankPatternsPrefersLongRecurringBehaviour(t *testing.T) {
	db := mkdb(
		[]string{"init", "configure", "start", "noise1"},
		[]string{"init", "configure", "start", "noise2"},
		[]string{"init", "configure", "start"},
		[]string{"noise1", "noise2"},
	)
	short := iterpattern.MinedPattern{Pattern: seqdb.ParsePattern(db.Dict, "init"), Support: 3, SeqSupport: 3}
	long := iterpattern.MinedPattern{Pattern: seqdb.ParsePattern(db.Dict, "init configure start"), Support: 3, SeqSupport: 3}
	scored := Patterns(db, []iterpattern.MinedPattern{short, long}, Weights{})
	if len(scored) != 2 {
		t.Fatalf("scored=%d", len(scored))
	}
	if !scored[0].Pattern.Pattern.Equal(long.Pattern) {
		t.Errorf("long recurring pattern should rank first, got %s", scored[0].Pattern.Pattern.String(db.Dict))
	}
	if scored[0].Score <= scored[1].Score {
		t.Errorf("scores not ordered: %v <= %v", scored[0].Score, scored[1].Score)
	}
}

func TestRankRulesPrefersHighConfidence(t *testing.T) {
	db := mkdb(
		[]string{"lock", "use", "unlock"},
		[]string{"lock", "use", "unlock"},
		[]string{"lock", "use"},
		[]string{"open", "close"},
	)
	strong := rules.EvaluateRule(db, seqdb.ParsePattern(db.Dict, "open"), seqdb.ParsePattern(db.Dict, "close"))
	weak := rules.EvaluateRule(db, seqdb.ParsePattern(db.Dict, "lock"), seqdb.ParsePattern(db.Dict, "unlock"))
	if weak.Confidence >= strong.Confidence {
		t.Fatalf("test setup wrong: weak %v strong %v", weak.Confidence, strong.Confidence)
	}
	scored := Rules(db, []rules.Rule{weak, strong}, Weights{Confidence: 5, Support: 0.1, Length: 0, Surprise: 0})
	if scored[0].Rule.Confidence < scored[1].Rule.Confidence {
		t.Errorf("high-confidence rule should rank first")
	}
}

func TestTopNHelpers(t *testing.T) {
	db := mkdb([]string{"a", "b"}, []string{"a", "b"})
	pats := []iterpattern.MinedPattern{
		{Pattern: seqdb.ParsePattern(db.Dict, "a"), Support: 2},
		{Pattern: seqdb.ParsePattern(db.Dict, "a b"), Support: 2},
		{Pattern: seqdb.ParsePattern(db.Dict, "b"), Support: 2},
	}
	if got := TopPatterns(db, pats, Weights{}, 2); len(got) != 2 {
		t.Errorf("TopPatterns=%d want 2", len(got))
	}
	if got := TopPatterns(db, pats, Weights{}, 0); len(got) != 3 {
		t.Errorf("TopPatterns(0)=%d want 3", len(got))
	}
	rs := []rules.Rule{
		rules.EvaluateRule(db, seqdb.ParsePattern(db.Dict, "a"), seqdb.ParsePattern(db.Dict, "b")),
	}
	if got := TopRules(db, rs, Weights{}, 5); len(got) != 1 {
		t.Errorf("TopRules=%d want 1", len(got))
	}
}

func TestSurpriseEdgeCases(t *testing.T) {
	db := mkdb([]string{"a", "b"})
	freq := db.EventInstanceCount()
	if got := surprise(nil, 3, freq, 2); got != 0 {
		t.Errorf("empty pattern surprise %v", got)
	}
	if got := surprise(seqdb.ParsePattern(db.Dict, "a"), 0, freq, 2); got != 0 {
		t.Errorf("zero support surprise %v", got)
	}
	if got := surprise(seqdb.ParsePattern(db.Dict, "a b"), 1, freq, 2); got < 0 {
		t.Errorf("surprise must not be negative: %v", got)
	}
}
