package rank

import (
	"math/rand"
	"testing"

	"specmine/internal/episode"
	"specmine/internal/iterpattern"
	"specmine/internal/rules"
	"specmine/internal/seqdb"
	"specmine/internal/seqpattern"
)

func mkdb(traces ...[]string) *seqdb.Database {
	db := seqdb.NewDatabase()
	for _, t := range traces {
		db.AppendNames(t...)
	}
	return db
}

func TestDefaultWeights(t *testing.T) {
	w := Weights{}.orDefault()
	if w != DefaultWeights() {
		t.Errorf("zero weights should become defaults")
	}
	custom := Weights{Support: 3}
	if custom.orDefault() != custom {
		t.Errorf("non-zero weights must be preserved")
	}
}

func TestRankPatternsPrefersLongRecurringBehaviour(t *testing.T) {
	db := mkdb(
		[]string{"init", "configure", "start", "noise1"},
		[]string{"init", "configure", "start", "noise2"},
		[]string{"init", "configure", "start"},
		[]string{"noise1", "noise2"},
	)
	short := iterpattern.MinedPattern{Pattern: seqdb.ParsePattern(db.Dict, "init"), Support: 3, SeqSupport: 3}
	long := iterpattern.MinedPattern{Pattern: seqdb.ParsePattern(db.Dict, "init configure start"), Support: 3, SeqSupport: 3}
	scored := Patterns(db, []iterpattern.MinedPattern{short, long}, Weights{})
	if len(scored) != 2 {
		t.Fatalf("scored=%d", len(scored))
	}
	if !scored[0].Pattern.Pattern.Equal(long.Pattern) {
		t.Errorf("long recurring pattern should rank first, got %s", scored[0].Pattern.Pattern.String(db.Dict))
	}
	if scored[0].Score <= scored[1].Score {
		t.Errorf("scores not ordered: %v <= %v", scored[0].Score, scored[1].Score)
	}
}

func TestRankRulesPrefersHighConfidence(t *testing.T) {
	db := mkdb(
		[]string{"lock", "use", "unlock"},
		[]string{"lock", "use", "unlock"},
		[]string{"lock", "use"},
		[]string{"open", "close"},
	)
	strong := rules.EvaluateRule(db, seqdb.ParsePattern(db.Dict, "open"), seqdb.ParsePattern(db.Dict, "close"))
	weak := rules.EvaluateRule(db, seqdb.ParsePattern(db.Dict, "lock"), seqdb.ParsePattern(db.Dict, "unlock"))
	if weak.Confidence >= strong.Confidence {
		t.Fatalf("test setup wrong: weak %v strong %v", weak.Confidence, strong.Confidence)
	}
	scored := Rules(db, []rules.Rule{weak, strong}, Weights{Confidence: 5, Support: 0.1, Length: 0, Surprise: 0})
	if scored[0].Rule.Confidence < scored[1].Rule.Confidence {
		t.Errorf("high-confidence rule should rank first")
	}
}

func TestTopNHelpers(t *testing.T) {
	db := mkdb([]string{"a", "b"}, []string{"a", "b"})
	pats := []iterpattern.MinedPattern{
		{Pattern: seqdb.ParsePattern(db.Dict, "a"), Support: 2},
		{Pattern: seqdb.ParsePattern(db.Dict, "a b"), Support: 2},
		{Pattern: seqdb.ParsePattern(db.Dict, "b"), Support: 2},
	}
	if got := TopPatterns(db, pats, Weights{}, 2); len(got) != 2 {
		t.Errorf("TopPatterns=%d want 2", len(got))
	}
	if got := TopPatterns(db, pats, Weights{}, 0); len(got) != 3 {
		t.Errorf("TopPatterns(0)=%d want 3", len(got))
	}
	rs := []rules.Rule{
		rules.EvaluateRule(db, seqdb.ParsePattern(db.Dict, "a"), seqdb.ParsePattern(db.Dict, "b")),
	}
	if got := TopRules(db, rs, Weights{}, 5); len(got) != 1 {
		t.Errorf("TopRules=%d want 1", len(got))
	}
}

func TestSurpriseEdgeCases(t *testing.T) {
	db := mkdb([]string{"a", "b"})
	st := statsOf(db)
	if st.total != 2 {
		t.Fatalf("total=%v want 2", st.total)
	}
	if got := surprise(nil, 3, st); got != 0 {
		t.Errorf("empty pattern surprise %v", got)
	}
	if got := surprise(seqdb.ParsePattern(db.Dict, "a"), 0, st); got != 0 {
		t.Errorf("zero support surprise %v", got)
	}
	if got := surprise(seqdb.ParsePattern(db.Dict, "a b"), 1, st); got < 0 {
		t.Errorf("surprise must not be negative: %v", got)
	}
}

// TestIndexStatsMatchRescan pins the index-backed event statistics to the
// database rescan they replaced.
func TestIndexStatsMatchRescan(t *testing.T) {
	db := mkdb(
		[]string{"a", "b", "a", "c"},
		[]string{"b", "b", "c"},
	)
	st := statsOf(db)
	if int(st.total) != db.NumEvents() {
		t.Fatalf("total=%v want %d", st.total, db.NumEvents())
	}
	for e, n := range db.EventInstanceCount() {
		if int(st.freq(e)) != n {
			t.Errorf("freq(%v)=%v want %d", e, st.freq(e), n)
		}
	}
}

func TestRankSeqPatternsAndEpisodes(t *testing.T) {
	db := mkdb(
		[]string{"open", "read", "close", "noise"},
		[]string{"open", "read", "close"},
		[]string{"open", "close"},
	)
	pats := []seqpattern.MinedPattern{
		{Pattern: seqdb.ParsePattern(db.Dict, "open"), SeqSupport: 3},
		{Pattern: seqdb.ParsePattern(db.Dict, "open read close"), SeqSupport: 2},
	}
	scored := SeqPatterns(db, pats, Weights{})
	if len(scored) != 2 {
		t.Fatalf("scored=%d", len(scored))
	}
	if !scored[0].Pattern.Pattern.Equal(pats[1].Pattern) {
		t.Errorf("long recurring sequential pattern should rank first")
	}
	if got := TopSeqPatterns(db, pats, Weights{}, 1); len(got) != 1 {
		t.Errorf("TopSeqPatterns=%d want 1", len(got))
	}

	eps := []episode.Episode{
		{Pattern: seqdb.ParsePattern(db.Dict, "noise"), Windows: 2, Frequency: 0.2},
		{Pattern: seqdb.ParsePattern(db.Dict, "open read close"), Windows: 6, Frequency: 0.6},
	}
	se := Episodes(db, eps, Weights{})
	if !se[0].Episode.Pattern.Equal(eps[1].Pattern) {
		t.Errorf("frequent long episode should rank first")
	}
	if got := TopEpisodes(db, eps, Weights{}, 1); len(got) != 1 {
		t.Errorf("TopEpisodes=%d want 1", len(got))
	}
}

// TestRankingPermutationInvariant is the determinism property: whatever
// order the mined specifications arrive in, the ranking is identical —
// score ties are broken by content, never by input position.
func TestRankingPermutationInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	db := mkdb(
		[]string{"a", "b", "c", "d"},
		[]string{"a", "b", "c"},
		[]string{"b", "d", "a"},
		[]string{"c", "c", "d"},
	)
	// Several patterns share supports (and therefore scores at equal length),
	// so tie-breaking is actually exercised.
	var pats []iterpattern.MinedPattern
	var spats []seqpattern.MinedPattern
	var eps []episode.Episode
	for _, spec := range []string{"a", "b", "c", "d", "a b", "b c", "c d", "a c", "b d"} {
		p := seqdb.ParsePattern(db.Dict, spec)
		pats = append(pats, iterpattern.MinedPattern{Pattern: p, Support: 3, SeqSupport: 2})
		spats = append(spats, seqpattern.MinedPattern{Pattern: p, SeqSupport: 2})
		eps = append(eps, episode.Episode{Pattern: p, Windows: 4, Frequency: 0.4})
	}
	var ruleSet []rules.Rule
	for _, pair := range [][2]string{{"a", "b"}, {"b", "c"}, {"c", "d"}, {"a", "c"}} {
		ruleSet = append(ruleSet, rules.Rule{
			Pre:        seqdb.ParsePattern(db.Dict, pair[0]),
			Post:       seqdb.ParsePattern(db.Dict, pair[1]),
			SeqSupport: 2, InstanceSupport: 3, Confidence: 0.5,
		})
	}

	wantP := Patterns(db, pats, Weights{})
	wantR := Rules(db, ruleSet, Weights{})
	wantS := SeqPatterns(db, spats, Weights{})
	wantE := Episodes(db, eps, Weights{})
	for iter := 0; iter < 20; iter++ {
		rng.Shuffle(len(pats), func(i, j int) { pats[i], pats[j] = pats[j], pats[i] })
		rng.Shuffle(len(ruleSet), func(i, j int) { ruleSet[i], ruleSet[j] = ruleSet[j], ruleSet[i] })
		rng.Shuffle(len(spats), func(i, j int) { spats[i], spats[j] = spats[j], spats[i] })
		rng.Shuffle(len(eps), func(i, j int) { eps[i], eps[j] = eps[j], eps[i] })
		gotP := Patterns(db, pats, Weights{})
		for k := range wantP {
			if !gotP[k].Pattern.Pattern.Equal(wantP[k].Pattern.Pattern) || gotP[k].Score != wantP[k].Score {
				t.Fatalf("iter %d: pattern ranking not permutation-invariant at %d", iter, k)
			}
		}
		gotR := Rules(db, ruleSet, Weights{})
		for k := range wantR {
			if !gotR[k].Rule.Pre.Equal(wantR[k].Rule.Pre) || !gotR[k].Rule.Post.Equal(wantR[k].Rule.Post) || gotR[k].Score != wantR[k].Score {
				t.Fatalf("iter %d: rule ranking not permutation-invariant at %d", iter, k)
			}
		}
		gotS := SeqPatterns(db, spats, Weights{})
		for k := range wantS {
			if !gotS[k].Pattern.Pattern.Equal(wantS[k].Pattern.Pattern) || gotS[k].Score != wantS[k].Score {
				t.Fatalf("iter %d: seq-pattern ranking not permutation-invariant at %d", iter, k)
			}
		}
		gotE := Episodes(db, eps, Weights{})
		for k := range wantE {
			if !gotE[k].Episode.Pattern.Equal(wantE[k].Episode.Pattern) || gotE[k].Score != wantE[k].Score {
				t.Fatalf("iter %d: episode ranking not permutation-invariant at %d", iter, k)
			}
		}
	}
}
