// Package rank scores and orders mined specifications. The paper lists
// ranking of mined patterns and rules as future work (Section 8: "It will
// also be interesting to develop a method to rank mined patterns and rules");
// this package provides the straightforward instantiation of that idea:
// interestingness scores combining support, confidence, length and an
// expectation-based surprise factor, so that users reviewing mined
// specifications see the most informative ones first.
//
// Scoring covers every specification kind the repository mines: iterative
// patterns and recurrent rules (the headline miners) as well as sequential
// patterns and episodes (the comparator miners), so comparator studies rank
// their output with the same signals. Event statistics come straight from
// the database's flat positional index — O(1) per event — instead of the
// per-call full-database rescan the seed performed, and every ordering is
// fully deterministic: ties in score break by pattern (or rule) signature,
// so the ranking is invariant under permutation of its input.
package rank

import (
	"math"
	"sort"

	"specmine/internal/episode"
	"specmine/internal/iterpattern"
	"specmine/internal/rules"
	"specmine/internal/seqdb"
	"specmine/internal/seqpattern"
)

// Weights configures how the individual signals combine into one score. The
// zero value is replaced by DefaultWeights.
type Weights struct {
	// Support weights the (log-scaled) instance or sequence support.
	Support float64
	// Confidence weights a rule's confidence (for episodes, the window
	// frequency plays this role; ignored for patterns).
	Confidence float64
	// Length weights the specification length: longer patterns and rules
	// describe more behaviour and are usually more useful to an engineer.
	Length float64
	// Surprise weights the lift-style factor: how much more often the
	// specification holds than expected if its events were independent.
	Surprise float64
}

// DefaultWeights balances the four signals; they were chosen so that the
// JBoss case-study specifications rank at the top of their runs.
func DefaultWeights() Weights {
	return Weights{Support: 1, Confidence: 2, Length: 0.5, Surprise: 1}
}

func (w Weights) orDefault() Weights {
	if w == (Weights{}) {
		return DefaultWeights()
	}
	return w
}

// dbStats reads event statistics off the flat positional index: occurrence
// counts per event and overall, both O(1) per query.
type dbStats struct {
	idx   *seqdb.PositionIndex
	total float64
}

func statsOf(db *seqdb.Database) dbStats {
	idx := db.FlatIndex()
	return dbStats{idx: idx, total: float64(idx.NumPositions())}
}

func (st dbStats) freq(e seqdb.EventID) float64 {
	return float64(st.idx.EventInstanceCount(e))
}

// ScoredPattern pairs a mined pattern with its interestingness score.
type ScoredPattern struct {
	Pattern iterpattern.MinedPattern
	Score   float64
}

// ScoredRule pairs a mined rule with its interestingness score.
type ScoredRule struct {
	Rule  rules.Rule
	Score float64
}

// ScoredSeqPattern pairs a mined sequential pattern with its score.
type ScoredSeqPattern struct {
	Pattern seqpattern.MinedPattern
	Score   float64
}

// ScoredEpisode pairs a mined episode with its score.
type ScoredEpisode struct {
	Episode episode.Episode
	Score   float64
}

// Patterns scores and sorts mined patterns, most interesting first. Ties
// break by pattern content, so the order is independent of the input order.
func Patterns(db *seqdb.Database, patterns []iterpattern.MinedPattern, w Weights) []ScoredPattern {
	w = w.orDefault()
	st := statsOf(db)
	out := make([]ScoredPattern, 0, len(patterns))
	for _, p := range patterns {
		out = append(out, ScoredPattern{Pattern: p, Score: patternScore(p, st, w)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return seqdb.ComparePatterns(out[i].Pattern.Pattern, out[j].Pattern.Pattern) < 0
	})
	return out
}

// Rules scores and sorts mined rules, most interesting first. Ties break by
// the rule's premise then consequent, so the order is independent of the
// input order.
func Rules(db *seqdb.Database, ruleSet []rules.Rule, w Weights) []ScoredRule {
	w = w.orDefault()
	st := statsOf(db)
	out := make([]ScoredRule, 0, len(ruleSet))
	for _, r := range ruleSet {
		out = append(out, ScoredRule{Rule: r, Score: ruleScore(r, st, w)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if c := seqdb.ComparePatterns(out[i].Rule.Pre, out[j].Rule.Pre); c != 0 {
			return c < 0
		}
		return seqdb.ComparePatterns(out[i].Rule.Post, out[j].Rule.Post) < 0
	})
	return out
}

// SeqPatterns scores and sorts mined sequential patterns, most interesting
// first, with the same deterministic tie-breaking as Patterns.
func SeqPatterns(db *seqdb.Database, patterns []seqpattern.MinedPattern, w Weights) []ScoredSeqPattern {
	w = w.orDefault()
	st := statsOf(db)
	out := make([]ScoredSeqPattern, 0, len(patterns))
	for _, p := range patterns {
		score := w.Support * math.Log1p(float64(p.SeqSupport))
		score += w.Length * float64(p.Pattern.Len())
		score += w.Surprise * surprise(p.Pattern, float64(p.SeqSupport), st)
		out = append(out, ScoredSeqPattern{Pattern: p, Score: score})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return seqdb.ComparePatterns(out[i].Pattern.Pattern, out[j].Pattern.Pattern) < 0
	})
	return out
}

// Episodes scores and sorts mined episodes, most interesting first, with
// deterministic tie-breaking by episode content. The episode's window
// frequency plays the confidence role: an episode holding in most windows is
// a strong local invariant.
func Episodes(db *seqdb.Database, eps []episode.Episode, w Weights) []ScoredEpisode {
	w = w.orDefault()
	st := statsOf(db)
	out := make([]ScoredEpisode, 0, len(eps))
	for _, e := range eps {
		score := w.Support * math.Log1p(float64(e.Windows))
		score += w.Confidence * e.Frequency
		score += w.Length * float64(e.Pattern.Len())
		score += w.Surprise * surprise(e.Pattern, float64(e.Windows), st)
		out = append(out, ScoredEpisode{Episode: e, Score: score})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return seqdb.ComparePatterns(out[i].Episode.Pattern, out[j].Episode.Pattern) < 0
	})
	return out
}

func patternScore(p iterpattern.MinedPattern, st dbStats, w Weights) float64 {
	score := w.Support * math.Log1p(float64(p.Support))
	score += w.Length * float64(p.Pattern.Len())
	score += w.Surprise * surprise(p.Pattern, float64(p.Support), st)
	return score
}

func ruleScore(r rules.Rule, st dbStats, w Weights) float64 {
	score := w.Support * math.Log1p(float64(r.InstanceSupport))
	score += w.Confidence * r.Confidence
	score += w.Length * float64(r.Pre.Len()+r.Post.Len())
	score += w.Surprise * surprise(r.Concat(), float64(r.InstanceSupport), st)
	return score
}

// surprise is a lift-style signal: the log-ratio between the observed support
// of the specification and the support expected if its (rarest) constituent
// events co-occurred by chance. Specifications built from individually rare
// events that nevertheless recur together score high.
func surprise(p seqdb.Pattern, observed float64, st dbStats) float64 {
	if observed <= 0 || st.total <= 0 || len(p) == 0 {
		return 0
	}
	// Expected support approximated by the frequency of the rarest event
	// scaled by the probability of the remaining events appearing after it.
	rarest := math.MaxFloat64
	prob := 1.0
	for _, e := range p {
		f := st.freq(e)
		if f < rarest {
			rarest = f
		}
		prob *= f / st.total
	}
	expected := rarest * prob
	if expected <= 0 {
		expected = 1e-9
	}
	v := math.Log(observed / expected)
	if v < 0 {
		return 0
	}
	return v
}

// TopPatterns is a convenience returning the n highest-scoring patterns.
func TopPatterns(db *seqdb.Database, patterns []iterpattern.MinedPattern, w Weights, n int) []ScoredPattern {
	return topN(Patterns(db, patterns, w), n)
}

// TopRules is a convenience returning the n highest-scoring rules.
func TopRules(db *seqdb.Database, ruleSet []rules.Rule, w Weights, n int) []ScoredRule {
	return topN(Rules(db, ruleSet, w), n)
}

// TopSeqPatterns is a convenience returning the n highest-scoring sequential
// patterns.
func TopSeqPatterns(db *seqdb.Database, patterns []seqpattern.MinedPattern, w Weights, n int) []ScoredSeqPattern {
	return topN(SeqPatterns(db, patterns, w), n)
}

// TopEpisodes is a convenience returning the n highest-scoring episodes.
func TopEpisodes(db *seqdb.Database, eps []episode.Episode, w Weights, n int) []ScoredEpisode {
	return topN(Episodes(db, eps, w), n)
}

func topN[T any](scored []T, n int) []T {
	if n > 0 && n < len(scored) {
		scored = scored[:n]
	}
	return scored
}
