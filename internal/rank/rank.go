// Package rank scores and orders mined specifications. The paper lists
// ranking of mined patterns and rules as future work (Section 8: "It will
// also be interesting to develop a method to rank mined patterns and rules");
// this package provides the straightforward instantiation of that idea:
// interestingness scores combining support, confidence, length and an
// expectation-based surprise factor, so that users reviewing mined
// specifications see the most informative ones first.
package rank

import (
	"math"
	"sort"

	"specmine/internal/iterpattern"
	"specmine/internal/rules"
	"specmine/internal/seqdb"
)

// Weights configures how the individual signals combine into one score. The
// zero value is replaced by DefaultWeights.
type Weights struct {
	// Support weights the (log-scaled) instance or sequence support.
	Support float64
	// Confidence weights a rule's confidence (ignored for patterns).
	Confidence float64
	// Length weights the specification length: longer patterns and rules
	// describe more behaviour and are usually more useful to an engineer.
	Length float64
	// Surprise weights the lift-style factor: how much more often the
	// specification holds than expected if its events were independent.
	Surprise float64
}

// DefaultWeights balances the four signals; they were chosen so that the
// JBoss case-study specifications rank at the top of their runs.
func DefaultWeights() Weights {
	return Weights{Support: 1, Confidence: 2, Length: 0.5, Surprise: 1}
}

func (w Weights) orDefault() Weights {
	if w == (Weights{}) {
		return DefaultWeights()
	}
	return w
}

// ScoredPattern pairs a mined pattern with its interestingness score.
type ScoredPattern struct {
	Pattern iterpattern.MinedPattern
	Score   float64
}

// ScoredRule pairs a mined rule with its interestingness score.
type ScoredRule struct {
	Rule  rules.Rule
	Score float64
}

// Patterns scores and sorts mined patterns, most interesting first.
func Patterns(db *seqdb.Database, patterns []iterpattern.MinedPattern, w Weights) []ScoredPattern {
	w = w.orDefault()
	freq := eventFrequencies(db)
	total := float64(db.NumEvents())
	out := make([]ScoredPattern, 0, len(patterns))
	for _, p := range patterns {
		out = append(out, ScoredPattern{Pattern: p, Score: patternScore(p, freq, total, w)})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return out
}

// Rules scores and sorts mined rules, most interesting first.
func Rules(db *seqdb.Database, ruleSet []rules.Rule, w Weights) []ScoredRule {
	w = w.orDefault()
	freq := eventFrequencies(db)
	total := float64(db.NumEvents())
	out := make([]ScoredRule, 0, len(ruleSet))
	for _, r := range ruleSet {
		out = append(out, ScoredRule{Rule: r, Score: ruleScore(r, freq, total, w)})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return out
}

func patternScore(p iterpattern.MinedPattern, freq map[seqdb.EventID]int, total float64, w Weights) float64 {
	score := w.Support * math.Log1p(float64(p.Support))
	score += w.Length * float64(p.Pattern.Len())
	score += w.Surprise * surprise(p.Pattern, float64(p.Support), freq, total)
	return score
}

func ruleScore(r rules.Rule, freq map[seqdb.EventID]int, total float64, w Weights) float64 {
	score := w.Support * math.Log1p(float64(r.InstanceSupport))
	score += w.Confidence * r.Confidence
	score += w.Length * float64(r.Pre.Len()+r.Post.Len())
	score += w.Surprise * surprise(r.Concat(), float64(r.InstanceSupport), freq, total)
	return score
}

// surprise is a lift-style signal: the log-ratio between the observed support
// of the specification and the support expected if its (rarest) constituent
// events co-occurred by chance. Specifications built from individually rare
// events that nevertheless recur together score high.
func surprise(p seqdb.Pattern, observed float64, freq map[seqdb.EventID]int, total float64) float64 {
	if observed <= 0 || total <= 0 || len(p) == 0 {
		return 0
	}
	// Expected support approximated by the frequency of the rarest event
	// scaled by the probability of the remaining events appearing after it.
	rarest := math.MaxFloat64
	prob := 1.0
	for _, e := range p {
		f := float64(freq[e])
		if f < rarest {
			rarest = f
		}
		prob *= f / total
	}
	expected := rarest * prob
	if expected <= 0 {
		expected = 1e-9
	}
	v := math.Log(observed / expected)
	if v < 0 {
		return 0
	}
	return v
}

func eventFrequencies(db *seqdb.Database) map[seqdb.EventID]int {
	return db.EventInstanceCount()
}

// TopPatterns is a convenience returning the n highest-scoring patterns.
func TopPatterns(db *seqdb.Database, patterns []iterpattern.MinedPattern, w Weights, n int) []ScoredPattern {
	scored := Patterns(db, patterns, w)
	if n > 0 && n < len(scored) {
		scored = scored[:n]
	}
	return scored
}

// TopRules is a convenience returning the n highest-scoring rules.
func TopRules(db *seqdb.Database, ruleSet []rules.Rule, w Weights, n int) []ScoredRule {
	scored := Rules(db, ruleSet, w)
	if n > 0 && n < len(scored) {
		scored = scored[:n]
	}
	return scored
}
