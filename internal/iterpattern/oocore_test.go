package iterpattern

import (
	"strings"
	"testing"
)

// TestMineSourceRejectsMaxPatterns: the early-stop cutoff depends on
// sequential emission order over one global database, which a per-seed run
// cannot honour — the option must be rejected before any source access (nil
// is safe here precisely because the check fires first).
func TestMineSourceRejectsMaxPatterns(t *testing.T) {
	_, err := MineSource(nil, Options{MinInstanceSupport: 1, MaxPatterns: 3}, true)
	if err == nil || !strings.Contains(err.Error(), "MaxPatterns") {
		t.Fatalf("MaxPatterns accepted out-of-core: %v", err)
	}
}
