package iterpattern

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"specmine/internal/qre"
	"specmine/internal/seqdb"
)

// MinedPattern is one pattern reported by a miner together with its support
// statistics.
type MinedPattern struct {
	Pattern seqdb.Pattern
	// Support is the instance support: the total number of instances across
	// the database (repetition within a sequence counts).
	Support int
	// SeqSupport is the number of distinct sequences containing at least one
	// instance.
	SeqSupport int
	// Instances holds the instance list when Options.IncludeInstances is set.
	Instances []qre.Instance
}

// String renders the mined pattern with its statistics.
func (m MinedPattern) String(dict *seqdb.Dictionary) string {
	return fmt.Sprintf("%s sup=%d seqs=%d", m.Pattern.String(dict), m.Support, m.SeqSupport)
}

// Stats aggregates counters describing a mining run. They are reported by the
// experiment harness to explain where the Closed miner's speedup comes from.
type Stats struct {
	// NodesExplored counts search-tree nodes whose support was evaluated.
	NodesExplored int
	// NodesPrunedInfrequent counts candidate extensions rejected by the
	// apriori property (Theorem 1).
	NodesPrunedInfrequent int
	// SubtreesPrunedEquivalent counts subtrees skipped by the closed miner's
	// instance-set equivalence pruning.
	SubtreesPrunedEquivalent int
	// NonClosedSuppressed counts frequent patterns withheld from the output
	// by the closedness checks.
	NonClosedSuppressed int
	// PatternsEmitted is the number of patterns in the result.
	PatternsEmitted int
	// Duration is the wall-clock time of the run.
	Duration time.Duration
}

// merge accumulates the search counters of other into s. Duration and
// PatternsEmitted are set once at the end of a run, not merged.
func (s *Stats) merge(other Stats) {
	s.NodesExplored += other.NodesExplored
	s.NodesPrunedInfrequent += other.NodesPrunedInfrequent
	s.SubtreesPrunedEquivalent += other.SubtreesPrunedEquivalent
	s.NonClosedSuppressed += other.NonClosedSuppressed
}

// Result is the outcome of a mining run.
type Result struct {
	Patterns []MinedPattern
	Stats    Stats
	// MinSupport is the absolute instance-support threshold that was applied.
	MinSupport int
}

// Sort orders the patterns by decreasing support, then by length and content,
// giving deterministic output for rendering and tests.
func (r *Result) Sort() {
	sort.Slice(r.Patterns, func(i, j int) bool {
		a, b := r.Patterns[i], r.Patterns[j]
		if a.Support != b.Support {
			return a.Support > b.Support
		}
		return seqdb.ComparePatterns(a.Pattern, b.Pattern) < 0
	})
}

// Longest returns a pattern of maximal length (the paper's Figure 4 reports
// "the longest iterative pattern mined"); ties break toward higher support.
// It returns false when the result is empty.
func (r *Result) Longest() (MinedPattern, bool) {
	if len(r.Patterns) == 0 {
		return MinedPattern{}, false
	}
	best := r.Patterns[0]
	for _, p := range r.Patterns[1:] {
		if p.Pattern.Len() > best.Pattern.Len() ||
			(p.Pattern.Len() == best.Pattern.Len() && p.Support > best.Support) {
			best = p
		}
	}
	return best, true
}

// Find returns the mined entry for pattern p, if present.
func (r *Result) Find(p seqdb.Pattern) (MinedPattern, bool) {
	for _, m := range r.Patterns {
		if m.Pattern.Equal(p) {
			return m, true
		}
	}
	return MinedPattern{}, false
}

// Render writes a human-readable listing of up to limit patterns (all of them
// when limit <= 0) using dict for event names.
func (r *Result) Render(dict *seqdb.Dictionary, limit int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d patterns (min support %d, %v)\n", len(r.Patterns), r.MinSupport, r.Stats.Duration.Round(time.Millisecond))
	n := len(r.Patterns)
	if limit > 0 && limit < n {
		n = limit
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "  %s\n", r.Patterns[i].String(dict))
	}
	if n < len(r.Patterns) {
		fmt.Fprintf(&b, "  ... %d more\n", len(r.Patterns)-n)
	}
	return b.String()
}
