package iterpattern

import (
	"specmine/internal/par"
	"specmine/internal/qre"
	"specmine/internal/seqdb"
)

// closednessFilter applies the closedness check of Definition 4.2 to the
// candidate patterns collected during the search. A pattern P is dropped when
// some super-sequence Q has the same support and every instance of P
// corresponds to (is contained in the span of) a distinct instance of Q.
//
// Witness super-sequences are searched slot by slot: a witness inserts a
// series of events either before the pattern (prefix), after it (suffix), or
// into one of its gaps (infix). For each slot the filter inspects the
// corresponding region of every instance — the backward window, the forward
// window, or the gap between the two neighbouring matched positions — and
// builds candidate insertions from the events common to all regions: each
// common event on its own (repeated as often as it appears when the
// multiplicities agree) and the common events taken together when their
// interleaving is identical in every region. Every candidate is then verified
// exactly against the database (instance count equality plus correspondence),
// so a pattern is only ever dropped with a genuine witness in hand.
//
// The filter is a hot path on dense workloads — it dominated the profile of
// the looping tracesim cases — so it follows the same discipline as the
// search itself: per-worker epoch-stamped scratch instead of maps, reused
// buffers instead of per-candidate allocations, and witness verification that
// is count-bounded (it aborts as soon as a witness provably has more
// instances than the pattern) and runs each trace through a single-pass
// lockstep matcher instead of re-matching from every candidate start.
func (m *miner) closednessFilter(candidates []MinedPattern) []MinedPattern {
	// The check is independent per candidate and only reads the database, so
	// it parallelises trivially; the keep mask preserves order.
	keep := make([]bool, len(candidates))
	par.ForWorker(len(candidates), m.opts.effectiveWorkers(), func() *closedWorker {
		return newClosedWorker(m.db, m.idx)
	}, func(w *closedWorker, i int) {
		keep[i] = w.isClosed(candidates[i])
	})
	kept := candidates[:0]
	for i, cand := range candidates {
		if keep[i] {
			kept = append(kept, cand)
		} else {
			m.stats.NonClosedSuppressed++
		}
	}
	return kept
}

// closedWorker holds the reusable buffers of one closedness-checking
// goroutine. All per-event arrays are epoch-stamped (seqdb.BumpEpoch).
type closedWorker struct {
	db  *seqdb.Database
	idx *seqdb.PositionIndex

	inAlpha    []uint32 // event -> alphaEpoch when in the current alphabet
	alphaEpoch uint32

	mult      []int32  // agreed multiplicity per common event, -1 when disagreeing
	multStamp []uint32 // event -> multEpoch while a member of common
	multEpoch uint32

	cnt      []int32 // per-region multiplicity scratch
	cntStamp []uint32
	cntEpoch uint32

	common  []seqdb.EventID // events occurring in every region so far
	regions [][]seqdb.Sequence
	matched []int
	series  []seqdb.EventID // candidate insertion being built
	first   []seqdb.EventID // restriction of the first region

	exp    []int32 // lockstep matcher: start expecting q[k], or -1
	qBuf   seqdb.Pattern
	qInsts []qre.Instance
	used   []bool
}

func newClosedWorker(db *seqdb.Database, idx *seqdb.PositionIndex) *closedWorker {
	numEvents := idx.NumEvents()
	return &closedWorker{
		db:        db,
		idx:       idx,
		inAlpha:   make([]uint32, numEvents),
		mult:      make([]int32, numEvents),
		multStamp: make([]uint32, numEvents),
		cnt:       make([]int32, numEvents),
		cntStamp:  make([]uint32, numEvents),
	}
}

func (w *closedWorker) isClosed(cand MinedPattern) bool {
	p := cand.Pattern
	insts := cand.Instances
	if len(insts) == 0 {
		return true
	}
	alphaEpoch := seqdb.BumpEpoch(&w.alphaEpoch, w.inAlpha)
	for _, e := range p {
		w.inAlpha[e] = alphaEpoch
	}

	// regions[slot][k] is the event series of instance k's region for that
	// insertion slot. The region backing slices are views into the traces;
	// only the per-slot headers are (re)used worker state.
	for len(w.regions) <= len(p) {
		w.regions = append(w.regions, nil)
	}
	regions := w.regions[:len(p)+1]
	for slot := range regions {
		regions[slot] = regions[slot][:0]
	}
	for _, in := range insts {
		s := w.db.Sequences[in.Seq]
		matched := w.matchedPositions(s, p, in.Start)
		if matched == nil {
			// Should not happen: the instance was produced by the miner.
			continue
		}
		regions[0] = append(regions[0], sliceRegion(s, w.backwardWindowStart(s, in.Start), in.Start-1))
		for g := 1; g < len(p); g++ {
			regions[g] = append(regions[g], sliceRegion(s, matched[g-1]+1, matched[g]-1))
		}
		regions[len(p)] = append(regions[len(p)], sliceRegion(s, in.End+1, w.forwardWindowEnd(s, in.End)))
	}

	for slot := 0; slot <= len(p); slot++ {
		if !w.slotClosed(p, insts, slot, regions[slot]) {
			return false
		}
	}
	return true
}

// slotClosed derives the insertion series worth verifying for one slot from
// the per-instance region contents and verifies each; it reports false as
// soon as a witness is confirmed. An event can only take part in a witness if
// it occurs in every region; a single-event insertion must use the same
// multiplicity everywhere (the one-to-one correspondence requirement forces
// the witness to absorb every occurrence in the gap); and a multi-event
// insertion is proposed when the regions, restricted to the shared events
// with agreeing multiplicities, spell out the same series.
func (w *closedWorker) slotClosed(p seqdb.Pattern, insts []qre.Instance, slot int, regions []seqdb.Sequence) bool {
	if len(regions) == 0 {
		return true
	}
	// Multiplicities of the first region seed the common set.
	multEpoch := seqdb.BumpEpoch(&w.multEpoch, w.multStamp)
	common := w.common[:0]
	for _, ev := range regions[0] {
		if w.multStamp[ev] != multEpoch {
			w.multStamp[ev] = multEpoch
			w.mult[ev] = 0
			common = append(common, ev)
		}
		w.mult[ev]++
	}
	// Intersect with every further region, downgrading to multiplicity -1 on
	// disagreement. Dropped events get their stamp cleared so membership
	// stays readable from multStamp.
	for _, region := range regions[1:] {
		if len(common) == 0 {
			w.common = common
			return true
		}
		cntEpoch := seqdb.BumpEpoch(&w.cntEpoch, w.cntStamp)
		for _, ev := range region {
			if w.cntStamp[ev] != cntEpoch {
				w.cntStamp[ev] = cntEpoch
				w.cnt[ev] = 0
			}
			w.cnt[ev]++
		}
		kept := common[:0]
		for _, ev := range common {
			if w.cntStamp[ev] != cntEpoch {
				w.multStamp[ev] = 0
				continue
			}
			if w.mult[ev] != -1 && w.cnt[ev] != w.mult[ev] {
				w.mult[ev] = -1
			}
			kept = append(kept, ev)
		}
		common = kept
	}
	w.common = common
	if len(common) == 0 {
		return true
	}

	// Single-event insertions.
	agreeing := 0
	for _, ev := range common {
		c := w.mult[ev]
		if c == -1 {
			// The event occurs everywhere but with differing multiplicities;
			// a single occurrence can still witness a prefix/suffix border, so
			// propose the length-1 insertion.
			w.series = append(w.series[:0], ev)
			if w.witnesses(p, insts, slot, w.series) {
				return false
			}
			continue
		}
		agreeing++
		series := w.series[:0]
		for i := int32(0); i < c; i++ {
			series = append(series, ev)
		}
		w.series = series
		if w.witnesses(p, insts, slot, series) {
			return false
		}
		if c > 1 {
			w.series = append(w.series[:0], ev)
			if w.witnesses(p, insts, slot, w.series) {
				return false
			}
		}
	}

	// Multi-event insertion: the restriction of every region to the agreeing
	// events, when identical across regions. Membership is read from the mult
	// stamps, so restrictions are compared in place without materialising
	// more than the first one.
	if agreeing > 1 {
		first := w.first[:0]
		for _, ev := range regions[0] {
			if w.multStamp[ev] == multEpoch && w.mult[ev] != -1 {
				first = append(first, ev)
			}
		}
		w.first = first
		same := len(first) > 0
		for _, region := range regions[1:] {
			if !same {
				break
			}
			i := 0
			for _, ev := range region {
				if w.multStamp[ev] != multEpoch || w.mult[ev] == -1 {
					continue
				}
				if i >= len(first) || first[i] != ev {
					same = false
					break
				}
				i++
			}
			if i != len(first) {
				same = false
			}
		}
		if same && w.witnesses(p, insts, slot, first) {
			return false
		}
	}
	return true
}

// witnesses verifies exactly whether inserting series at the given slot of p
// produces a super-pattern with identical support whose instances contain the
// instances of p (Definition 4.2). Verification is count-bounded: finding
// more instances than p has refutes the witness immediately.
func (w *closedWorker) witnesses(p seqdb.Pattern, insts []qre.Instance, slot int, series []seqdb.EventID) bool {
	q := append(w.qBuf[:0], p[:slot]...)
	q = append(q, series...)
	q = append(q, p[slot:]...)
	w.qBuf = q
	qInsts, ok := w.findInstancesBounded(q, len(insts))
	if !ok || len(qInsts) != len(insts) {
		return false
	}
	return w.correspondsTo(insts, qInsts)
}

// findInstancesBounded returns every instance of q across the database in
// (sequence, start) order, reusing the worker's buffer, or ok=false as soon
// as more than limit instances exist.
//
// Each trace is scanned once with a lockstep automaton instead of re-matching
// from every occurrence of q[0]. The QRE semantics make this exact: the gaps
// of an instance may not contain any alphabet event, so every partial match
// alive at an alphabet-event position must consume that event (advance) or
// die. Partial matches therefore march in lockstep, and since every new match
// starts at an alphabet event too, at most one partial match occupies each
// automaton stage — the state is one start position per stage.
func (w *closedWorker) findInstancesBounded(q seqdb.Pattern, limit int) ([]qre.Instance, bool) {
	alphaEpoch := seqdb.BumpEpoch(&w.alphaEpoch, w.inAlpha)
	for _, e := range q {
		w.inAlpha[e] = alphaEpoch
	}
	L := len(q)
	if cap(w.exp) < L {
		w.exp = make([]int32, L)
	}
	exp := w.exp[:L]
	out := w.qInsts[:0]
	defer func() { w.qInsts = out[:0] }()

	// Only sequences containing every event of q can host an instance; the
	// postings walk keeps the (sequence, start) output order.
scan:
	for _, si32 := range w.idx.SeqsContaining(q[0]) {
		si := int(si32)
		for _, e := range q[1:] {
			if e != q[0] && w.idx.Positions(si, e) == nil {
				continue scan
			}
		}
		s := w.db.Sequences[si]
		for k := range exp {
			exp[k] = -1
		}
		for j, ev := range s {
			if w.inAlpha[ev] != alphaEpoch {
				continue
			}
			if L == 1 {
				if ev == q[0] {
					if len(out) >= limit {
						return nil, false
					}
					out = append(out, qre.Instance{Seq: si, Start: j, End: j})
				}
				continue
			}
			// A match expecting the final event completes here or dies; the
			// remaining stages shift down (descending order reads pre-update
			// values); stage 1 restarts when this event can open an instance.
			if exp[L-1] != -1 && q[L-1] == ev {
				if len(out) >= limit {
					return nil, false
				}
				out = append(out, qre.Instance{Seq: si, Start: int(exp[L-1]), End: j})
			}
			for k := L - 1; k >= 2; k-- {
				if q[k-1] == ev {
					exp[k] = exp[k-1]
				} else {
					exp[k] = -1
				}
			}
			if ev == q[0] {
				exp[1] = int32(j)
			} else {
				exp[1] = -1
			}
		}
	}
	return out, true
}

// correspondsTo reports whether every instance in sub corresponds to a unique
// instance in super (Definition 4.2, condition 2), reusing the worker's used
// mask. Both slices are sorted by (Seq, Start).
func (w *closedWorker) correspondsTo(sub, super []qre.Instance) bool {
	if cap(w.used) < len(super) {
		w.used = make([]bool, len(super))
	}
	used := w.used[:len(super)]
	for i := range used {
		used[i] = false
	}
	for _, si := range sub {
		found := false
		for j, qi := range super {
			if used[j] {
				continue
			}
			if qi.Contains(si) {
				used[j] = true
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// sliceRegion returns s[lo..hi] clamped to valid bounds (empty when hi < lo).
func sliceRegion(s seqdb.Sequence, lo, hi int) seqdb.Sequence {
	if lo < 0 {
		lo = 0
	}
	if hi >= len(s) {
		hi = len(s) - 1
	}
	if hi < lo {
		return nil
	}
	return s[lo : hi+1]
}

// matchedPositions returns the positions of every pattern event for the
// instance of p starting at start, or nil if no instance starts there. The
// result is appended into the worker's buffer, valid until the next call.
// Alphabet membership is read from the inAlpha stamps set by isClosed.
func (w *closedWorker) matchedPositions(s seqdb.Sequence, p seqdb.Pattern, start int) []int {
	if start < 0 || start >= len(s) || s[start] != p[0] {
		return nil
	}
	out := append(w.matched[:0], start)
	pos := start
	for k := 1; k < len(p); k++ {
		pos++
		for pos < len(s) && w.inAlpha[s[pos]] != w.alphaEpoch {
			pos++
		}
		if pos >= len(s) || s[pos] != p[k] {
			w.matched = out
			return nil
		}
		out = append(out, pos)
	}
	w.matched = out
	return out
}

// backwardWindowStart returns the first position of the backward window of an
// instance starting at start: the window extends from start-1 backwards up to
// and including the nearest earlier event of the pattern's alphabet.
func (w *closedWorker) backwardWindowStart(s seqdb.Sequence, start int) int {
	for i := start - 1; i >= 0; i-- {
		if w.inAlpha[s[i]] == w.alphaEpoch {
			return i
		}
	}
	return 0
}

// forwardWindowEnd returns the last position of the forward window of an
// instance ending at end: the window extends from end+1 forwards up to and
// including the nearest later event of the pattern's alphabet.
func (w *closedWorker) forwardWindowEnd(s seqdb.Sequence, end int) int {
	for i := end + 1; i < len(s); i++ {
		if w.inAlpha[s[i]] == w.alphaEpoch {
			return i
		}
	}
	return len(s) - 1
}
