package iterpattern

import (
	"math/rand"
	"testing"

	"specmine/internal/qre"
	"specmine/internal/seqdb"
)

// TestLockstepMatchesFindAllInstances pins the closedness filter's
// single-pass lockstep instance finder to the reference qre.FindAllInstances
// on randomized databases, including the bounded-abort contract.
func TestLockstepMatchesFindAllInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 300; iter++ {
		db := seqdb.NewDatabase()
		alphabet := 3 + rng.Intn(3)
		for i := 0; i < alphabet; i++ {
			db.Dict.Intern(string(rune('a' + i)))
		}
		for i := 0; i < 3; i++ {
			n := 1 + rng.Intn(15)
			s := make(seqdb.Sequence, n)
			for j := range s {
				s[j] = seqdb.EventID(rng.Intn(alphabet))
			}
			db.Append(s)
		}
		w := newClosedWorker(db, db.FlatIndex())
		for trial := 0; trial < 10; trial++ {
			plen := 1 + rng.Intn(4)
			p := make(seqdb.Pattern, plen)
			for j := range p {
				p[j] = seqdb.EventID(rng.Intn(alphabet))
			}
			want := qre.FindAllInstances(db, p)
			got, ok := w.findInstancesBounded(p, len(want)+1)
			if !ok {
				t.Fatalf("iter %d: bounded abort with limit=len+1 for %v", iter, p)
			}
			if len(got) != len(want) {
				t.Fatalf("iter %d: %v: got %d instances %v want %d %v (db=%v)", iter, p, len(got), got, len(want), want, db.Sequences)
			}
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("iter %d: %v: instance %d got %v want %v (db=%v)", iter, p, k, got[k], want[k], db.Sequences)
				}
			}
		}
	}
}
