package iterpattern

import (
	"math/rand"
	"sort"
	"testing"

	"specmine/internal/qre"
	"specmine/internal/seqdb"
)

func mkdb(traces ...[]string) *seqdb.Database {
	db := seqdb.NewDatabase()
	for _, t := range traces {
		db.AppendNames(t...)
	}
	return db
}

func patternSet(res *Result, dict *seqdb.Dictionary) map[string]int {
	out := make(map[string]int)
	for _, p := range res.Patterns {
		out[p.Pattern.String(dict)] = p.Support
	}
	return out
}

func TestOptionsValidate(t *testing.T) {
	if err := (Options{}).Validate(); err == nil {
		t.Errorf("zero options must be invalid")
	}
	if err := (Options{MinInstanceSupport: 1}).Validate(); err != nil {
		t.Errorf("minimal valid options rejected: %v", err)
	}
	if err := (Options{MinInstanceSupport: 2, MaxPatternLength: -1}).Validate(); err == nil {
		t.Errorf("negative MaxPatternLength accepted")
	}
	if err := (Options{MinInstanceSupport: 2, MaxPatterns: -1}).Validate(); err == nil {
		t.Errorf("negative MaxPatterns accepted")
	}
	if err := (Options{MinSupportRel: 1.5}).Validate(); err == nil {
		t.Errorf("MinSupportRel > 1 accepted")
	}
	if got := (Options{MinSupportRel: 0.5}).absoluteSupport(10); got != 5 {
		t.Errorf("absoluteSupport(rel 0.5 of 10)=%d want 5", got)
	}
	if got := (Options{MinInstanceSupport: 3}).absoluteSupport(10); got != 3 {
		t.Errorf("absoluteSupport(abs 3)=%d want 3", got)
	}
	if got := (Options{MinSupportRel: 0.0001}).absoluteSupport(10); got != 1 {
		t.Errorf("absoluteSupport(tiny rel)=%d want 1", got)
	}
	if _, err := MineFull(seqdb.NewDatabase(), Options{}); err == nil {
		t.Errorf("MineFull must reject invalid options")
	}
	if _, err := MineClosed(seqdb.NewDatabase(), Options{}); err == nil {
		t.Errorf("MineClosed must reject invalid options")
	}
}

func TestMineFullLockUnlock(t *testing.T) {
	// Resource-locking behaviour repeated within and across traces (the
	// paper's running example: "whenever a lock is acquired, eventually it is
	// released").
	db := mkdb(
		[]string{"lock", "use", "unlock", "lock", "use", "use", "unlock"},
		[]string{"lock", "read", "unlock"},
		[]string{"idle", "idle"},
	)
	res, err := MineFull(db, Options{MinInstanceSupport: 3, IncludeInstances: true})
	if err != nil {
		t.Fatal(err)
	}
	got := patternSet(res, db.Dict)
	// lock (3), unlock (3), use (3), <lock,unlock> (3), <lock,use> ...
	if got["<lock>"] != 3 || got["<unlock>"] != 3 {
		t.Errorf("single event supports wrong: %v", got)
	}
	if got["<lock, unlock>"] != 3 {
		t.Errorf("<lock,unlock> support = %d want 3 (repetition within trace must count)", got["<lock, unlock>"])
	}
	if _, ok := got["<unlock, lock>"]; ok {
		// unlock followed by lock occurs only once (inside trace 1), below threshold.
		t.Errorf("<unlock, lock> should not be frequent at support 3")
	}
	// Every reported support must agree with direct QRE instance counting.
	for _, p := range res.Patterns {
		if want := qre.CountInstances(db, p.Pattern); want != p.Support {
			t.Errorf("support mismatch for %s: reported %d, recount %d", p.Pattern.String(db.Dict), p.Support, want)
		}
		if len(p.Instances) != p.Support {
			t.Errorf("instances not included for %s", p.Pattern.String(db.Dict))
		}
	}
}

func TestMineClosedSuppressesAbsorbedSubpatterns(t *testing.T) {
	// A fixed three-event protocol: every sub-pattern that always occurs
	// inside <init, use, close> with the same instances must be suppressed.
	db := mkdb(
		[]string{"init", "use", "close"},
		[]string{"init", "use", "close", "noise"},
		[]string{"noise", "init", "use", "close"},
		[]string{"init", "use", "close"},
	)
	closed, err := MineClosed(db, Options{MinInstanceSupport: 4})
	if err != nil {
		t.Fatal(err)
	}
	full, err := MineFull(db, Options{MinInstanceSupport: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Patterns) <= len(closed.Patterns) {
		t.Errorf("full (%d) should exceed closed (%d)", len(full.Patterns), len(closed.Patterns))
	}
	gotClosed := patternSet(closed, db.Dict)
	if len(gotClosed) != 1 {
		t.Errorf("expected exactly the maximal pattern, got %v", gotClosed)
	}
	if gotClosed["<init, use, close>"] != 4 {
		t.Errorf("closed set should contain <init, use, close> with support 4: %v", gotClosed)
	}
}

func TestMineClosedKeepsDistinctSupports(t *testing.T) {
	// <a,b> occurs more often than <a,b,c>; both are closed.
	db := mkdb(
		[]string{"a", "b", "c"},
		[]string{"a", "b", "c"},
		[]string{"a", "b"},
		[]string{"a", "b"},
	)
	closed, err := MineClosed(db, Options{MinInstanceSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	got := patternSet(closed, db.Dict)
	if got["<a, b>"] != 4 {
		t.Errorf("<a, b> must be closed with support 4: %v", got)
	}
	if got["<a, b, c>"] != 2 {
		t.Errorf("<a, b, c> must be closed with support 2: %v", got)
	}
	if _, ok := got["<a>"]; ok {
		t.Errorf("<a> is absorbed by <a, b> and must not be closed: %v", got)
	}
}

func TestMaxPatternLengthAndMaxPatterns(t *testing.T) {
	db := mkdb(
		[]string{"a", "b", "c", "d"},
		[]string{"a", "b", "c", "d"},
	)
	res, err := MineFull(db, Options{MinInstanceSupport: 2, MaxPatternLength: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Patterns {
		if p.Pattern.Len() > 2 {
			t.Errorf("pattern %s exceeds MaxPatternLength", p.Pattern.String(db.Dict))
		}
	}
	capped, err := MineFull(db, Options{MinInstanceSupport: 2, MaxPatterns: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(capped.Patterns) != 3 {
		t.Errorf("MaxPatterns not honoured: %d", len(capped.Patterns))
	}
}

func TestResultHelpers(t *testing.T) {
	db := mkdb(
		[]string{"a", "b", "c"},
		[]string{"a", "b", "c"},
	)
	res, err := MineFull(db, Options{MinInstanceSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	longest, ok := res.Longest()
	if !ok || longest.Pattern.Len() != 3 {
		t.Errorf("Longest=%v ok=%v", longest, ok)
	}
	if _, ok := res.Find(seqdb.ParsePattern(db.Dict, "a b")); !ok {
		t.Errorf("Find failed for <a, b>")
	}
	if _, ok := res.Find(seqdb.ParsePattern(db.Dict, "b a")); ok {
		t.Errorf("Find succeeded for absent pattern")
	}
	if s := res.Render(db.Dict, 2); s == "" {
		t.Errorf("Render returned empty string")
	}
	empty := &Result{}
	if _, ok := empty.Longest(); ok {
		t.Errorf("Longest on empty result should report false")
	}
	if s := (MinedPattern{Pattern: seqdb.ParsePattern(db.Dict, "a"), Support: 1, SeqSupport: 1}).String(db.Dict); s == "" {
		t.Errorf("MinedPattern.String empty")
	}
}

// --- brute-force reference implementations -------------------------------

// bruteFrequent enumerates every frequent pattern by growing candidates with
// every frequent event and recounting support via the independent qre
// matcher. It is exponential and only suitable for tiny databases.
func bruteFrequent(db *seqdb.Database, minSup int) map[string]seqdb.Pattern {
	counts := db.EventInstanceCount()
	var alphabet []seqdb.EventID
	for e, c := range counts {
		if c >= minSup {
			alphabet = append(alphabet, e)
		}
	}
	sort.Slice(alphabet, func(i, j int) bool { return alphabet[i] < alphabet[j] })
	out := make(map[string]seqdb.Pattern)
	var grow func(p seqdb.Pattern)
	grow = func(p seqdb.Pattern) {
		if qre.CountInstances(db, p) < minSup {
			return
		}
		out[p.Key()] = p.Clone()
		for _, e := range alphabet {
			grow(p.Append(e))
		}
	}
	for _, e := range alphabet {
		grow(seqdb.Pattern{e})
	}
	return out
}

// bruteClosed filters the brute-force frequent set down to closed patterns by
// checking Definition 4.2 against every frequent super-sequence.
func bruteClosed(db *seqdb.Database, minSup int) map[string]seqdb.Pattern {
	freq := bruteFrequent(db, minSup)
	out := make(map[string]seqdb.Pattern)
	for key, p := range freq {
		pInsts := qre.FindAllInstances(db, p)
		closed := true
		for _, q := range freq {
			if len(q) <= len(p) || !p.IsSubsequenceOf(q) {
				continue
			}
			qInsts := qre.FindAllInstances(db, q)
			if len(qInsts) == len(pInsts) && qre.CorrespondsTo(pInsts, qInsts) {
				closed = false
				break
			}
		}
		if closed {
			out[key] = p
		}
	}
	return out
}

func randomDB(rng *rand.Rand, numSeqs, maxLen, alphabet int) *seqdb.Database {
	db := seqdb.NewDatabase()
	for i := 0; i < alphabet; i++ {
		db.Dict.Intern(string(rune('a' + i)))
	}
	for i := 0; i < numSeqs; i++ {
		n := 1 + rng.Intn(maxLen)
		s := make(seqdb.Sequence, n)
		for j := range s {
			s[j] = seqdb.EventID(rng.Intn(alphabet))
		}
		db.Append(s)
	}
	return db
}

func TestMineFullAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for iter := 0; iter < 30; iter++ {
		db := randomDB(rng, 3, 8, 3)
		minSup := 2 + rng.Intn(2)
		res, err := MineFull(db, Options{MinInstanceSupport: minSup})
		if err != nil {
			t.Fatal(err)
		}
		want := bruteFrequent(db, minSup)
		if len(res.Patterns) != len(want) {
			t.Fatalf("iter %d: full miner found %d patterns, brute force %d (db=%v)", iter, len(res.Patterns), len(want), db.Sequences)
		}
		for _, p := range res.Patterns {
			if _, ok := want[p.Pattern.Key()]; !ok {
				t.Fatalf("iter %d: miner reported %s not in brute-force set", iter, p.Pattern.String(db.Dict))
			}
			if recount := qre.CountInstances(db, p.Pattern); recount != p.Support {
				t.Fatalf("iter %d: support mismatch for %s: %d vs %d", iter, p.Pattern.String(db.Dict), p.Support, recount)
			}
		}
	}
}

func TestMineClosedAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for iter := 0; iter < 30; iter++ {
		db := randomDB(rng, 3, 8, 3)
		minSup := 2 + rng.Intn(2)
		res, err := MineClosed(db, Options{MinInstanceSupport: minSup})
		if err != nil {
			t.Fatal(err)
		}
		want := bruteClosed(db, minSup)
		got := make(map[string]bool)
		for _, p := range res.Patterns {
			got[p.Pattern.Key()] = true
		}
		for key, p := range want {
			if !got[key] {
				t.Fatalf("iter %d: closed miner missed %s (db=%v minSup=%d)", iter, p.String(db.Dict), db.Sequences, minSup)
			}
		}
		for _, p := range res.Patterns {
			if _, ok := want[p.Pattern.Key()]; !ok {
				t.Fatalf("iter %d: closed miner reported non-closed %s (db=%v minSup=%d)", iter, p.Pattern.String(db.Dict), db.Sequences, minSup)
			}
		}
	}
}

func TestClosedIsSubsetOfFullWithEqualSupports(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for iter := 0; iter < 20; iter++ {
		db := randomDB(rng, 4, 10, 4)
		minSup := 3
		full, err := MineFull(db, Options{MinInstanceSupport: minSup})
		if err != nil {
			t.Fatal(err)
		}
		closed, err := MineClosed(db, Options{MinInstanceSupport: minSup})
		if err != nil {
			t.Fatal(err)
		}
		if len(closed.Patterns) > len(full.Patterns) {
			t.Fatalf("closed set larger than full set")
		}
		fullSet := patternSet(full, db.Dict)
		for _, p := range closed.Patterns {
			sup, ok := fullSet[p.Pattern.String(db.Dict)]
			if !ok {
				t.Fatalf("closed pattern %s missing from full set", p.Pattern.String(db.Dict))
			}
			if sup != p.Support {
				t.Fatalf("support mismatch for %s: closed %d full %d", p.Pattern.String(db.Dict), p.Support, sup)
			}
		}
	}
}

func TestMinerStatsArePopulated(t *testing.T) {
	db := mkdb(
		[]string{"a", "b", "c", "a", "b", "c"},
		[]string{"a", "b", "c"},
	)
	res, err := MineClosed(db, Options{MinInstanceSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.NodesExplored == 0 {
		t.Errorf("NodesExplored not recorded")
	}
	if res.Stats.PatternsEmitted != len(res.Patterns) {
		t.Errorf("PatternsEmitted=%d len=%d", res.Stats.PatternsEmitted, len(res.Patterns))
	}
	if res.Stats.Duration <= 0 {
		t.Errorf("Duration not recorded")
	}
	if res.MinSupport != 2 {
		t.Errorf("MinSupport=%d", res.MinSupport)
	}
}

func TestMineDispatch(t *testing.T) {
	db := mkdb([]string{"a", "b"}, []string{"a", "b"})
	full, err := Mine(db, Options{MinInstanceSupport: 2}, false)
	if err != nil {
		t.Fatal(err)
	}
	closed, err := Mine(db, Options{MinInstanceSupport: 2}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Patterns) < len(closed.Patterns) {
		t.Errorf("dispatch wrong: full %d closed %d", len(full.Patterns), len(closed.Patterns))
	}
}

func TestClosedMinerInstancesOnRequest(t *testing.T) {
	db := mkdb([]string{"a", "b"}, []string{"a", "b"})
	noInst, err := MineClosed(db, Options{MinInstanceSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range noInst.Patterns {
		if p.Instances != nil {
			t.Errorf("instances retained without IncludeInstances")
		}
	}
	withInst, err := MineClosed(db, Options{MinInstanceSupport: 2, IncludeInstances: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range withInst.Patterns {
		if len(p.Instances) != p.Support {
			t.Errorf("instances missing for %s", p.Pattern.String(db.Dict))
		}
	}
}
