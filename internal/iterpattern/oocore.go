package iterpattern

import (
	"errors"
	"time"

	"specmine/internal/mine"
)

// Out-of-core mining: MineSource runs the same search as Mine, but pulls a
// per-seed database view from a mine.Source instead of walking one global
// index. Every structure the search consults for a seed e — instance lists,
// extension windows, closedness witnesses — lives entirely in the traces
// containing e (patterns grown from e always start with e), so mining each
// seed against its view reproduces the in-memory run exactly; only the
// sequence ids inside exported instances are view-local and get remapped to
// global ids before the merge. Fresh landmark tables per SEED (not per
// worker, as the in-memory parallel path has): landmark matching compares
// view-local instance lists, which are only meaningful within one seed's
// view.
func MineSource(src mine.Source, opts Options, closed bool) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.MaxPatterns > 0 {
		// The early-stop cutoff is defined by sequential emission order over
		// one global database; a per-seed run cannot honour it faithfully.
		return nil, errors.New("iterpattern: MaxPatterns is not supported by out-of-core mining")
	}
	start := time.Now()
	minSup := opts.absoluteSupport(src.NumSequences())
	events := src.FrequentByInstanceCount(minSup)
	workers := opts.effectiveWorkers()
	if workers > len(events) {
		workers = len(events)
	}

	type seedOut struct {
		emitted []MinedPattern
		stats   Stats
		err     error
	}
	type seedWorker struct {
		m     *miner
		ready bool
	}
	outs := mine.ForSeeds(len(events), workers, func() *seedWorker {
		return &seedWorker{m: &miner{opts: opts, minSup: minSup, closed: closed}}
	}, func(w *seedWorker, i int) seedOut {
		sv, err := src.AcquireSeed(events[i])
		if err != nil {
			return seedOut{err: err}
		}
		defer sv.Release()
		sub := w.m
		sub.db, sub.idx = sv.DB, sv.Idx
		if !w.ready {
			// Scratch tables size by the event-id space, which every view
			// shares (indexes are built over the full dictionary).
			sub.initScratch()
			w.ready = true
		}
		sub.emitted = nil
		sub.stats = Stats{}
		if closed {
			sub.landmarks = make(map[uint64][]landmark)
		}
		sub.mineSeed(events[i])
		patterns := sub.emitted
		if closed {
			// The filter only touches traces containing the seed (witness
			// candidates embed the seed event), all present in the view. Run
			// it sequentially: the worker pool already spans seeds.
			seq := sub.opts.Workers
			sub.opts.Workers = 1
			patterns = sub.closednessFilter(patterns)
			sub.opts.Workers = seq
			if !opts.IncludeInstances {
				for k := range patterns {
					patterns[k].Instances = nil
				}
			}
		}
		if opts.IncludeInstances {
			for k := range patterns {
				for x := range patterns[k].Instances {
					patterns[k].Instances[x].Seq = int(sv.Global[patterns[k].Instances[x].Seq])
				}
			}
		}
		return seedOut{emitted: patterns, stats: sub.stats}
	})

	res := &Result{MinSupport: minSup}
	for i := range outs {
		if outs[i].err != nil {
			return nil, outs[i].err
		}
		res.Patterns = append(res.Patterns, outs[i].emitted...)
		res.Stats.merge(outs[i].stats)
	}
	res.Stats.PatternsEmitted = len(res.Patterns)
	res.Stats.Duration = time.Since(start)
	res.Sort()
	return res, nil
}
