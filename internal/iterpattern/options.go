// Package iterpattern implements mining of iterative patterns from a
// sequence database of program traces (Section 4 of the paper).
//
// An iterative pattern is a series of events whose instances — defined by the
// Quantified Regular Expression of Definition 4.1 and implemented in package
// qre — are counted repeatedly within and across sequences. Two miners are
// provided:
//
//   - MineFull returns every frequent pattern (the "Full" series of Figure 1);
//   - MineClosed returns only closed patterns (Definition 4.2), using early
//     search-space pruning of non-closed pattern subtrees plus an exact
//     closedness filter (the "Closed" series of Figure 1).
package iterpattern

import (
	"errors"
	"fmt"

	"specmine/internal/mine"
)

// Options configures a mining run.
type Options struct {
	// MinInstanceSupport is the absolute minimum number of instances a
	// pattern must have to be frequent. It must be at least 1.
	MinInstanceSupport int

	// MinSupportRel, when positive, overrides MinInstanceSupport with
	// ceil(rel * number of sequences): the paper reports support thresholds
	// relative to the number of sequences in the database (Section 6).
	MinSupportRel float64

	// MaxPatternLength bounds the length of mined patterns; 0 means no bound.
	MaxPatternLength int

	// IncludeInstances records the instance list of every emitted pattern.
	// It is off by default because the full miner can emit very large sets.
	IncludeInstances bool

	// MaxPatterns aborts the search after emitting this many patterns;
	// 0 means unlimited. It is a safety valve for interactive use and has no
	// effect on the experiments, which run unbounded.
	MaxPatterns int

	// Workers bounds the worker pool that explores the top-level search tree
	// (one frequent seed event per task). 0 and 1 run sequentially; negative
	// values use GOMAXPROCS. Results are byte-identical to a sequential run
	// for any worker count. MaxPatterns > 0 forces sequential mining, because
	// the early-stop cutoff is defined by sequential emission order.
	Workers int
}

// Validate reports configuration errors.
func (o Options) Validate() error {
	if o.MinInstanceSupport < 1 && o.MinSupportRel <= 0 {
		return errors.New("iterpattern: MinInstanceSupport must be >= 1 or MinSupportRel > 0")
	}
	if o.MinSupportRel < 0 || o.MinSupportRel > 1 {
		if o.MinSupportRel != 0 {
			return fmt.Errorf("iterpattern: MinSupportRel %v outside (0,1]", o.MinSupportRel)
		}
	}
	if o.MaxPatternLength < 0 {
		return errors.New("iterpattern: MaxPatternLength must be >= 0")
	}
	if o.MaxPatterns < 0 {
		return errors.New("iterpattern: MaxPatterns must be >= 0")
	}
	return nil
}

// effectiveWorkers resolves the Workers knob to a concrete worker count.
// MaxPatterns forces sequential mining: its early-stop cutoff is defined by
// sequential emission order.
func (o Options) effectiveWorkers() int {
	if o.MaxPatterns > 0 {
		return 1
	}
	return mine.EffectiveWorkers(o.Workers)
}

// absoluteSupport resolves the effective absolute instance-support threshold
// for a database with numSequences sequences.
func (o Options) absoluteSupport(numSequences int) int {
	if o.MinSupportRel > 0 {
		n := int(o.MinSupportRel*float64(numSequences) + 0.5)
		if n < 1 {
			n = 1
		}
		return n
	}
	return o.MinInstanceSupport
}
