package iterpattern

import (
	"slices"
	"time"

	"specmine/internal/mine"
	"specmine/internal/qre"
	"specmine/internal/seqdb"
)

// Mine runs the closed miner when closed is true and the full miner
// otherwise. It is a convenience wrapper used by the facade and the CLIs.
func Mine(db *seqdb.Database, opts Options, closed bool) (*Result, error) {
	if closed {
		return MineClosed(db, opts)
	}
	return MineFull(db, opts)
}

// MineFull mines the complete set of frequent iterative patterns.
func MineFull(db *seqdb.Database, opts Options) (*Result, error) {
	return runMiner(db, opts, false)
}

// MineClosed mines the closed set of frequent iterative patterns
// (Definition 4.2). The search prunes subtrees that can only produce
// non-closed patterns (see equivalence pruning in grow) and the surviving
// candidates pass through an exact closedness filter before being reported.
func MineClosed(db *seqdb.Database, opts Options) (*Result, error) {
	return runMiner(db, opts, true)
}

func runMiner(db *seqdb.Database, opts Options, closed bool) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	m := &miner{
		db:     db,
		idx:    db.FlatIndex(),
		opts:   opts,
		minSup: opts.absoluteSupport(db.NumSequences()),
		closed: closed,
	}
	m.initScratch()
	if closed {
		m.landmarks = make(map[uint64][]landmark)
	}
	m.run()
	patterns := m.emitted
	if closed {
		patterns = m.closednessFilter(patterns)
		if !opts.IncludeInstances {
			for i := range patterns {
				patterns[i].Instances = nil
			}
		}
	}
	// Stats are copied only now: the closedness filter still increments
	// NonClosedSuppressed.
	res := &Result{Patterns: patterns, Stats: m.stats, MinSupport: m.minSup}
	res.Stats.PatternsEmitted = len(res.Patterns)
	res.Stats.Duration = time.Since(start)
	res.Sort()
	return res, nil
}

// span is the internal, allocation-friendly form of qre.Instance. Node
// instance lists are stored run-compressed (qre.SpanRuns): in the dense
// looping regime explicit lists grow near-quadratically while the compressed
// form stays proportional to the number of loop boundaries.
type span = qre.Span

// extension is one candidate suffix extension of a search node: the extending
// event, its instance count, and — only for nodes that survive the support,
// equivalence and length checks — the run-compressed instance list of
// p ++ <event>. The counting pass never materialises anything: counts alone
// decide frequency, the support-preservation closedness test, and landmark
// subtree pruning, so leaf and pruned nodes (the bulk of a bounded dense
// search) skip materialisation entirely.
type extension struct {
	event seqdb.EventID
	count int32
	insts qre.SpanRuns
}

// landmark records an already-explored search node for the closed miner's
// equivalence pruning. The instance runs are a compact copy of the node's
// (run-compressed, hence small) instance list: copying lets the node's
// over-allocated free-listed backing array recycle immediately instead of
// being pinned for the rest of the run.
type landmark struct {
	pattern   seqdb.Pattern
	instances qre.SpanRuns
}

type miner struct {
	db     *seqdb.Database
	idx    *seqdb.PositionIndex
	opts   Options
	minSup int
	closed bool

	emitted   []MinedPattern
	stats     Stats
	landmarks map[uint64][]landmark
	stop      bool

	scratch minerScratch

	// runs recycles the []SpanRun backing arrays of instance lists whose
	// node has been fully explored; exts does the same for extension
	// slices (free-listed arenas from the shared framework). Together with
	// run compression this makes instance storage cost O(live search path),
	// not O(nodes explored).
	runs mine.Arena[qre.SpanRun]
	exts mine.Arena[extension]

	// path is the shared pattern buffer for the current search path: the
	// node for depth d works on path[:d+1], so descending never allocates.
	// Everything that retains a pattern (emission, landmarks) clones it.
	path seqdb.Pattern
}

// minerScratch holds the reusable per-worker buffers that make the extension
// passes allocation-free. All per-event sets are epoch-stamped
// (mine.StampSet over seqdb.BumpEpoch): bumping the epoch invalidates every
// entry at once, so no clearing pass is ever needed between nodes.
type minerScratch struct {
	slots seqdb.EventSlots // extension-event slots and counts per node

	alpha mine.StampSet // the current pattern's alphabet
	win   mine.StampSet // events seen in some forward window of the node
	seen  mine.StampSet // events seen in the current window
}

func (m *miner) initScratch() {
	n := m.idx.NumEvents()
	m.scratch = minerScratch{
		slots: seqdb.NewEventSlots(n),
		alpha: mine.NewStampSet(n),
		win:   mine.NewStampSet(n),
		seen:  mine.NewStampSet(n),
	}
	m.path = make(seqdb.Pattern, 0, 64)
}

func (m *miner) run() {
	// Frequent single events by instance count (apriori base case).
	events := m.idx.FrequentEventsByInstanceCount(m.minSup)
	workers := m.opts.effectiveWorkers()
	if workers > len(events) {
		workers = len(events)
	}
	if workers <= 1 {
		for _, e := range events {
			if m.stop {
				return
			}
			m.mineSeed(e)
		}
		return
	}

	// Parallel top-level search: each frequent seed event roots an independent
	// subtree. Landmark entries can only ever match nodes sharing the seed
	// event (equal instance lists force equal start events), so per-worker
	// landmark tables reproduce the sequential pruning decisions exactly, and
	// mine.ForSeeds merges the per-seed outputs in seed order, making the
	// result byte-identical to the sequential run.
	type seedOut struct {
		emitted []MinedPattern
		stats   Stats
	}
	outs := mine.ForSeeds(len(events), workers, func() *miner {
		sub := &miner{db: m.db, idx: m.idx, opts: m.opts, minSup: m.minSup, closed: m.closed}
		sub.initScratch()
		if m.closed {
			sub.landmarks = make(map[uint64][]landmark)
		}
		return sub
	}, func(sub *miner, i int) seedOut {
		sub.emitted = nil
		sub.stats = Stats{}
		sub.mineSeed(events[i])
		return seedOut{emitted: sub.emitted, stats: sub.stats}
	})
	for i := range outs {
		m.emitted = append(m.emitted, outs[i].emitted...)
		m.stats.merge(outs[i].stats)
	}
}

func (m *miner) mineSeed(e seqdb.EventID) {
	insts := m.singleEventInstances(e)
	m.path = append(m.path[:0], e)
	m.grow(m.path, insts)
	m.runs.Put(insts.Runs())
}

func (m *miner) singleEventInstances(e seqdb.EventID) qre.SpanRuns {
	var rs qre.SpanRuns
	rs.Reset(m.runs.Get())
	for _, si := range m.idx.SeqsContaining(e) {
		for _, p := range m.idx.Positions(int(si), e) {
			rs.Append(span{Seq: si, Start: p, End: p})
		}
	}
	return rs
}

// grow explores the search-tree node for pattern p (a view of the shared
// path buffer) with instance runs insts. The caller owns and recycles insts'
// backing array after grow returns.
func (m *miner) grow(p seqdb.Pattern, insts qre.SpanRuns) {
	if m.stop {
		return
	}
	m.stats.NodesExplored++

	// Count-first: one window pass yields every candidate's instance count
	// (and stamps the forward-window event set for checkLandmarks). Nothing
	// is materialised yet.
	exts := m.countExtensions(p, insts)

	emit := true
	if m.closed {
		// Equivalence pruning (the "early identification and pruning of
		// non-closed patterns" of Section 4). If an earlier node L has exactly
		// the same instance list and p ⊑ L, then L witnesses that p is not
		// closed, so p is never emitted. If additionally no event of
		// alphabet(L)\alphabet(p) occurs in any forward window of p, every
		// extension of p has the matching extension of L with an identical
		// instance list, so the whole subtree can only produce non-closed
		// patterns and is skipped.
		witness, pruneSubtree := m.checkLandmarks(p, insts)
		if witness {
			emit = false
			m.stats.NonClosedSuppressed++
			if pruneSubtree {
				m.stats.SubtreesPrunedEquivalent++
				if exts != nil {
					m.exts.Put(exts)
				}
				return
			}
		}
		// A suffix extension that preserves the support also witnesses
		// non-closedness of p (Definition 4.2 with a suffix super-sequence).
		// Counts suffice: the extension's instance list is never needed.
		if emit {
			for i := range exts {
				if int(exts[i].count) == insts.Len() {
					emit = false
					m.stats.NonClosedSuppressed++
					break
				}
			}
		}
	}
	if emit {
		m.emit(p, insts)
	}

	if exts == nil {
		return
	}
	if m.opts.MaxPatternLength > 0 && len(p) >= m.opts.MaxPatternLength {
		m.exts.Put(exts)
		return
	}

	// The node survives and will recurse: only now are the supra-threshold
	// extension lists materialised, run-compressed, into free-listed arenas.
	m.materializeExtensions(p, insts, exts)

	for i := range exts {
		if m.stop {
			break
		}
		if int(exts[i].count) < m.minSup {
			m.stats.NodesPrunedInfrequent++
			continue
		}
		// Descend on the shared path buffer: p is path[:d+1], so this append
		// writes path[d+1] in place (no allocation while within capacity).
		// Sibling iterations overwrite it; anything that retains the child
		// pattern clones it.
		m.grow(append(p, exts[i].event), exts[i].insts)
		m.runs.Put(exts[i].insts.Runs())
	}
	m.exts.Put(exts)
}

// countExtensions computes, for every candidate extension event of p, the
// instance count of p ++ <event>, in slot (first-seen) order. It also leaves
// the set of all events observed in the forward windows of the instances
// stamped in the scratch win set (valid until the next countExtensions
// call), which checkLandmarks consults.
//
// For each instance the candidate events are exactly the distinct events of
// the forward window: the run of non-alphabet events following the instance,
// terminated (inclusively) by the first alphabet event. A non-alphabet event
// additionally requires that it does not occur inside the instance span,
// because extending the pattern adds it to the QRE's exclusion set
// (Definition 4.1). The gap-validity test uses the index's prev-occurrence
// chain, so it is O(1) per candidate.
func (m *miner) countExtensions(p seqdb.Pattern, insts qre.SpanRuns) []extension {
	sc := &m.scratch

	sc.alpha.Begin()
	for _, e := range p {
		sc.alpha.Add(e)
	}
	sc.win.Begin()
	sc.slots.Begin()

	for _, r := range insts.Runs() {
		s := m.db.Sequences[r.Seq]
		start, end := r.Start, r.End
		for k := int32(0); k < r.Count; k, start, end = k+1, start+r.Stride, end+r.Stride {
			sc.seen.Begin()
			for j := int(end) + 1; j < len(s); j++ {
				ev := s[j]
				sc.win.Add(ev)
				if sc.alpha.Contains(ev) {
					// First alphabet event: always a valid extension, and the
					// window ends here.
					sc.slots.Add(ev)
					break
				}
				if !sc.seen.TestAndSet(ev) {
					continue
				}
				// New symbol: its addition to the alphabet must not invalidate
				// the existing gaps, so it may not occur inside the span.
				// Because j is the first occurrence of ev in the window, its
				// previous occurrence is at or before the span end, so one
				// prev-occurrence read decides.
				if m.idx.OccursWithin(int(r.Seq), j, int(start)) {
					continue
				}
				sc.slots.Add(ev)
			}
		}
	}
	if sc.slots.Len() == 0 {
		return nil
	}
	exts := m.exts.GetN(sc.slots.Len())
	for slot := range exts {
		exts[slot] = extension{event: sc.slots.Event(slot), count: sc.slots.Count(slot)}
	}
	return exts
}

// materializeExtensions re-walks the forward windows once and fills the
// run-compressed instance lists of the supra-threshold extensions, then sorts
// exts by event id for deterministic traversal. It must run directly after
// countExtensions on the same node: it reuses the slot assignments and alpha
// stamps the counting pass left in scratch.
func (m *miner) materializeExtensions(p seqdb.Pattern, insts qre.SpanRuns, exts []extension) {
	sc := &m.scratch

	any := false
	for slot := range exts {
		if int(exts[slot].count) >= m.minSup {
			exts[slot].insts.Reset(m.runs.Get())
			any = true
		}
	}
	if !any {
		slices.SortFunc(exts, func(a, b extension) int { return int(a.event) - int(b.event) })
		return
	}

	for _, r := range insts.Runs() {
		s := m.db.Sequences[r.Seq]
		start, end := r.Start, r.End
		for k := int32(0); k < r.Count; k, start, end = k+1, start+r.Stride, end+r.Stride {
			sc.seen.Begin()
			for j := int(end) + 1; j < len(s); j++ {
				ev := s[j]
				if sc.alpha.Contains(ev) {
					x := &exts[sc.slots.Slot(ev)]
					if int(x.count) >= m.minSup {
						x.insts.Append(span{Seq: r.Seq, Start: start, End: int32(j)})
					}
					break
				}
				if !sc.seen.TestAndSet(ev) {
					continue
				}
				if m.idx.OccursWithin(int(r.Seq), j, int(start)) {
					continue
				}
				x := &exts[sc.slots.Slot(ev)]
				if int(x.count) >= m.minSup {
					x.insts.Append(span{Seq: r.Seq, Start: start, End: int32(j)})
				}
			}
		}
	}

	// Deterministic extension order. The slot indices in sc.slots are only
	// consumed by the fill pass above, so sorting afterwards is safe.
	slices.SortFunc(exts, func(a, b extension) int { return int(a.event) - int(b.event) })
}

func (m *miner) emit(p seqdb.Pattern, insts qre.SpanRuns) {
	mp := MinedPattern{Pattern: p.Clone(), Support: insts.Len(), SeqSupport: insts.SeqSupport()}
	if m.opts.IncludeInstances || m.closed {
		// The closed miner always keeps instances while mining: the
		// closedness filter needs them. They are dropped afterwards unless
		// the caller asked for them.
		mp.Instances = insts.Export()
	}
	m.emitted = append(m.emitted, mp)
	if m.opts.MaxPatterns > 0 && len(m.emitted) >= m.opts.MaxPatterns {
		m.stop = true
	}
}

// checkLandmarks consults and updates the landmark table. It returns
// witness=true when an earlier pattern with an identical instance list is a
// super-sequence of p (so p is certainly not closed), and pruneSubtree=true
// when additionally none of the witness's extra events appears in p's forward
// windows (so no extension of p can behave differently from the witness's
// matching extension and the subtree holds no closed pattern).
// Forward-window membership is read from the win scratch set left by
// countExtensions. All comparisons and hashes run on the compressed runs,
// which represent equal span sequences exactly when equal; new entries store
// a compact copy so the caller's backing array stays recyclable.
func (m *miner) checkLandmarks(p seqdb.Pattern, insts qre.SpanRuns) (witness, pruneSubtree bool) {
	sc := &m.scratch
	sig := insts.Signature()
	entries := m.landmarks[sig]
	for i, lm := range entries {
		if !lm.instances.Equal(insts) {
			continue
		}
		if p.IsSubsequenceOf(lm.pattern) && len(p) < len(lm.pattern) {
			witness = true
			pruneSubtree = true
			for _, ev := range lm.pattern {
				if p.Contains(ev) {
					continue
				}
				if sc.win.Contains(ev) {
					pruneSubtree = false
					break
				}
			}
			return witness, pruneSubtree
		}
		if lm.pattern.IsSubsequenceOf(p) {
			// p supersedes the stored landmark: remember the longer pattern so
			// that future equivalent nodes are pruned against it.
			entries[i] = landmark{pattern: p.Clone(), instances: lm.instances}
			m.landmarks[sig] = entries
			return false, false
		}
	}
	m.landmarks[sig] = append(entries, landmark{pattern: p.Clone(), instances: insts.Compact()})
	return false, false
}
