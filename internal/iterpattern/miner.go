package iterpattern

import (
	"slices"
	"time"

	"specmine/internal/par"
	"specmine/internal/qre"
	"specmine/internal/seqdb"
)

// Mine runs the closed miner when closed is true and the full miner
// otherwise. It is a convenience wrapper used by the facade and the CLIs.
func Mine(db *seqdb.Database, opts Options, closed bool) (*Result, error) {
	if closed {
		return MineClosed(db, opts)
	}
	return MineFull(db, opts)
}

// MineFull mines the complete set of frequent iterative patterns.
func MineFull(db *seqdb.Database, opts Options) (*Result, error) {
	return mine(db, opts, false)
}

// MineClosed mines the closed set of frequent iterative patterns
// (Definition 4.2). The search prunes subtrees that can only produce
// non-closed patterns (see equivalence pruning in grow) and the surviving
// candidates pass through an exact closedness filter before being reported.
func MineClosed(db *seqdb.Database, opts Options) (*Result, error) {
	return mine(db, opts, true)
}

func mine(db *seqdb.Database, opts Options, closed bool) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	m := &miner{
		db:     db,
		idx:    db.FlatIndex(),
		opts:   opts,
		minSup: opts.absoluteSupport(db.NumSequences()),
		closed: closed,
	}
	m.initScratch()
	if closed {
		m.landmarks = make(map[uint64][]landmark)
	}
	m.run()
	patterns := m.emitted
	if closed {
		patterns = m.closednessFilter(patterns)
		if !opts.IncludeInstances {
			for i := range patterns {
				patterns[i].Instances = nil
			}
		}
	}
	// Stats are copied only now: the closedness filter still increments
	// NonClosedSuppressed.
	res := &Result{Patterns: patterns, Stats: m.stats, MinSupport: m.minSup}
	res.Stats.PatternsEmitted = len(res.Patterns)
	res.Stats.Duration = time.Since(start)
	res.Sort()
	return res, nil
}

// span is the internal, allocation-friendly form of qre.Instance: instance
// lists are grown inside per-node arenas of packed spans.
type span = qre.Span

// extension is one candidate suffix extension of a search node: the extending
// event, its instance count, and — only when the count clears the support
// threshold — the instance list of p ++ <event>, carved out of the node's
// arena. Infrequent extensions stay unmaterialised (insts == nil): they are
// never recursed into and the closedness checks need only the count, so
// leaving them out keeps node arenas (which landmark entries pin for the rest
// of the run) down to exactly the lists the search can still use.
type extension struct {
	event seqdb.EventID
	count int32
	insts []span
}

// landmark records an already-explored search node for the closed miner's
// equivalence pruning. The instance slice is shared with the search node that
// produced it — instance lists are immutable once their arena is filled — so
// registering a landmark costs one pattern clone and no instance copying.
type landmark struct {
	pattern   seqdb.Pattern
	instances []span
}

type miner struct {
	db     *seqdb.Database
	idx    *seqdb.PositionIndex
	opts   Options
	minSup int
	closed bool

	emitted   []MinedPattern
	stats     Stats
	landmarks map[uint64][]landmark
	stop      bool

	scratch minerScratch
}

// minerScratch holds the reusable per-worker buffers that make extensions()
// allocation-free apart from each node's result arena. All per-event arrays
// are epoch-stamped (see seqdb.BumpEpoch): bumping the epoch invalidates
// every entry at once, so no clearing pass is ever needed between nodes.
type minerScratch struct {
	slots seqdb.EventSlots // extension-event slots and counts per node

	inAlpha    []uint32 // event -> alphaEpoch when in the current pattern's alphabet
	alphaEpoch uint32

	winStamp []uint32 // event -> winEpoch when seen in some forward window
	winEpoch uint32

	seenStamp []uint32 // event -> seenEpoch when seen in the current window
	seenEpoch uint32
}

func (m *miner) initScratch() {
	n := m.idx.NumEvents()
	m.scratch = minerScratch{
		slots:     seqdb.NewEventSlots(n),
		inAlpha:   make([]uint32, n),
		winStamp:  make([]uint32, n),
		seenStamp: make([]uint32, n),
	}
}

func (m *miner) run() {
	// Frequent single events by instance count (apriori base case).
	events := m.idx.FrequentEventsByInstanceCount(m.minSup)
	workers := m.opts.effectiveWorkers()
	if workers > len(events) {
		workers = len(events)
	}
	if workers <= 1 {
		for _, e := range events {
			if m.stop {
				return
			}
			m.grow(seqdb.Pattern{e}, m.singleEventInstances(e))
		}
		return
	}

	// Parallel top-level search: each frequent seed event roots an independent
	// subtree. Landmark entries can only ever match nodes sharing the seed
	// event (equal instance lists force equal start events), so per-worker
	// landmark tables reproduce the sequential pruning decisions exactly, and
	// merging per-seed outputs in seed order makes the result byte-identical
	// to the sequential run.
	type seedOut struct {
		emitted []MinedPattern
		stats   Stats
	}
	outs := make([]seedOut, len(events))
	par.ForWorker(len(events), workers, func() *miner {
		sub := &miner{db: m.db, idx: m.idx, opts: m.opts, minSup: m.minSup, closed: m.closed}
		sub.initScratch()
		if m.closed {
			sub.landmarks = make(map[uint64][]landmark)
		}
		return sub
	}, func(sub *miner, i int) {
		sub.emitted = nil
		sub.stats = Stats{}
		e := events[i]
		sub.grow(seqdb.Pattern{e}, sub.singleEventInstances(e))
		outs[i] = seedOut{emitted: sub.emitted, stats: sub.stats}
	})
	for i := range outs {
		m.emitted = append(m.emitted, outs[i].emitted...)
		m.stats.merge(outs[i].stats)
	}
}

func (m *miner) singleEventInstances(e seqdb.EventID) []span {
	out := make([]span, 0, m.idx.EventInstanceCount(e))
	for _, si := range m.idx.SeqsContaining(e) {
		for _, p := range m.idx.Positions(int(si), e) {
			out = append(out, span{Seq: si, Start: p, End: p})
		}
	}
	return out
}

// grow explores the search-tree node for pattern p with instance list insts.
func (m *miner) grow(p seqdb.Pattern, insts []span) {
	if m.stop {
		return
	}
	m.stats.NodesExplored++

	exts := m.extensions(p, insts)

	emit := true
	if m.closed {
		// Equivalence pruning (the "early identification and pruning of
		// non-closed patterns" of Section 4). If an earlier node L has exactly
		// the same instance list and p ⊑ L, then L witnesses that p is not
		// closed, so p is never emitted. If additionally no event of
		// alphabet(L)\alphabet(p) occurs in any forward window of p, every
		// extension of p has the matching extension of L with an identical
		// instance list, so the whole subtree can only produce non-closed
		// patterns and is skipped.
		if witness, pruneSubtree := m.checkLandmarks(p, insts); witness {
			emit = false
			m.stats.NonClosedSuppressed++
			if pruneSubtree {
				m.stats.SubtreesPrunedEquivalent++
				return
			}
		}
		// A suffix extension that preserves the support also witnesses
		// non-closedness of p (Definition 4.2 with a suffix super-sequence).
		if emit {
			for i := range exts {
				if int(exts[i].count) == len(insts) {
					emit = false
					m.stats.NonClosedSuppressed++
					break
				}
			}
		}
	}
	if emit {
		m.emit(p, insts)
	}

	if m.opts.MaxPatternLength > 0 && len(p) >= m.opts.MaxPatternLength {
		return
	}

	for i := range exts {
		if m.stop {
			return
		}
		if int(exts[i].count) < m.minSup {
			m.stats.NodesPrunedInfrequent++
			continue
		}
		m.grow(p.Append(exts[i].event), exts[i].insts)
	}
}

// extensions computes, for every event e, the instance list of p ++ <e>,
// sorted by event id for deterministic traversal. It also leaves the set of
// all events observed in the forward windows of the instances stamped in
// scratch.winStamp (valid until the next extensions call), which
// checkLandmarks consults.
//
// For each instance the candidate events are exactly the distinct events of
// the forward window: the run of non-alphabet events following the instance,
// terminated (inclusively) by the first alphabet event. A non-alphabet event
// additionally requires that it does not occur inside the instance span,
// because extending the pattern adds it to the QRE's exclusion set
// (Definition 4.1).
//
// This is a pseudo-projection: instead of materialising per-event maps the
// node makes one counting pass over the forward windows, carves exactly-sized
// instance lists out of a single arena allocation, and fills them in a second
// pass. The gap-validity test uses the index's prev-occurrence chain, so it
// is O(1) per candidate.
func (m *miner) extensions(p seqdb.Pattern, insts []span) []extension {
	sc := &m.scratch

	alphaEpoch := seqdb.BumpEpoch(&sc.alphaEpoch, sc.inAlpha)
	for _, e := range p {
		sc.inAlpha[e] = alphaEpoch
	}
	winEpoch := seqdb.BumpEpoch(&sc.winEpoch, sc.winStamp)
	sc.slots.Begin()

	// Pass 1: discover extension events and count their instances.
	for _, in := range insts {
		s := m.db.Sequences[in.Seq]
		seenEpoch := seqdb.BumpEpoch(&sc.seenEpoch, sc.seenStamp)
		for j := int(in.End) + 1; j < len(s); j++ {
			ev := s[j]
			sc.winStamp[ev] = winEpoch
			if sc.inAlpha[ev] == alphaEpoch {
				// First alphabet event: always a valid extension, and the
				// window ends here.
				sc.slots.Add(ev)
				break
			}
			if sc.seenStamp[ev] == seenEpoch {
				continue
			}
			sc.seenStamp[ev] = seenEpoch
			// New symbol: its addition to the alphabet must not invalidate the
			// existing gaps, so it may not occur inside the span. Because j is
			// the first occurrence of ev in the window, its previous occurrence
			// is at or before the span end, so one prev-occurrence read decides.
			if m.idx.OccursWithin(int(in.Seq), j, int(in.Start)) {
				continue
			}
			sc.slots.Add(ev)
		}
	}
	if sc.slots.Len() == 0 {
		return nil
	}

	// Carve exactly-sized per-event lists for the frequent extensions out of
	// one arena; infrequent slots keep only their count.
	exts := make([]extension, sc.slots.Len())
	total := 0
	for slot := range exts {
		c := sc.slots.Count(slot)
		exts[slot] = extension{event: sc.slots.Event(slot), count: c}
		if int(c) >= m.minSup {
			total += int(c)
		}
	}
	arena := make([]span, total)
	off := 0
	for slot := range exts {
		if c := int(exts[slot].count); c >= m.minSup {
			exts[slot].insts = arena[off : off : off+c]
			off += c
		}
	}

	// Pass 2: fill the materialised lists.
	for _, in := range insts {
		s := m.db.Sequences[in.Seq]
		seenEpoch := seqdb.BumpEpoch(&sc.seenEpoch, sc.seenStamp)
		for j := int(in.End) + 1; j < len(s); j++ {
			ev := s[j]
			if sc.inAlpha[ev] == alphaEpoch {
				x := &exts[sc.slots.Slot(ev)]
				if x.insts != nil {
					x.insts = append(x.insts, span{Seq: in.Seq, Start: in.Start, End: int32(j)})
				}
				break
			}
			if sc.seenStamp[ev] == seenEpoch {
				continue
			}
			sc.seenStamp[ev] = seenEpoch
			if m.idx.OccursWithin(int(in.Seq), j, int(in.Start)) {
				continue
			}
			x := &exts[sc.slots.Slot(ev)]
			if x.insts != nil {
				x.insts = append(x.insts, span{Seq: in.Seq, Start: in.Start, End: int32(j)})
			}
		}
	}

	// Deterministic extension order. The slot indices in sc.slots are only
	// consumed by pass 2 above, so sorting afterwards is safe.
	slices.SortFunc(exts, func(a, b extension) int { return int(a.event) - int(b.event) })
	return exts
}

func (m *miner) emit(p seqdb.Pattern, insts []span) {
	mp := MinedPattern{Pattern: p.Clone(), Support: len(insts), SeqSupport: seqSupportOf(insts)}
	if m.opts.IncludeInstances || m.closed {
		// The closed miner always keeps instances while mining: the
		// closedness filter needs them. They are dropped afterwards unless
		// the caller asked for them.
		mp.Instances = qre.ExportSpans(insts)
	}
	m.emitted = append(m.emitted, mp)
	if m.opts.MaxPatterns > 0 && len(m.emitted) >= m.opts.MaxPatterns {
		m.stop = true
	}
}

func seqSupportOf(insts []span) int {
	n := 0
	last := int32(-1)
	for _, in := range insts {
		if in.Seq != last {
			n++
			last = in.Seq
		}
	}
	return n
}

// checkLandmarks consults and updates the landmark table. It returns
// witness=true when an earlier pattern with an identical instance list is a
// super-sequence of p (so p is certainly not closed), and pruneSubtree=true
// when additionally none of the witness's extra events appears in p's forward
// windows (so no extension of p can behave differently from the witness's
// matching extension and the subtree holds no closed pattern). Forward-window
// membership is read from the winStamp scratch left by extensions.
func (m *miner) checkLandmarks(p seqdb.Pattern, insts []span) (witness, pruneSubtree bool) {
	sc := &m.scratch
	sig := signatureOf(insts)
	entries := m.landmarks[sig]
	for i, lm := range entries {
		if !sameInstances(lm.instances, insts) {
			continue
		}
		if p.IsSubsequenceOf(lm.pattern) && len(p) < len(lm.pattern) {
			witness = true
			pruneSubtree = true
			for _, ev := range lm.pattern {
				if p.Contains(ev) {
					continue
				}
				if sc.winStamp[ev] == sc.winEpoch {
					pruneSubtree = false
					break
				}
			}
			return witness, pruneSubtree
		}
		if lm.pattern.IsSubsequenceOf(p) {
			// p supersedes the stored landmark: remember the longer pattern so
			// that future equivalent nodes are pruned against it.
			entries[i] = landmark{pattern: p.Clone(), instances: lm.instances}
			m.landmarks[sig] = entries
			return false, false
		}
	}
	m.landmarks[sig] = append(entries, landmark{pattern: p.Clone(), instances: insts})
	return false, false
}

// signatureOf hashes an instance list with stack-allocated FNV-1a (this runs
// once per closed-miner search node).
func signatureOf(insts []span) uint64 {
	h := seqdb.NewHash64()
	for _, in := range insts {
		h = h.Mix32(in.Seq).Mix32(in.Start).Mix32(in.End)
	}
	return uint64(h)
}

func sameInstances(a, b []span) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
