package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"specmine/internal/seqdb"
)

// Format-freeze tests. The byte layouts of segment files and WAL records are
// persistence contracts: stores written by one build must recover under every
// later build. These tests pin both formats against golden files in testdata;
// an encoder change that shifts a single byte fails them. Regenerate (only
// for a deliberate, version-bumped format change) with
//
//	SPECMINE_WRITE_GOLDEN=1 go test ./internal/store -run TestGolden
func goldenSegmentFixture() ([]seqdb.Sequence, []byte) {
	seqs := []seqdb.Sequence{
		{0, 1, 2, 2, 2, 3},
		{},
		{5, 4, 3, 2, 1, 0},
		{7, 7, 7, 7},
		{300, 2, 300, 300},
	}
	return seqs, encodeSegment(seqs, 2, 7)
}

func goldenWALFixture() []byte {
	var buf []byte
	for _, p := range [][]byte{
		encodeHeader(1, 3),
		encodeOpen(nil, 0, "trace-a"),
		encodeEvents(nil, 0, []seqdb.EventID{0, 1, 1, 2}),
		encodeOpen(nil, 1, "trace-b"),
		encodeEvents(nil, 1, []seqdb.EventID{3}),
		encodeSeal(nil, 0),
		encodeEvents(nil, 1, []seqdb.EventID{4, 4}),
	} {
		buf = appendFrame(buf, p)
	}
	return buf
}

func goldenCompare(t *testing.T, path string, got []byte) {
	t.Helper()
	if os.Getenv("SPECMINE_WRITE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with SPECMINE_WRITE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s: encoder output drifted from the frozen format (%d bytes vs %d golden). "+
			"If this is a deliberate format change, bump the format version and regenerate.",
			path, len(got), len(want))
	}
}

func TestGoldenSegmentFormat(t *testing.T) {
	seqs, data := goldenSegmentFixture()
	goldenCompare(t, filepath.Join("testdata", "segment-v2.golden"), data)

	// And the frozen bytes must still decode to the fixture, stats included.
	want, err := os.ReadFile(filepath.Join("testdata", "segment-v2.golden"))
	if err != nil {
		t.Fatal(err)
	}
	v, err := parseSegment(want)
	if err != nil {
		t.Fatal(err)
	}
	if v.shard != 2 || v.from != 7 {
		t.Fatalf("golden segment parsed shard=%d from=%d", v.shard, v.from)
	}
	got, err := v.decodeAll()
	if err != nil {
		t.Fatal(err)
	}
	sequencesEqual(t, "golden segment", got, seqs)
	if v.stats == nil {
		t.Fatal("golden v2 segment parsed without stats")
	}
	if occ, tr := v.stats.Count(2); occ != 5 || tr != 3 {
		t.Fatalf("golden stats Count(2) = %d/%d, want 5/3", occ, tr)
	}
}

// TestGoldenSegmentV1Compat: v1 files are a decode-only compatibility
// contract — the frozen first-generation golden must keep parsing (with stats
// absent, backfilled on demand) under every later build. The v1 golden is
// never regenerated; SPECMINE_WRITE_GOLDEN intentionally does not touch it.
func TestGoldenSegmentV1Compat(t *testing.T) {
	seqs, _ := goldenSegmentFixture()
	want, err := os.ReadFile(filepath.Join("testdata", "segment-v1.golden"))
	if err != nil {
		t.Fatal(err)
	}
	v, err := parseSegment(want)
	if err != nil {
		t.Fatal(err)
	}
	if v.shard != 2 || v.from != 7 {
		t.Fatalf("v1 golden segment parsed shard=%d from=%d", v.shard, v.from)
	}
	if v.stats != nil {
		t.Fatal("v1 golden segment cannot carry stats")
	}
	got, err := v.decodeAll()
	if err != nil {
		t.Fatal(err)
	}
	sequencesEqual(t, "v1 golden segment", got, seqs)
	stats, err := v.ensureStats()
	if err != nil {
		t.Fatal(err)
	}
	if occ, tr := stats.Count(2); occ != 5 || tr != 3 {
		t.Fatalf("backfilled stats Count(2) = %d/%d, want 5/3", occ, tr)
	}
}

func TestGoldenWALFormat(t *testing.T) {
	data := goldenWALFixture()
	goldenCompare(t, filepath.Join("testdata", "wal-v1.golden"), data)

	want, err := os.ReadFile(filepath.Join("testdata", "wal-v1.golden"))
	if err != nil {
		t.Fatal(err)
	}
	// Replaying the frozen bytes must reproduce the fixture's semantics:
	// sealedBase 3, one seal at ordinal 3 (trace-a), trace-b left open.
	dir := t.TempDir()
	walPath := filepath.Join(dir, walName(1))
	if err := os.WriteFile(walPath, want, 0o644); err != nil {
		t.Fatal(err)
	}
	st := &Store{dict: seqdb.NewDictionary()}
	for i := 0; i < 8; i++ {
		st.dict.Intern(eventName(i))
	}
	sealed, open, err := st.replayShardWAL(want, walPath, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	sequencesEqual(t, "golden wal sealed", sealed, []seqdb.Sequence{{0, 1, 1, 2}})
	if len(open) != 1 || open[0].ID != "trace-b" {
		t.Fatalf("golden wal open traces: %+v", open)
	}
	sequencesEqual(t, "golden wal open", []seqdb.Sequence{open[0].Events}, []seqdb.Sequence{{3, 4, 4}})
}
