package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"specmine/internal/seqdb"
)

// Crash recovery. Open rebuilds each shard's state in two layers, newest
// last:
//
//  1. the segment chain — the maximal run of intact segment files covering
//     seal ordinals [0, C) — supplies the bulk of the sealed traces without
//     touching the WAL;
//  2. the WAL tail — the longest intact frame prefix of the newest WAL
//     generation — is replayed over it: seal records with ordinals below C
//     are skipped (their traces already live in segments), newer seals append
//     their traces, and whatever is left open at the end of the prefix is the
//     shard's recovered open-trace set.
//
// A torn frame ends the prefix; nothing after it is trusted, so a partial
// record can never surface as data. One asymmetric case needs care: segments
// are published only after the WAL covering their seals is flushed, so a
// surviving segment normally implies the seals survived too — but a WAL
// truncated below the segment barrier (disk fault, or the crash-fuzz tests
// doing it on purpose) would make replay resurrect segment-sealed traces as
// open ghosts. Recovery detects this (fewer replayed seals than the segment
// coverage) and drops the recovered open set: sealed state stays exact,
// open-trace recovery is best effort.
//
// After recovery, Open canonicalises the shard: WAL-recovered sealed traces
// are rolled into a fresh segment and a new WAL generation is created holding
// only the header and a re-log of the open traces. Every later recovery
// therefore starts from segments + a short WAL, keeping replay O(open data),
// not O(history).

// OpenTrace is a trace that was open (ingested but not sealed) when the
// store's state was captured.
type OpenTrace struct {
	// ID is the trace id under which events were being ingested.
	ID string
	// Events are the events ingested so far, in order.
	Events seqdb.Sequence
}

// RecoveredShard is one shard's recovered state.
type RecoveredShard struct {
	// Sequences are the shard's sealed traces in seal order — exactly the
	// shard database the pre-crash ingester held.
	Sequences []seqdb.Sequence
	// Open are the traces that were still open, sorted by trace id.
	Open []OpenTrace
}

// Recovered is the whole store's recovered state, indexed by shard.
type Recovered struct {
	Shards []RecoveredShard
}

// Database merges the recovered sealed traces into a single Database sharing
// dict, shard-major in seal order — the same ordering a streaming Snapshot
// produces, so miners see the identical database either way.
func (r *Recovered) Database(dict *seqdb.Dictionary) *seqdb.Database {
	db := seqdb.NewDatabaseWithDict(dict)
	for _, sh := range r.Shards {
		db.Sequences = append(db.Sequences, sh.Sequences...)
	}
	return db
}

// NumSealed returns the total number of recovered sealed traces.
func (r *Recovered) NumSealed() int {
	n := 0
	for _, sh := range r.Shards {
		n += len(sh.Sequences)
	}
	return n
}

// NumOpen returns the total number of recovered open traces.
func (r *Recovered) NumOpen() int {
	n := 0
	for _, sh := range r.Shards {
		n += len(sh.Open)
	}
	return n
}

// errReplayStop marks the first record of the untrusted WAL tail: replay
// treats everything before it as the surviving prefix and stops cleanly.
var errReplayStop = errors.New("store: replay stop")

// recoverDict replays the dictionary log into a fresh dictionary and reopens
// the log for appending (truncating any torn tail first).
func (st *Store) recoverDict() error {
	path := filepath.Join(st.opts.Dir, "dict.wal")
	st.dict = seqdb.NewDictionary()
	buf, err := st.fs.ReadFile(path)
	switch {
	case err == nil:
		var names []string
		valid, err := scanFrames(buf, func(p []byte) error {
			if len(p) == 1 && p[0] == recCommit {
				return nil // creation marker, carries no name
			}
			if len(p) == 0 || p[0] != recDictName {
				return errReplayStop
			}
			names = append(names, string(p[1:]))
			return nil
		})
		if err != nil && !errors.Is(err, errReplayStop) {
			return err
		}
		if err := st.dict.Import(names); err != nil {
			return err
		}
		if int64(valid) < int64(len(buf)) {
			if err := st.fs.Truncate(path, int64(valid)); err != nil {
				return fmt.Errorf("store: truncating torn tail of %s: %w", path, err)
			}
		}
		f, err := st.fs.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("store: reopening %s: %w", path, err)
		}
		st.dictLog.wal = &walFile{path: path, f: f, size: int64(valid), sync: st.opts.Sync, met: &st.met}
		return nil
	case os.IsNotExist(err):
		wal, err := createWALDirect(st.fs, path, st.opts.Sync)
		if err != nil {
			return err
		}
		wal.met = &st.met
		st.dictLog.wal = wal
		return nil
	default:
		return fmt.Errorf("store: reading %s: %w", path, err)
	}
}

// recoverShard rebuilds shard i from its directory and returns its seeded
// ShardLog plus the recovered state.
func (st *Store) recoverShard(i int) (*ShardLog, RecoveredShard, error) {
	dir := filepath.Join(st.opts.Dir, fmt.Sprintf("shard-%03d", i))
	if err := st.fs.MkdirAll(dir, 0o755); err != nil {
		return nil, RecoveredShard{}, err
	}
	entries, err := st.fs.ReadDir(dir)
	if err != nil {
		return nil, RecoveredShard{}, err
	}

	type walCand struct {
		gen  uint64
		path string
	}
	var segInfos []segmentInfo
	var cands []walCand
	var maxGen uint64
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
			// Torn publish from a crashed rename; the real file never
			// appeared, so the content is covered elsewhere or lost.
			if err := st.fs.Remove(filepath.Join(dir, name)); err != nil {
				st.warn("shard %d: removing stale %s: %v", i, name, err)
			}
		case strings.HasSuffix(name, ".seg"):
			from, to, ok := parseSegmentName(name)
			if !ok {
				return nil, RecoveredShard{}, fmt.Errorf("unrecognised segment file %s", name)
			}
			fi, err := e.Info()
			if err != nil {
				return nil, RecoveredShard{}, err
			}
			segInfos = append(segInfos, segmentInfo{from: from, to: to, path: filepath.Join(dir, name), size: fi.Size()})
		case strings.HasSuffix(name, ".wal"):
			gen, ok := parseWALName(name)
			if !ok {
				return nil, RecoveredShard{}, fmt.Errorf("unrecognised WAL file %s", name)
			}
			cands = append(cands, walCand{gen: gen, path: filepath.Join(dir, name)})
			if gen > maxGen {
				maxGen = gen
			}
		}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].gen > cands[b].gen })

	chain, sealed, covered, err := st.loadSegmentChain(segInfos, i)
	if err != nil {
		return nil, RecoveredShard{}, err
	}

	// Replay the newest complete WAL generation. A generation missing its
	// commit marker was torn mid-publish (a faulted rotation rename); its
	// frame prefix is valid but incomplete, so it must not shadow the intact
	// predecessor — discard it and fall back. A lone marker-less generation
	// is still accepted: nothing older exists to recover from instead.
	var walSealed []seqdb.Sequence
	var open []OpenTrace
	for k, c := range cands {
		buf, rerr := st.fs.ReadFile(c.path)
		if rerr != nil {
			return nil, RecoveredShard{}, rerr
		}
		if !walHasCommit(buf) && k+1 < len(cands) {
			st.warn("shard %d: discarding torn WAL generation %s (no commit marker)", i, filepath.Base(c.path))
			if err := st.fs.Remove(c.path); err != nil {
				st.warn("shard %d: removing torn %s: %v", i, filepath.Base(c.path), err)
			}
			continue
		}
		walSealed, open, err = st.replayShardWAL(buf, c.path, i, covered)
		if err != nil {
			return nil, RecoveredShard{}, err
		}
		sealed = append(sealed, walSealed...)
		break
	}
	sort.Slice(open, func(a, b int) bool { return open[a].ID < open[b].ID })

	// Canonicalise: roll the WAL-recovered sealed tail into a segment, then
	// start a fresh generation holding just the header and the open traces.
	// Ordering matters for crash safety: the old generation keeps covering
	// everything until the new one is renamed into place.
	sl := &ShardLog{st: st, shard: i, dir: dir, covered: covered, segs: chain}
	// In an out-of-core open, sealed holds only the WAL tail (chain bodies
	// were not decoded), so the shard total is computed from the chain
	// coverage instead of len(sealed).
	total := covered + len(walSealed)
	if len(walSealed) > 0 {
		var pubStart time.Time
		if st.met.enabled {
			pubStart = time.Now()
		}
		data := encodeSegment(walSealed, i, covered)
		info, err := writeSegmentFile(st.fs, dir, covered, total, data, st.opts.Sync)
		if err != nil {
			return nil, RecoveredShard{}, err
		}
		sl.covered = total
		sl.segs = append(sl.segs, info)
		if st.met.enabled {
			st.met.segPublishNs.Observe(time.Since(pubStart).Nanoseconds())
			st.met.segsPublished.Inc()
		}
	}
	records, handles, next := openTraceRecords(i, sl.covered, open)
	gen := maxGen + 1
	newWAL := filepath.Join(dir, walName(gen))
	var wal *walFile
	if len(cands) == 0 {
		// Fresh shard: no predecessor holds anything, so skip the atomic
		// publish — a crash mid-create just means an empty shard next time.
		wal, err = createWALDirect(st.fs, newWAL, st.opts.Sync, records...)
	} else {
		wal, err = createWAL(st.fs, newWAL, st.opts.Sync, records...)
	}
	if err != nil {
		return nil, RecoveredShard{}, err
	}
	wal.met = &st.met
	// Every older generation is now redundant.
	for _, c := range cands {
		if err := st.fs.Remove(c.path); err != nil && !os.IsNotExist(err) {
			st.warn("shard %d: removing superseded %s: %v", i, filepath.Base(c.path), err)
		}
	}
	sl.wal = wal
	sl.gen = gen
	sl.handles = handles
	sl.nextHandle = next
	sl.walSize.Store(wal.pending())
	sl.setRotateThreshold(wal.pending())
	if st.opts.OutOfCore {
		// The WAL tail was just canonicalised into a segment, so every
		// sealed trace is reachable through the catalog; Recovered reports
		// open traces only, keeping the handle metadata-sized.
		sealed = nil
	}
	return sl, RecoveredShard{Sequences: sealed, Open: open}, nil
}

// openTraceRecords builds the records of a fresh WAL generation — header plus
// a re-log of the open traces, sorted by id — and the matching handle table.
func openTraceRecords(shard, sealedTotal int, open []OpenTrace) (records [][]byte, handles map[string]uint64, next uint64) {
	records = [][]byte{encodeHeader(shard, sealedTotal)}
	handles = make(map[string]uint64, len(open))
	for _, tr := range open {
		h := next
		next++
		handles[tr.ID] = h
		records = append(records, encodeOpen(nil, h, tr.ID))
		if len(tr.Events) > 0 {
			records = append(records, encodeEvents(nil, h, tr.Events))
		}
	}
	return records, handles, next
}

// loadSegmentChain selects and decodes the shard's segment chain. A segment
// that fails validation is dropped and selection retried: segments are
// written directly (not via rename), so a crash can tear the newest one —
// but its traces are still covered, either by the subsumed originals a
// crashed compaction left behind (re-selected on retry) or by the WAL, whose
// generations are only retired after a completed rotation. Corruption that
// leaves real coverage gaps still fails hard via selectSegmentChain.
func (st *Store) loadSegmentChain(infos []segmentInfo, shard int) ([]segmentInfo, []seqdb.Sequence, int, error) {
	for {
		chain, subsumed, err := selectSegmentChain(infos)
		if err != nil {
			return nil, nil, 0, err
		}
		var sealed []seqdb.Sequence
		covered := 0
		bad := -1
		var badErr error
		for k, info := range chain {
			buf, err := st.fs.ReadFile(info.path)
			if err != nil {
				return nil, nil, 0, err
			}
			v, perr := parseSegment(buf)
			if perr == nil && (v.shard != shard || v.from != info.from || v.numTraces() != info.to-info.from) {
				perr = fmt.Errorf("footer (shard %d, from %d, %d traces) contradicts the name", v.shard, v.from, v.numTraces())
			}
			var seqs []seqdb.Sequence
			if perr == nil && !st.opts.OutOfCore {
				// Out-of-core opens stop at the checksum: body and footer
				// CRCs already prove the file intact end to end, and the
				// traces stay on disk until a cache pool pins them. (A
				// valid-CRC body whose varint stream is malformed — a writer
				// bug, not a crash artifact — would surface at first decode
				// instead of here.)
				seqs, perr = v.decodeAll()
			}
			if perr != nil {
				bad, badErr = k, fmt.Errorf("%s: %w", info.path, perr)
				break
			}
			sealed = append(sealed, seqs...)
			covered = info.to
		}
		if bad < 0 {
			// Only now that every chain segment decoded is it safe to drop
			// the subsumed files a crashed compaction left behind — they are
			// the fallback if a merged segment had been torn.
			for _, s := range subsumed {
				if err := st.fs.Remove(s.path); err != nil {
					st.warn("shard %d: removing subsumed %s: %v", shard, filepath.Base(s.path), err)
				}
			}
			return chain, sealed, covered, nil
		}
		st.warn("shard %d: discarding torn segment %s: %v", shard, filepath.Base(chain[bad].path), badErr)
		if err := st.fs.Remove(chain[bad].path); err != nil {
			// Exclude it in memory and continue; the leaked file is retried
			// (and re-warned about) on the next open.
			st.warn("shard %d: removing torn %s: %v", shard, filepath.Base(chain[bad].path), err)
		}
		kept := infos[:0]
		for _, info := range infos {
			if info.path != chain[bad].path {
				kept = append(kept, info)
			}
		}
		infos = kept
	}
}

// selectSegmentChain orders the discovered segments and returns the maximal
// contiguous chain from ordinal 0 plus the files a compacted successor
// subsumes (left on disk — they are the fallback while the chain is
// unvalidated). Gaps and partial overlaps cannot be produced by the writer
// and are surfaced as errors.
func selectSegmentChain(infos []segmentInfo) (chain, subsumed []segmentInfo, err error) {
	sort.Slice(infos, func(a, b int) bool {
		if infos[a].from != infos[b].from {
			return infos[a].from < infos[b].from
		}
		return infos[a].to > infos[b].to
	})
	covered := 0
	for _, s := range infos {
		switch {
		case s.to <= covered:
			// Fully covered by a merged successor: a crash between a
			// compaction's write and its deletes left it behind.
			subsumed = append(subsumed, s)
		case s.from == covered:
			chain = append(chain, s)
			covered = s.to
		case s.from > covered:
			return nil, nil, fmt.Errorf("segment coverage gap: [%d,%d) follows %d", s.from, s.to, covered)
		default:
			return nil, nil, fmt.Errorf("segment overlap: [%d,%d) against coverage %d", s.from, s.to, covered)
		}
	}
	return chain, subsumed, nil
}

// replayShardWAL replays the surviving frame prefix of a shard WAL image over
// segment coverage [0, covered), returning the newly sealed traces (ordinals
// >= covered, in order) and the traces left open. path is for error messages.
func (st *Store) replayShardWAL(buf []byte, path string, shard, covered int) ([]seqdb.Sequence, []OpenTrace, error) {
	type openState struct {
		id     string
		events seqdb.Sequence
	}
	open := make(map[uint64]*openState)
	var order []uint64
	var sealed []seqdb.Sequence
	seals := 0
	dictSize := uint64(st.dict.Size())
	sawHeader := false
	var hardErr error

	_, err := scanFrames(buf, func(p []byte) error {
		if len(p) == 0 {
			return errReplayStop
		}
		body := p[1:]
		readUvarint := func() (uint64, bool) {
			v, n := binary.Uvarint(body)
			if n <= 0 {
				return 0, false
			}
			body = body[n:]
			return v, true
		}
		switch p[0] {
		case recHeader:
			ver, ok := readUvarint()
			if !ok || ver != walFormatVersion || sawHeader {
				return errReplayStop
			}
			sh, ok := readUvarint()
			if !ok || int(sh) != shard {
				return errReplayStop
			}
			base, ok := readUvarint()
			if !ok {
				return errReplayStop
			}
			if int(base) > covered {
				hardErr = fmt.Errorf("%s declares %d sealed traces in segments, only %d covered — segment files are missing", path, base, covered)
				return hardErr
			}
			sawHeader = true
			seals = int(base)
		case recOpen:
			h, ok := readUvarint()
			if !ok {
				return errReplayStop
			}
			if _, dup := open[h]; dup {
				return errReplayStop
			}
			open[h] = &openState{id: string(body)}
			order = append(order, h)
		case recEvents:
			h, ok := readUvarint()
			if !ok {
				return errReplayStop
			}
			tr := open[h]
			if tr == nil {
				return errReplayStop
			}
			n, ok := readUvarint()
			if !ok {
				return errReplayStop
			}
			evs := make(seqdb.Sequence, 0, n)
			for k := uint64(0); k < n; k++ {
				ev, ok := readUvarint()
				if !ok || ev >= dictSize {
					// An id the dictionary log never flushed: by the
					// dict-before-shard flush ordering this frame belongs to
					// the lost tail, whatever its checksum says.
					return errReplayStop
				}
				evs = append(evs, seqdb.EventID(ev))
			}
			tr.events = append(tr.events, evs...)
		case recSeal:
			h, ok := readUvarint()
			if !ok {
				return errReplayStop
			}
			tr := open[h]
			if tr == nil {
				return errReplayStop
			}
			delete(open, h)
			if seals >= covered {
				sealed = append(sealed, tr.events)
			}
			seals++
		case recCommit:
			// Generation commit marker; carries no state.
		default:
			return errReplayStop
		}
		return nil
	})
	if hardErr != nil {
		return nil, nil, hardErr
	}
	if err != nil && !errors.Is(err, errReplayStop) {
		return nil, nil, err
	}
	if seals < covered {
		// The WAL was cut below the segment barrier: traces it shows as open
		// may in truth be sealed inside segments. Sealed state is exact
		// either way; drop the unreliable open set.
		return nil, nil, nil
	}
	out := make([]OpenTrace, 0, len(open))
	for _, h := range order {
		if tr, ok := open[h]; ok {
			out = append(out, OpenTrace{ID: tr.id, Events: tr.events})
		}
	}
	return sealed, out, nil
}
