package store

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"syscall"
	"testing"

	"specmine/internal/fsim"
	"specmine/internal/seqdb"
)

// Warning-accumulation contract tests: Health() de-duplicates repeated
// warnings into one entry carrying a repeat count, preserves first-occurrence
// order, and bounds the distinct-message list with an explicit suppression
// sentinel — all of it stable under concurrent faults from multiple shards.

// TestWarningDedupConcurrentFaults drives every shard's rotation-cleanup
// failure path at once (fsim fails both the close and the remove of each
// superseded WAL generation) and asserts the warning list ends up with
// exactly one entry per distinct failure, however the shards interleave.
func TestWarningDedupConcurrentFaults(t *testing.T) {
	dir := t.TempDir()
	const shards = 4
	st, _ := openFaultStore(t, dir,
		[]fsim.Rule{
			{Op: fsim.OpClose, Path: walName(1), To: 99, Err: syscall.EIO},
			{Op: fsim.OpRemove, Path: walName(1), To: 99, Err: syscall.EACCES},
		},
		func(o *Options) { o.Shards = shards })
	defer st.Close()
	internEvents(t, st, 10)

	// Each shard seals a few traces, publishes its segment and rotates; the
	// cleanup of its superseded generation fails. All shards race.
	var wg sync.WaitGroup
	errs := make([]error, shards)
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sl := st.Shard(i)
			rng := rand.New(rand.NewSource(int64(100 + i)))
			var sealed []seqdb.Sequence
			for j := 0; j < 3; j++ {
				id := fmt.Sprintf("w%d-%d", i, j)
				evs := randomTrace(rng, 10)
				if err := sl.LogEvents(id, evs, noSend); err != nil {
					errs[i] = err
					return
				}
				if err := sl.LogSeal(id, noSend); err != nil {
					errs[i] = err
					return
				}
				sealed = append(sealed, evs)
			}
			if !sl.TryLock() {
				errs[i] = fmt.Errorf("shard %d: TryLock failed with no producers", i)
				return
			}
			defer sl.Unlock()
			if err := sl.WriteSegmentLocked(sealed); err != nil {
				errs[i] = err
				return
			}
			errs[i] = sl.RotateLocked(nil, len(sealed))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
	}

	h := healthAssert(t, st, Healthy)
	for i := 0; i < shards; i++ {
		for _, sub := range []string{"closing superseded", "removing superseded"} {
			want := fmt.Sprintf("shard %d: %s", i, sub)
			n := 0
			for _, w := range h.Warnings {
				if strings.Contains(w, want) {
					n++
				}
			}
			if n != 1 {
				t.Errorf("warning %q appears %d times, want exactly 1: %v", want, n, h.Warnings)
			}
		}
	}
	if len(h.Warnings) != 2*shards {
		t.Fatalf("expected %d distinct warnings, got %d: %v", 2*shards, len(h.Warnings), h.Warnings)
	}

	// Repetition under concurrency: six goroutines racing three messages
	// collapse to three entries, each carrying the exact total repeat count.
	const dups, perMsg = 3, 100
	var wg2 sync.WaitGroup
	for g := 0; g < 2*dups; g++ {
		wg2.Add(1)
		go func(g int) {
			defer wg2.Done()
			for k := 0; k < perMsg/2; k++ {
				st.warn("synthetic cleanup failure %d", g%dups)
			}
		}(g)
	}
	wg2.Wait()
	h = st.Health()
	for d := 0; d < dups; d++ {
		want := fmt.Sprintf("synthetic cleanup failure %d (x%d)", d, perMsg)
		found := false
		for _, w := range h.Warnings {
			if w == want {
				found = true
			}
		}
		if !found {
			t.Errorf("missing de-duplicated warning %q in %v", want, h.Warnings)
		}
	}
	if len(h.Warnings) != 2*shards+dups {
		t.Fatalf("expected %d distinct warnings, got %d: %v", 2*shards+dups, len(h.Warnings), h.Warnings)
	}
}

// TestWarningOrderAndOverflow pins the sequential contract: first-occurrence
// order is preserved, the distinct-message list is capped at maxWarnings with
// a suppression sentinel, repeats of an admitted message keep counting after
// the cap, and repeats of a suppressed message stay suppressed.
func TestWarningOrderAndOverflow(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, nil)
	defer st.Close()

	for i := 0; i < maxWarnings+10; i++ {
		st.warn("ordered warning %02d", i)
	}
	h := st.Health()
	if len(h.Warnings) != maxWarnings+1 {
		t.Fatalf("warning list length %d, want %d + sentinel", len(h.Warnings), maxWarnings)
	}
	if last := h.Warnings[maxWarnings]; last != "(further warnings suppressed)" {
		t.Fatalf("missing suppression sentinel, last entry %q", last)
	}
	for i := 0; i < maxWarnings; i++ {
		if want := fmt.Sprintf("ordered warning %02d", i); h.Warnings[i] != want {
			t.Fatalf("warning %d is %q, want %q — first-occurrence order not preserved", i, h.Warnings[i], want)
		}
	}

	// An admitted message keeps accumulating its count after the cap; a
	// suppressed one stays out rather than evicting anything.
	st.warn("ordered warning 00")
	st.warn("ordered warning %02d", maxWarnings+5)
	h = st.Health()
	if h.Warnings[0] != "ordered warning 00 (x2)" {
		t.Fatalf("admitted message did not keep counting: %q", h.Warnings[0])
	}
	if len(h.Warnings) != maxWarnings+1 {
		t.Fatalf("suppressed repeat changed the list length: %d", len(h.Warnings))
	}
}
