package store

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"specmine/internal/fsim"
	"specmine/internal/seqdb"
)

// Live-fault tests: fsim fault schedules injected under the store, asserting
// the graceful-degradation contract — transient faults fail (at most) the one
// operation that hit them, permanent faults land in DegradedReadOnly, cleanup
// failures surface as warnings, and recovery over the surviving files always
// reproduces the acked state.

// openFaultStore opens a store over a FaultFS with the given schedule.
func openFaultStore(t *testing.T, dir string, schedule []fsim.Rule, tweak func(*Options)) (*Store, *fsim.FaultFS) {
	t.Helper()
	ffs := fsim.NewFaultFS(fsim.OS(), schedule...)
	st := openStore(t, dir, func(o *Options) {
		o.FS = ffs
		if tweak != nil {
			tweak(o)
		}
	})
	return st, ffs
}

func healthAssert(t *testing.T, st *Store, want HealthState) Health {
	t.Helper()
	h := st.Health()
	if h.State != want {
		t.Fatalf("health state %v want %v (err %v, cause %q, warnings %v)", h.State, want, h.Err, h.Cause, h.Warnings)
	}
	return h
}

func hasWarning(h Health, sub string) bool {
	for _, w := range h.Warnings {
		if strings.Contains(w, sub) {
			return true
		}
	}
	return false
}

// TestSegmentWriteENOSPCDiscardedOnReopen: ENOSPC with a short write torn
// into a segment publish. The barrier fails but the store stays healthy (the
// WAL still covers the traces), and reopening discards the partial file and
// recovers every sealed trace from the log.
func TestSegmentWriteENOSPCDiscardedOnReopen(t *testing.T) {
	dir := t.TempDir()
	st, _ := openFaultStore(t, dir,
		[]fsim.Rule{{Op: fsim.OpWrite, Path: ".seg", From: 0, To: 99, Err: syscall.ENOSPC, Short: true}},
		func(o *Options) { o.RetryAttempts = -1 })
	internEvents(t, st, 10)
	sl := st.Shard(0)
	rng := rand.New(rand.NewSource(7))
	// Enough traces that a half-written file (Short) tears inside the segment
	// core, not just the advisory stats block behind the trailer.
	var sealed []seqdb.Sequence
	for i := 0; i < 200; i++ {
		id := fmt.Sprintf("tr%03d", i)
		evs := randomTrace(rng, 10)
		if err := sl.LogEvents(id, evs, noSend); err != nil {
			t.Fatal(err)
		}
		if err := sl.LogSeal(id, noSend); err != nil {
			t.Fatal(err)
		}
		sealed = append(sealed, evs)
	}
	err := sl.WriteSegment(sealed)
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("WriteSegment under ENOSPC: %v", err)
	}
	h := healthAssert(t, st, Healthy)
	if h.Faults == 0 {
		t.Fatal("surfaced transient fault not counted")
	}
	// The torn partial file exists; the WAL still covers the traces.
	segs, _ := filepath.Glob(filepath.Join(dir, "shard-000", "*.seg"))
	if len(segs) != 1 {
		t.Fatalf("expected one torn segment file, found %v", segs)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openStore(t, dir, nil)
	defer st2.Close()
	sequencesEqual(t, "recovered after torn segment", st2.Recovered().Shards[0].Sequences, sealed)
	if !hasWarning(st2.Health(), "torn segment") {
		t.Fatalf("reopen did not warn about the torn segment: %v", st2.Health().Warnings)
	}
}

// TestWALRotationENOSPCOldGenerationContinues: a torn rename mid-rotation.
// The rotation fails, the superseded generation stays active and keeps
// accepting appends, and recovery discards the half-published generation
// (missing commit marker) in favour of the intact predecessor.
func TestWALRotationENOSPCOldGenerationContinues(t *testing.T) {
	dir := t.TempDir()
	st, _ := openFaultStore(t, dir,
		[]fsim.Rule{{Op: fsim.OpRename, Path: ".wal", Err: syscall.ENOSPC, Torn: true}},
		nil)
	internEvents(t, st, 10)
	sl := st.Shard(0)
	rng := rand.New(rand.NewSource(8))
	var sealed []seqdb.Sequence
	for i := 0; i < 4; i++ {
		id := "tr" + string(rune('a'+i))
		evs := randomTrace(rng, 10)
		if err := sl.LogEvents(id, evs, noSend); err != nil {
			t.Fatal(err)
		}
		if err := sl.LogSeal(id, noSend); err != nil {
			t.Fatal(err)
		}
		sealed = append(sealed, evs)
	}
	stillOpen := randomTrace(rng, 10)
	if err := sl.LogEvents(t.Name(), stillOpen, noSend); err != nil {
		t.Fatal(err)
	}

	if !sl.TryLock() {
		t.Fatal("TryLock failed with no producers")
	}
	if err := sl.WriteSegmentLocked(sealed); err != nil {
		sl.Unlock()
		t.Fatal(err)
	}
	err := sl.RotateLocked([]OpenTrace{{ID: t.Name(), Events: stillOpen}}, len(sealed))
	sl.Unlock()
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("RotateLocked under torn rename: %v", err)
	}
	healthAssert(t, st, Healthy)

	// The old generation is still the active WAL; ingest continues on it.
	extra := randomTrace(rng, 10)
	if err := sl.LogEvents(t.Name(), extra, noSend); err != nil {
		t.Fatalf("append after failed rotation: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Both generations are on disk; the newer one is a torn prefix.
	wals, _ := filepath.Glob(filepath.Join(dir, "shard-000", "*.wal"))
	if len(wals) != 2 {
		t.Fatalf("expected torn + intact WAL generations, found %v", wals)
	}

	st2 := openStore(t, dir, nil)
	defer st2.Close()
	rec := st2.Recovered().Shards[0]
	sequencesEqual(t, "sealed after torn rotation", rec.Sequences, sealed)
	if len(rec.Open) != 1 || rec.Open[0].ID != t.Name() {
		t.Fatalf("open traces after torn rotation: %+v", rec.Open)
	}
	wantOpen := append(append(seqdb.Sequence{}, stillOpen...), extra...)
	sequencesEqual(t, "open events after torn rotation", []seqdb.Sequence{rec.Open[0].Events}, []seqdb.Sequence{wantOpen})
	if !hasWarning(st2.Health(), "torn WAL generation") {
		t.Fatalf("reopen did not warn about the torn generation: %v", st2.Health().Warnings)
	}
}

// TestTransientENOSPCAbsorbedByRetry: a one-shot ENOSPC on the WAL flush path
// disappears inside the bounded retry — the caller never sees it.
func TestTransientENOSPCAbsorbedByRetry(t *testing.T) {
	dir := t.TempDir()
	// Write rank 0 is the WAL creation write at Open; rank 1 the first flush.
	st, _ := openFaultStore(t, dir,
		[]fsim.Rule{{Op: fsim.OpWrite, Path: "shard-000", From: 1, Err: syscall.ENOSPC}},
		nil)
	defer st.Close()
	internEvents(t, st, 5)
	sl := st.Shard(0)
	if err := sl.LogEvents("tr", seqdb.Sequence{0, 1, 2}, noSend); err != nil {
		t.Fatal(err)
	}
	if err := sl.Flush(); err != nil {
		t.Fatalf("flush with retryable fault: %v", err)
	}
	h := healthAssert(t, st, Healthy)
	if h.Retries == 0 {
		t.Fatal("retry not counted")
	}
	if h.Faults != 0 {
		t.Fatalf("absorbed fault surfaced: %d", h.Faults)
	}
}

// TestTransientENOSPCClearsAndIngestResumes: an ENOSPC window that outlives
// the retry budget fails individual flushes while it lasts; once it clears,
// ingest resumes on the same open store handle, and everything acked is
// durable.
func TestTransientENOSPCClearsAndIngestResumes(t *testing.T) {
	dir := t.TempDir()
	st, _ := openFaultStore(t, dir,
		[]fsim.Rule{{Op: fsim.OpWrite, Path: "shard-000", From: 1, To: 5, Err: syscall.ENOSPC}},
		func(o *Options) { o.RetryAttempts = -1 })
	internEvents(t, st, 8)
	sl := st.Shard(0)
	if err := sl.LogEvents("tr", seqdb.Sequence{0, 1, 2}, noSend); err != nil {
		t.Fatal(err)
	}
	failures := 0
	for sl.Flush() != nil {
		failures++
		if failures > 10 {
			t.Fatal("flush never recovered after the ENOSPC window")
		}
		healthAssert(t, st, Healthy)
	}
	if failures != 4 {
		t.Fatalf("expected 4 surfaced failures for the [1,5) window, got %d", failures)
	}
	if h := st.Health(); h.Faults != 4 {
		t.Fatalf("fault count %d want 4", h.Faults)
	}
	// Ingest continues on the same handle, no reopen.
	if err := sl.LogEvents("tr", seqdb.Sequence{3, 4}, noSend); err != nil {
		t.Fatalf("append after window cleared: %v", err)
	}
	if err := sl.LogSeal("tr", noSend); err != nil {
		t.Fatal(err)
	}
	if err := sl.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2 := openStore(t, dir, nil)
	defer st2.Close()
	sequencesEqual(t, "recovered after cleared window", st2.Recovered().Shards[0].Sequences,
		[]seqdb.Sequence{{0, 1, 2, 3, 4}})
}

// TestPermanentFaultDegradesReadOnly: EIO on the WAL moves the store to
// DegradedReadOnly — ingest fails fast with ErrDegraded, reads stay open.
func TestPermanentFaultDegradesReadOnly(t *testing.T) {
	dir := t.TempDir()
	st, _ := openFaultStore(t, dir,
		[]fsim.Rule{{Op: fsim.OpWrite, Path: "shard-000", From: 1, Err: syscall.EIO}},
		nil)
	internEvents(t, st, 5)
	sl := st.Shard(0)
	if err := sl.LogEvents("tr", seqdb.Sequence{0, 1}, noSend); err != nil {
		t.Fatal(err)
	}
	err := sl.Flush()
	if !errors.Is(err, ErrDegraded) || !errors.Is(err, syscall.EIO) {
		t.Fatalf("flush under EIO: %v", err)
	}
	h := healthAssert(t, st, DegradedReadOnly)
	if !errors.Is(h.Err, syscall.EIO) {
		t.Fatalf("health first error: %v", h.Err)
	}
	if !strings.Contains(h.Cause, "WAL flush") {
		t.Fatalf("health cause: %q", h.Cause)
	}
	// Writes fail fast with the typed error; reads are not gated.
	if err := sl.LogEvents("tr2", seqdb.Sequence{2}, noSend); !errors.Is(err, ErrDegraded) {
		t.Fatalf("ingest after degradation: %v", err)
	}
	if err := sl.CommitEvents("tr3", seqdb.Sequence{3}, noSend); !errors.Is(err, ErrDegraded) {
		t.Fatalf("commit after degradation: %v", err)
	}
	if err := st.ReadErr(); err != nil {
		t.Fatalf("ReadErr in degraded mode: %v", err)
	}
	if err := st.Close(); !errors.Is(err, ErrDegraded) {
		t.Fatalf("close of degraded store: %v", err)
	}
}

// TestRotationCleanupFailureWarnsNotFails: failing to close or remove the
// superseded WAL generation after a successful rotation is a warning, never a
// store failure — the new generation already covers all state.
func TestRotationCleanupFailureWarnsNotFails(t *testing.T) {
	dir := t.TempDir()
	st, _ := openFaultStore(t, dir,
		[]fsim.Rule{
			{Op: fsim.OpClose, Path: walName(1), Err: syscall.EIO},
			{Op: fsim.OpRemove, Path: walName(1), Err: syscall.EACCES},
		},
		nil)
	internEvents(t, st, 10)
	sl := st.Shard(0)
	rng := rand.New(rand.NewSource(9))
	var sealed []seqdb.Sequence
	for i := 0; i < 3; i++ {
		id := "tr" + string(rune('a'+i))
		evs := randomTrace(rng, 10)
		if err := sl.LogEvents(id, evs, noSend); err != nil {
			t.Fatal(err)
		}
		if err := sl.LogSeal(id, noSend); err != nil {
			t.Fatal(err)
		}
		sealed = append(sealed, evs)
	}
	if !sl.TryLock() {
		t.Fatal("TryLock failed with no producers")
	}
	if err := sl.WriteSegmentLocked(sealed); err != nil {
		sl.Unlock()
		t.Fatal(err)
	}
	err := sl.RotateLocked(nil, len(sealed))
	sl.Unlock()
	if err != nil {
		t.Fatalf("rotation with failing cleanup: %v", err)
	}
	h := healthAssert(t, st, Healthy)
	if !hasWarning(h, "closing superseded") || !hasWarning(h, "removing superseded") {
		t.Fatalf("cleanup failures not recorded as warnings: %v", h.Warnings)
	}
	// The leaked old generation is still on disk next to the new one.
	wals, _ := filepath.Glob(filepath.Join(dir, "shard-000", "*.wal"))
	if len(wals) != 2 {
		t.Fatalf("expected leaked + active WAL, found %v", wals)
	}
	if err := sl.LogEvents("post", seqdb.Sequence{0, 1}, noSend); err != nil {
		t.Fatalf("ingest after rotation: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen prefers the newest complete generation and clears the leak.
	st2 := openStore(t, dir, nil)
	defer st2.Close()
	sequencesEqual(t, "recovered after leaked generation", st2.Recovered().Shards[0].Sequences, sealed)
	if _, err := os.Stat(filepath.Join(dir, "shard-000", walName(1))); !os.IsNotExist(err) {
		t.Fatalf("leaked generation not cleaned on reopen: %v", err)
	}
}

// TestCompactionReadEIODegrades: a permanent read fault during compaction
// degrades the store but leaves reads (and the existing on-disk state)
// intact.
func TestCompactionReadEIODegrades(t *testing.T) {
	dir := t.TempDir()
	st, _ := openFaultStore(t, dir,
		[]fsim.Rule{{Op: fsim.OpRead, Path: ".seg", Err: syscall.EIO}},
		func(o *Options) { o.CompactBytes = 1 << 20 })
	internEvents(t, st, 10)
	sl := st.Shard(0)
	rng := rand.New(rand.NewSource(10))
	var sealed []seqdb.Sequence
	for i := 0; i < compactMinRun; i++ {
		id := "tr" + string(rune('a'+i))
		evs := randomTrace(rng, 10)
		if err := sl.LogEvents(id, evs, noSend); err != nil {
			t.Fatal(err)
		}
		if err := sl.LogSeal(id, noSend); err != nil {
			t.Fatal(err)
		}
		sealed = append(sealed, evs)
		// One small segment per seal, so a mergeable run accumulates.
		if err := sl.WriteSegment(sealed); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Compact(); !errors.Is(err, ErrDegraded) || !errors.Is(err, syscall.EIO) {
		t.Fatalf("compaction under EIO: %v", err)
	}
	healthAssert(t, st, DegradedReadOnly)
	if err := st.ReadErr(); err != nil {
		t.Fatalf("ReadErr after compaction fault: %v", err)
	}
	_ = st.Close()
	// The un-merged segments are untouched; a clean reopen recovers all.
	st2 := openStore(t, dir, nil)
	defer st2.Close()
	sequencesEqual(t, "recovered after compaction fault", st2.Recovered().Shards[0].Sequences, sealed)
}

// TestInvariantViolationFails: a rotation whose coverage contradicts the
// segment ledger is an invariant violation — the store moves to Failed and
// reads are gated too.
func TestInvariantViolationFails(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, nil)
	sl := st.Shard(0)
	internEvents(t, st, 5)
	if err := sl.LogEvents("tr", seqdb.Sequence{0}, noSend); err != nil {
		t.Fatal(err)
	}
	if err := sl.LogSeal("tr", noSend); err != nil {
		t.Fatal(err)
	}
	if !sl.TryLock() {
		t.Fatal("TryLock failed with no producers")
	}
	err := sl.RotateLocked(nil, 1) // 1 sealed, 0 covered by segments
	sl.Unlock()
	if !errors.Is(err, ErrFailed) {
		t.Fatalf("invariant violation: %v", err)
	}
	healthAssert(t, st, Failed)
	if err := st.ReadErr(); !errors.Is(err, ErrFailed) {
		t.Fatalf("ReadErr after invariant violation: %v", err)
	}
	_ = st.Close()
}
