package store

import (
	"specmine/internal/obs"
)

// storeMetrics are the store's registry-backed series. The zero value (all
// nil handles, enabled false) is the disabled form: every handle method
// no-ops on nil, and the enabled flag gates the few places that would
// otherwise read the clock for nothing.
type storeMetrics struct {
	enabled bool
	// commits counts operations committed to a shard WAL (events or seal),
	// i.e. acknowledged durable mutations. It is fed by commitSeq deltas at
	// WAL flush points rather than per-commit increments (see flushLocked),
	// so it is exact after any barrier, snapshot, or close.
	commits *obs.Counter
	// walFlushNs / walFlushBytes / walFsyncNs describe group commits: latency
	// of the whole flush, size of the batch handed to the OS, and the fsync
	// portion alone (Sync mode only).
	walFlushNs    *obs.Histogram
	walFlushBytes *obs.Histogram
	walFsyncNs    *obs.Histogram
	// segsPublished / segPublishNs cover segment rolls, rotations counts
	// completed WAL rotations, compactionRuns counts merged segment runs.
	segsPublished *obs.Counter
	segPublishNs  *obs.Histogram
	rotations     *obs.Counter
	compactions   *obs.Counter
	// retries/faults/degradations/warnings mirror the health ladder's own
	// counters as scrapeable series; healthState is the ladder position
	// (0 healthy, 1 degraded-read-only, 2 failed).
	retries      *obs.Counter
	faults       *obs.Counter
	degradations *obs.Counter
	warnings     *obs.Counter
	healthState  *obs.Gauge
	// ops records rotation, compaction and degradation transitions in the
	// registry's recent-operations ring.
	ops *obs.Tracer
}

func newStoreMetrics(r *obs.Registry) storeMetrics {
	return storeMetrics{
		enabled:       r != nil,
		commits:       r.Counter("store.commits"),
		walFlushNs:    r.Histogram("store.wal_flush_ns"),
		walFlushBytes: r.Histogram("store.wal_flush_bytes"),
		walFsyncNs:    r.Histogram("store.wal_fsync_ns"),
		segsPublished: r.Counter("store.segments_published"),
		segPublishNs:  r.Histogram("store.segment_publish_ns"),
		rotations:     r.Counter("store.wal_rotations"),
		compactions:   r.Counter("store.compaction_runs"),
		retries:       r.Counter("store.retries"),
		faults:        r.Counter("store.faults"),
		degradations:  r.Counter("store.degradations"),
		warnings:      r.Counter("store.warnings"),
		healthState:   r.Gauge("store.health_state"),
		ops:           r.Ops(),
	}
}
