package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"

	"specmine/internal/seqdb"
)

// Per-segment event statistics. Every v2 segment carries a stats block
// recording, for each distinct event in the segment, its total occurrence
// count and the number of traces it appears in, plus a bloom filter over the
// distinct event set. The block is advisory: readers that find it damaged or
// absent (v1 files, torn tails) recompute it from the decoded body instead of
// failing the open — see parseSegment.
//
// Stats block wire format (appended after the segment trailer, see
// segment.go for the enclosing layout):
//
//	uvarint stats version (1)
//	uvarint number of distinct events
//	uvarint bloom filter length in bytes (segBloomBytes)
//	uvarint bloom hash count (segBloomHashes)
//	bloom filter bytes
//	per distinct event, ascending by id:
//	  uvarint event id delta (first event absolute, then id - previous id)
//	  uvarint occurrence count
//	  uvarint trace count
//	uint32 LE CRC-32 of everything above
//
// The bloom geometry is a global constant rather than sized per segment so
// that compaction can merge stats blocks by OR-ing filters; a parsed block
// with any other geometry is treated as absent and recomputed.

const (
	segStatsVersion = 1
	segBloomBits    = 8192
	segBloomBytes   = segBloomBits / 8
	segBloomHashes  = 4
)

// SegmentStats summarises the event content of one sealed segment: exact
// per-event occurrence and trace counts plus a bloom filter over the distinct
// event set. MayContain has no false negatives, so a negative answer proves
// the event cannot occur anywhere in the segment — the property segment
// skipping relies on.
type SegmentStats struct {
	bloom  []byte // segBloomBytes, segBloomHashes double-hashed bits
	events []seqdb.EventID
	occ    []int64
	traces []int64
}

// bloomProbe derives the two double-hashing streams for event e. splitmix64
// finalizer: cheap, deterministic, and well-mixed for small integer keys.
func bloomProbe(e seqdb.EventID) (h1, h2 uint32) {
	z := uint64(uint32(e)) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return uint32(z), uint32(z>>32) | 1
}

func bloomSet(bits []byte, e seqdb.EventID) {
	h1, h2 := bloomProbe(e)
	for i := uint32(0); i < segBloomHashes; i++ {
		bit := (h1 + i*h2) % segBloomBits
		bits[bit>>3] |= 1 << (bit & 7)
	}
}

func bloomTest(bits []byte, e seqdb.EventID) bool {
	h1, h2 := bloomProbe(e)
	for i := uint32(0); i < segBloomHashes; i++ {
		bit := (h1 + i*h2) % segBloomBits
		if bits[bit>>3]&(1<<(bit&7)) == 0 {
			return false
		}
	}
	return true
}

// MayContain reports whether event e may occur in the segment. False means
// provably absent; true may be a bloom false positive (which only costs the
// caller a body decode, never correctness).
func (s *SegmentStats) MayContain(e seqdb.EventID) bool {
	return bloomTest(s.bloom, e)
}

// Count returns the exact occurrence and trace counts for event e, both zero
// when the event does not occur in the segment.
func (s *SegmentStats) Count(e seqdb.EventID) (occurrences, traces int64) {
	i := sort.Search(len(s.events), func(i int) bool { return s.events[i] >= e })
	if i == len(s.events) || s.events[i] != e {
		return 0, 0
	}
	return s.occ[i], s.traces[i]
}

// NumDistinctEvents returns the number of distinct events in the segment.
func (s *SegmentStats) NumDistinctEvents() int { return len(s.events) }

// ForEachEvent calls fn for every distinct event in ascending id order.
func (s *SegmentStats) ForEachEvent(fn func(e seqdb.EventID, occurrences, traces int64)) {
	for i, e := range s.events {
		fn(e, s.occ[i], s.traces[i])
	}
}

// computeSegmentStats builds the stats summary for a run of traces. This is
// both the seal-time path (encodeSegment) and the lazy backfill path for v1
// segments or damaged stats blocks.
func computeSegmentStats(seqs []seqdb.Sequence) *SegmentStats {
	type acc struct {
		occ, traces int64
		lastTrace   int
	}
	counts := make(map[seqdb.EventID]*acc)
	for ti, s := range seqs {
		for _, e := range s {
			a := counts[e]
			if a == nil {
				a = &acc{lastTrace: -1}
				counts[e] = a
			}
			a.occ++
			if a.lastTrace != ti {
				a.lastTrace = ti
				a.traces++
			}
		}
	}
	st := &SegmentStats{
		bloom:  make([]byte, segBloomBytes),
		events: make([]seqdb.EventID, 0, len(counts)),
		occ:    make([]int64, 0, len(counts)),
		traces: make([]int64, 0, len(counts)),
	}
	for e := range counts {
		st.events = append(st.events, e)
	}
	sort.Slice(st.events, func(i, j int) bool { return st.events[i] < st.events[j] })
	for _, e := range st.events {
		a := counts[e]
		st.occ = append(st.occ, a.occ)
		st.traces = append(st.traces, a.traces)
		bloomSet(st.bloom, e)
	}
	return st
}

// mergeSegmentStats combines per-part stats into the stats of the
// concatenated segment: counts add, bloom filters OR (valid because the
// geometry is a global constant). Every part must be non-nil — callers
// backfill v1 parts first.
func mergeSegmentStats(parts []*SegmentStats) *SegmentStats {
	if len(parts) == 1 {
		return parts[0]
	}
	type acc struct{ occ, traces int64 }
	counts := make(map[seqdb.EventID]*acc)
	out := &SegmentStats{bloom: make([]byte, segBloomBytes)}
	for _, p := range parts {
		for i := range p.bloom {
			out.bloom[i] |= p.bloom[i]
		}
		for i, e := range p.events {
			a := counts[e]
			if a == nil {
				a = &acc{}
				counts[e] = a
			}
			a.occ += p.occ[i]
			a.traces += p.traces[i]
		}
	}
	out.events = make([]seqdb.EventID, 0, len(counts))
	for e := range counts {
		out.events = append(out.events, e)
	}
	sort.Slice(out.events, func(i, j int) bool { return out.events[i] < out.events[j] })
	out.occ = make([]int64, 0, len(counts))
	out.traces = make([]int64, 0, len(counts))
	for _, e := range out.events {
		a := counts[e]
		out.occ = append(out.occ, a.occ)
		out.traces = append(out.traces, a.traces)
	}
	return out
}

// appendSegmentStats encodes the stats block (content + trailing CRC) onto buf.
func appendSegmentStats(buf []byte, s *SegmentStats) []byte {
	start := len(buf)
	buf = binary.AppendUvarint(buf, segStatsVersion)
	buf = binary.AppendUvarint(buf, uint64(len(s.events)))
	buf = binary.AppendUvarint(buf, segBloomBytes)
	buf = binary.AppendUvarint(buf, segBloomHashes)
	buf = append(buf, s.bloom...)
	prev := seqdb.EventID(0)
	for i, e := range s.events {
		buf = binary.AppendUvarint(buf, uint64(e-prev))
		prev = e
		buf = binary.AppendUvarint(buf, uint64(s.occ[i]))
		buf = binary.AppendUvarint(buf, uint64(s.traces[i]))
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[start:]))
}

// parseSegmentStats decodes a stats block. Any damage — bad CRC, truncation,
// unknown version or foreign bloom geometry — returns an error; callers treat
// that as "stats absent" and fall back to recomputation, never a failed open.
func parseSegmentStats(data []byte) (*SegmentStats, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("store: stats block too short")
	}
	content := data[:len(data)-4]
	if crc32.ChecksumIEEE(content) != binary.LittleEndian.Uint32(data[len(data)-4:]) {
		return nil, fmt.Errorf("store: stats block checksum mismatch")
	}
	off := 0
	next := func() (uint64, error) {
		v, n := binary.Uvarint(content[off:])
		if n <= 0 {
			return 0, fmt.Errorf("store: stats block truncated at byte %d", off)
		}
		off += n
		return v, nil
	}
	ver, err := next()
	if err != nil {
		return nil, err
	}
	if ver != segStatsVersion {
		return nil, fmt.Errorf("store: unsupported stats version %d", ver)
	}
	numEvents, err := next()
	if err != nil {
		return nil, err
	}
	bloomLen, err := next()
	if err != nil {
		return nil, err
	}
	hashes, err := next()
	if err != nil {
		return nil, err
	}
	if bloomLen != segBloomBytes || hashes != segBloomHashes {
		return nil, fmt.Errorf("store: stats bloom geometry %d/%d, want %d/%d", bloomLen, hashes, segBloomBytes, segBloomHashes)
	}
	if off+segBloomBytes > len(content) {
		return nil, fmt.Errorf("store: stats bloom filter truncated")
	}
	if numEvents > uint64(len(content)) { // each entry costs >= 3 bytes
		return nil, fmt.Errorf("store: stats block claims %d events in %d bytes", numEvents, len(content))
	}
	s := &SegmentStats{
		bloom:  append([]byte(nil), content[off:off+segBloomBytes]...),
		events: make([]seqdb.EventID, 0, numEvents),
		occ:    make([]int64, 0, numEvents),
		traces: make([]int64, 0, numEvents),
	}
	off += segBloomBytes
	prev := seqdb.EventID(0)
	for i := uint64(0); i < numEvents; i++ {
		d, err := next()
		if err != nil {
			return nil, err
		}
		occ, err := next()
		if err != nil {
			return nil, err
		}
		tr, err := next()
		if err != nil {
			return nil, err
		}
		e := prev + seqdb.EventID(d)
		if i > 0 && e <= prev {
			return nil, fmt.Errorf("store: stats event ids not ascending")
		}
		prev = e
		s.events = append(s.events, e)
		s.occ = append(s.occ, int64(occ))
		s.traces = append(s.traces, int64(tr))
	}
	if off != len(content) {
		return nil, fmt.Errorf("store: stats block has %d trailing bytes", len(content)-off)
	}
	return s, nil
}
