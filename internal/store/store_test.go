package store

import (
	"encoding/binary"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"specmine/internal/fsim"
	"specmine/internal/seqdb"
)

func openStore(t *testing.T, dir string, tweak func(*Options)) *Store {
	t.Helper()
	opts := Options{Dir: dir, Shards: 1}
	if tweak != nil {
		tweak(&opts)
	}
	st, err := Open(opts)
	if err != nil {
		t.Fatalf("opening store: %v", err)
	}
	return st
}

// internEvents gives the store's dictionary n event names and returns their
// ids (0..n-1 on a fresh store).
func internEvents(t *testing.T, st *Store, n int) []seqdb.EventID {
	t.Helper()
	ids := make([]seqdb.EventID, n)
	for i := range ids {
		ids[i] = st.Dict().Intern(eventName(i))
	}
	return ids
}

func eventName(i int) string { return "ev" + string(rune('a'+i%26)) + string(rune('0'+i/26)) }

func noSend() {}

func randomTrace(rng *rand.Rand, alphabet int) seqdb.Sequence {
	s := make(seqdb.Sequence, 1+rng.Intn(20))
	for j := range s {
		if j > 0 && rng.Intn(4) == 0 {
			s[j] = s[j-1]
		} else {
			s[j] = seqdb.EventID(rng.Intn(alphabet))
		}
	}
	return s
}

func sequencesEqual(t *testing.T, label string, got, want []seqdb.Sequence) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d sequences want %d", label, len(got), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("%s: sequence %d has %d events want %d", label, i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("%s: sequence %d event %d is %d want %d", label, i, j, got[i][j], want[i][j])
			}
		}
	}
}

func TestSegmentEncodeDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var seqs []seqdb.Sequence
	seqs = append(seqs, seqdb.Sequence{}) // empty trace is legal
	for i := 0; i < 40; i++ {
		seqs = append(seqs, randomTrace(rng, 30))
	}
	data := encodeSegment(seqs, 3, 17)
	v, err := parseSegment(data)
	if err != nil {
		t.Fatal(err)
	}
	if v.shard != 3 || v.from != 17 || v.numTraces() != len(seqs) {
		t.Fatalf("parsed shard=%d from=%d traces=%d", v.shard, v.from, v.numTraces())
	}
	all, err := v.decodeAll()
	if err != nil {
		t.Fatal(err)
	}
	sequencesEqual(t, "decodeAll", all, seqs)
	// Random access through the footer offsets, no full decode.
	for _, i := range []int{0, 1, len(seqs) / 2, len(seqs) - 1} {
		s, err := v.trace(i)
		if err != nil {
			t.Fatal(err)
		}
		sequencesEqual(t, "trace()", []seqdb.Sequence{s}, []seqdb.Sequence{seqs[i]})
	}
	// Any single flipped byte inside the core (magic, header, body, footer,
	// trailer) must fail the open.
	coreLen := segmentCoreLen(data)
	for _, off := range []int{0, 9, 14, coreLen / 2, coreLen - 25, coreLen - 3} {
		corrupt := append([]byte(nil), data...)
		corrupt[off] ^= 0x40
		if _, err := parseSegment(corrupt); err == nil {
			t.Fatalf("core corruption at byte %d went undetected", off)
		}
	}
	// A flipped byte in the advisory stats block must NOT fail the open — the
	// segment comes back with stats absent and identical traces.
	for _, off := range []int{coreLen, coreLen + 100, len(data) - 1} {
		corrupt := append([]byte(nil), data...)
		corrupt[off] ^= 0x40
		v2, err := parseSegment(corrupt)
		if err != nil {
			t.Fatalf("stats corruption at byte %d failed the open: %v", off, err)
		}
		if v2.stats != nil {
			t.Fatalf("stats corruption at byte %d went undetected", off)
		}
		got, err := v2.decodeAll()
		if err != nil {
			t.Fatal(err)
		}
		sequencesEqual(t, "stats-corrupt decodeAll", got, seqs)
	}
	// Truncation inside the stats block: still openable, stats absent.
	if v2, err := parseSegment(data[:len(data)-1]); err != nil || v2.stats != nil {
		t.Fatalf("stats-truncated segment: err=%v stats=%v", err, v2.stats != nil)
	}
	// Truncation into the core: detected as torn.
	if _, err := parseSegment(data[:coreLen-1]); err == nil {
		t.Fatal("core-truncated segment went undetected")
	}
}

// segmentCoreLen returns the length of a v2 segment's core (everything up to
// and including the trailer), read from the fixed header.
func segmentCoreLen(data []byte) int {
	bodyLen := int(binary.LittleEndian.Uint32(data[len(segMagic):]))
	footerLen := int(binary.LittleEndian.Uint32(data[len(segMagic)+4:]))
	return len(segMagic) + segHeaderLen + bodyLen + footerLen + segTrailerLen
}

func TestSegmentMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var all []seqdb.Sequence
	var parts [][]byte
	from := 5
	for p := 0; p < 3; p++ {
		var seqs []seqdb.Sequence
		for i := 0; i < 4+p; i++ {
			seqs = append(seqs, randomTrace(rng, 20))
		}
		parts = append(parts, encodeSegment(seqs, 1, from+len(all)))
		all = append(all, seqs...)
	}
	merged, err := mergeSegments(parts)
	if err != nil {
		t.Fatal(err)
	}
	v, err := parseSegment(merged)
	if err != nil {
		t.Fatal(err)
	}
	if v.from != 5 || v.numTraces() != len(all) {
		t.Fatalf("merged from=%d traces=%d", v.from, v.numTraces())
	}
	got, err := v.decodeAll()
	if err != nil {
		t.Fatal(err)
	}
	sequencesEqual(t, "merged", got, all)

	// Non-adjacent and cross-shard merges must be refused.
	if _, err := mergeSegments([][]byte{parts[0], parts[2]}); err == nil {
		t.Fatal("non-adjacent merge accepted")
	}
	other := encodeSegment(all[:2], 2, 5+len(all))
	if _, err := mergeSegments([][]byte{parts[0], other}); err == nil {
		t.Fatal("cross-shard merge accepted")
	}
}

// TestStoreRoundTrip: traces logged through the ShardLog — some sealed, some
// left open, some rolled into segments — come back exactly after a reopen.
func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, nil)
	internEvents(t, st, 12)
	sl := st.Shard(0)
	rng := rand.New(rand.NewSource(9))

	var sealed []seqdb.Sequence
	for i := 0; i < 10; i++ {
		id := "t-" + string(rune('a'+i))
		tr := randomTrace(rng, 12)
		// Deliver in two chunks to exercise events-append on an open handle.
		mid := len(tr) / 2
		if err := sl.LogEvents(id, tr[:mid], noSend); err != nil {
			t.Fatal(err)
		}
		if err := sl.LogEvents(id, tr[mid:], noSend); err != nil {
			t.Fatal(err)
		}
		if err := sl.LogSeal(id, noSend); err != nil {
			t.Fatal(err)
		}
		sealed = append(sealed, tr)
		if i == 4 {
			// Barrier mid-run: the first five traces go to a segment.
			if err := sl.WriteSegment(sealed); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Two traces left open, one of them empty-by-now.
	openA := randomTrace(rng, 12)
	if err := sl.LogEvents("open-a", openA, noSend); err != nil {
		t.Fatal(err)
	}
	if err := sl.LogEvents("open-b", nil, noSend); err != nil {
		t.Fatal(err)
	}
	// An empty sealed trace via LogSeal on an unknown id.
	if err := sl.LogSeal("ghost", noSend); err != nil {
		t.Fatal(err)
	}
	sealed = append(sealed, seqdb.Sequence{})
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openStore(t, dir, nil)
	defer st2.Close()
	rec := st2.Recovered().Shards[0]
	sequencesEqual(t, "recovered sealed", rec.Sequences, sealed)
	if len(rec.Open) != 2 {
		t.Fatalf("recovered %d open traces want 2", len(rec.Open))
	}
	if rec.Open[0].ID != "open-a" || rec.Open[1].ID != "open-b" {
		t.Fatalf("open ids %q, %q", rec.Open[0].ID, rec.Open[1].ID)
	}
	sequencesEqual(t, "open-a", []seqdb.Sequence{rec.Open[0].Events}, []seqdb.Sequence{openA})
	if len(rec.Open[1].Events) != 0 {
		t.Fatalf("open-b has %d events want 0", len(rec.Open[1].Events))
	}
	if st2.Dict().Size() != 12 {
		t.Fatalf("dictionary recovered %d names want 12", st2.Dict().Size())
	}
	for i := 0; i < 12; i++ {
		if st2.Dict().Lookup(eventName(i)) != seqdb.EventID(i) {
			t.Fatalf("dictionary id for %q moved to %d", eventName(i), st2.Dict().Lookup(eventName(i)))
		}
	}
}

// TestRecoveredIndexMatchesFreshBuild: the PositionIndex built over a
// recovered shard database must be byte-identical to a fresh build over the
// original sequences.
func TestRecoveredIndexMatchesFreshBuild(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, nil)
	ids := internEvents(t, st, 20)
	_ = ids
	sl := st.Shard(0)
	rng := rand.New(rand.NewSource(10))
	var sealed []seqdb.Sequence
	for i := 0; i < 30; i++ {
		tr := randomTrace(rng, 20)
		id := "tr-" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		if err := sl.LogEvents(id, tr, noSend); err != nil {
			t.Fatal(err)
		}
		if err := sl.LogSeal(id, noSend); err != nil {
			t.Fatal(err)
		}
		sealed = append(sealed, tr)
		if i%7 == 6 {
			if err := sl.WriteSegment(sealed); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openStore(t, dir, nil)
	defer st2.Close()
	db := st2.Recovered().Database(st2.Dict())
	fresh := seqdb.BuildPositionIndex(sealed, 20)
	if err := db.FlatIndex().EqualState(fresh); err != nil {
		t.Fatalf("recovered index differs from fresh build: %v", err)
	}
}

// TestWALRotation drives the rotation protocol by hand (the way the shard
// goroutine does at a barrier) and checks that state survives it, that the
// old generation is gone, and that open traces carry over.
func TestWALRotation(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, func(o *Options) { o.WALRotateBytes = 1 }) // rotate at every barrier
	internEvents(t, st, 10)
	sl := st.Shard(0)
	rng := rand.New(rand.NewSource(11))

	var sealed []seqdb.Sequence
	open := map[string]seqdb.Sequence{}
	for round := 0; round < 5; round++ {
		// Each round: extend a couple of open traces, seal one, then barrier
		// with rotation.
		for k := 0; k < 2; k++ {
			id := "keep-" + string(rune('a'+(round+k)%3))
			chunk := randomTrace(rng, 10)
			if err := sl.LogEvents(id, chunk, noSend); err != nil {
				t.Fatal(err)
			}
			open[id] = append(open[id], chunk...)
		}
		sealID := "seal-" + string(rune('a'+round))
		tr := randomTrace(rng, 10)
		if err := sl.LogEvents(sealID, tr, noSend); err != nil {
			t.Fatal(err)
		}
		if err := sl.LogSeal(sealID, noSend); err != nil {
			t.Fatal(err)
		}
		sealed = append(sealed, tr)

		if round == 0 && !sl.NeedRotate() {
			t.Fatal("rotation not requested despite 1-byte budget")
		}
		if !sl.TryLock() {
			t.Fatal("TryLock failed with no contention")
		}
		if err := sl.WriteSegmentLocked(sealed); err != nil {
			t.Fatal(err)
		}
		var opens []OpenTrace
		for id, evs := range open {
			opens = append(opens, OpenTrace{ID: id, Events: evs})
		}
		if err := sl.RotateLocked(opens, len(sealed)); err != nil {
			t.Fatal(err)
		}
		sl.Unlock()
	}
	// The rotation threshold adapts: right after a rotation whose re-logged
	// open set exceeds the configured budget, another rotation must NOT be
	// due (a fixed threshold would demand one per operation, rewriting the
	// whole open set each time) — it becomes due again once the WAL has
	// grown past double the fresh generation's size.
	if sl.NeedRotate() {
		t.Fatalf("rotation due immediately after rotating (walSize %d, threshold %d)", sl.walSize.Load(), sl.rotateAt.Load())
	}
	for !sl.NeedRotate() {
		chunk := randomTrace(rng, 10)
		if err := sl.LogEvents("keep-a", chunk, noSend); err != nil {
			t.Fatal(err)
		}
		open["keep-a"] = append(open["keep-a"], chunk...)
	}

	// Exactly one WAL generation file must remain.
	files, err := filepath.Glob(filepath.Join(dir, "shard-000", "*.wal"))
	if err != nil || len(files) != 1 {
		t.Fatalf("WAL files after rotations: %v (err %v)", files, err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openStore(t, dir, nil)
	defer st2.Close()
	rec := st2.Recovered().Shards[0]
	sequencesEqual(t, "sealed after rotations", rec.Sequences, sealed)
	if len(rec.Open) != len(open) {
		t.Fatalf("recovered %d open traces want %d", len(rec.Open), len(open))
	}
	for _, tr := range rec.Open {
		sequencesEqual(t, "open "+tr.ID, []seqdb.Sequence{tr.Events}, []seqdb.Sequence{open[tr.ID]})
	}
}

// TestCompaction: many tiny segments merge into few, recovery sees identical
// content, and leftovers from a crashed compaction are discarded on open.
func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, nil)
	internEvents(t, st, 10)
	sl := st.Shard(0)
	rng := rand.New(rand.NewSource(12))

	var sealed []seqdb.Sequence
	for i := 0; i < 12; i++ {
		tr := randomTrace(rng, 10)
		id := "c-" + string(rune('a'+i))
		if err := sl.LogEvents(id, tr, noSend); err != nil {
			t.Fatal(err)
		}
		if err := sl.LogSeal(id, noSend); err != nil {
			t.Fatal(err)
		}
		sealed = append(sealed, tr)
		if err := sl.WriteSegment(sealed); err != nil { // one tiny segment per trace
			t.Fatal(err)
		}
	}
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	spans := st.SegmentSpans()[0]
	if len(spans) != 1 || spans[0] != [2]int{0, 12} {
		t.Fatalf("spans after compaction: %v", spans)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "shard-000", "*.seg"))
	if len(files) != 1 {
		t.Fatalf("segment files after compaction: %v", files)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash between a compaction's rename and its deletes: drop a
	// subsumed small segment back in next to the merged one.
	leftover := encodeSegment(sealed[3:5], 0, 3)
	if _, err := writeSegmentFile(fsim.OS(), filepath.Join(dir, "shard-000"), 3, 5, leftover, false); err != nil {
		t.Fatal(err)
	}
	st2 := openStore(t, dir, nil)
	defer st2.Close()
	rec := st2.Recovered().Shards[0]
	sequencesEqual(t, "recovered after compaction", rec.Sequences, sealed)
	if _, err := os.Stat(filepath.Join(dir, "shard-000", segmentName(3, 5))); !os.IsNotExist(err) {
		t.Fatalf("subsumed leftover segment not removed (err %v)", err)
	}
}

// TestTornSegmentFallsBackToWAL: segments are written directly (no rename),
// so a crash can tear the newest one. Recovery must discard it and recover
// every trace from the WAL, which is only retired after a completed rotation.
func TestTornSegmentFallsBackToWAL(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, nil)
	internEvents(t, st, 10)
	sl := st.Shard(0)
	rng := rand.New(rand.NewSource(13))
	var sealed []seqdb.Sequence
	for i := 0; i < 8; i++ {
		tr := randomTrace(rng, 10)
		id := "torn-" + string(rune('a'+i))
		if err := sl.LogEvents(id, tr, noSend); err != nil {
			t.Fatal(err)
		}
		if err := sl.LogSeal(id, noSend); err != nil {
			t.Fatal(err)
		}
		sealed = append(sealed, tr)
	}
	if err := sl.WriteSegment(sealed[:5]); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the segment: chop into its trailer. (Cutting only the trailing
	// stats block would NOT be a tear — stats are advisory.)
	segPath := filepath.Join(dir, "shard-000", segmentName(0, 5))
	img, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(segPath, int64(segmentCoreLen(img)-7)); err != nil {
		t.Fatal(err)
	}
	st2 := openStore(t, dir, nil)
	defer st2.Close()
	rec := st2.Recovered().Shards[0]
	sequencesEqual(t, "recovered past torn segment", rec.Sequences, sealed)
	if _, err := os.Stat(segPath); !os.IsNotExist(err) {
		t.Fatalf("torn segment not discarded (err %v)", err)
	}
}

// TestShardCountIsFixed: reopening with a different shard count must fail —
// the trace partitioning is baked into the files.
func TestShardCountIsFixed(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, func(o *Options) { o.Shards = 3 })
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir, Shards: 5}); err == nil {
		t.Fatal("shard count change accepted")
	}
	st2, err := Open(Options{Dir: dir}) // 0 = use the manifest
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.NumShards() != 3 {
		t.Fatalf("NumShards %d want 3", st2.NumShards())
	}
}

// TestFlushFailureRejectsAndRollsBack: when the group-commit flush fails,
// the operation must be rejected AND its records rolled back from the
// buffer — a later retry (Close flushes unconditionally) must never deliver
// a record whose producer was told it failed, or recovery would replay an
// unacknowledged operation.
func TestFlushFailureRejectsAndRollsBack(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, nil)
	internEvents(t, st, 4)
	sl := st.Shard(0)
	// Ingest one good trace, flushed to disk.
	if err := sl.LogEvents("good", seqdb.Sequence{0, 1, 2}, noSend); err != nil {
		t.Fatal(err)
	}
	if err := sl.LogSeal("good", noSend); err != nil {
		t.Fatal(err)
	}
	if err := sl.Flush(); err != nil {
		t.Fatal(err)
	}
	// Break the WAL file descriptor, then append a record big enough to
	// trip the size-triggered flush — it must fail and roll back.
	sl.wal.f.Close()
	big := make(seqdb.Sequence, walFlushThreshold)
	sent := false
	if err := sl.LogEvents("doomed", big, func() { sent = true }); err == nil {
		t.Fatal("append over a broken file succeeded")
	}
	if sent {
		t.Fatal("operation was handed to the shard despite the failed flush")
	}
	if len(sl.wal.buf) != 0 {
		t.Fatalf("%d rejected bytes left in the buffer for a later retry", len(sl.wal.buf))
	}
	if _, ok := sl.handles["doomed"]; ok {
		t.Fatal("handle assignment survived the rollback")
	}
	if st.Err() == nil {
		t.Fatal("store did not go sticky-failed")
	}
	if err := sl.LogEvents("after", seqdb.Sequence{0}, noSend); err == nil {
		t.Fatal("append accepted after the store failed")
	}
	_ = st.Close() // errors (fd closed); recovery below is what matters

	st2 := openStore(t, dir, nil)
	defer st2.Close()
	rec := st2.Recovered().Shards[0]
	sequencesEqual(t, "acked prefix", rec.Sequences, []seqdb.Sequence{{0, 1, 2}})
	if len(rec.Open) != 0 {
		t.Fatalf("rejected trace resurrected: %+v", rec.Open)
	}
}

// TestOpenIsExclusive: a second Open of a live store directory must be
// refused — Open canonicalises, so a concurrent opener (core.Recover
// included) would unlink the WAL generation the running store appends to.
func TestOpenIsExclusive(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, nil)
	if _, err := Open(Options{Dir: dir}); err == nil {
		t.Fatal("second Open of a live store succeeded")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDictionaryPersistsAcrossReopen: ids assigned before a restart stay
// stable after it, and fresh interning continues from the next free id.
func TestDictionaryPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, nil)
	a := st.Dict().Intern("alpha")
	b := st.Dict().Intern("beta")
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2 := openStore(t, dir, nil)
	defer st2.Close()
	if st2.Dict().Lookup("alpha") != a || st2.Dict().Lookup("beta") != b {
		t.Fatal("ids moved across reopen")
	}
	if g := st2.Dict().Intern("gamma"); g != b+1 {
		t.Fatalf("fresh intern got id %d want %d", g, b+1)
	}
}
