//go:build !unix

package store

import "os"

// Non-unix platforms get no advisory store lock: concurrent Opens of one
// directory are then the operator's responsibility (the supported CI targets
// are all unix).
func acquireDirLock(dir string) (*os.File, error) { return nil, nil }

func releaseDirLock(f *os.File) {}
