//go:build unix

package store

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// acquireDirLock takes an exclusive advisory flock on dir/LOCK, preventing a
// second process (or a second Open in this one — core.Recover included) from
// recovering a live store: Open canonicalises, so a concurrent opener would
// unlink the WAL generation the running ingester is appending to and every
// subsequently acked operation would be lost at the next restart. The lock
// is held for the store's lifetime and released by Close; the kernel drops
// it automatically when a crashed process dies, so there is no stale-lock
// recovery to implement.
func acquireDirLock(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening lock file: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %s is already open in another process (or another Store in this one): %w", dir, err)
	}
	return f, nil
}

func releaseDirLock(f *os.File) {
	if f != nil {
		_ = syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
		_ = f.Close()
	}
}
