package store

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"specmine/internal/fsim"
)

// Failure model. The store classifies every data-path I/O failure into one of
// two classes (fsim.Transient decides which) and reacts per class instead of
// bricking on the first error:
//
//   - Transient faults (ENOSPC, EINTR-class — conditions that can clear
//     without intervention) get a bounded exponential-backoff retry on the
//     WAL-flush, segment-publish and compaction paths. A fault that outlives
//     its retries fails the one operation that hit it — the producer sees the
//     error, the WAL rollback discards the rejected records — and the store
//     stays Healthy, so ingest resumes the moment the condition clears,
//     without reopening anything.
//
//   - Permanent faults (EIO, a closed descriptor) move the store to
//     DegradedReadOnly: every durable mutation fails fast with an error
//     wrapping ErrDegraded, while snapshots, mining and online checking keep
//     serving from in-memory state — degraded, but not down.
//
//   - Invariant violations (segment coverage contradicting the WAL at
//     rotation) mean the in-memory state can no longer be trusted to match
//     the log; they move the store to Failed, which additionally fails reads.
//
// Cleanup failures — a superseded WAL or a compacted-away segment that cannot
// be removed — never change state: the data they leak is redundant by
// construction, so they are recorded as Health warnings and the store
// continues.

// HealthState is the store's position in the degradation ladder.
type HealthState int32

const (
	// Healthy: all durable paths operating normally.
	Healthy HealthState = iota
	// DegradedReadOnly: a permanent fault stopped durable ingest; reads
	// (snapshots, mining, online checking) still serve from memory.
	DegradedReadOnly
	// Failed: an invariant violation; neither writes nor reads are trustworthy.
	Failed
)

func (s HealthState) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case DegradedReadOnly:
		return "degraded-read-only"
	case Failed:
		return "failed"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// ErrDegraded wraps every error returned by durable mutations after the store
// entered DegradedReadOnly; test with errors.Is.
var ErrDegraded = errors.New("store: degraded read-only")

// ErrFailed wraps every error returned after the store entered Failed.
var ErrFailed = errors.New("store: failed")

// Health is a point-in-time snapshot of the store's failure-model state.
type Health struct {
	// State is the current degradation level.
	State HealthState
	// Err is the error that caused the first state transition; nil while
	// Healthy.
	Err error
	// Cause names the code path of the last state change ("shard 2 WAL
	// flush", "compaction", ...).
	Cause string
	// Retries counts transient-fault retry attempts, successful or not.
	Retries uint64
	// Faults counts transient faults that outlived their retries and were
	// surfaced to a caller while the store stayed Healthy.
	Faults uint64
	// Warnings are non-fatal anomalies — leaked files from failed cleanup,
	// discarded torn WAL generations — capped at a small fixed count.
	Warnings []string
}

// maxWarnings bounds the warning list; one sentinel entry marks the cut.
const maxWarnings = 32

// health is the store-embedded mutable state behind Health snapshots.
type health struct {
	state atomic.Int32
	// sticky is the operative error: nil while Healthy, the ErrDegraded- or
	// ErrFailed-wrapped transition error afterwards. It is an atomic pointer
	// because the healthy-path check sits on every producer commit: a mutex
	// here would re-serialise the goroutines the lock-free commit path exists
	// to keep apart. mu serialises only the (cold) transitions and the
	// warning list.
	sticky  atomic.Pointer[error]
	retries atomic.Uint64
	faults  atomic.Uint64

	mu       sync.Mutex
	firstErr error
	cause    string
	// Warnings are de-duplicated by message: warnOrder keeps first-occurrence
	// order, warnCount the repeat count per message (concurrent shards hitting
	// the same failing path produce one entry, not maxWarnings copies of it),
	// and warnOverflow records that distinct messages past the cap were
	// dropped.
	warnOrder    []string
	warnCount    map[string]int
	warnOverflow bool
}

// Health returns a snapshot of the store's failure-model state: degradation
// level, first error, retry/fault counters and accumulated warnings.
func (st *Store) Health() Health {
	st.health.mu.Lock()
	defer st.health.mu.Unlock()
	warnings := make([]string, 0, len(st.health.warnOrder)+1)
	for _, msg := range st.health.warnOrder {
		if n := st.health.warnCount[msg]; n > 1 {
			warnings = append(warnings, fmt.Sprintf("%s (x%d)", msg, n))
		} else {
			warnings = append(warnings, msg)
		}
	}
	if st.health.warnOverflow {
		warnings = append(warnings, "(further warnings suppressed)")
	}
	return Health{
		State:    HealthState(st.health.state.Load()),
		Err:      st.health.firstErr,
		Cause:    st.health.cause,
		Retries:  st.health.retries.Load(),
		Faults:   st.health.faults.Load(),
		Warnings: warnings,
	}
}

// Err returns the error gating durable mutations: nil while the store is
// Healthy, an error wrapping ErrDegraded or ErrFailed once it is not. Every
// commit and barrier path checks it first, so after a permanent fault ingest
// fails fast instead of queueing behind doomed I/O.
func (st *Store) Err() error {
	if p := st.health.sticky.Load(); p != nil {
		return *p
	}
	return nil
}

// ReadErr returns the error gating reads: nil unless the store is Failed.
// DegradedReadOnly stores serve snapshots and mining from in-memory state, so
// only an invariant violation makes reads untrustworthy.
func (st *Store) ReadErr() error {
	if HealthState(st.health.state.Load()) == Failed {
		if p := st.health.sticky.Load(); p != nil {
			return *p
		}
	}
	return nil
}

// degrade moves a Healthy store to DegradedReadOnly and returns the operative
// error. Later permanent faults keep the first transition's error and cause.
func (st *Store) degrade(err error, cause string) error {
	st.health.mu.Lock()
	defer st.health.mu.Unlock()
	if HealthState(st.health.state.Load()) != Healthy {
		if p := st.health.sticky.Load(); p != nil {
			return *p
		}
		return err
	}
	wrapped := fmt.Errorf("%w (%s): %w", ErrDegraded, cause, err)
	st.health.firstErr = err
	st.health.cause = cause
	st.health.sticky.Store(&wrapped)
	st.health.state.Store(int32(DegradedReadOnly))
	st.met.degradations.Inc()
	st.met.healthState.Set(int64(DegradedReadOnly))
	st.met.ops.RecordDur("store.degrade: "+cause, time.Now(), 0, err)
	return wrapped
}

// fail moves the store to Failed — reserved for invariant violations, where
// the in-memory state can no longer be trusted to match the log.
func (st *Store) fail(err error) error {
	st.health.mu.Lock()
	defer st.health.mu.Unlock()
	if HealthState(st.health.state.Load()) == Failed {
		if p := st.health.sticky.Load(); p != nil {
			return *p
		}
	}
	wrapped := fmt.Errorf("%w: %w", ErrFailed, err)
	if st.health.firstErr == nil {
		st.health.firstErr = err
	}
	st.health.cause = "invariant violation"
	st.health.sticky.Store(&wrapped)
	st.health.state.Store(int32(Failed))
	st.met.degradations.Inc()
	st.met.healthState.Set(int64(Failed))
	st.met.ops.RecordDur("store.fail", time.Now(), 0, err)
	return wrapped
}

// ioError is the end of every durable I/O error path: transient faults are
// counted and surfaced to the caller with the store left Healthy (the
// operation failed; the store did not), permanent faults degrade the store.
// The caller has already exhausted retryTransient where retrying is safe.
func (st *Store) ioError(err error, cause string) error {
	if fsim.Transient(err) {
		st.health.faults.Add(1)
		st.met.faults.Inc()
		return err
	}
	return st.degrade(err, cause)
}

// warn records a non-fatal anomaly in Health. Repeats of a message accumulate
// a count on its first entry rather than new entries, and the distinct-message
// list is bounded at maxWarnings with a sentinel marking the suppression.
func (st *Store) warn(format string, args ...any) {
	st.met.warnings.Inc()
	msg := fmt.Sprintf(format, args...)
	st.health.mu.Lock()
	defer st.health.mu.Unlock()
	if st.health.warnCount == nil {
		st.health.warnCount = make(map[string]int)
	}
	if _, seen := st.health.warnCount[msg]; seen {
		st.health.warnCount[msg]++
		return
	}
	if len(st.health.warnOrder) < maxWarnings {
		st.health.warnOrder = append(st.health.warnOrder, msg)
		st.health.warnCount[msg] = 1
		return
	}
	st.health.warnOverflow = true
}

// retryTransient runs fn, retrying transient failures up to the configured
// attempt budget with exponential backoff. It returns nil on success, the
// first non-transient error immediately, or the last transient error once the
// budget is spent. Callers route the returned error through ioError.
func (st *Store) retryTransient(fn func() error) error {
	err := fn()
	if err == nil || !fsim.Transient(err) {
		return err
	}
	backoff := st.opts.RetryBackoff
	for range st.opts.RetryAttempts {
		time.Sleep(backoff)
		backoff *= 2
		st.health.retries.Add(1)
		st.met.retries.Inc()
		if err = fn(); err == nil || !fsim.Transient(err) {
			return err
		}
	}
	return err
}
