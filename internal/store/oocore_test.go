package store

import (
	"math/rand"
	"os"
	"testing"

	"specmine/internal/seqdb"
)

// TestOutOfCoreOpen: opening with Options.OutOfCore materialises no sealed
// traces, still canonicalises the WAL tail with correct seal ordinals, keeps
// every trace reachable through the segment catalog, and refuses ingesters.
// A subsequent eager open of the same directory must recover the identical
// database, proving the lazy open left the on-disk state exactly as an eager
// open would have.
func TestOutOfCoreOpen(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, nil)
	internEvents(t, st, 15)
	sl := st.Shard(0)
	rng := rand.New(rand.NewSource(21))

	var sealed []seqdb.Sequence
	for i := 0; i < 12; i++ {
		tr := randomTrace(rng, 15)
		id := "t-" + string(rune('a'+i))
		if err := sl.LogEvents(id, tr, noSend); err != nil {
			t.Fatal(err)
		}
		if err := sl.LogSeal(id, noSend); err != nil {
			t.Fatal(err)
		}
		sealed = append(sealed, tr)
		if i == 4 {
			// First five traces into a segment; the other seven stay in the
			// WAL, so the lazy open must canonicalise a tail it never
			// decoded the chain for.
			if err := sl.WriteSegment(sealed); err != nil {
				t.Fatal(err)
			}
		}
	}
	openTr := randomTrace(rng, 15)
	if err := sl.LogEvents("still-open", openTr, noSend); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	lazy := openStore(t, dir, func(o *Options) { o.OutOfCore = true })
	if n := lazy.Recovered().NumSealed(); n != 0 {
		t.Fatalf("out-of-core open materialised %d sealed traces", n)
	}
	rec := lazy.Recovered().Shards[0]
	if len(rec.Open) != 1 || rec.Open[0].ID != "still-open" {
		t.Fatalf("open traces not recovered out-of-core: %+v", rec.Open)
	}
	sequencesEqual(t, "open trace", []seqdb.Sequence{rec.Open[0].Events}, []seqdb.Sequence{openTr})
	if err := lazy.AttachIngester(); err == nil {
		t.Fatal("out-of-core handle accepted an ingester")
	}

	// The catalog must cover every sealed trace — including the WAL tail the
	// lazy open just rolled into a segment with computed ordinals.
	var got []seqdb.Sequence
	covered := 0
	for _, meta := range lazy.Segments() {
		if meta.From != covered {
			t.Fatalf("catalog gap: segment starts at %d, covered %d", meta.From, covered)
		}
		seqs, _, err := lazy.LoadSegment(meta)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, seqs...)
		covered = meta.To
	}
	sequencesEqual(t, "lazy catalog sweep", got, sealed)
	if err := lazy.Close(); err != nil {
		t.Fatal(err)
	}

	eager := openStore(t, dir, nil)
	defer eager.Close()
	sequencesEqual(t, "eager reopen after lazy", eager.Recovered().Shards[0].Sequences, sealed)
	if len(eager.Recovered().Shards[0].Open) != 1 {
		t.Fatal("open trace lost across the lazy open")
	}
}

// TestOutOfCoreOpenDetectsCorruption: skipping the body decode must not skip
// integrity checking — a flipped byte in a mid-chain segment's core leaves a
// coverage gap that fails the out-of-core open exactly like the eager one.
func TestOutOfCoreOpenDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, nil)
	internEvents(t, st, 10)
	sl := st.Shard(0)
	rng := rand.New(rand.NewSource(22))
	var sealed []seqdb.Sequence
	for i := 0; i < 10; i++ {
		tr := randomTrace(rng, 10)
		id := "t-" + string(rune('a'+i))
		if err := sl.LogEvents(id, tr, noSend); err != nil {
			t.Fatal(err)
		}
		if err := sl.LogSeal(id, noSend); err != nil {
			t.Fatal(err)
		}
		sealed = append(sealed, tr)
		if i == 4 || i == 9 {
			if err := sl.WriteSegment(sealed); err != nil {
				t.Fatal(err)
			}
		}
	}
	segs := st.Segments()
	if len(segs) != 2 {
		t.Fatalf("fixture wrote %d segments want 2", len(segs))
	}
	first := segs[0].Path
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	buf, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	buf[25] ^= 0x40 // just past magic+header: in the body, caught by its CRC
	if err := os.WriteFile(first, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir, Shards: 1, OutOfCore: true}); err == nil {
		t.Fatal("out-of-core open accepted a corrupt mid-chain segment")
	}
}
