package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"path/filepath"

	"specmine/internal/fsim"
	"specmine/internal/seqdb"
)

// Sealed segment files. A segment is the immutable, compacted resting place
// of a run of sealed traces from one shard:
//
//	magic [8]byte "SPMSEG1\n"
//	body: one sequence block per trace (seqdb.AppendSequenceBlock — varint
//	      delta event ids with run-length compression), back to back
//	footer:
//	  uvarint format version (1)
//	  uvarint shard
//	  uvarint fromOrdinal     — shard-local seal ordinal of the first trace
//	  uvarint numTraces
//	  numTraces x uvarint block length — prefix sums give per-trace offsets
//	trailer [20]byte, fixed width so it can be found from the end:
//	  uint32 LE body length | uint32 LE footer length |
//	  uint32 LE CRC-32(body) | uint32 LE CRC-32(footer) | uint32 LE tail magic
//
// The footer's offset table is what lets a reader open a segment without a
// full decode: it can validate the trailer + footer alone, then decode a
// single trace (or fan traces out to parallel decoders) by block range. The
// body and footer carry independent checksums so that lazy readers get the
// same corruption guarantees as full ones.
//
// Segments are written once via temp-file + rename and never modified;
// compaction merges adjacent segments by concatenating their bodies and
// rebuilding the footer — blocks are self-contained, so merging never
// re-encodes a trace.

var segMagic = [8]byte{'S', 'P', 'M', 'S', 'E', 'G', '1', '\n'}

const (
	segFormatVersion = 1
	segTrailerLen    = 20
	segTailMagic     = 0x53504753 // "SPGS"
)

// segmentInfo is the in-memory ledger entry for one live segment file.
// from/to are shard-local seal ordinals, to exclusive.
type segmentInfo struct {
	from, to int
	path     string
	size     int64
}

func segmentName(from, to int) string {
	return fmt.Sprintf("seg-%09d-%09d.seg", from, to)
}

func parseSegmentName(name string) (from, to int, ok bool) {
	var f, t int
	if n, err := fmt.Sscanf(name, "seg-%d-%d.seg", &f, &t); n != 2 || err != nil {
		return 0, 0, false
	}
	return f, t, f >= 0 && t > f
}

// encodeSegment renders the full segment file image for the given traces.
func encodeSegment(seqs []seqdb.Sequence, shard, from int) []byte {
	buf := append([]byte(nil), segMagic[:]...)
	bodyStart := len(buf)
	blockLens := make([]int, len(seqs))
	for i, s := range seqs {
		before := len(buf)
		buf = seqdb.AppendSequenceBlock(buf, s)
		blockLens[i] = len(buf) - before
	}
	bodyLen := len(buf) - bodyStart

	footerStart := len(buf)
	buf = binary.AppendUvarint(buf, segFormatVersion)
	buf = binary.AppendUvarint(buf, uint64(shard))
	buf = binary.AppendUvarint(buf, uint64(from))
	buf = binary.AppendUvarint(buf, uint64(len(seqs)))
	for _, n := range blockLens {
		buf = binary.AppendUvarint(buf, uint64(n))
	}
	footerLen := len(buf) - footerStart

	buf = binary.LittleEndian.AppendUint32(buf, uint32(bodyLen))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(footerLen))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[bodyStart:bodyStart+bodyLen]))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[footerStart:footerStart+footerLen]))
	return binary.LittleEndian.AppendUint32(buf, segTailMagic)
}

// segmentView is a parsed (but not yet decoded) segment: validated checksums,
// header fields and the per-trace block spans over body.
type segmentView struct {
	shard     int
	from      int
	body      []byte
	blockLens []int
}

// parseSegment validates data as a segment file and returns its view.
func parseSegment(data []byte) (*segmentView, error) {
	if len(data) < len(segMagic)+segTrailerLen || string(data[:len(segMagic)]) != string(segMagic[:]) {
		return nil, fmt.Errorf("store: not a segment file")
	}
	tr := data[len(data)-segTrailerLen:]
	bodyLen := int(binary.LittleEndian.Uint32(tr[0:]))
	footerLen := int(binary.LittleEndian.Uint32(tr[4:]))
	crcBody := binary.LittleEndian.Uint32(tr[8:])
	crcFooter := binary.LittleEndian.Uint32(tr[12:])
	if binary.LittleEndian.Uint32(tr[16:]) != segTailMagic {
		return nil, fmt.Errorf("store: segment trailer magic mismatch")
	}
	if len(segMagic)+bodyLen+footerLen+segTrailerLen != len(data) {
		return nil, fmt.Errorf("store: segment length %d does not match body %d + footer %d", len(data), bodyLen, footerLen)
	}
	body := data[len(segMagic) : len(segMagic)+bodyLen]
	footer := data[len(segMagic)+bodyLen : len(segMagic)+bodyLen+footerLen]
	if crc32.ChecksumIEEE(body) != crcBody {
		return nil, fmt.Errorf("store: segment body checksum mismatch")
	}
	if crc32.ChecksumIEEE(footer) != crcFooter {
		return nil, fmt.Errorf("store: segment footer checksum mismatch")
	}

	readUvarint := func(off int) (uint64, int, error) {
		v, n := binary.Uvarint(footer[off:])
		if n <= 0 {
			return 0, 0, fmt.Errorf("store: segment footer truncated at byte %d", off)
		}
		return v, off + n, nil
	}
	ver, off, err := readUvarint(0)
	if err != nil {
		return nil, err
	}
	if ver != segFormatVersion {
		return nil, fmt.Errorf("store: unsupported segment format version %d", ver)
	}
	shard, off, err := readUvarint(off)
	if err != nil {
		return nil, err
	}
	from, off, err := readUvarint(off)
	if err != nil {
		return nil, err
	}
	numTraces, off, err := readUvarint(off)
	if err != nil {
		return nil, err
	}
	if numTraces > uint64(footerLen) { // each block length costs >= 1 footer byte
		return nil, fmt.Errorf("store: segment claims %d traces in a %d-byte footer", numTraces, footerLen)
	}
	v := &segmentView{shard: int(shard), from: int(from), body: body, blockLens: make([]int, numTraces)}
	total := 0
	for i := range v.blockLens {
		var bl uint64
		bl, off, err = readUvarint(off)
		if err != nil {
			return nil, err
		}
		v.blockLens[i] = int(bl)
		total += int(bl)
	}
	if total != bodyLen {
		return nil, fmt.Errorf("store: segment block lengths sum to %d, body is %d", total, bodyLen)
	}
	return v, nil
}

// numTraces returns the number of traces the segment holds.
func (v *segmentView) numTraces() int { return len(v.blockLens) }

// trace decodes trace i (0-based within the segment) using the footer's
// offset table — no other block is touched.
func (v *segmentView) trace(i int) (seqdb.Sequence, error) {
	off := 0
	for k := 0; k < i; k++ {
		off += v.blockLens[k]
	}
	s, n, err := seqdb.DecodeSequenceBlock(v.body[off : off+v.blockLens[i]])
	if err != nil {
		return nil, fmt.Errorf("store: segment trace %d: %w", i, err)
	}
	if n != v.blockLens[i] {
		return nil, fmt.Errorf("store: segment trace %d: block is %d bytes, decoded %d", i, v.blockLens[i], n)
	}
	return s, nil
}

// decodeAll decodes every trace in order.
func (v *segmentView) decodeAll() ([]seqdb.Sequence, error) {
	out := make([]seqdb.Sequence, 0, len(v.blockLens))
	off := 0
	for i, bl := range v.blockLens {
		s, n, err := seqdb.DecodeSequenceBlock(v.body[off : off+bl])
		if err != nil {
			return nil, fmt.Errorf("store: segment trace %d: %w", i, err)
		}
		if n != bl {
			return nil, fmt.Errorf("store: segment trace %d: block is %d bytes, decoded %d", i, bl, n)
		}
		out = append(out, s)
		off += bl
	}
	return out, nil
}

// mergeSegments concatenates adjacent segment images into one: bodies are
// spliced verbatim (blocks are self-contained) and the footer is rebuilt.
// The parts must belong to one shard and cover contiguous ordinal ranges in
// order.
func mergeSegments(parts [][]byte) ([]byte, error) {
	if len(parts) < 2 {
		return nil, fmt.Errorf("store: merge needs at least two segments")
	}
	views := make([]*segmentView, len(parts))
	for i, p := range parts {
		v, err := parseSegment(p)
		if err != nil {
			return nil, fmt.Errorf("store: merge part %d: %w", i, err)
		}
		views[i] = v
	}
	next := views[0].from + views[0].numTraces()
	for i := 1; i < len(views); i++ {
		if views[i].shard != views[0].shard {
			return nil, fmt.Errorf("store: merging segments of shards %d and %d", views[0].shard, views[i].shard)
		}
		if views[i].from != next {
			return nil, fmt.Errorf("store: merging non-adjacent segments (ordinal %d after %d)", views[i].from, next)
		}
		next += views[i].numTraces()
	}

	buf := append([]byte(nil), segMagic[:]...)
	bodyStart := len(buf)
	for _, v := range views {
		buf = append(buf, v.body...)
	}
	bodyLen := len(buf) - bodyStart
	footerStart := len(buf)
	buf = binary.AppendUvarint(buf, segFormatVersion)
	buf = binary.AppendUvarint(buf, uint64(views[0].shard))
	buf = binary.AppendUvarint(buf, uint64(views[0].from))
	buf = binary.AppendUvarint(buf, uint64(next-views[0].from))
	for _, v := range views {
		for _, bl := range v.blockLens {
			buf = binary.AppendUvarint(buf, uint64(bl))
		}
	}
	footerLen := len(buf) - footerStart
	buf = binary.LittleEndian.AppendUint32(buf, uint32(bodyLen))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(footerLen))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[bodyStart:bodyStart+bodyLen]))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[footerStart:footerStart+footerLen]))
	return binary.LittleEndian.AppendUint32(buf, segTailMagic), nil
}

// writeSegmentFile publishes a segment image at dir/segmentName(from,to).
// The write is direct, not temp-file + rename: a crash can leave a torn
// file, but recovery detects it (checksummed trailer) and, because a
// segment's WAL records are flushed before the segment is written and WAL
// generations are only retired after a completed rotation, a torn segment at
// the chain tail is always still covered by the surviving WAL — recovery
// discards the file and replays the log instead. Saving the rename matters:
// segment publishes sit on the ingestion barrier path.
func writeSegmentFile(fs fsim.FS, dir string, from, to int, data []byte, sync bool) (segmentInfo, error) {
	path := filepath.Join(dir, segmentName(from, to))
	if err := fs.WriteFile(path, data, 0o644); err != nil {
		return segmentInfo{}, fmt.Errorf("store: writing %s: %w", path, err)
	}
	if sync {
		if err := syncFile(fs, path); err != nil {
			return segmentInfo{}, err
		}
		if err := syncDir(fs, path); err != nil {
			return segmentInfo{}, err
		}
	}
	return segmentInfo{from: from, to: to, path: path, size: int64(len(data))}, nil
}
