package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"path/filepath"

	"specmine/internal/fsim"
	"specmine/internal/seqdb"
)

// Sealed segment files. A segment is the immutable, compacted resting place
// of a run of sealed traces from one shard. The current (v2) layout:
//
//	magic [8]byte "SPMSEG2\n"
//	header [12]byte, fixed width so the core can be located from the front:
//	  uint32 LE body length | uint32 LE footer length | uint32 LE stats length
//	body: one sequence block per trace (seqdb.AppendSequenceBlock — varint
//	      delta event ids with run-length compression), back to back
//	footer:
//	  uvarint format version (2)
//	  uvarint shard
//	  uvarint fromOrdinal     — shard-local seal ordinal of the first trace
//	  uvarint numTraces
//	  numTraces x uvarint block length — prefix sums give per-trace offsets
//	trailer [20]byte:
//	  uint32 LE body length | uint32 LE footer length |
//	  uint32 LE CRC-32(body) | uint32 LE CRC-32(footer) | uint32 LE tail magic
//	stats block [stats length bytes]: per-event statistics, CRC'd
//	  independently (see stats.go)
//
// Everything up to and including the trailer is the segment core; its layout
// and integrity guarantees are unchanged from v1 apart from the magic, the
// fixed header, and the footer version number. The stats block rides BEHIND
// the trailer precisely so it is advisory: the core is parsed from front
// (header) and cross-checked against the trailer, so damage anywhere at or
// after the trailer's end — a torn stats tail, a flipped stats byte, a bogus
// header stats length — leaves the segment fully openable with stats absent,
// to be recomputed lazily from the body. Damage inside the core is detected
// exactly as before and fails the open.
//
// v1 files ("SPMSEG1\n": no header, no stats, trailer at end of file) remain
// readable forever; parseSegment dispatches on the magic. The golden files in
// testdata freeze both generations.
//
// Segments are written once and never modified; compaction merges adjacent
// segments by concatenating their bodies, rebuilding the footer, and merging
// the stats blocks (summed counts, OR'd bloom filters) — blocks are
// self-contained, so merging never re-encodes a trace.

var (
	segMagicV1 = [8]byte{'S', 'P', 'M', 'S', 'E', 'G', '1', '\n'}
	segMagic   = [8]byte{'S', 'P', 'M', 'S', 'E', 'G', '2', '\n'}
)

const (
	segFormatV1      = 1
	segFormatVersion = 2
	segHeaderLen     = 12
	segTrailerLen    = 20
	segTailMagic     = 0x53504753 // "SPGS"
)

// segmentInfo is the in-memory ledger entry for one live segment file.
// from/to are shard-local seal ordinals, to exclusive.
type segmentInfo struct {
	from, to int
	path     string
	size     int64
}

func segmentName(from, to int) string {
	return fmt.Sprintf("seg-%09d-%09d.seg", from, to)
}

func parseSegmentName(name string) (from, to int, ok bool) {
	var f, t int
	if n, err := fmt.Sscanf(name, "seg-%d-%d.seg", &f, &t); n != 2 || err != nil {
		return 0, 0, false
	}
	return f, t, f >= 0 && t > f
}

// appendSegmentCore renders magic + header + body + footer + trailer for the
// given pre-encoded blocks, shared by encodeSegment and mergeSegments.
func appendSegmentCore(bodies [][]byte, blockLens []int, shard, from int) []byte {
	buf := append([]byte(nil), segMagic[:]...)
	headerStart := len(buf)
	buf = append(buf, make([]byte, segHeaderLen)...)
	bodyStart := len(buf)
	for _, b := range bodies {
		buf = append(buf, b...)
	}
	bodyLen := len(buf) - bodyStart

	footerStart := len(buf)
	buf = binary.AppendUvarint(buf, segFormatVersion)
	buf = binary.AppendUvarint(buf, uint64(shard))
	buf = binary.AppendUvarint(buf, uint64(from))
	buf = binary.AppendUvarint(buf, uint64(len(blockLens)))
	for _, n := range blockLens {
		buf = binary.AppendUvarint(buf, uint64(n))
	}
	footerLen := len(buf) - footerStart

	binary.LittleEndian.PutUint32(buf[headerStart:], uint32(bodyLen))
	binary.LittleEndian.PutUint32(buf[headerStart+4:], uint32(footerLen))
	// Stats length is patched in by the caller once the stats block is known.

	buf = binary.LittleEndian.AppendUint32(buf, uint32(bodyLen))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(footerLen))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[bodyStart:bodyStart+bodyLen]))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[footerStart:footerStart+footerLen]))
	return binary.LittleEndian.AppendUint32(buf, segTailMagic)
}

// appendStatsBlock appends the encoded stats block after the core and patches
// the header's stats length field.
func appendStatsBlock(buf []byte, stats *SegmentStats) []byte {
	statsStart := len(buf)
	buf = appendSegmentStats(buf, stats)
	binary.LittleEndian.PutUint32(buf[len(segMagic)+8:], uint32(len(buf)-statsStart))
	return buf
}

// encodeSegment renders the full segment file image for the given traces.
func encodeSegment(seqs []seqdb.Sequence, shard, from int) []byte {
	var body []byte
	blockLens := make([]int, len(seqs))
	for i, s := range seqs {
		before := len(body)
		body = seqdb.AppendSequenceBlock(body, s)
		blockLens[i] = len(body) - before
	}
	buf := appendSegmentCore([][]byte{body}, blockLens, shard, from)
	return appendStatsBlock(buf, computeSegmentStats(seqs))
}

// segmentView is a parsed (but not yet decoded) segment: validated checksums,
// header fields and the per-trace block spans over body. stats is nil when
// the file predates the stats block or the block arrived damaged — the
// segment itself is still fully usable.
type segmentView struct {
	shard     int
	from      int
	body      []byte
	blockLens []int
	stats     *SegmentStats
}

// parseFooter validates and decodes the uvarint footer shared by both format
// generations.
func parseFooter(footer []byte, bodyLen int, wantVersion uint64) (shard, from int, blockLens []int, err error) {
	off := 0
	next := func() (uint64, error) {
		v, n := binary.Uvarint(footer[off:])
		if n <= 0 {
			return 0, fmt.Errorf("store: segment footer truncated at byte %d", off)
		}
		off += n
		return v, nil
	}
	ver, err := next()
	if err != nil {
		return 0, 0, nil, err
	}
	if ver != wantVersion {
		return 0, 0, nil, fmt.Errorf("store: unsupported segment format version %d", ver)
	}
	sh, err := next()
	if err != nil {
		return 0, 0, nil, err
	}
	fr, err := next()
	if err != nil {
		return 0, 0, nil, err
	}
	numTraces, err := next()
	if err != nil {
		return 0, 0, nil, err
	}
	if numTraces > uint64(len(footer)) { // each block length costs >= 1 footer byte
		return 0, 0, nil, fmt.Errorf("store: segment claims %d traces in a %d-byte footer", numTraces, len(footer))
	}
	blockLens = make([]int, numTraces)
	total := 0
	for i := range blockLens {
		bl, err := next()
		if err != nil {
			return 0, 0, nil, err
		}
		blockLens[i] = int(bl)
		total += int(bl)
	}
	if total != bodyLen {
		return 0, 0, nil, fmt.Errorf("store: segment block lengths sum to %d, body is %d", total, bodyLen)
	}
	return int(sh), int(fr), blockLens, nil
}

// checkTrailer validates the 20-byte trailer against the body and footer it
// covers.
func checkTrailer(tr, body, footer []byte) error {
	if binary.LittleEndian.Uint32(tr[16:]) != segTailMagic {
		return fmt.Errorf("store: segment trailer magic mismatch")
	}
	if int(binary.LittleEndian.Uint32(tr[0:])) != len(body) || int(binary.LittleEndian.Uint32(tr[4:])) != len(footer) {
		return fmt.Errorf("store: segment trailer lengths disagree with header")
	}
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tr[8:]) {
		return fmt.Errorf("store: segment body checksum mismatch")
	}
	if crc32.ChecksumIEEE(footer) != binary.LittleEndian.Uint32(tr[12:]) {
		return fmt.Errorf("store: segment footer checksum mismatch")
	}
	return nil
}

// parseSegment validates data as a segment file (either generation) and
// returns its view.
func parseSegment(data []byte) (*segmentView, error) {
	if len(data) >= len(segMagicV1) && string(data[:len(segMagicV1)]) == string(segMagicV1[:]) {
		return parseSegmentV1(data)
	}
	if len(data) < len(segMagic)+segHeaderLen+segTrailerLen || string(data[:len(segMagic)]) != string(segMagic[:]) {
		return nil, fmt.Errorf("store: not a segment file")
	}
	bodyLen := int(binary.LittleEndian.Uint32(data[len(segMagic):]))
	footerLen := int(binary.LittleEndian.Uint32(data[len(segMagic)+4:]))
	statsLen := int(binary.LittleEndian.Uint32(data[len(segMagic)+8:]))
	bodyStart := len(segMagic) + segHeaderLen
	coreLen := bodyStart + bodyLen + footerLen + segTrailerLen
	if bodyLen < 0 || footerLen < 0 || coreLen > len(data) {
		return nil, fmt.Errorf("store: segment length %d does not match body %d + footer %d", len(data), bodyLen, footerLen)
	}
	body := data[bodyStart : bodyStart+bodyLen]
	footer := data[bodyStart+bodyLen : bodyStart+bodyLen+footerLen]
	if err := checkTrailer(data[coreLen-segTrailerLen:coreLen], body, footer); err != nil {
		return nil, err
	}
	shard, from, blockLens, err := parseFooter(footer, bodyLen, segFormatVersion)
	if err != nil {
		return nil, err
	}
	v := &segmentView{shard: shard, from: from, body: body, blockLens: blockLens}
	// Everything past the core is the advisory stats block: parse it when
	// intact, silently drop it otherwise (lazy backfill recomputes it).
	if statsLen > 0 && len(data) == coreLen+statsLen {
		if s, err := parseSegmentStats(data[coreLen:]); err == nil {
			v.stats = s
		}
	}
	return v, nil
}

// parseSegmentV1 handles the original generation: no fixed header, no stats,
// trailer at the very end of the file.
func parseSegmentV1(data []byte) (*segmentView, error) {
	if len(data) < len(segMagicV1)+segTrailerLen {
		return nil, fmt.Errorf("store: not a segment file")
	}
	tr := data[len(data)-segTrailerLen:]
	bodyLen := int(binary.LittleEndian.Uint32(tr[0:]))
	footerLen := int(binary.LittleEndian.Uint32(tr[4:]))
	if len(segMagicV1)+bodyLen+footerLen+segTrailerLen != len(data) {
		return nil, fmt.Errorf("store: segment length %d does not match body %d + footer %d", len(data), bodyLen, footerLen)
	}
	body := data[len(segMagicV1) : len(segMagicV1)+bodyLen]
	footer := data[len(segMagicV1)+bodyLen : len(segMagicV1)+bodyLen+footerLen]
	if err := checkTrailer(tr, body, footer); err != nil {
		return nil, err
	}
	shard, from, blockLens, err := parseFooter(footer, bodyLen, segFormatV1)
	if err != nil {
		return nil, err
	}
	return &segmentView{shard: shard, from: from, body: body, blockLens: blockLens}, nil
}

// numTraces returns the number of traces the segment holds.
func (v *segmentView) numTraces() int { return len(v.blockLens) }

// trace decodes trace i (0-based within the segment) using the footer's
// offset table — no other block is touched.
func (v *segmentView) trace(i int) (seqdb.Sequence, error) {
	off := 0
	for k := 0; k < i; k++ {
		off += v.blockLens[k]
	}
	s, n, err := seqdb.DecodeSequenceBlock(v.body[off : off+v.blockLens[i]])
	if err != nil {
		return nil, fmt.Errorf("store: segment trace %d: %w", i, err)
	}
	if n != v.blockLens[i] {
		return nil, fmt.Errorf("store: segment trace %d: block is %d bytes, decoded %d", i, v.blockLens[i], n)
	}
	return s, nil
}

// decodeAll decodes every trace in order.
func (v *segmentView) decodeAll() ([]seqdb.Sequence, error) {
	out := make([]seqdb.Sequence, 0, len(v.blockLens))
	off := 0
	for i, bl := range v.blockLens {
		s, n, err := seqdb.DecodeSequenceBlock(v.body[off : off+bl])
		if err != nil {
			return nil, fmt.Errorf("store: segment trace %d: %w", i, err)
		}
		if n != bl {
			return nil, fmt.Errorf("store: segment trace %d: block is %d bytes, decoded %d", i, bl, n)
		}
		out = append(out, s)
		off += bl
	}
	return out, nil
}

// ensureStats returns the segment's stats block, recomputing it from the
// decoded body when the file predates stats or the block arrived damaged.
func (v *segmentView) ensureStats() (*SegmentStats, error) {
	if v.stats != nil {
		return v.stats, nil
	}
	seqs, err := v.decodeAll()
	if err != nil {
		return nil, err
	}
	v.stats = computeSegmentStats(seqs)
	return v.stats, nil
}

// mergeSegments concatenates adjacent segment images into one: bodies are
// spliced verbatim (blocks are self-contained), the footer is rebuilt, and
// the stats blocks are merged — summed counts, OR'd bloom filters — with
// stats-less parts (v1 files, damaged blocks) backfilled from their bodies.
// The parts must belong to one shard and cover contiguous ordinal ranges in
// order. The output is always current-generation, so compaction doubles as
// format migration.
func mergeSegments(parts [][]byte) ([]byte, error) {
	if len(parts) < 2 {
		return nil, fmt.Errorf("store: merge needs at least two segments")
	}
	views := make([]*segmentView, len(parts))
	for i, p := range parts {
		v, err := parseSegment(p)
		if err != nil {
			return nil, fmt.Errorf("store: merge part %d: %w", i, err)
		}
		views[i] = v
	}
	next := views[0].from + views[0].numTraces()
	for i := 1; i < len(views); i++ {
		if views[i].shard != views[0].shard {
			return nil, fmt.Errorf("store: merging segments of shards %d and %d", views[0].shard, views[i].shard)
		}
		if views[i].from != next {
			return nil, fmt.Errorf("store: merging non-adjacent segments (ordinal %d after %d)", views[i].from, next)
		}
		next += views[i].numTraces()
	}

	bodies := make([][]byte, len(views))
	var blockLens []int
	stats := make([]*SegmentStats, len(views))
	for i, v := range views {
		bodies[i] = v.body
		blockLens = append(blockLens, v.blockLens...)
		s, err := v.ensureStats()
		if err != nil {
			return nil, fmt.Errorf("store: merge part %d stats: %w", i, err)
		}
		stats[i] = s
	}
	buf := appendSegmentCore(bodies, blockLens, views[0].shard, views[0].from)
	return appendStatsBlock(buf, mergeSegmentStats(stats)), nil
}

// writeSegmentFile publishes a segment image at dir/segmentName(from,to).
// The write is direct, not temp-file + rename: a crash can leave a torn
// file, but recovery detects it (checksummed trailer) and, because a
// segment's WAL records are flushed before the segment is written and WAL
// generations are only retired after a completed rotation, a torn segment at
// the chain tail is always still covered by the surviving WAL — recovery
// discards the file and replays the log instead. (A tear confined to the
// trailing stats block is not even that: the core validates and the segment
// is used as-is with stats recomputed.) Saving the rename matters: segment
// publishes sit on the ingestion barrier path.
func writeSegmentFile(fs fsim.FS, dir string, from, to int, data []byte, sync bool) (segmentInfo, error) {
	path := filepath.Join(dir, segmentName(from, to))
	if err := fs.WriteFile(path, data, 0o644); err != nil {
		return segmentInfo{}, fmt.Errorf("store: writing %s: %w", path, err)
	}
	if sync {
		if err := syncFile(fs, path); err != nil {
			return segmentInfo{}, err
		}
		if err := syncDir(fs, path); err != nil {
			return segmentInfo{}, err
		}
	}
	return segmentInfo{from: from, to: to, path: path, size: int64(len(data))}, nil
}
