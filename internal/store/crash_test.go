package store

import (
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"specmine/internal/seqdb"
)

// Crash-recovery fuzz (the PR's first satellite): ingest a randomized
// workload through the durable log, then truncate the WAL at every byte
// offset — including mid-record — reopen, and assert that the recovered
// Database and PositionIndex equal a fresh build over the surviving record
// prefix. No partial record may ever surface.

// ledgerRec mirrors, one-to-one, the WAL records the driver's operations
// emit; it is the test's independent model of record semantics.
type ledgerRec struct {
	kind   byte // recOpen, recEvents, recSeal
	id     string
	events []seqdb.EventID
}

// driveWorkload logs a deterministic randomized workload into shard 0 of st
// and returns the per-record ledger. sealBarrierAt, when >= 0, triggers one
// WriteSegment barrier after that many seals (the with-segments scenario).
func driveWorkload(t *testing.T, st *Store, rng *rand.Rand, ops int, sealBarrierAt int) []ledgerRec {
	t.Helper()
	sl := st.Shard(0)
	var ledger []ledgerRec
	open := map[string]bool{}
	var openIDs []string
	var sealed []seqdb.Sequence
	nextID := 0
	for i := 0; i < ops; i++ {
		switch {
		case len(openIDs) == 0 || rng.Intn(3) == 0: // open or extend a new trace
			id := "fz-" + string(rune('a'+nextID%26)) + string(rune('a'+nextID/26%26)) + string(rune('0'+nextID/676))
			nextID++
			evs := randomTrace(rng, 15)
			if err := sl.LogEvents(id, evs, noSend); err != nil {
				t.Fatal(err)
			}
			ledger = append(ledger, ledgerRec{kind: recOpen, id: id})
			ledger = append(ledger, ledgerRec{kind: recEvents, id: id, events: evs})
			open[id] = true
			openIDs = append(openIDs, id)
		case rng.Intn(2) == 0: // extend an existing open trace
			id := openIDs[rng.Intn(len(openIDs))]
			evs := randomTrace(rng, 15)
			if err := sl.LogEvents(id, evs, noSend); err != nil {
				t.Fatal(err)
			}
			ledger = append(ledger, ledgerRec{kind: recEvents, id: id, events: evs})
		default: // seal one
			k := rng.Intn(len(openIDs))
			id := openIDs[k]
			openIDs = append(openIDs[:k], openIDs[k+1:]...)
			delete(open, id)
			if err := sl.LogSeal(id, noSend); err != nil {
				t.Fatal(err)
			}
			ledger = append(ledger, ledgerRec{kind: recSeal, id: id})
			sealed = append(sealed, nil) // count only
			if sealBarrierAt >= 0 && len(sealed) == sealBarrierAt {
				// Reconstruct the sealed traces so far from the ledger to
				// hand WriteSegment its input.
				segSeqs, _ := applyLedger(ledger)
				if err := sl.WriteSegment(segSeqs); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := sl.Flush(); err != nil {
		t.Fatal(err)
	}
	return ledger
}

// applyLedger replays a ledger prefix in the model: sealed traces in seal
// order plus the still-open traces.
func applyLedger(ledger []ledgerRec) (sealed []seqdb.Sequence, open map[string]seqdb.Sequence) {
	open = map[string]seqdb.Sequence{}
	for _, r := range ledger {
		switch r.kind {
		case recOpen:
			open[r.id] = seqdb.Sequence{}
		case recEvents:
			open[r.id] = append(open[r.id], r.events...)
		case recSeal:
			sealed = append(sealed, open[r.id])
			delete(open, r.id)
		}
	}
	return sealed, open
}

// frameEnds returns the byte offset just past each intact frame of a WAL
// image, using only the framing layer (length prefix + checksum), never the
// record semantics the test is checking.
func frameEnds(data []byte) []int {
	var ends []int
	off := 0
	_, _ = scanFrames(data, func(p []byte) error {
		off += 8 + len(p)
		ends = append(ends, off)
		return nil
	})
	return ends
}

func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		in, err := os.Open(path)
		if err != nil {
			return err
		}
		defer in.Close()
		out, err := os.Create(target)
		if err != nil {
			return err
		}
		if _, err := io.Copy(out, in); err != nil {
			out.Close()
			return err
		}
		return out.Close()
	})
	if err != nil {
		t.Fatalf("copying store tree: %v", err)
	}
}

func TestCrashRecoveryFuzzWALOnly(t *testing.T) {
	runCrashRecoveryFuzz(t, -1, true)
}

func TestCrashRecoveryFuzzWithSegments(t *testing.T) {
	runCrashRecoveryFuzz(t, 5, false)
}

// runCrashRecoveryFuzz builds a durable run, then recovers from truncated
// copies. sealBarrierAt < 0 keeps everything in the WAL (pure prefix
// semantics); otherwise one segment barrier happens after that many seals and
// truncations below it exercise the conservative open-drop rule. everyByte
// selects exhaustive truncation offsets versus a randomized sample.
func runCrashRecoveryFuzz(t *testing.T, sealBarrierAt int, everyByte bool) {
	dir := t.TempDir()
	st := openStore(t, dir, nil)
	internEvents(t, st, 15)
	rng := rand.New(rand.NewSource(1234))
	ledger := driveWorkload(t, st, rng, 60, sealBarrierAt)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	fullSealed, _ := applyLedger(ledger)
	coveredBySegments := 0
	if sealBarrierAt >= 0 {
		coveredBySegments = sealBarrierAt
	}

	walPath := filepath.Join(dir, "shard-000", walName(1))
	walBytes, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	ends := frameEnds(walBytes)
	if len(ends) != len(ledger)+2 { // +2: generation header + commit marker
		t.Fatalf("WAL holds %d frames, ledger has %d records", len(ends), len(ledger))
	}

	var cuts []int
	if everyByte {
		for b := 0; b <= len(walBytes); b++ {
			cuts = append(cuts, b)
		}
	} else {
		cuts = append(cuts, 0, len(walBytes))
		for _, e := range ends {
			cuts = append(cuts, e, e-1)
		}
		for i := 0; i < 80; i++ {
			cuts = append(cuts, rng.Intn(len(walBytes)+1))
		}
	}

	for _, cut := range cuts {
		// Count the complete frames within the cut; frames 0 and 1 are the
		// generation header and commit marker.
		frames := 0
		for _, e := range ends {
			if e <= cut {
				frames++
			}
		}
		prefix := ledger[:max(frames-2, 0)]
		wantSealed, wantOpen := applyLedger(prefix)
		if len(wantSealed) < coveredBySegments {
			// Cut below the segment barrier: sealed state comes from the
			// segment (exact), open recovery is dropped.
			wantSealed = fullSealed[:coveredBySegments]
			wantOpen = map[string]seqdb.Sequence{}
		}

		crashDir := filepath.Join(t.TempDir(), "crash")
		copyTree(t, dir, crashDir)
		if err := os.Truncate(filepath.Join(crashDir, "shard-000", walName(1)), int64(cut)); err != nil {
			t.Fatal(err)
		}
		st2, err := Open(Options{Dir: crashDir})
		if err != nil {
			t.Fatalf("cut %d: reopening: %v", cut, err)
		}
		rec := st2.Recovered().Shards[0]
		if len(rec.Sequences) != len(wantSealed) {
			t.Fatalf("cut %d: recovered %d sealed traces want %d", cut, len(rec.Sequences), len(wantSealed))
		}
		sequencesEqual(t, "cut sealed", rec.Sequences, wantSealed)
		if len(rec.Open) != len(wantOpen) {
			t.Fatalf("cut %d: recovered %d open traces want %d", cut, len(rec.Open), len(wantOpen))
		}
		for _, tr := range rec.Open {
			want, ok := wantOpen[tr.ID]
			if !ok {
				t.Fatalf("cut %d: unexpected open trace %q", cut, tr.ID)
			}
			sequencesEqual(t, "cut open "+tr.ID, []seqdb.Sequence{tr.Events}, []seqdb.Sequence{want})
		}
		// The index over the recovered database must be byte-identical to a
		// fresh build over the surviving prefix.
		db := st2.Recovered().Database(st2.Dict())
		fresh := seqdb.BuildPositionIndex(wantSealed, st2.Dict().Size())
		if err := db.FlatIndex().EqualState(fresh); err != nil {
			t.Fatalf("cut %d: recovered index differs from fresh build: %v", cut, err)
		}
		if err := st2.Close(); err != nil {
			t.Fatalf("cut %d: close: %v", cut, err)
		}
	}
}

// TestRecoveryIsIdempotent: opening, crashing nothing, and opening again —
// repeatedly — must keep yielding the identical state (the -count=2 CI run
// leans on this).
func TestRecoveryIsIdempotent(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, nil)
	internEvents(t, st, 15)
	rng := rand.New(rand.NewSource(77))
	ledger := driveWorkload(t, st, rng, 40, 4)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	wantSealed, wantOpen := applyLedger(ledger)
	for round := 0; round < 3; round++ {
		st2 := openStore(t, dir, nil)
		rec := st2.Recovered().Shards[0]
		sequencesEqual(t, "idempotent sealed", rec.Sequences, wantSealed)
		if len(rec.Open) != len(wantOpen) {
			t.Fatalf("round %d: %d open want %d", round, len(rec.Open), len(wantOpen))
		}
		if err := st2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
