// Package store is the durable, log-structured persistence layer under the
// streaming ingester: the LogBase-style "log as the store" design. Every
// ingested operation is appended to a per-shard write-ahead log before it is
// acknowledged; sealed traces are periodically rolled into immutable,
// block-compressed segment files; a background compactor merges small
// segments; and Open recovers the pre-crash state — sealed databases, open
// traces, the event dictionary — by loading the newest segments and replaying
// the WAL tail over them.
//
// Layout of a store directory:
//
//	MANIFEST.json        shard count and format version
//	dict.wal             dictionary log: one record per interned name, in id order
//	shard-NNN/
//	  wal-GGGGGG.wal     the shard's active WAL generation
//	  seg-FFF-TTT.seg    sealed segments covering seal ordinals [FFF, TTT)
//
// Durability contract: a WAL record is appended (to the in-process
// group-commit buffer) strictly before the operation is acknowledged, and
// buffers are flushed to the OS at every seal-batch barrier, snapshot and
// rotation — so everything visible in a stream Snapshot survives a process
// crash. The window between barriers is the group-commit window: a crash may
// lose its tail, but recovery always yields a consistent prefix of what was
// acknowledged (torn frames never surface). With Options.Sync, flushes also
// fsync, extending the guarantee to machine crashes at a heavy throughput
// cost.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"specmine/internal/fsim"
	"specmine/internal/obs"
	"specmine/internal/seqdb"
)

// Options parameterises Open.
type Options struct {
	// Dir is the store directory, created if absent.
	Dir string
	// Shards is the number of ingestion shards. It is fixed at store creation
	// (the trace-id hash partitioning bakes it into every file); reopening
	// with a different non-zero value is an error. 0 means "whatever the
	// store was created with" (default 4 for a fresh store).
	Shards int
	// Sync makes every WAL flush and segment publish fsync, extending
	// durability from process crashes to machine crashes.
	Sync bool
	// WALRotateBytes is the WAL size beyond which a seal barrier rolls the
	// log into segments and starts a fresh generation; default 4 MiB.
	WALRotateBytes int64
	// CompactBytes is the segment size below which adjacent segments are
	// merged by the background compactor; default 256 KiB.
	CompactBytes int64
	// FS overrides the filesystem under every data-path operation (WALs,
	// segments, dictionary log, manifest); nil means the real filesystem.
	// Fault-injection tests hand an fsim.FaultFS here.
	FS fsim.FS
	// RetryAttempts bounds how many times a transient I/O fault (ENOSPC,
	// EINTR-class) is retried on the WAL-flush and compaction paths before
	// the operation's error is surfaced. 0 means the default (4); negative
	// disables retries.
	RetryAttempts int
	// RetryBackoff is the delay before the first retry, doubling per attempt;
	// 0 means the default (500µs).
	RetryBackoff time.Duration
	// Obs, when non-nil, registers the store's metrics — commit counters, WAL
	// flush/fsync latency and group-commit batch size, segment publish and
	// rotation/compaction activity, and the health ladder's counters — and
	// records rotations and compactions in the registry's ops ring. Nil
	// disables instrumentation at one branch per instrumentation point.
	Obs *obs.Registry
	// OutOfCore opens the store for reading without materialising sealed
	// trace bodies: recovery validates every chain segment by checksum (torn
	// or corrupt files are detected and dropped exactly as in a normal open)
	// but does not decode them, so Open's memory footprint is metadata-sized
	// regardless of database size. Sealed traces are reached through the
	// segment catalog (Segments/LoadSegment) — typically via a cache.Pool —
	// and Recovered() reports open traces only. AttachIngester is refused:
	// an out-of-core handle is read-only for sealed data.
	OutOfCore bool
}

type manifest struct {
	Version int `json:"version"`
	Shards  int `json:"shards"`
}

// Store is an open store directory: the dictionary log, one ShardLog per
// shard, and the compactor. All methods are safe for concurrent use; the
// per-shard mutation entry points live on ShardLog.
type Store struct {
	opts      Options
	fs        fsim.FS  // the data-path filesystem; fsim.OS() in production
	lock      *os.File // exclusive advisory lock on Dir, held until Close
	dict      *seqdb.Dictionary
	dictLog   walBuffer
	shards    []*ShardLog
	recovered *Recovered

	// segMu guards every ShardLog's segs ledger (writer barriers append,
	// the compactor splices). It is held only for ledger reads and splices,
	// never across file I/O: a seal barrier must never stall behind a merge.
	segMu sync.Mutex
	// compactMu serialises whole compaction passes (the background loop and
	// direct Compact calls), so run selection and ledger splices can assume
	// a single mutator besides the barriers' appends.
	compactMu sync.Mutex

	// health is the degradation state machine — see health.go for the model.
	health health

	// met is the registry-backed instrumentation; the zero value is disabled.
	met storeMetrics

	compactNudge chan struct{}
	compactStop  chan struct{}
	compactDone  chan struct{}

	// ingAttached enforces one ingester per store handle: the recovered
	// snapshot is consumed by the first attach, after which the handle's
	// Recovered() no longer reflects the shards' state.
	ingAttached atomic.Bool

	closeMu sync.Mutex
	closed  bool
}

// walBuffer pairs a walFile with its own lock; used for the dictionary log,
// whose appends arrive under the dictionary's intern lock and whose flushes
// arrive from shard barrier goroutines.
type walBuffer struct {
	mu  sync.Mutex
	wal *walFile
}

// Open opens or creates the store at opts.Dir and recovers its state: the
// dictionary is replayed from the dictionary log, each shard's sealed traces
// are loaded from its segment chain plus its WAL tail, and surviving open
// traces are reconstructed. Open then rolls every WAL-recovered sealed trace
// into a segment and starts a fresh WAL generation per shard, so the on-disk
// state is canonical before new traffic arrives.
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, errors.New("store: Options.Dir is required")
	}
	if opts.WALRotateBytes <= 0 {
		opts.WALRotateBytes = 4 << 20
	}
	if opts.CompactBytes <= 0 {
		opts.CompactBytes = 256 << 10
	}
	switch {
	case opts.RetryAttempts == 0:
		opts.RetryAttempts = 4
	case opts.RetryAttempts < 0:
		opts.RetryAttempts = 0
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = 500 * time.Microsecond
	}
	fs := opts.FS
	if fs == nil {
		fs = fsim.OS()
	}
	if err := fs.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", opts.Dir, err)
	}
	lock, err := acquireDirLock(opts.Dir)
	if err != nil {
		return nil, err
	}

	shards, err := loadOrCreateManifest(opts, fs)
	if err != nil {
		releaseDirLock(lock)
		return nil, err
	}
	opts.Shards = shards

	st := &Store{
		opts:         opts,
		fs:           fs,
		lock:         lock,
		compactNudge: make(chan struct{}, 1),
		compactStop:  make(chan struct{}),
		compactDone:  make(chan struct{}),
		met:          newStoreMetrics(opts.Obs),
	}
	if err := st.recoverDict(); err != nil {
		releaseDirLock(lock)
		return nil, err
	}
	// On any later failure, close the files recovery has opened so far — a
	// supervisor retrying Open against a corrupt directory must not leak a
	// descriptor per attempt.
	closePartial := func() {
		_ = st.dictLog.wal.f.Close()
		for _, sl := range st.shards {
			if sl != nil {
				_ = sl.wal.f.Close()
			}
		}
		releaseDirLock(lock)
	}
	st.shards = make([]*ShardLog, shards)
	st.recovered = &Recovered{Shards: make([]RecoveredShard, shards)}
	for i := range st.shards {
		sl, rec, err := st.recoverShard(i)
		if err != nil {
			closePartial()
			return nil, fmt.Errorf("store: shard %d: %w", i, err)
		}
		st.shards[i] = sl
		st.recovered.Shards[i] = rec
	}
	// From here on, fresh interning is logged. (Recovery imported the old
	// names without the hook — they are already on disk.)
	st.dict.OnIntern(func(_ seqdb.EventID, name string) {
		st.dictLog.mu.Lock()
		st.dictLog.wal.append(encodeDictName(name))
		if len(st.dictLog.wal.buf) >= walFlushThreshold {
			if err := st.dictLog.wal.flush(); err != nil {
				// The name stays buffered (flush keeps unwritten bytes), so
				// the flushDict barrier before any shard ack re-attempts it;
				// classify here only so permanent faults degrade promptly.
				_ = st.ioError(err, "dictionary log flush")
			}
		}
		st.dictLog.mu.Unlock()
	})
	go st.compactor()
	return st, nil
}

func loadOrCreateManifest(opts Options, fs fsim.FS) (int, error) {
	path := filepath.Join(opts.Dir, "MANIFEST.json")
	buf, err := fs.ReadFile(path)
	switch {
	case err == nil:
		var m manifest
		if err := json.Unmarshal(buf, &m); err != nil {
			return 0, fmt.Errorf("store: parsing %s: %w", path, err)
		}
		if m.Version != 1 || m.Shards < 1 {
			return 0, fmt.Errorf("store: unsupported manifest %+v", m)
		}
		if opts.Shards != 0 && opts.Shards != m.Shards {
			return 0, fmt.Errorf("store: store has %d shards, Options.Shards asks for %d (the trace partitioning is fixed at creation)", m.Shards, opts.Shards)
		}
		return m.Shards, nil
	case os.IsNotExist(err):
		shards := opts.Shards
		if shards == 0 {
			shards = 4
		}
		if shards < 1 {
			return 0, fmt.Errorf("store: invalid shard count %d", shards)
		}
		buf, err := json.Marshal(manifest{Version: 1, Shards: shards})
		if err != nil {
			return 0, err
		}
		tmp := path + ".tmp"
		if err := fs.WriteFile(tmp, buf, 0o644); err != nil {
			return 0, fmt.Errorf("store: writing %s: %w", tmp, err)
		}
		if opts.Sync {
			if err := syncFile(fs, tmp); err != nil {
				return 0, err
			}
		}
		if err := fs.Rename(tmp, path); err != nil {
			return 0, fmt.Errorf("store: publishing %s: %w", path, err)
		}
		if opts.Sync {
			// Without this, a machine crash could lose the manifest while
			// fsynced shard data survives — and a re-created default
			// manifest would silently change the shard count and hashing.
			if err := syncDir(fs, path); err != nil {
				return 0, err
			}
		}
		return shards, nil
	default:
		return 0, fmt.Errorf("store: reading %s: %w", path, err)
	}
}

// Dict returns the store's dictionary: recovered names under their original
// ids, with fresh interning logged durably. Hand it to the ingester (and to
// anything that mines or verifies against stored traces).
func (st *Store) Dict() *seqdb.Dictionary { return st.dict }

// NumShards returns the store's fixed shard count.
func (st *Store) NumShards() int { return len(st.shards) }

// Dir returns the store directory.
func (st *Store) Dir() string { return st.opts.Dir }

// Recovered returns the state recovered at Open. The ingester seeds its
// shards from it; cold-start miners can merge it into a Database directly.
func (st *Store) Recovered() *Recovered { return st.recovered }

// Shard returns the durable log of shard i; the streaming layer appends
// through it.
func (st *Store) Shard(i int) *ShardLog { return st.shards[i] }

// AttachIngester claims the store for a streaming ingester. It succeeds
// exactly once per handle: a second ingester would seed itself from the
// stale Open-time Recovered() snapshot while the shards' covered counters
// have moved on — silently inconsistent snapshots followed by a poisoned
// rotation. To resume after closing an ingester, close the store and open a
// fresh handle (which re-recovers).
func (st *Store) AttachIngester() error {
	if st.opts.OutOfCore {
		// An out-of-core handle never decoded its sealed traces, so an
		// ingester seeding from Recovered() would silently drop the whole
		// segment-resident history on its next snapshot.
		return errors.New("store: handle opened out-of-core is read-only for sealed data; reopen without OutOfCore to ingest")
	}
	if !st.ingAttached.CompareAndSwap(false, true) {
		return errors.New("store: an ingester already attached to this handle; reopen the store to attach another")
	}
	return nil
}

// flushDict flushes the dictionary log. It must run before any shard WAL
// flush so that, on disk, every event id a shard record references has its
// dictionary record already persisted. Transient faults are retried with
// backoff; a fault that outlives the budget fails this barrier only.
func (st *Store) flushDict() error {
	st.dictLog.mu.Lock()
	defer st.dictLog.mu.Unlock()
	if err := st.retryTransient(st.dictLog.wal.flush); err != nil {
		return st.ioError(err, "dictionary log flush")
	}
	return nil
}

// Close stops the compactor, flushes every log and closes the files. Open
// traces stay open in the WAL: a reopened store recovers them and the
// ingester resumes them seamlessly. Close is idempotent.
func (st *Store) Close() error {
	st.closeMu.Lock()
	defer st.closeMu.Unlock()
	if st.closed {
		return st.Err()
	}
	st.closed = true
	close(st.compactStop)
	<-st.compactDone
	st.dict.OnIntern(nil)

	err := st.flushDict()
	st.dictLog.mu.Lock()
	if cerr := st.dictLog.wal.close(); err == nil && cerr != nil {
		err = st.ioError(cerr, "dictionary log close")
	}
	st.dictLog.mu.Unlock()
	for _, sl := range st.shards {
		sl.mu.Lock()
		if ferr := sl.wal.close(); err == nil && ferr != nil {
			err = st.ioError(ferr, fmt.Sprintf("shard %d WAL close", sl.shard))
		}
		sl.mu.Unlock()
	}
	releaseDirLock(st.lock)
	if err == nil {
		err = st.Err()
	}
	return err
}

// ShardLog is one shard's durable appender. Producer-facing methods
// (LogEvents, LogSeal, Flush) are safe for concurrent use; the barrier
// methods (WriteSegment, rotation) must be called from the shard's single
// writer goroutine, which is exactly how the streaming layer drives them.
type ShardLog struct {
	st    *Store
	shard int
	dir   string

	// mu serialises WAL appends with the caller's channel handoff (the
	// LogEvents/LogSeal and CommitEvents/CommitSeal callbacks run under it)
	// so WAL order always equals apply order, and guards generation swaps.
	// The contention-free commit path (CommitEvents/CommitSeal) does all
	// encoding and checksumming before taking it, so the critical section is
	// one buffer append plus the channel handoff.
	mu  sync.Mutex
	wal *walFile
	gen uint64

	// commitSeq numbers the commit barrier: it increments under mu once per
	// committed operation, so WAL append order, apply (channel) order and the
	// sequence numbers all agree. Diagnostics and tests read it via CommitSeq.
	commitSeq uint64
	// metCommitSeq is the commitSeq value last published to the store.commits
	// series. The counter is fed by the delta at every WAL flush rather than
	// by a per-commit atomic increment, keeping the commit hot path free of
	// shared-counter traffic; it is exact at every flush point (barriers,
	// snapshots, close).
	metCommitSeq uint64

	// handleMu guards the handle table, so producers can resolve (and assign)
	// their trace's handle — and frame records against it — without holding
	// mu. Lock order: mu before handleMu (the locked append path and rotation
	// take handleMu while holding mu; producers take them one at a time).
	handleMu   sync.Mutex
	handles    map[string]uint64
	nextHandle uint64

	// covered is the seal ordinal up to which segments exist. Barrier
	// goroutine only.
	covered int
	// segs is the live segment ledger, guarded by st.segMu.
	segs []segmentInfo
	// walSize mirrors wal.pending() for lock-free reads: the shard goroutine
	// consults RotateDue per operation and must never block on mu (a
	// producer can hold it while blocked on the shard's channel).
	walSize atomic.Int64
	// rotateAt is the adaptive rotation threshold: at least the configured
	// budget, but also at least twice the size of the last generation's
	// fresh start. When the open-trace payload alone exceeds the budget, a
	// fixed threshold would demand a rotation after every operation — each
	// one rewriting the whole multi-megabyte open set; doubling instead
	// keeps total rotation I/O linear in the bytes ever logged.
	rotateAt atomic.Int64
}

// Err returns the owning store's write-gating error; nil while healthy.
func (sl *ShardLog) Err() error { return sl.st.Err() }

// ReadErr returns the owning store's read-gating error; nil unless Failed.
func (sl *ShardLog) ReadErr() error { return sl.st.ReadErr() }

// RotateDue reports, without taking the lock, whether the active WAL
// generation has outgrown its rotation threshold. The shard goroutine checks
// it on every applied operation — events-only and seal-light workloads must
// still trigger rotation, or the WAL (and recovery replay time) would grow
// with history instead of with open data.
func (sl *ShardLog) RotateDue() bool {
	return sl.walSize.Load() >= sl.rotateAt.Load()
}

// setRotateThreshold recomputes rotateAt from a fresh generation's size.
func (sl *ShardLog) setRotateThreshold(fresh int64) {
	at := sl.st.opts.WALRotateBytes
	if double := fresh * 2; double > at {
		at = double
	}
	sl.rotateAt.Store(at)
}

// Lock takes the shard log's lock for a producer-side append. The intended
// sequence — append record(s), hand the operation to the shard's channel,
// unlock — keeps WAL order equal to apply order and guarantees the record is
// in the group-commit buffer before the operation is acknowledged. Producers
// may block on the channel while holding the lock; that is safe because the
// shard goroutine only ever acquires it with TryLock.
func (sl *ShardLog) Lock() { sl.mu.Lock() }

// AppendEventsLocked appends an events record (preceded by an open record
// when the trace id is new) under the held lock. The record is framed in
// place in the group-commit buffer — the ingest hot path allocates nothing.
// On a flush failure the record (and any handle assignment) is rolled back:
// the operation is being rejected, so no later retry of the buffer may
// deliver it to disk and resurrect it at recovery.
func (sl *ShardLog) AppendEventsLocked(id string, events []seqdb.EventID) error {
	if err := sl.st.Err(); err != nil {
		return err
	}
	w := sl.wal
	mark := len(w.buf)
	sl.handleMu.Lock()
	h, ok := sl.handles[id]
	if !ok {
		h = sl.nextHandle
		sl.nextHandle++
		sl.handles[id] = h
	}
	sl.handleMu.Unlock()
	if !ok {
		start := w.begin()
		w.buf = encodeOpen(w.buf, h, id)
		w.end(start)
	}
	start := w.begin()
	w.buf = encodeEvents(w.buf, h, events)
	w.end(start)
	sl.walSize.Store(w.pending())
	preSize := w.size
	if err := sl.maybeFlushLocked(); err != nil {
		sl.rollbackLocked(mark, preSize)
		if !ok {
			sl.dropHandle(id, h)
		}
		return err
	}
	sl.commitSeq++
	return nil
}

// dropHandle removes a rejected handle assignment. The handle value itself is
// never reused (concurrent producers may have assigned past it), leaving a
// hole in the numbering — harmless, since recovery maps handles through their
// open records and rotation renumbers from zero.
func (sl *ShardLog) dropHandle(id string, h uint64) {
	sl.handleMu.Lock()
	if cur, ok := sl.handles[id]; ok && cur == h {
		delete(sl.handles, id)
	}
	sl.handleMu.Unlock()
}

// AppendSealLocked appends a seal record (opening the trace first when the id
// was never seen — an empty trace) under the held lock; rollback semantics as
// in AppendEventsLocked.
func (sl *ShardLog) AppendSealLocked(id string) error {
	if err := sl.st.Err(); err != nil {
		return err
	}
	w := sl.wal
	mark := len(w.buf)
	sl.handleMu.Lock()
	h, ok := sl.handles[id]
	if !ok {
		h = sl.nextHandle
		sl.nextHandle++
	}
	delete(sl.handles, id)
	sl.handleMu.Unlock()
	if !ok {
		start := w.begin()
		w.buf = encodeOpen(w.buf, h, id)
		w.end(start)
	}
	start := w.begin()
	w.buf = encodeSeal(w.buf, h)
	w.end(start)
	sl.walSize.Store(w.pending())
	preSize := w.size
	if err := sl.maybeFlushLocked(); err != nil {
		sl.rollbackLocked(mark, preSize)
		if ok {
			sl.handleMu.Lock()
			sl.handles[id] = h
			sl.handleMu.Unlock()
		}
		return err
	}
	sl.commitSeq++
	return nil
}

// rollbackLocked drops the rejected operation's records from the buffer
// tail. mark is the buffer length before they were framed and preSize the
// file size before the failed flush; the flush may have consumed a prefix of
// the buffer (walFile.flush advances it on partial writes), so the mark is
// rebased by the consumed byte count. If the flush tore into the rejected
// records themselves, the torn on-disk frame is unreachable to recovery by
// construction, and the store's sticky error stops anything from being
// appended after it.
func (sl *ShardLog) rollbackLocked(mark int, preSize int64) {
	w := sl.wal
	rel := mark - int(w.size-preSize)
	if rel < 0 {
		rel = 0
	}
	if rel < len(w.buf) {
		w.buf = w.buf[:rel]
	}
	sl.walSize.Store(w.pending())
}

// LogEvents is the convenience form of Lock + AppendEventsLocked + send +
// Unlock, used by tests and simple drivers.
func (sl *ShardLog) LogEvents(id string, events []seqdb.EventID, send func()) error {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	if err := sl.AppendEventsLocked(id, events); err != nil {
		return err
	}
	send()
	return nil
}

// LogSeal is the convenience form of Lock + AppendSealLocked + send + Unlock.
func (sl *ShardLog) LogSeal(id string, send func()) error {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	if err := sl.AppendSealLocked(id); err != nil {
		return err
	}
	send()
	return nil
}

// commitScratch pools the producer-side framing buffers of the commit path.
var commitScratch = sync.Pool{New: func() any { return new(scratchBuf) }}

type scratchBuf struct{ b []byte }

// resolveHandle resolves (assigning if fresh) id's handle without taking the
// ledger lock, returning the handle, whether it was freshly assigned, and the
// WAL generation the resolution is valid for.
func (sl *ShardLog) resolveHandle(id string) (h uint64, fresh bool, gen uint64) {
	sl.handleMu.Lock()
	h, ok := sl.handles[id]
	if !ok {
		h = sl.nextHandle
		sl.nextHandle++
		sl.handles[id] = h
	}
	gen = sl.gen
	sl.handleMu.Unlock()
	return h, !ok, gen
}

// CommitEvents is the streaming ingester's durable append: an events record
// (preceded by an open record when the trace is new) framed and checksummed
// into private scratch BEFORE the ledger lock is taken, so concurrent
// producers overlap all encoding work and serialise only on a memcpy plus the
// channel handoff in send. WAL order equals apply order (both happen under
// the lock, stamped by the same commit sequence number); rollback semantics
// on flush failure match AppendEventsLocked.
//
// All records of one trace id must be committed from a single goroutine (the
// streaming layer's standing contract): that is what guarantees the trace's
// open record is framed into the same commit as its first events and hits the
// WAL before any other record referencing the handle.
//
// A rotation can invalidate the resolved handle between framing and commit;
// the generation check detects this and the commit falls back to re-encoding
// under the lock against the rebuilt handle table.
func (sl *ShardLog) CommitEvents(id string, events []seqdb.EventID, send func()) error {
	if err := sl.st.Err(); err != nil {
		return err
	}
	h, fresh, gen := sl.resolveHandle(id)
	fb := commitScratch.Get().(*scratchBuf)
	buf := fb.b[:0]
	var start int
	if fresh {
		buf, start = openFrame(buf)
		buf = encodeOpen(buf, h, id)
		buf = closeFrame(buf, start)
	}
	buf, start = openFrame(buf)
	buf = encodeEvents(buf, h, events)
	buf = closeFrame(buf, start)
	fb.b = buf

	sl.mu.Lock()
	defer sl.mu.Unlock()
	defer commitScratch.Put(fb)
	if sl.gen != gen {
		// Rotated under us: the pre-framed handle belongs to the superseded
		// generation. Re-encode against the rebuilt table.
		if err := sl.AppendEventsLocked(id, events); err != nil {
			return err
		}
		send()
		return nil
	}
	w := sl.wal
	mark := len(w.buf)
	w.buf = append(w.buf, buf...)
	sl.walSize.Store(w.pending())
	preSize := w.size
	if err := sl.maybeFlushLocked(); err != nil {
		sl.rollbackLocked(mark, preSize)
		if fresh {
			sl.dropHandle(id, h)
		}
		return err
	}
	sl.commitSeq++
	send()
	return nil
}

// CommitSeal is CommitEvents for seal records: the trace's handle is retired
// from the table at resolution (no later record may reference it under the
// single-goroutine-per-trace contract) and the seal frame is built outside
// the ledger lock.
func (sl *ShardLog) CommitSeal(id string, send func()) error {
	if err := sl.st.Err(); err != nil {
		return err
	}
	sl.handleMu.Lock()
	h, ok := sl.handles[id]
	if !ok {
		h = sl.nextHandle
		sl.nextHandle++
	}
	delete(sl.handles, id)
	gen := sl.gen
	sl.handleMu.Unlock()

	fb := commitScratch.Get().(*scratchBuf)
	buf := fb.b[:0]
	var start int
	if !ok {
		buf, start = openFrame(buf)
		buf = encodeOpen(buf, h, id)
		buf = closeFrame(buf, start)
	}
	buf, start = openFrame(buf)
	buf = encodeSeal(buf, h)
	buf = closeFrame(buf, start)
	fb.b = buf

	sl.mu.Lock()
	defer sl.mu.Unlock()
	defer commitScratch.Put(fb)
	if sl.gen != gen {
		// The rotation re-opened the trace in the rebuilt table (it was still
		// open when the generation turned); seal it against that table.
		if err := sl.AppendSealLocked(id); err != nil {
			return err
		}
		send()
		return nil
	}
	w := sl.wal
	mark := len(w.buf)
	w.buf = append(w.buf, buf...)
	sl.walSize.Store(w.pending())
	preSize := w.size
	if err := sl.maybeFlushLocked(); err != nil {
		sl.rollbackLocked(mark, preSize)
		if ok {
			sl.handleMu.Lock()
			sl.handles[id] = h
			sl.handleMu.Unlock()
		}
		return err
	}
	sl.commitSeq++
	send()
	return nil
}

// CommitSeq returns the number of operations committed to the shard's WAL so
// far. It is a diagnostic: the value is racy the moment it returns.
func (sl *ShardLog) CommitSeq() uint64 {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	return sl.commitSeq
}

// maybeFlushLocked group-commits when the buffer has grown past the
// threshold, flushing the dictionary log first to preserve the on-disk
// reference invariant.
func (sl *ShardLog) maybeFlushLocked() error {
	if int64(len(sl.wal.buf)) < walFlushThreshold {
		return nil
	}
	return sl.flushLocked()
}

func (sl *ShardLog) flushLocked() error {
	// Publish the commits accumulated since the last flush before anything
	// can fail: the counter stays exact at every flush point even when the
	// flush itself errors out.
	if sl.st.met.enabled {
		if d := sl.commitSeq - sl.metCommitSeq; d != 0 {
			sl.st.met.commits.Add(int64(d))
			sl.metCommitSeq = sl.commitSeq
		}
	}
	// Fail fast once the store is degraded: barriers keep firing from the
	// streaming layer, and each would otherwise burn a full retry-backoff
	// cycle against a path already known permanent.
	if err := sl.st.Err(); err != nil {
		return err
	}
	if err := sl.st.flushDict(); err != nil {
		return err
	}
	if err := sl.st.retryTransient(sl.wal.flush); err != nil {
		return sl.st.ioError(err, fmt.Sprintf("shard %d WAL flush", sl.shard))
	}
	return nil
}

// Flush forces the shard's buffered records (and the dictionary log) to the
// OS — the barrier the streaming layer invokes at every snapshot, so any
// state a snapshot exposed is recoverable.
func (sl *ShardLog) Flush() error {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	return sl.flushLocked()
}

// FlushLocked is Flush for callers already holding the lock via TryLock.
func (sl *ShardLog) FlushLocked() error { return sl.flushLocked() }

// NeedRotate reports whether the active WAL generation has outgrown the
// rotation budget and the next barrier should roll it into segments.
func (sl *ShardLog) NeedRotate() bool {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	return sl.needRotateLocked()
}

// NeedRotateLocked is NeedRotate for callers already holding the lock via
// TryLock.
func (sl *ShardLog) NeedRotateLocked() bool { return sl.needRotateLocked() }

func (sl *ShardLog) needRotateLocked() bool {
	return sl.wal.pending() >= sl.rotateAt.Load()
}

// TryLock attempts to take the shard log's lock without blocking. The
// rotation protocol in the streaming layer needs it: the shard goroutine
// must never block on the lock while a producer inside LogEvents could be
// blocked on the shard's own channel.
func (sl *ShardLog) TryLock() bool { return sl.mu.TryLock() }

// Unlock releases the lock taken by TryLock.
func (sl *ShardLog) Unlock() { sl.mu.Unlock() }

// WriteSegment flushes the logs and rolls every sealed trace not yet in a
// segment — seqs must be the shard's full sealed-trace list, in seal order —
// into a new segment file. Barrier goroutine only.
func (sl *ShardLog) WriteSegment(seqs []seqdb.Sequence) error {
	if err := sl.Flush(); err != nil {
		return err
	}
	return sl.writeSegmentTail(seqs)
}

// WriteSegmentLocked is WriteSegment for the rotation path, where the caller
// already holds the lock via TryLock.
func (sl *ShardLog) WriteSegmentLocked(seqs []seqdb.Sequence) error {
	if err := sl.flushLocked(); err != nil {
		return err
	}
	return sl.writeSegmentTail(seqs)
}

// segMinPublish is the smallest unsegmented tail PublishSegment will roll
// into a segment file. Barriers fire every flush batch (a few dozen seals),
// and publishing a file per barrier made segment creation — temp file,
// write, rename, (fsync in Sync mode) — the dominant per-trace syscall cost
// of steady-state durable ingest. Deferring publication is free from a
// durability standpoint: the WAL retains every sealed trace since its
// generation began, recovery canonicalises any WAL-only tail into a segment
// on the next open, and the rotation and explicit WriteSegment paths bypass
// the gate because they require full coverage.
const segMinPublish = 64

// PublishSegment rolls the unsegmented sealed tail of seqs into a segment
// WITHOUT taking the log's lock — the barrier goroutine calls it after
// releasing the lock so producers never wait behind segment I/O. Tails
// shorter than segMinPublish are left in the WAL to coalesce with later
// barriers. The caller must have flushed the WAL past those traces' seal
// records while it still held the lock (the barrier does); publishing an
// un-covered segment would break the resurrection invariant
// writeSegmentTail documents.
func (sl *ShardLog) PublishSegment(seqs []seqdb.Sequence) error {
	if err := sl.st.Err(); err != nil {
		return err
	}
	if len(seqs)-sl.covered < segMinPublish {
		return nil
	}
	return sl.writeSegmentTail(seqs)
}

// writeSegmentTail writes seqs[covered:] as a segment. The WAL must already
// be flushed past those traces' seal records: a surviving segment whose seals
// the WAL never saw would resurrect its traces as duplicates.
func (sl *ShardLog) writeSegmentTail(seqs []seqdb.Sequence) error {
	if len(seqs) <= sl.covered {
		return nil
	}
	var pubStart time.Time
	if sl.st.met.enabled {
		pubStart = time.Now()
	}
	from, to := sl.covered, len(seqs)
	data := encodeSegment(seqs[from:to], sl.shard, from)
	var info segmentInfo
	err := sl.st.retryTransient(func() error {
		var werr error
		// writeSegmentFile truncates on create, so a retry after a short
		// write starts from a clean file.
		info, werr = writeSegmentFile(sl.st.fs, sl.dir, from, to, data, sl.st.opts.Sync)
		return werr
	})
	if err != nil {
		// covered is not advanced: the WAL still holds these traces, the next
		// barrier re-attempts the publish, and recovery discards any torn
		// partial file by checksum.
		return sl.st.ioError(err, fmt.Sprintf("shard %d segment publish", sl.shard))
	}
	sl.covered = to
	sl.st.segMu.Lock()
	sl.segs = append(sl.segs, info)
	sl.st.segMu.Unlock()
	if sl.st.met.enabled {
		sl.st.met.segPublishNs.Observe(time.Since(pubStart).Nanoseconds())
		sl.st.met.segsPublished.Inc()
	}
	select {
	case sl.st.compactNudge <- struct{}{}:
	default:
	}
	return nil
}

// RotateLocked starts a fresh WAL generation: a new file carrying only the
// header (sealedBase = sealedTotal, which must equal the segment coverage)
// and a re-log of the still-open traces, then removal of the old generation.
// The caller must hold the lock via TryLock with the shard's channel drained,
// so the open-trace set is exact and no producer can interleave.
func (sl *ShardLog) RotateLocked(open []OpenTrace, sealedTotal int) error {
	sp := sl.st.met.ops.Start(fmt.Sprintf("store.wal_rotate shard=%d", sl.shard))
	err := sl.rotateLocked(open, sealedTotal)
	sp.End(err)
	if err == nil {
		sl.st.met.rotations.Inc()
	}
	return err
}

func (sl *ShardLog) rotateLocked(open []OpenTrace, sealedTotal int) error {
	if sealedTotal != sl.covered {
		return sl.st.fail(fmt.Errorf("store: shard %d: rotating with %d sealed but %d covered by segments", sl.shard, sealedTotal, sl.covered))
	}
	// The old generation stays valid until the new one is renamed into
	// place, so a crash anywhere in here recovers from one or the other.
	sort.Slice(open, func(i, j int) bool { return open[i].ID < open[j].ID })
	records, handles, next := openTraceRecords(sl.shard, sealedTotal, open)
	newGen := sl.gen + 1
	newPath := filepath.Join(sl.dir, walName(newGen))
	wal, err := createWAL(sl.st.fs, newPath, sl.st.opts.Sync, records...)
	if err != nil {
		// The old generation stays active and valid; NeedRotate remains true,
		// so the next barrier re-attempts the rotation. A torn publish of the
		// new file is discarded at recovery by its missing commit marker.
		return sl.st.ioError(err, fmt.Sprintf("shard %d WAL rotation", sl.shard))
	}
	wal.met = &sl.st.met
	oldPath := sl.wal.path
	if err := sl.wal.f.Close(); err != nil {
		// The old generation is already superseded — the new WAL covers all
		// state — so a failed close leaks a handle, not durability. Record it
		// and continue.
		sl.st.warn("shard %d: closing superseded %s: %v", sl.shard, oldPath, err)
	}
	if err := sl.st.fs.Remove(oldPath); err != nil {
		// A leaked superseded generation is harmless (recovery prefers the
		// newest complete one and re-deletes stale files) but observable.
		sl.st.warn("shard %d: removing superseded %s: %v", sl.shard, oldPath, err)
	}
	sl.wal = wal
	// Swap the handle table and generation atomically with respect to
	// producer-side resolveHandle: a producer either resolves against the old
	// table (and its commit-time generation check sends it down the re-encode
	// path) or against the rebuilt one.
	sl.handleMu.Lock()
	sl.gen = newGen
	sl.handles = handles
	sl.nextHandle = next
	sl.handleMu.Unlock()
	sl.walSize.Store(wal.pending())
	sl.setRotateThreshold(wal.pending())
	return nil
}

func walName(gen uint64) string { return fmt.Sprintf("wal-%06d.wal", gen) }

func parseWALName(name string) (uint64, bool) {
	var gen uint64
	if n, err := fmt.Sscanf(name, "wal-%d.wal", &gen); n != 1 || err != nil {
		return 0, false
	}
	return gen, true
}

// compactor is the background merge loop: every segment publish nudges it,
// and it folds runs of small adjacent segments into larger ones.
func (st *Store) compactor() {
	defer close(st.compactDone)
	for {
		select {
		case <-st.compactStop:
			return
		case <-st.compactNudge:
			// Compact classifies its own failures into Health: transient
			// faults are counted and the next publish re-nudges the loop;
			// permanent ones degrade the store, which keeps serving reads.
			_ = st.Compact()
		}
	}
}

// Compact merges, in every shard, each run of compactMinRun or more adjacent
// segments that are all smaller than Options.CompactBytes. It is what the
// background compactor runs; tests call it directly for determinism. Merging
// splices block bodies without re-encoding, so a crash mid-compaction leaves
// either the old segments, or the merged one plus subsumed leftovers that
// the next Open discards. Only one Compact runs at a time (compactMu), and
// all file I/O happens outside segMu — seal barriers must never wait on a
// merge, only on the brief ledger splice.
func (st *Store) Compact() error {
	st.compactMu.Lock()
	defer st.compactMu.Unlock()
	if err := st.Err(); err != nil {
		return err
	}
	for _, sl := range st.shards {
		if err := st.compactShard(sl); err != nil {
			return st.ioError(err, "compaction")
		}
	}
	return nil
}

// compactMinRun is the smallest run of small adjacent segments worth
// merging. Requiring several keeps compaction amortised: a freshly merged
// segment (often still under the size budget) is not re-merged until enough
// new small neighbours accumulate, so each byte is rewritten O(log) times
// over the store's life rather than once per barrier.
const compactMinRun = 4

func (st *Store) compactShard(sl *ShardLog) error {
	for {
		// Pick one mergeable run under the ledger lock, copying the entries;
		// the heavy work runs unlocked. Only this compactor removes or
		// replaces entries (compactMu), the shard's barrier only appends, so
		// the copied run stays valid while unlocked.
		st.segMu.Lock()
		var run []segmentInfo
		for i := 0; i < len(sl.segs) && run == nil; {
			j := i
			for j < len(sl.segs) && sl.segs[j].size < st.opts.CompactBytes {
				j++
			}
			if j-i >= compactMinRun {
				run = append(run, sl.segs[i:j]...)
			}
			if j == i {
				j = i + 1
			}
			i = j
		}
		st.segMu.Unlock()
		if run == nil {
			return nil
		}
		var runStart time.Time
		if st.met.enabled {
			runStart = time.Now()
		}

		parts := make([][]byte, len(run))
		for k, info := range run {
			var buf []byte
			err := st.retryTransient(func() error {
				var rerr error
				buf, rerr = st.fs.ReadFile(info.path)
				return rerr
			})
			if err != nil {
				return fmt.Errorf("store: compacting shard %d: %w", sl.shard, err)
			}
			parts[k] = buf
		}
		merged, err := mergeSegments(parts)
		if err != nil {
			return fmt.Errorf("store: compacting shard %d: %w", sl.shard, err)
		}
		var info segmentInfo
		err = st.retryTransient(func() error {
			var werr error
			info, werr = writeSegmentFile(st.fs, sl.dir, run[0].from, run[len(run)-1].to, merged, st.opts.Sync)
			return werr
		})
		if err != nil {
			return err
		}

		st.segMu.Lock()
		spliced := make([]segmentInfo, 0, len(sl.segs)-len(run)+1)
		replaced := false
		for _, s := range sl.segs {
			if s.from >= run[0].from && s.to <= run[len(run)-1].to {
				if !replaced {
					spliced = append(spliced, info)
					replaced = true
				}
				continue
			}
			spliced = append(spliced, s)
		}
		sl.segs = spliced
		st.segMu.Unlock()
		for _, old := range run {
			if err := st.fs.Remove(old.path); err != nil {
				// The merged segment subsumes these files; recovery discards
				// leftovers. A leak is observable, not fatal.
				st.warn("shard %d: removing compacted %s: %v", sl.shard, old.path, err)
			}
		}
		if st.met.enabled {
			st.met.compactions.Inc()
			st.met.ops.RecordDur(fmt.Sprintf("store.compact shard=%d segs=%d", sl.shard, len(run)), runStart, time.Since(runStart), nil)
		}
	}
}

// SegmentSpans returns, for diagnostics and tests, each shard's live segment
// ordinal ranges in order.
func (st *Store) SegmentSpans() [][][2]int {
	st.segMu.Lock()
	defer st.segMu.Unlock()
	out := make([][][2]int, len(st.shards))
	for i, sl := range st.shards {
		for _, s := range sl.segs {
			out[i] = append(out[i], [2]int{s.from, s.to})
		}
	}
	return out
}
