package store

import (
	"fmt"

	"specmine/internal/seqdb"
)

// Segment catalog: the read-side API that lets out-of-core mining iterate a
// store's sealed traces segment by segment instead of materialising one
// global database. See internal/store/cache for the pin-and-evict pool built
// on top of it.

// SegmentMeta describes one live segment file. From/To are shard-local seal
// ordinals (To exclusive); Base is the global index of the segment's first
// trace in the shard-major order that Recovered().Database uses, so the
// global id of trace i within the segment is Base+i.
type SegmentMeta struct {
	Shard    int
	From, To int
	Base     int
	Path     string
	Size     int64
}

// NumTraces returns the number of traces the segment covers.
func (m SegmentMeta) NumTraces() int { return m.To - m.From }

// Segments returns the live segment catalog in global trace order:
// shard-major, then ascending seal ordinal — the same order in which
// Recovered().Database concatenates traces. Opening a store canonicalises
// each shard (WAL-recovered sealed traces are rolled into segments), so on a
// store that has not ingested since Open the catalog covers exactly the
// recovered sealed traces and a segment-by-segment sweep visits the same
// traces, in the same order, as the in-memory database. During live ingest
// the newest seals of each shard may still sit only in the WAL; the catalog
// then covers a consistent prefix of every shard.
func (st *Store) Segments() []SegmentMeta {
	st.segMu.Lock()
	defer st.segMu.Unlock()
	var out []SegmentMeta
	base := 0
	for si, sl := range st.shards {
		covered := 0
		for _, info := range sl.segs {
			out = append(out, SegmentMeta{
				Shard: si,
				From:  info.from,
				To:    info.to,
				Base:  base + info.from,
				Path:  info.path,
				Size:  info.size,
			})
			covered = info.to
		}
		base += covered
	}
	return out
}

// loadSegmentView reads and validates the segment file behind meta.
func (st *Store) loadSegmentView(meta SegmentMeta) (*segmentView, error) {
	var buf []byte
	err := st.retryTransient(func() error {
		var rerr error
		buf, rerr = st.fs.ReadFile(meta.Path)
		return rerr
	})
	if err != nil {
		return nil, st.ioError(err, "segment read")
	}
	v, err := parseSegment(buf)
	if err != nil {
		return nil, err
	}
	if v.shard != meta.Shard || v.from != meta.From || v.numTraces() != meta.NumTraces() {
		return nil, fmt.Errorf("store: %s: footer (shard %d, from %d, %d traces) contradicts the catalog entry", meta.Path, v.shard, v.from, v.numTraces())
	}
	return v, nil
}

// LoadSegment reads, validates and fully decodes one segment: its traces in
// seal order plus its stats. Stats are recomputed from the decoded body when
// the file predates the stats block (v1) or the block arrived damaged.
func (st *Store) LoadSegment(meta SegmentMeta) ([]seqdb.Sequence, *SegmentStats, error) {
	v, err := st.loadSegmentView(meta)
	if err != nil {
		return nil, nil, err
	}
	seqs, err := v.decodeAll()
	if err != nil {
		return nil, nil, err
	}
	stats := v.stats
	if stats == nil {
		stats = computeSegmentStats(seqs)
	}
	return seqs, stats, nil
}

// LoadSegmentStats returns only the segment's stats block. The file is read
// and its checksums validated either way (the fs API is whole-file), but the
// body is only decoded on the lazy-backfill path — v1 files or damaged stats
// blocks — so for current-generation segments the call does no per-trace
// work.
func (st *Store) LoadSegmentStats(meta SegmentMeta) (*SegmentStats, error) {
	v, err := st.loadSegmentView(meta)
	if err != nil {
		return nil, err
	}
	return v.ensureStats()
}
