// Package cache implements a pin-and-evict buffer pool over a store's sealed
// segments. Out-of-core mining iterates per-seed or per-segment views of the
// database; the pool keeps recently used decoded segments (and the
// per-segment PositionIndex fragments built over them) resident up to a
// configurable byte budget, evicting least-recently-used unpinned entries
// when the budget overflows. Pinned entries are never evicted, so the budget
// is a target, not a hard ceiling: the working set of the in-flight
// pins may exceed it transiently, exactly like a database buffer pool.
package cache

import (
	"container/list"
	"fmt"
	"sync"

	"specmine/internal/obs"
	"specmine/internal/seqdb"
	"specmine/internal/store"
)

// Options configures a Pool.
type Options struct {
	// BudgetBytes caps the estimated decoded bytes the pool keeps resident
	// across unpinned entries; <= 0 means unlimited (everything touched stays
	// cached — the fits-in-RAM fast path).
	BudgetBytes int64
	// Obs, when non-nil, backs the pool's counters with registry series
	// (cache.pins/hits/misses/evictions/bodies_opened/segments_opened,
	// cache.resident_bytes, cache.peak_bytes) live-scrapeable while a mine
	// runs. Nil keeps the same atomic counters as standalone instruments.
	Obs *obs.Registry
}

// Metrics is a snapshot of the pool's counters — a compatibility view over
// the registry-backed series (per-pool: on a shared registry, each pool
// subtracts the series values captured at its construction).
type Metrics struct {
	// Hits and Misses count Pin calls served from cache versus decoded.
	Hits, Misses int64
	// Evictions counts entries dropped to fit the byte budget.
	Evictions int64
	// BodiesOpened counts segment body decodes — equal to Misses, named for
	// the skip-rate accounting (a skipped segment never opens its body).
	BodiesOpened int64
	// SegmentsOpened counts DISTINCT segments ever decoded; with stats-driven
	// skipping it stays below the catalog size on selective workloads.
	SegmentsOpened int
	// CurBytes and PeakBytes track the pool's estimated resident decoded
	// bytes (pinned + cached), now and at its high-water mark.
	CurBytes, PeakBytes int64
}

// poolMetrics are the pool's registry-backed instruments. With Options.Obs
// nil they are standalone (unregistered) instances of the same atomic types,
// so the accounting code has exactly one shape.
type poolMetrics struct {
	pins, hits, misses     *obs.Counter
	evictions              *obs.Counter
	bodiesOpened, segsOpen *obs.Counter
	curBytes, peakBytes    *obs.Gauge
	// base are the shared series' values at pool construction; Metrics()
	// subtracts them so per-pool views stay per-pool on a shared registry.
	baseHits, baseMisses, baseEvictions, baseBodies int64
}

func newPoolMetrics(r *obs.Registry) poolMetrics {
	m := poolMetrics{
		pins:         r.Counter("cache.pins"),
		hits:         r.Counter("cache.hits"),
		misses:       r.Counter("cache.misses"),
		evictions:    r.Counter("cache.evictions"),
		bodiesOpened: r.Counter("cache.bodies_opened"),
		segsOpen:     r.Counter("cache.segments_opened"),
		curBytes:     r.Gauge("cache.resident_bytes"),
		peakBytes:    r.Gauge("cache.peak_bytes"),
	}
	if r == nil {
		m = poolMetrics{
			pins: new(obs.Counter), hits: new(obs.Counter), misses: new(obs.Counter),
			evictions: new(obs.Counter), bodiesOpened: new(obs.Counter), segsOpen: new(obs.Counter),
			curBytes: new(obs.Gauge), peakBytes: new(obs.Gauge),
		}
	}
	m.baseHits = m.hits.Value()
	m.baseMisses = m.misses.Value()
	m.baseEvictions = m.evictions.Value()
	m.baseBodies = m.bodiesOpened.Value()
	return m
}

// entry is one cached segment: decoded traces plus the lazily built
// per-segment index fragment. Lifecycle: created under mu with pins=1, loaded
// once outside mu (once), then repinned/unpinned; unpinned entries sit on the
// LRU list and are evicted map-and-all when the budget overflows.
type entry struct {
	idx  int
	once sync.Once
	err  error

	seqs  []seqdb.Sequence
	stats *store.SegmentStats
	frag  *seqdb.PositionIndex
	bytes int64 // estimated resident size, updated when frag materialises

	pins int
	elem *list.Element // non-nil while on the LRU list (pins == 0)
}

// Pool is the pin-and-evict segment cache. It snapshots the store's segment
// catalog at construction; safe for concurrent use.
type Pool struct {
	st        *store.Store
	metas     []store.SegmentMeta
	numEvents int

	mu      sync.Mutex
	entries map[int]*entry
	lru     *list.List // front = most recently unpinned
	budget  int64
	used    int64
	peak    int64 // this pool's high-water mark of used
	opened  map[int]bool
	met     poolMetrics
}

// New builds a pool over the store's current segment catalog. numEvents is
// the event-id space (dict.Size()) that per-segment index fragments are built
// against.
func New(st *store.Store, opts Options) *Pool {
	return &Pool{
		st:        st,
		metas:     st.Segments(),
		numEvents: st.Dict().Size(),
		entries:   make(map[int]*entry),
		lru:       list.New(),
		budget:    opts.BudgetBytes,
		opened:    make(map[int]bool),
		met:       newPoolMetrics(opts.Obs),
	}
}

// NumSegments returns the catalog size.
func (p *Pool) NumSegments() int { return len(p.metas) }

// Meta returns the catalog entry for segment i (global order).
func (p *Pool) Meta(i int) store.SegmentMeta { return p.metas[i] }

// NumTraces returns the total trace count across the catalog.
func (p *Pool) NumTraces() int {
	n := 0
	for _, m := range p.metas {
		n += m.NumTraces()
	}
	return n
}

// Stats returns segment i's statistics, loading them on first use. Stats are
// metadata-sized and stay resident for the pool's lifetime — they are the
// map that decides which bodies are worth opening, so evicting them would
// defeat the point. Loading stats does NOT count as opening the body (v2
// segments carry them pre-computed; v1 backfill decodes once, transiently).
func (p *Pool) Stats(i int) (*store.SegmentStats, error) {
	p.mu.Lock()
	e := p.entries[i]
	if e != nil && e.stats != nil {
		s := e.stats
		p.mu.Unlock()
		return s, nil
	}
	p.mu.Unlock()
	// Loaded outside the lock; a racing duplicate load is harmless (same
	// bytes, last writer wins).
	s, err := p.st.LoadSegmentStats(p.metas[i])
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	if e := p.entries[i]; e != nil {
		e.stats = s
	} else {
		p.entries[i] = &entry{idx: i, stats: s}
	}
	p.mu.Unlock()
	return s, nil
}

// Segment is a pinned view of one decoded segment. It stays valid (and the
// backing entry unevictable) until Unpin.
type Segment struct {
	p *Pool
	e *entry
	// Seqs holds the segment's traces in seal order; trace i has global id
	// Base+i.
	Seqs []seqdb.Sequence
	// Base is the segment's first global trace id (shard-major order).
	Base int
}

// Pin returns segment i decoded, loading it on a miss and evicting
// least-recently-used unpinned entries if the byte budget overflows. Every
// Pin must be matched by exactly one Unpin.
func (p *Pool) Pin(i int) (*Segment, error) {
	p.met.pins.Inc()
	p.mu.Lock()
	e := p.entries[i]
	if e == nil {
		e = &entry{idx: i}
		p.entries[i] = e
	}
	if e.seqs != nil {
		p.met.hits.Inc()
	}
	e.pins++
	if e.elem != nil {
		p.lru.Remove(e.elem)
		e.elem = nil
	}
	p.mu.Unlock()

	e.once.Do(func() {
		seqs, stats, err := p.st.LoadSegment(p.metas[i])
		p.met.misses.Inc()
		p.met.bodiesOpened.Inc()
		p.mu.Lock()
		if !p.opened[i] {
			p.opened[i] = true
			p.met.segsOpen.Inc()
		}
		p.mu.Unlock()
		if err != nil {
			e.err = err
			return
		}
		e.seqs = seqs
		if e.stats == nil {
			e.stats = stats
		}
		e.bytes = estimateBytes(seqs)
		p.mu.Lock()
		p.account(e.bytes)
		p.mu.Unlock()
	})
	if e.err != nil {
		err := e.err
		p.unpin(e)
		return nil, err
	}
	return &Segment{p: p, e: e, Seqs: e.seqs, Base: p.metas[i].Base}, nil
}

// account adds delta to the pool's resident estimate and evicts to budget.
// Caller holds p.mu.
func (p *Pool) account(delta int64) {
	p.used += delta
	p.met.curBytes.Add(delta)
	if p.used > p.peak {
		p.peak = p.used
		// On a shared registry the gauge aggregates concurrent pools, so the
		// shared high-water mark is taken from the gauge, not this pool.
		p.met.peakBytes.SetMax(p.met.curBytes.Value())
	}
	if p.budget <= 0 {
		return
	}
	for p.used > p.budget {
		back := p.lru.Back()
		if back == nil {
			return // everything resident is pinned; over budget until unpins
		}
		victim := back.Value.(*entry)
		p.lru.Remove(back)
		victim.elem = nil
		delete(p.entries, victim.idx)
		p.used -= victim.bytes
		p.met.curBytes.Add(-victim.bytes)
		p.met.evictions.Inc()
		// The stats stay resident: re-register a stats-only entry so skip
		// decisions never re-read the file.
		if victim.stats != nil {
			p.entries[victim.idx] = &entry{idx: victim.idx, stats: victim.stats}
		}
	}
}

func (p *Pool) unpin(e *entry) {
	p.mu.Lock()
	defer p.mu.Unlock()
	e.pins--
	if e.pins > 0 {
		return
	}
	if e.err != nil || e.seqs == nil {
		// Failed load: drop the entry so a later Pin retries.
		if e.err != nil {
			delete(p.entries, e.idx)
		}
		return
	}
	e.elem = p.lru.PushFront(e)
	if p.budget > 0 && p.used > p.budget {
		p.account(0)
	}
}

// Unpin releases the pin. The Segment (and any Fragment obtained from it)
// must not be used afterwards.
func (s *Segment) Unpin() { s.p.unpin(s.e) }

// Fragment returns the per-segment PositionIndex, building it on first use
// and charging its estimated footprint to the pool budget. Only valid while
// the segment is pinned.
func (s *Segment) Fragment() *seqdb.PositionIndex {
	p := s.p
	p.mu.Lock()
	if s.e.frag != nil {
		f := s.e.frag
		p.mu.Unlock()
		return f
	}
	p.mu.Unlock()
	frag := seqdb.BuildPositionIndex(s.e.seqs, p.numEvents)
	p.mu.Lock()
	defer p.mu.Unlock()
	if s.e.frag == nil {
		s.e.frag = frag
		cost := fragmentBytes(s.e.seqs, p.numEvents)
		s.e.bytes += cost
		p.account(cost)
	}
	return s.e.frag
}

// Metrics returns a snapshot of the pool counters: the registry series'
// values rebased to this pool's construction-time baseline, plus the pool's
// own resident/peak bytes (exact per-pool even on a shared registry).
func (p *Pool) Metrics() Metrics {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Metrics{
		Hits:           p.met.hits.Value() - p.met.baseHits,
		Misses:         p.met.misses.Value() - p.met.baseMisses,
		Evictions:      p.met.evictions.Value() - p.met.baseEvictions,
		BodiesOpened:   p.met.bodiesOpened.Value() - p.met.baseBodies,
		SegmentsOpened: len(p.opened),
		CurBytes:       p.used,
		PeakBytes:      p.peak,
	}
}

// estimateBytes approximates the resident size of decoded traces: 4 bytes
// per event plus slice headers.
func estimateBytes(seqs []seqdb.Sequence) int64 {
	n := int64(len(seqs)) * 24
	for _, s := range seqs {
		n += int64(len(s)) * 4
	}
	return n
}

// fragmentBytes approximates a PositionIndex fragment's footprint: postings
// and previous-occurrence arrays cost ~8 bytes per event, the per-event
// offset tables ~8 bytes per event id.
func fragmentBytes(seqs []seqdb.Sequence, numEvents int) int64 {
	n := int64(numEvents) * 8
	for _, s := range seqs {
		n += int64(len(s)) * 8
	}
	return n
}

// String implements fmt.Stringer for debugging.
func (m Metrics) String() string {
	return fmt.Sprintf("hits=%d misses=%d evictions=%d opened=%d cur=%dB peak=%dB",
		m.Hits, m.Misses, m.Evictions, m.SegmentsOpened, m.CurBytes, m.PeakBytes)
}
