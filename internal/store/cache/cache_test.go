package cache_test

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"specmine/internal/seqdb"
	"specmine/internal/store"
	"specmine/internal/store/cache"
	"specmine/internal/stream"
)

// buildStore ingests traces durable-mode across several sessions — each
// open/close cycle canonicalises the shard WALs into one segment per shard —
// then reopens the store quiescent, the state the pool snapshots.
// CompactBytes 1 keeps the resulting tiny segments from being merged behind
// the test's back.
func buildStore(t *testing.T, shards, sessions, tracesPerSession int) *store.Store {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "traces")
	for s := 0; s < sessions; s++ {
		ts, err := store.Open(store.Options{Dir: dir, Shards: shards, CompactBytes: 1})
		if err != nil {
			t.Fatal(err)
		}
		ing, err := stream.Open(stream.Config{FlushBatch: 4, Store: ts})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < tracesPerSession; i++ {
			id := fmt.Sprintf("s%dtr%03d", s, i)
			evs := []string{"open", fmt.Sprintf("op%d", i%7), "use", "close"}
			if err := ing.Ingest(id, evs...); err != nil {
				t.Fatal(err)
			}
			if err := ing.CloseTrace(id); err != nil {
				t.Fatal(err)
			}
		}
		if err := ing.Close(); err != nil {
			t.Fatal(err)
		}
		if err := ts.Close(); err != nil {
			t.Fatal(err)
		}
	}
	st, err := store.Open(store.Options{Dir: dir, CompactBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// TestPoolCatalogOrder decodes every segment through the pool and checks that
// the concatenation in catalog order reproduces the recovered database.
func TestPoolCatalogOrder(t *testing.T) {
	st := buildStore(t, 3, 3, 20)
	want := st.Recovered().Database(st.Dict())
	p := cache.New(st, cache.Options{})
	if p.NumTraces() != want.NumSequences() {
		t.Fatalf("pool covers %d traces, recovered db has %d", p.NumTraces(), want.NumSequences())
	}
	var got []seqdb.Sequence
	for i := 0; i < p.NumSegments(); i++ {
		sg, err := p.Pin(i)
		if err != nil {
			t.Fatal(err)
		}
		if sg.Base != len(got) {
			t.Fatalf("segment %d base %d, want %d", i, sg.Base, len(got))
		}
		got = append(got, sg.Seqs...)
		sg.Unpin()
	}
	if len(got) != len(want.Sequences) {
		t.Fatalf("pool decoded %d traces want %d", len(got), len(want.Sequences))
	}
	for i := range got {
		if len(got[i]) != len(want.Sequences[i]) {
			t.Fatalf("trace %d: %d events want %d", i, len(got[i]), len(want.Sequences[i]))
		}
		for j := range got[i] {
			if got[i][j] != want.Sequences[i][j] {
				t.Fatalf("trace %d event %d: %d want %d", i, j, got[i][j], want.Sequences[i][j])
			}
		}
	}
}

// TestPoolHitsAndMisses pins the same segment twice under an unlimited
// budget: one miss, one hit, no evictions.
func TestPoolHitsAndMisses(t *testing.T) {
	st := buildStore(t, 2, 2, 12)
	p := cache.New(st, cache.Options{})
	for round := 0; round < 2; round++ {
		sg, err := p.Pin(0)
		if err != nil {
			t.Fatal(err)
		}
		sg.Unpin()
	}
	m := p.Metrics()
	if m.Misses != 1 || m.Hits != 1 {
		t.Fatalf("metrics %v: want 1 miss, 1 hit", m)
	}
	if m.Evictions != 0 {
		t.Fatalf("unlimited budget evicted %d entries", m.Evictions)
	}
	if m.BodiesOpened != 1 || m.SegmentsOpened != 1 {
		t.Fatalf("metrics %v: want 1 body decode of 1 distinct segment", m)
	}
}

// TestPoolEviction cycles through every segment under a budget that holds
// roughly one of them: later pins evict earlier entries, re-pinning re-decodes,
// and the resident estimate returns to at most the budget once unpinned.
func TestPoolEviction(t *testing.T) {
	st := buildStore(t, 2, 4, 12)
	p := cache.New(st, cache.Options{})
	if p.NumSegments() < 4 {
		t.Fatalf("fixture sealed only %d segments", p.NumSegments())
	}
	// Size the budget off a real segment so the test tracks the estimator.
	sg, err := p.Pin(0)
	if err != nil {
		t.Fatal(err)
	}
	sg.Unpin()
	one := p.Metrics().PeakBytes

	p = cache.New(st, cache.Options{BudgetBytes: one + one/2})
	for i := 0; i < p.NumSegments(); i++ {
		sg, err := p.Pin(i)
		if err != nil {
			t.Fatal(err)
		}
		sg.Unpin()
	}
	m := p.Metrics()
	if m.Evictions == 0 {
		t.Fatalf("budget %d never evicted across %d segments: %v", one+one/2, p.NumSegments(), m)
	}
	if m.CurBytes > one+one/2 {
		t.Fatalf("resident %d bytes exceeds budget %d with nothing pinned", m.CurBytes, one+one/2)
	}
	// Re-pinning an evicted segment is a miss again.
	before := p.Metrics().Misses
	sg, err = p.Pin(0)
	if err != nil {
		t.Fatal(err)
	}
	sg.Unpin()
	if p.Metrics().Misses != before+1 {
		t.Fatal("evicted segment was served without a re-decode")
	}
}

// TestPoolPinnedNeverEvicted holds every segment pinned at once under a tiny
// budget: the pool must overshoot rather than evict a pinned entry, and every
// pinned view must stay valid.
func TestPoolPinnedNeverEvicted(t *testing.T) {
	st := buildStore(t, 2, 3, 12)
	p := cache.New(st, cache.Options{BudgetBytes: 1})
	var pins []*cache.Segment
	for i := 0; i < p.NumSegments(); i++ {
		sg, err := p.Pin(i)
		if err != nil {
			t.Fatal(err)
		}
		pins = append(pins, sg)
	}
	if m := p.Metrics(); m.Evictions != 0 {
		t.Fatalf("evicted %d entries while everything was pinned", m.Evictions)
	}
	for i, sg := range pins {
		if len(sg.Seqs) != p.Meta(i).NumTraces() {
			t.Fatalf("pinned segment %d shows %d traces want %d", i, len(sg.Seqs), p.Meta(i).NumTraces())
		}
		sg.Unpin()
	}
	// With all pins released the pool must shrink back under the budget (here:
	// evict everything, since no segment fits in one byte).
	if m := p.Metrics(); m.CurBytes > 1 {
		t.Fatalf("resident %d bytes after releasing all pins under a 1-byte budget", m.CurBytes)
	}
}

// TestPoolStatsResident loads stats for every segment without ever opening a
// body, then checks stats survive eviction of their data entry.
func TestPoolStatsResident(t *testing.T) {
	st := buildStore(t, 2, 3, 12)
	p := cache.New(st, cache.Options{BudgetBytes: 1})
	for i := 0; i < p.NumSegments(); i++ {
		s, err := p.Stats(i)
		if err != nil {
			t.Fatal(err)
		}
		if s.NumDistinctEvents() == 0 {
			t.Fatalf("segment %d stats empty", i)
		}
	}
	if m := p.Metrics(); m.BodiesOpened != 0 {
		t.Fatalf("loading stats decoded %d bodies", m.BodiesOpened)
	}
	// Cycle data through the 1-byte budget: every unpin evicts, but stats stay.
	for i := 0; i < p.NumSegments(); i++ {
		sg, err := p.Pin(i)
		if err != nil {
			t.Fatal(err)
		}
		sg.Unpin()
		if _, err := p.Stats(i); err != nil {
			t.Fatalf("stats for %d lost after eviction: %v", i, err)
		}
	}
}

// TestPoolFragment checks the per-segment index fragment agrees with a fresh
// build and is charged to the budget.
func TestPoolFragment(t *testing.T) {
	st := buildStore(t, 2, 2, 12)
	p := cache.New(st, cache.Options{})
	sg, err := p.Pin(0)
	if err != nil {
		t.Fatal(err)
	}
	defer sg.Unpin()
	bare := p.Metrics().CurBytes
	frag := sg.Fragment()
	if frag2 := sg.Fragment(); frag2 != frag {
		t.Fatal("second Fragment call rebuilt the index")
	}
	if p.Metrics().CurBytes <= bare {
		t.Fatal("fragment not charged to the budget")
	}
	want := seqdb.BuildPositionIndex(sg.Seqs, st.Dict().Size())
	for e := 0; e < st.Dict().Size(); e++ {
		a, b := frag.SeqsContaining(seqdb.EventID(e)), want.SeqsContaining(seqdb.EventID(e))
		if len(a) != len(b) {
			t.Fatalf("event %d: fragment lists %d seqs want %d", e, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("event %d seq %d: fragment %d want %d", e, i, a[i], b[i])
			}
		}
	}
}

// TestPoolConcurrentPins hammers the pool from several goroutines under a
// small budget; correctness is checked by trace counts and the race detector.
func TestPoolConcurrentPins(t *testing.T) {
	st := buildStore(t, 3, 3, 16)
	p := cache.New(st, cache.Options{BudgetBytes: 4 << 10})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for k := 0; k < 200; k++ {
				i := rng.Intn(p.NumSegments())
				sg, err := p.Pin(i)
				if err != nil {
					t.Errorf("pin %d: %v", i, err)
					return
				}
				if len(sg.Seqs) != p.Meta(i).NumTraces() {
					t.Errorf("segment %d: %d traces want %d", i, len(sg.Seqs), p.Meta(i).NumTraces())
				}
				if k%3 == 0 {
					sg.Fragment()
				}
				sg.Unpin()
			}
		}(int64(g))
	}
	wg.Wait()
	m := p.Metrics()
	if m.Hits+m.Misses != 8*200 {
		t.Fatalf("hits %d + misses %d != %d pins", m.Hits, m.Misses, 8*200)
	}
}
