package store

import (
	"math/rand"
	"testing"

	"specmine/internal/seqdb"
)

func statsEqual(t *testing.T, label string, got, want *SegmentStats) {
	t.Helper()
	if got.NumDistinctEvents() != want.NumDistinctEvents() {
		t.Fatalf("%s: %d distinct events want %d", label, got.NumDistinctEvents(), want.NumDistinctEvents())
	}
	for i, e := range want.events {
		if got.events[i] != e || got.occ[i] != want.occ[i] || got.traces[i] != want.traces[i] {
			t.Fatalf("%s: entry %d = (%d,%d,%d) want (%d,%d,%d)", label, i,
				got.events[i], got.occ[i], got.traces[i], e, want.occ[i], want.traces[i])
		}
	}
	for i := range want.bloom {
		if got.bloom[i] != want.bloom[i] {
			t.Fatalf("%s: bloom byte %d differs", label, i)
		}
	}
}

func TestSegmentStatsCompute(t *testing.T) {
	seqs := []seqdb.Sequence{
		{0, 1, 2, 2, 2, 3},
		{},
		{5, 4, 3, 2, 1, 0},
		{7, 7, 7, 7},
		{300, 2, 300, 300},
	}
	s := computeSegmentStats(seqs)
	wantOcc := map[seqdb.EventID][2]int64{
		0: {2, 2}, 1: {2, 2}, 2: {5, 3}, 3: {2, 2}, 4: {1, 1}, 5: {1, 1}, 7: {4, 1}, 300: {3, 1},
	}
	if s.NumDistinctEvents() != len(wantOcc) {
		t.Fatalf("%d distinct events want %d", s.NumDistinctEvents(), len(wantOcc))
	}
	for e, w := range wantOcc {
		occ, tr := s.Count(e)
		if occ != w[0] || tr != w[1] {
			t.Fatalf("Count(%d) = %d/%d want %d/%d", e, occ, tr, w[0], w[1])
		}
		if !s.MayContain(e) {
			t.Fatalf("MayContain(%d) = false for a present event", e)
		}
	}
	if occ, tr := s.Count(6); occ != 0 || tr != 0 {
		t.Fatalf("Count(6) = %d/%d for an absent event", occ, tr)
	}
	// MayContain must have no false negatives; spot-check the false positive
	// rate stays plausible on absent ids.
	fp := 0
	for e := seqdb.EventID(1000); e < 2000; e++ {
		if s.MayContain(e) {
			fp++
		}
	}
	if fp > 20 {
		t.Fatalf("bloom false positive rate %d/1000 with 8 distinct events", fp)
	}
}

func TestSegmentStatsRoundTripAndMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var parts [][]seqdb.Sequence
	var all []seqdb.Sequence
	for p := 0; p < 3; p++ {
		var seqs []seqdb.Sequence
		for i := 0; i < 10; i++ {
			seqs = append(seqs, randomTrace(rng, 50))
		}
		parts = append(parts, seqs)
		all = append(all, seqs...)
	}
	var partStats []*SegmentStats
	for _, seqs := range parts {
		s := computeSegmentStats(seqs)
		// Wire round trip.
		back, err := parseSegmentStats(appendSegmentStats(nil, s))
		if err != nil {
			t.Fatal(err)
		}
		statsEqual(t, "round trip", back, s)
		partStats = append(partStats, s)
	}
	merged := mergeSegmentStats(partStats)
	statsEqual(t, "merge", merged, computeSegmentStats(all))
}

// TestSegmentStatsCrashFuzz is the stats-footer crash-fuzz satellite:
// truncation at EVERY offset at or inside the stats block must leave the
// segment openable with stats absent — the lazy backfill path — never a
// failed open. Truncation inside the core must keep failing loudly.
func TestSegmentStatsCrashFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var seqs []seqdb.Sequence
	for i := 0; i < 25; i++ {
		seqs = append(seqs, randomTrace(rng, 40))
	}
	data := encodeSegment(seqs, 1, 0)
	coreLen := segmentCoreLen(data)
	if coreLen >= len(data) {
		t.Fatalf("fixture has no stats block (core %d, file %d)", coreLen, len(data))
	}

	for cut := coreLen; cut <= len(data); cut++ {
		v, err := parseSegment(data[:cut])
		if err != nil {
			t.Fatalf("cut %d (stats region): open failed: %v", cut, err)
		}
		wantStats := cut == len(data)
		if (v.stats != nil) != wantStats {
			t.Fatalf("cut %d: stats present=%v want %v", cut, v.stats != nil, wantStats)
		}
		got, err := v.decodeAll()
		if err != nil {
			t.Fatalf("cut %d: decode: %v", cut, err)
		}
		sequencesEqual(t, "stats-cut decode", got, seqs)
		// The backfill path must reproduce the sealed stats exactly.
		s, err := v.ensureStats()
		if err != nil {
			t.Fatalf("cut %d: backfill: %v", cut, err)
		}
		statsEqual(t, "backfill", s, computeSegmentStats(seqs))
	}

	// Every byte flip inside the stats block: open succeeds, stats dropped
	// (the block CRC catches the damage) or — only for the length-neutral
	// header — never silently wrong.
	for off := coreLen; off < len(data); off++ {
		corrupt := append([]byte(nil), data...)
		corrupt[off] ^= 0x01
		v, err := parseSegment(corrupt)
		if err != nil {
			t.Fatalf("flip %d (stats region): open failed: %v", off, err)
		}
		if v.stats != nil {
			t.Fatalf("flip %d: corrupted stats block accepted", off)
		}
	}

	// Truncation inside the core stays a failed open.
	for _, cut := range []int{coreLen - 1, coreLen - segTrailerLen, coreLen / 2, len(segMagic) + 3} {
		if _, err := parseSegment(data[:cut]); err == nil {
			t.Fatalf("cut %d (core): torn segment went undetected", cut)
		}
	}
}

// TestSegmentMergeStats: compaction's merged segment must carry stats equal
// to a fresh computation over the union, including when a part is a v1 file
// with no stats of its own (the migration path).
func TestSegmentMergeStats(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var all []seqdb.Sequence
	var parts [][]byte
	for p := 0; p < 3; p++ {
		var seqs []seqdb.Sequence
		for i := 0; i < 5; i++ {
			seqs = append(seqs, randomTrace(rng, 30))
		}
		img := encodeSegment(seqs, 0, len(all))
		if p == 1 {
			// Strip the stats block to model a legacy/damaged part: merge
			// must backfill it from the body.
			img = append([]byte(nil), img[:segmentCoreLen(img)]...)
		}
		parts = append(parts, img)
		all = append(all, seqs...)
	}
	merged, err := mergeSegments(parts)
	if err != nil {
		t.Fatal(err)
	}
	v, err := parseSegment(merged)
	if err != nil {
		t.Fatal(err)
	}
	if v.stats == nil {
		t.Fatal("merged segment has no stats")
	}
	statsEqual(t, "merged stats", v.stats, computeSegmentStats(all))
	got, err := v.decodeAll()
	if err != nil {
		t.Fatal(err)
	}
	sequencesEqual(t, "merged traces", got, all)
}
