package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"time"

	"specmine/internal/fsim"
	"specmine/internal/seqdb"
)

// Write-ahead log framing. A WAL file is a flat run of records, each framed
//
//	uint32 LE payload length | payload | uint32 LE CRC-32 (IEEE) of payload
//
// with the record type as the payload's first byte. The frame is the unit of
// atomicity: a reader accepts the longest prefix of intact frames and treats
// the first short or checksum-failing frame as the end of the log, so a crash
// mid-write can shorten the log but never corrupt what came before — the
// LogBase regime of sequential writes with recovery by prefix replay.
//
// Record types:
//
//	recHeader    uvarint formatVersion | uvarint shard | uvarint sealedBase
//	recDictName  name bytes (dictionary log only; the id is the record's rank)
//	recOpen      uvarint handle | trace id bytes
//	recEvents    uvarint handle | uvarint n | n x uvarint event id
//	recSeal      uvarint handle
//	recCommit    (empty) — generation commit marker, see below
//
// Handles are small integers assigned per WAL generation at trace open; they
// keep per-event records free of trace-id strings. sealedBase in the header
// is the number of sealed traces already covered by segment files when the
// generation was created: replay skips seal records up to the segment
// coverage and appends only the genuinely newer traces.
//
// recCommit guards against torn generation publishes. A fresh generation is
// created with its initial records (header + re-log of open traces) followed
// by one recCommit frame; everything later is appended past it. A rotation
// publish interrupted mid-copy (a non-atomic rename on a faulty filesystem)
// leaves a file whose surviving frame prefix is valid but incomplete — and
// since recovery prefers the highest generation number, such a file would
// silently shadow the intact predecessor and drop acked open traces. The
// marker makes the tear detectable: a generation without recCommit is
// discarded whenever an older generation survives to recover from. (A lone
// marker-less WAL is still accepted: nothing older exists to fall back to,
// and direct creation — a fresh shard — risks no predecessor either.)

const (
	recHeader   byte = 1
	recDictName byte = 2
	recOpen     byte = 3
	recEvents   byte = 4
	recSeal     byte = 5
	recCommit   byte = 6
)

const (
	walFormatVersion = 1
	// maxRecordBytes bounds a single record; anything larger in a length
	// prefix marks the frame — and therefore the rest of the file — corrupt.
	maxRecordBytes = 1 << 26
	// walFlushThreshold is how many buffered bytes a WAL accumulates before
	// group-committing to the OS on its own (barriers flush sooner).
	walFlushThreshold = 64 << 10
)

// appendFrame frames payload onto dst.
func appendFrame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = append(dst, payload...)
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
}

// openFrame reserves a frame's length prefix on buf and returns the payload
// start; the caller appends the payload and calls closeFrame. It is the
// free-standing twin of walFile.begin/end, used by the producer-side commit
// path to frame records into private scratch outside the shard ledger lock.
func openFrame(buf []byte) ([]byte, int) {
	buf = append(buf, 0, 0, 0, 0)
	return buf, len(buf)
}

// closeFrame backfills the length prefix of the frame whose payload begins at
// start and appends the checksum.
func closeFrame(buf []byte, start int) []byte {
	payload := buf[start:]
	binary.LittleEndian.PutUint32(buf[start-4:], uint32(len(payload)))
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
}

// scanFrames walks the intact frame prefix of data, invoking fn per payload,
// and returns the byte length of that prefix. Corruption or truncation ends
// the scan without error — the tail simply did not survive; an fn error
// aborts the scan and is returned.
func scanFrames(data []byte, fn func(payload []byte) error) (int, error) {
	off := 0
	for {
		if len(data)-off < 8 {
			return off, nil
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		if n > maxRecordBytes || len(data)-off < 8+n {
			return off, nil
		}
		payload := data[off+4 : off+4+n]
		if binary.LittleEndian.Uint32(data[off+4+n:]) != crc32.ChecksumIEEE(payload) {
			return off, nil
		}
		if err := fn(payload); err != nil {
			return off, err
		}
		off += 8 + n
	}
}

func encodeHeader(shard, sealedBase int) []byte {
	p := []byte{recHeader}
	p = binary.AppendUvarint(p, walFormatVersion)
	p = binary.AppendUvarint(p, uint64(shard))
	return binary.AppendUvarint(p, uint64(sealedBase))
}

func encodeDictName(name string) []byte {
	p := make([]byte, 0, 1+len(name))
	p = append(p, recDictName)
	return append(p, name...)
}

// The encode* helpers below are the single definition of each record's byte
// layout. They append to a caller-supplied buffer, so the ingest hot path
// reuses them between walFile.begin/end for zero-allocation in-place framing
// and the rotation/recovery paths call them with nil — one encoder per
// record type, one format.

func encodeOpen(dst []byte, handle uint64, id string) []byte {
	dst = append(dst, recOpen)
	dst = binary.AppendUvarint(dst, handle)
	return append(dst, id...)
}

func encodeEvents(dst []byte, handle uint64, events []seqdb.EventID) []byte {
	dst = append(dst, recEvents)
	dst = binary.AppendUvarint(dst, handle)
	dst = binary.AppendUvarint(dst, uint64(len(events)))
	for _, ev := range events {
		dst = binary.AppendUvarint(dst, uint64(ev))
	}
	return dst
}

func encodeSeal(dst []byte, handle uint64) []byte {
	dst = append(dst, recSeal)
	return binary.AppendUvarint(dst, handle)
}

// walFile is an append-only log file with an in-process group-commit buffer.
// Appends frame records into the buffer; flush writes the buffer to the OS in
// one write (and fsyncs when the store runs with Options.Sync). The owner
// serialises access (ShardLog.mu or dictLog.mu).
type walFile struct {
	path string
	f    fsim.File
	buf  []byte
	size int64 // bytes handed to the OS, excluding buf
	sync bool
	// met, when non-nil and enabled, observes every flush (latency, batch
	// size, fsync portion) into the store's registry.
	met *storeMetrics
}

func (w *walFile) append(payload []byte) {
	w.buf = appendFrame(w.buf, payload)
}

// begin/end frame a record in place in the group-commit buffer, so hot-path
// appends (one per ingested chunk) never allocate a payload slice: begin
// reserves the length prefix, the caller appends the payload directly onto
// w.buf, and end backfills the length and appends the checksum.
func (w *walFile) begin() int {
	w.buf = append(w.buf, 0, 0, 0, 0)
	return len(w.buf)
}

func (w *walFile) end(start int) {
	payload := w.buf[start:]
	binary.LittleEndian.PutUint32(w.buf[start-4:], uint32(len(payload)))
	w.buf = binary.LittleEndian.AppendUint32(w.buf, crc32.ChecksumIEEE(payload))
}

// pending reports the file's logical size including unflushed bytes.
func (w *walFile) pending() int64 { return w.size + int64(len(w.buf)) }

func (w *walFile) flush() error {
	if len(w.buf) == 0 {
		return nil
	}
	instrumented := w.met != nil && w.met.enabled
	var start time.Time
	if instrumented {
		w.met.walFlushBytes.Observe(int64(len(w.buf)))
		start = time.Now()
	}
	n, err := w.f.Write(w.buf)
	if err != nil {
		// Consume the prefix the OS accepted: a later retry must resume at
		// the exact byte boundary, or the re-written records would land
		// after a torn frame and be unreachable to recovery.
		w.size += int64(n)
		w.buf = append(w.buf[:0], w.buf[n:]...)
		return fmt.Errorf("store: flushing %s: %w", w.path, err)
	}
	if w.sync {
		var syncStart time.Time
		if instrumented {
			syncStart = time.Now()
		}
		err := w.f.Sync()
		if instrumented {
			w.met.walFsyncNs.Observe(time.Since(syncStart).Nanoseconds())
		}
		if err != nil {
			// The batch reached the OS but is not durable, and its tail
			// record may be one a caller is about to be told failed. Pull
			// the whole batch back out of the file so nothing unfsynced —
			// least of all a rejected record — can resurface at recovery;
			// the buffer keeps the bytes, so a retry resumes exactly here.
			_ = w.f.Truncate(w.size)
			return fmt.Errorf("store: syncing %s: %w", w.path, err)
		}
	}
	w.size += int64(n)
	w.buf = w.buf[:0]
	if instrumented {
		w.met.walFlushNs.Observe(time.Since(start).Nanoseconds())
	}
	return nil
}

func (w *walFile) close() error {
	err := w.flush()
	if cerr := w.f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("store: closing %s: %w", w.path, cerr)
	}
	return err
}

// createWALDirect creates a WAL file in place, without the temp-file +
// rename dance. Only valid when no predecessor generation exists — a fresh
// store or a fresh shard — where a crash mid-create loses nothing: the next
// open simply finds a short (or absent) log and starts over.
func createWALDirect(fs fsim.FS, path string, sync bool, records ...[]byte) (*walFile, error) {
	var buf []byte
	for _, r := range records {
		buf = appendFrame(buf, r)
	}
	buf = appendFrame(buf, []byte{recCommit})
	// O_APPEND matters beyond convenience: flush pulls unsynced batches back
	// with ftruncate on fsync failure, and appends must then continue at the
	// new end of file, not at a stale offset past it.
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", path, err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: writing %s: %w", path, err)
	}
	if sync {
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: syncing %s: %w", path, err)
		}
		// The machine-crash guarantee covers the file's existence too, not
		// just its contents.
		if err := syncDir(fs, path); err != nil {
			f.Close()
			return nil, err
		}
	}
	return &walFile{path: path, f: f, size: int64(len(buf)), sync: sync}, nil
}

// createWAL atomically creates a WAL file at path holding the given records
// (header first), replacing any previous file at that path last. The write
// goes through a temporary name so a crash can never leave a half-written
// file under the real name — required whenever an older generation still
// holds the data being re-logged.
func createWAL(fs fsim.FS, path string, sync bool, records ...[]byte) (*walFile, error) {
	tmp := path + ".tmp"
	var buf []byte
	for _, r := range records {
		buf = appendFrame(buf, r)
	}
	buf = appendFrame(buf, []byte{recCommit})
	if err := fs.WriteFile(tmp, buf, 0o644); err != nil {
		return nil, fmt.Errorf("store: writing %s: %w", tmp, err)
	}
	if sync {
		if err := syncFile(fs, tmp); err != nil {
			return nil, err
		}
	}
	if err := fs.Rename(tmp, path); err != nil {
		return nil, fmt.Errorf("store: publishing %s: %w", path, err)
	}
	if sync {
		if err := syncDir(fs, path); err != nil {
			return nil, err
		}
	}
	f, err := fs.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: reopening %s: %w", path, err)
	}
	return &walFile{path: path, f: f, size: int64(len(buf)), sync: sync}, nil
}

// walHasCommit reports whether the intact frame prefix of a WAL image carries
// the generation commit marker — i.e. the initial creation write survived in
// full, not just a torn prefix of it.
func walHasCommit(data []byte) bool {
	found := false
	_, _ = scanFrames(data, func(p []byte) error {
		if len(p) == 1 && p[0] == recCommit {
			found = true
		}
		return nil
	})
	return found
}

func syncFile(fs fsim.FS, path string) error {
	if err := fs.SyncPath(path); err != nil {
		return fmt.Errorf("store: fsync %s: %w", path, err)
	}
	return nil
}

func syncDir(fs fsim.FS, path string) error {
	return syncFile(fs, filepath.Dir(path))
}
