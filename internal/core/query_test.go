package core

import (
	"fmt"
	"reflect"
	"testing"

	"specmine/internal/seqdb"
	"specmine/internal/verify"
)

// queryRules mines a small rule set from the clustered store fixture's
// recovered database for the predicated-query tests.
func queryRules(t *testing.T, db *Database) []Rule {
	t.Helper()
	res, err := MineRules(db, RuleOptions{MinSeqSupportRel: 0.2, MinConfidence: 0.6,
		MaxPremiseLength: 2, MaxConsequentLength: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rules) == 0 {
		t.Fatal("fixture mined no rules")
	}
	return res.Rules
}

// checkWhereOracle runs the online automaton over exactly the selected
// traces, reporting global ordinals — the ground truth CheckWhere and
// CheckStoreWhere must match byte for byte.
func checkWhereOracle(t *testing.T, db *Database, ruleSet []Rule, where Where) verify.Summary {
	t.Helper()
	engine, err := verify.NewEngine(ruleSet)
	if err != nil {
		t.Fatal(err)
	}
	idx := db.FlatIndex()
	reports := engine.NewReports()
	checker := engine.NewChecker()
	for s := range db.Sequences {
		if !where.MatchesSeq(idx, s, s) {
			continue
		}
		for _, ev := range db.Sequences[s] {
			checker.Advance(ev)
		}
		checker.Close(s, reports)
	}
	return verify.NewSummary(reports)
}

func queryPredicates(db *Database) map[string]Where {
	open := db.Dict.Lookup("open")
	c0a := db.Dict.Lookup("c0_a")
	c2b := db.Dict.Lookup("c2_b")
	n := db.NumSequences()
	return map[string]Where{
		"all":      {},
		"window":   {From: n / 4, To: 3 * n / 4},
		"cluster0": {HasAll: []seqdb.EventID{c0a}},
		"c0-or-c2": {HasAny: []seqdb.EventID{c0a, c2b}},
		"open+c2b": {HasAll: []seqdb.EventID{open, c2b}, From: 5},
		"ids":      {IDs: []int{0, 1, n / 2, n - 1, n + 7}},
		"nothing":  {From: n, To: n},
		"no-event": {HasAll: []seqdb.EventID{seqdb.EventID(db.Dict.Size() + 3)}},
	}
}

func TestCheckWhereMatchesOracle(t *testing.T) {
	ts := buildSegmentedStore(t, 3, 4, 20)
	db := ts.Recovered().Database(ts.Dict())
	ruleSet := queryRules(t, db)

	for name, w := range queryPredicates(db) {
		want := checkWhereOracle(t, db, ruleSet, w)
		got, rep, err := CheckWhere(db, ruleSet, w)
		if err != nil {
			t.Fatalf("%s: CheckWhere: %v", name, err)
		}
		if got.Render(db.Dict, 5) != want.Render(db.Dict, 5) {
			t.Fatalf("%s: CheckWhere diverges from oracle:\n%s\nvs\n%s",
				name, got.Render(db.Dict, 5), want.Render(db.Dict, 5))
		}
		if rep == nil || rep.Explain == nil {
			t.Fatalf("%s: missing query report", name)
		}
		if int64(rep.Selected) != rep.Metrics.TracesChecked+rep.Metrics.TracesSkipped {
			t.Fatalf("%s: selected %d but checked %d + skipped %d", name,
				rep.Selected, rep.Metrics.TracesChecked, rep.Metrics.TracesSkipped)
		}
		if out := rep.Explain.Render(db.Dict); out == "" {
			t.Fatalf("%s: empty explain render", name)
		}
	}
}

// TestCheckWhereZeroEqualsCheckRules: with a zero Where the planned check is
// byte-identical to the batched facade path over the whole database.
func TestCheckWhereZeroEqualsCheckRules(t *testing.T) {
	ts := buildSegmentedStore(t, 2, 3, 16)
	db := ts.Recovered().Database(ts.Dict())
	ruleSet := queryRules(t, db)
	want, err := CheckRules(db, ruleSet)
	if err != nil {
		t.Fatal(err)
	}
	got, rep, err := CheckWhere(db, ruleSet, Where{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Render(db.Dict, 10) != want.Render(db.Dict, 10) {
		t.Fatalf("zero-Where CheckWhere diverges from CheckRules:\n%s\nvs\n%s",
			got.Render(db.Dict, 10), want.Render(db.Dict, 10))
	}
	if rep.Selected != db.NumSequences() {
		t.Fatalf("zero Where selected %d of %d traces", rep.Selected, db.NumSequences())
	}
}

func TestCheckStoreWhereMatchesInMemory(t *testing.T) {
	ts := buildSegmentedStore(t, 3, 4, 20)
	db := ts.Recovered().Database(ts.Dict())
	ruleSet := queryRules(t, db)

	for _, budget := range []int64{0, 2 << 10} {
		for name, w := range queryPredicates(db) {
			label := fmt.Sprintf("%s/budget=%d", name, budget)
			want := checkWhereOracle(t, db, ruleSet, w)
			got, ooStats, ex, err := CheckStoreWhere(ts, ruleSet, w, OutOfCoreOptions{CacheBytes: budget})
			if err != nil {
				t.Fatalf("%s: CheckStoreWhere: %v", label, err)
			}
			if got.Render(db.Dict, 5) != want.Render(db.Dict, 5) {
				t.Fatalf("%s: CheckStoreWhere diverges from in-memory oracle:\n%s\nvs\n%s",
					label, got.Render(db.Dict, 5), want.Render(db.Dict, 5))
			}
			if ex == nil || ex.SegmentsTotal != ooStats.SegmentsTotal {
				t.Fatalf("%s: explain/segment mismatch: %+v vs %+v", label, ex, ooStats)
			}
		}
	}

	// A cluster-local predicate must prune foreign segments at the catalog
	// level: session 0's events appear only in session 0's segments.
	w := Where{HasAll: []seqdb.EventID{db.Dict.Lookup("c0_a")}}
	_, _, ex, err := CheckStoreWhere(ts, ruleSet, w, OutOfCoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ex.SegmentsPruned == 0 {
		t.Fatalf("selective predicate pruned no segments: %+v", ex)
	}
}

// TestCheckStoreVerifyMetrics: the planned CheckStore populates the verifier
// work counters, and its trace accounting covers the whole store.
func TestCheckStoreVerifyMetrics(t *testing.T) {
	ts := buildSegmentedStore(t, 3, 4, 20)
	db := ts.Recovered().Database(ts.Dict())
	ruleSet := queryRules(t, db)
	_, ooStats, err := CheckStore(ts, ruleSet, OutOfCoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m := ooStats.Verify
	if m.TracesChecked+m.TracesSkipped != int64(db.NumSequences()) {
		t.Fatalf("trace accounting %d+%d != %d", m.TracesChecked, m.TracesSkipped, db.NumSequences())
	}
	if m.SegmentsChecked+m.SegmentsSkipped != int64(ooStats.SegmentsTotal) {
		t.Fatalf("segment accounting %d+%d != %d", m.SegmentsChecked, m.SegmentsSkipped, ooStats.SegmentsTotal)
	}
	if m.RuleTraceGates == 0 {
		t.Fatal("clustered fixture should gate some (rule, trace) pairs")
	}
}

func TestMineWhereMatchesFilteredMine(t *testing.T) {
	ts := buildSegmentedStore(t, 2, 3, 16)
	db := ts.Recovered().Database(ts.Dict())
	idx := db.FlatIndex()

	predicates := queryPredicates(db)
	for name, w := range predicates {
		// Oracle: a database holding exactly the selected traces.
		sub := seqdb.NewDatabaseWithDict(db.Dict)
		for s := range db.Sequences {
			if w.MatchesSeq(idx, s, s) {
				sub.Append(db.Sequences[s])
			}
		}

		popts := PatternOptions{MinSupportRel: 0.4, MaxLength: 3}
		want, err := MinePatterns(sub, popts)
		if err != nil {
			t.Fatal(err)
		}
		got, rep, err := MineWhere(db, popts, w)
		if err != nil {
			t.Fatalf("%s: MineWhere: %v", name, err)
		}
		want.Stats.Duration, got.Stats.Duration = 0, 0
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("%s: MineWhere diverges from mining the filtered database:\n got %+v\nwant %+v", name, got, want)
		}
		if rep.Selected != sub.NumSequences() {
			t.Fatalf("%s: selected %d want %d", name, rep.Selected, sub.NumSequences())
		}

		ropts := RuleOptions{MinSeqSupportRel: 0.5, MinConfidence: 0.7,
			MaxPremiseLength: 2, MaxConsequentLength: 2}
		wantR, err := MineRules(sub, ropts)
		if err != nil {
			t.Fatal(err)
		}
		gotR, _, err := MineRulesWhere(db, ropts, w)
		if err != nil {
			t.Fatalf("%s: MineRulesWhere: %v", name, err)
		}
		wantR.Stats.Duration, gotR.Stats.Duration = 0, 0
		if !reflect.DeepEqual(wantR, gotR) {
			t.Fatalf("%s: MineRulesWhere diverges:\n got %+v\nwant %+v", name, gotR, wantR)
		}
	}
}
