package core

import (
	"strings"
	"testing"

	"specmine/internal/seqdb"
	"specmine/internal/tracesim"
)

func TestLoadAndSaveTraces(t *testing.T) {
	db, err := LoadTraces(strings.NewReader("lock use unlock\nlock unlock\n"))
	if err != nil {
		t.Fatal(err)
	}
	if db.NumSequences() != 2 {
		t.Fatalf("NumSequences=%d", db.NumSequences())
	}
	dir := t.TempDir()
	path := dir + "/t.txt"
	if err := SaveTraceFile(path, db); err != nil {
		t.Fatal(err)
	}
	back, err := LoadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEvents() != db.NumEvents() {
		t.Errorf("round trip mismatch")
	}
}

func TestMinePatternsFacade(t *testing.T) {
	db := NewDatabase()
	db.AppendNames("lock", "use", "unlock")
	db.AppendNames("lock", "read", "unlock")
	db.AppendNames("lock", "unlock")

	closed, err := MinePatterns(db, PatternOptions{MinSupport: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !closed.Closed || closed.MinSupport != 3 {
		t.Errorf("closed result metadata wrong: %+v", closed)
	}
	foundLockUnlock := false
	for _, p := range closed.Patterns {
		if p.Pattern.String(db.Dict) == "<lock, unlock>" && p.Support == 3 {
			foundLockUnlock = true
		}
	}
	if !foundLockUnlock {
		t.Errorf("<lock, unlock> not mined by facade")
	}

	full, err := MinePatterns(db, PatternOptions{MinSupport: 3, Full: true})
	if err != nil {
		t.Fatal(err)
	}
	if full.Closed {
		t.Errorf("full result flagged as closed")
	}
	if len(full.Patterns) < len(closed.Patterns) {
		t.Errorf("full smaller than closed")
	}
	if _, err := MinePatterns(db, PatternOptions{}); err == nil {
		t.Errorf("invalid options accepted")
	}
}

func TestMineRulesFacadeAndLTL(t *testing.T) {
	db := NewDatabase()
	db.AppendNames("lock", "use", "unlock")
	db.AppendNames("lock", "write", "unlock")
	db.AppendNames("lock", "unlock")

	res, err := MineRules(db, RuleOptions{MinSeqSupport: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.NonRedundant {
		t.Errorf("default should be the non-redundant miner")
	}
	var lockRule *Rule
	for i, r := range res.Rules {
		if r.Pre.String(db.Dict) == "<lock>" && r.Post.String(db.Dict) == "<unlock>" {
			lockRule = &res.Rules[i]
		}
	}
	if lockRule == nil {
		t.Fatalf("lock -> unlock not mined; rules: %d", len(res.Rules))
	}
	formula, err := RuleToLTL(db.Dict, *lockRule)
	if err != nil {
		t.Fatal(err)
	}
	if formula != "G(lock -> XF(unlock))" {
		t.Errorf("LTL translation %q", formula)
	}
	desc, err := DescribeRule(db.Dict, *lockRule)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(desc, "whenever lock is called") {
		t.Errorf("description %q", desc)
	}
	if _, err := MineRules(db, RuleOptions{MinSeqSupport: -5}); err == nil {
		t.Errorf("invalid options accepted")
	}
	if _, err := RuleToLTL(db.Dict, Rule{}); err == nil {
		t.Errorf("RuleToLTL accepted empty rule")
	}
	if _, err := DescribeRule(db.Dict, Rule{}); err == nil {
		t.Errorf("DescribeRule accepted empty rule")
	}
}

func TestCheckRulesFacade(t *testing.T) {
	training := NewDatabase()
	training.AppendNames("lock", "use", "unlock")
	training.AppendNames("lock", "unlock")
	res, err := MineRules(training, RuleOptions{MinSeqSupport: 2, MinConfidence: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	fresh := seqdb.NewDatabaseWithDict(training.Dict.Clone())
	fresh.AppendNames("lock", "use")
	fresh.AppendNames("lock", "unlock")
	summary, err := CheckRules(fresh, res.Rules)
	if err != nil {
		t.Fatal(err)
	}
	if summary.TotalViolations() == 0 {
		t.Errorf("expected at least one violation in the fresh traces")
	}
	if out := summary.Render(fresh.Dict, 3); out == "" {
		t.Errorf("empty render")
	}
}

func TestRankingFacade(t *testing.T) {
	db := tracesim.LockingComponent().MustGenerate(30, 5)
	pats, err := MinePatterns(db, PatternOptions{MinSupport: 10})
	if err != nil {
		t.Fatal(err)
	}
	ranked := RankPatterns(db, pats.Patterns, 3)
	if len(ranked) == 0 || len(ranked) > 3 {
		t.Errorf("RankPatterns returned %d", len(ranked))
	}
	rulesRes, err := MineRules(db, RuleOptions{MinSeqSupport: 10, MinConfidence: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	rankedRules := RankRules(db, rulesRes.Rules, 5)
	if len(rankedRules) == 0 {
		t.Errorf("RankRules returned nothing")
	}
	for i := 1; i < len(rankedRules); i++ {
		if rankedRules[i-1].Score < rankedRules[i].Score {
			t.Errorf("rules not sorted by score")
		}
	}
}

func TestEvaluateRuleAndParsePattern(t *testing.T) {
	db := NewDatabase()
	db.AppendNames("a", "b")
	db.AppendNames("a", "c")
	r := EvaluateRule(db, ParsePattern(db.Dict, "a"), ParsePattern(db.Dict, "b"))
	if r.SeqSupport != 2 || r.Confidence != 0.5 {
		t.Errorf("EvaluateRule wrong: %+v", r)
	}
}

func TestEndToEndJBossSecurityRule(t *testing.T) {
	// Integration: mine the Figure 5 rule from simulated security traces via
	// the facade, then confirm it verifies cleanly on a fresh batch.
	db := tracesim.SecurityComponent().MustGenerate(60, 21)
	res, err := MineRules(db, RuleOptions{MinSeqSupportRel: 0.3, MinConfidence: 0.9, MaxPremiseLength: 2})
	if err != nil {
		t.Fatal(err)
	}
	pre := ParsePattern(db.Dict, strings.Join(tracesim.SecurityRulePremise(), " "))
	post := ParsePattern(db.Dict, strings.Join(tracesim.SecurityRuleConsequent(), " "))
	want := EvaluateRule(db, pre, post)
	covered := false
	for _, r := range res.Rules {
		if r.SeqSupport == want.SeqSupport && r.InstanceSupport == want.InstanceSupport &&
			pre.Concat(post).IsSubsequenceOf(r.Concat()) {
			covered = true
			break
		}
	}
	if !covered {
		t.Errorf("mined NR rule set does not cover the Figure 5 rule (%d rules)", len(res.Rules))
	}
}

func TestComparatorMinersFacade(t *testing.T) {
	db := tracesim.LockingComponent().MustGenerate(30, 5)

	seqRes, err := MineSequential(db, SeqPatternOptions{MinSupportRel: 0.8, MaxLength: 3, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(seqRes.Patterns) == 0 || seqRes.MinSupport != 24 {
		t.Fatalf("MineSequential: %d patterns, minsup %d", len(seqRes.Patterns), seqRes.MinSupport)
	}
	closedRes, err := MineSequential(db, SeqPatternOptions{MinSupportRel: 0.8, MaxLength: 3, Closed: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(closedRes.Patterns) == 0 || len(closedRes.Patterns) > len(seqRes.Patterns) {
		t.Fatalf("closed set size %d vs full %d", len(closedRes.Patterns), len(seqRes.Patterns))
	}

	epiRes, err := MineEpisodes(db, EpisodeOptions{WindowWidth: 4, MinFrequency: 0.05, MaxLength: 2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(epiRes.Episodes) == 0 || epiRes.TotalWindows == 0 {
		t.Fatalf("MineEpisodes: %d episodes, %d windows", len(epiRes.Episodes), epiRes.TotalWindows)
	}

	rankedSeq := RankSequential(db, seqRes.Patterns, 5)
	if len(rankedSeq) == 0 || len(rankedSeq) > 5 {
		t.Errorf("RankSequential returned %d", len(rankedSeq))
	}
	rankedEpi := RankEpisodes(db, epiRes.Episodes, 5)
	if len(rankedEpi) == 0 || len(rankedEpi) > 5 {
		t.Errorf("RankEpisodes returned %d", len(rankedEpi))
	}
	for i := 1; i < len(rankedEpi); i++ {
		if rankedEpi[i-1].Score < rankedEpi[i].Score {
			t.Errorf("episodes not sorted by score")
		}
	}
}

// TestComparatorMinersOverStreamedSnapshot is the comparator-study flow the
// unified kernel exists for: traces arrive through the streamer, and a
// consistent snapshot feeds all three miners — headline and comparators —
// at full speed.
func TestComparatorMinersOverStreamedSnapshot(t *testing.T) {
	w := tracesim.LockingComponent()
	batch := w.MustGenerate(20, 9)
	st, err := NewStreamer(StreamOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i, s := range batch.Sequences {
		names := make([]string, len(s))
		for j, ev := range s {
			names[j] = batch.Dict.Name(ev)
		}
		id := string(rune('a' + i%8))
		if err := st.Ingest(id+"-trace", names...); err != nil {
			t.Fatal(err)
		}
		if err := st.CloseTrace(id + "-trace"); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := st.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MinePatterns(snap, PatternOptions{MinSupportRel: 0.9, MaxLength: 3}); err != nil {
		t.Fatal(err)
	}
	seqRes, err := MineSequential(snap, SeqPatternOptions{MinSupportRel: 0.9, MaxLength: 3, Workers: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(seqRes.Patterns) == 0 {
		t.Errorf("no sequential patterns from streamed snapshot")
	}
	epiRes, err := MineEpisodes(snap, EpisodeOptions{WindowWidth: 4, MinFrequency: 0.05, MaxLength: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(epiRes.Episodes) == 0 {
		t.Errorf("no episodes from streamed snapshot")
	}
}
