package core

import (
	"specmine/internal/plan"
	"specmine/internal/seqdb"
	"specmine/internal/verify"
)

// Predicated (planned) queries: CheckWhere and MineWhere/MineRulesWhere run
// verification and mining over the subset of traces a Where predicate
// selects, compiled to lazy pull-based operators over the flat index — the
// rarest required event's postings drive enumeration, the rest become
// residual filters — instead of materialising candidate sets eagerly.
// Checking additionally goes through the statistics-driven planner, so every
// query returns a QueryReport with the verifier's work counters and a
// renderable Explain.

// Where selects traces for predicated queries; see plan.Where for the
// predicate fields (required/optional events, trace-ordinal windows, explicit
// ordinal lists). The zero value selects everything.
type Where = plan.Where

// Explain is the per-query plan report; see plan.Explain.
type Explain = plan.Explain

// QueryReport carries the planner's introspection for one predicated query.
type QueryReport struct {
	// Selected counts the traces the predicate admitted.
	Selected int
	// Metrics counts the verification work performed and avoided (zero for
	// pure mining queries, which do not run the verifier).
	Metrics verify.Metrics
	// Explain is the full plan: probe orders, estimated versus actual
	// selectivities, gating counters, selection operator. Render it with
	// Explain.Render(db.Dict).
	Explain *plan.Explain
}

// CheckWhere verifies ruleSet against the traces of db selected by where,
// through the statistics-driven planner: premise descent is ordered by
// postings selectivity, rules whose consequent cannot occur in a trace are
// short-circuited, and traces on which every rule is gated are answered from
// presence probes alone. Violations carry the traces' ordinals in db. With a
// zero Where this is a planned, byte-identical CheckRules — same summary,
// plus the QueryReport.
func CheckWhere(db *Database, ruleSet []Rule, where Where) (verify.Summary, *QueryReport, error) {
	engine, err := verify.NewEngine(ruleSet)
	if err != nil {
		return verify.Summary{}, nil, err
	}
	idx := db.FlatIndex()
	pl := plan.New(engine, plan.IndexStats{Idx: idx})
	it, sel := plan.CompileWhere(idx, where)
	reports := engine.NewReports()
	run := pl.NewRun(idx)
	selected := 0
	for s := it.Next(); s >= 0; s = it.Next() {
		run.CheckTrace(s, s, reports)
		selected++
	}
	ex := run.Explain()
	ex.Selection = &sel
	return verify.NewSummary(reports), &QueryReport{
		Selected: selected,
		Metrics:  run.Metrics,
		Explain:  ex,
	}, nil
}

// MineWhere mines iterative patterns over the traces of db selected by where.
// Results are byte-identical to MinePatterns over a database holding exactly
// the selected traces (in ordinal order); pattern statistics and any retained
// instances are therefore relative to the selection, with trace indices local
// to it.
func MineWhere(db *Database, opts PatternOptions, where Where) (*PatternResult, *QueryReport, error) {
	sub, rep := selectDatabase(db, where)
	res, err := MinePatterns(sub, opts)
	if err != nil {
		return nil, nil, err
	}
	return res, rep, nil
}

// MineRulesWhere mines recurrent rules over the traces of db selected by
// where; the MineWhere caveats about selection-relative statistics apply.
func MineRulesWhere(db *Database, opts RuleOptions, where Where) (*RuleResult, *QueryReport, error) {
	sub, rep := selectDatabase(db, where)
	res, err := MineRules(sub, opts)
	if err != nil {
		return nil, nil, err
	}
	return res, rep, nil
}

// selectDatabase drains the compiled selection into a sub-database sharing
// db's dictionary and sequence storage (headers only; event payloads are not
// copied).
func selectDatabase(db *Database, where Where) (*Database, *QueryReport) {
	idx := db.FlatIndex()
	it, sel := plan.CompileWhere(idx, where)
	sub := seqdb.NewDatabaseWithDict(db.Dict)
	selected := 0
	for s := it.Next(); s >= 0; s = it.Next() {
		sub.Append(db.Sequences[s])
		selected++
	}
	ex := &plan.Explain{PlannedTraces: idx.NumSequences(), Selection: &sel}
	return sub, &QueryReport{Selected: selected, Explain: ex}
}
