package core

import (
	"fmt"
	"path/filepath"
	"reflect"
	"testing"
)

// buildSegmentedStore ingests a clustered workload across several durable
// sessions — each open/close cycle canonicalises the shard WALs into one
// segment per shard — and reopens the store quiescent. Session s's traces mix
// a shared protocol (open/use/close, with occasional missing close) with
// session-local events c{s}_a / c{s}_b, so segments from different sessions
// have provably disjoint cluster alphabets: the raw material for skipping.
func buildSegmentedStore(t *testing.T, shards, sessions, perSession int) *TraceStore {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "traces")
	for s := 0; s < sessions; s++ {
		ts, err := OpenStore(dir, StoreOptions{Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		st, err := NewStreamer(StreamOptions{FlushBatch: 4, Store: ts})
		if err != nil {
			t.Fatal(err)
		}
		ca, cb := fmt.Sprintf("c%d_a", s), fmt.Sprintf("c%d_b", s)
		for i := 0; i < perSession; i++ {
			id := fmt.Sprintf("s%dtr%03d", s, i)
			evs := []string{"open", ca, cb, "use", "close"}
			if i%5 == 4 {
				evs = []string{"open", ca, "use"} // drops cb and close: violations
			}
			if err := st.Ingest(id, evs...); err != nil {
				t.Fatal(err)
			}
			if err := st.CloseTrace(id); err != nil {
				t.Fatal(err)
			}
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		if err := ts.Close(); err != nil {
			t.Fatal(err)
		}
	}
	ts, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ts.Close() })
	return ts
}

// TestOutOfCoreEquivalence checks that MineStore, MineStoreRules and
// CheckStore are byte-identical to the in-memory miners over the recovered
// database, across cache budgets (unlimited and starvation-tiny) and worker
// counts.
func TestOutOfCoreEquivalence(t *testing.T) {
	ts := buildSegmentedStore(t, 3, 4, 20)
	db := ts.Recovered().Database(ts.Dict())

	ruleSet, err := MineRules(db, RuleOptions{MinSeqSupportRel: 0.2, MinConfidence: 0.6,
		MaxPremiseLength: 2, MaxConsequentLength: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(ruleSet.Rules) == 0 {
		t.Fatal("fixture mined no rules")
	}
	wantCheck, err := CheckRules(db, ruleSet.Rules)
	if err != nil {
		t.Fatal(err)
	}
	if wantCheck.TotalViolations() == 0 {
		t.Fatal("fixture produced no violations")
	}

	for _, budget := range []int64{0, 2 << 10} {
		for _, workers := range []int{1, 4} {
			name := fmt.Sprintf("budget=%d/workers=%d", budget, workers)
			oo := OutOfCoreOptions{CacheBytes: budget}

			// Closed patterns with instances: exercises the closedness filter
			// and the local→global instance remap.
			popts := PatternOptions{MinSupportRel: 0.2, MaxLength: 4, KeepInstances: true, Workers: workers}
			want, err := MinePatterns(db, popts)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := MineStore(ts, popts, oo)
			if err != nil {
				t.Fatalf("%s: MineStore: %v", name, err)
			}
			want.Stats.Duration, got.Stats.Duration = 0, 0
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("%s: MineStore diverges from in-memory mining:\n got %+v\nwant %+v", name, got, want)
			}

			// Full (non-closed) patterns, no instances.
			popts = PatternOptions{MinSupportRel: 0.3, Full: true, MaxLength: 3, Workers: workers}
			want, err = MinePatterns(db, popts)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err = MineStore(ts, popts, oo)
			if err != nil {
				t.Fatalf("%s: MineStore full: %v", name, err)
			}
			want.Stats.Duration, got.Stats.Duration = 0, 0
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("%s: full MineStore diverges:\n got %+v\nwant %+v", name, got, want)
			}

			// Non-redundant rules.
			ropts := RuleOptions{MinSeqSupportRel: 0.2, MinConfidence: 0.6,
				MaxPremiseLength: 2, MaxConsequentLength: 2, Workers: workers}
			wantR, err := MineRules(db, ropts)
			if err != nil {
				t.Fatal(err)
			}
			gotR, _, err := MineStoreRules(ts, ropts, oo)
			if err != nil {
				t.Fatalf("%s: MineStoreRules: %v", name, err)
			}
			wantR.Stats.Duration, gotR.Stats.Duration = 0, 0
			if !reflect.DeepEqual(wantR, gotR) {
				t.Fatalf("%s: MineStoreRules diverges:\n got %+v\nwant %+v", name, gotR, wantR)
			}

			// Full rules.
			ropts.Full = true
			wantR, err = MineRules(db, ropts)
			if err != nil {
				t.Fatal(err)
			}
			gotR, _, err = MineStoreRules(ts, ropts, oo)
			if err != nil {
				t.Fatalf("%s: full MineStoreRules: %v", name, err)
			}
			wantR.Stats.Duration, gotR.Stats.Duration = 0, 0
			if !reflect.DeepEqual(wantR, gotR) {
				t.Fatalf("%s: full MineStoreRules diverges:\n got %+v\nwant %+v", name, gotR, wantR)
			}

			// Conformance checking.
			gotC, _, err := CheckStore(ts, ruleSet.Rules, oo)
			if err != nil {
				t.Fatalf("%s: CheckStore: %v", name, err)
			}
			if gotC.Render(db.Dict, 5) != wantCheck.Render(db.Dict, 5) {
				t.Fatalf("%s: CheckStore diverges from CheckRules:\n%s\nvs\n%s",
					name, gotC.Render(db.Dict, 5), wantCheck.Render(db.Dict, 5))
			}
		}
	}
}

// TestOutOfCoreLazyOpen: a store opened with StoreOptions.OutOfCore holds no
// sealed traces in memory, refuses a streamer, and still mines and checks
// byte-identically to an eager open of the same directory.
func TestOutOfCoreLazyOpen(t *testing.T) {
	ts := buildSegmentedStore(t, 2, 3, 20)
	dir := ts.Dir()
	db := ts.Recovered().Database(ts.Dict())

	popts := PatternOptions{MinSupportRel: 0.2, MaxLength: 4}
	wantP, err := MinePatterns(db, popts)
	if err != nil {
		t.Fatal(err)
	}
	ropts := RuleOptions{MinSeqSupportRel: 0.2, MinConfidence: 0.6,
		MaxPremiseLength: 2, MaxConsequentLength: 2}
	wantR, err := MineRules(db, ropts)
	if err != nil {
		t.Fatal(err)
	}
	wantC, err := CheckRules(db, wantR.Rules)
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.Close(); err != nil {
		t.Fatal(err)
	}

	lazy, err := OpenStore(dir, StoreOptions{OutOfCore: true})
	if err != nil {
		t.Fatal(err)
	}
	defer lazy.Close()
	if n := lazy.Recovered().NumSealed(); n != 0 {
		t.Fatalf("lazy open materialised %d sealed traces", n)
	}
	if _, err := NewStreamer(StreamOptions{Store: lazy}); err == nil {
		t.Fatal("lazy-open store accepted a streamer")
	}

	oo := OutOfCoreOptions{CacheBytes: 2 << 10}
	gotP, _, err := MineStore(lazy, popts, oo)
	if err != nil {
		t.Fatal(err)
	}
	wantP.Stats.Duration, gotP.Stats.Duration = 0, 0
	if !reflect.DeepEqual(wantP, gotP) {
		t.Fatalf("lazy MineStore diverges:\n got %+v\nwant %+v", gotP, wantP)
	}
	gotR, _, err := MineStoreRules(lazy, ropts, oo)
	if err != nil {
		t.Fatal(err)
	}
	wantR.Stats.Duration, gotR.Stats.Duration = 0, 0
	if !reflect.DeepEqual(wantR, gotR) {
		t.Fatalf("lazy MineStoreRules diverges:\n got %+v\nwant %+v", gotR, wantR)
	}
	gotC, _, err := CheckStore(lazy, wantR.Rules, oo)
	if err != nil {
		t.Fatal(err)
	}
	if gotC.Render(db.Dict, 5) != wantC.Render(db.Dict, 5) {
		t.Fatalf("lazy CheckStore diverges:\n%s\nvs\n%s",
			gotC.Render(db.Dict, 5), wantC.Render(db.Dict, 5))
	}
}

// TestOutOfCoreSegmentSkipping checks that a rule set touching only one
// session's cluster events opens only that session's segments, and that the
// answers still match the in-memory check exactly.
func TestOutOfCoreSegmentSkipping(t *testing.T) {
	const shards, sessions = 3, 6
	ts := buildSegmentedStore(t, shards, sessions, 20)
	db := ts.Recovered().Database(ts.Dict())

	// Rules over session-0 cluster events only: c0_a -> c0_b (violated by the
	// every-5th truncated trace) plus c0_b -> use.
	selective := []Rule{
		EvaluateRule(db, ParsePattern(db.Dict, "c0_a"), ParsePattern(db.Dict, "c0_b")),
		EvaluateRule(db, ParsePattern(db.Dict, "c0_b"), ParsePattern(db.Dict, "use")),
	}
	want, err := CheckRules(db, selective)
	if err != nil {
		t.Fatal(err)
	}
	if want.TotalViolations() == 0 {
		t.Fatal("selective rules produced no violations")
	}
	got, stats, err := CheckStore(ts, selective, OutOfCoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Render(db.Dict, 5) != want.Render(db.Dict, 5) {
		t.Fatalf("skipping check diverges:\n%s\nvs\n%s", got.Render(db.Dict, 5), want.Render(db.Dict, 5))
	}
	// Only session 0's segments (one per shard) contain c0_a/c0_b; everything
	// else must be answered from stats alone.
	if want := stats.SegmentsTotal - shards; stats.SegmentsSkipped < want {
		t.Fatalf("skipped %d of %d segments, want at least %d: %+v",
			stats.SegmentsSkipped, stats.SegmentsTotal, want, stats)
	}
	if stats.BodiesOpened > int64(shards) {
		t.Fatalf("opened %d segment bodies, want at most %d", stats.BodiesOpened, shards)
	}
}

// TestOutOfCoreMiningSkipsSegments mines a store whose sessions share no
// events, with a support threshold only the first (large) session's events
// meet: every seed's view lives in session 0, so the other sessions' segment
// bodies are never decoded — and the result still matches in-memory mining.
func TestOutOfCoreMiningSkipsSegments(t *testing.T) {
	const shards = 2
	dir := filepath.Join(t.TempDir(), "traces")
	sizes := []int{40, 10, 10, 10, 10}
	for s, n := range sizes {
		ts, err := OpenStore(dir, StoreOptions{Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		st, err := NewStreamer(StreamOptions{FlushBatch: 4, Store: ts})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			id := fmt.Sprintf("s%dtr%03d", s, i)
			evs := []string{
				fmt.Sprintf("c%d_open", s), fmt.Sprintf("c%d_op%d", s, i%3),
				fmt.Sprintf("c%d_use", s), fmt.Sprintf("c%d_close", s),
			}
			if err := st.Ingest(id, evs...); err != nil {
				t.Fatal(err)
			}
			if err := st.CloseTrace(id); err != nil {
				t.Fatal(err)
			}
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		if err := ts.Close(); err != nil {
			t.Fatal(err)
		}
	}
	ts, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	db := ts.Recovered().Database(ts.Dict())

	// Only session 0's c0_open/c0_use/c0_close reach 20 occurrences.
	popts := PatternOptions{MinSupport: 20, MaxLength: 4}
	want, err := MinePatterns(db, popts)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Patterns) == 0 {
		t.Fatal("fixture mined no patterns")
	}
	got, stats, err := MineStore(ts, popts, OutOfCoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want.Stats.Duration, got.Stats.Duration = 0, 0
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("selective MineStore diverges:\n got %+v\nwant %+v", got, want)
	}
	if skipWant := stats.SegmentsTotal - shards; stats.SegmentsSkipped < skipWant {
		t.Fatalf("skipped %d of %d segments, want at least %d: %+v",
			stats.SegmentsSkipped, stats.SegmentsTotal, skipWant, stats)
	}
}
