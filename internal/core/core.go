// Package core is the facade of the specmine library: a small, stable entry
// point that ties together trace loading, iterative pattern mining
// (Section 4 of the paper), recurrent rule mining (Section 5), LTL
// translation (Section 3.3) and conformance checking. The examples and
// command-line tools are written against this package; the specialised
// internal packages remain available for callers that need finer control.
package core

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"

	"specmine/internal/episode"
	"specmine/internal/iterpattern"
	"specmine/internal/ltl"
	"specmine/internal/obs"
	"specmine/internal/rank"
	"specmine/internal/rules"
	"specmine/internal/seqdb"
	"specmine/internal/seqpattern"
	"specmine/internal/store"
	"specmine/internal/stream"
	"specmine/internal/verify"
)

// Re-exported basic types so that facade users rarely need to import the
// lower-level packages directly.
type (
	// Database is a sequence database of program traces.
	Database = seqdb.Database
	// Dictionary interns event names.
	Dictionary = seqdb.Dictionary
	// Pattern is a series of events.
	Pattern = seqdb.Pattern
	// Rule is a mined recurrent rule.
	Rule = rules.Rule
	// MinedPattern is a mined iterative pattern.
	MinedPattern = iterpattern.MinedPattern
	// SeqPattern is a mined sequential pattern (the Section 2 comparator).
	SeqPattern = seqpattern.MinedPattern
	// Episode is a mined serial episode (the Sections 1–2 comparator).
	Episode = episode.Episode
)

// LoadTraces reads the textual trace format (one trace per line, events
// separated by whitespace) from r.
func LoadTraces(r io.Reader) (*Database, error) { return seqdb.ReadTraces(r) }

// LoadTraceFile reads the textual trace format from a file.
func LoadTraceFile(path string) (*Database, error) { return seqdb.ReadTraceFile(path) }

// SaveTraceFile writes db to path in the textual trace format.
func SaveTraceFile(path string, db *Database) error { return seqdb.WriteTraceFile(path, db) }

// NewDatabase returns an empty trace database.
func NewDatabase() *Database { return seqdb.NewDatabase() }

// ParsePattern interns the space-separated event names in spec.
func ParsePattern(dict *Dictionary, spec string) Pattern { return seqdb.ParsePattern(dict, spec) }

// PatternOptions configures iterative pattern mining through the facade.
type PatternOptions struct {
	// MinSupport is the absolute minimum instance support; ignored when
	// MinSupportRel is set.
	MinSupport int
	// MinSupportRel is the minimum instance support as a fraction of the
	// number of sequences (the paper's relative thresholds).
	MinSupportRel float64
	// Closed selects the closed-pattern miner (the default mines the closed
	// set; set Full to true for the complete frequent set).
	Full bool
	// MaxLength bounds pattern length (0 = unlimited).
	MaxLength int
	// KeepInstances retains the instance list of each mined pattern.
	KeepInstances bool
	// Workers bounds the parallel worker pool (0/1 sequential, negative =
	// GOMAXPROCS). Results are identical for any value.
	Workers int
}

// PatternResult is the facade view of a pattern mining run.
type PatternResult struct {
	// Patterns are the mined patterns, sorted by support.
	Patterns []MinedPattern
	// Closed records whether the closed miner produced the result.
	Closed bool
	// MinSupport is the absolute threshold that was applied.
	MinSupport int
	// Stats carries the miner's internal counters.
	Stats iterpattern.Stats
}

// MinePatterns mines iterative patterns from db.
func MinePatterns(db *Database, opts PatternOptions) (*PatternResult, error) {
	iopts := iterpattern.Options{
		MinInstanceSupport: opts.MinSupport,
		MinSupportRel:      opts.MinSupportRel,
		MaxPatternLength:   opts.MaxLength,
		IncludeInstances:   opts.KeepInstances,
		Workers:            opts.Workers,
	}
	res, err := iterpattern.Mine(db, iopts, !opts.Full)
	if err != nil {
		return nil, fmt.Errorf("mining iterative patterns: %w", err)
	}
	return &PatternResult{
		Patterns:   res.Patterns,
		Closed:     !opts.Full,
		MinSupport: res.MinSupport,
		Stats:      res.Stats,
	}, nil
}

// RuleOptions configures recurrent rule mining through the facade.
type RuleOptions struct {
	// MinSeqSupport is the absolute minimum s-support; ignored when
	// MinSeqSupportRel is set.
	MinSeqSupport int
	// MinSeqSupportRel is the minimum s-support as a fraction of the number
	// of sequences.
	MinSeqSupportRel float64
	// MinInstanceSupport is the minimum i-support (default 1).
	MinInstanceSupport int
	// MinConfidence is the minimum confidence (default 0.9).
	MinConfidence float64
	// Full mines every significant rule instead of the non-redundant set.
	Full bool
	// MaxPremiseLength and MaxConsequentLength bound the rule shape.
	MaxPremiseLength    int
	MaxConsequentLength int
	// Workers bounds the parallel worker pool (0/1 sequential, negative =
	// GOMAXPROCS). Results are identical for any value.
	Workers int
}

// RuleResult is the facade view of a rule mining run.
type RuleResult struct {
	// Rules are the mined rules, sorted by confidence and support.
	Rules []Rule
	// NonRedundant records whether redundancy removal was applied.
	NonRedundant bool
	// Stats carries the miner's internal counters.
	Stats rules.Stats
}

// MineRules mines recurrent rules from db.
func MineRules(db *Database, opts RuleOptions) (*RuleResult, error) {
	if opts.MinInstanceSupport == 0 {
		opts.MinInstanceSupport = 1
	}
	if opts.MinConfidence == 0 {
		opts.MinConfidence = 0.9
	}
	ropts := rules.Options{
		MinSeqSupport:       opts.MinSeqSupport,
		MinSeqSupportRel:    opts.MinSeqSupportRel,
		MinInstanceSupport:  opts.MinInstanceSupport,
		MinConfidence:       opts.MinConfidence,
		MaxPremiseLength:    opts.MaxPremiseLength,
		MaxConsequentLength: opts.MaxConsequentLength,
		Workers:             opts.Workers,
	}
	res, err := rules.Mine(db, ropts, !opts.Full)
	if err != nil {
		return nil, fmt.Errorf("mining recurrent rules: %w", err)
	}
	return &RuleResult{Rules: res.Rules, NonRedundant: !opts.Full, Stats: res.Stats}, nil
}

// SeqPatternOptions configures sequential pattern mining (the PrefixSpan
// comparator of Section 2) through the facade.
type SeqPatternOptions struct {
	// MinSupport is the absolute minimum sequence support; ignored when
	// MinSupportRel is set.
	MinSupport int
	// MinSupportRel is the minimum sequence support as a fraction of the
	// number of sequences.
	MinSupportRel float64
	// Closed keeps only closed sequential patterns.
	Closed bool
	// MaxLength bounds pattern length (0 = unlimited).
	MaxLength int
	// Workers bounds the parallel worker pool (0/1 sequential, negative =
	// GOMAXPROCS). Results are identical for any value.
	Workers int
}

// SeqPatternResult is the facade view of a sequential pattern mining run.
type SeqPatternResult struct {
	// Patterns are the mined patterns, sorted by support.
	Patterns []SeqPattern
	// MinSupport is the absolute threshold that was applied.
	MinSupport int
}

// MineSequential mines classic sequential patterns from db: support counts
// the sequences containing a pattern as a subsequence. It runs on the same
// flat index and count-first search framework as the headline miners, so
// comparator studies over streamed snapshots run at full speed.
func MineSequential(db *Database, opts SeqPatternOptions) (*SeqPatternResult, error) {
	res, err := seqpattern.Mine(db, seqpattern.Options{
		MinSeqSupport:    opts.MinSupport,
		MinSupportRel:    opts.MinSupportRel,
		MaxPatternLength: opts.MaxLength,
		ClosedOnly:       opts.Closed,
		Workers:          opts.Workers,
	})
	if err != nil {
		return nil, fmt.Errorf("mining sequential patterns: %w", err)
	}
	return &SeqPatternResult{Patterns: res.Patterns, MinSupport: res.MinSupport}, nil
}

// EpisodeOptions configures window-based episode mining (the WINEPI
// comparator of Sections 1–2) through the facade.
type EpisodeOptions struct {
	// WindowWidth is the sliding-window width in events (>= 1).
	WindowWidth int
	// MinFrequency is the minimum fraction of windows containing an episode,
	// in (0, 1].
	MinFrequency float64
	// MaxLength bounds episode length (0 = bounded only by the window).
	MaxLength int
	// Workers bounds the parallel worker pool (0/1 sequential, negative =
	// GOMAXPROCS). Results are identical for any value.
	Workers int
}

// EpisodeResult is the facade view of an episode mining run.
type EpisodeResult struct {
	// Episodes are the mined episodes, sorted by window count.
	Episodes []Episode
	// TotalWindows is the number of sliding windows observed.
	TotalWindows int
}

// MineEpisodes mines serial episodes across every trace of db, merging
// window counts per episode (the episode-style view of a trace database the
// ablation studies compare against).
func MineEpisodes(db *Database, opts EpisodeOptions) (*EpisodeResult, error) {
	res, err := episode.MineDatabase(db, episode.Options{
		WindowWidth:      opts.WindowWidth,
		MinFrequency:     opts.MinFrequency,
		MaxEpisodeLength: opts.MaxLength,
		Workers:          opts.Workers,
	})
	if err != nil {
		return nil, fmt.Errorf("mining episodes: %w", err)
	}
	return &EpisodeResult{Episodes: res.Episodes, TotalWindows: res.TotalWindows}, nil
}

// RuleToLTL translates a rule into its LTL formula (Table 2) rendered with
// the database's event names.
func RuleToLTL(dict *Dictionary, rule Rule) (string, error) {
	f, err := ltl.FromRule(rule.Pre, rule.Post)
	if err != nil {
		return "", err
	}
	return f.String(dict), nil
}

// DescribeRule returns the English reading of a rule's LTL formula (Table 1
// style).
func DescribeRule(dict *Dictionary, rule Rule) (string, error) {
	f, err := ltl.FromRule(rule.Pre, rule.Post)
	if err != nil {
		return "", err
	}
	return ltl.Describe(f, dict), nil
}

// Verifier is a rule set compiled for batched conformance checking: the
// premises share one prefix trie and every trace is scanned once for the
// whole set. Compile once with CompileRules, then serve any number of trace
// batches through Check.
type Verifier = verify.Engine

// CompileRules compiles a mined (or hand-written) rule set into a reusable
// batched Verifier. Use it on serving paths that check a stream of trace
// batches against a fixed specification; one-shot callers can use CheckRules
// directly.
func CompileRules(ruleSet []Rule) (*Verifier, error) {
	return verify.NewEngine(ruleSet)
}

// CheckRules verifies mined rules against (typically fresh) traces and
// returns a conformance summary with per-rule violation details. The rule
// set is checked in one batched pass per trace.
func CheckRules(db *Database, ruleSet []Rule) (verify.Summary, error) {
	reports, err := verify.CheckRules(db, ruleSet)
	if err != nil {
		return verify.Summary{}, err
	}
	return verify.NewSummary(reports), nil
}

// TraceStore is a durable log-structured trace store: per-shard write-ahead
// logs, sealed block-compressed segment files, and crash recovery. Open one
// with OpenStore and attach it to a Streamer (StreamOptions.Store or
// Streamer.WithStore) for durable ingestion, or use Recover for one-shot
// cold-start mining over a store left behind by an earlier process.
type TraceStore = store.Store

// Health is a snapshot of a store's failure-model state: its degradation
// ladder position, the operative error, and the retry/fault counters. See
// the store package's failure-model documentation for the full contract.
type Health = store.Health

// HealthState is a rung of the degradation ladder.
type HealthState = store.HealthState

// Degradation ladder states, re-exported for facade callers.
const (
	// StoreHealthy: every durability promise holds.
	StoreHealthy = store.Healthy
	// StoreDegradedReadOnly: a permanent I/O fault stopped durable ingest;
	// snapshots, mining, and online checking continue from memory.
	StoreDegradedReadOnly = store.DegradedReadOnly
	// StoreFailed: an internal invariant was violated; reads refuse too.
	StoreFailed = store.Failed
)

// Typed failure-mode errors, matchable with errors.Is on anything the
// store or a durable Streamer returns after degrading.
var (
	// ErrStoreDegraded wraps every error returned by writes against a
	// degraded read-only store.
	ErrStoreDegraded = store.ErrDegraded
	// ErrStoreFailed wraps every error returned by a failed store.
	ErrStoreFailed = store.ErrFailed
)

// StoreOptions configures OpenStore.
type StoreOptions struct {
	// Shards fixes the store's shard count at creation (default 4). Reopening
	// an existing store with a different non-zero value is an error; 0 always
	// means "whatever the store has".
	Shards int
	// Sync extends durability from process crashes to machine crashes by
	// fsyncing every flush barrier — at a heavy throughput cost.
	Sync bool
	// OutOfCore opens the store without materialising sealed trace bodies:
	// segments are checksum-validated but stay on disk until MineStore /
	// MineStoreRules / CheckStore pin them, so opening a store much larger
	// than RAM is metadata-cheap. Recovered() then reports open traces only,
	// and attaching a streamer is refused.
	OutOfCore bool
	// Obs, when non-nil, attaches a metrics registry: the store publishes
	// commit counters, WAL flush/fsync latency histograms, segment-publish
	// and compaction timings, and failure-model transitions to it. Nil keeps
	// instrumentation at its near-zero disabled cost.
	Obs *obs.Registry
}

// OpenStore opens (creating if needed) the durable trace store at dir and
// recovers its state: the event dictionary, every sealed trace, and the
// traces that were still open mid-ingestion when the previous process died.
func OpenStore(dir string, opts StoreOptions) (*TraceStore, error) {
	return store.Open(store.Options{Dir: dir, Shards: opts.Shards, Sync: opts.Sync, OutOfCore: opts.OutOfCore, Obs: opts.Obs})
}

// Recover is the cold-start path: it opens the store at dir, merges every
// recovered sealed trace into one Database (shard-major, exactly the view a
// pre-crash Snapshot produced), closes the store again and returns the
// database — ready for MinePatterns/MineRules/CheckRules over historical
// traffic. The database's dictionary carries the store's stable event ids,
// so rules mined here remain valid against the store's future contents.
func Recover(dir string) (*Database, error) {
	if _, err := os.Stat(filepath.Join(dir, "MANIFEST.json")); err != nil {
		return nil, fmt.Errorf("core: no trace store at %s: %w", dir, err)
	}
	st, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		return nil, err
	}
	db := st.Recovered().Database(st.Dict())
	if err := st.Close(); err != nil {
		return nil, err
	}
	return db, nil
}

// StreamOptions configures a streaming ingestion session through the facade.
type StreamOptions struct {
	// Shards is the number of ingestion shards (default 4). With Store set,
	// the store's fixed shard count wins and a different non-zero value here
	// is an error.
	Shards int
	// Buffer is the per-shard channel capacity (default 256); full buffers
	// apply backpressure to Ingest callers.
	Buffer int
	// FlushBatch is how many sealed traces a shard batches before extending
	// its positional index incrementally (default 32). In durable mode this
	// is also the segment-flush barrier.
	FlushBatch int
	// Dict shares a dictionary with previously mined artifacts. It is
	// required when Rules is set (unless Store supplies the dictionary): the
	// rules' event ids must come from it.
	Dict *Dictionary
	// Rules, when non-empty, is compiled into an online conformance engine
	// that checks every trace as its events arrive.
	Rules []Rule
	// Store, when non-nil, makes the session durable: operations are
	// write-ahead logged before acknowledgement, sealed traces roll into
	// segment files, and the streamer starts from the store's recovered
	// state — sealed traces, open traces, and conformance outcomes included.
	Store *TraceStore
	// Obs, when non-nil, attaches a metrics registry: the session publishes
	// per-shard ingest/flush latency histograms, queue depths, backpressure
	// waits and acked-event counters to it (series stream.*). Share one
	// registry between StreamOptions.Obs and StoreOptions.Obs to scrape the
	// whole pipeline from a single ServeDebug endpoint.
	Obs *obs.Registry
}

// Streamer ingests live traces: events arrive incrementally per trace id,
// terminated traces are sealed into sharded databases with incrementally
// maintained indexes, and consistent snapshots feed the batch miners. With
// Rules configured, conformance is checked online and CheckOnline returns
// the summary a batch CheckRules over Snapshot() would produce.
type Streamer struct {
	cfg      stream.Config // as compiled by NewStreamer (engine included)
	dict     *Dictionary   // the dictionary the rules were expressed in, if any
	ing      *stream.Ingester
	hasRules bool
	used     atomic.Bool
}

// NewStreamer starts a streaming ingestion session.
func NewStreamer(opts StreamOptions) (*Streamer, error) {
	cfg := stream.Config{
		Shards:     opts.Shards,
		Buffer:     opts.Buffer,
		FlushBatch: opts.FlushBatch,
		Dict:       opts.Dict,
		Obs:        opts.Obs,
	}
	if len(opts.Rules) > 0 {
		if opts.Dict == nil && opts.Store == nil {
			return nil, errors.New("core: StreamOptions.Rules requires the dictionary the rules were mined against (or a Store supplying it)")
		}
		engine, err := verify.NewEngine(opts.Rules)
		if err != nil {
			return nil, fmt.Errorf("compiling online rule set: %w", err)
		}
		cfg.Engine = engine
	}
	if opts.Store != nil {
		// Everything that can still fail is validated before adoptDict: the
		// store's dictionary log is durable, so a doomed configuration must
		// not write the caller's names into it on its way to the error.
		if opts.Shards != 0 && opts.Shards != opts.Store.NumShards() {
			return nil, fmt.Errorf("core: StreamOptions.Shards is %d but the store was created with %d shards", opts.Shards, opts.Store.NumShards())
		}
		if err := adoptDict(opts.Store, opts.Dict); err != nil {
			return nil, err
		}
		cfg.Dict = nil // the store's dictionary takes over; ids proven equal
		cfg.Store = opts.Store
	}
	ing, err := stream.Open(cfg)
	if err != nil {
		return nil, err
	}
	return &Streamer{cfg: cfg, dict: opts.Dict, ing: ing, hasRules: len(opts.Rules) > 0}, nil
}

// adoptDict reconciles a caller-supplied dictionary (for example the one a
// rule set was mined against, possibly via Recover on this very store) with
// the store's durable dictionary, so that interning the names in id order
// reproduces the caller's ids exactly — on a fresh store it always does, and
// on the store the rules came from it is a no-op. Validation runs before any
// interning: the store's dictionary log is durable, so a failed
// reconciliation must not leave foreign names permanently occupying ids.
func adoptDict(ts *TraceStore, dict *Dictionary) error {
	if dict == nil {
		return nil
	}
	names := dict.Export()
	existing := ts.Dict().Export()
	for i, name := range names {
		if i < len(existing) {
			if existing[i] != name {
				return fmt.Errorf("core: store dictionary assigns id %d to %q where the supplied dictionary has %q — the store holds a different event stream", i, existing[i], name)
			}
		} else if id := ts.Dict().Lookup(name); id != seqdb.NoEvent {
			return fmt.Errorf("core: store dictionary already assigns %q id %d where the supplied dictionary has %d — the store holds a different event stream", name, id, i)
		}
	}
	for _, name := range names[min(len(existing), len(names)):] {
		ts.Dict().Intern(name)
	}
	return nil
}

// WithStore rebinds a just-created Streamer to a durable TraceStore: the
// session restarts from the store's recovered state and every subsequent
// operation is write-ahead logged. It must be called before any traffic
// (Ingest, CloseTrace, Snapshot, CheckOnline); rules and options carry over,
// with the rules' dictionary reconciled into the store as in NewStreamer.
func (st *Streamer) WithStore(ts *TraceStore) error {
	if st.used.Load() {
		return errors.New("core: WithStore must be called before the streamer carries traffic")
	}
	if st.cfg.Shards != 0 && st.cfg.Shards != ts.NumShards() {
		return fmt.Errorf("core: streamer was configured for %d shards but the store was created with %d", st.cfg.Shards, ts.NumShards())
	}
	if err := adoptDict(ts, st.dict); err != nil {
		return err
	}
	cfg := st.cfg
	cfg.Dict = nil
	cfg.Store = ts
	ing, err := stream.Open(cfg)
	if err != nil {
		return err
	}
	if err := st.ing.Close(); err != nil {
		ing.Close()
		return err
	}
	st.cfg = cfg
	st.ing = ing
	return nil
}

// Dict returns the streamer's event dictionary.
func (st *Streamer) Dict() *Dictionary { return st.ing.Dict() }

// Ingest appends events to the identified (possibly new) trace.
func (st *Streamer) Ingest(traceID string, events ...string) error {
	st.used.Store(true)
	return st.ing.Ingest(traceID, events...)
}

// CloseTrace terminates a trace, sealing it into the streamed database.
func (st *Streamer) CloseTrace(traceID string) error {
	st.used.Store(true)
	return st.ing.CloseTrace(traceID)
}

// Snapshot returns a consistent database of every sealed trace; mine it with
// MinePatterns/MineRules or check it with CheckRules while ingestion
// continues.
func (st *Streamer) Snapshot() (*Database, error) {
	st.used.Store(true)
	v, err := st.ing.Snapshot()
	if err != nil {
		return nil, err
	}
	return v.DB, nil
}

// CheckOnline returns the conformance summary accumulated by the online
// checkers over every sealed trace — equal to CheckRules over Snapshot(),
// without rescanning anything.
func (st *Streamer) CheckOnline() (verify.Summary, error) {
	if !st.hasRules {
		return verify.Summary{}, errors.New("core: streamer has no rules configured")
	}
	st.used.Store(true)
	v, err := st.ing.Snapshot()
	if err != nil {
		return verify.Summary{}, err
	}
	return verify.NewSummary(v.Reports), nil
}

// Health reports the backing store's health. A degraded read-only session
// keeps serving Snapshot and CheckOnline from memory while Ingest and
// CloseTrace fail fast with an error wrapping ErrStoreDegraded; a
// memory-only session is always healthy.
func (st *Streamer) Health() Health { return st.ing.Health() }

// Close shuts the streamer down, discarding still-open traces.
func (st *Streamer) Close() error { return st.ing.Close() }

// RankPatterns orders mined patterns by interestingness (the future-work
// ranking of Section 8), most interesting first.
func RankPatterns(db *Database, patterns []MinedPattern, topN int) []rank.ScoredPattern {
	return rank.TopPatterns(db, patterns, rank.Weights{}, topN)
}

// RankRules orders mined rules by interestingness, most interesting first.
func RankRules(db *Database, ruleSet []Rule, topN int) []rank.ScoredRule {
	return rank.TopRules(db, ruleSet, rank.Weights{}, topN)
}

// RankSequential orders mined sequential patterns by interestingness, most
// interesting first.
func RankSequential(db *Database, patterns []SeqPattern, topN int) []rank.ScoredSeqPattern {
	return rank.TopSeqPatterns(db, patterns, rank.Weights{}, topN)
}

// RankEpisodes orders mined episodes by interestingness, most interesting
// first.
func RankEpisodes(db *Database, episodes []Episode, topN int) []rank.ScoredEpisode {
	return rank.TopEpisodes(db, episodes, rank.Weights{}, topN)
}

// EvaluateRule scores an arbitrary (for example hand-written) rule against
// the database, returning its s-support, i-support and confidence.
func EvaluateRule(db *Database, pre, post Pattern) Rule {
	return rules.EvaluateRule(db, pre, post)
}
