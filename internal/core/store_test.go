package core

import (
	"path/filepath"
	"testing"

	"specmine/internal/tracesim"
)

// ingestAll streams a workload's traces into the streamer in interleaved
// chunks from one producer.
func ingestAll(t *testing.T, st *Streamer, w tracesim.Workload, traces int, seed int64) {
	t.Helper()
	err := w.Stream(traces, seed, 8, func(c tracesim.StreamChunk) error {
		if len(c.Events) > 0 {
			if err := st.Ingest(c.TraceID, c.Events...); err != nil {
				return err
			}
		}
		if c.Final {
			return st.CloseTrace(c.TraceID)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("streaming workload: %v", err)
	}
}

// TestStoreLifecycle walks the whole durable lifecycle through the facade:
// a durable streaming session, a restart with Recover-based cold mining, and
// a second durable session that resumes — with online conformance seeded from
// the recovered history.
func TestStoreLifecycle(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "traces")
	w := tracesim.Workloads()["locking"]

	// Session 1: durable ingestion of live traffic, no rules yet.
	ts, err := OpenStore(dir, StoreOptions{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewStreamer(StreamOptions{FlushBatch: 4, Store: ts})
	if err != nil {
		t.Fatal(err)
	}
	ingestAll(t, st, w, 40, 7)
	snap1, err := st.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap1.NumSequences() != 40 {
		t.Fatalf("session 1 snapshot has %d traces want 40", snap1.NumSequences())
	}
	res1, err := MineRules(snap1, RuleOptions{MinSeqSupportRel: 0.5, MinConfidence: 0.8,
		MaxPremiseLength: 2, MaxConsequentLength: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res1.Rules) == 0 {
		t.Fatal("no rules mined from session 1")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ts.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: cold-start mining over the recovered store must reproduce the
	// pre-restart snapshot and therefore the same rules.
	recovered, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if recovered.NumSequences() != snap1.NumSequences() {
		t.Fatalf("recovered %d traces want %d", recovered.NumSequences(), snap1.NumSequences())
	}
	for i := range snap1.Sequences {
		a, b := recovered.Sequences[i], snap1.Sequences[i]
		if len(a) != len(b) {
			t.Fatalf("trace %d: recovered %d events want %d", i, len(a), len(b))
		}
		for j := range b {
			if a[j] != b[j] {
				t.Fatalf("trace %d event %d: recovered %d want %d", i, j, a[j], b[j])
			}
		}
	}
	res2, err := MineRules(recovered, RuleOptions{MinSeqSupportRel: 0.5, MinConfidence: 0.8,
		MaxPremiseLength: 2, MaxConsequentLength: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Rules) != len(res1.Rules) {
		t.Fatalf("recovered mining found %d rules want %d", len(res2.Rules), len(res1.Rules))
	}
	for i := range res1.Rules {
		if res2.Rules[i].Key() != res1.Rules[i].Key() ||
			res2.Rules[i].Confidence != res1.Rules[i].Confidence {
			t.Fatalf("rule %d differs after recovery:\n got %+v\nwant %+v", i, res2.Rules[i], res1.Rules[i])
		}
	}

	// Session 2: WithStore resumes durably with the mined rules checking new
	// violating traffic online; the recovered history's conformance is seeded
	// so CheckOnline equals a batch CheckRules over the full snapshot.
	ts2, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st2, err := NewStreamer(StreamOptions{FlushBatch: 4, Dict: recovered.Dict, Rules: res2.Rules})
	if err != nil {
		t.Fatal(err)
	}
	if err := st2.WithStore(ts2); err != nil {
		t.Fatal(err)
	}
	hostile := w
	hostile.ViolationRate = 0.3
	ingestAll(t, st2, hostile, 30, 99)
	snap2, err := st2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap2.NumSequences() != 70 {
		t.Fatalf("session 2 snapshot has %d traces want 70", snap2.NumSequences())
	}
	online, err := st2.CheckOnline()
	if err != nil {
		t.Fatal(err)
	}
	batch, err := CheckRules(snap2, res2.Rules)
	if err != nil {
		t.Fatal(err)
	}
	if online.Render(snap2.Dict, 3) != batch.Render(snap2.Dict, 3) {
		t.Fatalf("online summary diverges from batch over the same snapshot:\n%s\nvs\n%s",
			online.Render(snap2.Dict, 3), batch.Render(snap2.Dict, 3))
	}
	if batch.TotalViolations() == 0 {
		t.Fatal("expected violations from the hostile workload")
	}

	// WithStore after traffic must be refused.
	if err := st2.WithStore(ts2); err == nil {
		t.Fatal("WithStore accepted on a used streamer")
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ts2.Close(); err != nil {
		t.Fatal(err)
	}

	// Recover on a directory with no store must fail cleanly.
	if _, err := Recover(filepath.Join(t.TempDir(), "nothing-here")); err == nil {
		t.Fatal("Recover on an empty directory succeeded")
	}
}
