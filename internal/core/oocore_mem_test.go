package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"specmine/internal/seqdb"
	"specmine/internal/store"
	"specmine/internal/stream"
)

// The memory-capped CI gate. Two tests run in two separate processes:
//
//	TestOutOfCorePrepare  — no memory limit: generates a clustered store whose
//	                        decoded size is several times the cap, computes
//	                        in-memory reference answers, and writes both plus
//	                        a sizing file into SPECMINE_OOCORE_DIR.
//	TestOutOfCoreCapped   — run with GOMEMLIMIT ≈ decoded/4 (the CI job reads
//	                        sizing.env; a debug.SetMemoryLimit guard enforces
//	                        the cap even when the env is missing): opens the
//	                        store out-of-core, mines and checks through the
//	                        segment cache, and byte-compares against the
//	                        references while a sampler asserts the heap never
//	                        outgrows the cap. A heap profile lands in the
//	                        artifact dir on failure.
//
// Both are no-ops unless SPECMINE_OOCORE=1 and SPECMINE_OOCORE_DIR are set:
// the uncapped prepare step would dominate ordinary `go test ./...` time.
//
// Workload shape: clusters of traces with fully disjoint event alphabets —
// cluster k emits only c{k}_* events — ingested cluster by cluster, so
// segments are cluster-pure (up to boundary segments and the WAL tail).
// Cluster 0 is `hotWeight` times larger than the others, which gives a
// support threshold that isolates its events: mining under the cap seeds
// only from cluster 0 and a selective rule set over c0_* events must answer
// every other segment from statistics alone.

const (
	oocoreEnvGate = "SPECMINE_OOCORE"
	oocoreEnvDir  = "SPECMINE_OOCORE_DIR"
	oocoreEnvMB   = "SPECMINE_OOCORE_MB" // decoded size target, default 128

	oocoreHotWeight  = 2   // cluster 0 : other clusters size ratio
	oocoreClusterKB  = 512 // decoded KiB per small cluster
	oocoreOpsPerOp   = 30  // (op, ...) slots per trace
	oocoreOpAlphabet = 40  // distinct op events per cluster
	oocoreDropEvery  = 9   // every Nth trace loses its close: a violation
)

// oocoreReference is everything the capped process needs: sizing, the rule
// sets (mined/built uncapped), and canonical dumps of the expected answers.
type oocoreReference struct {
	DecodedBytes  int64 // cache-estimator bytes of the full decoded database
	MemLimitBytes int64 // GOMEMLIMIT for the capped step: DecodedBytes/4
	CacheBytes    int64 // segment-cache budget: DecodedBytes/16
	SegmentsTotal int
	Clusters      int
	TracesTotal   int

	MinSupport    int // pattern threshold isolating cluster 0's events
	MinSeqSupport int // rule threshold isolating cluster 0's events

	FullRules      []Rule // one open→close rule per cluster: unskippable sweep
	SelectiveRules []Rule // cluster-0 rules: ≤10% of bodies may open

	Patterns       string // canonical dump of MinePatterns under MinSupport
	Rules          string // canonical dump of MineRules under MinSeqSupport
	CheckFull      string // Render of CheckRules(FullRules)
	CheckSelective string // Render of CheckRules(SelectiveRules)
}

func oocoreDir(t *testing.T) string {
	t.Helper()
	if os.Getenv(oocoreEnvGate) != "1" {
		t.Skipf("set %s=1 and %s to run the out-of-core gate", oocoreEnvGate, oocoreEnvDir)
	}
	dir := os.Getenv(oocoreEnvDir)
	if dir == "" {
		t.Fatalf("%s=1 but %s is unset", oocoreEnvGate, oocoreEnvDir)
	}
	return dir
}

// oocoreTrace writes cluster k's trace i into buf: c{k}_open, a run of
// (c{k}_op*, ...) slots, c{k}_use, and — unless i hits the drop cadence —
// c{k}_close. Event ids are the cluster's base + stable offsets.
func oocoreTrace(buf []seqdb.EventID, base seqdb.EventID, i int) []seqdb.EventID {
	buf = buf[:0]
	buf = append(buf, base) // c{k}_open
	for j := 0; j < oocoreOpsPerOp; j++ {
		buf = append(buf, base+3+seqdb.EventID((i*7+j*11)%oocoreOpAlphabet))
	}
	buf = append(buf, base+1) // c{k}_use
	if i%oocoreDropEvery != oocoreDropEvery-1 {
		buf = append(buf, base+2) // c{k}_close
	}
	return buf
}

// oocoreTraceBytes is the cache-estimator cost of one trace (24 per trace +
// 4 per event); the dropped close makes it i-dependent.
func oocoreTraceBytes(i int) int64 {
	n := int64(24 + 4*(2+oocoreOpsPerOp))
	if i%oocoreDropEvery != oocoreDropEvery-1 {
		n += 4
	}
	return n
}

func oocorePerCluster() int {
	// Traces per small cluster so its decoded estimate ≈ oocoreClusterKB.
	// Clusters are kept small on purpose: a seed's view materialises a
	// PositionIndex over the cluster, and that index costs ~14× the view's
	// decoded bytes (postings, prev-occurrence tables, per-sequence bitmaps)
	// — it is the reason the in-memory path cannot scale, and it bounds how
	// big any single cluster may be under the cap.
	return int(int64(oocoreClusterKB<<10) / oocoreTraceBytes(0))
}

func oocoreNumClusters() int {
	mb := 128
	if s := os.Getenv(oocoreEnvMB); s != "" {
		if _, err := fmt.Sscanf(s, "%d", &mb); err != nil || mb < 16 {
			panic(fmt.Sprintf("bad %s=%q (want an integer ≥ 16)", oocoreEnvMB, s))
		}
	}
	// hotWeight cluster-equivalents for cluster 0, one per small cluster.
	n := mb*1024/oocoreClusterKB - oocoreHotWeight + 1
	if n < 4 {
		n = 4
	}
	return n
}

func oocoreClusterSize(cluster int) int {
	if cluster == 0 {
		return oocoreHotWeight * oocorePerCluster()
	}
	return oocorePerCluster()
}

// oocoreEventBase interns cluster k's alphabet (contiguously, in cluster
// order) and returns the id of c{k}_open.
func oocoreEventBase(dict *seqdb.Dictionary, k int) seqdb.EventID {
	base := dict.Intern(fmt.Sprintf("c%d_open", k))
	dict.Intern(fmt.Sprintf("c%d_use", k))
	dict.Intern(fmt.Sprintf("c%d_close", k))
	for j := 0; j < oocoreOpAlphabet; j++ {
		dict.Intern(fmt.Sprintf("c%d_op%d", k, j))
	}
	return base
}

// oocorePatternDump / oocoreRuleDump canonicalise results for cross-process
// comparison: sorted output order, syntactic keys, every counter included.
func oocorePatternDump(res *PatternResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "minsup=%d closed=%v n=%d\n", res.MinSupport, res.Closed, len(res.Patterns))
	for _, p := range res.Patterns {
		fmt.Fprintf(&b, "%s sup=%d seqs=%d\n", p.Pattern.Key(), p.Support, p.SeqSupport)
	}
	return b.String()
}

func oocoreRuleDump(res *RuleResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "nonredundant=%v n=%d\n", res.NonRedundant, len(res.Rules))
	for _, r := range res.Rules {
		fmt.Fprintf(&b, "%s ssup=%d isup=%d conf=%.9f\n", r.Key(), r.SeqSupport, r.InstanceSupport, r.Confidence)
	}
	return b.String()
}

// TestOutOfCorePrepare generates the store and the reference answers. Run it
// WITHOUT a memory limit; it materialises the full database to compute them.
func TestOutOfCorePrepare(t *testing.T) {
	dir := oocoreDir(t)
	storeDir := filepath.Join(dir, "store")
	if err := os.RemoveAll(storeDir); err != nil {
		t.Fatal(err)
	}

	clusters := oocoreNumClusters()
	// Small WAL rotations publish many small cluster-pure segments;
	// CompactBytes 1 stops the compactor from merging across clusters.
	st, err := store.Open(store.Options{Dir: storeDir, Shards: 4,
		WALRotateBytes: 128 << 10, CompactBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	bases := make([]seqdb.EventID, clusters)
	for k := range bases {
		bases[k] = oocoreEventBase(st.Dict(), k)
	}
	ing, err := stream.Open(stream.Config{FlushBatch: 256, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]seqdb.EventID, 0, 2+oocoreOpsPerOp+1)
	var decoded int64
	traces := 0
	start := time.Now()
	for k := 0; k < clusters; k++ {
		for i := 0; i < oocoreClusterSize(k); i++ {
			id := fmt.Sprintf("c%d-%d", k, i)
			buf = oocoreTrace(buf, bases[k], i)
			if err := ing.IngestIDs(id, buf...); err != nil {
				t.Fatal(err)
			}
			if err := ing.CloseTrace(id); err != nil {
				t.Fatal(err)
			}
			decoded += oocoreTraceBytes(i)
			traces++
		}
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	t.Logf("ingested %d traces (%d clusters, est. %d MiB decoded) in %v",
		traces, clusters, decoded>>20, time.Since(start))

	// Eager reopen: canonicalises the WAL tail into segments (so the capped
	// open recovers a fully segment-resident store) and supplies the
	// in-memory reference database.
	st, err = store.Open(store.Options{Dir: storeDir, CompactBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	nsegs := len(st.Segments())
	if nsegs < clusters/4 {
		t.Fatalf("fixture produced only %d segments for %d clusters; rotation sizing is off", nsegs, clusters)
	}
	db := st.Recovered().Database(st.Dict())

	// Threshold strictly between every small-cluster event (≤ perCluster)
	// and even cluster 0's op events (0.75 * hotWeight * perCluster) on one
	// side, and cluster 0's protocol events on the other — open and use occur
	// hotWeight*perCluster times, close 8/9 of that. 1.7*perCluster sits
	// between 1.5 and 1.77 with margin on both sides, so the seeds are
	// exactly {c0_open, c0_use, c0_close}.
	minSup := oocorePerCluster() * 17 / 10
	// The cap is 1/4 of the decoded size, floored at 24 MiB: below that the
	// Go runtime's baseline plus cluster 0's fixed-size view index dominate
	// and the gate would measure them, not the miner. At the CI default
	// (128 MiB decoded) the floor is inactive and the limit is exactly
	// decoded/4. The cache budget is decoded/16, making the database 16×
	// the budget — comfortably past the ≥ 4× acceptance bar.
	memLimit := decoded / 4
	if memLimit < 24<<20 {
		memLimit = 24 << 20
	}
	ref := oocoreReference{
		DecodedBytes:  decoded,
		MemLimitBytes: memLimit,
		CacheBytes:    decoded / 16,
		SegmentsTotal: nsegs,
		Clusters:      clusters,
		TracesTotal:   traces,
		MinSupport:    minSup,
		MinSeqSupport: minSup,
	}
	for k := 0; k < clusters; k++ {
		open := seqdb.Pattern{bases[k]}
		close_ := seqdb.Pattern{bases[k] + 2}
		ref.FullRules = append(ref.FullRules, EvaluateRule(db, open, close_))
	}
	ref.SelectiveRules = []Rule{
		EvaluateRule(db, seqdb.Pattern{bases[0]}, seqdb.Pattern{bases[0] + 2}),
		EvaluateRule(db, seqdb.Pattern{bases[0]}, seqdb.Pattern{bases[0] + 1}),
	}

	pres, err := MinePatterns(db, PatternOptions{MinSupport: minSup, MaxLength: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(pres.Patterns) == 0 {
		t.Fatal("reference mined no patterns; threshold is off")
	}
	ref.Patterns = oocorePatternDump(pres)
	rres, err := MineRules(db, RuleOptions{MinSeqSupport: minSup, MinConfidence: 0.5,
		MaxPremiseLength: 1, MaxConsequentLength: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rres.Rules) == 0 {
		t.Fatal("reference mined no rules; threshold is off")
	}
	ref.Rules = oocoreRuleDump(rres)
	sumFull, err := CheckRules(db, ref.FullRules)
	if err != nil {
		t.Fatal(err)
	}
	if sumFull.TotalViolations() == 0 {
		t.Fatal("full rule set found no violations; drop cadence is off")
	}
	ref.CheckFull = sumFull.Render(db.Dict, 10)
	sumSel, err := CheckRules(db, ref.SelectiveRules)
	if err != nil {
		t.Fatal(err)
	}
	ref.CheckSelective = sumSel.Render(db.Dict, 10)

	blob, err := json.MarshalIndent(&ref, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "reference.json"), blob, 0o644); err != nil {
		t.Fatal(err)
	}
	// sizing.env is what the CI job sources to set GOMEMLIMIT for the capped
	// process.
	env := fmt.Sprintf("GOMEMLIMIT=%d\n", ref.MemLimitBytes)
	if err := os.WriteFile(filepath.Join(dir, "sizing.env"), []byte(env), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("prepared: %d MiB decoded, %d segments, GOMEMLIMIT=%d MiB, cache=%d MiB",
		decoded>>20, nsegs, ref.MemLimitBytes>>20, ref.CacheBytes>>20)
}

// TestOutOfCoreCapped replays the workloads out-of-core under the memory cap
// and byte-compares every answer against the prepared references.
func TestOutOfCoreCapped(t *testing.T) {
	dir := oocoreDir(t)
	blob, err := os.ReadFile(filepath.Join(dir, "reference.json"))
	if err != nil {
		t.Fatalf("no reference (run TestOutOfCorePrepare first): %v", err)
	}
	var ref oocoreReference
	if err := json.Unmarshal(blob, &ref); err != nil {
		t.Fatal(err)
	}

	// The CI job exports GOMEMLIMIT from sizing.env; when it is absent (local
	// runs, a misconfigured job) this guard imposes the same cap from inside.
	if os.Getenv("GOMEMLIMIT") == "" {
		debug.SetMemoryLimit(ref.MemLimitBytes)
	}
	// Sample the heap for the duration of the run: the gate's whole point is
	// that out-of-core mining completes within ~1/4 of the database size.
	// HeapAlloc transiently overshooting the limit by more than 20% means the
	// memory limit is not actually constraining the run (GOMEMLIMIT is soft:
	// brief overshoot during allocation bursts is expected, unbounded growth
	// is the OOM the gate exists to catch).
	var peak atomic.Int64
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		var ms runtime.MemStats
		for {
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
				runtime.ReadMemStats(&ms)
				if h := int64(ms.HeapAlloc); h > peak.Load() {
					peak.Store(h)
				}
			}
		}
	}()
	defer func() {
		close(stop)
		<-done
		if p := peak.Load(); p > ref.MemLimitBytes+ref.MemLimitBytes/5 {
			t.Errorf("peak HeapAlloc %d MiB exceeds the %d MiB cap by >20%%",
				p>>20, ref.MemLimitBytes>>20)
		}
		if t.Failed() {
			prof := filepath.Join(dir, "heap.pprof")
			if f, err := os.Create(prof); err == nil {
				_ = pprof.WriteHeapProfile(f)
				_ = f.Close()
				t.Logf("heap profile written to %s", prof)
			}
		}
		t.Logf("peak HeapAlloc %d MiB under a %d MiB cap", peak.Load()>>20, ref.MemLimitBytes>>20)
	}()

	ts, err := OpenStore(filepath.Join(dir, "store"), StoreOptions{OutOfCore: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	if n := ts.Recovered().NumSealed(); n != 0 {
		t.Fatalf("out-of-core open materialised %d sealed traces", n)
	}
	dict := ts.Dict()
	oo := OutOfCoreOptions{CacheBytes: ref.CacheBytes}

	// The ≤ 10% selectivity bar assumes cluster 0 is a small fraction of the
	// database. At reduced local scales (SPECMINE_OOCORE_MB below ~32) it is
	// not, so the bar is only enforced at CI scale; equivalence always is.
	assertSelective := func(label string, distinct int64) {
		frac := fmt.Sprintf("%d of %d distinct segment bodies", distinct, ref.SegmentsTotal)
		if ref.Clusters >= 64 {
			if distinct > int64(ref.SegmentsTotal/10) {
				t.Errorf("%s opened %s (want ≤ 10%%)", label, frac)
			}
		} else {
			t.Logf("%s opened %s (10%% bar not enforced at %d clusters)", label, frac, ref.Clusters)
		}
	}

	// Patterns: seeds isolated to cluster 0 by the support threshold.
	pres, stats, err := MineStore(ts, PatternOptions{MinSupport: ref.MinSupport, MaxLength: 3, Workers: 1}, oo)
	if err != nil {
		t.Fatal(err)
	}
	if got := oocorePatternDump(pres); got != ref.Patterns {
		t.Errorf("capped MineStore diverges from the in-memory reference:\n got %q\nwant %q", got, ref.Patterns)
	}
	assertSelective("cluster-0 pattern mining", int64(stats.SegmentsTotal-stats.SegmentsSkipped))

	// Rules, same isolation.
	rres, stats, err := MineStoreRules(ts, RuleOptions{MinSeqSupport: ref.MinSeqSupport,
		MinConfidence: 0.5, MaxPremiseLength: 1, MaxConsequentLength: 1, Workers: 1}, oo)
	if err != nil {
		t.Fatal(err)
	}
	if got := oocoreRuleDump(rres); got != ref.Rules {
		t.Errorf("capped MineStoreRules diverges:\n got %q\nwant %q", got, ref.Rules)
	}
	assertSelective("cluster-0 rule mining", int64(stats.SegmentsTotal-stats.SegmentsSkipped))

	// Full sweep: every cluster has a rule, so no segment is skippable and
	// the whole database streams through the bounded cache.
	sumFull, stats, err := CheckStore(ts, ref.FullRules, oo)
	if err != nil {
		t.Fatal(err)
	}
	if got := sumFull.Render(dict, 10); got != ref.CheckFull {
		t.Errorf("capped full CheckStore diverges:\n got %q\nwant %q", got, ref.CheckFull)
	}
	if stats.SegmentsSkipped != 0 {
		t.Errorf("full sweep skipped %d segments; the workload is meant to be unskippable", stats.SegmentsSkipped)
	}

	// Selective sweep: cluster-0 rules answer everything else from stats.
	sumSel, stats, err := CheckStore(ts, ref.SelectiveRules, oo)
	if err != nil {
		t.Fatal(err)
	}
	if got := sumSel.Render(dict, 10); got != ref.CheckSelective {
		t.Errorf("capped selective CheckStore diverges:\n got %q\nwant %q", got, ref.CheckSelective)
	}
	assertSelective("selective check", stats.BodiesOpened)
}
