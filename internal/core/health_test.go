package core

import (
	"errors"
	"syscall"
	"testing"

	"specmine/internal/fsim"
	"specmine/internal/store"
)

// TestStreamerHealthSurface pins the facade's failure-model surface: a
// memory-only session is always Healthy, and a durable session over a store
// with a permanent flush fault reports DegradedReadOnly, rejects writes with
// ErrStoreDegraded, and keeps serving snapshots from memory.
func TestStreamerHealthSurface(t *testing.T) {
	mem, err := NewStreamer(StreamOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if h := mem.Health(); h.State != StoreHealthy {
		t.Fatalf("memory-only streamer reports %v, want StoreHealthy", h.State)
	}
	if err := mem.Close(); err != nil {
		t.Fatal(err)
	}

	// Write rank 0 on the shard path is the WAL creation; rank 1 is the
	// first flush, which EIO fails permanently.
	ffs := fsim.NewFaultFS(fsim.OS(),
		fsim.Rule{Op: fsim.OpWrite, Path: "shard-000", From: 1, To: 1 << 20, Err: syscall.EIO})
	ts, err := store.Open(store.Options{Dir: t.TempDir(), Shards: 1, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewStreamer(StreamOptions{FlushBatch: 1, Store: ts})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Ingest("t1", "open", "use", "close"); err != nil {
		t.Fatal(err)
	}
	if err := st.CloseTrace("t1"); err != nil {
		t.Fatal(err)
	}
	db, err := st.Snapshot()
	if err != nil {
		t.Fatalf("snapshot on a degraded session: %v", err)
	}
	if db.NumSequences() != 1 {
		t.Fatalf("degraded snapshot has %d traces want 1", db.NumSequences())
	}
	h := st.Health()
	if h.State != StoreDegradedReadOnly {
		t.Fatalf("health is %v after a permanent flush fault, want StoreDegradedReadOnly (%+v)", h.State, h)
	}
	if !errors.Is(h.Err, syscall.EIO) {
		t.Fatalf("health lost the first error: %+v", h)
	}
	if err := st.Ingest("t2", "open"); !errors.Is(err, ErrStoreDegraded) {
		t.Fatalf("ingest on a degraded session returned %v, want ErrStoreDegraded", err)
	}
	_ = st.Close()
	_ = ts.Close()
}
