package core

import (
	"context"
	"net"
	"net/http"
	"time"

	"specmine/internal/obs"
)

// MetricsRegistry is the low-overhead metrics registry the pipeline stages
// publish into. Create one with NewMetrics, hand it to StreamOptions.Obs,
// StoreOptions.Obs and OutOfCoreOptions.Obs (the same registry can back all
// three — series names are disjoint), and expose it with ServeDebug or embed
// obs.Handler into an existing mux.
type MetricsRegistry = obs.Registry

// NewMetrics returns a fresh metrics registry. Registries are cheap; nil is
// always a valid "observability off" value everywhere one is accepted.
func NewMetrics() *MetricsRegistry { return obs.NewRegistry() }

// DebugServer is a running debug/metrics HTTP endpoint started by ServeDebug.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// ServeDebug starts an HTTP server on addr (for example "localhost:0" to pick
// a free loopback port) exposing the registry's observability surface:
//
//	/debug/metrics  Prometheus text exposition (version 0.0.4)
//	/debug/vars     expvar-style JSON snapshot of every series
//	/debug/ops      recent and slow traced operations as JSON
//	/debug/pprof/   the stdlib pprof handlers
//
// The endpoint is strictly opt-in: nothing is served unless ServeDebug is
// called, and the registry keeps working (snapshots, handler embedding) if it
// is not. Close the returned server to stop serving.
func ServeDebug(addr string, reg *MetricsRegistry) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: obs.Handler(reg)}
	go func() {
		// Serve returns ErrServerClosed on Close; anything else means the
		// listener died, which the scraper will notice — nothing to do here.
		_ = srv.Serve(ln)
	}()
	return &DebugServer{ln: ln, srv: srv}, nil
}

// Addr returns the address the server is listening on — useful with
// "localhost:0" to discover the picked port.
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close stops the server, waiting briefly for in-flight scrapes to finish.
func (d *DebugServer) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return d.srv.Shutdown(ctx)
}
