package core

import (
	"testing"

	"specmine/internal/tracesim"
)

// TestStreamerEndToEnd drives the facade's streaming path: mine rules from a
// training batch, stream fresh violating traffic in chunks, then confirm the
// online conformance summary equals a batch CheckRules over the snapshot,
// and that the snapshot itself is minable.
func TestStreamerEndToEnd(t *testing.T) {
	w := tracesim.Workloads()["transaction"]
	train := w.MustGenerate(30, 7)
	res, err := MineRules(train, RuleOptions{
		MinSeqSupportRel: 0.5, MinConfidence: 0.8,
		MaxPremiseLength: 2, MaxConsequentLength: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rules) == 0 {
		t.Fatal("no rules mined from the training batch")
	}

	st, err := NewStreamer(StreamOptions{Shards: 3, FlushBatch: 4, Dict: train.Dict, Rules: res.Rules})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	fresh := w
	fresh.ViolationRate = 0.3
	err = fresh.Stream(50, 99, 6, func(c tracesim.StreamChunk) error {
		if len(c.Events) > 0 {
			if err := st.Ingest(c.TraceID, c.Events...); err != nil {
				return err
			}
		}
		if c.Final {
			return st.CloseTrace(c.TraceID)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	db, err := st.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if db.NumSequences() != 50 {
		t.Fatalf("snapshot has %d traces want 50", db.NumSequences())
	}

	online, err := st.CheckOnline()
	if err != nil {
		t.Fatal(err)
	}
	batch, err := CheckRules(db, res.Rules)
	if err != nil {
		t.Fatal(err)
	}
	if online.TotalViolations() != batch.TotalViolations() {
		t.Fatalf("online summary has %d violations, batch %d", online.TotalViolations(), batch.TotalViolations())
	}
	if online.TotalViolations() == 0 {
		t.Fatal("expected violations in the aberrated traffic")
	}

	// The snapshot feeds the batch miners while ingestion could continue.
	pat, err := MinePatterns(db, PatternOptions{MinSupportRel: 0.9, MaxLength: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(pat.Patterns) == 0 {
		t.Fatal("no patterns mined from the snapshot")
	}
}

func TestStreamerOptionValidation(t *testing.T) {
	train := NewDatabase()
	train.AppendNames("a", "b")
	res, err := MineRules(train, RuleOptions{MinSeqSupport: 1, MinConfidence: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rules) == 0 {
		t.Skip("no rules mined")
	}
	if _, err := NewStreamer(StreamOptions{Rules: res.Rules}); err == nil {
		t.Fatal("NewStreamer accepted rules without a dictionary")
	}
	st, err := NewStreamer(StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.CheckOnline(); err == nil {
		t.Fatal("CheckOnline without rules did not error")
	}
	st.Close()
}
