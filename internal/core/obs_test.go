package core

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"specmine/internal/tracesim"
)

// streamWorkload drives a fixed tracesim workload through the streamer and
// returns the number of events ingested (the count the stream.events_acked
// counter must match exactly).
func streamWorkload(t *testing.T, st *Streamer, w tracesim.Workload, numTraces int, seed int64) int64 {
	t.Helper()
	var events int64
	err := w.Stream(numTraces, seed, 5, func(c tracesim.StreamChunk) error {
		if len(c.Events) > 0 {
			if err := st.Ingest(c.TraceID, c.Events...); err != nil {
				return err
			}
			events += int64(len(c.Events))
		}
		if c.Final {
			return st.CloseTrace(c.TraceID)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return events
}

// scrapeProm fetches a Prometheus text exposition and returns every sample,
// keyed both by the full "name{labels}" form and by the bare metric name
// summed across label sets (how per-shard series are checked in aggregate).
func scrapeProm(t *testing.T, url string) (full, sums map[string]int64) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("GET %s: content type %q", url, ct)
	}
	full = make(map[string]int64)
	sums = make(map[string]int64)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparseable exposition line %q", line)
		}
		key := line[:sp]
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("unparseable sample value in %q: %v", line, err)
		}
		full[key] += int64(v)
		name := key
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		sums[name] += int64(v)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return full, sums
}

func counterVal(t *testing.T, reg *MetricsRegistry, name string) int64 {
	t.Helper()
	s, ok := reg.Find(name)
	if !ok {
		t.Fatalf("series %q not registered", name)
	}
	return s.Value
}

// TestMetricsSmoke is the end-to-end observability smoke: one registry shared
// by the durable streaming session, the store, and an out-of-core checking
// run, exposed over a loopback ServeDebug endpoint and scraped back. The
// scraped series must exist and be mutually consistent — acked events equal
// the workload's event count, cache hits plus misses equal pins.
func TestMetricsSmoke(t *testing.T) {
	w := tracesim.Workloads()["transaction"]
	const numTraces = 40
	train := w.MustGenerate(numTraces, 11)
	res, err := MineRules(train, RuleOptions{
		MinSeqSupportRel: 0.5, MinConfidence: 0.8,
		MaxPremiseLength: 2, MaxConsequentLength: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rules) == 0 {
		t.Fatal("no rules mined from the training batch")
	}

	reg := NewMetrics()
	dir := t.TempDir()
	ts, err := OpenStore(dir, StoreOptions{Shards: 3, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewStreamer(StreamOptions{FlushBatch: 4, Dict: train.Dict, Store: ts, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	events := streamWorkload(t, st, w, numTraces, 11)
	if _, err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ts.Close(); err != nil {
		t.Fatal(err)
	}

	// Out-of-core checking over the same registry populates the cache.*,
	// verify.* and store.* recovery-side series.
	ts2, err := OpenStore(dir, StoreOptions{OutOfCore: true, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := CheckStore(ts2, res.Rules, OutOfCoreOptions{Obs: reg}); err != nil {
		t.Fatal(err)
	}
	if err := ts2.Close(); err != nil {
		t.Fatal(err)
	}

	srv, err := ServeDebug("localhost:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	full, sums := scrapeProm(t, base+"/debug/metrics")
	if got := sums["stream_events_acked"]; got != events {
		t.Errorf("scraped stream_events_acked = %d, workload ingested %d events", got, events)
	}
	if got := sums["stream_traces_sealed"]; got != numTraces {
		t.Errorf("scraped stream_traces_sealed = %d, want %d", got, numTraces)
	}
	if got := sums["cache_pins"]; got == 0 || got != sums["cache_hits"]+sums["cache_misses"] {
		t.Errorf("scraped cache_pins = %d, hits+misses = %d+%d", got, sums["cache_hits"], sums["cache_misses"])
	}
	if sums["store_commits"] == 0 {
		t.Error("scraped store_commits is zero after durable ingest")
	}
	if sums["store_wal_flush_ns_count"] == 0 {
		t.Error("scraped store_wal_flush_ns histogram recorded no flushes")
	}
	if sums["store_segments_published"] == 0 {
		t.Error("scraped store_segments_published is zero after sealing traces")
	}
	for _, name := range []string{
		"stream_ingest_ns_count", "stream_flush_ns_count",
		"verify_traces_checked", "verify_probes_issued",
		"cache_resident_bytes", "cache_peak_bytes", "store_health_state",
	} {
		if _, ok := sums[name]; !ok {
			t.Errorf("scraped exposition is missing series %s", name)
		}
	}
	// Per-shard series carry the shard label through the exposition.
	if _, ok := full[`stream_queue_depth{shard="0"}`]; !ok {
		t.Error(`scraped exposition is missing stream_queue_depth{shard="0"}`)
	}

	// The JSON snapshot agrees with the Prometheus view.
	resp, err := http.Get(base + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	var vars struct {
		Series []struct {
			Name  string `json:"name"`
			Value int64  `json:"value"`
		} `json:"series"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	foundAcked := false
	for _, s := range vars.Series {
		if s.Name == "stream.events_acked" {
			foundAcked = true
			if s.Value != events {
				t.Errorf("/debug/vars stream.events_acked = %d, want %d", s.Value, events)
			}
		}
	}
	if !foundAcked {
		t.Error("/debug/vars is missing stream.events_acked")
	}

	// The traced-operations endpoint serves JSON.
	resp, err = http.Get(base + "/debug/ops")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/ops: status %d err %v", resp.StatusCode, err)
	}
	if !json.Valid(body) {
		t.Fatalf("GET /debug/ops returned invalid JSON: %.100s", body)
	}
}

// TestRegistryCounterEquivalence pins the contract that registry counters are
// exact, not sampled: after a fixed workload, the registry's stream ack
// totals equal the driven counts, and a fresh registry attached to an
// out-of-core checking run reports exactly the counters OutOfCoreStats
// returns.
func TestRegistryCounterEquivalence(t *testing.T) {
	w := tracesim.Workloads()["locking"]
	const numTraces = 30
	train := w.MustGenerate(numTraces, 23)
	res, err := MineRules(train, RuleOptions{
		MinSeqSupportRel: 0.4, MinConfidence: 0.7,
		MaxPremiseLength: 2, MaxConsequentLength: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rules) == 0 {
		t.Fatal("no rules mined from the training batch")
	}

	regIngest := NewMetrics()
	dir := t.TempDir()
	ts, err := OpenStore(dir, StoreOptions{Shards: 2, Obs: regIngest})
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewStreamer(StreamOptions{FlushBatch: 4, Dict: train.Dict, Store: ts, Obs: regIngest})
	if err != nil {
		t.Fatal(err)
	}
	events := streamWorkload(t, st, w, numTraces, 23)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ts.Close(); err != nil {
		t.Fatal(err)
	}
	if got := counterVal(t, regIngest, "stream.events_acked"); got != events {
		t.Errorf("stream.events_acked = %d, drove %d events", got, events)
	}
	if got := counterVal(t, regIngest, "stream.traces_sealed"); got != numTraces {
		t.Errorf("stream.traces_sealed = %d, sealed %d traces", got, numTraces)
	}

	// A fresh registry on the checking run: its cumulative series must equal
	// the per-run stats struct field by field.
	regCheck := NewMetrics()
	ts2, err := OpenStore(dir, StoreOptions{OutOfCore: true, Obs: regCheck})
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := CheckStore(ts2, res.Rules, OutOfCoreOptions{CacheBytes: 1 << 16, Obs: regCheck})
	if err != nil {
		t.Fatal(err)
	}
	if err := ts2.Close(); err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		series string
		want   int64
	}{
		{"verify.traces_checked", stats.Verify.TracesChecked},
		{"verify.traces_skipped", stats.Verify.TracesSkipped},
		{"verify.segments_checked", stats.Verify.SegmentsChecked},
		{"verify.segments_skipped", stats.Verify.SegmentsSkipped},
		{"verify.rule_trace_gates", stats.Verify.RuleTraceGates},
		{"verify.consequent_short_circuits", stats.Verify.ConsequentShortCircuits},
		{"verify.probes_issued", stats.Verify.ProbesIssued},
		{"cache.hits", stats.CacheHits},
		{"cache.misses", stats.CacheMisses},
		{"cache.evictions", stats.CacheEvictions},
		{"cache.bodies_opened", stats.BodiesOpened},
	} {
		if got := counterVal(t, regCheck, c.series); got != c.want {
			t.Errorf("%s = %d, stats report %d", c.series, got, c.want)
		}
	}
	if s, ok := regCheck.Find("cache.peak_bytes"); !ok || s.Value != stats.PeakCacheBytes {
		t.Errorf("cache.peak_bytes = %v (ok=%v), stats report %d", s.Value, ok, stats.PeakCacheBytes)
	}
	if stats.Verify.TracesChecked+stats.Verify.TracesSkipped == 0 {
		t.Error("checking run did no per-trace work at all")
	}

	// Determinism: the identical run on yet another fresh registry produces
	// identical counter values.
	regAgain := NewMetrics()
	ts3, err := OpenStore(dir, StoreOptions{OutOfCore: true, Obs: regAgain})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := CheckStore(ts3, res.Rules, OutOfCoreOptions{CacheBytes: 1 << 16, Obs: regAgain}); err != nil {
		t.Fatal(err)
	}
	if err := ts3.Close(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"verify.traces_checked", "verify.traces_skipped",
		"verify.rule_trace_gates", "verify.consequent_short_circuits",
		"verify.probes_issued",
	} {
		if a, b := counterVal(t, regCheck, name), counterVal(t, regAgain, name); a != b {
			t.Errorf("%s differs across identical runs: %d vs %d", name, a, b)
		}
	}
}
