package core

import (
	"fmt"

	"specmine/internal/iterpattern"
	"specmine/internal/mine"
	"specmine/internal/obs"
	"specmine/internal/plan"
	"specmine/internal/rules"
	"specmine/internal/seqdb"
	"specmine/internal/store"
	"specmine/internal/store/cache"
	"specmine/internal/verify"
)

// Out-of-core mining and checking: MineStore, MineStoreRules and CheckStore
// run directly against a TraceStore's sealed segment catalog through a
// pin-and-evict segment cache, instead of materialising the whole database
// with Recover. Per-segment statistics (event occurrence counts and a bloom
// filter, written into every segment at seal time) decide which segment
// bodies each seed or rule set actually needs; segments that provably cannot
// contribute are never decoded. Results are byte-identical to running the
// in-memory miners over Recover(dir) — same patterns, rules, reports and
// internal counters — for any cache budget and worker count.

// OutOfCoreOptions configures the out-of-core entry points.
type OutOfCoreOptions struct {
	// CacheBytes caps the estimated decoded bytes the segment cache keeps
	// resident; <= 0 means unlimited (everything touched stays cached). The
	// budget is a target: segments pinned by in-flight work are never evicted,
	// so a single seed's working set may exceed it transiently.
	CacheBytes int64
	// Obs, when non-nil, backs the run's segment cache with live registry
	// series and folds the run's mining/verification counters (mine.*,
	// verify.*) into the registry when the run completes.
	Obs *obs.Registry
}

// OutOfCoreStats reports how much work segment statistics saved and how the
// cache behaved during one out-of-core run.
type OutOfCoreStats struct {
	// SegmentsTotal is the catalog size; SegmentsSkipped counts segments whose
	// bodies were never decoded because their statistics proved them
	// irrelevant to every seed (mining) or every rule (checking).
	SegmentsTotal   int
	SegmentsSkipped int
	// BodiesOpened counts segment body decodes, re-decodes after eviction
	// included.
	BodiesOpened int64
	// Cache counters, straight from the pool.
	CacheHits      int64
	CacheMisses    int64
	CacheEvictions int64
	PeakCacheBytes int64

	// Verify counts the verification work performed and avoided — per-trace
	// skips, per-rule gates, consequent short-circuits, probes. Populated by
	// the checking entry points only; mining leaves it zero.
	Verify verify.Metrics
}

func poolStats(p *cache.Pool) *OutOfCoreStats {
	m := p.Metrics()
	return &OutOfCoreStats{
		SegmentsTotal:   p.NumSegments(),
		SegmentsSkipped: p.NumSegments() - m.SegmentsOpened,
		BodiesOpened:    m.BodiesOpened,
		CacheHits:       m.Hits,
		CacheMisses:     m.Misses,
		CacheEvictions:  m.Evictions,
		PeakCacheBytes:  m.PeakBytes,
	}
}

// segSource adapts the segment catalog + cache to the miners' mine.Source:
// global event frequencies come from summed segment statistics, and each
// seed's view is assembled by pinning exactly the segments whose statistics
// show the seed event, collecting the traces that contain it. Safe for
// concurrent AcquireSeed calls (the pool serialises internally).
type segSource struct {
	pool *cache.Pool
	dict *seqdb.Dictionary

	numTraces int
	stats     []*store.SegmentStats // per catalog segment, resident
	occ       []int64               // global occurrence count per event id
	sup       []int64               // global sequence support per event id
}

// newSegSource loads every segment's statistics (metadata-sized; bodies stay
// closed) and aggregates the global event frequencies the miners seed from.
func newSegSource(st *store.Store, oo OutOfCoreOptions) (*segSource, error) {
	pool := cache.New(st, cache.Options{BudgetBytes: oo.CacheBytes, Obs: oo.Obs})
	n := st.Dict().Size()
	s := &segSource{
		pool:  pool,
		dict:  st.Dict(),
		stats: make([]*store.SegmentStats, pool.NumSegments()),
		occ:   make([]int64, n),
		sup:   make([]int64, n),
	}
	for i := 0; i < pool.NumSegments(); i++ {
		ss, err := pool.Stats(i)
		if err != nil {
			return nil, err
		}
		s.stats[i] = ss
		s.numTraces += pool.Meta(i).NumTraces()
		ss.ForEachEvent(func(e seqdb.EventID, occurrences, traces int64) {
			if int(e) < n {
				s.occ[e] += occurrences
				s.sup[e] += traces
			}
		})
	}
	return s, nil
}

func (s *segSource) NumSequences() int { return s.numTraces }
func (s *segSource) NumEvents() int    { return len(s.occ) }

func (s *segSource) FrequentByInstanceCount(min int) []seqdb.EventID {
	return frequent(s.occ, min)
}

func (s *segSource) FrequentBySeqSupport(min int) []seqdb.EventID {
	return frequent(s.sup, min)
}

// frequent mirrors PositionIndex.FrequentEventsByInstanceCount /
// BySeqSupport: events meeting the threshold, ascending by id.
func frequent(counts []int64, min int) []seqdb.EventID {
	var out []seqdb.EventID
	for e := range counts {
		if counts[e] >= int64(min) {
			out = append(out, seqdb.EventID(e))
		}
	}
	return out
}

// AcquireSeed pins every segment whose statistics show the seed event (exact
// counts — no bloom false positives here) and assembles the seed's view:
// the traces containing the event, in ascending global order, with the
// local→global id table. The pins hold until Release, so the view's memory
// is accounted against the cache budget for its whole lifetime.
func (s *segSource) AcquireSeed(e seqdb.EventID) (*mine.SeedView, error) {
	var pins []*cache.Segment
	release := func() {
		for _, sg := range pins {
			sg.Unpin()
		}
	}
	db := seqdb.NewDatabaseWithDict(s.dict)
	var global []int32
	for i := range s.stats {
		if occ, _ := s.stats[i].Count(e); occ == 0 {
			continue
		}
		sg, err := s.pool.Pin(i)
		if err != nil {
			release()
			return nil, err
		}
		pins = append(pins, sg)
		frag := sg.Fragment()
		for _, l := range frag.SeqsContaining(e) {
			db.Append(sg.Seqs[l])
			global = append(global, int32(sg.Base)+l)
		}
	}
	return &mine.SeedView{DB: db, Idx: db.FlatIndex(), Global: global, Release: release}, nil
}

// MineStore mines iterative patterns straight from the store's sealed
// segments — byte-identical to MinePatterns over Recover of the same store,
// without ever materialising the full database. PatternOptions carries the
// same knobs as MinePatterns; pattern count limits are not supported
// out-of-core.
func MineStore(st *TraceStore, opts PatternOptions, oo OutOfCoreOptions) (*PatternResult, *OutOfCoreStats, error) {
	src, err := newSegSource(st, oo)
	if err != nil {
		return nil, nil, err
	}
	iopts := iterpattern.Options{
		MinInstanceSupport: opts.MinSupport,
		MinSupportRel:      opts.MinSupportRel,
		MaxPatternLength:   opts.MaxLength,
		IncludeInstances:   opts.KeepInstances,
		Workers:            opts.Workers,
	}
	res, err := iterpattern.MineSource(src, iopts, !opts.Full)
	if err != nil {
		return nil, nil, fmt.Errorf("mining iterative patterns out-of-core: %w", err)
	}
	if r := oo.Obs; r != nil {
		r.Counter("mine.seeds").Add(int64(len(src.FrequentByInstanceCount(res.MinSupport))))
		publishPatternStats(r, res.Stats)
	}
	return &PatternResult{
		Patterns:   res.Patterns,
		Closed:     !opts.Full,
		MinSupport: res.MinSupport,
		Stats:      res.Stats,
	}, poolStats(src.pool), nil
}

// publishPatternStats folds a pattern-mining run's search counters into the
// registry's cumulative mine.* series.
func publishPatternStats(r *obs.Registry, s iterpattern.Stats) {
	r.Counter("mine.nodes_explored").Add(int64(s.NodesExplored))
	r.Counter("mine.nodes_pruned_infrequent").Add(int64(s.NodesPrunedInfrequent))
	r.Counter("mine.patterns_emitted").Add(int64(s.PatternsEmitted))
	r.Histogram("mine.duration_ns").Observe(s.Duration.Nanoseconds())
}

// publishRuleStats is publishPatternStats for rule mining.
func publishRuleStats(r *obs.Registry, s rules.Stats) {
	r.Counter("mine.premises_explored").Add(int64(s.PremisesExplored))
	r.Counter("mine.consequents_explored").Add(int64(s.ConsequentNodesExplored))
	r.Counter("mine.rules_emitted").Add(int64(s.RulesEmitted))
	r.Histogram("mine.duration_ns").Observe(s.Duration.Nanoseconds())
}

// MineStoreRules mines recurrent rules straight from the store's sealed
// segments — byte-identical to MineRules over Recover of the same store.
func MineStoreRules(st *TraceStore, opts RuleOptions, oo OutOfCoreOptions) (*RuleResult, *OutOfCoreStats, error) {
	if opts.MinInstanceSupport == 0 {
		opts.MinInstanceSupport = 1
	}
	if opts.MinConfidence == 0 {
		opts.MinConfidence = 0.9
	}
	src, err := newSegSource(st, oo)
	if err != nil {
		return nil, nil, err
	}
	ropts := rules.Options{
		MinSeqSupport:       opts.MinSeqSupport,
		MinSeqSupportRel:    opts.MinSeqSupportRel,
		MinInstanceSupport:  opts.MinInstanceSupport,
		MinConfidence:       opts.MinConfidence,
		MaxPremiseLength:    opts.MaxPremiseLength,
		MaxConsequentLength: opts.MaxConsequentLength,
		Workers:             opts.Workers,
	}
	res, err := rules.MineSource(src, ropts, !opts.Full)
	if err != nil {
		return nil, nil, fmt.Errorf("mining recurrent rules out-of-core: %w", err)
	}
	if oo.Obs != nil {
		publishRuleStats(oo.Obs, res.Stats)
	}
	return &RuleResult{Rules: res.Rules, NonRedundant: !opts.Full, Stats: res.Stats}, poolStats(src.pool), nil
}

// CheckStore verifies a rule set against the store's sealed traces segment by
// segment — byte-identical to CheckRules over Recover of the same store. A
// segment in which every rule has at least one premise event that provably
// never occurs is answered from its statistics alone (each of its traces
// satisfies every rule with zero temporal points), without decoding the body.
// Decoded segments go through the statistics-driven planner: rules are gated
// per trace by presence probes in rarest-first order, consequent-dead rules
// are short-circuited, and traces every rule is gated on never touch position
// data. The per-query work counters land in OutOfCoreStats.Verify.
func CheckStore(st *TraceStore, ruleSet []Rule, oo OutOfCoreOptions) (verify.Summary, *OutOfCoreStats, error) {
	sum, stats, _, err := checkStorePlanned(st, ruleSet, nil, oo)
	return sum, stats, err
}

// CheckStoreWhere is CheckStore restricted to the traces selected by where,
// with the predicate pushed into the segment catalog: segments whose ordinal
// range misses the window/id list, or whose statistics prove a required event
// absent, are pruned without decoding. Violations carry global trace
// ordinals, so the summary is byte-identical to CheckWhere over Recover of
// the same store. The returned Explain includes segment-pruning counts.
func CheckStoreWhere(st *TraceStore, ruleSet []Rule, where Where, oo OutOfCoreOptions) (verify.Summary, *OutOfCoreStats, *Explain, error) {
	return checkStorePlanned(st, ruleSet, &where, oo)
}

func checkStorePlanned(st *TraceStore, ruleSet []Rule, where *Where, oo OutOfCoreOptions) (verify.Summary, *OutOfCoreStats, *Explain, error) {
	engine, err := verify.NewEngine(ruleSet)
	if err != nil {
		return verify.Summary{}, nil, nil, err
	}
	pool := cache.New(st, cache.Options{BudgetBytes: oo.CacheBytes, Obs: oo.Obs})
	numSegs := pool.NumSegments()

	// Statistics pass: per-segment stats stay resident, and their per-event
	// trace supports sum into the global estimates the planner orders probes
	// by. No segment body is opened here.
	nEvents := st.Dict().Size()
	sup := make([]int64, nEvents)
	segStats := make([]*store.SegmentStats, numSegs)
	total := 0
	for i := 0; i < numSegs; i++ {
		ss, err := pool.Stats(i)
		if err != nil {
			return verify.Summary{}, nil, nil, err
		}
		segStats[i] = ss
		total += pool.Meta(i).NumTraces()
		ss.ForEachEvent(func(e seqdb.EventID, _, traces int64) {
			if int(e) < nEvents {
				sup[e] += traces
			}
		})
	}

	pl := plan.New(engine, plan.SupportStats{Sup: sup, Traces: total})
	reports := engine.NewReports()
	var run *plan.Run // bound to the first decoded segment's fragment
	var metrics verify.Metrics
	segsPruned := 0
	si := 0
	for i := 0; i < numSegs; i++ {
		ss := segStats[i]
		n := pool.Meta(i).NumTraces()
		base := si
		si += n
		if where != nil && !segmentMaySelect(ss, *where, base, n) {
			segsPruned++
			continue // predicate selects nothing here: contributes no reports
		}
		mayContain := func(e seqdb.EventID) bool {
			occ, _ := ss.Count(e)
			return occ > 0
		}
		if engine.SegmentSkippable(mayContain) {
			// Every rule is statically dead: each selected trace satisfies
			// every rule with zero temporal points. With no event predicates
			// the selected count falls out of the catalog alone; an event
			// predicate needs the decoded traces to know which are selected.
			if where == nil || !where.HasEventPredicates() {
				count := n
				if where != nil {
					count = where.CountOrdinalMatches(base, n)
				}
				verify.AccountSkippedTraces(reports, count)
				metrics.SegmentsSkipped++
				metrics.TracesSkipped += int64(count)
				segsPruned++
				continue
			}
		}
		sg, err := pool.Pin(i)
		if err != nil {
			return verify.Summary{}, nil, nil, err
		}
		frag := sg.Fragment()
		if run == nil {
			run = pl.NewRun(frag)
		} else {
			run.Rebind(frag)
		}
		run.SetSegmentHints(mayContain)
		metrics.SegmentsChecked++
		for l := range sg.Seqs {
			g := base + l
			if where != nil && !where.MatchesSeq(frag, l, g) {
				continue
			}
			run.CheckTrace(l, g, reports)
		}
		sg.Unpin()
	}
	if run != nil {
		metrics.Merge(run.Metrics)
	} else {
		run = pl.NewRun(nil) // counters all zero; only Explain is read
	}
	ex := run.Explain()
	ex.Metrics = metrics
	ex.SegmentsTotal = numSegs
	ex.SegmentsPruned = segsPruned
	ooStats := poolStats(pool)
	ooStats.Verify = metrics
	metrics.Publish(oo.Obs)
	return verify.NewSummary(reports), ooStats, ex, nil
}

// segmentMaySelect reports whether where can select any trace of a segment
// occupying ordinals [base, base+n) with statistics ss — the catalog-level
// predicate pushdown: a window/id miss or a required event with zero count
// prunes the segment without decoding.
func segmentMaySelect(ss *store.SegmentStats, where Where, base, n int) bool {
	if !where.OrdinalOverlap(base, n) {
		return false
	}
	for _, e := range where.HasAll {
		if occ, _ := ss.Count(e); occ == 0 {
			return false
		}
	}
	if len(where.HasAny) > 0 {
		any := false
		for _, e := range where.HasAny {
			if occ, _ := ss.Count(e); occ > 0 {
				any = true
				break
			}
		}
		if !any {
			return false
		}
	}
	return true
}
