package ltl

import (
	"math/rand"
	"testing"

	"specmine/internal/rules"
	"specmine/internal/seqdb"
)

func dictWith(names ...string) *seqdb.Dictionary {
	d := seqdb.NewDictionary()
	for _, n := range names {
		d.Intern(n)
	}
	return d
}

// TestTable1 reproduces Table 1: the example formulas and their English
// meanings.
func TestTable1(t *testing.T) {
	d := dictWith("lock", "unlock", "main", "end")
	unlock := Atom{Event: d.Lookup("unlock")}

	cases := []struct {
		formula     Formula
		wantString  string
		wantMeaning string
	}{
		{
			formula:     Finally{Body: unlock},
			wantString:  "F(unlock)",
			wantMeaning: "Eventually unlock is called",
		},
		{
			formula:     Next{Body: Finally{Body: unlock}},
			wantString:  "XF(unlock)",
			wantMeaning: "From the next event onwards, eventually unlock is called",
		},
		{
			formula:     mustRule(t, d, "lock", "unlock"),
			wantString:  "G(lock -> XF(unlock))",
			wantMeaning: "Globally whenever lock is called, then from the next event onwards, eventually unlock is called",
		},
		{
			formula:     mustRule(t, d, "main lock", "unlock end"),
			wantString:  "G(main -> XG(lock -> XF(unlock /\\ XF(end))))",
			wantMeaning: "Globally whenever main followed by lock are called, then from the next event onwards, eventually unlock followed by end are called",
		},
	}
	for i, c := range cases {
		if got := c.formula.String(d); got != c.wantString {
			t.Errorf("case %d: String=%q want %q", i, got, c.wantString)
		}
		if got := Describe(c.formula, d); got != c.wantMeaning {
			t.Errorf("case %d: Describe=%q want %q", i, got, c.wantMeaning)
		}
	}
}

// TestTable2 reproduces Table 2: rules and their LTL equivalences.
func TestTable2(t *testing.T) {
	d := dictWith("a", "b", "c", "d")
	cases := []struct {
		pre, post string
		want      string
	}{
		{"a", "b", "G(a -> XF(b))"},
		{"a b", "c", "G(a -> XG(b -> XF(c)))"},
		{"a", "b c", "G(a -> XF(b /\\ XF(c)))"},
		{"a b", "c d", "G(a -> XG(b -> XF(c /\\ XF(d))))"},
	}
	for _, c := range cases {
		f := mustRule(t, d, c.pre, c.post)
		if got := f.String(d); got != c.want {
			t.Errorf("%s -> %s: %q want %q", c.pre, c.post, got, c.want)
		}
		// Round trip through DecomposeRule.
		pre, post, ok := DecomposeRule(f)
		if !ok {
			t.Errorf("%s -> %s: decompose failed", c.pre, c.post)
			continue
		}
		if !pre.Equal(seqdb.ParsePattern(d, c.pre)) || !post.Equal(seqdb.ParsePattern(d, c.post)) {
			t.Errorf("%s -> %s: round trip gave %s -> %s", c.pre, c.post, pre.String(d), post.String(d))
		}
	}
}

func mustRule(t *testing.T, d *seqdb.Dictionary, pre, post string) Formula {
	t.Helper()
	f, err := FromRule(seqdb.ParsePattern(d, pre), seqdb.ParsePattern(d, post))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFromRuleRejectsEmptySides(t *testing.T) {
	d := dictWith("a")
	if _, err := FromRule(nil, seqdb.ParsePattern(d, "a")); err == nil {
		t.Errorf("empty premise accepted")
	}
	if _, err := FromRule(seqdb.ParsePattern(d, "a"), nil); err == nil {
		t.Errorf("empty consequent accepted")
	}
}

func TestHoldsOperators(t *testing.T) {
	d := dictWith("a", "b", "c")
	a, b := Atom{Event: d.Lookup("a")}, Atom{Event: d.Lookup("b")}
	s := seqdb.Sequence{d.Lookup("a"), d.Lookup("c"), d.Lookup("b")}

	if !Holds(a, s) {
		t.Errorf("atom at position 0 should hold")
	}
	if Holds(b, s) {
		t.Errorf("atom b should not hold at position 0")
	}
	if !Holds(Finally{Body: b}, s) {
		t.Errorf("F(b) should hold")
	}
	if Holds(Globally{Body: a}, s) {
		t.Errorf("G(a) should not hold")
	}
	if !Holds(Globally{Body: Implies{Left: b, Right: Atom{Event: d.Lookup("b")}}}, s) {
		t.Errorf("G(b -> b) should hold vacuously/trivially")
	}
	if !Holds(Next{Body: Atom{Event: d.Lookup("c")}}, s) {
		t.Errorf("X(c) should hold")
	}
	if Holds(Next{Body: Next{Body: Next{Body: a}}}, s) {
		t.Errorf("XXX(a) runs off the trace and must not hold")
	}
	if !Holds(And{Left: a, Right: Finally{Body: b}}, s) {
		t.Errorf("a /\\ F(b) should hold")
	}
	if got := (And{Left: a, Right: b}).String(d); got != "a /\\ b" {
		t.Errorf("And.String=%q", got)
	}
	if got := (Implies{Left: a, Right: And{Left: a, Right: b}}).String(d); got != "a -> (a /\\ b)" {
		t.Errorf("Implies.String=%q", got)
	}
	if got := (Next{Body: a}).String(d); got != "X(a)" {
		t.Errorf("Next.String=%q", got)
	}
}

func TestRuleFormulaMatchesTemporalSemantics(t *testing.T) {
	// G(pre -> ... XF(post)) must hold on a trace exactly when every temporal
	// point of the premise is followed by the consequent — the semantics the
	// rule miner uses. Cross-validate on random traces.
	d := dictWith("a", "b", "c")
	rng := rand.New(rand.NewSource(97))
	prePatterns := []string{"a", "b", "a b", "b a"}
	postPatterns := []string{"c", "a", "b c", "c a"}
	for iter := 0; iter < 300; iter++ {
		n := 1 + rng.Intn(10)
		s := make(seqdb.Sequence, n)
		for i := range s {
			s[i] = seqdb.EventID(rng.Intn(3))
		}
		pre := seqdb.ParsePattern(d, prePatterns[rng.Intn(len(prePatterns))])
		post := seqdb.ParsePattern(d, postPatterns[rng.Intn(len(postPatterns))])
		f, err := FromRule(pre, post)
		if err != nil {
			t.Fatal(err)
		}
		want := true
		for _, tp := range rules.TemporalPoints(s, pre) {
			if !seqdb.Sequence(s[tp+1:]).ContainsSubsequence(post) {
				want = false
				break
			}
		}
		if got := Holds(f, s); got != want {
			t.Fatalf("iter %d: formula %s on %s: got %v want %v", iter, f.String(d), s.String(d), got, want)
		}
	}
}

func TestHoldsOnDatabase(t *testing.T) {
	db := seqdb.NewDatabase()
	db.AppendNames("lock", "use", "unlock")
	db.AppendNames("lock", "use")
	db.AppendNames("idle")
	f, err := FromRule(seqdb.ParsePattern(db.Dict, "lock"), seqdb.ParsePattern(db.Dict, "unlock"))
	if err != nil {
		t.Fatal(err)
	}
	sat, vio := HoldsOnDatabase(f, db)
	// Trace 1 satisfies, trace 2 violates, trace 3 satisfies vacuously.
	if sat != 2 || vio != 1 {
		t.Errorf("sat=%d vio=%d want 2/1", sat, vio)
	}
}

func TestDescribeFallback(t *testing.T) {
	d := dictWith("a", "b")
	f := And{Left: Atom{Event: d.Lookup("a")}, Right: Atom{Event: d.Lookup("b")}}
	if got := Describe(f, d); got != f.String(d) {
		t.Errorf("Describe fallback should render symbolically: %q", got)
	}
}

func TestDecomposeRuleRejectsOtherShapes(t *testing.T) {
	d := dictWith("a", "b")
	a := Atom{Event: d.Lookup("a")}
	cases := []Formula{
		a,
		Finally{Body: a},
		Globally{Body: a},
		Globally{Body: Implies{Left: a, Right: a}},
		Globally{Body: Implies{Left: Finally{Body: a}, Right: Next{Body: Finally{Body: a}}}},
	}
	for i, f := range cases {
		if _, _, ok := DecomposeRule(f); ok {
			t.Errorf("case %d: decompose accepted non-rule formula %s", i, f.String(d))
		}
	}
}
