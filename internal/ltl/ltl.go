// Package ltl implements the Linear Temporal Logic fragment of Section 3.3 of
// the paper: formulas built from atomic events with the operators G
// (globally), F (finally/eventually), X (next), conjunction and implication,
// evaluated over finite traces (a program trace is one finite path).
//
// The package provides the translation from mined recurrent rules to LTL
// (Table 2), English readings of formulas (Table 1), a renderer, a parser-free
// constructor API and a finite-trace checker used by the verification
// utilities.
package ltl

import (
	"fmt"
	"strings"

	"specmine/internal/seqdb"
)

// Formula is an LTL formula over event propositions. A formula is evaluated
// at a position of a finite trace; an atomic event proposition holds at a
// position iff the event at that position is the proposition's event.
type Formula interface {
	// String renders the formula using dict for event names.
	String(dict *seqdb.Dictionary) string
	// holds reports whether the formula is satisfied by trace s at position i
	// (0-based). Positions run from 0 to len(s); at position len(s) the trace
	// has ended and only vacuously true formulas hold.
	holds(s seqdb.Sequence, i int) bool
}

// Atom is the proposition "the current event is Event".
type Atom struct {
	Event seqdb.EventID
}

// Globally is G(φ): φ holds at every position from the current one onwards.
type Globally struct {
	Body Formula
}

// Finally is F(φ): φ holds at the current position or some later one.
type Finally struct {
	Body Formula
}

// Next is X(φ): φ holds at the next position.
type Next struct {
	Body Formula
}

// And is φ ∧ ψ.
type And struct {
	Left, Right Formula
}

// Implies is φ → ψ.
type Implies struct {
	Left, Right Formula
}

// String implementations render in the paper's notation.

func (a Atom) String(dict *seqdb.Dictionary) string { return dict.Name(a.Event) }

func (g Globally) String(dict *seqdb.Dictionary) string {
	return "G(" + g.Body.String(dict) + ")"
}

func (f Finally) String(dict *seqdb.Dictionary) string {
	return "F(" + f.Body.String(dict) + ")"
}

func (x Next) String(dict *seqdb.Dictionary) string {
	// XF(...) and XG(...) read better without extra parentheses, matching the
	// paper's rendering (e.g. "G(lock -> XF(unlock))").
	switch body := x.Body.(type) {
	case Finally:
		return "XF(" + body.Body.String(dict) + ")"
	case Globally:
		return "XG(" + body.Body.String(dict) + ")"
	default:
		return "X(" + x.Body.String(dict) + ")"
	}
}

func (a And) String(dict *seqdb.Dictionary) string {
	return a.Left.String(dict) + " /\\ " + a.Right.String(dict)
}

func (im Implies) String(dict *seqdb.Dictionary) string {
	return im.Left.String(dict) + " -> " + wrapIfCompound(im.Right, dict)
}

func wrapIfCompound(f Formula, dict *seqdb.Dictionary) string {
	switch f.(type) {
	case Atom, Finally, Globally, Next:
		return f.String(dict)
	default:
		return "(" + f.String(dict) + ")"
	}
}

// holds implementations: finite-trace semantics.

func (a Atom) holds(s seqdb.Sequence, i int) bool {
	return i >= 0 && i < len(s) && s[i] == a.Event
}

func (g Globally) holds(s seqdb.Sequence, i int) bool {
	for j := i; j < len(s); j++ {
		if !g.Body.holds(s, j) {
			return false
		}
	}
	return true
}

func (f Finally) holds(s seqdb.Sequence, i int) bool {
	for j := i; j < len(s); j++ {
		if f.Body.holds(s, j) {
			return true
		}
	}
	return false
}

func (x Next) holds(s seqdb.Sequence, i int) bool {
	return x.Body.holds(s, i+1)
}

func (a And) holds(s seqdb.Sequence, i int) bool {
	return a.Left.holds(s, i) && a.Right.holds(s, i)
}

func (im Implies) holds(s seqdb.Sequence, i int) bool {
	return !im.Left.holds(s, i) || im.Right.holds(s, i)
}

// Holds evaluates the formula over the whole trace (position 0).
func Holds(f Formula, s seqdb.Sequence) bool {
	return f.holds(s, 0)
}

// HoldsOnDatabase reports how many sequences of db satisfy f and how many do
// not.
func HoldsOnDatabase(f Formula, db *seqdb.Database) (satisfied, violated int) {
	for _, s := range db.Sequences {
		if Holds(f, s) {
			satisfied++
		} else {
			violated++
		}
	}
	return satisfied, violated
}

// --- rule translation (Table 2 and the BNF of Section 3.3) ---

// FromRule translates a recurrent rule pre -> post into its LTL formula
// following the grammar of Section 3.3:
//
//	rules   := G(prepost)
//	prepost := event -> post | event -> XG(prepost)
//	post    := XF(event) | XF(event /\ XF(post))
//
// Examples (Table 2):
//
//	<a> -> <b>        G(a -> XF(b))
//	<a,b> -> <c>      G(a -> XG(b -> XF(c)))
//	<a> -> <b,c>      G(a -> XF(b /\ XF(c)))
//	<a,b> -> <c,d>    G(a -> XG(b -> XF(c /\ XF(d))))
func FromRule(pre, post seqdb.Pattern) (Formula, error) {
	if len(pre) == 0 || len(post) == 0 {
		return nil, fmt.Errorf("ltl: rule must have a non-empty premise and consequent (pre=%d post=%d events)", len(pre), len(post))
	}
	return Globally{Body: prepost(pre, post)}, nil
}

func prepost(pre, post seqdb.Pattern) Formula {
	head := Atom{Event: pre[0]}
	if len(pre) == 1 {
		return Implies{Left: head, Right: Next{Body: Finally{Body: postFormula(post)}}}
	}
	return Implies{Left: head, Right: Next{Body: Globally{Body: prepost(pre[1:], post)}}}
}

func postFormula(post seqdb.Pattern) Formula {
	head := Atom{Event: post[0]}
	if len(post) == 1 {
		return head
	}
	return And{Left: head, Right: Next{Body: Finally{Body: postFormula(post[1:])}}}
}

// Describe returns an English reading of the formula in the style of Table 1.
// Only the shapes produced by FromRule and the simple F/XF/G forms of Table 1
// receive bespoke wording; other formulas fall back to their symbolic form.
func Describe(f Formula, dict *seqdb.Dictionary) string {
	switch v := f.(type) {
	case Finally:
		if a, ok := v.Body.(Atom); ok {
			return fmt.Sprintf("Eventually %s is called", dict.Name(a.Event))
		}
	case Next:
		if fin, ok := v.Body.(Finally); ok {
			if a, ok := fin.Body.(Atom); ok {
				return fmt.Sprintf("From the next event onwards, eventually %s is called", dict.Name(a.Event))
			}
		}
	case Globally:
		if pre, post, ok := decomposeRule(f); ok {
			return fmt.Sprintf("Globally whenever %s %s called, then from the next event onwards, eventually %s %s called",
				nameList(pre, dict), isAre(pre), nameList(post, dict), isAre(post))
		}
	}
	return f.String(dict)
}

// isAre returns the verb agreeing with the number of events listed.
func isAre(p seqdb.Pattern) string {
	if len(p) == 1 {
		return "is"
	}
	return "are"
}

func nameList(p seqdb.Pattern, dict *seqdb.Dictionary) string {
	names := make([]string, len(p))
	for i, e := range p {
		names[i] = dict.Name(e)
	}
	if len(names) == 1 {
		return names[0]
	}
	return strings.Join(names[:len(names)-1], ", ") + " followed by " + names[len(names)-1]
}

// decomposeRule recovers (pre, post) from a formula produced by FromRule. It
// returns ok=false for formulas outside the minable fragment.
func decomposeRule(f Formula) (pre, post seqdb.Pattern, ok bool) {
	g, isG := f.(Globally)
	if !isG {
		return nil, nil, false
	}
	body := g.Body
	for {
		im, isImp := body.(Implies)
		if !isImp {
			return nil, nil, false
		}
		a, isAtom := im.Left.(Atom)
		if !isAtom {
			return nil, nil, false
		}
		pre = append(pre, a.Event)
		next, isNext := im.Right.(Next)
		if !isNext {
			return nil, nil, false
		}
		switch inner := next.Body.(type) {
		case Globally:
			body = inner.Body
			continue
		case Finally:
			post, ok = decomposePost(inner)
			if !ok {
				return nil, nil, false
			}
			return pre, post, true
		default:
			return nil, nil, false
		}
	}
}

func decomposePost(f Finally) (seqdb.Pattern, bool) {
	var post seqdb.Pattern
	body := f.Body
	for {
		switch v := body.(type) {
		case Atom:
			post = append(post, v.Event)
			return post, true
		case And:
			a, isAtom := v.Left.(Atom)
			if !isAtom {
				return nil, false
			}
			next, isNext := v.Right.(Next)
			if !isNext {
				return nil, false
			}
			fin, isFin := next.Body.(Finally)
			if !isFin {
				return nil, false
			}
			post = append(post, a.Event)
			body = fin.Body
		default:
			return nil, false
		}
	}
}

// DecomposeRule is the exported form of decomposeRule, used by verification
// code that needs to recover the rule shape from a formula.
func DecomposeRule(f Formula) (pre, post seqdb.Pattern, ok bool) {
	return decomposeRule(f)
}
