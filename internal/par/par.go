// Package par provides the one worker-pool shape the miners need: a bounded
// pool pulling item indices off an atomic counter. Callers write results into
// per-index slots, so output order — and therefore mining determinism — never
// depends on scheduling.
package par

import (
	"sync"
	"sync/atomic"
)

// For runs fn(i) for every i in [0, n) across at most workers goroutines.
// With workers <= 1 it degenerates to a plain loop on the calling goroutine.
func For(n, workers int, fn func(i int)) {
	ForWorker(n, workers, func() struct{} { return struct{}{} }, func(_ struct{}, i int) { fn(i) })
}

// ForWorker is For with per-goroutine state: newWorker runs once on each
// pool goroutine (or once on the calling goroutine when the pool degenerates)
// and its result is passed to every fn call that goroutine executes. Use it
// when fn needs scratch buffers that must not be shared across goroutines.
func ForWorker[W any](n, workers int, newWorker func() W, fn func(w W, i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		w := newWorker()
		for i := 0; i < n; i++ {
			fn(w, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := newWorker()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(w, i)
			}
		}()
	}
	wg.Wait()
}
