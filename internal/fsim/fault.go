package fsim

import (
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"syscall"
)

// Op classifies filesystem operations for fault matching.
type Op uint8

const (
	// OpAny matches every operation.
	OpAny Op = iota
	// OpOpen matches FS.OpenFile.
	OpOpen
	// OpRead matches FS.ReadFile.
	OpRead
	// OpWrite matches File.Write and FS.WriteFile.
	OpWrite
	// OpSync matches File.Sync and FS.SyncPath.
	OpSync
	// OpRename matches FS.Rename (on the destination path).
	OpRename
	// OpRemove matches FS.Remove.
	OpRemove
	// OpReadDir matches FS.ReadDir.
	OpReadDir
	// OpMkdir matches FS.MkdirAll.
	OpMkdir
	// OpTruncate matches File.Truncate and FS.Truncate.
	OpTruncate
	// OpClose matches File.Close.
	OpClose
)

var opNames = [...]string{"any", "open", "read", "write", "sync", "rename", "remove", "readdir", "mkdir", "truncate", "close"}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Rule is one entry of a fault schedule. Matching is deterministic: each rule
// keeps its own count of the operations it matches (by Op class and path
// substring), and injects its fault while that count lies in the half-open
// window [From, To) — so "fail the 3rd sync of the shard WAL" is
// {Op: OpSync, Path: "shard-000", From: 2}, and "ENOSPC on writes 5..9 that
// then clears" is {Op: OpWrite, From: 5, To: 10, Err: syscall.ENOSPC}.
type Rule struct {
	// Op selects the operation class; OpAny matches all.
	Op Op
	// Path is a substring the full path must contain; empty matches all.
	Path string
	// From and To bound the rule's own match count, half-open; To == 0 means
	// the single count From.
	From, To uint64
	// Err is the injected error. Its class (Transient) decides whether the
	// store treats the fault as retryable or permanent; wrap with AsTransient
	// to force the transient class on an arbitrary error.
	Err error
	// Short makes a matched write accept roughly half its payload before
	// failing — a torn frame or partial segment on the real file.
	Short bool
	// Torn makes a matched rename copy a prefix of the source to the
	// destination before failing — a non-atomic rename caught mid-publish.
	Torn bool
}

func (r Rule) window() (uint64, uint64) {
	if r.To == 0 {
		return r.From, r.From + 1
	}
	return r.From, r.To
}

func (r Rule) matches(op Op, path string) bool {
	if r.Op != OpAny && r.Op != op {
		return false
	}
	return r.Path == "" || strings.Contains(path, r.Path)
}

// FaultFS wraps an inner FS with a deterministic fault schedule. It is safe
// for concurrent use; rule counters advance under one lock, so a given
// schedule injects the same faults at the same operation ranks regardless of
// goroutine interleaving of *other* rules (within one rule, concurrent
// matching operations race for the window slots — acceptable, since chaos
// assertions never depend on which caller drew the fault).
type FaultFS struct {
	inner FS

	mu    sync.Mutex
	rules []*ruleState
	log   []string
}

type ruleState struct {
	Rule
	count uint64
}

// NewFaultFS builds a fault-injecting view of inner under the given schedule.
func NewFaultFS(inner FS, rules ...Rule) *FaultFS {
	f := &FaultFS{inner: inner}
	for _, r := range rules {
		f.rules = append(f.rules, &ruleState{Rule: r})
	}
	return f
}

// Injections returns a description of every fault injected so far, in order —
// printed by failing chaos tests so a schedule's effect is visible.
func (f *FaultFS) Injections() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.log...)
}

// check advances every matching rule's counter and returns the first rule
// whose window covers this operation, or nil.
func (f *FaultFS) check(op Op, path string) *Rule {
	f.mu.Lock()
	defer f.mu.Unlock()
	var hit *Rule
	for _, rs := range f.rules {
		if !rs.matches(op, path) {
			continue
		}
		from, to := rs.window()
		n := rs.count
		rs.count++
		if hit == nil && n >= from && n < to {
			hit = &rs.Rule
		}
	}
	if hit != nil && len(f.log) < 512 {
		f.log = append(f.log, fmt.Sprintf("%s %s: %v", op, path, hit.Err))
	}
	return hit
}

func (f *FaultFS) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	if r := f.check(OpOpen, path); r != nil {
		return nil, r.Err
	}
	inner, err := f.inner.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, path: path, inner: inner}, nil
}

func (f *FaultFS) ReadFile(path string) ([]byte, error) {
	if r := f.check(OpRead, path); r != nil {
		return nil, r.Err
	}
	return f.inner.ReadFile(path)
}

func (f *FaultFS) WriteFile(path string, data []byte, perm os.FileMode) error {
	if r := f.check(OpWrite, path); r != nil {
		if r.Short && len(data) > 1 {
			// Leave a torn file behind, exactly as a mid-write crash or a
			// filled disk would.
			_ = f.inner.WriteFile(path, data[:len(data)/2], perm)
		}
		return r.Err
	}
	return f.inner.WriteFile(path, data, perm)
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if r := f.check(OpRename, newpath); r != nil {
		if r.Torn {
			// A non-atomic rename caught mid-copy: the destination exists but
			// holds only a prefix of the source.
			if buf, err := f.inner.ReadFile(oldpath); err == nil && len(buf) > 1 {
				_ = f.inner.WriteFile(newpath, buf[:len(buf)/2], 0o644)
			}
		}
		return r.Err
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(path string) error {
	if r := f.check(OpRemove, path); r != nil {
		return r.Err
	}
	return f.inner.Remove(path)
}

func (f *FaultFS) ReadDir(path string) ([]os.DirEntry, error) {
	if r := f.check(OpReadDir, path); r != nil {
		return nil, r.Err
	}
	return f.inner.ReadDir(path)
}

func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	if r := f.check(OpMkdir, path); r != nil {
		return r.Err
	}
	return f.inner.MkdirAll(path, perm)
}

func (f *FaultFS) Truncate(path string, size int64) error {
	if r := f.check(OpTruncate, path); r != nil {
		return r.Err
	}
	return f.inner.Truncate(path, size)
}

func (f *FaultFS) SyncPath(path string) error {
	if r := f.check(OpSync, path); r != nil {
		return r.Err
	}
	return f.inner.SyncPath(path)
}

// faultFile threads the schedule into per-file operations.
type faultFile struct {
	fs    *FaultFS
	path  string
	inner File
}

func (ff *faultFile) Write(p []byte) (int, error) {
	if r := ff.fs.check(OpWrite, ff.path); r != nil {
		if r.Short && len(p) > 1 {
			n, _ := ff.inner.Write(p[:len(p)/2])
			return n, r.Err
		}
		return 0, r.Err
	}
	return ff.inner.Write(p)
}

func (ff *faultFile) Sync() error {
	if r := ff.fs.check(OpSync, ff.path); r != nil {
		return r.Err
	}
	return ff.inner.Sync()
}

func (ff *faultFile) Truncate(size int64) error {
	if r := ff.fs.check(OpTruncate, ff.path); r != nil {
		return r.Err
	}
	return ff.inner.Truncate(size)
}

func (ff *faultFile) Close() error {
	if r := ff.fs.check(OpClose, ff.path); r != nil {
		return r.Err
	}
	return ff.inner.Close()
}

// RandomSchedule derives a deterministic fault schedule from seed: a mix of
// transient ENOSPC windows (some with short writes), occasional permanent
// EIO faults, torn renames on WAL publishes, and cleanup-path removal
// failures, spread over the operation ranks a small durable workload visits.
// The same seed always yields the same schedule, so a failing chaos run
// reproduces from its logged seed alone.
func RandomSchedule(seed int64) []Rule {
	rng := rand.New(rand.NewSource(seed))
	var rules []Rule
	paths := []string{"", ".wal", ".seg", "dict", "shard-000"}
	pick := func() string { return paths[rng.Intn(len(paths))] }

	// 1-3 transient ENOSPC windows over writes or syncs that later clear.
	for i, n := 0, 1+rng.Intn(3); i < n; i++ {
		op := OpWrite
		if rng.Intn(3) == 0 {
			op = OpSync
		}
		from := uint64(rng.Intn(60))
		rules = append(rules, Rule{
			Op: op, Path: pick(),
			From: from, To: from + 1 + uint64(rng.Intn(5)),
			Err:   syscall.ENOSPC,
			Short: op == OpWrite && rng.Intn(2) == 0,
		})
	}
	// Sometimes a torn rename on a WAL generation publish.
	if rng.Intn(3) == 0 {
		rules = append(rules, Rule{
			Op: OpRename, Path: ".wal",
			From: uint64(rng.Intn(4)),
			Err:  syscall.ENOSPC, Torn: true,
		})
	}
	// Sometimes cleanup failures: removals that leak files (warnings, never
	// degradation — Remove is not on the ack path).
	if rng.Intn(3) == 0 {
		from := uint64(rng.Intn(6))
		rules = append(rules, Rule{
			Op: OpRemove, From: from, To: from + 1 + uint64(rng.Intn(3)),
			Err: syscall.EACCES,
		})
	}
	// Occasionally one permanent fault on the write path — the store must
	// land in degraded read-only, not corrupt anything.
	if rng.Intn(4) == 0 {
		op := OpWrite
		if rng.Intn(4) == 0 {
			op = OpRead // hits compaction's segment reads
		}
		rules = append(rules, Rule{
			Op: op, Path: pick(),
			From: uint64(rng.Intn(80)),
			Err:  syscall.EIO,
		})
	}
	return rules
}
