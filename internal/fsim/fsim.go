// Package fsim abstracts the filesystem under the durable store so that live
// I/O failures — failed fsyncs, short writes, ENOSPC windows, torn renames —
// become injectable and testable instead of theoretical. It has exactly two
// implementations: OS(), a zero-overhead passthrough to the os package that
// production always runs on, and FaultFS, which wraps any FS with a
// deterministic, seedable fault schedule so the store's failure model can be
// exercised (and regression-tested under -race) without real disk faults.
//
// The package also owns the error taxonomy the store's graceful-degradation
// logic is built on: Transient reports whether an error names a condition
// that can clear on its own (ENOSPC after a compaction frees space,
// EINTR-class interruptions), as opposed to a permanent fault (EIO, a closed
// descriptor) that retrying cannot fix.
package fsim

import (
	"errors"
	"io"
	"os"
	"syscall"
)

// File is the narrow slice of *os.File the store's write paths need: append,
// durability barrier, pull-back of unsynced bytes, close.
type File interface {
	io.Writer
	Sync() error
	Truncate(size int64) error
	Close() error
}

// FS is the filesystem surface of the durable store's data path. Every
// operation that touches a WAL, segment, dictionary log or manifest goes
// through it, so a fault-injecting implementation sees — and can fail — each
// one.
type FS interface {
	// OpenFile opens path with os.OpenFile semantics.
	OpenFile(path string, flag int, perm os.FileMode) (File, error)
	// ReadFile reads the whole file.
	ReadFile(path string) ([]byte, error)
	// WriteFile writes data to path, creating or truncating it.
	WriteFile(path string, data []byte, perm os.FileMode) error
	// Rename atomically (on a healthy filesystem) replaces newpath.
	Rename(oldpath, newpath string) error
	// Remove deletes path.
	Remove(path string) error
	// ReadDir lists the directory entries of path.
	ReadDir(path string) ([]os.DirEntry, error)
	// MkdirAll creates path and any missing parents.
	MkdirAll(path string, perm os.FileMode) error
	// Truncate cuts path to size bytes.
	Truncate(path string, size int64) error
	// SyncPath fsyncs path (a file or a directory) by open-sync-close; the
	// store uses it for the publish-then-sync-parent pattern.
	SyncPath(path string) error
}

// osFS is the passthrough production implementation.
type osFS struct{}

// OS returns the passthrough filesystem backed directly by the os package.
func OS() FS { return osFS{} }

func (osFS) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (osFS) WriteFile(path string, data []byte, perm os.FileMode) error {
	return os.WriteFile(path, data, perm)
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(path string) error { return os.Remove(path) }

func (osFS) ReadDir(path string) ([]os.DirEntry, error) { return os.ReadDir(path) }

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) Truncate(path string, size int64) error { return os.Truncate(path, size) }

func (osFS) SyncPath(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

// transientMark wraps an error to force Transient(err) == true regardless of
// the underlying errno — the per-path "error class" hook fault schedules use.
type transientMark struct{ err error }

func (t transientMark) Error() string   { return t.err.Error() }
func (t transientMark) Unwrap() error   { return t.err }
func (t transientMark) Transient() bool { return true }

// AsTransient marks err as transient for Transient, whatever its underlying
// class. nil stays nil.
func AsTransient(err error) error {
	if err == nil {
		return nil
	}
	return transientMark{err: err}
}

// Transient reports whether err names a fault that can clear without
// intervention — disk-full conditions that a compaction (or an operator)
// relieves, and interrupted-call errnos — as opposed to a permanent fault
// that retrying cannot fix. The store's bounded-retry and degradation policy
// is built on this split: transient faults are retried and, when they
// persist, surfaced per-operation while the store stays healthy; permanent
// faults move the store to degraded read-only.
func Transient(err error) bool {
	if err == nil {
		return false
	}
	var tr interface{ Transient() bool }
	if errors.As(err, &tr) {
		return tr.Transient()
	}
	return errors.Is(err, syscall.ENOSPC) ||
		errors.Is(err, syscall.EINTR) ||
		errors.Is(err, syscall.EAGAIN) ||
		errors.Is(err, syscall.ETIMEDOUT)
}
