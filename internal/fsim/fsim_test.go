package fsim

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func TestTransientClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{syscall.ENOSPC, true},
		{syscall.EINTR, true},
		{syscall.EAGAIN, true},
		{syscall.EIO, false},
		{os.ErrClosed, false},
		{errors.New("opaque"), false},
		{AsTransient(errors.New("opaque")), true},
		// Wrapping must survive fmt-style chains.
		{&os.PathError{Op: "write", Path: "x", Err: syscall.ENOSPC}, true},
		{&os.PathError{Op: "write", Path: "x", Err: syscall.EIO}, false},
	}
	for _, c := range cases {
		if got := Transient(c.err); got != c.want {
			t.Errorf("Transient(%v) = %v want %v", c.err, got, c.want)
		}
	}
}

// TestRuleWindows: per-rule counters, half-open windows, single-shot default.
func TestRuleWindows(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaultFS(OS(),
		Rule{Op: OpWrite, Path: "a.dat", From: 1, To: 3, Err: syscall.ENOSPC}, // 2nd and 3rd write to a.dat
		Rule{Op: OpRemove, Err: syscall.EACCES},                               // 1st remove only
	)
	pa := filepath.Join(dir, "a.dat")
	pb := filepath.Join(dir, "b.dat")
	// Writes to b.dat never match the first rule, whatever their rank.
	for i := 0; i < 5; i++ {
		if err := fs.WriteFile(pb, []byte("x"), 0o644); err != nil {
			t.Fatalf("write b #%d: %v", i, err)
		}
	}
	wantErr := []bool{false, true, true, false, false}
	for i, want := range wantErr {
		err := fs.WriteFile(pa, []byte("x"), 0o644)
		if (err != nil) != want {
			t.Fatalf("write a #%d: err=%v want failure=%v", i, err, want)
		}
		if err != nil && !errors.Is(err, syscall.ENOSPC) {
			t.Fatalf("write a #%d: wrong error %v", i, err)
		}
	}
	if err := fs.Remove(pb); !errors.Is(err, syscall.EACCES) {
		t.Fatalf("first remove: %v", err)
	}
	if err := fs.Remove(pb); err != nil {
		t.Fatalf("second remove: %v", err)
	}
	if inj := fs.Injections(); len(inj) != 3 {
		t.Fatalf("injection log has %d entries want 3: %v", len(inj), inj)
	}
}

// TestShortWrite: a Short rule leaves a torn prefix on the real file, both
// through WriteFile and through an open File handle.
func TestShortWrite(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaultFS(OS(), Rule{Op: OpWrite, From: 0, To: 99, Err: syscall.ENOSPC, Short: true})
	p := filepath.Join(dir, "torn.dat")
	payload := []byte("0123456789abcdef")
	if err := fs.WriteFile(p, payload, 0o644); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(payload)/2 {
		t.Fatalf("torn WriteFile left %d bytes want %d", len(got), len(payload)/2)
	}

	clean := NewFaultFS(OS()) // no rules: passthrough for the open
	f, err := clean.OpenFile(filepath.Join(dir, "h.dat"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	hf := &faultFile{fs: fs, path: "h.dat", inner: f}
	n, werr := hf.Write(payload)
	if !errors.Is(werr, syscall.ENOSPC) || n != len(payload)/2 {
		t.Fatalf("handle write: n=%d err=%v", n, werr)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(filepath.Join(dir, "h.dat"))
	if len(got) != len(payload)/2 {
		t.Fatalf("torn handle write left %d bytes want %d", len(got), len(payload)/2)
	}
}

// TestTornRename: the destination holds a prefix of the source and the
// source survives.
func TestTornRename(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaultFS(OS(), Rule{Op: OpRename, Err: syscall.ENOSPC, Torn: true})
	src := filepath.Join(dir, "src.tmp")
	dst := filepath.Join(dir, "dst.wal")
	if err := os.WriteFile(src, []byte("0123456789"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(src, dst); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("rename: %v", err)
	}
	if got, _ := os.ReadFile(dst); len(got) != 5 {
		t.Fatalf("torn destination has %d bytes want 5", len(got))
	}
	if _, err := os.Stat(src); err != nil {
		t.Fatalf("source gone after failed rename: %v", err)
	}
	// The rule was single-shot: the retry succeeds and replaces the torn
	// destination.
	if err := fs.Rename(src, dst); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(dst); string(got) != "0123456789" {
		t.Fatalf("destination after retry: %q", got)
	}
}

// TestSyncFaults: Sync faults fire on file handles and on SyncPath.
func TestSyncFaults(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaultFS(OS(), Rule{Op: OpSync, From: 0, To: 2, Err: syscall.EIO})
	f, err := fs.OpenFile(filepath.Join(dir, "s.dat"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("handle sync: %v", err)
	}
	if err := fs.SyncPath(dir); !errors.Is(err, syscall.EIO) {
		t.Fatalf("SyncPath: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync after window: %v", err)
	}
}

// TestRandomScheduleDeterministic: the same seed yields the same schedule;
// nearby seeds yield a mix of shapes.
func TestRandomScheduleDeterministic(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		a, b := RandomSchedule(seed), RandomSchedule(seed)
		if len(a) != len(b) {
			t.Fatalf("seed %d: lengths differ", seed)
		}
		for i := range a {
			if a[i].Op != b[i].Op || a[i].Path != b[i].Path || a[i].From != b[i].From ||
				a[i].To != b[i].To || a[i].Short != b[i].Short || a[i].Torn != b[i].Torn ||
				!errors.Is(a[i].Err, b[i].Err) {
				t.Fatalf("seed %d rule %d: %+v != %+v", seed, i, a[i], b[i])
			}
		}
		if len(a) == 0 {
			t.Fatalf("seed %d: empty schedule", seed)
		}
	}
}

// TestOSPassthrough: the production FS round-trips the store's operation
// surface.
func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	fs := OS()
	sub := filepath.Join(dir, "a", "b")
	if err := fs.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(sub, "f.dat")
	if err := fs.WriteFile(p, []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := fs.OpenFile(p, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte(" world")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	buf, err := fs.ReadFile(p)
	if err != nil || string(buf) != "hello world" {
		t.Fatalf("read back %q err %v", buf, err)
	}
	if err := fs.Truncate(p, 5); err != nil {
		t.Fatal(err)
	}
	q := filepath.Join(sub, "g.dat")
	if err := fs.Rename(p, q); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncPath(sub); err != nil {
		t.Fatal(err)
	}
	ents, err := fs.ReadDir(sub)
	if err != nil || len(ents) != 1 || ents[0].Name() != "g.dat" {
		t.Fatalf("ReadDir: %v err %v", ents, err)
	}
	if err := fs.Remove(q); err != nil {
		t.Fatal(err)
	}
}
