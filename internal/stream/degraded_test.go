package stream

import (
	"errors"
	"syscall"
	"testing"
	"time"

	"specmine/internal/fsim"
	"specmine/internal/seqdb"
	"specmine/internal/store"
)

// Deterministic failure-model tests for the streaming layer: the chaos suite
// hits these paths probabilistically, these pin them one mechanism at a time.

// TestDegradedStoreStillServesSnapshots: a permanent fault on the WAL flush
// degrades the store to read-only. Ingest must fail fast with the typed
// error, but snapshots must keep serving the exact in-memory state — the
// degraded contract is "stop promising durability, keep answering reads".
func TestDegradedStoreStillServesSnapshots(t *testing.T) {
	// Write rank 0 on the shard path is the WAL creation at Open; rank 1 is
	// the first flush. EIO is permanent, so the first barrier degrades.
	ffs := fsim.NewFaultFS(fsim.OS(),
		fsim.Rule{Op: fsim.OpWrite, Path: "shard-000", From: 1, To: 1 << 20, Err: syscall.EIO})
	st, err := store.Open(store.Options{Dir: t.TempDir(), Shards: 1, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	ing, err := Open(Config{FlushBatch: 2, Store: st})
	if err != nil {
		t.Fatal(err)
	}

	want := []seqdb.Sequence{}
	dict := ing.Dict()
	for i, names := range [][]string{{"a", "b"}, {"b", "c", "a"}, {"c"}} {
		id := string(rune('x' + i))
		if err := ing.Ingest(id, names...); err != nil {
			t.Fatal(err)
		}
		if err := ing.CloseTrace(id); err != nil {
			t.Fatal(err)
		}
		seq := make(seqdb.Sequence, len(names))
		for k, n := range names {
			seq[k] = dict.Intern(n)
		}
		want = append(want, seq)
	}

	// The seals above crossed FlushBatch, so a barrier already fired and hit
	// the fault; by the time the snapshot drains, the store is degraded —
	// and the snapshot must succeed anyway, from memory.
	v, err := ing.Snapshot()
	if err != nil {
		t.Fatalf("snapshot on a degraded store: %v", err)
	}
	if h := ing.Health(); h.State != store.DegradedReadOnly {
		t.Fatalf("health is %v after a permanent flush fault, want DegradedReadOnly (%+v)", h.State, h)
	}
	if v.DB.NumSequences() != len(want) {
		t.Fatalf("degraded snapshot has %d traces want %d", v.DB.NumSequences(), len(want))
	}
	for i, w := range want {
		g := v.DB.Sequences[i]
		if len(g) != len(w) {
			t.Fatalf("trace %d has %d events want %d", i, len(g), len(w))
		}
		for j := range w {
			if g[j] != w[j] {
				t.Fatalf("trace %d event %d is %d want %d", i, j, g[j], w[j])
			}
		}
	}

	// Writes are rejected at the door with the typed error.
	if err := ing.Ingest("y", "a"); !errors.Is(err, store.ErrDegraded) {
		t.Fatalf("ingest on a degraded store returned %v, want ErrDegraded", err)
	}
	if err := ing.CloseTrace("y"); !errors.Is(err, store.ErrDegraded) {
		t.Fatalf("seal on a degraded store returned %v, want ErrDegraded", err)
	}
	// And reads keep working after the rejections.
	if _, err := ing.Snapshot(); err != nil {
		t.Fatalf("second degraded snapshot: %v", err)
	}
	h := ing.Health()
	if !errors.Is(h.Err, syscall.EIO) || h.Cause == "" {
		t.Fatalf("degraded Health lost its cause: %+v", h)
	}
	_ = ing.Close()
	_ = st.Close()
}

// TestSnapshotNotDurableDuringTransientWindow: a transient fault window that
// outlives the retry budget must fail the snapshot (its barrier flush did not
// reach the OS, so the exposed state would not be recoverable) while leaving
// the store Healthy — and the snapshot must succeed, with full data, as soon
// as the window clears. No reopen, no degradation.
func TestSnapshotNotDurableDuringTransientWindow(t *testing.T) {
	// Ranks 1 and 2 on the shard path are the first two flush attempts
	// (retries disabled below, so each barrier burns exactly one rank).
	ffs := fsim.NewFaultFS(fsim.OS(),
		fsim.Rule{Op: fsim.OpWrite, Path: "shard-000", From: 1, To: 3, Err: syscall.ENOSPC})
	st, err := store.Open(store.Options{
		Dir: t.TempDir(), Shards: 1, FS: ffs,
		RetryAttempts: -1, RetryBackoff: 50 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ing, err := Open(Config{FlushBatch: 1 << 20, Store: st}) // barriers only via Snapshot
	if err != nil {
		t.Fatal(err)
	}
	if err := ing.Ingest("t1", "a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := ing.CloseTrace("t1"); err != nil {
		t.Fatal(err)
	}

	for attempt := 0; attempt < 2; attempt++ {
		if _, err := ing.Snapshot(); err == nil {
			t.Fatalf("snapshot %d inside the ENOSPC window succeeded, want not-durable rejection", attempt)
		} else if errors.Is(err, store.ErrDegraded) || errors.Is(err, store.ErrFailed) {
			t.Fatalf("snapshot %d rejected with %v, want a plain transient error", attempt, err)
		}
		if h := ing.Health(); h.State != store.Healthy {
			t.Fatalf("transient window degraded the store: %+v", h)
		}
	}

	// Window cleared: the same handle resumes, no reopen.
	v, err := ing.Snapshot()
	if err != nil {
		t.Fatalf("snapshot after the window cleared: %v", err)
	}
	if v.DB.NumSequences() != 1 || len(v.DB.Sequences[0]) != 2 {
		t.Fatalf("post-window snapshot lost data: %d traces", v.DB.NumSequences())
	}
	h := ing.Health()
	if h.State != store.Healthy || h.Faults == 0 {
		t.Fatalf("want Healthy with fault count after a cleared window, got %+v", h)
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}
