// Package stream is the online ingestion layer: it turns the batch-oriented
// mining and verification core into a system that absorbs live traces. An
// Ingester fans incoming trace events out to N shards (hashed by trace id);
// each shard is a single goroutine behind a bounded channel that buffers the
// still-open traces, advances an online conformance Checker per trace as
// events arrive, seals terminated traces into the shard's Database, and
// extends the shard's flat positional index incrementally in batched
// flushes — the LogBase-style append-only regime, never a full rebuild.
//
// Snapshot is the bridge back to the batch world: a barrier across all
// shards yields a consistent Database view (sealed traces only) over which
// MinePatterns/MineRules/CheckRules run as usual, plus — when an Engine is
// configured — the accumulated online conformance reports, rebased to the
// view's sequence numbering so they are indistinguishable from a batch
// CheckRules run over the same view.
package stream

import (
	"errors"
	"fmt"
	"sync"

	"specmine/internal/seqdb"
	"specmine/internal/verify"
)

// Config parameterises an Ingester.
type Config struct {
	// Shards is the number of ingestion shards (trace-id hash partitions);
	// default 4. Traces never span shards, so per-trace event order is
	// preserved while independent traces proceed in parallel.
	Shards int
	// Buffer is the per-shard operation channel capacity; default 256.
	// Ingest blocks (backpressure) when a shard's buffer is full.
	Buffer int
	// FlushBatch is how many sealed traces a shard buffers before extending
	// its positional index incrementally; default 32. A Snapshot always
	// flushes first, so the value only trades index freshness for batching.
	FlushBatch int
	// Dict supplies the event-name dictionary, which must be the one the
	// rule set was mined against when Engine is set. Nil creates a fresh
	// dictionary.
	Dict *seqdb.Dictionary
	// Engine, when non-nil, checks every trace online as its events arrive;
	// Snapshot then carries the accumulated conformance reports.
	Engine *verify.Engine
}

// View is a consistent cut of the streamed state, produced by Snapshot.
type View struct {
	// DB holds every sealed trace across all shards (shard-major, in seal
	// order within a shard), sharing the ingester's dictionary. It is a
	// private copy: safe to mine while ingestion continues.
	DB *seqdb.Database
	// ShardDBs are the per-shard snapshot views backing DB, each carrying
	// its shard's incrementally maintained positional index.
	ShardDBs []*seqdb.Database
	// Reports are the online conformance reports accumulated so far, in rule
	// order with violation sequence numbers rebased to DB's numbering —
	// identical to verify.CheckRules(DB, rules). Nil without an Engine.
	Reports []verify.RuleReport
}

type opKind uint8

const (
	opEvents opKind = iota
	opSeal
	opSnapshot
)

type op struct {
	kind   opKind
	id     string
	events []seqdb.EventID
	reply  chan shardView
}

type shardView struct {
	db      *seqdb.Database
	reports []verify.RuleReport
}

// Ingester is the sharded streaming front end. All methods are safe for
// concurrent use by any number of producer goroutines.
type Ingester struct {
	cfg    Config
	dict   *seqdb.Dictionary
	shards []*shard

	// lifeMu guards closed: sends hold the read side so Close (write side)
	// cannot close the shard channels while a send is in flight.
	lifeMu sync.RWMutex
	closed bool
}

// NewIngester starts the shard goroutines and returns a ready ingester.
func NewIngester(cfg Config) *Ingester {
	if cfg.Shards < 1 {
		cfg.Shards = 4
	}
	if cfg.Buffer < 1 {
		cfg.Buffer = 256
	}
	if cfg.FlushBatch < 1 {
		cfg.FlushBatch = 32
	}
	if cfg.Dict == nil {
		cfg.Dict = seqdb.NewDictionary()
	}
	ing := &Ingester{cfg: cfg, dict: cfg.Dict, shards: make([]*shard, cfg.Shards)}
	for i := range ing.shards {
		sh := &shard{
			ops:        make(chan op, cfg.Buffer),
			done:       make(chan struct{}),
			db:         seqdb.NewDatabaseWithDict(cfg.Dict),
			engine:     cfg.Engine,
			flushBatch: cfg.FlushBatch,
			open:       make(map[string]*openTrace),
		}
		if cfg.Engine != nil {
			sh.reports = cfg.Engine.NewReports()
		}
		ing.shards[i] = sh
		go sh.run()
	}
	return ing
}

// Dict returns the ingester's event dictionary.
func (ing *Ingester) Dict() *seqdb.Dictionary { return ing.dict }

// ErrClosed is returned by operations on a closed ingester.
var ErrClosed = errors.New("stream: ingester is closed")

// Ingest appends events to the trace identified by traceID, opening it if
// necessary. Events of one trace must be ingested from a single goroutine
// (or otherwise ordered); distinct traces are fully independent. Blocks when
// the owning shard's buffer is full.
func (ing *Ingester) Ingest(traceID string, events ...string) error {
	ids := make([]seqdb.EventID, len(events))
	for i, n := range events {
		ids[i] = ing.dict.Intern(n)
	}
	return ing.send(traceID, op{kind: opEvents, id: traceID, events: ids})
}

// IngestIDs is Ingest for already-interned events. The slice is copied, so
// callers may reuse their buffer immediately (the shard consumes the op
// asynchronously).
func (ing *Ingester) IngestIDs(traceID string, events ...seqdb.EventID) error {
	return ing.send(traceID, op{kind: opEvents, id: traceID, events: append([]seqdb.EventID(nil), events...)})
}

// CloseTrace terminates the trace: it is sealed into its shard's database
// (an empty trace when nothing was ingested under the id), its online
// conformance outcome is folded into the shard's reports, and the id becomes
// free for reuse.
func (ing *Ingester) CloseTrace(traceID string) error {
	return ing.send(traceID, op{kind: opSeal, id: traceID})
}

func (ing *Ingester) send(traceID string, o op) error {
	ing.lifeMu.RLock()
	defer ing.lifeMu.RUnlock()
	if ing.closed {
		return ErrClosed
	}
	ing.shards[ing.shardFor(traceID)].ops <- o
	return nil
}

// shardFor hashes a trace id onto a shard (FNV-1a, deterministic across
// processes so replayed workloads land identically).
func (ing *Ingester) shardFor(id string) int {
	h := uint64(14695981039346656037)
	for i := 0; i < len(id); i++ {
		h = (h ^ uint64(id[i])) * 1099511628211
	}
	return int(h % uint64(len(ing.shards)))
}

// Snapshot produces a consistent View: every shard flushes its sealed
// traces into its database and index, and the merged result is returned.
// Traces still open at the barrier are not included — they surface in the
// first Snapshot after their CloseTrace.
func (ing *Ingester) Snapshot() (*View, error) {
	ing.lifeMu.RLock()
	if ing.closed {
		ing.lifeMu.RUnlock()
		return nil, ErrClosed
	}
	chans := make([]chan shardView, len(ing.shards))
	for i, sh := range ing.shards {
		chans[i] = make(chan shardView, 1)
		sh.ops <- op{kind: opSnapshot, reply: chans[i]}
	}
	ing.lifeMu.RUnlock()

	views := make([]shardView, len(chans))
	for i, ch := range chans {
		views[i] = <-ch
	}
	return ing.merge(views), nil
}

func (ing *Ingester) merge(views []shardView) *View {
	v := &View{ShardDBs: make([]*seqdb.Database, len(views))}
	for i, sv := range views {
		v.ShardDBs[i] = sv.db
	}
	if len(views) == 1 {
		// Single shard: the snapshot view — incremental index included — is
		// already the consistent whole.
		v.DB = views[0].db
	} else {
		v.DB = seqdb.NewDatabaseWithDict(ing.dict)
		for _, sv := range views {
			v.DB.Sequences = append(v.DB.Sequences, sv.db.Sequences...)
		}
	}
	if ing.cfg.Engine != nil {
		reports := ing.cfg.Engine.NewReports()
		base := 0
		for _, sv := range views {
			for i := range reports {
				r := &reports[i]
				sr := &sv.reports[i]
				r.SatisfiedTraces += sr.SatisfiedTraces
				r.ViolatedTraces += sr.ViolatedTraces
				r.TotalTemporalPoints += sr.TotalTemporalPoints
				r.SatisfiedTemporalPoints += sr.SatisfiedTemporalPoints
				for _, viol := range sr.Violations {
					viol.Seq += base
					r.Violations = append(r.Violations, viol)
				}
			}
			base += sv.db.NumSequences()
		}
		v.Reports = reports
	}
	return v
}

// Close shuts the ingester down: shard goroutines drain their buffers and
// exit. Traces still open are discarded — their outcome is undeterminable
// without termination. Close is idempotent; operations after Close return
// ErrClosed.
func (ing *Ingester) Close() error {
	ing.lifeMu.Lock()
	if ing.closed {
		ing.lifeMu.Unlock()
		return nil
	}
	ing.closed = true
	for _, sh := range ing.shards {
		close(sh.ops)
	}
	ing.lifeMu.Unlock()
	for _, sh := range ing.shards {
		<-sh.done
	}
	return nil
}

// shard is one ingestion partition: a goroutine draining ops, the open
// traces it is buffering, and the database of sealed traces whose flat index
// it maintains incrementally.
type shard struct {
	ops        chan op
	done       chan struct{}
	db         *seqdb.Database
	engine     *verify.Engine
	flushBatch int

	open     map[string]*openTrace
	reports  []verify.RuleReport
	free     []*verify.Checker
	unsynced int // sealed traces not yet flushed into the index
}

type openTrace struct {
	events  seqdb.Sequence
	checker *verify.Checker
}

func (sh *shard) run() {
	defer close(sh.done)
	for o := range sh.ops {
		switch o.kind {
		case opEvents:
			tr := sh.open[o.id]
			if tr == nil {
				tr = &openTrace{}
				if sh.engine != nil {
					if n := len(sh.free); n > 0 {
						tr.checker = sh.free[n-1]
						sh.free = sh.free[:n-1]
					} else {
						tr.checker = sh.engine.NewChecker()
					}
				}
				sh.open[o.id] = tr
			}
			tr.events = append(tr.events, o.events...)
			if tr.checker != nil {
				for _, ev := range o.events {
					tr.checker.Advance(ev)
				}
			}
		case opSeal:
			tr := sh.open[o.id]
			if tr == nil {
				tr = &openTrace{}
				if sh.engine != nil {
					tr.checker = sh.engine.NewChecker()
				}
			}
			delete(sh.open, o.id)
			sh.db.Append(tr.events)
			if tr.checker != nil {
				tr.checker.Close(sh.db.NumSequences()-1, sh.reports)
				sh.free = append(sh.free, tr.checker)
			}
			sh.unsynced++
			if sh.unsynced >= sh.flushBatch {
				sh.flush()
			}
		case opSnapshot:
			sh.flush()
			sv := shardView{db: sh.db.SnapshotView()}
			if sh.reports != nil {
				sv.reports = cloneReports(sh.reports)
			}
			o.reply <- sv
		}
	}
}

// flush extends the shard's positional index with the traces sealed since
// the last flush (incremental append, not a rebuild).
func (sh *shard) flush() {
	if sh.unsynced == 0 {
		return
	}
	sh.db.FlatIndex()
	sh.unsynced = 0
}

// cloneReports deep-copies the violation lists so the snapshot's reports
// stay frozen while the shard keeps appending to its own.
func cloneReports(reports []verify.RuleReport) []verify.RuleReport {
	out := make([]verify.RuleReport, len(reports))
	copy(out, reports)
	for i := range out {
		out[i].Violations = append([]verify.RuleViolation(nil), out[i].Violations...)
	}
	return out
}

// String renders a shard count summary for diagnostics.
func (ing *Ingester) String() string {
	return fmt.Sprintf("stream.Ingester{shards: %d}", len(ing.shards))
}
