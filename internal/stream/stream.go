// Package stream is the online ingestion layer: it turns the batch-oriented
// mining and verification core into a system that absorbs live traces. An
// Ingester fans incoming trace events out to N shards (hashed by trace id);
// each shard is a single goroutine behind a bounded channel that buffers the
// still-open traces, advances an online conformance Checker per trace as
// events arrive, seals terminated traces into the shard's Database, and
// extends the shard's flat positional index incrementally in batched
// flushes — the LogBase-style append-only regime, never a full rebuild.
//
// Snapshot is the bridge back to the batch world: a barrier across all
// shards yields a consistent Database view (sealed traces only) over which
// MinePatterns/MineRules/CheckRules run as usual, plus — when an Engine is
// configured — the accumulated online conformance reports, rebased to the
// view's sequence numbering so they are indistinguishable from a batch
// CheckRules run over the same view.
package stream

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"
	"time"

	"specmine/internal/obs"
	"specmine/internal/seqdb"
	"specmine/internal/store"
	"specmine/internal/verify"
)

// Config parameterises an Ingester.
type Config struct {
	// Shards is the number of ingestion shards (trace-id hash partitions);
	// default 4. Traces never span shards, so per-trace event order is
	// preserved while independent traces proceed in parallel.
	Shards int
	// Buffer is the per-shard operation channel capacity; default 256.
	// Ingest blocks (backpressure) when a shard's buffer is full.
	Buffer int
	// FlushBatch is how many sealed traces a shard buffers before extending
	// its positional index incrementally; default 32. A Snapshot always
	// flushes first, so the value only trades index freshness for batching.
	FlushBatch int
	// Dict supplies the event-name dictionary, which must be the one the
	// rule set was mined against when Engine is set. Nil creates a fresh
	// dictionary.
	Dict *seqdb.Dictionary
	// Engine, when non-nil, checks every trace online as its events arrive;
	// Snapshot then carries the accumulated conformance reports.
	Engine *verify.Engine
	// Obs, when non-nil, registers the ingester's metrics — acked-event and
	// sealed-trace counters, per-shard ingest/flush latency histograms,
	// backpressure wait time, and queue depth gauges. Nil disables
	// instrumentation at the cost of one branch per instrumentation point.
	Obs *obs.Registry
	// Store, when non-nil, makes the ingester durable: every operation is
	// appended to the store's per-shard write-ahead log before it is
	// acknowledged, sealed traces are rolled into segment files at the
	// batched-flush barrier, and the ingester starts from the store's
	// recovered state — sealed shard databases with their indexes, open
	// traces (their online checkers re-advanced), and conformance reports
	// re-seeded — exactly as if the process had never died. The store's
	// shard count overrides Shards (it is fixed at store creation) and its
	// dictionary overrides Dict. Use Open, which can report mismatches;
	// NewIngester panics on them.
	Store *store.Store
}

// View is a consistent cut of the streamed state, produced by Snapshot.
type View struct {
	// DB holds every sealed trace across all shards (shard-major, in seal
	// order within a shard), sharing the ingester's dictionary. It is a
	// private copy: safe to mine while ingestion continues.
	DB *seqdb.Database
	// ShardDBs are the per-shard snapshot views backing DB, each carrying
	// its shard's incrementally maintained positional index.
	ShardDBs []*seqdb.Database
	// Reports are the online conformance reports accumulated so far, in rule
	// order with violation sequence numbers rebased to DB's numbering —
	// identical to verify.CheckRules(DB, rules). Nil without an Engine.
	Reports []verify.RuleReport
}

type opKind uint8

const (
	opEvents opKind = iota
	opSeal
	opSnapshot
)

type op struct {
	kind   opKind
	id     string
	events []seqdb.EventID
	reply  chan shardView
}

type shardView struct {
	db      *seqdb.Database
	reports []verify.RuleReport
	// err carries the store's sticky failure: a snapshot whose WAL flush
	// failed must not be served as a durable view.
	err error
}

// streamMetrics are the ingester-wide series, shared by every shard. The
// enabled flag gates the hot-path time.Now() reads; the handles themselves
// are nil-safe, so a zero streamMetrics (disabled) is fully usable.
type streamMetrics struct {
	enabled bool
	// eventsAcked / tracesSealed are exact, but updated in batches: each
	// shard accumulates plain local counts and folds them in at barriers,
	// snapshot answers, and shutdown, so the hot path never touches a
	// shared atomic. Reads between batch points may trail the ack stream;
	// any quiescent point (after Snapshot or Close) is exact.
	eventsAcked  *obs.Counter // events applied by shards (== acked at quiescence)
	tracesSealed *obs.Counter // CloseTrace ops applied by shards
	snapshots    *obs.Counter // snapshot barriers served
}

func newStreamMetrics(r *obs.Registry) streamMetrics {
	return streamMetrics{
		enabled:      r != nil,
		eventsAcked:  r.Counter("stream.events_acked"),
		tracesSealed: r.Counter("stream.traces_sealed"),
		snapshots:    r.Counter("stream.snapshots"),
	}
}

// shardMetrics are one shard's series, labeled shard=<i>.
type shardMetrics struct {
	enabled           bool
	ingestNs          *obs.Histogram // producer-side latency of one acked op (sampled 1-in-16)
	flushNs           *obs.Histogram // incremental index-extension latency
	queueDepth        *obs.Gauge     // ops buffered (sampled enqueues, refreshed at barriers)
	backpressureWaits *obs.Counter   // enqueues that found the buffer full
	backpressureNs    *obs.Histogram // time blocked on a full buffer
}

func newShardMetrics(r *obs.Registry, shard int) shardMetrics {
	label := fmt.Sprintf("%d", shard)
	return shardMetrics{
		enabled:           r != nil,
		ingestNs:          r.Histogram("stream.ingest_ns", "shard", label),
		flushNs:           r.Histogram("stream.flush_ns", "shard", label),
		queueDepth:        r.Gauge("stream.queue_depth", "shard", label),
		backpressureWaits: r.Counter("stream.backpressure_waits", "shard", label),
		backpressureNs:    r.Histogram("stream.backpressure_wait_ns", "shard", label),
	}
}

// Ingester is the sharded streaming front end. All methods are safe for
// concurrent use by any number of producer goroutines.
type Ingester struct {
	cfg    Config
	dict   *seqdb.Dictionary
	shards []*shard
	met    streamMetrics

	// lifeMu guards closed: sends hold the read side so Close (write side)
	// cannot close the shard channels while a send is in flight.
	lifeMu sync.RWMutex
	closed bool
}

// NewIngester starts the shard goroutines and returns a ready ingester. It
// panics on configuration errors, which only a durable Config can produce;
// durable callers should prefer Open.
func NewIngester(cfg Config) *Ingester {
	ing, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return ing
}

// Open validates the configuration — in durable mode, against the store's
// fixed shard count and dictionary — then starts the shard goroutines,
// seeding them from the store's recovered state when one is configured.
func Open(cfg Config) (*Ingester, error) {
	var recovered *store.Recovered
	if st := cfg.Store; st != nil {
		if cfg.Shards != 0 && cfg.Shards != st.NumShards() {
			return nil, fmt.Errorf("stream: Config.Shards is %d but the store was created with %d shards", cfg.Shards, st.NumShards())
		}
		cfg.Shards = st.NumShards()
		if cfg.Dict != nil && cfg.Dict != st.Dict() {
			return nil, errors.New("stream: Config.Dict must be the store's dictionary (or nil) in durable mode")
		}
		if err := st.AttachIngester(); err != nil {
			return nil, err
		}
		cfg.Dict = st.Dict()
		recovered = st.Recovered()
	}
	if cfg.Shards < 1 {
		cfg.Shards = 4
	}
	if cfg.Buffer < 1 {
		cfg.Buffer = 256
	}
	if cfg.FlushBatch < 1 {
		cfg.FlushBatch = 32
	}
	if cfg.Dict == nil {
		cfg.Dict = seqdb.NewDictionary()
	}
	ing := &Ingester{cfg: cfg, dict: cfg.Dict, shards: make([]*shard, cfg.Shards), met: newStreamMetrics(cfg.Obs)}
	for i := range ing.shards {
		sh := &shard{
			ops:        make(chan op, cfg.Buffer),
			done:       make(chan struct{}),
			db:         seqdb.NewDatabaseWithDict(cfg.Dict),
			engine:     cfg.Engine,
			flushBatch: cfg.FlushBatch,
			open:       make(map[string]*openTrace),
			met:        newShardMetrics(cfg.Obs, i),
			statAcked:  ing.met.eventsAcked,
			statSealed: ing.met.tracesSealed,
		}
		if cfg.Store != nil {
			sh.log = cfg.Store.Shard(i)
		}
		if recovered != nil {
			// Resume exactly where the store left off: sealed traces rebuild
			// the shard database and its flat index; open traces re-open with
			// their online checkers re-advanced through the buffered events;
			// and the sealed traces' conformance outcomes are re-seeded by a
			// batch check (the online engine is equivalence-tested against
			// it), so accumulated reports continue seamlessly.
			rs := recovered.Shards[i]
			for _, s := range rs.Sequences {
				sh.db.Append(s)
			}
			sh.db.FlatIndex()
			for _, tr := range rs.Open {
				ot := &openTrace{events: append(seqdb.Sequence(nil), tr.Events...)}
				if cfg.Engine != nil {
					ot.checker = cfg.Engine.NewChecker()
					for _, ev := range ot.events {
						ot.checker.Advance(ev)
					}
				}
				sh.open[tr.ID] = ot
			}
		}
		if cfg.Engine != nil {
			if sh.db.NumSequences() > 0 {
				sh.reports = cfg.Engine.Check(sh.db)
			} else {
				sh.reports = cfg.Engine.NewReports()
			}
		}
		ing.shards[i] = sh
		go sh.run()
	}
	return ing, nil
}

// Dict returns the ingester's event dictionary.
func (ing *Ingester) Dict() *seqdb.Dictionary { return ing.dict }

// Health reports the backing store's health: Healthy, DegradedReadOnly
// (a permanent I/O fault stopped durable ingest; snapshots and mining
// continue from memory), or Failed. A memory-only ingester is always
// Healthy.
func (ing *Ingester) Health() store.Health {
	if ing.cfg.Store == nil {
		return store.Health{State: store.Healthy}
	}
	return ing.cfg.Store.Health()
}

// ErrClosed is returned by operations on a closed ingester.
var ErrClosed = errors.New("stream: ingester is closed")

// Ingest appends events to the trace identified by traceID, opening it if
// necessary. Events of one trace must be ingested from a single goroutine
// (or otherwise ordered); distinct traces are fully independent. Blocks when
// the owning shard's buffer is full.
func (ing *Ingester) Ingest(traceID string, events ...string) error {
	ids := make([]seqdb.EventID, len(events))
	for i, n := range events {
		ids[i] = ing.dict.Intern(n)
	}
	return ing.send(traceID, op{kind: opEvents, id: traceID, events: ids})
}

// IngestIDs is Ingest for already-interned events. The slice is copied, so
// callers may reuse their buffer immediately (the shard consumes the op
// asynchronously).
func (ing *Ingester) IngestIDs(traceID string, events ...seqdb.EventID) error {
	return ing.send(traceID, op{kind: opEvents, id: traceID, events: append([]seqdb.EventID(nil), events...)})
}

// CloseTrace terminates the trace: it is sealed into its shard's database
// (an empty trace when nothing was ingested under the id), its online
// conformance outcome is folded into the shard's reports, and the id becomes
// free for reuse.
func (ing *Ingester) CloseTrace(traceID string) error {
	return ing.send(traceID, op{kind: opSeal, id: traceID})
}

func (ing *Ingester) send(traceID string, o op) error {
	ing.lifeMu.RLock()
	defer ing.lifeMu.RUnlock()
	if ing.closed {
		return ErrClosed
	}
	sh := ing.shards[ing.shardFor(traceID)]
	// Latency is sampled 1-in-16: a clock-pair read costs more than every
	// counter on this path combined (and far more where the monotonic clock
	// is virtualised), so timing every op would dominate the instrumentation
	// budget the obs-overhead CI floor enforces. The exact ack counters are
	// not touched here at all — the shard goroutine batches them locally and
	// publishes at barriers (see publishMet).
	timed := ing.met.enabled && rand.Uint64()&15 == 0
	var start time.Time
	if timed {
		start = time.Now()
	}
	var err error
	if sh.log == nil {
		sh.enqueue(o, timed)
	} else if o.kind == opSeal {
		// Durable mode: the commit path frames and checksums the WAL record on
		// this goroutine before taking the shard log's lock, then appends it
		// and hands the op to the shard under the lock — WAL order equals
		// apply order and no operation is acknowledged before it is logged,
		// but concurrent producers only serialise on the final memcpy and
		// channel handoff.
		err = sh.log.CommitSeal(o.id, func() { sh.enqueue(o, timed) })
	} else {
		err = sh.log.CommitEvents(o.id, o.events, func() { sh.enqueue(o, timed) })
	}
	if err != nil {
		return err
	}
	if timed {
		sh.met.ingestNs.Observe(time.Since(start).Nanoseconds())
	}
	return nil
}

// enqueue hands an op to the shard goroutine. When instrumentation is on and
// the buffer is full, the blocking wait is measured as backpressure; the
// non-blocking fast path costs nothing extra beyond the enabled branch. The
// queue-depth gauge is a single shared cell, so concurrent producers would
// contend on it — only sampled (timed) enqueues refresh it here; the shard
// refreshes it again at every barrier.
func (sh *shard) enqueue(o op, timed bool) {
	if !sh.met.enabled {
		sh.ops <- o
		return
	}
	select {
	case sh.ops <- o:
	default:
		start := time.Now()
		sh.ops <- o
		sh.met.backpressureWaits.Inc()
		sh.met.backpressureNs.Observe(time.Since(start).Nanoseconds())
	}
	if timed {
		sh.met.queueDepth.Set(int64(len(sh.ops)))
	}
}

// shardFor hashes a trace id onto a shard (FNV-1a, deterministic across
// processes so replayed workloads land identically).
func (ing *Ingester) shardFor(id string) int {
	h := uint64(14695981039346656037)
	for i := 0; i < len(id); i++ {
		h = (h ^ uint64(id[i])) * 1099511628211
	}
	return int(h % uint64(len(ing.shards)))
}

// Snapshot produces a consistent View: every shard flushes its sealed
// traces into its database and index, and the merged result is returned.
// Traces still open at the barrier are not included — they surface in the
// first Snapshot after their CloseTrace.
func (ing *Ingester) Snapshot() (*View, error) {
	ing.lifeMu.RLock()
	if ing.closed {
		ing.lifeMu.RUnlock()
		return nil, ErrClosed
	}
	chans := make([]chan shardView, len(ing.shards))
	for i, sh := range ing.shards {
		chans[i] = make(chan shardView, 1)
		sh.enqueue(op{kind: opSnapshot, reply: chans[i]}, true)
	}
	ing.lifeMu.RUnlock()
	ing.met.snapshots.Inc()

	views := make([]shardView, len(chans))
	for i, ch := range chans {
		views[i] = <-ch
	}
	for _, sv := range views {
		if sv.err != nil {
			return nil, fmt.Errorf("stream: snapshot is not durable: %w", sv.err)
		}
	}
	return ing.merge(views), nil
}

func (ing *Ingester) merge(views []shardView) *View {
	v := &View{ShardDBs: make([]*seqdb.Database, len(views))}
	for i, sv := range views {
		v.ShardDBs[i] = sv.db
	}
	if len(views) == 1 {
		// Single shard: the snapshot view — incremental index included — is
		// already the consistent whole.
		v.DB = views[0].db
	} else {
		v.DB = seqdb.NewDatabaseWithDict(ing.dict)
		for _, sv := range views {
			v.DB.Sequences = append(v.DB.Sequences, sv.db.Sequences...)
		}
	}
	if ing.cfg.Engine != nil {
		reports := ing.cfg.Engine.NewReports()
		base := 0
		for _, sv := range views {
			for i := range reports {
				r := &reports[i]
				sr := &sv.reports[i]
				r.SatisfiedTraces += sr.SatisfiedTraces
				r.ViolatedTraces += sr.ViolatedTraces
				r.TotalTemporalPoints += sr.TotalTemporalPoints
				r.SatisfiedTemporalPoints += sr.SatisfiedTemporalPoints
				for _, viol := range sr.Violations {
					viol.Seq += base
					r.Violations = append(r.Violations, viol)
				}
			}
			base += sv.db.NumSequences()
		}
		v.Reports = reports
	}
	return v
}

// Close shuts the ingester down: shard goroutines drain their buffers and
// exit. Traces still open are discarded — their outcome is undeterminable
// without termination. Close is idempotent; operations after Close return
// ErrClosed.
func (ing *Ingester) Close() error {
	ing.lifeMu.Lock()
	if ing.closed {
		ing.lifeMu.Unlock()
		return nil
	}
	ing.closed = true
	for _, sh := range ing.shards {
		close(sh.ops)
	}
	ing.lifeMu.Unlock()
	for _, sh := range ing.shards {
		<-sh.done
	}
	return nil
}

// shard is one ingestion partition: a goroutine draining ops, the open
// traces it is buffering, and the database of sealed traces whose flat index
// it maintains incrementally.
type shard struct {
	ops        chan op
	done       chan struct{}
	db         *seqdb.Database
	engine     *verify.Engine
	flushBatch int
	met        shardMetrics
	// statAcked / statSealed are the ingester-wide exact counters;
	// pendAcked / pendSealed batch this shard's contribution as plain
	// goroutine-local ints, published by publishMet at barriers, snapshot
	// answers, and shutdown — one shared-atomic touch per batch instead of
	// one per ingested op.
	statAcked  *obs.Counter
	statSealed *obs.Counter
	pendAcked  int64
	pendSealed int64
	// log is the shard's durable appender; nil in memory-only mode.
	log *store.ShardLog

	open     map[string]*openTrace
	reports  []verify.RuleReport
	free     []*verify.Checker
	unsynced int // sealed traces not yet flushed into the index
	// lastFlushErr is the result of the most recent barrier WAL flush. A
	// snapshot answered right after a failed flush on a still-healthy store
	// (a transient fault that outlived the retry budget) must not be served
	// as durable; the next barrier retries and clears it.
	lastFlushErr error
	// draining marks a nested drain inside withLogLock — barriers reached
	// while draining are deferred to the enclosing one.
	draining bool
	// deferredSnaps holds snapshot ops consumed during a drain; they are
	// answered only after the enclosing barrier's WAL flush, so a snapshot
	// never exposes state that is not yet recoverable.
	deferredSnaps []op
}

type openTrace struct {
	events  seqdb.Sequence
	checker *verify.Checker
}

func (sh *shard) run() {
	defer close(sh.done)
	for o := range sh.ops {
		sh.handle(o)
	}
	if sh.log != nil {
		// Clean shutdown: everything applied is flushed, so a reopened store
		// resumes from exactly this state (open traces included). No producer
		// can hold the log's lock anymore (the ingester is closed), so the
		// blocking Flush is safe here. On a degraded store the flush fails —
		// recovery then resumes from the last successful barrier instead.
		sh.lastFlushErr = sh.log.Flush()
	}
	// A drain interrupted by Close may have parked snapshot ops; answer them
	// so their callers never hang.
	sh.answerDeferredSnaps()
	sh.publishMet()
}

func (sh *shard) handle(o op) {
	switch o.kind {
	case opEvents:
		tr := sh.open[o.id]
		if tr == nil {
			tr = &openTrace{}
			if sh.engine != nil {
				if n := len(sh.free); n > 0 {
					tr.checker = sh.free[n-1]
					sh.free = sh.free[:n-1]
				} else {
					tr.checker = sh.engine.NewChecker()
				}
			}
			sh.open[o.id] = tr
		}
		sh.pendAcked += int64(len(o.events))
		tr.events = append(tr.events, o.events...)
		if tr.checker != nil {
			for _, ev := range o.events {
				tr.checker.Advance(ev)
			}
		}
		// Events-only traffic grows the WAL too: without this check a shard
		// with long-lived open traces and rare seals would never rotate and
		// recovery would replay history, not open data.
		if sh.log != nil && !sh.draining && sh.log.RotateDue() {
			sh.barrier()
		}
	case opSeal:
		tr := sh.open[o.id]
		if tr == nil {
			tr = &openTrace{}
			if sh.engine != nil {
				tr.checker = sh.engine.NewChecker()
			}
		}
		delete(sh.open, o.id)
		sh.pendSealed++
		sh.db.Append(tr.events)
		if tr.checker != nil {
			tr.checker.Close(sh.db.NumSequences()-1, sh.reports)
			sh.free = append(sh.free, tr.checker)
		}
		sh.unsynced++
		if !sh.draining && (sh.unsynced >= sh.flushBatch || (sh.log != nil && sh.log.RotateDue())) {
			sh.barrier()
		}
	case opSnapshot:
		if sh.draining {
			// Answering now would expose state whose WAL records are not yet
			// flushed; park the op until the enclosing barrier has flushed.
			sh.deferredSnaps = append(sh.deferredSnaps, o)
			return
		}
		sh.flush()
		if sh.log != nil {
			// Whatever this snapshot exposes must be recoverable: force the
			// WAL (and the dictionary log ahead of it) to the OS. Segments
			// stay on the seal-batch cadence — a snapshot is a read barrier,
			// not a compaction point — unless rotation is due, which must
			// also fire on snapshot-heavy, seal-light workloads. The drain
			// may have applied more seals; their WAL records were flushed
			// under the lock, so one more index flush re-aligns the view.
			if sh.log.RotateDue() {
				sh.barrier()
			} else {
				sh.withLogLock(func() { sh.lastFlushErr = sh.log.FlushLocked() })
			}
			sh.flush()
		}
		sh.answerSnap(o)
	}
}

// publishMet folds the shard-local exact counts into the shared series and
// refreshes the queue-depth gauge. It runs on the shard goroutine at every
// point a reader can observe shard state — barriers, snapshot answers,
// shutdown — so the shared counters are exact whenever the shard is
// quiescent without a cross-core atomic per ingested op.
func (sh *shard) publishMet() {
	if !sh.met.enabled {
		return
	}
	if sh.pendAcked != 0 {
		sh.statAcked.Add(sh.pendAcked)
		sh.pendAcked = 0
	}
	if sh.pendSealed != 0 {
		sh.statSealed.Add(sh.pendSealed)
		sh.pendSealed = 0
	}
	sh.met.queueDepth.Set(int64(len(sh.ops)))
}

func (sh *shard) answerSnap(o op) {
	sh.publishMet()
	sv := shardView{db: sh.db.SnapshotView()}
	if sh.reports != nil {
		sv.reports = cloneReports(sh.reports)
	}
	if sh.log != nil {
		// A healthy store promises everything a snapshot exposes is
		// recoverable, so a snapshot whose barrier flush failed — a
		// transient fault that outlived the retry budget — must fail too;
		// the caller retries once the condition clears. Once the store has
		// degraded to read-only that promise is explicitly narrowed to the
		// acked-and-flushed prefix: the in-memory state is still exact,
		// ingest is rejected at the door, and mining/checking over a memory
		// view remains useful, so snapshots keep being served. Only a
		// Failed store (invariants violated, memory state untrusted)
		// refuses outright.
		if err := sh.log.ReadErr(); err != nil {
			sv.err = err
		} else if sh.log.Err() == nil && sh.lastFlushErr != nil {
			sv.err = sh.lastFlushErr
		}
	}
	o.reply <- sv
}

func (sh *shard) answerDeferredSnaps() {
	if len(sh.deferredSnaps) == 0 {
		return
	}
	// The drain that parked these may have applied seals the enclosing
	// barrier's index flush ran before; flush again so every answered view
	// carries the incremental index rather than forcing a fresh build.
	sh.flush()
	for _, o := range sh.deferredSnaps {
		sh.answerSnap(o)
	}
	sh.deferredSnaps = sh.deferredSnaps[:0]
}

// barrier is the shard's batched-flush point: the positional index is
// extended with the traces sealed since the last barrier and, in durable
// mode, the WAL is flushed and those traces are rolled into a segment file —
// so everything a snapshot exposes is recoverable. When the WAL has outgrown
// its rotation budget the barrier also starts a fresh generation.
//
// Only the WAL flush and the (rare) rotation run under the producer-facing
// log lock; the common-case segment publish — encode plus file write, an
// fsync in Sync mode — happens after release, so producers are never stalled
// behind segment I/O. That is safe because sealed traces are immutable, the
// covered counter is barrier-goroutine-only, and the WAL was flushed past
// every seal the segment will contain before the lock was dropped.
func (sh *shard) barrier() {
	sh.publishMet()
	sh.flush()
	if sh.log == nil {
		return
	}
	flushed, rotated := false, false
	sh.withLogLock(func() {
		sh.flush() // cover seals applied by the drain
		if err := sh.log.FlushLocked(); err != nil {
			sh.lastFlushErr = err
			return
		}
		sh.lastFlushErr = nil
		flushed = true
		if sh.log.NeedRotateLocked() {
			// Rotation needs the segment first (sealedBase must equal the
			// coverage) and exclusivity throughout; it is budget-bounded
			// rare, so the producer stall is acceptable here.
			if sh.log.WriteSegmentLocked(sh.db.Sequences) == nil {
				_ = sh.log.RotateLocked(sh.openSnapshot(), sh.db.NumSequences())
			}
			rotated = true
		}
	})
	if flushed && !rotated {
		// Publishing after a failed flush would break the segment layer's
		// resurrection invariant: a surviving segment whose seals the on-disk
		// WAL never recorded would duplicate its traces at recovery.
		_ = sh.log.PublishSegment(sh.db.Sequences)
	}
}

// withLogLock runs fn holding the shard log's lock, with the shard's channel
// drained so the WAL exactly reflects the applied state. The protocol is
// drain + TryLock, never a blocking Lock: a producer inside LogEvents may
// hold the lock while blocked on this shard's full channel, and only our
// draining can unblock it — a blocking acquire here would deadlock the shard.
// Snapshot ops consumed by the drain are answered after fn (post-flush).
func (sh *shard) withLogLock(fn func()) {
	for {
		sh.drainPending()
		if sh.log.TryLock() {
			// Operations logged between the drain and the lock acquisition
			// are still in the channel; with the lock held no more can
			// arrive, so one more drain makes WAL state == applied state.
			sh.drainPending()
			fn()
			sh.log.Unlock()
			sh.answerDeferredSnaps()
			return
		}
		runtime.Gosched()
	}
}

// drainPending applies every operation currently buffered in the shard's
// channel without blocking. Nested barriers are suppressed (sh.draining); the
// enclosing barrier covers the drained seals.
func (sh *shard) drainPending() {
	sh.draining = true
	for {
		select {
		case o, ok := <-sh.ops:
			if !ok {
				// Channel closed mid-drain; the outer range loop will observe
				// it right after.
				sh.draining = false
				return
			}
			sh.handle(o)
		default:
			sh.draining = false
			return
		}
	}
}

// openSnapshot copies the shard's open traces for the WAL rotation re-log.
func (sh *shard) openSnapshot() []store.OpenTrace {
	out := make([]store.OpenTrace, 0, len(sh.open))
	for id, tr := range sh.open {
		out = append(out, store.OpenTrace{ID: id, Events: append(seqdb.Sequence(nil), tr.events...)})
	}
	return out
}

// flush extends the shard's positional index with the traces sealed since
// the last flush (incremental append, not a rebuild).
func (sh *shard) flush() {
	if sh.unsynced == 0 {
		return
	}
	if sh.met.enabled {
		start := time.Now()
		sh.db.FlatIndex()
		sh.met.flushNs.Observe(time.Since(start).Nanoseconds())
	} else {
		sh.db.FlatIndex()
	}
	sh.unsynced = 0
}

// cloneReports deep-copies the violation lists so the snapshot's reports
// stay frozen while the shard keeps appending to its own.
func cloneReports(reports []verify.RuleReport) []verify.RuleReport {
	out := make([]verify.RuleReport, len(reports))
	copy(out, reports)
	for i := range out {
		out[i].Violations = append([]verify.RuleViolation(nil), out[i].Violations...)
	}
	return out
}

// String renders a shard count summary for diagnostics.
func (ing *Ingester) String() string {
	return fmt.Sprintf("stream.Ingester{shards: %d}", len(ing.shards))
}
