package stream

import (
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"specmine/internal/rules"
	"specmine/internal/seqdb"
	"specmine/internal/store"
	"specmine/internal/tracesim"
	"specmine/internal/verify"
)

func openTestStore(t *testing.T, dir string, shards int, tweak func(*store.Options)) *store.Store {
	t.Helper()
	opts := store.Options{Dir: dir, Shards: shards}
	if tweak != nil {
		tweak(&opts)
	}
	st, err := store.Open(opts)
	if err != nil {
		t.Fatalf("opening store: %v", err)
	}
	return st
}

// copyStoreTree snapshots a live store directory file by file — the moral
// equivalent of kill -9 plus a disk image: only bytes that reached the OS
// survive into the copy.
func copyStoreTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		in, err := os.Open(path)
		if err != nil {
			return err
		}
		defer in.Close()
		out, err := os.Create(target)
		if err != nil {
			return err
		}
		if _, err := io.Copy(out, in); err != nil {
			out.Close()
			return err
		}
		return out.Close()
	})
	if err != nil {
		t.Fatalf("copying store tree: %v", err)
	}
}

func requireSameDB(t *testing.T, label string, got, want *seqdb.Database) {
	t.Helper()
	if got.NumSequences() != want.NumSequences() {
		t.Fatalf("%s: %d traces want %d", label, got.NumSequences(), want.NumSequences())
	}
	for i := range want.Sequences {
		g, w := got.Sequences[i], want.Sequences[i]
		if len(g) != len(w) {
			t.Fatalf("%s: trace %d has %d events want %d", label, i, len(g), len(w))
		}
		for j := range w {
			if g[j] != w[j] {
				t.Fatalf("%s: trace %d event %d is %d want %d", label, i, j, g[j], w[j])
			}
		}
	}
}

func requireSameReports(t *testing.T, label string, got, want []verify.RuleReport) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d reports want %d", label, len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.TotalTemporalPoints != w.TotalTemporalPoints ||
			g.SatisfiedTemporalPoints != w.SatisfiedTemporalPoints ||
			g.SatisfiedTraces != w.SatisfiedTraces ||
			g.ViolatedTraces != w.ViolatedTraces {
			t.Fatalf("%s: rule %d counters differ\n got %+v\nwant %+v", label, i, g, w)
		}
		if len(g.Violations) != len(w.Violations) {
			t.Fatalf("%s: rule %d has %d violations want %d", label, i, len(g.Violations), len(w.Violations))
		}
		for k := range w.Violations {
			if g.Violations[k].Seq != w.Violations[k].Seq || g.Violations[k].TemporalPoint != w.Violations[k].TemporalPoint {
				t.Fatalf("%s: rule %d violation %d: got %+v want %+v", label, i, k, g.Violations[k], w.Violations[k])
			}
		}
	}
}

// TestDurableMatchesMemory: the same single-producer workload pushed through
// a durable ingester and a memory-only one must yield identical snapshots —
// durability is invisible to the data path.
func TestDurableMatchesMemory(t *testing.T) {
	w := tracesim.Workloads()["transaction"]
	const traces, seed = 50, 7

	st := openTestStore(t, t.TempDir(), 3, nil)
	durable, err := Open(Config{FlushBatch: 4, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	mem := NewIngester(Config{Shards: 3, FlushBatch: 4})
	for _, ing := range []*Ingester{durable, mem} {
		ingestWorkload(t, ing, w, traces, seed)
	}
	dv, err := durable.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	mv, err := mem.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Trace ids hash identically and both dictionaries interned the same
	// single-producer stream, so the snapshots must agree exactly, not just
	// as multisets.
	requireSameDB(t, "durable vs memory", dv.DB, mv.DB)
	if err := durable.Close(); err != nil {
		t.Fatal(err)
	}
	if err := mem.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestKillAndRecoverEquivalence is the PR's acceptance criterion. A durable
// ingester with online conformance runs half an interleaved workload; the
// store directory is imaged mid-flight (kill -9 semantics) right after a
// snapshot; recovery must reproduce that snapshot's database, mined rules and
// conformance reports exactly — and, fed the remaining half, must arrive at
// the same final state as the uninterrupted original, proving recovered open
// traces resume with full history and re-advanced checkers.
func TestKillAndRecoverEquivalence(t *testing.T) {
	w := tracesim.Workloads()["transaction"]
	train := w.MustGenerate(30, 7)
	ruleSet := minedRules(t, train)
	if len(ruleSet) == 0 {
		t.Fatal("no rules mined")
	}

	fresh := w
	fresh.ViolationRate = 0.25
	const traces, seed, concurrency = 60, 99, 8

	// Pre-generate the interleaved chunk stream so both runs see the same
	// operations in the same order.
	type chunk struct {
		id     string
		events []string
		final  bool
	}
	var chunks []chunk
	err := fresh.Stream(traces, seed, concurrency, func(c tracesim.StreamChunk) error {
		chunks = append(chunks, chunk{id: c.TraceID, events: c.Events, final: c.Final})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	feed := func(ing *Ingester, from, to int) {
		t.Helper()
		for _, c := range chunks[from:to] {
			if len(c.events) > 0 {
				if err := ing.Ingest(c.id, c.events...); err != nil {
					t.Fatal(err)
				}
			}
			if c.final {
				if err := ing.CloseTrace(c.id); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	mkEngine := func(dict *seqdb.Dictionary) *verify.Engine {
		// Rebase the mined rules onto this run's dictionary by name, since
		// each store interns its own stream.
		rebased := make([]rules.Rule, len(ruleSet))
		for i, r := range ruleSet {
			pre := make(seqdb.Pattern, len(r.Pre))
			for k, ev := range r.Pre {
				pre[k] = dict.Intern(train.Dict.Name(ev))
			}
			post := make(seqdb.Pattern, len(r.Post))
			for k, ev := range r.Post {
				post[k] = dict.Intern(train.Dict.Name(ev))
			}
			r.Pre, r.Post = pre, post
			rebased[i] = r
		}
		engine, err := verify.NewEngine(rebased)
		if err != nil {
			t.Fatal(err)
		}
		return engine
	}

	dir := t.TempDir()
	// A tiny rotation budget forces WAL rotations throughout, so recovery
	// exercises segments + re-logged open traces, not just a long WAL.
	st := openTestStore(t, dir, 3, func(o *store.Options) { o.WALRotateBytes = 2048 })
	ing, err := Open(Config{FlushBatch: 4, Store: st, Engine: mkEngine(st.Dict())})
	if err != nil {
		t.Fatal(err)
	}
	half := len(chunks) / 2
	feed(ing, 0, half)
	s1, err := ing.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// The crash image: everything the snapshot exposed is flushed, so the
	// copied directory must recover to exactly s1.
	crashDir := filepath.Join(t.TempDir(), "crash-image")
	copyStoreTree(t, dir, crashDir)

	// The original keeps going to the end of the workload.
	feed(ing, half, len(chunks))
	f1, err := ing.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Recover from the crash image.
	st2 := openTestStore(t, crashDir, 0, func(o *store.Options) { o.WALRotateBytes = 2048 })
	ing2, err := Open(Config{FlushBatch: 4, Store: st2, Engine: mkEngine(st2.Dict())})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := ing2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	requireSameDB(t, "recovered snapshot", r1.DB, s1.DB)
	requireSameReports(t, "recovered reports", r1.Reports, s1.Reports)

	// Mined rules over the recovered snapshot equal those over the pre-crash
	// snapshot (they are the same database, but mine both to pin the
	// acceptance criterion end to end).
	m1, m2 := minedRules(t, s1.DB), minedRules(t, r1.DB)
	if len(m1) != len(m2) {
		t.Fatalf("mined %d rules from recovered snapshot want %d", len(m2), len(m1))
	}
	for i := range m1 {
		if m1[i].Key() != m2[i].Key() ||
			m1[i].SeqSupport != m2[i].SeqSupport ||
			m1[i].InstanceSupport != m2[i].InstanceSupport ||
			m1[i].Confidence != m2[i].Confidence {
			t.Fatalf("rule %d differs after recovery: %+v vs %+v", i, m1[i], m2[i])
		}
	}

	// Every shard's recovered index must be byte-identical to a fresh build.
	for si, sdb := range r1.ShardDBs {
		fresh := seqdb.BuildPositionIndex(sdb.Sequences, sdb.Dict.Size())
		if err := sdb.FlatIndex().EqualState(fresh); err != nil {
			t.Fatalf("shard %d recovered index: %v", si, err)
		}
	}

	// The recovered ingester absorbs the second half — open traces resume
	// with their full history — and must land exactly where the original did.
	feed(ing2, half, len(chunks))
	f2, err := ing2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	requireSameDB(t, "post-recovery final snapshot", f2.DB, f1.DB)
	requireSameReports(t, "post-recovery final reports", f2.Reports, f1.Reports)
	if err := ing2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDurableConcurrentProducers hammers a durable ingester — rotations
// forced by a tiny WAL budget, snapshots taken concurrently — from several
// producers under -race, then closes everything and proves a reopened store
// recovers exactly the final snapshot's per-shard state.
func TestDurableConcurrentProducers(t *testing.T) {
	w := tracesim.Workloads()["locking"]
	dir := t.TempDir()
	st := openTestStore(t, dir, 4, func(o *store.Options) {
		o.WALRotateBytes = 1024
		o.CompactBytes = 4096
	})
	ing, err := Open(Config{FlushBatch: 3, Buffer: 8, Store: st})
	if err != nil {
		t.Fatal(err)
	}

	const producers = 4
	const tracesPerProducer = 20
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			db := w.MustGenerate(tracesPerProducer, int64(200+p))
			for i, s := range db.Sequences {
				id := tracesim.TraceID(p*tracesPerProducer + i)
				for j := 0; j < len(s); j += 3 {
					hi := j + 3
					if hi > len(s) {
						hi = len(s)
					}
					names := make([]string, 0, 3)
					for _, ev := range s[j:hi] {
						names = append(names, db.Dict.Name(ev))
					}
					if err := ing.Ingest(id, names...); err != nil {
						t.Errorf("ingest: %v", err)
						return
					}
				}
				if err := ing.CloseTrace(id); err != nil {
					t.Errorf("close trace: %v", err)
					return
				}
			}
		}(p)
	}
	stop := make(chan struct{})
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := ing.Snapshot(); err != nil {
				t.Errorf("snapshot: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	snapWG.Wait()

	final, err := ing.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if final.DB.NumSequences() != producers*tracesPerProducer {
		t.Fatalf("final snapshot has %d traces want %d", final.DB.NumSequences(), producers*tracesPerProducer)
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	rec := st2.Recovered()
	if rec.NumOpen() != 0 {
		t.Fatalf("recovered %d open traces want 0", rec.NumOpen())
	}
	for si, rs := range rec.Shards {
		shardDB := seqdb.NewDatabaseWithDict(st2.Dict())
		for _, s := range rs.Sequences {
			shardDB.Append(s)
		}
		requireSameDB(t, "recovered shard", shardDB, final.ShardDBs[si])
	}
}
