package stream

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"
	"time"

	"specmine/internal/fsim"
	"specmine/internal/seqdb"
	"specmine/internal/store"
)

// Chaos suite: randomized fault schedules (transient and permanent I/O
// errors, short writes, torn renames, ENOSPC windows that clear) injected
// under an interleaved ingest/seal/snapshot/rotate/compact workload. The
// invariants checked are schedule-independent:
//
//  1. Every operation either acks (nil error) or is rejected whole — a
//     rejected op never surfaces in memory or on disk.
//  2. The in-memory state always equals the acked model exactly, fault or
//     no fault, degraded or not: snapshots keep serving from memory.
//  3. After closing and cleanly reopening, every shard's recovered sealed
//     traces are a byte-identical prefix of the acked seal order, at least
//     as long as the durable watermark (the sealed count exposed by the
//     last successful snapshot while the store was still healthy), and the
//     recovered flat index equals a fresh build over that prefix.
//  4. Permanent faults degrade to read-only (typed error on writes, reads
//     keep working); they never corrupt, and never reach Failed.
//
// A recovery attempt under a second fault schedule is squeezed between the
// crash and the clean reopen: it must either fail cleanly or succeed, and
// in both cases leave the acked prefix intact.

const chaosShards = 3

// chaosTweak shapes the store for maximum mechanism coverage: tiny rotation
// and compaction budgets so generations turn and segments merge constantly,
// and a short retry backoff so exhausted-retry paths don't dominate runtime.
func chaosTweak(o *store.Options) {
	o.WALRotateBytes = 2048
	o.CompactBytes = 8192
	o.RetryBackoff = 50 * time.Microsecond
}

func chaosEnvInt(name string, def int) int {
	v := os.Getenv(name)
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 {
		return def
	}
	return n
}

func randomChaosEvents(rng *rand.Rand, alphabet []seqdb.EventID) []seqdb.EventID {
	n := 1 + rng.Intn(6)
	evs := make([]seqdb.EventID, n)
	for i := range evs {
		evs[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return evs
}

// checkChaosWriteErr validates a rejected write: rejection is always legal
// (the op simply didn't ack), but the error's type must be consistent with
// the store's health at the time.
func checkChaosWriteErr(t *testing.T, ing *Ingester, err error) {
	t.Helper()
	if errors.Is(err, ErrClosed) {
		t.Fatalf("write rejected with ErrClosed while the ingester is open")
	}
	if errors.Is(err, store.ErrFailed) {
		t.Fatalf("store reached Failed under pure I/O faults: %v", err)
	}
	if errors.Is(err, store.ErrDegraded) {
		if st := ing.Health().State; st == store.Healthy {
			t.Fatalf("write rejected with ErrDegraded while Health reports Healthy")
		}
	}
	// Any other error is a transient rejection (retry budget exhausted on an
	// inline flush): the op was rolled back whole and never acked.
}

func compareChaosSeqs(t *testing.T, seed int64, label string, got, want []seqdb.Sequence) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("seed %d: %s: %d traces want %d", seed, label, len(got), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("seed %d: %s: trace %d has %d events want %d", seed, label, i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("seed %d: %s: trace %d event %d is %d want %d", seed, label, i, j, got[i][j], want[i][j])
			}
		}
	}
}

// runChaosSchedule drives one workload under the fault schedule derived from
// seed and verifies the invariants end to end.
func runChaosSchedule(t *testing.T, seed int64) {
	t.Helper()
	dir := t.TempDir()
	ffs := fsim.NewFaultFS(fsim.OS(), fsim.RandomSchedule(seed)...)

	sealedModel := make([][]seqdb.Sequence, chaosShards)
	watermark := make([]int, chaosShards)
	allEvents := map[string]seqdb.Sequence{}

	st, err := store.Open(store.Options{Dir: dir, Shards: chaosShards, FS: ffs, WALRotateBytes: 2048, CompactBytes: 8192, RetryBackoff: 50 * time.Microsecond})
	if err != nil {
		// The schedule tore store creation itself. Nothing was ever acked, so
		// the clean reopen below must come up empty — that is the invariant.
		verifyChaosRecovery(t, seed, dir, sealedModel, watermark, allEvents)
		return
	}
	ing, err := Open(Config{FlushBatch: 4, Buffer: 16, Store: st})
	if err != nil {
		t.Fatalf("seed %d: stream open over a healthy store: %v", seed, err)
	}

	dict := ing.Dict()
	alphabet := make([]seqdb.EventID, 16)
	for i := range alphabet {
		alphabet[i] = dict.Intern(fmt.Sprintf("ev-%02d", i))
	}

	rng := rand.New(rand.NewSource(seed ^ 0x5eedface))
	var openIDs []string
	nextID := 0
	const ops = 400
	for i := 0; i < ops; i++ {
		r := rng.Intn(10)
		switch {
		case r <= 3 || len(openIDs) == 0: // open a new trace
			id := fmt.Sprintf("c-%04d", nextID)
			nextID++
			evs := randomChaosEvents(rng, alphabet)
			if err := ing.IngestIDs(id, evs...); err == nil {
				allEvents[id] = append(seqdb.Sequence(nil), evs...)
				openIDs = append(openIDs, id)
			} else {
				checkChaosWriteErr(t, ing, err)
			}
		case r <= 6: // extend an open trace
			id := openIDs[rng.Intn(len(openIDs))]
			evs := randomChaosEvents(rng, alphabet)
			if err := ing.IngestIDs(id, evs...); err == nil {
				allEvents[id] = append(allEvents[id], evs...)
			} else {
				checkChaosWriteErr(t, ing, err)
			}
		case r <= 8: // seal an open trace
			k := rng.Intn(len(openIDs))
			id := openIDs[k]
			if err := ing.CloseTrace(id); err == nil {
				openIDs = append(openIDs[:k], openIDs[k+1:]...)
				s := ing.shardFor(id)
				sealedModel[s] = append(sealedModel[s], append(seqdb.Sequence(nil), allEvents[id]...))
			} else {
				checkChaosWriteErr(t, ing, err)
			}
		default: // snapshot barrier
			v, serr := ing.Snapshot()
			if serr != nil {
				if errors.Is(serr, store.ErrFailed) {
					t.Fatalf("seed %d: snapshot refused with Failed: %v", seed, serr)
				}
				// Not-durable rejection during a transient window; retryable.
				break
			}
			// Memory always equals the acked model, healthy or degraded.
			for s := range sealedModel {
				compareChaosSeqs(t, seed, fmt.Sprintf("mid-run snapshot shard %d", s), v.ShardDBs[s].Sequences, sealedModel[s])
			}
			if ing.Health().State == store.Healthy {
				// The snapshot's barrier flush succeeded on a healthy store, so
				// everything it exposed is durable: advance the watermark.
				for s := range watermark {
					watermark[s] = len(v.ShardDBs[s].Sequences)
				}
			}
		}
		if rng.Intn(97) == 0 {
			_ = st.Compact() // classified into Health by the store itself
		}
	}

	h := ing.Health()
	if h.State == store.Failed {
		t.Fatalf("seed %d: pure I/O faults must never reach Failed: %+v", seed, h)
	}
	if v, serr := ing.Snapshot(); serr == nil {
		for s := range sealedModel {
			compareChaosSeqs(t, seed, fmt.Sprintf("final snapshot shard %d", s), v.ShardDBs[s].Sequences, sealedModel[s])
		}
	} else if errors.Is(serr, store.ErrFailed) {
		t.Fatalf("seed %d: final snapshot refused with Failed: %v", seed, serr)
	}
	if h.State == store.DegradedReadOnly {
		// Degraded semantics: reads above served from memory; writes must
		// fail fast with the typed error.
		if err := ing.Ingest("post-degrade", "ev-00"); !errors.Is(err, store.ErrDegraded) {
			t.Fatalf("seed %d: ingest on a degraded store returned %v, want ErrDegraded", seed, err)
		}
		if h.Err == nil || h.Cause == "" {
			t.Fatalf("seed %d: degraded Health carries no cause: %+v", seed, h)
		}
	}
	_ = ing.Close() // flush may fail when degraded; recovery resumes from the last barrier
	_ = st.Close()

	// A recovery attempt under a fresh fault schedule: it must fail cleanly
	// or succeed — and either way leave the acked prefix intact for the
	// clean reopen that follows.
	ffs2 := fsim.NewFaultFS(fsim.OS(), fsim.RandomSchedule(seed+1)...)
	if st2, err := store.Open(store.Options{Dir: dir, FS: ffs2, RetryBackoff: 50 * time.Microsecond}); err == nil {
		_ = st2.Close()
	}

	verifyChaosRecovery(t, seed, dir, sealedModel, watermark, allEvents)
}

// verifyChaosRecovery reopens the store with no fault injection and checks
// the recovered state against the acked model: per-shard sealed traces are a
// byte-identical prefix of the acked seal order no shorter than the durable
// watermark, recovered open traces are prefixes of their acked history, and
// the flat index over the recovered database equals a fresh build.
func verifyChaosRecovery(t *testing.T, seed int64, dir string, sealedModel [][]seqdb.Sequence, watermark []int, allEvents map[string]seqdb.Sequence) {
	t.Helper()
	st, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		t.Fatalf("seed %d: clean reopen failed: %v", seed, err)
	}
	defer st.Close()
	if h := st.Health(); h.State != store.Healthy {
		t.Fatalf("seed %d: clean reopen came up %v: %+v", seed, h.State, h)
	}
	rec := st.Recovered()
	for s, want := range sealedModel {
		if s >= len(rec.Shards) {
			if len(want) > 0 {
				t.Fatalf("seed %d: shard %d missing after reopen with %d acked seals", seed, s, len(want))
			}
			continue
		}
		got := rec.Shards[s].Sequences
		if len(got) < watermark[s] {
			t.Fatalf("seed %d: shard %d recovered %d sealed traces, below the durable watermark %d", seed, s, len(got), watermark[s])
		}
		if len(got) > len(want) {
			t.Fatalf("seed %d: shard %d recovered %d sealed traces but only %d were acked", seed, s, len(got), len(want))
		}
		compareChaosSeqs(t, seed, fmt.Sprintf("recovered shard %d", s), got, want[:len(got)])

		// The recovered index must be byte-identical to a fresh build over
		// the recovered prefix.
		db := seqdb.NewDatabaseWithDict(st.Dict())
		for _, q := range got {
			db.Append(q)
		}
		fresh := seqdb.BuildPositionIndex(db.Sequences, st.Dict().Size())
		if err := db.FlatIndex().EqualState(fresh); err != nil {
			t.Fatalf("seed %d: shard %d recovered index differs from fresh build: %v", seed, s, err)
		}

		// Open traces recover best-effort, but whatever recovers must be a
		// prefix of the trace's acked history — never an invention.
		for _, tr := range rec.Shards[s].Open {
			full, ok := allEvents[tr.ID]
			if !ok {
				t.Fatalf("seed %d: shard %d recovered unknown open trace %q", seed, s, tr.ID)
			}
			if len(tr.Events) > len(full) {
				t.Fatalf("seed %d: open trace %q recovered %d events, acked only %d", seed, tr.ID, len(tr.Events), len(full))
			}
			for j := range tr.Events {
				if tr.Events[j] != full[j] {
					t.Fatalf("seed %d: open trace %q event %d is %d want %d", seed, tr.ID, j, tr.Events[j], full[j])
				}
			}
		}
	}
}

// TestChaosFixedSeedMatrix pins a deterministic spread of schedules as
// regression anchors; each exercises a different mix of fault mechanisms.
func TestChaosFixedSeedMatrix(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 5, 8, 13, 21, 42, 99, 1234, 31337, 424242} {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			runChaosSchedule(t, seed)
		})
	}
}

// TestChaosRandomizedSchedules sweeps fresh schedules every run. The base
// seed is printed (and taken from SPECMINE_CHAOS_SEED to reproduce a
// failure); SPECMINE_CHAOS_SCHEDULES sets the sweep width — CI runs 200.
func TestChaosRandomizedSchedules(t *testing.T) {
	base := time.Now().UnixNano()
	if v := os.Getenv("SPECMINE_CHAOS_SEED"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("SPECMINE_CHAOS_SEED=%q is not an integer", v)
		}
		base = n
	}
	count := chaosEnvInt("SPECMINE_CHAOS_SCHEDULES", 25)
	t.Logf("chaos sweep: %d schedules from base seed %d (reproduce with SPECMINE_CHAOS_SEED=%d)", count, base, base)
	for i := 0; i < count; i++ {
		seed := base + int64(i)
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			runChaosSchedule(t, seed)
		})
	}
}
