package stream

import (
	"sync"
	"testing"

	"specmine/internal/rules"
	"specmine/internal/seqdb"
	"specmine/internal/tracesim"
	"specmine/internal/verify"
)

// ingestWorkload streams a tracesim workload into an ingester, chunk by
// chunk, from a single producer.
func ingestWorkload(t *testing.T, ing *Ingester, w tracesim.Workload, traces int, seed int64) {
	t.Helper()
	err := w.Stream(traces, seed, 8, func(c tracesim.StreamChunk) error {
		if len(c.Events) > 0 {
			if err := ing.Ingest(c.TraceID, c.Events...); err != nil {
				return err
			}
		}
		if c.Final {
			return ing.CloseTrace(c.TraceID)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("streaming workload: %v", err)
	}
}

// traceKeys maps each sequence of db to a canonical content key, counting
// duplicates, so two databases can be compared as multisets of traces
// regardless of ordering (shards permute trace order).
func traceKeys(db *seqdb.Database) map[string]int {
	keys := make(map[string]int)
	for _, s := range db.Sequences {
		key := ""
		for _, ev := range s {
			key += db.Dict.Name(ev) + "\x00"
		}
		keys[key]++
	}
	return keys
}

func TestSnapshotHoldsExactlyTheSealedTraces(t *testing.T) {
	w := tracesim.Workloads()["transaction"]
	const traces, seed = 40, 7
	want := traceKeys(w.MustGenerate(traces, seed))

	for _, shards := range []int{1, 4} {
		ing := NewIngester(Config{Shards: shards, FlushBatch: 5})
		ingestWorkload(t, ing, w, traces, seed)
		v, err := ing.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if v.DB.NumSequences() != traces {
			t.Fatalf("shards=%d: snapshot has %d traces want %d", shards, v.DB.NumSequences(), traces)
		}
		got := traceKeys(v.DB)
		for key, n := range want {
			if got[key] != n {
				t.Fatalf("shards=%d: trace multiplicity %d want %d for one generated trace", shards, got[key], n)
			}
		}
		if len(v.ShardDBs) != shards {
			t.Fatalf("shards=%d: %d shard views", shards, len(v.ShardDBs))
		}
		total := 0
		for _, sdb := range v.ShardDBs {
			total += sdb.NumSequences()
		}
		if total != traces {
			t.Fatalf("shards=%d: shard views hold %d traces want %d", shards, total, traces)
		}
		if err := ing.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestShardIndexesAreIncrementalAndExact verifies the acceptance criterion
// on the ingestion path: every shard's incrementally extended index is
// byte-identical in content to a fresh build over the shard's sequences, and
// its version shows it was appended to, not rebuilt.
func TestShardIndexesAreIncrementalAndExact(t *testing.T) {
	w := tracesim.Workloads()["security"]
	ing := NewIngester(Config{Shards: 3, FlushBatch: 4})
	ingestWorkload(t, ing, w, 50, 11)
	v, err := ing.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer ing.Close()

	sawIncrement := false
	for si, sdb := range v.ShardDBs {
		idx := sdb.FlatIndex() // snapshot view: already built, just returned
		if idx.Version() > 0 {
			sawIncrement = true
		}
		fresh := seqdb.BuildPositionIndex(sdb.Sequences, sdb.Dict.Size())
		if idx.NumSequences() != fresh.NumSequences() {
			t.Fatalf("shard %d: %d sequences want %d", si, idx.NumSequences(), fresh.NumSequences())
		}
		for s := 0; s < fresh.NumSequences(); s++ {
			for e := seqdb.EventID(0); int(e) < fresh.NumEvents(); e++ {
				got, want := idx.Positions(s, e), fresh.Positions(s, e)
				if len(got) != len(want) {
					t.Fatalf("shard %d seq %d event %d: %d positions want %d", si, s, e, len(got), len(want))
				}
				for k := range want {
					if got[k] != want[k] {
						t.Fatalf("shard %d seq %d event %d: positions differ", si, s, e)
					}
				}
			}
		}
	}
	if !sawIncrement {
		t.Fatalf("no shard index was extended incrementally (all versions 0)")
	}
}

func minedRules(t *testing.T, db *seqdb.Database) []rules.Rule {
	t.Helper()
	res, err := rules.MineNonRedundant(db, rules.Options{
		MinSeqSupportRel: 0.5, MinInstanceSupport: 1, MinConfidence: 0.8,
		MaxPremiseLength: 2, MaxConsequentLength: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.Rules
}

// TestOnlineConformanceMatchesBatchOverSnapshot is the end-to-end
// equivalence: rules mined from a training batch, fresh violating traffic
// streamed in chunk by chunk, and the accumulated online reports must be
// identical to a batch CheckRules over the snapshot the reports came with.
func TestOnlineConformanceMatchesBatchOverSnapshot(t *testing.T) {
	for name, w := range tracesim.Workloads() {
		train := w.MustGenerate(30, 7)
		ruleSet := minedRules(t, train)
		if len(ruleSet) == 0 {
			t.Fatalf("%s: no rules mined", name)
		}
		engine, err := verify.NewEngine(ruleSet)
		if err != nil {
			t.Fatal(err)
		}

		fresh := w
		fresh.ViolationRate = 0.25
		for _, shards := range []int{1, 3} {
			ing := NewIngester(Config{Shards: shards, FlushBatch: 4, Dict: train.Dict, Engine: engine})
			ingestWorkload(t, ing, fresh, 60, 99)
			v, err := ing.Snapshot()
			if err != nil {
				t.Fatal(err)
			}

			batch, err := verify.CheckRules(v.DB, ruleSet)
			if err != nil {
				t.Fatal(err)
			}
			if len(v.Reports) != len(batch) {
				t.Fatalf("%s shards=%d: %d online reports want %d", name, shards, len(v.Reports), len(batch))
			}
			for i := range batch {
				g, wnt := v.Reports[i], batch[i]
				if g.TotalTemporalPoints != wnt.TotalTemporalPoints ||
					g.SatisfiedTemporalPoints != wnt.SatisfiedTemporalPoints ||
					g.SatisfiedTraces != wnt.SatisfiedTraces ||
					g.ViolatedTraces != wnt.ViolatedTraces {
					t.Fatalf("%s shards=%d rule %d: counters differ\n got %+v\nwant %+v", name, shards, i, g, wnt)
				}
				if len(g.Violations) != len(wnt.Violations) {
					t.Fatalf("%s shards=%d rule %d: %d violations want %d", name, shards, i, len(g.Violations), len(wnt.Violations))
				}
				for k := range wnt.Violations {
					if g.Violations[k].Seq != wnt.Violations[k].Seq ||
						g.Violations[k].TemporalPoint != wnt.Violations[k].TemporalPoint {
						t.Fatalf("%s shards=%d rule %d violation %d: got %+v want %+v",
							name, shards, i, k, g.Violations[k], wnt.Violations[k])
					}
				}
			}
			gs, ws := verify.NewSummary(v.Reports), verify.NewSummary(batch)
			if gs.Render(v.DB.Dict, 2) != ws.Render(v.DB.Dict, 2) {
				t.Fatalf("%s shards=%d: summaries differ", name, shards)
			}
			if err := ing.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestConcurrentProducersAndSnapshots hammers one ingester from several
// producer goroutines while another keeps taking snapshots and checking
// them — the -race exercise for the whole subsystem.
func TestConcurrentProducersAndSnapshots(t *testing.T) {
	w := tracesim.Workloads()["locking"]
	train := w.MustGenerate(30, 7)
	ruleSet := minedRules(t, train)
	if len(ruleSet) == 0 {
		t.Skip("no rules mined")
	}
	engine, err := verify.NewEngine(ruleSet)
	if err != nil {
		t.Fatal(err)
	}
	ing := NewIngester(Config{Shards: 4, FlushBatch: 3, Dict: train.Dict, Engine: engine})

	const producers = 4
	const tracesPerProducer = 25
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			fresh := w
			fresh.ViolationRate = 0.2
			db := fresh.MustGenerate(tracesPerProducer, int64(100+p))
			for i, s := range db.Sequences {
				id := tracesim.TraceID(p*tracesPerProducer + i)
				for j := 0; j < len(s); j += 3 {
					hi := j + 3
					if hi > len(s) {
						hi = len(s)
					}
					names := make([]string, 0, 3)
					for _, ev := range s[j:hi] {
						names = append(names, db.Dict.Name(ev))
					}
					if err := ing.Ingest(id, names...); err != nil {
						t.Errorf("ingest: %v", err)
						return
					}
				}
				if err := ing.CloseTrace(id); err != nil {
					t.Errorf("close trace: %v", err)
					return
				}
			}
		}(p)
	}

	stop := make(chan struct{})
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			v, err := ing.Snapshot()
			if err != nil {
				t.Errorf("snapshot: %v", err)
				return
			}
			// Every snapshot must be internally consistent: batch-checking
			// its DB reproduces the online reports it carried.
			batch, err := verify.CheckRules(v.DB, ruleSet)
			if err != nil {
				t.Errorf("check: %v", err)
				return
			}
			for i := range batch {
				if v.Reports[i].TotalTemporalPoints != batch[i].TotalTemporalPoints ||
					len(v.Reports[i].Violations) != len(batch[i].Violations) {
					t.Errorf("snapshot inconsistent with its own online reports (rule %d)", i)
					return
				}
			}
		}
	}()

	wg.Wait()
	close(stop)
	snapWG.Wait()

	v, err := ing.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if v.DB.NumSequences() != producers*tracesPerProducer {
		t.Fatalf("final snapshot has %d traces want %d", v.DB.NumSequences(), producers*tracesPerProducer)
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ing.Ingest("late", "a"); err != ErrClosed {
		t.Fatalf("ingest after close: %v want ErrClosed", err)
	}
	if _, err := ing.Snapshot(); err != ErrClosed {
		t.Fatalf("snapshot after close: %v want ErrClosed", err)
	}
	if err := ing.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestEmptyAndUnknownTraces(t *testing.T) {
	ing := NewIngester(Config{Shards: 2})
	// Sealing an id that never ingested events produces an empty trace.
	if err := ing.CloseTrace("ghost"); err != nil {
		t.Fatal(err)
	}
	// A trace id becomes reusable after sealing.
	if err := ing.Ingest("t", "a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := ing.CloseTrace("t"); err != nil {
		t.Fatal(err)
	}
	if err := ing.Ingest("t", "c"); err != nil {
		t.Fatal(err)
	}
	if err := ing.CloseTrace("t"); err != nil {
		t.Fatal(err)
	}
	v, err := ing.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if v.DB.NumSequences() != 3 {
		t.Fatalf("snapshot has %d traces want 3", v.DB.NumSequences())
	}
	lens := map[int]int{}
	for _, s := range v.DB.Sequences {
		lens[len(s)]++
	}
	if lens[0] != 1 || lens[2] != 1 || lens[1] != 1 {
		t.Fatalf("unexpected trace lengths: %v", lens)
	}
	ing.Close()
}
