// Package episode implements window-based frequent episode mining in the
// style of Mannila, Toivonen and Verkamo (the WINEPI algorithm for serial
// episodes). The paper's Sections 1–2 position iterative pattern mining
// against episode mining: episodes require their events to occur close
// together (inside a fixed-width window) and are mined from a single long
// sequence, whereas iterative patterns have no window restriction and are
// mined from a database of sequences.
//
// The package exists as the comparator baseline: the episodes example and the
// ablation benchmarks show how window-bounded mining misses rules such as
// <lock, unlock> whose events are separated by arbitrarily many other events.
package episode

import (
	"errors"
	"sort"
	"time"

	"specmine/internal/seqdb"
)

// Options configures episode mining.
type Options struct {
	// WindowWidth is the sliding-window width in events (the paper's
	// "window size"); it must be at least 1.
	WindowWidth int
	// MinFrequency is the minimum window frequency: the fraction of windows
	// that must contain the episode, in (0, 1].
	MinFrequency float64
	// MaxEpisodeLength bounds the episode length; 0 means bounded only by the
	// window width.
	MaxEpisodeLength int
}

// Validate reports configuration errors.
func (o Options) Validate() error {
	if o.WindowWidth < 1 {
		return errors.New("episode: WindowWidth must be >= 1")
	}
	if o.MinFrequency <= 0 || o.MinFrequency > 1 {
		return errors.New("episode: MinFrequency must be in (0, 1]")
	}
	if o.MaxEpisodeLength < 0 {
		return errors.New("episode: MaxEpisodeLength must be >= 0")
	}
	return nil
}

// Episode is a serial episode (an ordered series of events) with its window
// frequency.
type Episode struct {
	Pattern seqdb.Pattern
	// Windows is the number of windows containing the episode.
	Windows int
	// Frequency is Windows divided by the total number of windows.
	Frequency float64
}

// Result is the outcome of an episode mining run.
type Result struct {
	Episodes     []Episode
	TotalWindows int
	Duration     time.Duration
}

// Sort orders episodes by decreasing frequency then content.
func (r *Result) Sort() {
	sort.Slice(r.Episodes, func(i, j int) bool {
		a, b := r.Episodes[i], r.Episodes[j]
		if a.Windows != b.Windows {
			return a.Windows > b.Windows
		}
		return seqdb.ComparePatterns(a.Pattern, b.Pattern) < 0
	})
}

// Find returns the mined entry for pattern p, if present.
func (r *Result) Find(p seqdb.Pattern) (Episode, bool) {
	for _, e := range r.Episodes {
		if e.Pattern.Equal(p) {
			return e, true
		}
	}
	return Episode{}, false
}

// Mine discovers frequent serial episodes in the single event sequence s.
// Following WINEPI, the sequence is observed through a sliding window of
// WindowWidth events (windows are taken at every start position from
// -(width-1) to len(s)-1 so that every event appears in exactly width
// windows); an episode is supported by a window when it is a subsequence of
// the window's events.
func Mine(s seqdb.Sequence, opts Options) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	totalWindows := len(s) + opts.WindowWidth - 1
	if len(s) == 0 {
		return &Result{TotalWindows: 0, Duration: time.Since(start)}, nil
	}
	minWindows := int(opts.MinFrequency*float64(totalWindows) + 0.999999)
	if minWindows < 1 {
		minWindows = 1
	}

	maxLen := opts.WindowWidth
	if opts.MaxEpisodeLength > 0 && opts.MaxEpisodeLength < maxLen {
		maxLen = opts.MaxEpisodeLength
	}

	m := &miner{s: s, width: opts.WindowWidth, minWindows: minWindows, maxLen: maxLen, total: totalWindows}
	m.run()
	res := &Result{Episodes: m.out, TotalWindows: totalWindows, Duration: time.Since(start)}
	res.Sort()
	return res, nil
}

// MineDatabase concatenates nothing: it mines each sequence separately and
// merges window counts, providing an episode-style view over a sequence
// database for comparison with the iterative pattern miner.
func MineDatabase(db *seqdb.Database, opts Options) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	merged := make(map[string]*Episode)
	totalWindows := 0
	for _, s := range db.Sequences {
		res, err := Mine(s, Options{WindowWidth: opts.WindowWidth, MinFrequency: 1.0 / float64(len(s)+opts.WindowWidth), MaxEpisodeLength: opts.MaxEpisodeLength})
		if err != nil {
			return nil, err
		}
		totalWindows += res.TotalWindows
		for _, ep := range res.Episodes {
			key := ep.Pattern.Key()
			if cur, ok := merged[key]; ok {
				cur.Windows += ep.Windows
			} else {
				cp := ep
				merged[key] = &cp
			}
		}
	}
	out := &Result{TotalWindows: totalWindows}
	minWindows := int(opts.MinFrequency*float64(totalWindows) + 0.999999)
	if minWindows < 1 {
		minWindows = 1
	}
	for _, ep := range merged {
		if ep.Windows >= minWindows {
			ep.Frequency = float64(ep.Windows) / float64(totalWindows)
			out.Episodes = append(out.Episodes, *ep)
		}
	}
	out.Duration = time.Since(start)
	out.Sort()
	return out, nil
}

type miner struct {
	s          seqdb.Sequence
	width      int
	minWindows int
	maxLen     int
	total      int
	out        []Episode
}

func (m *miner) run() {
	// Level-wise (apriori) search: candidate episodes of length k are built
	// from frequent episodes of length k-1, then counted against all windows.
	var frequent []seqdb.Pattern
	// Length-1 candidates: every distinct event.
	seen := make(map[seqdb.EventID]struct{})
	var singles []seqdb.Pattern
	for _, e := range m.s {
		if _, ok := seen[e]; ok {
			continue
		}
		seen[e] = struct{}{}
		singles = append(singles, seqdb.Pattern{e})
	}
	sort.Slice(singles, func(i, j int) bool { return singles[i][0] < singles[j][0] })
	level := m.countAndFilter(singles)
	frequent = append(frequent, level...)

	for k := 2; k <= m.maxLen && len(level) > 0; k++ {
		// Candidates: extend each frequent (k-1)-episode with the last event
		// of every frequent 1-episode.
		var candidates []seqdb.Pattern
		for _, p := range level {
			for _, s := range singles {
				candidates = append(candidates, p.Append(s[0]))
			}
		}
		level = m.countAndFilter(candidates)
		frequent = append(frequent, level...)
	}
	_ = frequent
}

// countAndFilter counts window support for each candidate and keeps the
// frequent ones, recording them in the output.
func (m *miner) countAndFilter(candidates []seqdb.Pattern) []seqdb.Pattern {
	var kept []seqdb.Pattern
	for _, p := range candidates {
		w := m.countWindows(p)
		if w >= m.minWindows {
			kept = append(kept, p)
			m.out = append(m.out, Episode{Pattern: p, Windows: w, Frequency: float64(w) / float64(m.total)})
		}
	}
	return kept
}

// countWindows returns the number of sliding windows of width m.width that
// contain p as a subsequence. Window start positions range from
// -(width-1) .. len(s)-1; the window covers positions [start, start+width).
func (m *miner) countWindows(p seqdb.Pattern) int {
	count := 0
	for start := -(m.width - 1); start < len(m.s); start++ {
		lo := start
		if lo < 0 {
			lo = 0
		}
		hi := start + m.width
		if hi > len(m.s) {
			hi = len(m.s)
		}
		if hi <= lo {
			continue
		}
		if seqdb.Sequence(m.s[lo:hi]).ContainsSubsequence(p) {
			count++
		}
	}
	return count
}
