// Package episode implements window-based frequent episode mining in the
// style of Mannila, Toivonen and Verkamo (the WINEPI algorithm for serial
// episodes). The paper's Sections 1–2 position iterative pattern mining
// against episode mining: episodes require their events to occur close
// together (inside a fixed-width window) and are mined from a single long
// sequence, whereas iterative patterns have no window restriction and are
// mined from a database of sequences.
//
// The package exists as the comparator baseline: the episodes example and the
// ablation benchmarks show how window-bounded mining misses rules such as
// <lock, unlock> whose events are separated by arbitrarily many other events.
//
// Since the unified-kernel refactor the miner is posting-driven: instead of
// rescanning every sliding window per candidate (the seed's level-wise pass,
// preserved under internal/bench/baseline), it grows episodes depth-first
// over seqdb.PositionIndex and counts windows by advancing greedy-embedding
// end chains over the occurrence lists. A window contains a serial episode
// exactly when the greedy (earliest) embedding rooted at the window's first
// occurrence of the episode's head event ends inside the window; those ends
// are obtained per head occurrence with one NextAfter chain, extended
// incrementally from the parent node's chain, so counting a candidate costs
// O(occurrences of the head event × log) instead of O(trace length × width).
// Counts are computed for every candidate first; the end chains are
// materialised (into free-listed arenas) only for candidates that survive
// and recurse — the framework's count-first discipline.
package episode

import (
	"errors"
	"sort"
	"time"

	"specmine/internal/mine"
	"specmine/internal/seqdb"
)

// Options configures episode mining.
type Options struct {
	// WindowWidth is the sliding-window width in events (the paper's
	// "window size"); it must be at least 1.
	WindowWidth int
	// MinFrequency is the minimum window frequency: the fraction of windows
	// that must contain the episode, in (0, 1].
	MinFrequency float64
	// MaxEpisodeLength bounds the episode length; 0 means bounded only by the
	// window width.
	MaxEpisodeLength int
	// Workers bounds the parallel worker pool (0/1 sequential, negative =
	// GOMAXPROCS). Results are identical for any value.
	Workers int
}

// Validate reports configuration errors.
func (o Options) Validate() error {
	if o.WindowWidth < 1 {
		return errors.New("episode: WindowWidth must be >= 1")
	}
	if o.MinFrequency <= 0 || o.MinFrequency > 1 {
		return errors.New("episode: MinFrequency must be in (0, 1]")
	}
	if o.MaxEpisodeLength < 0 {
		return errors.New("episode: MaxEpisodeLength must be >= 0")
	}
	return nil
}

func (o Options) maxLen() int {
	maxLen := o.WindowWidth
	if o.MaxEpisodeLength > 0 && o.MaxEpisodeLength < maxLen {
		maxLen = o.MaxEpisodeLength
	}
	return maxLen
}

// Episode is a serial episode (an ordered series of events) with its window
// frequency.
type Episode struct {
	Pattern seqdb.Pattern
	// Windows is the number of windows containing the episode.
	Windows int
	// Frequency is Windows divided by the total number of windows.
	Frequency float64
}

// Result is the outcome of an episode mining run.
type Result struct {
	Episodes     []Episode
	TotalWindows int
	Duration     time.Duration
}

// Sort orders episodes by decreasing frequency then content.
func (r *Result) Sort() {
	sort.Slice(r.Episodes, func(i, j int) bool {
		a, b := r.Episodes[i], r.Episodes[j]
		if a.Windows != b.Windows {
			return a.Windows > b.Windows
		}
		return seqdb.ComparePatterns(a.Pattern, b.Pattern) < 0
	})
}

// Find returns the mined entry for pattern p, if present.
func (r *Result) Find(p seqdb.Pattern) (Episode, bool) {
	for _, e := range r.Episodes {
		if e.Pattern.Equal(p) {
			return e, true
		}
	}
	return Episode{}, false
}

// minWindowsFor converts the frequency threshold into an absolute window
// count (never below one).
func minWindowsFor(minFrequency float64, totalWindows int) int {
	minWindows := int(minFrequency*float64(totalWindows) + 0.999999)
	if minWindows < 1 {
		minWindows = 1
	}
	return minWindows
}

// Mine discovers frequent serial episodes in the single event sequence s.
// Following WINEPI, the sequence is observed through a sliding window of
// WindowWidth events (windows are taken at every start position from
// -(width-1) to len(s)-1 so that every event appears in exactly width
// windows); an episode is supported by a window when it is a subsequence of
// the window's events.
func Mine(s seqdb.Sequence, opts Options) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	if len(s) == 0 {
		return &Result{TotalWindows: 0, Duration: time.Since(start)}, nil
	}
	totalWindows := len(s) + opts.WindowWidth - 1
	minWindows := minWindowsFor(opts.MinFrequency, totalWindows)
	idx := seqdb.BuildPositionIndex([]seqdb.Sequence{s}, 0)
	episodes := run(idx, opts, totalWindows, minWindows)
	res := &Result{Episodes: episodes, TotalWindows: totalWindows, Duration: time.Since(start)}
	res.Sort()
	return res, nil
}

// MineDatabase mines each sequence's windows and merges the counts,
// providing an episode-style view over a sequence database for comparison
// with the iterative pattern miner: an episode's window count is summed over
// all sequences and the frequency threshold applies to the total.
func MineDatabase(db *seqdb.Database, opts Options) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	totalWindows := 0
	for _, s := range db.Sequences {
		if len(s) > 0 {
			totalWindows += len(s) + opts.WindowWidth - 1
		}
	}
	minWindows := minWindowsFor(opts.MinFrequency, totalWindows)
	episodes := run(db.FlatIndex(), opts, totalWindows, minWindows)
	res := &Result{Episodes: episodes, TotalWindows: totalWindows, Duration: time.Since(start)}
	res.Sort()
	return res, nil
}

// run fans the episode search out across seed (head) events. Window counts
// are summed over every indexed sequence, and minWindows gates both
// reporting and recursion: per-sequence window sets shrink under suffix
// extension, so the merged count is antimonotone and every frequent
// episode's prefixes are frequent too. Per-seed outputs merge in seed
// order, so results are byte-identical for any worker count.
func run(idx *seqdb.PositionIndex, opts Options, totalWindows, minWindows int) []Episode {
	seeds := idx.FrequentEventsByInstanceCount(1)
	workers := mine.EffectiveWorkers(opts.Workers)
	newWorker := func() *miner {
		return &miner{
			idx:     idx,
			width:   opts.WindowWidth,
			maxLen:  opts.maxLen(),
			minWins: minWindows,
			total:   totalWindows,
			slots:   seqdb.NewEventSlots(idx.NumEvents()),
			path:    make(seqdb.Pattern, 0, opts.maxLen()+1),
		}
	}
	outs := mine.ForSeeds(len(seeds), workers, newWorker, func(m *miner, i int) []Episode {
		m.out = nil
		m.mineSeed(seeds[i])
		return m.out
	})
	var episodes []Episode
	for _, o := range outs {
		episodes = append(episodes, o...)
	}
	return episodes
}

// epiSeq is one sequence's slice of a node's end-chain storage: the greedy
// embedding of the node's episode rooted at the i-th occurrence of the head
// event ends at ends[off+i], for i < n (the chain fails from occurrence n
// on, monotonically).
type epiSeq struct {
	seq    int32
	off, n int32
}

// node is one search-tree node's materialised state.
type node struct {
	hdr  []epiSeq
	ends []int32
}

type miner struct {
	idx     *seqdb.PositionIndex
	width   int
	maxLen  int
	minWins int
	total   int

	slots seqdb.EventSlots
	hdrs  mine.Arena[epiSeq]
	endsA mine.Arena[int32]
	path  seqdb.Pattern
	out   []Episode
}

// windowCount returns the number of windows that use occ[i] as the first
// head-event occurrence and contain the embedding ending at end: window
// starts range over [max(floor, end-width+1), occ[i]], where floor excludes
// starts whose window already contains the previous head occurrence (those
// windows are counted there) and clips at the leftmost window -(width-1).
func (m *miner) windowCount(occ []int32, i int, end int32) int {
	t := int(occ[i])
	floor := -(m.width - 1)
	if i > 0 {
		floor = int(occ[i-1]) + 1
	}
	a := int(end) - m.width + 1
	if a < floor {
		a = floor
	}
	if t < a {
		return 0
	}
	return t - a + 1
}

func (m *miner) mineSeed(e seqdb.EventID) {
	// Seed chains are the head occurrences themselves (a single event's
	// embedding ends where it starts).
	wins := 0
	for _, si := range m.idx.SeqsContaining(e) {
		occ := m.idx.Positions(int(si), e)
		for i := range occ {
			wins += m.windowCount(occ, i, occ[i])
		}
	}
	if wins < m.minWins {
		return
	}
	m.path = append(m.path[:0], e)
	m.emit(m.path, wins)
	if m.maxLen <= 1 {
		return
	}
	nd := node{hdr: m.hdrs.Get(), ends: m.endsA.Get()}
	for _, si := range m.idx.SeqsContaining(e) {
		occ := m.idx.Positions(int(si), e)
		off := int32(len(nd.ends))
		nd.ends = append(nd.ends, occ...)
		nd.hdr = append(nd.hdr, epiSeq{seq: si, off: off, n: int32(len(occ))})
	}
	m.grow(m.path, nd)
	m.hdrs.Put(nd.hdr)
	m.endsA.Put(nd.ends)
}

// grow expands the episode p (a view of the shared path buffer) whose end
// chains are nd. The counting pass advances every live sequence's chain by
// one NextAfter per end for every candidate event of its local alphabet —
// counts alone decide emission and recursion — and only recursed-into
// children get their chains materialised.
func (m *miner) grow(p seqdb.Pattern, nd node) {
	first := p[0]
	sc := &m.slots
	sc.Begin()
	for _, h := range nd.hdr {
		si := int(h.seq)
		occ := m.idx.Positions(si, first)
		ends := nd.ends[h.off : h.off+h.n]
		for _, ev := range m.idx.SeqEvents(si) {
			// Ends are non-decreasing, so one galloping cursor per candidate
			// event replaces a from-scratch index search per end.
			cur := m.idx.Cursor(si, ev)
			wins := 0
			for i, end := range ends {
				ne := cur.NextAfter(end + 1)
				if ne < 0 {
					// Every later chain fails too.
					break
				}
				wins += m.windowCount(occ, i, ne)
			}
			if wins > 0 {
				sc.AddN(ev, int32(wins))
			}
		}
	}
	// Candidate order is slot (first-seen) order; sort by event id for
	// deterministic traversal.
	type cand struct {
		ev   seqdb.EventID
		wins int
	}
	cands := make([]cand, sc.Len())
	for slot := range cands {
		cands[slot] = cand{ev: sc.Event(slot), wins: int(sc.Count(slot))}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].ev < cands[j].ev })

	for _, c := range cands {
		if c.wins < m.minWins {
			continue
		}
		child := append(p, c.ev)
		m.emit(child, c.wins)
		if len(child) >= m.maxLen {
			continue
		}
		cn := m.materialize(nd, first, c.ev)
		m.grow(child, cn)
		m.hdrs.Put(cn.hdr)
		m.endsA.Put(cn.ends)
	}
}

// materialize re-advances the parent's chains for the surviving candidate
// event and stores the child's chains in arena-backed storage. Sequences
// whose child window count drops to zero are dropped: window counts are
// antimonotone per sequence, so no descendant can recover them.
func (m *miner) materialize(parent node, first seqdb.EventID, ev seqdb.EventID) node {
	cn := node{hdr: m.hdrs.Get(), ends: m.endsA.Get()}
	for _, h := range parent.hdr {
		si := int(h.seq)
		occ := m.idx.Positions(si, first)
		ends := parent.ends[h.off : h.off+h.n]
		cur := m.idx.Cursor(si, ev)
		off := int32(len(cn.ends))
		wins := 0
		for i, end := range ends {
			ne := cur.NextAfter(end + 1)
			if ne < 0 {
				break
			}
			cn.ends = append(cn.ends, ne)
			wins += m.windowCount(occ, i, ne)
		}
		if wins > 0 {
			cn.hdr = append(cn.hdr, epiSeq{seq: h.seq, off: off, n: int32(len(cn.ends)) - off})
		} else {
			cn.ends = cn.ends[:off]
		}
	}
	return cn
}

func (m *miner) emit(p seqdb.Pattern, wins int) {
	m.out = append(m.out, Episode{
		Pattern:   p.Clone(),
		Windows:   wins,
		Frequency: float64(wins) / float64(m.total),
	})
}
