package episode

import (
	"math/rand"
	"testing"

	"specmine/internal/seqdb"
)

func seqOf(d *seqdb.Dictionary, names ...string) seqdb.Sequence {
	s := make(seqdb.Sequence, 0, len(names))
	for _, n := range names {
		s = append(s, d.Intern(n))
	}
	return s
}

func TestOptionsValidate(t *testing.T) {
	if err := (Options{}).Validate(); err == nil {
		t.Errorf("zero options accepted")
	}
	if err := (Options{WindowWidth: 3, MinFrequency: 0.1}).Validate(); err != nil {
		t.Errorf("valid options rejected: %v", err)
	}
	if err := (Options{WindowWidth: 3, MinFrequency: 2}).Validate(); err == nil {
		t.Errorf("frequency > 1 accepted")
	}
	if err := (Options{WindowWidth: 3, MinFrequency: 0.5, MaxEpisodeLength: -1}).Validate(); err == nil {
		t.Errorf("negative MaxEpisodeLength accepted")
	}
	if _, err := Mine(nil, Options{}); err == nil {
		t.Errorf("Mine accepted invalid options")
	}
	if _, err := MineDatabase(seqdb.NewDatabase(), Options{}); err == nil {
		t.Errorf("MineDatabase accepted invalid options")
	}
}

func TestMineEmptySequence(t *testing.T) {
	res, err := Mine(nil, Options{WindowWidth: 3, MinFrequency: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Episodes) != 0 || res.TotalWindows != 0 {
		t.Errorf("empty sequence should yield nothing: %+v", res)
	}
}

func TestWindowCounting(t *testing.T) {
	d := seqdb.NewDictionary()
	s := seqOf(d, "a", "b", "a", "b")
	// Window width 2, total windows = 4 + 1 = 5.
	res, err := Mine(s, Options{WindowWidth: 2, MinFrequency: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalWindows != 5 {
		t.Fatalf("TotalWindows=%d want 5", res.TotalWindows)
	}
	a := seqdb.ParsePattern(d, "a")
	ab := seqdb.ParsePattern(d, "a b")
	ba := seqdb.ParsePattern(d, "b a")
	if e, ok := res.Find(a); !ok || e.Windows != 4 {
		// Each event is covered by exactly `width` windows; the two a's share
		// no window at width 2, so 2*2 = 4.
		t.Errorf("<a> windows=%v ok=%v want 4", e.Windows, ok)
	}
	if e, ok := res.Find(ab); !ok || e.Windows != 2 {
		t.Errorf("<a, b> windows=%v ok=%v want 2", e.Windows, ok)
	}
	if e, ok := res.Find(ba); !ok || e.Windows != 1 {
		t.Errorf("<b, a> windows=%v ok=%v want 1", e.Windows, ok)
	}
}

func TestWindowBarrierMissesDistantPairs(t *testing.T) {
	// The motivating contrast of Sections 1–2: a lock/unlock pair separated by
	// more events than the window width is invisible to episode mining.
	d := seqdb.NewDictionary()
	s := seqOf(d, "lock", "w1", "w2", "w3", "w4", "w5", "unlock")
	res, err := Mine(s, Options{WindowWidth: 3, MinFrequency: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Find(seqdb.ParsePattern(d, "lock unlock")); ok {
		t.Errorf("window-bounded mining should not find the distant <lock, unlock> pair")
	}
	wide, err := Mine(s, Options{WindowWidth: 7, MinFrequency: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := wide.Find(seqdb.ParsePattern(d, "lock unlock")); !ok {
		t.Errorf("a window as wide as the trace should find <lock, unlock>")
	}
}

func TestMinFrequencyFilters(t *testing.T) {
	d := seqdb.NewDictionary()
	s := seqOf(d, "a", "a", "a", "b")
	res, err := Mine(s, Options{WindowWidth: 2, MinFrequency: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Find(seqdb.ParsePattern(d, "a")); !ok {
		t.Errorf("<a> should pass the 50%% frequency threshold")
	}
	if _, ok := res.Find(seqdb.ParsePattern(d, "b")); ok {
		t.Errorf("<b> should fail the 50%% frequency threshold")
	}
	for _, e := range res.Episodes {
		if e.Frequency < 0.5 {
			t.Errorf("episode %s below threshold: %v", e.Pattern.String(d), e.Frequency)
		}
	}
}

func TestMaxEpisodeLength(t *testing.T) {
	d := seqdb.NewDictionary()
	s := seqOf(d, "a", "b", "c", "a", "b", "c")
	res, err := Mine(s, Options{WindowWidth: 4, MinFrequency: 0.05, MaxEpisodeLength: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Episodes {
		if e.Pattern.Len() > 2 {
			t.Errorf("episode %s exceeds MaxEpisodeLength", e.Pattern.String(d))
		}
	}
}

// bruteWindows counts supporting windows directly for cross-validation.
func bruteWindows(s seqdb.Sequence, p seqdb.Pattern, width int) int {
	count := 0
	for start := -(width - 1); start < len(s); start++ {
		lo, hi := start, start+width
		if lo < 0 {
			lo = 0
		}
		if hi > len(s) {
			hi = len(s)
		}
		if hi <= lo {
			continue
		}
		if seqdb.Sequence(s[lo:hi]).ContainsSubsequence(p) {
			count++
		}
	}
	return count
}

func TestMineAgainstBruteForceQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for iter := 0; iter < 20; iter++ {
		n := 3 + rng.Intn(10)
		s := make(seqdb.Sequence, n)
		for i := range s {
			s[i] = seqdb.EventID(rng.Intn(3))
		}
		width := 2 + rng.Intn(3)
		res, err := Mine(s, Options{WindowWidth: width, MinFrequency: 0.2})
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range res.Episodes {
			if want := bruteWindows(s, e.Pattern, width); want != e.Windows {
				t.Fatalf("iter %d: window count mismatch for %v: %d vs %d", iter, e.Pattern, e.Windows, want)
			}
		}
	}
}

// enumeratePatterns returns every pattern over alphabet [0, alphabet) of
// length 1..maxLen.
func enumeratePatterns(alphabet, maxLen int) []seqdb.Pattern {
	var out []seqdb.Pattern
	var rec func(p seqdb.Pattern)
	rec = func(p seqdb.Pattern) {
		if len(p) > 0 {
			out = append(out, p.Clone())
		}
		if len(p) >= maxLen {
			return
		}
		for e := 0; e < alphabet; e++ {
			rec(append(p, seqdb.EventID(e)))
		}
	}
	rec(nil)
	return out
}

// TestMineCompleteAgainstEnumeration cross-checks the posting-driven miner
// against a brute-force enumerator on random traces: every frequent episode
// must be reported (completeness) with the exact window count of the naive
// per-window rescan, and nothing else.
func TestMineCompleteAgainstEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for iter := 0; iter < 40; iter++ {
		alphabet := 2 + rng.Intn(2)
		n := 3 + rng.Intn(12)
		s := make(seqdb.Sequence, n)
		for i := range s {
			s[i] = seqdb.EventID(rng.Intn(alphabet))
		}
		width := 2 + rng.Intn(3)
		opts := Options{WindowWidth: width, MinFrequency: 0.1 + rng.Float64()*0.4, MaxEpisodeLength: 1 + rng.Intn(3)}
		res, err := Mine(s, opts)
		if err != nil {
			t.Fatal(err)
		}
		total := len(s) + width - 1
		minWindows := minWindowsFor(opts.MinFrequency, total)
		maxLen := opts.maxLen()
		want := make(map[string]int)
		for _, p := range enumeratePatterns(alphabet, maxLen) {
			if w := bruteWindows(s, p, width); w >= minWindows {
				want[p.Key()] = w
			}
		}
		if len(res.Episodes) != len(want) {
			t.Fatalf("iter %d: %d episodes, brute force %d (opts %+v)", iter, len(res.Episodes), len(want), opts)
		}
		for _, e := range res.Episodes {
			if want[e.Pattern.Key()] != e.Windows {
				t.Fatalf("iter %d: %v windows=%d brute=%d", iter, e.Pattern, e.Windows, want[e.Pattern.Key()])
			}
		}
	}
}

// TestMineDatabaseAgainstEnumeration is the database-level analogue on small
// synthetic trace batches: merged window counts must match summing the naive
// per-sequence window enumeration, with the frequency threshold applied to
// the total.
func TestMineDatabaseAgainstEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	for iter := 0; iter < 25; iter++ {
		alphabet := 2 + rng.Intn(2)
		db := seqdb.NewDatabase()
		for i := 0; i < 2+rng.Intn(4); i++ {
			n := rng.Intn(10)
			names := make([]string, n)
			for j := range names {
				names[j] = string(rune('a' + rng.Intn(alphabet)))
			}
			db.AppendNames(names...)
		}
		width := 2 + rng.Intn(3)
		opts := Options{WindowWidth: width, MinFrequency: 0.05 + rng.Float64()*0.3, MaxEpisodeLength: 1 + rng.Intn(3)}
		res, err := MineDatabase(db, opts)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, s := range db.Sequences {
			if len(s) > 0 {
				total += len(s) + width - 1
			}
		}
		if res.TotalWindows != total {
			t.Fatalf("iter %d: TotalWindows=%d want %d", iter, res.TotalWindows, total)
		}
		minWindows := minWindowsFor(opts.MinFrequency, total)
		want := make(map[string]int)
		for _, p := range enumeratePatterns(db.Dict.Size(), opts.maxLen()) {
			w := 0
			for _, s := range db.Sequences {
				w += bruteWindows(s, p, width)
			}
			if w >= minWindows {
				want[p.Key()] = w
			}
		}
		if len(res.Episodes) != len(want) {
			t.Fatalf("iter %d: %d episodes, brute force %d", iter, len(res.Episodes), len(want))
		}
		for _, e := range res.Episodes {
			if want[e.Pattern.Key()] != e.Windows {
				t.Fatalf("iter %d: %v windows=%d brute=%d", iter, e.Pattern, e.Windows, want[e.Pattern.Key()])
			}
		}
	}
}

// TestWorkersByteIdentical asserts the parallel episode miner reproduces the
// sequential result exactly for any worker count.
func TestWorkersByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	db := seqdb.NewDatabase()
	for i := 0; i < 8; i++ {
		n := 5 + rng.Intn(20)
		names := make([]string, n)
		for j := range names {
			names[j] = string(rune('a' + rng.Intn(5)))
		}
		db.AppendNames(names...)
	}
	opts := Options{WindowWidth: 4, MinFrequency: 0.05, MaxEpisodeLength: 3, Workers: 1}
	seq, err := MineDatabase(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, -1} {
		opts.Workers = workers
		par, err := MineDatabase(db, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(par.Episodes) != len(seq.Episodes) {
			t.Fatalf("workers=%d: %d episodes want %d", workers, len(par.Episodes), len(seq.Episodes))
		}
		for k := range seq.Episodes {
			if !par.Episodes[k].Pattern.Equal(seq.Episodes[k].Pattern) ||
				par.Episodes[k].Windows != seq.Episodes[k].Windows ||
				par.Episodes[k].Frequency != seq.Episodes[k].Frequency {
				t.Fatalf("workers=%d: episode %d differs", workers, k)
			}
		}
	}
}

func TestMineDatabase(t *testing.T) {
	db := seqdb.NewDatabase()
	db.AppendNames("a", "b", "a", "b")
	db.AppendNames("a", "b")
	res, err := MineDatabase(db, Options{WindowWidth: 2, MinFrequency: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalWindows != 5+3 {
		t.Errorf("TotalWindows=%d want 8", res.TotalWindows)
	}
	if _, ok := res.Find(seqdb.ParsePattern(db.Dict, "a b")); !ok {
		t.Errorf("<a, b> missing from database-level episodes")
	}
}
