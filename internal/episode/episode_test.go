package episode

import (
	"math/rand"
	"testing"

	"specmine/internal/seqdb"
)

func seqOf(d *seqdb.Dictionary, names ...string) seqdb.Sequence {
	s := make(seqdb.Sequence, 0, len(names))
	for _, n := range names {
		s = append(s, d.Intern(n))
	}
	return s
}

func TestOptionsValidate(t *testing.T) {
	if err := (Options{}).Validate(); err == nil {
		t.Errorf("zero options accepted")
	}
	if err := (Options{WindowWidth: 3, MinFrequency: 0.1}).Validate(); err != nil {
		t.Errorf("valid options rejected: %v", err)
	}
	if err := (Options{WindowWidth: 3, MinFrequency: 2}).Validate(); err == nil {
		t.Errorf("frequency > 1 accepted")
	}
	if err := (Options{WindowWidth: 3, MinFrequency: 0.5, MaxEpisodeLength: -1}).Validate(); err == nil {
		t.Errorf("negative MaxEpisodeLength accepted")
	}
	if _, err := Mine(nil, Options{}); err == nil {
		t.Errorf("Mine accepted invalid options")
	}
	if _, err := MineDatabase(seqdb.NewDatabase(), Options{}); err == nil {
		t.Errorf("MineDatabase accepted invalid options")
	}
}

func TestMineEmptySequence(t *testing.T) {
	res, err := Mine(nil, Options{WindowWidth: 3, MinFrequency: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Episodes) != 0 || res.TotalWindows != 0 {
		t.Errorf("empty sequence should yield nothing: %+v", res)
	}
}

func TestWindowCounting(t *testing.T) {
	d := seqdb.NewDictionary()
	s := seqOf(d, "a", "b", "a", "b")
	// Window width 2, total windows = 4 + 1 = 5.
	res, err := Mine(s, Options{WindowWidth: 2, MinFrequency: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalWindows != 5 {
		t.Fatalf("TotalWindows=%d want 5", res.TotalWindows)
	}
	a := seqdb.ParsePattern(d, "a")
	ab := seqdb.ParsePattern(d, "a b")
	ba := seqdb.ParsePattern(d, "b a")
	if e, ok := res.Find(a); !ok || e.Windows != 4 {
		// Each event is covered by exactly `width` windows; the two a's share
		// no window at width 2, so 2*2 = 4.
		t.Errorf("<a> windows=%v ok=%v want 4", e.Windows, ok)
	}
	if e, ok := res.Find(ab); !ok || e.Windows != 2 {
		t.Errorf("<a, b> windows=%v ok=%v want 2", e.Windows, ok)
	}
	if e, ok := res.Find(ba); !ok || e.Windows != 1 {
		t.Errorf("<b, a> windows=%v ok=%v want 1", e.Windows, ok)
	}
}

func TestWindowBarrierMissesDistantPairs(t *testing.T) {
	// The motivating contrast of Sections 1–2: a lock/unlock pair separated by
	// more events than the window width is invisible to episode mining.
	d := seqdb.NewDictionary()
	s := seqOf(d, "lock", "w1", "w2", "w3", "w4", "w5", "unlock")
	res, err := Mine(s, Options{WindowWidth: 3, MinFrequency: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Find(seqdb.ParsePattern(d, "lock unlock")); ok {
		t.Errorf("window-bounded mining should not find the distant <lock, unlock> pair")
	}
	wide, err := Mine(s, Options{WindowWidth: 7, MinFrequency: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := wide.Find(seqdb.ParsePattern(d, "lock unlock")); !ok {
		t.Errorf("a window as wide as the trace should find <lock, unlock>")
	}
}

func TestMinFrequencyFilters(t *testing.T) {
	d := seqdb.NewDictionary()
	s := seqOf(d, "a", "a", "a", "b")
	res, err := Mine(s, Options{WindowWidth: 2, MinFrequency: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Find(seqdb.ParsePattern(d, "a")); !ok {
		t.Errorf("<a> should pass the 50%% frequency threshold")
	}
	if _, ok := res.Find(seqdb.ParsePattern(d, "b")); ok {
		t.Errorf("<b> should fail the 50%% frequency threshold")
	}
	for _, e := range res.Episodes {
		if e.Frequency < 0.5 {
			t.Errorf("episode %s below threshold: %v", e.Pattern.String(d), e.Frequency)
		}
	}
}

func TestMaxEpisodeLength(t *testing.T) {
	d := seqdb.NewDictionary()
	s := seqOf(d, "a", "b", "c", "a", "b", "c")
	res, err := Mine(s, Options{WindowWidth: 4, MinFrequency: 0.05, MaxEpisodeLength: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Episodes {
		if e.Pattern.Len() > 2 {
			t.Errorf("episode %s exceeds MaxEpisodeLength", e.Pattern.String(d))
		}
	}
}

// bruteWindows counts supporting windows directly for cross-validation.
func bruteWindows(s seqdb.Sequence, p seqdb.Pattern, width int) int {
	count := 0
	for start := -(width - 1); start < len(s); start++ {
		lo, hi := start, start+width
		if lo < 0 {
			lo = 0
		}
		if hi > len(s) {
			hi = len(s)
		}
		if hi <= lo {
			continue
		}
		if seqdb.Sequence(s[lo:hi]).ContainsSubsequence(p) {
			count++
		}
	}
	return count
}

func TestMineAgainstBruteForceQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for iter := 0; iter < 20; iter++ {
		n := 3 + rng.Intn(10)
		s := make(seqdb.Sequence, n)
		for i := range s {
			s[i] = seqdb.EventID(rng.Intn(3))
		}
		width := 2 + rng.Intn(3)
		res, err := Mine(s, Options{WindowWidth: width, MinFrequency: 0.2})
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range res.Episodes {
			if want := bruteWindows(s, e.Pattern, width); want != e.Windows {
				t.Fatalf("iter %d: window count mismatch for %v: %d vs %d", iter, e.Pattern, e.Windows, want)
			}
		}
	}
}

func TestMineDatabase(t *testing.T) {
	db := seqdb.NewDatabase()
	db.AppendNames("a", "b", "a", "b")
	db.AppendNames("a", "b")
	res, err := MineDatabase(db, Options{WindowWidth: 2, MinFrequency: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalWindows != 5+3 {
		t.Errorf("TotalWindows=%d want 8", res.TotalWindows)
	}
	if _, ok := res.Find(seqdb.ParsePattern(db.Dict, "a b")); !ok {
		t.Errorf("<a, b> missing from database-level episodes")
	}
}
