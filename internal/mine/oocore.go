package mine

import "specmine/internal/seqdb"

// Out-of-core seed fan-out. The in-memory miners walk one global
// PositionIndex; the out-of-core variants instead pull a per-seed view from a
// Source — typically backed by the segment catalog and the pin-and-evict
// cache — that contains exactly the traces the seed's subtree can ever
// touch. Segment skipping lives in the Source: per-segment statistics decide
// which bodies a seed needs, so a segment whose stats prove the seed event
// absent is never opened.
//
// The contract that makes per-seed mining byte-identical to the in-memory
// path:
//
//   - every pattern/premise grown from seed e starts with e, so its
//     supporting traces, extension counts and closedness witnesses all live
//     in traces containing e;
//   - SeedView.DB holds exactly those traces, in ascending global order, and
//     Global maps local sequence ids back to global ones;
//   - the view's index is built over the full event-id space (NumEvents), so
//     per-event scratch tables size identically.

// SeedView is one seed's slice of the database: the traces containing the
// seed event, their index, and the local→global id mapping. Release returns
// the view's pinned segments to the cache; the view must not be used after.
type SeedView struct {
	DB     *seqdb.Database
	Idx    *seqdb.PositionIndex
	Global []int32
	// Release unpins the backing segments. Always non-nil.
	Release func()
}

// GlobalOf maps a view-local sequence id to its global id.
func (v *SeedView) GlobalOf(local int32) int32 { return v.Global[local] }

// LocalOf maps a global sequence id back to the view-local id via binary
// search over the ascending Global table. The id must be present.
func (v *SeedView) LocalOf(global int32) int32 {
	lo, hi := 0, len(v.Global)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if v.Global[mid] < global {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return int32(lo)
}

// Source supplies per-seed views of a database that never materialises
// whole. Implementations must be safe for concurrent AcquireSeed calls from
// multiple mining workers.
type Source interface {
	// NumSequences is the global trace count — the denominator for relative
	// support thresholds.
	NumSequences() int
	// NumEvents is the event-id space (dictionary size).
	NumEvents() int
	// FrequentByInstanceCount lists, ascending, the events whose global
	// occurrence count (summed from segment stats) reaches min — the
	// out-of-core analogue of PositionIndex.FrequentEventsByInstanceCount.
	FrequentByInstanceCount(min int) []seqdb.EventID
	// FrequentBySeqSupport lists, ascending, the events whose global
	// sequence support reaches min.
	FrequentBySeqSupport(min int) []seqdb.EventID
	// AcquireSeed pins and assembles the view for one seed event. The caller
	// must call Release exactly once.
	AcquireSeed(e seqdb.EventID) (*SeedView, error)
}
