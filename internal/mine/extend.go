package mine

import (
	"slices"

	"specmine/internal/seqdb"
)

// Proj is one pseudo-projection entry of a search node: a sequence and the
// position of the node's last matched event in it (-1 when nothing has been
// matched yet). The suffix s[Pos+1:] is the entry's search region. Both the
// sequential-pattern miner (one entry per supporting sequence, positioned at
// the last matched event of the classic PrefixSpan pseudo-projection) and
// the rule miner (premise projections positioned at the first temporal
// point; consequent records positioned at the earliest consequent embedding)
// are instances of this shape.
type Proj struct {
	Seq int32
	Pos int32
}

// Ext is one candidate suffix extension of a search node: the extending
// event, the number of projection entries whose suffix contains it, and —
// only when the count reaches the node's materialise threshold — the
// extension's own projection, positioned at the first occurrence of the
// event within each surviving suffix. Tags parallels Proj when the node
// carries per-entry tags.
type Ext struct {
	Event seqdb.EventID
	Count int32
	Proj  []Proj
	Tags  []int32
}

// ExtSet is the extension set of one search node. All materialised
// projections share one arena block; Release recycles it once the node's
// subtree has been fully explored.
type ExtSet struct {
	Exts []Ext

	projArena []Proj
	tagArena  []int32
}

// Extender runs count-first suffix extension over a shared positional index.
// It owns the per-worker scratch (event slots) and the free-listed arenas
// that back projection storage; give each worker goroutine its own Extender.
//
// Callers that retain materialised projections beyond the node's lifetime
// (the rule miner's premise enumeration stores them in consequent jobs)
// simply never call Release; the arenas then always hand out fresh storage.
type Extender struct {
	seqs  []seqdb.Sequence
	idx   *seqdb.PositionIndex
	slots seqdb.EventSlots

	// stream buffers the (slot, entry, position) triples the counting pass
	// visits, so materialisation replays the buffer instead of rescanning
	// every suffix. It is consumed before Extensions returns, so one buffer
	// serves every node of the worker's search.
	stream []extRec

	projs Arena[Proj]
	tags  Arena[int32]
	exts  Arena[Ext]
}

// extRec is one counted first occurrence: the candidate's slot, the index of
// the projection entry that produced it, and the occurrence position.
type extRec struct {
	slot int32
	pi   int32
	pos  int32
}

// NewExtender returns an extender over the given sequences and their index.
func NewExtender(seqs []seqdb.Sequence, idx *seqdb.PositionIndex) *Extender {
	return &Extender{
		seqs:  seqs,
		idx:   idx,
		slots: seqdb.NewEventSlots(idx.NumEvents()),
	}
}

// SeedProj returns the root projection of seed event e: one entry per
// sequence containing e, positioned at its first occurrence, read straight
// off the index postings. The slice comes from the extender's arena; release
// it with ReleaseProj when the seed subtree is done (or keep it, see above).
func (x *Extender) SeedProj(e seqdb.EventID) []Proj {
	seqs := x.idx.SeqsContaining(e)
	proj := x.projs.GetN(len(seqs))
	for i, si := range seqs {
		proj[i] = Proj{Seq: si, Pos: x.idx.Positions(int(si), e)[0]}
	}
	return proj
}

// ReleaseProj recycles a projection obtained from SeedProj.
func (x *Extender) ReleaseProj(proj []Proj) { x.projs.Put(proj) }

// Extensions performs the count-first extension pass for the node whose
// pseudo-projection is proj. The counting pass scans each entry's suffix
// once; an event is counted at its first occurrence per suffix only, decided
// by a single read of the index's prev-occurrence chain (the event at
// position j is a first occurrence at or after from exactly when its
// previous occurrence precedes from), so Count is the number of entries
// whose suffix contains the event. Entries that keep one entry per sequence
// therefore count sequence support directly.
//
// Only candidates with Count >= materializeMin get their extension
// projection materialised (into one shared arena block), positioned at those
// first occurrences; counts alone serve every pruning decision below the
// threshold. tags, when non-nil, parallels proj and is carried through to
// the materialised extensions (the rule miner threads each record's temporal
// point this way). The returned extensions are sorted by event id for
// deterministic traversal.
func (x *Extender) Extensions(proj []Proj, tags []int32, materializeMin int32) ExtSet {
	sc := &x.slots
	sc.Begin()
	x.stream = x.stream[:0]
	for pi, pr := range proj {
		s := x.seqs[pr.Seq]
		from := int(pr.Pos) + 1
		for j := from; j < len(s); j++ {
			if x.idx.OccursWithin(int(pr.Seq), j, from) {
				continue
			}
			slot := sc.Add(s[j])
			x.stream = append(x.stream, extRec{slot: slot, pi: int32(pi), pos: int32(j)})
		}
	}
	if sc.Len() == 0 {
		return ExtSet{}
	}

	exts := x.exts.GetN(sc.Len())
	total := 0
	for slot := range exts {
		c := sc.Count(slot)
		exts[slot] = Ext{Event: sc.Event(slot), Count: c}
		if c >= materializeMin {
			total += int(c)
		}
	}
	es := ExtSet{Exts: exts}
	if total > 0 {
		es.projArena = x.projs.GetN(total)
		if tags != nil {
			es.tagArena = x.tags.GetN(total)
		}
		off := 0
		for slot := range exts {
			if c := int(exts[slot].Count); c >= int(materializeMin) {
				// Three-index slices cap each extension at its exact count, so
				// sibling appends can never run into one another's region.
				exts[slot].Proj = es.projArena[off : off : off+c]
				if tags != nil {
					exts[slot].Tags = es.tagArena[off : off : off+c]
				}
				off += c
			}
		}
		// Replay the counting pass's buffer — no suffix is scanned twice.
		for _, rec := range x.stream {
			e := &exts[rec.slot]
			if e.Proj == nil {
				continue
			}
			e.Proj = append(e.Proj, Proj{Seq: proj[rec.pi].Seq, Pos: rec.pos})
			if tags != nil {
				e.Tags = append(e.Tags, tags[rec.pi])
			}
		}
	}
	// Sort only after the replay above: the buffer addresses extensions by
	// slot index.
	slices.SortFunc(exts, func(a, b Ext) int { return int(a.Event) - int(b.Event) })
	return es
}

// Release recycles the node's arenas. The caller must be done with every
// extension projection: children explored, nothing retained.
func (x *Extender) Release(es ExtSet) {
	x.projs.Put(es.projArena)
	x.tags.Put(es.tagArena)
	x.exts.Put(es.Exts)
}
