// Package mine is the shared count-first search framework under the
// repository's miners. Every miner — iterative patterns, recurrent rules,
// sequential patterns, episodes — explores a pattern-growth search tree over
// the flat positional index (seqdb.PositionIndex) with the same three
// mechanics, which used to be re-implemented per package and now live here
// exactly once:
//
//   - deterministic seed fan-out (ForSeeds): the top-level search splits into
//     independent per-seed subtrees executed across a bounded worker pool,
//     with per-seed outputs merged in seed order so the result is
//     byte-identical to a sequential run for any worker count;
//   - free-listed arenas (Arena) and epoch-stamped scratch (StampSet, plus
//     seqdb.EventSlots): node-local storage is recycled when a subtree has
//     been fully explored and per-event sets reset in O(1), so search cost is
//     proportional to the live path, not to nodes explored;
//   - count-first suffix extension (Extender): one pass over a node's
//     pseudo-projection counts every candidate extension, counts alone decide
//     pruning, and extension projections are materialised only for candidates
//     that survive the threshold.
package mine

import (
	"runtime"
	"sort"

	"specmine/internal/par"
	"specmine/internal/seqdb"
)

// EffectiveWorkers resolves the miners' shared Workers knob to a concrete
// worker count: 0 and 1 mean sequential, negative means GOMAXPROCS.
func EffectiveWorkers(workers int) int {
	if workers < 0 {
		return runtime.GOMAXPROCS(0)
	}
	if workers == 0 {
		return 1
	}
	return workers
}

// ForSeeds runs run(w, seed) for every seed in [0, n) across at most workers
// goroutines and returns the per-seed outputs in seed order. Each pool
// goroutine gets its own worker state from newWorker (once on the calling
// goroutine when the pool degenerates to sequential), so scratch buffers are
// never shared. Because outputs land in per-seed slots and are merged in seed
// order, the concatenated result never depends on scheduling — the mechanism
// behind every miner's "byte-identical for any worker count" guarantee.
func ForSeeds[W, O any](n, workers int, newWorker func() W, run func(w W, seed int) O) []O {
	outs := make([]O, n)
	par.ForWorker(n, workers, newWorker, func(w W, i int) {
		outs[i] = run(w, i)
	})
	return outs
}

// ForSeedsScheduled is ForSeeds with an execution schedule: pool slot i runs
// seed schedule[i], but outputs still land in per-seed slots, so the merged
// result stays byte-identical to ForSeeds for any schedule and worker count —
// scheduling is purely a wall-clock decision. Miners feed it statistics-driven
// orders (heaviest seed first) so the pool never strands one giant subtree on
// a single worker at the tail of a run. schedule must be a permutation of
// [0, n); ScheduleByWeight builds one.
func ForSeedsScheduled[W, O any](n, workers int, schedule []int, newWorker func() W, run func(w W, seed int) O) []O {
	outs := make([]O, n)
	par.ForWorker(n, workers, newWorker, func(w W, i int) {
		seed := schedule[i]
		outs[seed] = run(w, seed)
	})
	return outs
}

// ScheduleByWeight returns the seeds [0, n) ordered by descending
// weight(seed), ties broken by ascending seed, for ForSeedsScheduled.
// Longest-processing-time-first is the classic greedy for makespan: with
// per-seed costs as skewed as frequent-event subtrees are, dispatching the
// heavy seeds first keeps the pool's tail short.
func ScheduleByWeight(n int, weight func(seed int) int64) []int {
	schedule := make([]int, n)
	for i := range schedule {
		schedule[i] = i
	}
	sort.SliceStable(schedule, func(a, b int) bool {
		wa, wb := weight(schedule[a]), weight(schedule[b])
		if wa != wb {
			return wa > wb
		}
		return schedule[a] < schedule[b]
	})
	return schedule
}

// Arena is a free list of []T backing arrays. Search nodes obtain their
// scratch and projection storage from an arena and return it once the
// subtree below them is fully explored, so allocation cost is proportional
// to the maximum live search path instead of the number of nodes explored.
// The zero value is ready to use. An Arena is not safe for concurrent use;
// give each worker its own.
type Arena[T any] struct {
	free [][]T
}

// Get returns a zero-length slice, reusing a recycled backing array when one
// is available (nil otherwise, which append handles transparently).
func (a *Arena[T]) Get() []T {
	if n := len(a.free); n > 0 {
		s := a.free[n-1]
		a.free = a.free[:n-1]
		return s
	}
	return nil
}

// GetN returns a slice of length n, reusing a recycled backing array when
// its capacity suffices. A popped array that is too small is dropped, which
// lets the arena's buffers grow toward the workload's node size.
func (a *Arena[T]) GetN(n int) []T {
	if k := len(a.free); k > 0 {
		s := a.free[k-1]
		a.free = a.free[:k-1]
		if cap(s) >= n {
			return s[:n]
		}
	}
	return make([]T, n)
}

// Put returns a backing array to the free list. Zero-capacity slices (nil
// included) are ignored, so callers can Put unconditionally.
func (a *Arena[T]) Put(s []T) {
	if cap(s) == 0 {
		return
	}
	a.free = append(a.free, s[:0])
}

// StampSet is an epoch-stamped membership set over event ids: Begin
// invalidates every member in O(1) by bumping the epoch, so no clearing pass
// ever runs between search nodes. Epoch wraparound is handled by
// seqdb.BumpEpoch (stamps are cleared once every 2^32 - 1 generations).
type StampSet struct {
	stamp []uint32
	epoch uint32
}

// NewStampSet returns a set over an event-id space of size numEvents.
func NewStampSet(numEvents int) StampSet {
	return StampSet{stamp: make([]uint32, numEvents)}
}

// Begin empties the set.
func (s *StampSet) Begin() {
	seqdb.BumpEpoch(&s.epoch, s.stamp)
}

// Add marks e as a member.
func (s *StampSet) Add(e seqdb.EventID) {
	s.stamp[e] = s.epoch
}

// TestAndSet adds e and reports whether it was newly added.
func (s *StampSet) TestAndSet(e seqdb.EventID) bool {
	if s.stamp[e] == s.epoch {
		return false
	}
	s.stamp[e] = s.epoch
	return true
}

// Contains reports whether e was added since the last Begin.
func (s *StampSet) Contains(e seqdb.EventID) bool {
	return s.stamp[e] == s.epoch
}
