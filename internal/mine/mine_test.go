package mine

import (
	"math/rand"
	"testing"

	"specmine/internal/seqdb"
)

func TestForSeedsDeterministicMerge(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		out := ForSeeds(20, workers, func() int { return 0 }, func(_ int, seed int) int {
			return seed * seed
		})
		if len(out) != 20 {
			t.Fatalf("workers=%d: %d outputs", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d]=%d", workers, i, v)
			}
		}
	}
}

func TestScheduleByWeight(t *testing.T) {
	weights := []int64{5, 9, 9, 1, 7}
	got := ScheduleByWeight(len(weights), func(seed int) int64 { return weights[seed] })
	want := []int{1, 2, 4, 0, 3} // descending weight, ties (9,9) by ascending seed
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("schedule %v want %v", got, want)
		}
	}
}

// TestForSeedsScheduledDeterministicMerge: outputs land in seed slots
// regardless of the execution schedule, for any worker count.
func TestForSeedsScheduledDeterministicMerge(t *testing.T) {
	schedules := [][]int{
		{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19},
		{19, 18, 17, 16, 15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0},
		ScheduleByWeight(20, func(seed int) int64 { return int64(seed % 7) }),
	}
	for _, schedule := range schedules {
		for _, workers := range []int{1, 2, 4, 8} {
			out := ForSeedsScheduled(20, workers, schedule, func() int { return 0 }, func(_ int, seed int) int {
				return seed * seed
			})
			for i, v := range out {
				if v != i*i {
					t.Fatalf("workers=%d schedule=%v: out[%d]=%d", workers, schedule, i, v)
				}
			}
		}
	}
}

func TestArenaRecycles(t *testing.T) {
	var a Arena[int]
	s := a.GetN(8)
	if len(s) != 8 {
		t.Fatalf("GetN(8) len=%d", len(s))
	}
	s[0] = 42
	a.Put(s)
	r := a.GetN(4)
	if cap(r) < 8 {
		t.Errorf("recycled capacity %d, want >= 8", cap(r))
	}
	// Too-large requests fall back to allocation.
	big := a.GetN(16)
	if len(big) != 16 {
		t.Fatalf("GetN(16) len=%d", len(big))
	}
	a.Put(nil) // must be a no-op
	if g := a.Get(); g != nil && len(g) != 0 {
		t.Errorf("Get returned non-empty slice")
	}
}

func TestStampSet(t *testing.T) {
	s := NewStampSet(4)
	s.Begin()
	if s.Contains(2) {
		t.Errorf("fresh set contains 2")
	}
	if !s.TestAndSet(2) {
		t.Errorf("first TestAndSet(2) = false")
	}
	if s.TestAndSet(2) {
		t.Errorf("second TestAndSet(2) = true")
	}
	s.Add(1)
	if !s.Contains(1) || !s.Contains(2) || s.Contains(0) {
		t.Errorf("membership wrong: %v %v %v", s.Contains(1), s.Contains(2), s.Contains(0))
	}
	s.Begin()
	if s.Contains(1) || s.Contains(2) {
		t.Errorf("Begin did not clear the set")
	}
}

// bruteExtensions reproduces the counting semantics directly: for every
// event, the projection entries whose suffix contains it, positioned at the
// first occurrence.
func bruteExtensions(seqs []seqdb.Sequence, proj []Proj) map[seqdb.EventID][]Proj {
	out := make(map[seqdb.EventID][]Proj)
	for _, pr := range proj {
		s := seqs[pr.Seq]
		seen := make(map[seqdb.EventID]bool)
		for j := int(pr.Pos) + 1; j < len(s); j++ {
			if seen[s[j]] {
				continue
			}
			seen[s[j]] = true
			out[s[j]] = append(out[s[j]], Proj{Seq: pr.Seq, Pos: int32(j)})
		}
	}
	return out
}

func TestExtenderAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 50; iter++ {
		numSeqs := 1 + rng.Intn(5)
		alphabet := 2 + rng.Intn(4)
		seqs := make([]seqdb.Sequence, numSeqs)
		for i := range seqs {
			n := 1 + rng.Intn(12)
			s := make(seqdb.Sequence, n)
			for j := range s {
				s[j] = seqdb.EventID(rng.Intn(alphabet))
			}
			seqs[i] = s
		}
		idx := seqdb.BuildPositionIndex(seqs, alphabet)
		x := NewExtender(seqs, idx)

		// Random starting projection: a subset of sequences at random positions.
		var proj []Proj
		var tags []int32
		for si := range seqs {
			if rng.Intn(3) == 0 {
				continue
			}
			proj = append(proj, Proj{Seq: int32(si), Pos: int32(rng.Intn(len(seqs[si])+1)) - 1})
			tags = append(tags, int32(si*100))
		}
		want := bruteExtensions(seqs, proj)

		min := int32(1 + rng.Intn(2))
		es := x.Extensions(proj, tags, min)
		if len(es.Exts) != len(want) {
			t.Fatalf("iter %d: %d extensions, want %d", iter, len(es.Exts), len(want))
		}
		prev := seqdb.EventID(-1)
		for _, e := range es.Exts {
			if e.Event <= prev {
				t.Fatalf("iter %d: extensions not sorted by event", iter)
			}
			prev = e.Event
			w := want[e.Event]
			if int(e.Count) != len(w) {
				t.Fatalf("iter %d: event %d count %d want %d", iter, e.Event, e.Count, len(w))
			}
			if e.Count >= min {
				if len(e.Proj) != len(w) {
					t.Fatalf("iter %d: event %d materialised %d entries want %d", iter, e.Event, len(e.Proj), len(w))
				}
				for k := range w {
					if e.Proj[k] != w[k] {
						t.Fatalf("iter %d: event %d entry %d = %+v want %+v", iter, e.Event, k, e.Proj[k], w[k])
					}
					// The tag of the source entry must ride along.
					srcSeq := w[k].Seq
					if e.Tags[k] != srcSeq*100 {
						t.Fatalf("iter %d: event %d tag %d want %d", iter, e.Event, e.Tags[k], srcSeq*100)
					}
				}
			} else if e.Proj != nil {
				t.Fatalf("iter %d: event %d below threshold but materialised", iter, e.Event)
			}
		}
		x.Release(es)
	}
}

func TestSeedProj(t *testing.T) {
	seqs := []seqdb.Sequence{
		{0, 1, 0, 2},
		{2, 2, 1},
		{1, 0},
	}
	idx := seqdb.BuildPositionIndex(seqs, 3)
	x := NewExtender(seqs, idx)
	proj := x.SeedProj(2)
	want := []Proj{{Seq: 0, Pos: 3}, {Seq: 1, Pos: 0}}
	if len(proj) != len(want) {
		t.Fatalf("SeedProj(2): %+v want %+v", proj, want)
	}
	for i := range want {
		if proj[i] != want[i] {
			t.Fatalf("SeedProj(2)[%d] = %+v want %+v", i, proj[i], want[i])
		}
	}
	x.ReleaseProj(proj)
}
