package generators

import (
	"testing"

	"specmine/internal/iterpattern"
	"specmine/internal/qre"
	"specmine/internal/seqdb"
)

func mkdb(traces ...[]string) *seqdb.Database {
	db := seqdb.NewDatabase()
	for _, t := range traces {
		db.AppendNames(t...)
	}
	return db
}

func TestMineGeneratorsSimple(t *testing.T) {
	// <a> always extends to <a, b, c> with the same instances: <a> is the
	// generator of that equivalence class, <a, b, c> its closed counterpart.
	db := mkdb(
		[]string{"a", "b", "c"},
		[]string{"a", "b", "c", "x"},
		[]string{"y", "a", "b", "c"},
	)
	gens, err := Mine(db, 3)
	if err != nil {
		t.Fatal(err)
	}
	keys := make(map[string]int)
	for _, g := range gens {
		keys[g.Pattern.String(db.Dict)] = g.Support
	}
	if keys["<a>"] != 3 || keys["<b>"] != 3 || keys["<c>"] != 3 {
		t.Errorf("single events should be generators: %v", keys)
	}
	if _, ok := keys["<a, b, c>"]; ok {
		t.Errorf("<a, b, c> is not minimal in its class: %v", keys)
	}
	if _, ok := keys["<a, b>"]; ok {
		t.Errorf("<a, b> has the same instances as <a>: not a generator: %v", keys)
	}
}

func TestGeneratorsAreFrequentAndMinimal(t *testing.T) {
	db := mkdb(
		[]string{"open", "read", "close", "open", "write", "close"},
		[]string{"open", "read", "close"},
		[]string{"open", "close", "idle"},
	)
	minSup := 3
	gens, err := Mine(db, minSup)
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) == 0 {
		t.Fatal("no generators found")
	}
	for _, g := range gens {
		if got := qre.CountInstances(db, g.Pattern); got != g.Support || got < minSup {
			t.Errorf("generator %s support mismatch: %d vs %d", g.Pattern.String(db.Dict), g.Support, got)
		}
		// Minimality: every single-event deletion either changes support or
		// breaks correspondence.
		if g.Pattern.Len() <= 1 {
			continue
		}
		full := qre.FindAllInstances(db, g.Pattern)
		for i := 0; i < g.Pattern.Len(); i++ {
			sub := g.Pattern.RemoveAt(i)
			if len(sub) == 0 {
				continue
			}
			subInsts := qre.FindAllInstances(db, sub)
			if len(subInsts) == g.Support && qre.CorrespondsTo(subInsts, full) {
				t.Errorf("generator %s is not minimal: deleting position %d preserves the class", g.Pattern.String(db.Dict), i)
			}
		}
	}
}

func TestCompose(t *testing.T) {
	db := mkdb(
		[]string{"begin", "work", "commit"},
		[]string{"begin", "work", "commit"},
		[]string{"begin", "abort"},
	)
	gens, err := Mine(db, 2)
	if err != nil {
		t.Fatal(err)
	}
	closed, err := iterpattern.MineClosed(db, iterpattern.Options{MinInstanceSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	suggestions := Compose(db, gens, closed.Patterns, 0.5)
	if len(suggestions) == 0 {
		t.Fatal("no suggested rules")
	}
	found := false
	for _, s := range suggestions {
		if s.Rule.Pre.String(db.Dict) == "<begin>" && s.Rule.Post.String(db.Dict) == "<work, commit>" {
			found = true
			if s.Rule.Confidence < 0.6 || s.Rule.Confidence > 0.7 {
				t.Errorf("begin -> work commit confidence %v, want 2/3", s.Rule.Confidence)
			}
		}
		if s.Rule.Confidence < 0.5 {
			t.Errorf("suggestion below confidence floor: %+v", s.Rule)
		}
	}
	if !found {
		t.Errorf("expected suggestion begin -> <work, commit>; got %d suggestions", len(suggestions))
	}
	// A high confidence floor removes the suggestions.
	none := Compose(db, gens, closed.Patterns, 0.99)
	for _, s := range none {
		if s.Rule.Confidence < 0.99 {
			t.Errorf("confidence floor not applied: %+v", s.Rule)
		}
	}
}

func TestIsPrefixOf(t *testing.T) {
	d := seqdb.NewDictionary()
	p := seqdb.ParsePattern(d, "a b")
	q := seqdb.ParsePattern(d, "a b c")
	if !isPrefixOf(p, q) || isPrefixOf(q, p) {
		t.Errorf("isPrefixOf wrong")
	}
	if !isPrefixOf(nil, q) {
		t.Errorf("empty pattern is a prefix of everything")
	}
	if isPrefixOf(seqdb.ParsePattern(d, "b"), q) {
		t.Errorf("<b> is not a prefix of <a, b, c>")
	}
}
