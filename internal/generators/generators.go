// Package generators mines generators of iterative patterns: the minimal
// members of the support-equivalence classes of frequent patterns. The paper
// lists this as future work (Section 8): "Generators are minimal members of
// equivalence classes of frequent patterns. Merging generators with closed
// patterns potentially form interesting rules with minimal pre-conditions and
// maximal post-conditions." This package implements both halves: generator
// extraction, and the composition of generator premises with closed-pattern
// consequents into suggested rules.
package generators

import (
	"sort"

	"specmine/internal/iterpattern"
	"specmine/internal/qre"
	"specmine/internal/rules"
	"specmine/internal/seqdb"
)

// Generator is a frequent iterative pattern with no proper sub-pattern of the
// same support whose instances correspond (the dual of Definition 4.2's
// closed pattern).
type Generator struct {
	Pattern seqdb.Pattern
	Support int
}

// Mine returns the generators among the frequent iterative patterns of db at
// the given minimum instance support. It mines the full frequent set first
// (generators cannot be derived from the closed set alone) and keeps the
// patterns for which no single-event deletion preserves both the support and
// the instance correspondence.
func Mine(db *seqdb.Database, minSupport int) ([]Generator, error) {
	full, err := iterpattern.MineFull(db, iterpattern.Options{MinInstanceSupport: minSupport, IncludeInstances: true})
	if err != nil {
		return nil, err
	}
	var out []Generator
	for _, cand := range full.Patterns {
		if isGenerator(db, cand) {
			out = append(out, Generator{Pattern: cand.Pattern, Support: cand.Support})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		return seqdb.ComparePatterns(out[i].Pattern, out[j].Pattern) < 0
	})
	return out, nil
}

// isGenerator checks whether removing any single event from the pattern
// changes its support or breaks the instance correspondence. Single-event
// deletions suffice for the minimality check because correspondence between a
// pattern and a sub-pattern obtained by deleting several events factors
// through the intermediate single deletions whenever supports stay equal.
func isGenerator(db *seqdb.Database, cand iterpattern.MinedPattern) bool {
	if cand.Pattern.Len() <= 1 {
		return true
	}
	for i := 0; i < cand.Pattern.Len(); i++ {
		sub := cand.Pattern.RemoveAt(i)
		if len(sub) == 0 {
			continue
		}
		subInsts := qre.FindAllInstances(db, sub)
		if len(subInsts) != cand.Support {
			continue
		}
		if qre.CorrespondsTo(subInsts, cand.Instances) {
			return false
		}
	}
	return true
}

// SuggestedRule is a rule proposal formed by pairing a generator (minimal
// premise) with the remainder of a closed pattern that extends it (maximal
// consequent), scored with the recurrent-rule statistics.
type SuggestedRule struct {
	Rule rules.Rule
	// FromGenerator and FromClosed identify the patterns the suggestion was
	// derived from.
	FromGenerator seqdb.Pattern
	FromClosed    seqdb.Pattern
}

// Compose pairs generators with closed patterns: whenever a generator is a
// prefix of a closed pattern, the rule generator -> remainder is proposed and
// scored against the database. Proposals below minConfidence are dropped.
func Compose(db *seqdb.Database, gens []Generator, closed []iterpattern.MinedPattern, minConfidence float64) []SuggestedRule {
	var out []SuggestedRule
	for _, g := range gens {
		for _, c := range closed {
			if c.Pattern.Len() <= g.Pattern.Len() {
				continue
			}
			if !isPrefixOf(g.Pattern, c.Pattern) {
				continue
			}
			post := c.Pattern[g.Pattern.Len():].Clone()
			r := rules.EvaluateRule(db, g.Pattern, post)
			if r.Confidence < minConfidence {
				continue
			}
			out = append(out, SuggestedRule{Rule: r, FromGenerator: g.Pattern, FromClosed: c.Pattern})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rule.Confidence != out[j].Rule.Confidence {
			return out[i].Rule.Confidence > out[j].Rule.Confidence
		}
		return len(out[i].Rule.Post) > len(out[j].Rule.Post)
	})
	return out
}

func isPrefixOf(p, q seqdb.Pattern) bool {
	if len(p) > len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}
