package tracesim

import (
	"fmt"
	"math/rand"
)

// Streaming replay of a workload: the same traces Generate produces, but
// delivered the way a live instrumented system would deliver them — as an
// interleaved stream of event chunks across many concurrently open traces,
// each eventually terminated. This is the workload generator for the stream
// ingester and the online conformance benchmarks.

// StreamChunk is one delivery from a live trace: a run of consecutive events
// belonging to TraceID. Final marks the trace's last chunk (a terminated
// trace); a Final chunk may carry zero events when the trace already
// delivered everything.
type StreamChunk struct {
	TraceID string
	Events  []string
	Final   bool
}

// TraceID returns the stable identifier of the i-th trace of a streamed
// workload, matching sequence i of the equivalent Generate call.
func TraceID(i int) string { return fmt.Sprintf("trace-%06d", i) }

// Stream generates exactly the traces of Generate(numTraces, seed) and
// delivers them as an interleaved chunk stream: up to concurrency traces are
// open at any moment, and each step appends a small chunk to one of them,
// chosen pseudo-randomly (deterministically for fixed arguments). fn is
// called once per chunk; a non-nil error aborts the stream and is returned.
func (w Workload) Stream(numTraces int, seed int64, concurrency int, fn func(StreamChunk) error) error {
	db, err := w.Generate(numTraces, seed)
	if err != nil {
		return err
	}
	if concurrency < 1 {
		concurrency = 1
	}
	// An independent generator drives the interleaving so the trace contents
	// stay byte-identical to Generate regardless of concurrency.
	rng := rand.New(rand.NewSource(seed*31 + int64(concurrency)))

	type openTrace struct {
		id  int
		pos int
	}
	var active []openTrace
	next := 0
	for len(active) > 0 || next < numTraces {
		for len(active) < concurrency && next < numTraces {
			active = append(active, openTrace{id: next})
			next++
		}
		k := rng.Intn(len(active))
		o := &active[k]
		s := db.Sequences[o.id]

		n := 1 + rng.Intn(4)
		if rest := len(s) - o.pos; n > rest {
			n = rest
		}
		events := make([]string, n)
		for i := 0; i < n; i++ {
			events[i] = db.Dict.Name(s[o.pos+i])
		}
		o.pos += n
		final := o.pos >= len(s)
		if err := fn(StreamChunk{TraceID: TraceID(o.id), Events: events, Final: final}); err != nil {
			return err
		}
		if final {
			active[k] = active[len(active)-1]
			active = active[:len(active)-1]
		}
	}
	return nil
}
