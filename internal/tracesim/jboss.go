package tracesim

// This file defines the predefined workloads that stand in for the paper's
// JBoss Application Server case studies (Section 7): the transaction
// component whose longest mined iterative pattern is Figure 4, the security
// component whose flagship mined recurrent rule is Figure 5, and a small
// resource-locking component used by the quickstart and verification
// examples.

// transactionScenario is the complete transaction lifecycle of Figure 4,
// read top to bottom, left to right: connection set-up, transaction manager
// set-up, transaction set-up, transaction commit and transaction dispose.
var transactionScenario = []string{
	// Connection Set Up
	"TransactionManagerLocator.getInstance",
	"TransactionManagerLocator.locate",
	"TransactionManagerLocator.tryJNDI",
	"TransactionManagerLocator.usePrivateAPI",
	// Tx Manager Set Up
	"TxManager.begin",
	"XidFactory.newXid",
	"XidFactory.getNextId",
	"XidImpl.getTrulyGlobalId",
	// Transaction Set Up
	"TransactionImpl.associateCurrentThread",
	"TransactionImpl.getLocalId",
	"XidImpl.getLocalId",
	"LocalId.hashCode",
	"TransactionImpl.equals",
	"TransactionImpl.getLocalIdValue",
	"XidImpl.getLocalIdValue",
	"TransactionImpl.getLocalIdValue",
	"XidImpl.getLocalIdValue",
	// Transaction Commit
	"TxManager.commit",
	"TransactionImpl.commit",
	"TransactionImpl.beforePrepare",
	"TransactionImpl.checkIntegrity",
	"TransactionImpl.checkBeforeStatus",
	"TransactionImpl.endResources",
	"TransactionImpl.completeTransaction",
	"TransactionImpl.cancelTimeout",
	"TransactionImpl.doAfterCompletion",
	"TransactionImpl.instanceDone",
	// Transaction Dispose
	"TxManager.releaseTransactionImpl",
	"TransactionImpl.getLocalId",
	"XidImpl.getLocalId",
	"LocalId.hashCode",
	"LocalId.equals",
}

// transactionRollbackScenario is an alternative lifecycle in which the
// transaction is rolled back instead of committed (the JTA protocol of
// Section 1: <TxManager.begin, TxManager.rollback>).
var transactionRollbackScenario = []string{
	"TransactionManagerLocator.getInstance",
	"TransactionManagerLocator.locate",
	"TransactionManagerLocator.tryJNDI",
	"TransactionManagerLocator.usePrivateAPI",
	"TxManager.begin",
	"XidFactory.newXid",
	"XidFactory.getNextId",
	"XidImpl.getTrulyGlobalId",
	"TransactionImpl.associateCurrentThread",
	"TxManager.rollback",
	"TransactionImpl.rollbackResources",
	"TransactionImpl.completeTransaction",
	"TransactionImpl.cancelTimeout",
	"TransactionImpl.instanceDone",
	"TxManager.releaseTransactionImpl",
}

// transactionNoise are invocations from other parts of the transaction
// component that interleave with the lifecycle scenarios.
var transactionNoise = []string{
	"TxUtils.isActive",
	"TxUtils.getStatusAsString",
	"TransactionPropagationContextUtil.getTPCFactory",
	"TransactionLocal.get",
	"TransactionLocal.set",
	"TxManager.getInstance",
	"TxManager.getTransaction",
	"CachedConnectionManager.checkTransactionActive",
}

// TransactionComponent returns the workload that stands in for the JBoss
// transaction component traces of Figure 4.
func TransactionComponent() Workload {
	return Workload{
		Name: "jboss-transaction",
		Scenarios: []Scenario{
			{Name: "commit-lifecycle", Events: transactionScenario, Weight: 4},
			{Name: "rollback-lifecycle", Events: transactionRollbackScenario, Weight: 1},
		},
		NoiseEvents:          transactionNoise,
		NoiseRate:            0.15,
		MinScenariosPerTrace: 1,
		MaxScenariosPerTrace: 4,
		ViolationRate:        0,
	}
}

// TransactionPattern returns the Figure 4 pattern: the longest iterative
// pattern the paper mines from the transaction component.
func TransactionPattern() []string {
	out := make([]string, len(transactionScenario))
	copy(out, transactionScenario)
	return out
}

// securityPremise and securityConsequent spell out the Figure 5 rule: JAAS
// authentication for EJB within JBoss AS. When the authentication scenario
// starts, configuration information is checked (the premise); this is
// followed by the actual authentication events, the binding of principal
// information to the subject, and the use of the subject's principal and
// credential information (the consequent).
var securityPremise = []string{
	"XmlLoginConfigImpl.getConfigEntry",
	"AuthenticationInfo.getName",
}

var securityConsequent = []string{
	"ClientLoginModule.initialize",
	"ClientLoginModule.login",
	"ClientLoginModule.commit",
	"SecurityAssociationActions.setPrincipalInfo",
	"SetPrincipalInfoAction.run",
	"SecurityAssociationActions.pushSubjectContext",
	"SubjectThreadLocalStack.push",
	"SimplePrincipal.toString",
	"SecurityAssociation.getPrincipal",
	"SecurityAssociation.getCredential",
	"SecurityAssociation.getPrincipal",
	"SecurityAssociation.getCredential",
}

// securityNoise are invocations from other parts of the security component.
var securityNoise = []string{
	"SecurityDomainContext.getAuthenticationManager",
	"JaasSecurityManager.isValid",
	"JaasSecurityManagerService.getSecurityManagement",
	"SubjectActions.getSubjectInfo",
	"SecurityRolesAssociation.getSecurityRoles",
	"AnybodyPrincipal.compareTo",
	"NobodyPrincipal.compareTo",
}

// configProbeScenario checks login configuration without performing an
// authentication. Its presence keeps the premise of Figure 5 at two events:
// seeing the configuration entry alone does not predict the authentication
// consequent, whereas seeing it together with AuthenticationInfo.getName
// does.
var configProbeScenario = []string{
	"XmlLoginConfigImpl.getConfigEntry",
	"XmlLoginConfigImpl.getAppConfigurationEntry",
	"SecurityConfiguration.getApplicationPolicy",
}

// logoutScenario closes an authenticated session.
var logoutScenario = []string{
	"ClientLoginModule.logout",
	"SecurityAssociationActions.popSubjectContext",
	"SubjectThreadLocalStack.pop",
	"SecurityAssociationActions.clear",
}

// SecurityComponent returns the workload that stands in for the JBoss
// security component traces of Figure 5.
func SecurityComponent() Workload {
	auth := append(append([]string{}, securityPremise...), securityConsequent...)
	return Workload{
		Name: "jboss-security",
		Scenarios: []Scenario{
			{Name: "jaas-authentication", Events: auth, Weight: 3},
			{Name: "config-probe", Events: configProbeScenario, Weight: 2},
			{Name: "logout", Events: logoutScenario, Weight: 1},
		},
		NoiseEvents:          securityNoise,
		NoiseRate:            0.2,
		MinScenariosPerTrace: 1,
		MaxScenariosPerTrace: 5,
		ViolationRate:        0,
	}
}

// SecurityRulePremise returns the premise of the Figure 5 rule.
func SecurityRulePremise() []string {
	out := make([]string, len(securityPremise))
	copy(out, securityPremise)
	return out
}

// SecurityRuleConsequent returns the consequent of the Figure 5 rule.
func SecurityRuleConsequent() []string {
	out := make([]string, len(securityConsequent))
	copy(out, securityConsequent)
	return out
}

// LockingComponent returns a small resource-locking workload used by the
// quickstart and verification examples: the classic "whenever a lock is
// acquired, eventually it is released" behaviour (Section 1), with a
// configurable fraction of violating executions.
func LockingComponent() Workload {
	return Workload{
		Name: "resource-locking",
		Scenarios: []Scenario{
			{Name: "guarded-read", Events: []string{"Mutex.lock", "Resource.read", "Mutex.unlock"}, Weight: 3},
			{Name: "guarded-write", Events: []string{"Mutex.lock", "Resource.write", "Resource.flush", "Mutex.unlock"}, Weight: 2},
			{Name: "idle-poll", Events: []string{"Monitor.poll", "Monitor.report"}, Weight: 1},
		},
		NoiseEvents:          []string{"Logger.debug", "Metrics.tick", "Cache.touch"},
		NoiseRate:            0.25,
		MinScenariosPerTrace: 2,
		MaxScenariosPerTrace: 6,
		ViolationRate:        0.05,
	}
}
