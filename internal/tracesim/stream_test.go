package tracesim

import (
	"strings"
	"testing"
)

// TestStreamReassemblesToGenerate verifies the streaming contract: the
// chunks of each trace, concatenated in delivery order, are exactly the
// trace Generate produces, for any concurrency level.
func TestStreamReassemblesToGenerate(t *testing.T) {
	for name, w := range Workloads() {
		const traces, seed = 25, 13
		want := w.MustGenerate(traces, seed)
		for _, concurrency := range []int{1, 4, 16} {
			rebuilt := make(map[string][]string)
			finals := make(map[string]int)
			chunks := 0
			err := w.Stream(traces, seed, concurrency, func(c StreamChunk) error {
				chunks++
				if finals[c.TraceID] > 0 {
					t.Fatalf("%s: chunk after final for %s", name, c.TraceID)
				}
				rebuilt[c.TraceID] = append(rebuilt[c.TraceID], c.Events...)
				if c.Final {
					finals[c.TraceID]++
				}
				return nil
			})
			if err != nil {
				t.Fatalf("%s: Stream: %v", name, err)
			}
			if len(rebuilt) != traces || len(finals) != traces {
				t.Fatalf("%s conc=%d: %d traces (%d finals) want %d", name, concurrency, len(rebuilt), len(finals), traces)
			}
			if chunks <= traces && concurrency > 1 {
				t.Fatalf("%s conc=%d: only %d chunks for %d traces — not actually chunked", name, concurrency, chunks, traces)
			}
			for i, s := range want.Sequences {
				got := rebuilt[TraceID(i)]
				if len(got) != len(s) {
					t.Fatalf("%s conc=%d trace %d: %d events want %d", name, concurrency, i, len(got), len(s))
				}
				for j, ev := range s {
					if got[j] != want.Dict.Name(ev) {
						t.Fatalf("%s conc=%d trace %d: event %d is %q want %q",
							name, concurrency, i, j, got[j], want.Dict.Name(ev))
					}
				}
			}
		}
	}
}

// TestStreamInterleavesTraces checks that with concurrency > 1 chunks of
// different traces actually interleave (the property the stream ingester's
// open-trace buffering exists for).
func TestStreamInterleavesTraces(t *testing.T) {
	w := Workloads()["transaction"]
	var order []string
	err := w.Stream(10, 7, 4, func(c StreamChunk) error {
		order = append(order, c.TraceID)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	switches := 0
	for i := 1; i < len(order); i++ {
		if order[i] != order[i-1] {
			switches++
		}
	}
	if switches < 10 {
		t.Fatalf("only %d trace switches across %d chunks: %s", switches, len(order), strings.Join(order[:min(20, len(order))], ","))
	}
}
