// Package tracesim simulates instrumented program traces in the style of the
// paper's JBoss Application Server case study (Section 7).
//
// The paper instruments components of JBoss AS with JBoss-AOP and collects
// method-invocation traces by running the distribution's test suite. That
// substrate is not reproducible offline, so this package provides the closest
// synthetic equivalent: a scenario-driven trace generator. A Workload bundles
// the behavioural scenarios of one component (each scenario being the series
// of method invocations a use case produces), background noise events from
// the rest of the component, a looping model (several scenario executions per
// test-case trace) and an aberration model (occasionally truncated scenario
// executions). Traces generated this way preserve the structural properties
// that make specification mining non-trivial: related events separated by
// arbitrary gaps, repetition within a trace and across traces, and noise.
//
// Two predefined workloads reproduce the case-study components:
// TransactionComponent (Figure 4) and SecurityComponent (Figure 5).
package tracesim

import (
	"errors"
	"fmt"
	"math/rand"

	"specmine/internal/seqdb"
)

// Scenario is one behavioural use case: the exact series of method
// invocations it emits, and its relative weight within the workload.
type Scenario struct {
	Name   string
	Events []string
	Weight float64
}

// Workload describes the trace-generation model for one instrumented
// component.
type Workload struct {
	// Name identifies the component (used by CLIs and reports).
	Name string
	// Scenarios are the use cases exercised by the simulated test suite.
	Scenarios []Scenario
	// NoiseEvents are method invocations from unrelated parts of the
	// component, interleaved between scenario events.
	NoiseEvents []string
	// NoiseRate is the probability of emitting a noise event before each
	// scenario event.
	NoiseRate float64
	// MinScenariosPerTrace and MaxScenariosPerTrace bound how many scenario
	// executions one test-case trace contains (looping behaviour).
	MinScenariosPerTrace int
	MaxScenariosPerTrace int
	// ViolationRate is the probability that a scenario execution is truncated
	// at a random point, simulating aberrant runs (failing test cases,
	// exceptions). Violating executions are what the verification tooling is
	// meant to flag.
	ViolationRate float64
}

// Validate reports configuration errors.
func (w Workload) Validate() error {
	if len(w.Scenarios) == 0 {
		return errors.New("tracesim: workload needs at least one scenario")
	}
	for _, sc := range w.Scenarios {
		if len(sc.Events) == 0 {
			return fmt.Errorf("tracesim: scenario %q has no events", sc.Name)
		}
		if sc.Weight < 0 {
			return fmt.Errorf("tracesim: scenario %q has negative weight", sc.Name)
		}
	}
	if w.NoiseRate < 0 || w.NoiseRate >= 1 {
		return errors.New("tracesim: NoiseRate must be in [0, 1)")
	}
	if w.ViolationRate < 0 || w.ViolationRate > 1 {
		return errors.New("tracesim: ViolationRate must be in [0, 1]")
	}
	if w.MinScenariosPerTrace < 1 || w.MaxScenariosPerTrace < w.MinScenariosPerTrace {
		return errors.New("tracesim: scenario-per-trace bounds must satisfy 1 <= min <= max")
	}
	return nil
}

// Generate produces numTraces traces under the workload model. The same
// arguments always produce the same database.
func (w Workload) Generate(numTraces int, seed int64) (*seqdb.Database, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if numTraces < 1 {
		return nil, errors.New("tracesim: numTraces must be >= 1")
	}
	rng := rand.New(rand.NewSource(seed))
	db := seqdb.NewDatabase()

	totalWeight := 0.0
	for _, sc := range w.Scenarios {
		weight := sc.Weight
		if weight == 0 {
			weight = 1
		}
		totalWeight += weight
	}

	for i := 0; i < numTraces; i++ {
		repetitions := w.MinScenariosPerTrace
		if w.MaxScenariosPerTrace > w.MinScenariosPerTrace {
			repetitions += rng.Intn(w.MaxScenariosPerTrace - w.MinScenariosPerTrace + 1)
		}
		var names []string
		for r := 0; r < repetitions; r++ {
			sc := w.pickScenario(rng, totalWeight)
			limit := len(sc.Events)
			if w.ViolationRate > 0 && rng.Float64() < w.ViolationRate && limit > 1 {
				limit = 1 + rng.Intn(limit-1)
			}
			for _, ev := range sc.Events[:limit] {
				if len(w.NoiseEvents) > 0 && rng.Float64() < w.NoiseRate {
					names = append(names, w.NoiseEvents[rng.Intn(len(w.NoiseEvents))])
				}
				names = append(names, ev)
			}
			if len(w.NoiseEvents) > 0 && rng.Float64() < w.NoiseRate {
				names = append(names, w.NoiseEvents[rng.Intn(len(w.NoiseEvents))])
			}
		}
		db.AppendNames(names...)
	}
	return db, nil
}

// MustGenerate is Generate for static workloads; it panics on error.
func (w Workload) MustGenerate(numTraces int, seed int64) *seqdb.Database {
	db, err := w.Generate(numTraces, seed)
	if err != nil {
		panic(err)
	}
	return db
}

func (w Workload) pickScenario(rng *rand.Rand, totalWeight float64) Scenario {
	f := rng.Float64() * totalWeight
	acc := 0.0
	for _, sc := range w.Scenarios {
		weight := sc.Weight
		if weight == 0 {
			weight = 1
		}
		acc += weight
		if f <= acc {
			return sc
		}
	}
	return w.Scenarios[len(w.Scenarios)-1]
}

// Workloads returns the predefined component workloads by name.
func Workloads() map[string]Workload {
	return map[string]Workload{
		"transaction": TransactionComponent(),
		"security":    SecurityComponent(),
		"locking":     LockingComponent(),
	}
}
