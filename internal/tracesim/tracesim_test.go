package tracesim

import (
	"strings"
	"testing"

	"specmine/internal/rules"
	"specmine/internal/seqdb"
)

func TestWorkloadValidate(t *testing.T) {
	ok := Workload{
		Scenarios:            []Scenario{{Name: "s", Events: []string{"a"}}},
		MinScenariosPerTrace: 1,
		MaxScenariosPerTrace: 2,
	}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid workload rejected: %v", err)
	}
	bad := []Workload{
		{},
		{Scenarios: []Scenario{{Name: "s"}}, MinScenariosPerTrace: 1, MaxScenariosPerTrace: 1},
		{Scenarios: []Scenario{{Name: "s", Events: []string{"a"}, Weight: -1}}, MinScenariosPerTrace: 1, MaxScenariosPerTrace: 1},
		{Scenarios: []Scenario{{Name: "s", Events: []string{"a"}}}, MinScenariosPerTrace: 0, MaxScenariosPerTrace: 1},
		{Scenarios: []Scenario{{Name: "s", Events: []string{"a"}}}, MinScenariosPerTrace: 2, MaxScenariosPerTrace: 1},
		{Scenarios: []Scenario{{Name: "s", Events: []string{"a"}}}, MinScenariosPerTrace: 1, MaxScenariosPerTrace: 1, NoiseRate: 1.5},
		{Scenarios: []Scenario{{Name: "s", Events: []string{"a"}}}, MinScenariosPerTrace: 1, MaxScenariosPerTrace: 1, ViolationRate: 2},
	}
	for i, w := range bad {
		if err := w.Validate(); err == nil {
			t.Errorf("case %d: invalid workload accepted", i)
		}
	}
	if _, err := ok.Generate(0, 1); err == nil {
		t.Errorf("zero traces accepted")
	}
	if _, err := (Workload{}).Generate(5, 1); err == nil {
		t.Errorf("invalid workload generated traces")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	w := LockingComponent()
	a := w.MustGenerate(20, 3)
	b := w.MustGenerate(20, 3)
	if a.NumEvents() != b.NumEvents() || a.NumSequences() != b.NumSequences() {
		t.Fatalf("same seed differs")
	}
	for i := range a.Sequences {
		for j := range a.Sequences[i] {
			if a.Dict.Name(a.Sequences[i][j]) != b.Dict.Name(b.Sequences[i][j]) {
				t.Fatalf("trace %d differs at %d", i, j)
			}
		}
	}
	// Ids, not just names: the durable store's segment files hold raw
	// EventIDs, so the assignment order itself must be reproducible — a
	// map-iteration-ordered intern anywhere in the generator would pass the
	// name comparison above and still invalidate every stored segment.
	ea, eb := a.Dict.Export(), b.Dict.Export()
	if len(ea) != len(eb) {
		t.Fatalf("dictionaries sized %d vs %d for the same seed", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("id %d interned as %q vs %q — id assignment is nondeterministic", i, ea[i], eb[i])
		}
	}
	c := w.MustGenerate(20, 4)
	if a.NumEvents() == c.NumEvents() && a.NumSequences() == c.NumSequences() {
		// Same shape is possible but identical content is not expected; check
		// at least one event differs.
		same := true
	outer:
		for i := range a.Sequences {
			if len(a.Sequences[i]) != len(c.Sequences[i]) {
				same = false
				break
			}
			for j := range a.Sequences[i] {
				if a.Dict.Name(a.Sequences[i][j]) != c.Dict.Name(c.Sequences[i][j]) {
					same = false
					break outer
				}
			}
		}
		if same {
			t.Errorf("different seeds produced identical traces")
		}
	}
}

func TestWorkloadsRegistry(t *testing.T) {
	ws := Workloads()
	for _, name := range []string{"transaction", "security", "locking"} {
		w, ok := ws[name]
		if !ok {
			t.Fatalf("workload %q missing", name)
		}
		if err := w.Validate(); err != nil {
			t.Errorf("workload %q invalid: %v", name, err)
		}
		db := w.MustGenerate(10, 1)
		if db.NumSequences() != 10 {
			t.Errorf("workload %q generated %d traces", name, db.NumSequences())
		}
		if err := db.Validate(); err != nil {
			t.Errorf("workload %q produced invalid database: %v", name, err)
		}
	}
}

func TestTransactionTracesEmbedFigure4Pattern(t *testing.T) {
	w := TransactionComponent()
	db := w.MustGenerate(60, 11)
	pattern := seqdb.ParsePattern(db.Dict, strings.Join(TransactionPattern(), " "))
	if pattern.Len() != 32 {
		t.Fatalf("Figure 4 pattern has %d events, want 32", pattern.Len())
	}
	// The commit lifecycle must occur as a subsequence in a large fraction of
	// traces (it carries weight 4 of 5).
	containing := 0
	for _, s := range db.Sequences {
		if s.ContainsSubsequence(pattern) {
			containing++
		}
	}
	if containing < db.NumSequences()/2 {
		t.Errorf("Figure 4 pattern embedded in only %d/%d traces", containing, db.NumSequences())
	}
}

func TestSecurityTracesSupportFigure5Rule(t *testing.T) {
	w := SecurityComponent()
	db := w.MustGenerate(80, 13)
	pre := seqdb.ParsePattern(db.Dict, strings.Join(SecurityRulePremise(), " "))
	post := seqdb.ParsePattern(db.Dict, strings.Join(SecurityRuleConsequent(), " "))
	if pre.Len() != 2 || post.Len() != 12 {
		t.Fatalf("Figure 5 rule shape wrong: pre=%d post=%d", pre.Len(), post.Len())
	}
	r := rules.EvaluateRule(db, pre, post)
	if r.SeqSupport < db.NumSequences()/3 {
		t.Errorf("premise occurs in only %d/%d traces", r.SeqSupport, db.NumSequences())
	}
	if r.Confidence < 0.95 {
		t.Errorf("rule confidence %.2f too low: traces do not follow the JAAS scenario", r.Confidence)
	}
	// The configuration probe scenario must make the one-event premise less
	// predictive than the two-event premise, as in the real component.
	oneEvent := rules.EvaluateRule(db, seqdb.ParsePattern(db.Dict, "XmlLoginConfigImpl.getConfigEntry"), pre[1:].Concat(post))
	if oneEvent.Confidence >= r.Confidence {
		t.Errorf("one-event premise should be less predictive: %.2f >= %.2f", oneEvent.Confidence, r.Confidence)
	}
}

func TestViolationRateProducesViolations(t *testing.T) {
	w := LockingComponent()
	w.ViolationRate = 0.5
	db := w.MustGenerate(60, 17)
	pre := seqdb.ParsePattern(db.Dict, "Mutex.lock")
	post := seqdb.ParsePattern(db.Dict, "Mutex.unlock")
	r := rules.EvaluateRule(db, pre, post)
	if r.Confidence >= 0.999 {
		t.Errorf("with 50%% violations the lock/unlock rule should not be perfect (conf=%v)", r.Confidence)
	}
	if r.Confidence < 0.3 {
		t.Errorf("confidence %v implausibly low", r.Confidence)
	}
}

func TestScenarioWeightsRespected(t *testing.T) {
	w := Workload{
		Name: "weighted",
		Scenarios: []Scenario{
			{Name: "hot", Events: []string{"hot.a"}, Weight: 9},
			{Name: "cold", Events: []string{"cold.a"}, Weight: 1},
		},
		MinScenariosPerTrace: 5,
		MaxScenariosPerTrace: 5,
	}
	db := w.MustGenerate(100, 23)
	counts := db.EventInstanceCount()
	hot := counts[db.Dict.Lookup("hot.a")]
	cold := counts[db.Dict.Lookup("cold.a")]
	if hot <= cold*3 {
		t.Errorf("weights not respected: hot=%d cold=%d", hot, cold)
	}
}

func TestMustGeneratePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("MustGenerate did not panic")
		}
	}()
	(Workload{}).MustGenerate(1, 1)
}
