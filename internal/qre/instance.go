package qre

import (
	"fmt"

	"specmine/internal/seqdb"
)

// Instance identifies one occurrence of an iterative pattern: the sequence it
// occurs in and the (inclusive, 0-based) start and end positions of the
// matching substring. An instance of P in the paper is the triple
// (seq_P, start_P, end_P); correspondence between instances (Definition 4.2)
// is containment of spans within the same sequence.
type Instance struct {
	Seq   int
	Start int
	End   int
}

// String renders the instance compactly for diagnostics.
func (in Instance) String() string {
	return fmt.Sprintf("(seq=%d,%d..%d)", in.Seq, in.Start, in.End)
}

// Span is the packed form of Instance used inside the mining hot paths: three
// int32s instead of three ints, so instance lists pack twice as densely into
// cache lines and arenas. Spans are exported to Instances only at result
// boundaries.
type Span struct {
	Seq, Start, End int32
}

// Export widens the span to the public Instance form.
func (sp Span) Export() Instance {
	return Instance{Seq: int(sp.Seq), Start: int(sp.Start), End: int(sp.End)}
}

// ExportSpans bulk-converts a span list to instances in a single allocation.
func ExportSpans(spans []Span) []Instance {
	out := make([]Instance, len(spans))
	for i, sp := range spans {
		out[i] = sp.Export()
	}
	return out
}

// Contains reports whether in's span contains other's span (same sequence,
// start <= other.Start and end >= other.End). This is exactly the
// correspondence relation of Definition 4.2 read from the super-pattern side.
func (in Instance) Contains(other Instance) bool {
	return in.Seq == other.Seq && in.Start <= other.Start && in.End >= other.End
}

// MatchAt attempts to match pattern p as an iterative-pattern instance
// starting exactly at position start of s. It returns the end position and
// true on success. The match is deterministic: from a given start there is at
// most one instance, because each gap must be free of the pattern's alphabet,
// so the next pattern event must be the first alphabet event encountered.
//
// Alphabet membership is tested by scanning the pattern itself: mined
// patterns are short, so the linear probe beats a map both in time and in
// allocations (none).
func MatchAt(s seqdb.Sequence, p seqdb.Pattern, start int) (end int, ok bool) {
	if len(p) == 0 || start < 0 || start >= len(s) || s[start] != p[0] {
		return 0, false
	}
	pos := start
	for k := 1; k < len(p); k++ {
		pos++
		for pos < len(s) && !p.Contains(s[pos]) {
			pos++
		}
		if pos >= len(s) || s[pos] != p[k] {
			return 0, false
		}
	}
	return pos, true
}

// FindInstances returns every instance of p in sequence s (identified by seq
// index seqIdx), in increasing start order. Instances may overlap but each
// start position contributes at most one instance.
func FindInstances(s seqdb.Sequence, p seqdb.Pattern, seqIdx int) []Instance {
	if len(p) == 0 {
		return nil
	}
	var out []Instance
	first := p[0]
	for i, ev := range s {
		if ev != first {
			continue
		}
		if end, ok := MatchAt(s, p, i); ok {
			out = append(out, Instance{Seq: seqIdx, Start: i, End: end})
		}
	}
	return out
}

// FindAllInstances returns every instance of p across the whole database in
// (sequence, start) order. All instances grow one shared slice, so the call
// costs O(log instances) allocations rather than one per sequence.
func FindAllInstances(db *seqdb.Database, p seqdb.Pattern) []Instance {
	if len(p) == 0 {
		return nil
	}
	var out []Instance
	first := p[0]
	for i, s := range db.Sequences {
		for j, ev := range s {
			if ev != first {
				continue
			}
			if end, ok := MatchAt(s, p, j); ok {
				out = append(out, Instance{Seq: i, Start: j, End: end})
			}
		}
	}
	return out
}

// CountInstances returns the instance support of p: the total number of
// instances across the database. It avoids materialising the instance list.
func CountInstances(db *seqdb.Database, p seqdb.Pattern) int {
	if len(p) == 0 {
		return 0
	}
	n := 0
	first := p[0]
	for _, s := range db.Sequences {
		for i, ev := range s {
			if ev != first {
				continue
			}
			if _, ok := MatchAt(s, p, i); ok {
				n++
			}
		}
	}
	return n
}

// SequenceSupport returns the number of sequences containing at least one
// instance of p. It allocates nothing.
func SequenceSupport(db *seqdb.Database, p seqdb.Pattern) int {
	if len(p) == 0 {
		return 0
	}
	n := 0
	first := p[0]
	for _, s := range db.Sequences {
		for j, ev := range s {
			if ev != first {
				continue
			}
			if _, ok := MatchAt(s, p, j); ok {
				n++
				break
			}
		}
	}
	return n
}

// CorrespondsTo reports whether every instance in sub corresponds to a unique
// instance in super, i.e. each sub-instance is contained in the span of a
// distinct super-instance (Definition 4.2, condition 2). Both slices must be
// sorted by (Seq, Start), which is how all finders in this package produce
// them.
func CorrespondsTo(sub, super []Instance) bool {
	if len(sub) == 0 {
		return true
	}
	if len(super) < len(sub) {
		return false
	}
	used := make([]bool, len(super))
	for _, si := range sub {
		found := false
		for j, qi := range super {
			if used[j] {
				continue
			}
			if qi.Contains(si) {
				used[j] = true
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
