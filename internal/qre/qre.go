// Package qre implements the Quantified Regular Expression semantics that
// Definition 4.1 of the paper uses to define iterative-pattern instances.
//
// A QRE over events uses ';' as concatenation, '[-e1,...,ek]' as an exclusion
// class ("any event except e1..ek") and '*' as Kleene star. The instance QRE
// of a pattern P = p1 p2 ... pn is
//
//	p1 ; [-p1,...,pn]* ; p2 ; ... ; [-p1,...,pn]* ; pn
//
// i.e. an instance is a substring that starts with p1, ends with pn, and
// whose gaps between consecutive pattern events contain no event of the
// pattern's own alphabet. This captures the total-ordering and one-to-one
// correspondence requirements inherited from MSC/LSC (Section 3.2).
package qre

import (
	"sort"
	"strings"

	"specmine/internal/seqdb"
)

// Element is one component of a QRE: either a literal event or a starred
// exclusion class.
type Element struct {
	// Literal holds the event to match when Exclusion is nil.
	Literal seqdb.EventID
	// Exclusion, when non-nil, makes this element a starred class matching
	// any run (possibly empty) of events not in the set.
	Exclusion map[seqdb.EventID]struct{}
}

// IsLiteral reports whether the element matches exactly one event.
func (e Element) IsLiteral() bool { return e.Exclusion == nil }

// Expression is a full QRE: a concatenation of elements.
type Expression struct {
	Elements []Element
}

// Compile builds the instance QRE of Definition 4.1 for pattern p. The
// returned expression alternates literals with exclusion-stars over the
// pattern's alphabet. Compiling an empty pattern yields an empty expression.
func Compile(p seqdb.Pattern) Expression {
	if len(p) == 0 {
		return Expression{}
	}
	alphabet := p.Alphabet()
	elems := make([]Element, 0, 2*len(p)-1)
	for i, ev := range p {
		if i > 0 {
			elems = append(elems, Element{Exclusion: alphabet})
		}
		elems = append(elems, Element{Literal: ev})
	}
	return Expression{Elements: elems}
}

// String renders the expression in the paper's notation using dict for event
// names, e.g. "lock;[-lock,unlock]*;unlock".
func (x Expression) String(dict *seqdb.Dictionary) string {
	var b strings.Builder
	for i, el := range x.Elements {
		if i > 0 {
			b.WriteByte(';')
		}
		if el.IsLiteral() {
			b.WriteString(dict.Name(el.Literal))
			continue
		}
		b.WriteString("[-")
		names := make([]string, 0, len(el.Exclusion))
		for ev := range el.Exclusion {
			names = append(names, dict.Name(ev))
		}
		sort.Strings(names)
		b.WriteString(strings.Join(names, ","))
		b.WriteString("]*")
	}
	return b.String()
}

// MatchesSubstring reports whether the substring s[start:end+1] matches the
// expression exactly (anchored at both ends).
func (x Expression) MatchesSubstring(s seqdb.Sequence, start, end int) bool {
	if start < 0 || end >= len(s) || start > end {
		return false
	}
	pos := start
	for i := 0; i < len(x.Elements); i++ {
		el := x.Elements[i]
		if el.IsLiteral() {
			if pos > end || s[pos] != el.Literal {
				return false
			}
			pos++
			continue
		}
		// Exclusion star: consume a maximal run of excluded-set-free events,
		// but stop before the next literal's position. Because the next
		// element is always a literal from the excluded alphabet, the star is
		// unambiguous: it must stop at the first event that belongs to the
		// exclusion set.
		for pos <= end {
			if _, excluded := el.Exclusion[s[pos]]; excluded {
				break
			}
			pos++
		}
	}
	return pos == end+1
}
