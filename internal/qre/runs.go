package qre

import "specmine/internal/seqdb"

// SpanRun is one arithmetic run of pattern instances within a single
// sequence: Count instances whose spans are
//
//	(Seq, Start + i*Stride, End + i*Stride)   for i in [0, Count)
//
// Looping traces — the dense regime of the paper's scalability study — emit
// near-periodic instance lists: a pattern matched inside a loop body produces
// one instance per iteration, each shifted by the loop period. A run captures
// an entire loop's worth of instances in 16 bytes, where the explicit Span
// list costs 12 bytes per instance.
type SpanRun struct {
	Seq    int32
	Start  int32
	End    int32
	Count  int32
	Stride int32
}

// SpanAt returns the i-th span of the run (0 <= i < Count).
func (r SpanRun) SpanAt(i int32) Span {
	d := i * r.Stride
	return Span{Seq: r.Seq, Start: r.Start + d, End: r.End + d}
}

// SpanRuns is a run-length-compressed instance list: the sequence of spans it
// represents is the concatenation of its runs. The compression is canonical —
// Append always extends the last run when the incoming span continues its
// arithmetic progression, and greedy extension is deterministic — so two
// SpanRuns values represent the same span sequence if and only if their run
// slices are element-wise equal. Everything that previously compared or
// hashed explicit span lists (the closed miner's landmark table) can
// therefore operate directly on the compressed form.
//
// The zero value is an empty list ready for use. The runs backing slice may
// be provided by a caller-managed free list via Reset.
type SpanRuns struct {
	runs []SpanRun
	n    int
}

// SpanRunsOf compresses an explicit span list. Spans must be in the order the
// miners produce them: grouped by sequence, starts increasing within a
// sequence.
func SpanRunsOf(spans []Span) SpanRuns {
	var rs SpanRuns
	for _, sp := range spans {
		rs.Append(sp)
	}
	return rs
}

// Reset empties the list, keeping (or adopting) the given backing slice so
// arenas can be recycled across search-tree nodes.
func (rs *SpanRuns) Reset(backing []SpanRun) {
	rs.runs = backing[:0]
	rs.n = 0
}

// Append adds one span at the end of the represented sequence, extending the
// last run when sp continues its progression and opening a new run otherwise.
//
// A single-span run has no committed stride yet: the second span fixes it,
// provided it lives in the same sequence, starts strictly later, and spans
// the same length (the stride shifts start and end together). Subsequent
// spans must continue the committed stride exactly.
func (rs *SpanRuns) Append(sp Span) {
	rs.n++
	if len(rs.runs) > 0 {
		last := &rs.runs[len(rs.runs)-1]
		if sp.Seq == last.Seq {
			if last.Count == 1 {
				if d := sp.Start - last.Start; d > 0 && sp.End-last.End == d {
					last.Stride = d
					last.Count = 2
					return
				}
			} else {
				d := last.Stride * (last.Count - 1)
				if sp.Start == last.Start+d+last.Stride && sp.End == last.End+d+last.Stride {
					last.Count++
					return
				}
			}
		}
	}
	rs.runs = append(rs.runs, SpanRun{Seq: sp.Seq, Start: sp.Start, End: sp.End, Count: 1})
}

// Len returns the number of represented spans.
func (rs SpanRuns) Len() int { return rs.n }

// NumRuns returns the number of compressed runs.
func (rs SpanRuns) NumRuns() int { return len(rs.runs) }

// Runs exposes the raw run slice (shared, not to be modified) so hot loops
// can iterate without closure overhead:
//
//	for _, r := range rs.Runs() {
//	    for i, start, end := int32(0), r.Start, r.End; i < r.Count; i, start, end = i+1, start+r.Stride, end+r.Stride {
//	        ...
//	    }
//	}
func (rs SpanRuns) Runs() []SpanRun { return rs.runs }

// ForEach calls fn for every represented span, in order.
func (rs SpanRuns) ForEach(fn func(Span)) {
	for _, r := range rs.runs {
		start, end := r.Start, r.End
		for i := int32(0); i < r.Count; i++ {
			fn(Span{Seq: r.Seq, Start: start, End: end})
			start += r.Stride
			end += r.Stride
		}
	}
}

// Spans materialises the explicit span list.
func (rs SpanRuns) Spans() []Span {
	out := make([]Span, 0, rs.n)
	rs.ForEach(func(sp Span) { out = append(out, sp) })
	return out
}

// Export materialises the public Instance form in one allocation.
func (rs SpanRuns) Export() []Instance {
	out := make([]Instance, 0, rs.n)
	rs.ForEach(func(sp Span) { out = append(out, sp.Export()) })
	return out
}

// Compact returns an independent copy whose backing array is sized exactly
// to the run count. Long-lived holders (the closed miner's landmark table)
// keep compact copies so the original — typically over-allocated, free-listed
// — backing array can be recycled immediately.
func (rs SpanRuns) Compact() SpanRuns {
	runs := make([]SpanRun, len(rs.runs))
	copy(runs, rs.runs)
	return SpanRuns{runs: runs, n: rs.n}
}

// Equal reports whether rs and other represent the same span sequence. By
// canonicality this is plain element-wise run comparison.
func (rs SpanRuns) Equal(other SpanRuns) bool {
	if rs.n != other.n || len(rs.runs) != len(other.runs) {
		return false
	}
	for i := range rs.runs {
		if rs.runs[i] != other.runs[i] {
			return false
		}
	}
	return true
}

// Signature hashes the represented span sequence with the shared
// stack-allocated FNV-1a hasher. Because compression is canonical, hashing
// runs is equivalence-preserving with hashing the explicit spans — and
// proportionally cheaper on compressible (looping) workloads.
func (rs SpanRuns) Signature() uint64 {
	h := seqdb.NewHash64()
	for _, r := range rs.runs {
		h = h.Mix32(r.Seq).Mix32(r.Start).Mix32(r.End).Mix32(r.Count).Mix32(r.Stride)
	}
	return uint64(h)
}

// SeqSupport returns the number of distinct sequences represented. Runs never
// span sequences and arrive grouped by sequence, so one pass suffices.
func (rs SpanRuns) SeqSupport() int {
	n := 0
	last := int32(-1)
	for _, r := range rs.runs {
		if r.Seq != last {
			n++
			last = r.Seq
		}
	}
	return n
}
