package qre

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"specmine/internal/seqdb"
)

func mkdb(traces ...[]string) *seqdb.Database {
	db := seqdb.NewDatabase()
	for _, t := range traces {
		db.AppendNames(t...)
	}
	return db
}

func TestCompileAndString(t *testing.T) {
	d := seqdb.NewDictionary()
	p := seqdb.ParsePattern(d, "lock unlock")
	x := Compile(p)
	if len(x.Elements) != 3 {
		t.Fatalf("expected 3 elements, got %d", len(x.Elements))
	}
	got := x.String(d)
	want := "lock;[-lock,unlock]*;unlock"
	if got != want {
		t.Errorf("String=%q want %q", got, want)
	}
	single := Compile(seqdb.ParsePattern(d, "lock"))
	if s := single.String(d); s != "lock" {
		t.Errorf("single-event QRE %q", s)
	}
	empty := Compile(nil)
	if len(empty.Elements) != 0 {
		t.Errorf("empty pattern should compile to empty expression")
	}
}

func TestCompileTelephoneProtocol(t *testing.T) {
	// The telephone switching example of Section 3.2: the pattern's QRE must
	// exclude the full alphabet in every gap.
	d := seqdb.NewDictionary()
	p := seqdb.ParsePattern(d, "off_hook dial_tone_on dial_tone_off seizure_int ring_tone answer connection_on")
	x := Compile(p)
	if len(x.Elements) != 13 {
		t.Fatalf("elements=%d want 13", len(x.Elements))
	}
	for i, el := range x.Elements {
		if i%2 == 0 {
			if !el.IsLiteral() {
				t.Errorf("element %d should be literal", i)
			}
		} else {
			if el.IsLiteral() || len(el.Exclusion) != 7 {
				t.Errorf("element %d should exclude 7 events, got %v", i, el)
			}
		}
	}
}

func TestMatchesSubstring(t *testing.T) {
	db := mkdb([]string{"lock", "use", "other", "unlock", "lock", "unlock"})
	d := db.Dict
	s := db.Sequences[0]
	p := seqdb.ParsePattern(d, "lock unlock")
	x := Compile(p)
	cases := []struct {
		start, end int
		want       bool
	}{
		{0, 3, true},   // lock use other unlock
		{4, 5, true},   // lock unlock
		{0, 5, false},  // contains an intervening lock/unlock pair
		{0, 2, false},  // does not end with unlock
		{1, 3, false},  // does not start with lock
		{-1, 3, false}, // out of range
		{3, 2, false},  // inverted
	}
	for _, c := range cases {
		if got := x.MatchesSubstring(s, c.start, c.end); got != c.want {
			t.Errorf("MatchesSubstring(%d,%d)=%v want %v", c.start, c.end, got, c.want)
		}
	}
}

func TestMatchAtAndFindInstances(t *testing.T) {
	// Trace exhibiting repetition within a sequence ("due to looping, a trace
	// can contain repeated occurrences of interesting patterns").
	db := mkdb(
		[]string{"lock", "use", "unlock", "read", "lock", "write", "write", "unlock"},
		[]string{"lock", "lock", "unlock"},
		[]string{"unlock", "use"},
	)
	d := db.Dict
	p := seqdb.ParsePattern(d, "lock unlock")

	inst0 := FindInstances(db.Sequences[0], p, 0)
	want0 := []Instance{{Seq: 0, Start: 0, End: 2}, {Seq: 0, Start: 4, End: 7}}
	if !reflect.DeepEqual(inst0, want0) {
		t.Errorf("instances in seq0: %v want %v", inst0, want0)
	}

	// In "lock lock unlock" only the second lock starts an instance: the gap
	// of the first would contain another lock, violating the QRE exclusion.
	inst1 := FindInstances(db.Sequences[1], p, 1)
	want1 := []Instance{{Seq: 1, Start: 1, End: 2}}
	if !reflect.DeepEqual(inst1, want1) {
		t.Errorf("instances in seq1: %v want %v", inst1, want1)
	}

	if got := len(FindInstances(db.Sequences[2], p, 2)); got != 0 {
		t.Errorf("instances in seq2: %d want 0", got)
	}

	all := FindAllInstances(db, p)
	if len(all) != 3 {
		t.Errorf("FindAllInstances=%d want 3", len(all))
	}
	if CountInstances(db, p) != 3 {
		t.Errorf("CountInstances=%d want 3", CountInstances(db, p))
	}
	if SequenceSupport(db, p) != 2 {
		t.Errorf("SequenceSupport=%d want 2", SequenceSupport(db, p))
	}
	if CountInstances(db, nil) != 0 || SequenceSupport(db, nil) != 0 {
		t.Errorf("empty pattern should have zero support")
	}
}

func TestMSCOneToOneCorrespondence(t *testing.T) {
	// The two non-conforming telephone traces from Section 3.2 must not be
	// instances of the protocol pattern.
	d := seqdb.NewDictionary()
	p := seqdb.ParsePattern(d, "off_hook seizure_int ring_tone answer connection_on")
	bad1 := seqdb.ParsePattern(d, "off_hook seizure_int ring_tone answer ring_tone connection_on")
	bad2 := seqdb.ParsePattern(d, "off_hook seizure_int ring_tone answer answer answer connection_on")
	good := seqdb.ParsePattern(d, "off_hook noise seizure_int ring_tone answer connection_on")

	if _, ok := MatchAt(seqdb.Sequence(bad1), p, 0); ok {
		t.Errorf("out-of-order trace must not match (total ordering violated)")
	}
	if _, ok := MatchAt(seqdb.Sequence(bad2), p, 0); ok {
		t.Errorf("repeated-answer trace must not match (one-to-one correspondence violated)")
	}
	if end, ok := MatchAt(seqdb.Sequence(good), p, 0); !ok || end != 5 {
		t.Errorf("trace with unrelated noise must match: ok=%v end=%d", ok, end)
	}
}

func TestMatchAtDeterminism(t *testing.T) {
	d := seqdb.NewDictionary()
	a, b, c := d.Intern("a"), d.Intern("b"), d.Intern("c")
	s := seqdb.Sequence{a, c, c, b, b}
	p := seqdb.Pattern{a, b}
	end, ok := MatchAt(s, p, 0)
	if !ok || end != 3 {
		t.Errorf("MatchAt should stop at first alphabet event: end=%d ok=%v", end, ok)
	}
	if _, ok := MatchAt(s, p, 1); ok {
		t.Errorf("MatchAt must fail when start is not the first pattern event")
	}
	if _, ok := MatchAt(s, p, 99); ok {
		t.Errorf("MatchAt must fail out of range")
	}
	if _, ok := MatchAt(s, nil, 0); ok {
		t.Errorf("MatchAt must fail for empty pattern")
	}
}

func TestInstanceContainsAndCorrespondsTo(t *testing.T) {
	a := Instance{Seq: 0, Start: 2, End: 8}
	b := Instance{Seq: 0, Start: 3, End: 7}
	c := Instance{Seq: 1, Start: 3, End: 7}
	if !a.Contains(b) || b.Contains(a) || a.Contains(c) {
		t.Errorf("Contains relation wrong")
	}
	if a.String() == "" {
		t.Errorf("empty String")
	}

	sub := []Instance{{0, 1, 2}, {0, 5, 6}}
	super := []Instance{{0, 0, 3}, {0, 5, 8}}
	if !CorrespondsTo(sub, super) {
		t.Errorf("expected correspondence")
	}
	// Two sub instances cannot map to the same super instance.
	superOne := []Instance{{0, 0, 9}}
	if CorrespondsTo(sub, superOne) {
		t.Errorf("correspondence must be one-to-one")
	}
	if !CorrespondsTo(nil, superOne) {
		t.Errorf("empty sub always corresponds")
	}
	if CorrespondsTo(sub, nil) {
		t.Errorf("non-empty sub cannot correspond to empty super")
	}
}

// bruteInstances enumerates instances by checking every (start,end) span
// against the compiled QRE, the literal reading of Definition 4.1.
func bruteInstances(s seqdb.Sequence, p seqdb.Pattern, seqIdx int) []Instance {
	if len(p) == 0 {
		return nil
	}
	x := Compile(p)
	var out []Instance
	for start := 0; start < len(s); start++ {
		for end := start; end < len(s); end++ {
			if x.MatchesSubstring(s, start, end) {
				out = append(out, Instance{Seq: seqIdx, Start: start, End: end})
			}
		}
	}
	return out
}

func TestFindInstancesAgainstBruteForceQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	f := func() bool {
		n := 1 + rng.Intn(25)
		s := make(seqdb.Sequence, n)
		for i := range s {
			s[i] = seqdb.EventID(rng.Intn(4))
		}
		m := 1 + rng.Intn(3)
		p := make(seqdb.Pattern, m)
		for i := range p {
			p[i] = seqdb.EventID(rng.Intn(4))
		}
		got := FindInstances(s, p, 0)
		want := bruteInstances(s, p, 0)
		if len(got) != len(want) {
			return false
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 800}); err != nil {
		t.Error(err)
	}
}

func TestBruteForceUniqueStarts(t *testing.T) {
	// Sanity property: from any start position there is at most one instance,
	// hence brute-force enumeration and deterministic matching agree. This is
	// checked at larger alphabet sizes than the quick test above.
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 200; iter++ {
		n := 1 + rng.Intn(40)
		s := make(seqdb.Sequence, n)
		for i := range s {
			s[i] = seqdb.EventID(rng.Intn(6))
		}
		p := make(seqdb.Pattern, 1+rng.Intn(4))
		for i := range p {
			p[i] = seqdb.EventID(rng.Intn(6))
		}
		brute := bruteInstances(s, p, 0)
		seen := make(map[int]bool)
		for _, in := range brute {
			if seen[in.Start] {
				t.Fatalf("two instances share start %d for pattern %v in %v", in.Start, p, s)
			}
			seen[in.Start] = true
		}
	}
}
