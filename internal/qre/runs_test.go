package qre

import (
	"math/rand"
	"testing"

	"specmine/internal/seqdb"
	"specmine/internal/synth"
	"specmine/internal/tracesim"
)

func spansOfInstances(insts []Instance) []Span {
	out := make([]Span, len(insts))
	for i, in := range insts {
		out[i] = Span{Seq: int32(in.Seq), Start: int32(in.Start), End: int32(in.End)}
	}
	return out
}

// checkRoundTrip compresses spans into SpanRuns and verifies every view of
// the compressed form reproduces the explicit list exactly: Spans, ForEach
// order, Export, Len, SeqSupport, plus the canonicality guarantees the miners
// rely on (Equal and Signature agreement for equal lists).
func checkRoundTrip(t *testing.T, label string, spans []Span) {
	t.Helper()
	rs := SpanRunsOf(spans)
	if rs.Len() != len(spans) {
		t.Fatalf("%s: Len=%d want %d", label, rs.Len(), len(spans))
	}
	back := rs.Spans()
	if len(back) != len(spans) {
		t.Fatalf("%s: round-trip length %d want %d", label, len(back), len(spans))
	}
	for i := range spans {
		if back[i] != spans[i] {
			t.Fatalf("%s: span %d round-tripped to %+v want %+v (runs=%+v)", label, i, back[i], spans[i], rs.Runs())
		}
	}
	exported := rs.Export()
	for i := range spans {
		if exported[i] != spans[i].Export() {
			t.Fatalf("%s: instance %d exported to %+v want %+v", label, i, exported[i], spans[i].Export())
		}
	}
	seqs := 0
	lastSeq := int32(-1)
	for _, sp := range spans {
		if sp.Seq != lastSeq {
			seqs++
			lastSeq = sp.Seq
		}
	}
	if rs.SeqSupport() != seqs {
		t.Fatalf("%s: SeqSupport=%d want %d", label, rs.SeqSupport(), seqs)
	}
	// Canonicality: recompressing the same list yields identical runs.
	again := SpanRunsOf(back)
	if !rs.Equal(again) {
		t.Fatalf("%s: recompression not canonical: %+v vs %+v", label, rs.Runs(), again.Runs())
	}
	if rs.Signature() != again.Signature() {
		t.Fatalf("%s: signatures differ for equal lists", label)
	}
}

func checkDatabasePatterns(t *testing.T, label string, db *seqdb.Database, maxLen int) {
	t.Helper()
	// Use the per-event frequent alphabet to enumerate a spread of patterns,
	// including looping multi-event ones, then round-trip their instance lists.
	idx := db.FlatIndex()
	events := idx.FrequentEventsByInstanceCount(2)
	if len(events) > 12 {
		events = events[:12]
	}
	var patterns []seqdb.Pattern
	for _, e := range events {
		patterns = append(patterns, seqdb.Pattern{e})
	}
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 40 && len(events) > 0; iter++ {
		n := 2 + rng.Intn(maxLen-1)
		p := make(seqdb.Pattern, n)
		for i := range p {
			p[i] = events[rng.Intn(len(events))]
		}
		patterns = append(patterns, p)
	}
	total := 0
	compressed := 0
	for _, p := range patterns {
		insts := FindAllInstances(db, p)
		spans := spansOfInstances(insts)
		checkRoundTrip(t, label+"/"+p.Key(), spans)
		rs := SpanRunsOf(spans)
		total += rs.Len()
		compressed += rs.NumRuns()
	}
	if total > 0 && compressed > total {
		t.Fatalf("%s: compression expanded: %d runs for %d spans", label, compressed, total)
	}
}

// TestSpanRunsRoundTripWorkloads is the compression property test: on Quest
// synthetic databases and on every tracesim workload (including the dense
// looping ones the run representation exists for), compressing an instance
// list and decompressing it reproduces the same spans in the same order.
// Run under -race in CI.
func TestSpanRunsRoundTripWorkloads(t *testing.T) {
	quest := synth.MustGenerate(synth.Config{
		NumSequences: 40, AvgSequenceLength: 30, NumEvents: 60, AvgPatternLength: 6, Seed: 17,
	})
	checkDatabasePatterns(t, "quest", quest, 4)

	for name, w := range tracesim.Workloads() {
		db := w.MustGenerate(30, 7)
		checkDatabasePatterns(t, "tracesim-"+name, db, 5)
	}
}

// TestSpanRunsRandomized drives Append with adversarial random span streams
// (valid miner order, arbitrary strides and lengths) and checks the
// round-trip plus canonical equality between independently built lists.
func TestSpanRunsRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 500; iter++ {
		var spans []Span
		numSeqs := 1 + rng.Intn(4)
		for s := 0; s < numSeqs; s++ {
			start := int32(rng.Intn(3))
			for k := 0; k < rng.Intn(12); k++ {
				length := int32(rng.Intn(5))
				spans = append(spans, Span{Seq: int32(s), Start: start, End: start + length})
				start += 1 + int32(rng.Intn(4))
			}
		}
		checkRoundTrip(t, "random", spans)
	}
}

// TestSpanRunsCompressesLoops pins the representation's reason to exist: a
// periodic instance list (one instance per loop iteration) collapses into a
// single run.
func TestSpanRunsCompressesLoops(t *testing.T) {
	var spans []Span
	for i := int32(0); i < 50; i++ {
		spans = append(spans, Span{Seq: 3, Start: 10 + 7*i, End: 13 + 7*i})
	}
	rs := SpanRunsOf(spans)
	if rs.NumRuns() != 1 {
		t.Fatalf("periodic list compressed to %d runs, want 1 (%+v)", rs.NumRuns(), rs.Runs())
	}
	r := rs.Runs()[0]
	if r.Count != 50 || r.Stride != 7 || r.Seq != 3 || r.Start != 10 || r.End != 13 {
		t.Fatalf("unexpected run %+v", r)
	}
	checkRoundTrip(t, "loop", spans)
}

func TestSpanRunsResetRecycles(t *testing.T) {
	rs := SpanRunsOf([]Span{{Seq: 0, Start: 1, End: 2}, {Seq: 0, Start: 4, End: 5}})
	backing := rs.Runs()
	rs.Reset(backing)
	if rs.Len() != 0 || rs.NumRuns() != 0 {
		t.Fatalf("Reset left state: %+v", rs)
	}
	rs.Append(Span{Seq: 1, Start: 0, End: 0})
	if rs.Len() != 1 || rs.Runs()[0].Seq != 1 {
		t.Fatalf("append after Reset wrong: %+v", rs.Runs())
	}
}
