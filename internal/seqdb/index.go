package seqdb

import (
	"math/bits"
	"sort"
)

// PositionIndex is the flat, cache-friendly positional index used by the
// mining hot paths. It replaces the per-sequence map[EventID][]int layout of
// Database.Index with a CSR (compressed sparse row) representation:
//
//   - one shared int32 arena holds every position list back to back;
//   - each sequence owns a sorted slice of the distinct events it contains and
//     a parallel offset table into the arena, so a (sequence, event) lookup is
//     a binary search over the sequence's (typically small) local alphabet;
//   - prevOcc[s][j] stores the previous position of event s[j] within sequence
//     s (or -1), which turns "does this event occur inside span [lo..j)?" —
//     the gap-validity test the QRE semantics needs at every search-tree node —
//     into a single O(1) array read;
//   - a per-event postings CSR lists, for every event, the sequences that
//     contain it, which drives seed generation without map iteration.
//
// All derived data is immutable after Build, so one index is safely shared by
// any number of concurrent mining workers.
type PositionIndex struct {
	numEvents int

	// Per-sequence CSR: seqEvents[s] is the sorted distinct-event list of
	// sequence s, seqOffsets[s][k] the arena offset of the position list of
	// seqEvents[s][k] (seqOffsets[s] has one trailing sentinel entry).
	seqEvents  [][]EventID
	seqOffsets [][]int32
	posArena   []int32

	// prevOcc[s][j] is the previous position of event s[j] in s, or -1.
	prevOcc [][]int32

	// Per-event postings CSR: postSeqs[postOffsets[e]:postOffsets[e+1]] lists
	// the sequences containing event e, in increasing order.
	postSeqs    []int32
	postOffsets []int32

	// instCount[e] is the total number of occurrences of event e.
	instCount []int32

	// Dense-event position bitmaps. For sequence s, bmSlots[s][k] is the word
	// offset into bmWords[s] of the bitmap of seqEvents[s][k] (bit j set iff
	// s[j] is that event), or -1 when the event is too sparse to earn one;
	// bmSlots[s] is nil when no event of s qualifies. Derived deterministically
	// from the position lists, so two indexes with equal logical state always
	// carry equal bitmaps.
	bmSlots [][]int32
	bmWords [][]uint64

	// version counts append batches (see index_append.go); frozenSeqs and
	// frozenPos are the header/arena watermarks visible to the most recent
	// Snapshot, below which tail rewrites must copy-on-write.
	version    uint64
	frozenSeqs int
	frozenPos  int
}

// BuildPositionIndex constructs the index for the given sequences. numEvents
// must be at least one greater than the largest event id referenced.
func BuildPositionIndex(sequences []Sequence, numEvents int) *PositionIndex {
	for _, s := range sequences {
		for _, e := range s {
			if int(e) >= numEvents {
				numEvents = int(e) + 1
			}
		}
	}
	idx := &PositionIndex{
		numEvents:  numEvents,
		seqEvents:  make([][]EventID, len(sequences)),
		seqOffsets: make([][]int32, len(sequences)),
		prevOcc:    make([][]int32, len(sequences)),
		instCount:  make([]int32, numEvents),
		bmSlots:    make([][]int32, len(sequences)),
		bmWords:    make([][]uint64, len(sequences)),
	}

	totalEvents := 0
	for _, s := range sequences {
		totalEvents += len(s)
	}
	idx.posArena = make([]int32, 0, totalEvents)
	prevArena := make([]int32, totalEvents)

	// Scratch keyed by event id, reset via the per-sequence touched list so
	// building stays O(total events + distinct events log distinct events).
	lastSeen := make([]int32, numEvents)
	counts := make([]int32, numEvents)
	for i := range lastSeen {
		lastSeen[i] = -1
	}
	seqSupport := make([]int32, numEvents)
	touched := make([]EventID, 0, 64)

	// One backing array for all distinct-event lists and offset tables keeps
	// the per-sequence headers contiguous too.
	distinctTotal := 0
	for _, s := range sequences {
		touched = touched[:0]
		for _, e := range s {
			if counts[e] == 0 {
				touched = append(touched, e)
			}
			counts[e]++
		}
		distinctTotal += len(touched)
		for _, e := range touched {
			counts[e] = 0
		}
	}
	eventsArena := make([]EventID, 0, distinctTotal)
	offsetsArena := make([]int32, 0, distinctTotal+len(sequences))

	cursor := make([]int32, numEvents)
	prevBase := 0
	for si, s := range sequences {
		// Distinct events and their occurrence counts.
		touched = touched[:0]
		for _, e := range s {
			if counts[e] == 0 {
				touched = append(touched, e)
			}
			counts[e]++
			idx.instCount[e]++
		}
		sort.Slice(touched, func(a, b int) bool { return touched[a] < touched[b] })

		evBase := len(eventsArena)
		eventsArena = append(eventsArena, touched...)
		idx.seqEvents[si] = eventsArena[evBase : evBase+len(touched)]

		offBase := len(offsetsArena)
		off := int32(len(idx.posArena))
		for _, e := range touched {
			offsetsArena = append(offsetsArena, off)
			cursor[e] = off
			off += counts[e]
			seqSupport[e]++
		}
		offsetsArena = append(offsetsArena, off)
		idx.seqOffsets[si] = offsetsArena[offBase : offBase+len(touched)+1]
		idx.posArena = idx.posArena[:off]

		// Fill position lists and the prev-occurrence array in one pass.
		prev := prevArena[prevBase : prevBase+len(s)]
		prevBase += len(s)
		for j, e := range s {
			idx.posArena[cursor[e]] = int32(j)
			cursor[e]++
			prev[j] = lastSeen[e]
			lastSeen[e] = int32(j)
		}
		idx.prevOcc[si] = prev
		idx.bmSlots[si], idx.bmWords[si] = idx.buildSeqBitmaps(si, len(s))
		for _, e := range touched {
			counts[e] = 0
			lastSeen[e] = -1
		}
	}

	// Per-event postings.
	idx.postOffsets = make([]int32, numEvents+1)
	total := int32(0)
	for e := 0; e < numEvents; e++ {
		idx.postOffsets[e] = total
		total += seqSupport[e]
	}
	idx.postOffsets[numEvents] = total
	idx.postSeqs = make([]int32, total)
	postCursor := make([]int32, numEvents)
	copy(postCursor, idx.postOffsets[:numEvents])
	for si := range sequences {
		for _, e := range idx.seqEvents[si] {
			idx.postSeqs[postCursor[e]] = int32(si)
			postCursor[e]++
		}
	}
	return idx
}

// NumEvents returns the size of the event-id space covered by the index.
func (idx *PositionIndex) NumEvents() int { return idx.numEvents }

// NumSequences returns the number of indexed sequences.
func (idx *PositionIndex) NumSequences() int { return len(idx.seqEvents) }

// NumPositions returns the total number of indexed event occurrences (the
// sum of all sequence lengths). It is the O(1) index-side counterpart of
// Database.NumEvents.
func (idx *PositionIndex) NumPositions() int { return len(idx.posArena) }

// Positions returns the sorted occurrence positions of event e in sequence s,
// or nil when e does not occur there.
func (idx *PositionIndex) Positions(s int, e EventID) []int32 {
	events := idx.seqEvents[s]
	k := lowerBound(events, e)
	if k == len(events) || events[k] != e {
		return nil
	}
	offs := idx.seqOffsets[s]
	return idx.posArena[offs[k]:offs[k+1]]
}

// SeqEvents returns the sorted distinct events of sequence s. The returned
// slice is shared and must not be modified.
func (idx *PositionIndex) SeqEvents(s int) []EventID { return idx.seqEvents[s] }

// SeqContains reports whether event e occurs in sequence s. It is the cheap
// presence probe the query planner gates rules on: one branchless binary
// search over the sequence's (typically small) distinct-event list, touching
// no position data. Ids outside the index's event space read as absent, like
// EventInstanceCount.
func (idx *PositionIndex) SeqContains(s int, e EventID) bool {
	if e < 0 || int(e) >= idx.numEvents {
		return false
	}
	events := idx.seqEvents[s]
	k := lowerBound(events, e)
	return k < len(events) && events[k] == e
}

// SeqLen returns the number of events in sequence s.
func (idx *PositionIndex) SeqLen(s int) int { return len(idx.prevOcc[s]) }

// PrevOccurrence returns the position of the previous occurrence (before pos)
// of the event located at position pos of sequence s, or -1 when pos holds its
// first occurrence.
func (idx *PositionIndex) PrevOccurrence(s, pos int) int32 { return idx.prevOcc[s][pos] }

// OccursWithin reports whether the event at position pos of sequence s also
// occurs somewhere in [lo, pos). It relies on the prev-occurrence chain, so it
// is exact only when pos holds the first occurrence at or after lo' for every
// lo' in (prevOcc, pos]; the miners always query it in that regime.
func (idx *PositionIndex) OccursWithin(s, pos, lo int) bool {
	return idx.prevOcc[s][pos] >= int32(lo)
}

// lowerBound returns the smallest index i with a[i] >= x. The halving loop
// carries a single conditional add per step — no data-dependent branch — so
// the compiler lowers it to CMOV and the mining hot loops stop paying
// mispredictions on the (close to random) comparison outcomes.
func lowerBound[T ~int32](a []T, x T) int {
	base, n := 0, len(a)
	for n > 1 {
		half := n >> 1
		if a[base+half-1] < x {
			base += half
		}
		n -= half
	}
	if n == 1 && a[base] < x {
		base++
	}
	return base
}

// searchInt32 returns the smallest index i with positions[i] >= from.
func searchInt32(positions []int32, from int32) int {
	return lowerBound(positions, from)
}

// CountInRange returns the number of occurrences of e in sequence s falling
// in the half-open position interval [lo, hi).
func (idx *PositionIndex) CountInRange(s int, e EventID, lo, hi int) int {
	if hi <= lo {
		return 0
	}
	positions := idx.Positions(s, e)
	return searchInt32(positions, int32(hi)) - searchInt32(positions, int32(lo))
}

// CountFrom returns the number of occurrences of e in sequence s at position
// from or later.
func (idx *PositionIndex) CountFrom(s int, e EventID, from int) int {
	positions := idx.Positions(s, e)
	return len(positions) - searchInt32(positions, int32(from))
}

// PositionsFrom returns the sorted occurrence positions of e in sequence s
// that are >= from.
func (idx *PositionIndex) PositionsFrom(s int, e EventID, from int) []int32 {
	positions := idx.Positions(s, e)
	return positions[searchInt32(positions, int32(from)):]
}

// Dense-bitmap qualification: an event earns a position bitmap in a sequence
// when it occurs at least bmMinCount times and at least every bmSparseness-th
// position on average. Below either bound the bitmap scan would touch more
// words than the branchless binary probe touches cache lines, so the postings
// list stays the faster representation.
const (
	bmMinCount   = 16
	bmSparseness = 8
)

// denseBitmap reports whether an event with count occurrences in a sequence
// of seqLen events qualifies for the bitmap fast path.
func denseBitmap(count, seqLen int) bool {
	return count >= bmMinCount && count*bmSparseness >= seqLen
}

// buildSeqBitmaps derives sequence si's dense-event bitmaps from its freshly
// written headers and position lists. It returns (nil, nil) when no event of
// the sequence qualifies — the common case for long-tailed alphabets.
func (idx *PositionIndex) buildSeqBitmaps(si, seqLen int) ([]int32, []uint64) {
	events := idx.seqEvents[si]
	offs := idx.seqOffsets[si]
	nDense := 0
	for k := range events {
		if denseBitmap(int(offs[k+1]-offs[k]), seqLen) {
			nDense++
		}
	}
	if nDense == 0 {
		return nil, nil
	}
	w := (seqLen + 63) >> 6
	slots := make([]int32, len(events))
	words := make([]uint64, nDense*w)
	off := int32(0)
	for k := range events {
		if !denseBitmap(int(offs[k+1]-offs[k]), seqLen) {
			slots[k] = -1
			continue
		}
		slots[k] = off
		bm := words[off : int(off)+w]
		for _, p := range idx.posArena[offs[k]:offs[k+1]] {
			bm[p>>6] |= 1 << (uint(p) & 63)
		}
		off += int32(w)
	}
	return slots, words
}

// NextAfter returns the smallest position >= from at which e occurs in
// sequence s, or -1 when there is none.
func (idx *PositionIndex) NextAfter(s int, e EventID, from int) int32 {
	events := idx.seqEvents[s]
	k := lowerBound(events, e)
	if k == len(events) || events[k] != e {
		return -1
	}
	if slots := idx.bmSlots[s]; slots != nil && slots[k] >= 0 {
		return nextBit(idx.bmWords[s], int(slots[k]), len(idx.prevOcc[s]), from)
	}
	offs := idx.seqOffsets[s]
	positions := idx.posArena[offs[k]:offs[k+1]]
	i := lowerBound(positions, int32(from))
	if i == len(positions) {
		return -1
	}
	return positions[i]
}

// PrevBefore returns the largest position < before at which e occurs in
// sequence s, or -1 when there is none. It is the backward counterpart of
// NextAfter, used by latest-embedding computations.
func (idx *PositionIndex) PrevBefore(s int, e EventID, before int) int32 {
	events := idx.seqEvents[s]
	k := lowerBound(events, e)
	if k == len(events) || events[k] != e {
		return -1
	}
	if slots := idx.bmSlots[s]; slots != nil && slots[k] >= 0 {
		return prevBit(idx.bmWords[s], int(slots[k]), len(idx.prevOcc[s]), before)
	}
	offs := idx.seqOffsets[s]
	positions := idx.posArena[offs[k]:offs[k+1]]
	i := lowerBound(positions, int32(before))
	if i == 0 {
		return -1
	}
	return positions[i-1]
}

// nextBit returns the smallest set bit >= from in the bitmap of seqLen bits
// starting at word off of words, or -1. A dense bitmap has an expected gap of
// at most bmSparseness positions, so the scan almost always resolves in the
// first word it touches.
func nextBit(words []uint64, off, seqLen, from int) int32 {
	if from < 0 {
		from = 0
	}
	if from >= seqLen {
		return -1
	}
	nw := (seqLen + 63) >> 6
	wi := from >> 6
	cur := words[off+wi] &^ (1<<(uint(from)&63) - 1)
	for cur == 0 {
		wi++
		if wi >= nw {
			return -1
		}
		cur = words[off+wi]
	}
	return int32(wi<<6 + bits.TrailingZeros64(cur))
}

// prevBit returns the largest set bit < before in the bitmap of seqLen bits
// starting at word off of words, or -1.
func prevBit(words []uint64, off, seqLen, before int) int32 {
	if before > seqLen {
		before = seqLen
	}
	if before <= 0 {
		return -1
	}
	last := before - 1
	wi := last >> 6
	cur := words[off+wi]
	if s := uint(last) & 63; s != 63 {
		cur &= 1<<(s+1) - 1
	}
	for cur == 0 {
		wi--
		if wi < 0 {
			return -1
		}
		cur = words[off+wi]
	}
	return int32(wi<<6 + 63 - bits.LeadingZeros64(cur))
}

// PosCursor walks one (sequence, event) occurrence list monotonically. It is
// the amortised form of NextAfter for callers whose probe positions never
// decrease — the episode miner's end-chain advance — resolving the common
// "next occurrence is the next entry" case in O(1) and galloping (doubling
// probe distance, then a branchless binary search inside the bracket) past
// longer skips, so a full monotone scan over n probes costs O(len + n log)
// instead of n independent from-scratch searches.
type PosCursor struct {
	positions []int32
	i         int
}

// Cursor returns a cursor over the occurrences of e in sequence s. A zero
// cursor (no occurrences) is valid and always reports -1.
func (idx *PositionIndex) Cursor(s int, e EventID) PosCursor {
	return PosCursor{positions: idx.Positions(s, e)}
}

// NextAfter returns the smallest occurrence position >= from not yet passed,
// or -1 when none remains. Probe positions must be non-decreasing across
// calls; under that contract it returns exactly what PositionIndex.NextAfter
// would.
func (c *PosCursor) NextAfter(from int32) int32 {
	ps := c.positions
	i := c.i
	if i >= len(ps) {
		return -1
	}
	if ps[i] >= from {
		return ps[i]
	}
	// Gallop: bracket the answer between the last probe known < from and the
	// first known >= from (or the end), then binary-search the bracket.
	bound := 1
	for i+bound < len(ps) && ps[i+bound] < from {
		bound <<= 1
	}
	lo := i + bound>>1 + 1
	hi := i + bound + 1
	if hi > len(ps) {
		hi = len(ps)
	}
	j := lo + lowerBound(ps[lo:hi], from)
	c.i = j
	if j >= len(ps) {
		return -1
	}
	return ps[j]
}

// SeqsContaining returns the sequences containing event e, in increasing
// order. The returned slice is shared and must not be modified.
func (idx *PositionIndex) SeqsContaining(e EventID) []int32 {
	return idx.postSeqs[idx.postOffsets[e]:idx.postOffsets[e+1]]
}

// EventSeqSupport returns the number of sequences containing event e.
func (idx *PositionIndex) EventSeqSupport(e EventID) int {
	return int(idx.postOffsets[e+1] - idx.postOffsets[e])
}

// EventInstanceCount returns the total number of occurrences of event e. An
// id outside the index's event-id space counts zero occurrences: with a
// shared, still-growing dictionary (the streaming case), callers routinely
// score patterns mined from a newer snapshot against an older one, and an
// event the older snapshot never saw must read as absent, not as a panic.
func (idx *PositionIndex) EventInstanceCount(e EventID) int {
	if int(e) >= len(idx.instCount) || e < 0 {
		return 0
	}
	return int(idx.instCount[e])
}

// FrequentEventsByInstanceCount returns, sorted by id, the events with at
// least min total occurrences.
func (idx *PositionIndex) FrequentEventsByInstanceCount(min int) []EventID {
	var out []EventID
	for e := 0; e < idx.numEvents; e++ {
		if int(idx.instCount[e]) >= min {
			out = append(out, EventID(e))
		}
	}
	return out
}

// FrequentEventsBySeqSupport returns, sorted by id, the events occurring in at
// least min distinct sequences.
func (idx *PositionIndex) FrequentEventsBySeqSupport(min int) []EventID {
	var out []EventID
	for e := 0; e < idx.numEvents; e++ {
		if idx.EventSeqSupport(EventID(e)) >= min {
			out = append(out, EventID(e))
		}
	}
	return out
}
