package seqdb

import "sort"

// PositionIndex is the flat, cache-friendly positional index used by the
// mining hot paths. It replaces the per-sequence map[EventID][]int layout of
// Database.Index with a CSR (compressed sparse row) representation:
//
//   - one shared int32 arena holds every position list back to back;
//   - each sequence owns a sorted slice of the distinct events it contains and
//     a parallel offset table into the arena, so a (sequence, event) lookup is
//     a binary search over the sequence's (typically small) local alphabet;
//   - prevOcc[s][j] stores the previous position of event s[j] within sequence
//     s (or -1), which turns "does this event occur inside span [lo..j)?" —
//     the gap-validity test the QRE semantics needs at every search-tree node —
//     into a single O(1) array read;
//   - a per-event postings CSR lists, for every event, the sequences that
//     contain it, which drives seed generation without map iteration.
//
// All derived data is immutable after Build, so one index is safely shared by
// any number of concurrent mining workers.
type PositionIndex struct {
	numEvents int

	// Per-sequence CSR: seqEvents[s] is the sorted distinct-event list of
	// sequence s, seqOffsets[s][k] the arena offset of the position list of
	// seqEvents[s][k] (seqOffsets[s] has one trailing sentinel entry).
	seqEvents  [][]EventID
	seqOffsets [][]int32
	posArena   []int32

	// prevOcc[s][j] is the previous position of event s[j] in s, or -1.
	prevOcc [][]int32

	// Per-event postings CSR: postSeqs[postOffsets[e]:postOffsets[e+1]] lists
	// the sequences containing event e, in increasing order.
	postSeqs    []int32
	postOffsets []int32

	// instCount[e] is the total number of occurrences of event e.
	instCount []int32

	// version counts append batches (see index_append.go); frozenSeqs and
	// frozenPos are the header/arena watermarks visible to the most recent
	// Snapshot, below which tail rewrites must copy-on-write.
	version    uint64
	frozenSeqs int
	frozenPos  int
}

// BuildPositionIndex constructs the index for the given sequences. numEvents
// must be at least one greater than the largest event id referenced.
func BuildPositionIndex(sequences []Sequence, numEvents int) *PositionIndex {
	for _, s := range sequences {
		for _, e := range s {
			if int(e) >= numEvents {
				numEvents = int(e) + 1
			}
		}
	}
	idx := &PositionIndex{
		numEvents:  numEvents,
		seqEvents:  make([][]EventID, len(sequences)),
		seqOffsets: make([][]int32, len(sequences)),
		prevOcc:    make([][]int32, len(sequences)),
		instCount:  make([]int32, numEvents),
	}

	totalEvents := 0
	for _, s := range sequences {
		totalEvents += len(s)
	}
	idx.posArena = make([]int32, 0, totalEvents)
	prevArena := make([]int32, totalEvents)

	// Scratch keyed by event id, reset via the per-sequence touched list so
	// building stays O(total events + distinct events log distinct events).
	lastSeen := make([]int32, numEvents)
	counts := make([]int32, numEvents)
	for i := range lastSeen {
		lastSeen[i] = -1
	}
	seqSupport := make([]int32, numEvents)
	touched := make([]EventID, 0, 64)

	// One backing array for all distinct-event lists and offset tables keeps
	// the per-sequence headers contiguous too.
	distinctTotal := 0
	for _, s := range sequences {
		touched = touched[:0]
		for _, e := range s {
			if counts[e] == 0 {
				touched = append(touched, e)
			}
			counts[e]++
		}
		distinctTotal += len(touched)
		for _, e := range touched {
			counts[e] = 0
		}
	}
	eventsArena := make([]EventID, 0, distinctTotal)
	offsetsArena := make([]int32, 0, distinctTotal+len(sequences))

	cursor := make([]int32, numEvents)
	prevBase := 0
	for si, s := range sequences {
		// Distinct events and their occurrence counts.
		touched = touched[:0]
		for _, e := range s {
			if counts[e] == 0 {
				touched = append(touched, e)
			}
			counts[e]++
			idx.instCount[e]++
		}
		sort.Slice(touched, func(a, b int) bool { return touched[a] < touched[b] })

		evBase := len(eventsArena)
		eventsArena = append(eventsArena, touched...)
		idx.seqEvents[si] = eventsArena[evBase : evBase+len(touched)]

		offBase := len(offsetsArena)
		off := int32(len(idx.posArena))
		for _, e := range touched {
			offsetsArena = append(offsetsArena, off)
			cursor[e] = off
			off += counts[e]
			seqSupport[e]++
		}
		offsetsArena = append(offsetsArena, off)
		idx.seqOffsets[si] = offsetsArena[offBase : offBase+len(touched)+1]
		idx.posArena = idx.posArena[:off]

		// Fill position lists and the prev-occurrence array in one pass.
		prev := prevArena[prevBase : prevBase+len(s)]
		prevBase += len(s)
		for j, e := range s {
			idx.posArena[cursor[e]] = int32(j)
			cursor[e]++
			prev[j] = lastSeen[e]
			lastSeen[e] = int32(j)
		}
		idx.prevOcc[si] = prev
		for _, e := range touched {
			counts[e] = 0
			lastSeen[e] = -1
		}
	}

	// Per-event postings.
	idx.postOffsets = make([]int32, numEvents+1)
	total := int32(0)
	for e := 0; e < numEvents; e++ {
		idx.postOffsets[e] = total
		total += seqSupport[e]
	}
	idx.postOffsets[numEvents] = total
	idx.postSeqs = make([]int32, total)
	postCursor := make([]int32, numEvents)
	copy(postCursor, idx.postOffsets[:numEvents])
	for si := range sequences {
		for _, e := range idx.seqEvents[si] {
			idx.postSeqs[postCursor[e]] = int32(si)
			postCursor[e]++
		}
	}
	return idx
}

// NumEvents returns the size of the event-id space covered by the index.
func (idx *PositionIndex) NumEvents() int { return idx.numEvents }

// NumSequences returns the number of indexed sequences.
func (idx *PositionIndex) NumSequences() int { return len(idx.seqEvents) }

// NumPositions returns the total number of indexed event occurrences (the
// sum of all sequence lengths). It is the O(1) index-side counterpart of
// Database.NumEvents.
func (idx *PositionIndex) NumPositions() int { return len(idx.posArena) }

// Positions returns the sorted occurrence positions of event e in sequence s,
// or nil when e does not occur there.
func (idx *PositionIndex) Positions(s int, e EventID) []int32 {
	events := idx.seqEvents[s]
	lo, hi := 0, len(events)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if events[mid] < e {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(events) || events[lo] != e {
		return nil
	}
	offs := idx.seqOffsets[s]
	return idx.posArena[offs[lo]:offs[lo+1]]
}

// SeqEvents returns the sorted distinct events of sequence s. The returned
// slice is shared and must not be modified.
func (idx *PositionIndex) SeqEvents(s int) []EventID { return idx.seqEvents[s] }

// PrevOccurrence returns the position of the previous occurrence (before pos)
// of the event located at position pos of sequence s, or -1 when pos holds its
// first occurrence.
func (idx *PositionIndex) PrevOccurrence(s, pos int) int32 { return idx.prevOcc[s][pos] }

// OccursWithin reports whether the event at position pos of sequence s also
// occurs somewhere in [lo, pos). It relies on the prev-occurrence chain, so it
// is exact only when pos holds the first occurrence at or after lo' for every
// lo' in (prevOcc, pos]; the miners always query it in that regime.
func (idx *PositionIndex) OccursWithin(s, pos, lo int) bool {
	return idx.prevOcc[s][pos] >= int32(lo)
}

// searchInt32 returns the smallest index i with positions[i] >= from.
func searchInt32(positions []int32, from int32) int {
	lo, hi := 0, len(positions)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if positions[mid] < from {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// CountInRange returns the number of occurrences of e in sequence s falling
// in the half-open position interval [lo, hi).
func (idx *PositionIndex) CountInRange(s int, e EventID, lo, hi int) int {
	if hi <= lo {
		return 0
	}
	positions := idx.Positions(s, e)
	return searchInt32(positions, int32(hi)) - searchInt32(positions, int32(lo))
}

// CountFrom returns the number of occurrences of e in sequence s at position
// from or later.
func (idx *PositionIndex) CountFrom(s int, e EventID, from int) int {
	positions := idx.Positions(s, e)
	return len(positions) - searchInt32(positions, int32(from))
}

// PositionsFrom returns the sorted occurrence positions of e in sequence s
// that are >= from.
func (idx *PositionIndex) PositionsFrom(s int, e EventID, from int) []int32 {
	positions := idx.Positions(s, e)
	return positions[searchInt32(positions, int32(from)):]
}

// NextAfter returns the smallest position >= from at which e occurs in
// sequence s, or -1 when there is none.
func (idx *PositionIndex) NextAfter(s int, e EventID, from int) int32 {
	positions := idx.Positions(s, e)
	i := searchInt32(positions, int32(from))
	if i == len(positions) {
		return -1
	}
	return positions[i]
}

// PrevBefore returns the largest position < before at which e occurs in
// sequence s, or -1 when there is none. It is the backward counterpart of
// NextAfter, used by the batched verifier's latest-embedding computation.
func (idx *PositionIndex) PrevBefore(s int, e EventID, before int) int32 {
	positions := idx.Positions(s, e)
	i := searchInt32(positions, int32(before))
	if i == 0 {
		return -1
	}
	return positions[i-1]
}

// SeqsContaining returns the sequences containing event e, in increasing
// order. The returned slice is shared and must not be modified.
func (idx *PositionIndex) SeqsContaining(e EventID) []int32 {
	return idx.postSeqs[idx.postOffsets[e]:idx.postOffsets[e+1]]
}

// EventSeqSupport returns the number of sequences containing event e.
func (idx *PositionIndex) EventSeqSupport(e EventID) int {
	return int(idx.postOffsets[e+1] - idx.postOffsets[e])
}

// EventInstanceCount returns the total number of occurrences of event e. An
// id outside the index's event-id space counts zero occurrences: with a
// shared, still-growing dictionary (the streaming case), callers routinely
// score patterns mined from a newer snapshot against an older one, and an
// event the older snapshot never saw must read as absent, not as a panic.
func (idx *PositionIndex) EventInstanceCount(e EventID) int {
	if int(e) >= len(idx.instCount) || e < 0 {
		return 0
	}
	return int(idx.instCount[e])
}

// FrequentEventsByInstanceCount returns, sorted by id, the events with at
// least min total occurrences.
func (idx *PositionIndex) FrequentEventsByInstanceCount(min int) []EventID {
	var out []EventID
	for e := 0; e < idx.numEvents; e++ {
		if int(idx.instCount[e]) >= min {
			out = append(out, EventID(e))
		}
	}
	return out
}

// FrequentEventsBySeqSupport returns, sorted by id, the events occurring in at
// least min distinct sequences.
func (idx *PositionIndex) FrequentEventsBySeqSupport(min int) []EventID {
	var out []EventID
	for e := 0; e < idx.numEvents; e++ {
		if idx.EventSeqSupport(EventID(e)) >= min {
			out = append(out, EventID(e))
		}
	}
	return out
}
