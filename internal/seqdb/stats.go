package seqdb

import (
	"fmt"
	"sort"
	"strings"
)

// Stats summarises a database. The fields mirror the parameters of the
// paper's synthetic generator (number of sequences D, average events per
// sequence C, number of distinct events N) so that generated datasets can be
// sanity-checked against their nominal configuration.
type Stats struct {
	NumSequences   int
	NumEvents      int
	DistinctEvents int
	MinLength      int
	MaxLength      int
	MeanLength     float64
	MedianLength   float64
}

// ComputeStats scans db once and returns its summary statistics.
func ComputeStats(db *Database) Stats {
	st := Stats{NumSequences: db.NumSequences()}
	if st.NumSequences == 0 {
		return st
	}
	lengths := make([]int, 0, st.NumSequences)
	distinct := make(map[EventID]struct{})
	for _, s := range db.Sequences {
		lengths = append(lengths, len(s))
		st.NumEvents += len(s)
		for _, e := range s {
			distinct[e] = struct{}{}
		}
	}
	st.DistinctEvents = len(distinct)
	sort.Ints(lengths)
	st.MinLength = lengths[0]
	st.MaxLength = lengths[len(lengths)-1]
	st.MeanLength = float64(st.NumEvents) / float64(st.NumSequences)
	mid := len(lengths) / 2
	if len(lengths)%2 == 1 {
		st.MedianLength = float64(lengths[mid])
	} else {
		st.MedianLength = float64(lengths[mid-1]+lengths[mid]) / 2
	}
	return st
}

// String renders the statistics as a small human-readable report.
func (st Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sequences=%d events=%d distinct=%d ", st.NumSequences, st.NumEvents, st.DistinctEvents)
	fmt.Fprintf(&b, "length[min=%d mean=%.1f median=%.1f max=%d]", st.MinLength, st.MeanLength, st.MedianLength, st.MaxLength)
	return b.String()
}

// LengthHistogram returns a histogram of sequence lengths with the given
// bucket width. Keys are bucket lower bounds.
func LengthHistogram(db *Database, bucket int) map[int]int {
	if bucket <= 0 {
		bucket = 1
	}
	h := make(map[int]int)
	for _, s := range db.Sequences {
		h[(len(s)/bucket)*bucket]++
	}
	return h
}

// TopEvents returns the n most frequent events (by total occurrences) with
// their counts, most frequent first. Ties break by event id for determinism.
func TopEvents(db *Database, n int) []EventCount {
	cnt := db.EventInstanceCount()
	out := make([]EventCount, 0, len(cnt))
	for e, c := range cnt {
		out = append(out, EventCount{Event: e, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Event < out[j].Event
	})
	if n >= 0 && n < len(out) {
		out = out[:n]
	}
	return out
}

// EventCount pairs an event with an occurrence count.
type EventCount struct {
	Event EventID
	Count int
}
