package seqdb

import "sort"

// Incremental maintenance of PositionIndex. A streaming ingester appends
// traces (and extends the still-open tail trace) far more often than it
// mines, so rebuilding the whole index per batch — O(total events) — is the
// wrong cost model. The methods here extend the CSR arenas in place:
//
//   - AppendSequences packs the new sequences' position lists, prev-occurrence
//     chains and headers onto the arena tails — O(new events) for the heavy
//     per-position structures. The per-event postings CSR, being ordered by
//     event rather than by sequence, cannot grow at a tail; it is re-merged
//     into fresh arrays at O(alphabet + total postings) per batch. Postings
//     hold one entry per (sequence, distinct event) pair — far smaller than
//     the position arena — and the stream ingester batches seals (FlushBatch)
//     to amortise exactly this term;
//   - AppendEvents rewrites only the tail region belonging to the still-open
//     last sequence;
//   - Snapshot hands out a consistent read-only view in O(1): appends never
//     write below a snapshot's visible arena lengths (tail rewrites that
//     would are diverted onto fresh backing arrays first), so snapshots stay
//     valid while the owner keeps appending.
//
// Every append bumps a version counter, so readers can cheaply detect that a
// live index has moved past the view they captured. All mutating methods and
// Snapshot must be called from the index's single writer (in the stream
// package, the owning shard goroutine); snapshots themselves are immutable
// and safe to share.

// Version returns the index's append epoch: 0 for a freshly built index,
// incremented by every AppendSequences/AppendEvents call. A Snapshot carries
// the version of the state it captured.
func (idx *PositionIndex) Version() uint64 { return idx.version }

// Snapshot returns a read-only view of the index's current state. The view
// is unaffected by subsequent appends to idx and is safe for concurrent use
// by any number of readers. Snapshot itself must be called by the index's
// writer (it is not safe concurrently with an append).
func (idx *PositionIndex) Snapshot() *PositionIndex {
	s := *idx
	// Appends below these watermarks would be visible to the snapshot; record
	// them on both sides so tail rewrites divert to fresh backing arrays. The
	// snapshot keeps the markers too, so that (unusually) appending to the
	// snapshot itself also forks instead of scribbling on shared arenas.
	idx.frozenSeqs = len(idx.seqEvents)
	idx.frozenPos = len(idx.posArena)
	s.frozenSeqs = idx.frozenSeqs
	s.frozenPos = idx.frozenPos
	// Clamp the snapshot's append capacity so an append through the snapshot
	// reallocates rather than writing into arena tails the live index owns.
	s.posArena = s.posArena[:len(s.posArena):len(s.posArena)]
	s.seqEvents = s.seqEvents[:len(s.seqEvents):len(s.seqEvents)]
	s.seqOffsets = s.seqOffsets[:len(s.seqOffsets):len(s.seqOffsets)]
	s.prevOcc = s.prevOcc[:len(s.prevOcc):len(s.prevOcc)]
	s.bmSlots = s.bmSlots[:len(s.bmSlots):len(s.bmSlots)]
	s.bmWords = s.bmWords[:len(s.bmWords):len(s.bmWords)]
	return &s
}

// AppendSequence extends the index with one additional sequence; see
// AppendSequences.
func (idx *PositionIndex) AppendSequence(s Sequence, numEvents int) {
	idx.AppendSequences([]Sequence{s}, numEvents)
}

// AppendSequences extends the index with additional sequences, producing
// exactly the state BuildPositionIndex would produce for the concatenated
// sequence list. numEvents widens the event-id space when the dictionary has
// grown (it is further widened by any larger id observed in the batch).
// Existing Snapshot views remain valid; the live index's version is bumped.
func (idx *PositionIndex) AppendSequences(sequences []Sequence, numEvents int) {
	if len(sequences) == 0 {
		return
	}
	for _, s := range sequences {
		for _, e := range s {
			if int(e) >= numEvents {
				numEvents = int(e) + 1
			}
		}
	}
	if numEvents < idx.numEvents {
		numEvents = idx.numEvents
	}

	// instCount is updated in place by value, not appended, so clone it: a
	// snapshot sharing the old array must keep the old counts.
	instCount := make([]int32, numEvents)
	copy(instCount, idx.instCount)
	idx.instCount = instCount
	idx.numEvents = numEvents

	totalEvents := 0
	for _, s := range sequences {
		totalEvents += len(s)
	}
	// Per-batch backing for the new sequences' headers and prev chains. Only
	// posArena must stay one physical array (offsets index it absolutely);
	// headers are reached through per-sequence slices, so each batch can own
	// its backing. Grow posArena once up front; extending its length within
	// capacity never touches entries a snapshot can see.
	if need := len(idx.posArena) + totalEvents; cap(idx.posArena) < need {
		grown := make([]int32, len(idx.posArena), need+need/4)
		copy(grown, idx.posArena)
		idx.posArena = grown
	}
	prevArena := make([]int32, totalEvents)
	prevBase := 0

	lastSeen := make([]int32, numEvents)
	for i := range lastSeen {
		lastSeen[i] = -1
	}
	counts := make([]int32, numEvents)
	cursor := make([]int32, numEvents)
	addedSupport := make([]int32, numEvents)
	touched := make([]EventID, 0, 64)

	distinctTotal := 0
	for _, s := range sequences {
		touched = touched[:0]
		for _, e := range s {
			if counts[e] == 0 {
				touched = append(touched, e)
			}
			counts[e]++
		}
		distinctTotal += len(touched)
		for _, e := range touched {
			counts[e] = 0
		}
	}
	eventsArena := make([]EventID, 0, distinctTotal)
	offsetsArena := make([]int32, 0, distinctTotal+len(sequences))

	for _, s := range sequences {
		touched = touched[:0]
		for _, e := range s {
			if counts[e] == 0 {
				touched = append(touched, e)
			}
			counts[e]++
			idx.instCount[e]++
		}
		sort.Slice(touched, func(a, b int) bool { return touched[a] < touched[b] })

		evBase := len(eventsArena)
		eventsArena = append(eventsArena, touched...)
		idx.seqEvents = append(idx.seqEvents, eventsArena[evBase:evBase+len(touched)])

		offBase := len(offsetsArena)
		off := int32(len(idx.posArena))
		for _, e := range touched {
			offsetsArena = append(offsetsArena, off)
			cursor[e] = off
			off += counts[e]
			addedSupport[e]++
		}
		offsetsArena = append(offsetsArena, off)
		idx.seqOffsets = append(idx.seqOffsets, offsetsArena[offBase:offBase+len(touched)+1])
		idx.posArena = idx.posArena[:off]

		prev := prevArena[prevBase : prevBase+len(s)]
		prevBase += len(s)
		for j, e := range s {
			idx.posArena[cursor[e]] = int32(j)
			cursor[e]++
			prev[j] = lastSeen[e]
			lastSeen[e] = int32(j)
		}
		idx.prevOcc = append(idx.prevOcc, prev)
		slots, words := idx.buildSeqBitmaps(len(idx.seqEvents)-1, len(s))
		idx.bmSlots = append(idx.bmSlots, slots)
		idx.bmWords = append(idx.bmWords, words)
		for _, e := range touched {
			counts[e] = 0
			lastSeen[e] = -1
		}
	}

	idx.mergePostings(len(idx.seqEvents)-len(sequences), addedSupport)
	idx.version++
}

// AppendEvents extends the index's last sequence. extended must be the full
// contents of that sequence after the extension (its previously indexed
// prefix unchanged); the Database wrapper guarantees this. Only the tail
// region belonging to the last sequence is rewritten, diverted onto fresh
// backing first when a Snapshot still covers it.
func (idx *PositionIndex) AppendEvents(extended Sequence, numEvents int) {
	si := len(idx.seqEvents) - 1
	if si < 0 {
		idx.AppendSequences([]Sequence{extended}, numEvents)
		return
	}

	regionStart := int(idx.seqOffsets[si][0])
	// Copy-on-write: a snapshot taken after the last sequence was appended
	// still reads the arena region, headers and counters we are about to
	// rewrite, so divert those onto fresh backing first.
	if si < idx.frozenSeqs {
		idx.seqEvents = append([][]EventID(nil), idx.seqEvents...)
		idx.seqOffsets = append([][]int32(nil), idx.seqOffsets...)
		idx.prevOcc = append([][]int32(nil), idx.prevOcc...)
		idx.bmSlots = append([][]int32(nil), idx.bmSlots...)
		idx.bmWords = append([][]uint64(nil), idx.bmWords...)
		idx.frozenSeqs = si
	}
	if regionStart < idx.frozenPos {
		idx.posArena = append(make([]int32, 0, len(idx.posArena)+len(extended)), idx.posArena[:regionStart]...)
		idx.frozenPos = regionStart
	}
	idx.instCount = append([]int32(nil), idx.instCount...)

	// Retract the last sequence's contribution — occurrence counts and its
	// postings entries (as the highest sequence id it sits at the tail of
	// every per-event segment) — then re-append it extended.
	offs := idx.seqOffsets[si]
	removed := idx.seqEvents[si]
	for k, e := range removed {
		idx.instCount[e] -= offs[k+1] - offs[k]
	}
	idx.dropLastFromPostings(si, removed)
	idx.posArena = idx.posArena[:regionStart]
	idx.seqEvents = idx.seqEvents[:si]
	idx.seqOffsets = idx.seqOffsets[:si]
	idx.prevOcc = idx.prevOcc[:si]
	idx.bmSlots = idx.bmSlots[:si]
	idx.bmWords = idx.bmWords[:si]

	idx.AppendSequences([]Sequence{extended}, numEvents)
}

// dropLastFromPostings rebuilds the postings CSR without sequence si, whose
// distinct events are given. si must be the highest indexed sequence, so its
// entry is the tail of each affected per-event segment. Fresh arrays are
// allocated; postings shared with snapshots are never written.
func (idx *PositionIndex) dropLastFromPostings(si int, removed []EventID) {
	numEvents := len(idx.postOffsets) - 1
	drop := make(map[EventID]bool, len(removed))
	for _, e := range removed {
		drop[e] = true
	}
	newOffsets := make([]int32, numEvents+1)
	newSeqs := make([]int32, 0, len(idx.postSeqs)-len(removed))
	for e := 0; e < numEvents; e++ {
		newOffsets[e] = int32(len(newSeqs))
		seg := idx.postSeqs[idx.postOffsets[e]:idx.postOffsets[e+1]]
		if drop[EventID(e)] {
			seg = seg[:len(seg)-1]
		}
		newSeqs = append(newSeqs, seg...)
	}
	newOffsets[numEvents] = int32(len(newSeqs))
	idx.postOffsets = newOffsets
	idx.postSeqs = newSeqs
}

// mergePostings rebuilds the per-event postings CSR after firstNew (the index
// of the first newly appended sequence), merging the old per-event segments
// with the new sequences' distinct events. addedSupport[e] is the number of
// new sequences containing e. It allocates fresh arrays, so postings shared
// with snapshots are never written.
func (idx *PositionIndex) mergePostings(firstNew int, addedSupport []int32) {
	numEvents := idx.numEvents
	oldOffsets := idx.postOffsets
	oldSeqs := idx.postSeqs
	oldNum := len(oldOffsets) - 1
	if oldNum < 0 {
		oldNum = 0
	}

	newOffsets := make([]int32, numEvents+1)
	total := int32(0)
	for e := 0; e < numEvents; e++ {
		newOffsets[e] = total
		if e < oldNum {
			total += oldOffsets[e+1] - oldOffsets[e]
		}
		total += addedSupport[e]
	}
	newOffsets[numEvents] = total

	newSeqs := make([]int32, total)
	cursor := make([]int32, numEvents)
	for e := 0; e < numEvents; e++ {
		cursor[e] = newOffsets[e]
		if e < oldNum {
			n := copy(newSeqs[cursor[e]:], oldSeqs[oldOffsets[e]:oldOffsets[e+1]])
			cursor[e] += int32(n)
		}
	}
	for si := firstNew; si < len(idx.seqEvents); si++ {
		for _, e := range idx.seqEvents[si] {
			newSeqs[cursor[e]] = int32(si)
			cursor[e]++
		}
	}
	idx.postOffsets = newOffsets
	idx.postSeqs = newSeqs
}
