// Package seqdb provides the sequence-database substrate used by every miner
// in this repository. A program execution trace is modelled as a Sequence of
// Events; a set of traces (for example, one trace per test case of a test
// suite) forms a Database.
//
// Events are interned: the textual name of a method invocation (for example
// "TxManager.begin") is mapped to a small integer EventID by a Dictionary.
// All mining algorithms operate on EventIDs; names are only materialised when
// results are rendered for humans.
package seqdb

import (
	"fmt"
	"sort"
	"sync"
)

// EventID is the interned identifier of a distinct event (a method
// invocation, system call, screen id, alarm code, ...). IDs are dense and
// start at 0, which lets hot paths index slices by EventID.
type EventID int32

// NoEvent is returned by lookups that fail to resolve a name.
const NoEvent EventID = -1

// Dictionary interns event names to EventIDs and back. The zero value is not
// ready to use; call NewDictionary.
//
// A Dictionary is safe for concurrent use: the streaming ingester interns
// fresh traffic on caller goroutines while shard goroutines consult Size
// during index flushes. Mining hot paths never touch the dictionary (they
// operate on EventIDs), so the lock is outside every profile that matters.
type Dictionary struct {
	mu     sync.RWMutex
	byName map[string]EventID
	names  []string

	// onIntern, when set, observes every fresh id assignment while the lock
	// is held, so observers see assignments in exact id order. The durability
	// layer uses it to write dictionary WAL records.
	onIntern func(id EventID, name string)
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{byName: make(map[string]EventID)}
}

// Intern returns the EventID for name, assigning a fresh one if the name has
// not been seen before.
func (d *Dictionary) Intern(name string) EventID {
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.byName[name]; ok {
		return id
	}
	id := EventID(len(d.names))
	d.byName[name] = id
	d.names = append(d.names, name)
	if d.onIntern != nil {
		d.onIntern(id, name)
	}
	return id
}

// OnIntern installs (or, with nil, removes) a hook invoked for every fresh id
// assignment. The hook runs with the dictionary's lock held, so invocations
// arrive serialised in exact id order even under concurrent interning; it
// must not call back into the dictionary. The durability layer uses it to
// append dictionary records to its write-ahead log before any trace record
// referencing the new id can be written.
func (d *Dictionary) OnIntern(hook func(id EventID, name string)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.onIntern = hook
}

// Lookup returns the EventID previously assigned to name, or NoEvent if the
// name was never interned.
func (d *Dictionary) Lookup(name string) EventID {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if id, ok := d.byName[name]; ok {
		return id
	}
	return NoEvent
}

// Name returns the textual name of id. Unknown ids render as "ev<id>" so that
// results remain printable even when a dictionary is absent or incomplete.
func (d *Dictionary) Name(id EventID) string {
	if d == nil {
		return fmt.Sprintf("ev%d", int(id))
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	if id < 0 || int(id) >= len(d.names) {
		return fmt.Sprintf("ev%d", int(id))
	}
	return d.names[id]
}

// Size returns the number of distinct interned events.
func (d *Dictionary) Size() int {
	if d == nil {
		return 0
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.names)
}

// Names returns a copy of all interned names, indexed by EventID.
func (d *Dictionary) Names() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, len(d.names))
	copy(out, d.names)
	return out
}

// Clone returns an independent copy of the dictionary.
func (d *Dictionary) Clone() *Dictionary {
	c := NewDictionary()
	c.names = append(c.names, d.Names()...)
	for i, n := range c.names {
		c.byName[n] = EventID(i)
	}
	return c
}

// Export returns the interned names in id-assignment order — index i is the
// name of EventID(i). This, not SortedNames, is the persistence format: ids
// are positional, so a save/load cycle must replay names in the exact order
// they were assigned or every stored trace would silently remap its events.
func (d *Dictionary) Export() []string { return d.Names() }

// Import replays an exported name list into the dictionary, reproducing the
// original id assignment. The dictionary's existing contents must be a prefix
// of names (an empty dictionary always qualifies); the remainder is appended.
// A mismatched prefix or a duplicate inside names is an error, because either
// would remap ids out from under already-encoded traces. Import never invokes
// the OnIntern hook: imported names are by definition already persisted.
func (d *Dictionary) Import(names []string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.names) > len(names) {
		return fmt.Errorf("seqdb: dictionary import: %d existing names exceed the %d imported", len(d.names), len(names))
	}
	for i, n := range d.names {
		if n != names[i] {
			return fmt.Errorf("seqdb: dictionary import: id %d is %q here but %q in the import", i, n, names[i])
		}
	}
	for i := len(d.names); i < len(names); i++ {
		n := names[i]
		if prev, ok := d.byName[n]; ok {
			return fmt.Errorf("seqdb: dictionary import: duplicate name %q (ids %d and %d)", n, prev, i)
		}
		d.byName[n] = EventID(i)
		d.names = append(d.names, n)
	}
	return nil
}

// SortedNames returns all interned names in lexicographic order. It is used
// by deterministic renderers and tests.
func (d *Dictionary) SortedNames() []string {
	out := d.Names()
	sort.Strings(out)
	return out
}
