// Package seqdb provides the sequence-database substrate used by every miner
// in this repository. A program execution trace is modelled as a Sequence of
// Events; a set of traces (for example, one trace per test case of a test
// suite) forms a Database.
//
// Events are interned: the textual name of a method invocation (for example
// "TxManager.begin") is mapped to a small integer EventID by a Dictionary.
// All mining algorithms operate on EventIDs; names are only materialised when
// results are rendered for humans.
package seqdb

import (
	"fmt"
	"sort"
	"sync"
)

// EventID is the interned identifier of a distinct event (a method
// invocation, system call, screen id, alarm code, ...). IDs are dense and
// start at 0, which lets hot paths index slices by EventID.
type EventID int32

// NoEvent is returned by lookups that fail to resolve a name.
const NoEvent EventID = -1

// numDictShards is the stripe count of the interning table. Streaming ingest
// interns from many producer goroutines at once with a high hit rate; 16
// hash-striped read-write locks keep those hits from serialising on a single
// mutex while staying small enough that Import/Clone (which take every
// stripe) remain cheap.
const numDictShards = 16

// dictShard is one stripe of the name table, padded so neighbouring stripes'
// locks never share a cache line.
type dictShard struct {
	mu     sync.RWMutex
	byName map[string]EventID
	_      [32]byte
}

// Dictionary interns event names to EventIDs and back. The zero value is not
// ready to use; call NewDictionary.
//
// A Dictionary is safe for concurrent use: the streaming ingester interns
// fresh traffic on caller goroutines while shard goroutines consult Size
// during index flushes. The name table is striped across hash shards so
// concurrent hits (the overwhelming case in steady-state ingest) proceed in
// parallel; only fresh assignments serialise, on the assign lock that keeps
// ids dense and in discovery order. Mining hot paths never touch the
// dictionary (they operate on EventIDs), so no lock here is inside the
// profiles that matter.
type Dictionary struct {
	shards [numDictShards]dictShard

	// assignMu guards names and the hook. Lock order is shard lock first,
	// assign lock second (Import takes all shard locks, in index order, before
	// the assign lock).
	assignMu sync.RWMutex
	names    []string

	// onIntern, when set, observes every fresh id assignment while the assign
	// lock is held, so observers see assignments in exact id order. The
	// durability layer uses it to write dictionary WAL records.
	onIntern func(id EventID, name string)
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	d := &Dictionary{}
	for i := range d.shards {
		d.shards[i].byName = make(map[string]EventID)
	}
	return d
}

// dictShardOf hashes a name onto its stripe (FNV-1a, truncated).
func dictShardOf(name string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h = (h ^ uint32(name[i])) * 16777619
	}
	return h & (numDictShards - 1)
}

// Intern returns the EventID for name, assigning a fresh one if the name has
// not been seen before.
func (d *Dictionary) Intern(name string) EventID {
	sh := &d.shards[dictShardOf(name)]
	sh.mu.RLock()
	id, ok := sh.byName[name]
	sh.mu.RUnlock()
	if ok {
		return id
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if id, ok := sh.byName[name]; ok {
		return id
	}
	// Fresh name: the assign lock makes (id allocation, hook invocation)
	// atomic, so the durability hook sees assignments in exact id order even
	// when other shards assign concurrently. The id is published to the shard
	// map only after the hook returns — no reader can observe (and persist a
	// trace against) an id whose dictionary record is not yet logged.
	d.assignMu.Lock()
	id = EventID(len(d.names))
	d.names = append(d.names, name)
	if d.onIntern != nil {
		d.onIntern(id, name)
	}
	d.assignMu.Unlock()
	sh.byName[name] = id
	return id
}

// OnIntern installs (or, with nil, removes) a hook invoked for every fresh id
// assignment. The hook runs with the dictionary's assign lock held, so
// invocations arrive serialised in exact id order even under concurrent
// interning; it must not call back into the dictionary. The durability layer
// uses it to append dictionary records to its write-ahead log before any
// trace record referencing the new id can be written.
func (d *Dictionary) OnIntern(hook func(id EventID, name string)) {
	d.assignMu.Lock()
	defer d.assignMu.Unlock()
	d.onIntern = hook
}

// Lookup returns the EventID previously assigned to name, or NoEvent if the
// name was never interned.
func (d *Dictionary) Lookup(name string) EventID {
	sh := &d.shards[dictShardOf(name)]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if id, ok := sh.byName[name]; ok {
		return id
	}
	return NoEvent
}

// Name returns the textual name of id. Unknown ids render as "ev<id>" so that
// results remain printable even when a dictionary is absent or incomplete.
func (d *Dictionary) Name(id EventID) string {
	if d == nil {
		return fmt.Sprintf("ev%d", int(id))
	}
	d.assignMu.RLock()
	defer d.assignMu.RUnlock()
	if id < 0 || int(id) >= len(d.names) {
		return fmt.Sprintf("ev%d", int(id))
	}
	return d.names[id]
}

// Size returns the number of distinct interned events.
func (d *Dictionary) Size() int {
	if d == nil {
		return 0
	}
	d.assignMu.RLock()
	defer d.assignMu.RUnlock()
	return len(d.names)
}

// Names returns a copy of all interned names, indexed by EventID.
func (d *Dictionary) Names() []string {
	d.assignMu.RLock()
	defer d.assignMu.RUnlock()
	out := make([]string, len(d.names))
	copy(out, d.names)
	return out
}

// Clone returns an independent copy of the dictionary.
func (d *Dictionary) Clone() *Dictionary {
	c := NewDictionary()
	c.names = d.Names()
	for i, n := range c.names {
		c.shards[dictShardOf(n)].byName[n] = EventID(i)
	}
	return c
}

// Export returns the interned names in id-assignment order — index i is the
// name of EventID(i). This, not SortedNames, is the persistence format: ids
// are positional, so a save/load cycle must replay names in the exact order
// they were assigned or every stored trace would silently remap its events.
func (d *Dictionary) Export() []string { return d.Names() }

// Import replays an exported name list into the dictionary, reproducing the
// original id assignment. The dictionary's existing contents must be a prefix
// of names (an empty dictionary always qualifies); the remainder is appended.
// A mismatched prefix or a duplicate inside names is an error, because either
// would remap ids out from under already-encoded traces. Import never invokes
// the OnIntern hook: imported names are by definition already persisted.
func (d *Dictionary) Import(names []string) error {
	// Quiesce the whole dictionary: every stripe in index order, then the
	// assign lock — the same shard-before-assign order Intern uses.
	for i := range d.shards {
		d.shards[i].mu.Lock()
		defer d.shards[i].mu.Unlock()
	}
	d.assignMu.Lock()
	defer d.assignMu.Unlock()
	if len(d.names) > len(names) {
		return fmt.Errorf("seqdb: dictionary import: %d existing names exceed the %d imported", len(d.names), len(names))
	}
	for i, n := range d.names {
		if n != names[i] {
			return fmt.Errorf("seqdb: dictionary import: id %d is %q here but %q in the import", i, n, names[i])
		}
	}
	for i := len(d.names); i < len(names); i++ {
		n := names[i]
		sh := &d.shards[dictShardOf(n)]
		if prev, ok := sh.byName[n]; ok {
			return fmt.Errorf("seqdb: dictionary import: duplicate name %q (ids %d and %d)", n, prev, i)
		}
		sh.byName[n] = EventID(i)
		d.names = append(d.names, n)
	}
	return nil
}

// SortedNames returns all interned names in lexicographic order. It is used
// by deterministic renderers and tests.
func (d *Dictionary) SortedNames() []string {
	out := d.Names()
	sort.Strings(out)
	return out
}
