package seqdb

import (
	"math/rand"
	"testing"
)

func randomIndexDB(rng *rand.Rand, numSeqs, maxLen, alphabet int) *Database {
	db := NewDatabase()
	for i := 0; i < alphabet; i++ {
		db.Dict.Intern(string(rune('a'+i%26)) + string(rune('0'+i/26)))
	}
	for i := 0; i < numSeqs; i++ {
		n := rng.Intn(maxLen + 1)
		s := make(Sequence, n)
		for j := range s {
			s[j] = EventID(rng.Intn(alphabet))
		}
		db.Append(s)
	}
	return db
}

func TestPositionIndexMatchesMapIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 50; iter++ {
		db := randomIndexDB(rng, 1+rng.Intn(6), 12, 1+rng.Intn(8))
		idx := db.FlatIndex()
		legacy := db.Index()
		if idx.NumSequences() != len(db.Sequences) {
			t.Fatalf("NumSequences=%d want %d", idx.NumSequences(), len(db.Sequences))
		}
		for si := range db.Sequences {
			for e := EventID(0); e < EventID(db.Dict.Size()); e++ {
				want := legacy[si][e]
				got := idx.Positions(si, e)
				if len(got) != len(want) {
					t.Fatalf("seq %d event %d: positions %v want %v", si, e, got, want)
				}
				for k := range want {
					if int(got[k]) != want[k] {
						t.Fatalf("seq %d event %d: positions %v want %v", si, e, got, want)
					}
				}
			}
		}
	}
}

func TestPositionIndexPrevOccurrence(t *testing.T) {
	db := NewDatabase()
	db.AppendNames("a", "b", "a", "c", "b", "a")
	idx := db.FlatIndex()
	want := []int32{-1, -1, 0, -1, 1, 2}
	for j, w := range want {
		if got := idx.PrevOccurrence(0, j); got != w {
			t.Errorf("PrevOccurrence(0,%d)=%d want %d", j, got, w)
		}
	}
	if !idx.OccursWithin(0, 2, 0) {
		t.Errorf("a at position 2 occurs within [0,2)")
	}
	if idx.OccursWithin(0, 2, 1) {
		t.Errorf("a at position 2 does not occur within [1,2)")
	}
}

func TestPositionIndexRangeQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 30; iter++ {
		db := randomIndexDB(rng, 3, 15, 5)
		idx := db.FlatIndex()
		for si, s := range db.Sequences {
			for e := EventID(0); e < EventID(db.Dict.Size()); e++ {
				for lo := 0; lo <= len(s); lo++ {
					for hi := lo; hi <= len(s); hi++ {
						want := 0
						for j := lo; j < hi; j++ {
							if s[j] == e {
								want++
							}
						}
						if got := idx.CountInRange(si, e, lo, hi); got != want {
							t.Fatalf("CountInRange(seq %d, ev %d, %d, %d)=%d want %d (s=%v)", si, e, lo, hi, got, want, s)
						}
					}
					wantFrom := 0
					wantNext := int32(-1)
					for j := len(s) - 1; j >= lo; j-- {
						if s[j] == e {
							wantFrom++
							wantNext = int32(j)
						}
					}
					if got := idx.CountFrom(si, e, lo); got != wantFrom {
						t.Fatalf("CountFrom(seq %d, ev %d, %d)=%d want %d", si, e, lo, got, wantFrom)
					}
					if got := idx.NextAfter(si, e, lo); got != wantNext {
						t.Fatalf("NextAfter(seq %d, ev %d, %d)=%d want %d", si, e, lo, got, wantNext)
					}
					wantPrev := int32(-1)
					for j := 0; j < lo; j++ {
						if s[j] == e {
							wantPrev = int32(j)
						}
					}
					if got := idx.PrevBefore(si, e, lo); got != wantPrev {
						t.Fatalf("PrevBefore(seq %d, ev %d, %d)=%d want %d", si, e, lo, got, wantPrev)
					}
				}
			}
		}
	}
}

func TestPositionIndexPostingsAndSupports(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for iter := 0; iter < 30; iter++ {
		db := randomIndexDB(rng, 1+rng.Intn(8), 10, 1+rng.Intn(6))
		idx := db.FlatIndex()
		seqSup := db.EventSupport()
		instCnt := db.EventInstanceCount()
		for e := EventID(0); e < EventID(db.Dict.Size()); e++ {
			if got := idx.EventSeqSupport(e); got != seqSup[e] {
				t.Fatalf("EventSeqSupport(%d)=%d want %d", e, got, seqSup[e])
			}
			if got := idx.EventInstanceCount(e); got != instCnt[e] {
				t.Fatalf("EventInstanceCount(%d)=%d want %d", e, got, instCnt[e])
			}
			seqs := idx.SeqsContaining(e)
			if len(seqs) != seqSup[e] {
				t.Fatalf("SeqsContaining(%d) has %d entries want %d", e, len(seqs), seqSup[e])
			}
			for k, si := range seqs {
				if k > 0 && seqs[k-1] >= si {
					t.Fatalf("SeqsContaining(%d) not strictly increasing: %v", e, seqs)
				}
				if len(idx.Positions(int(si), e)) == 0 {
					t.Fatalf("SeqsContaining(%d) lists seq %d without occurrences", e, si)
				}
			}
		}
		for minSup := 1; minSup <= 4; minSup++ {
			want := db.FrequentEventsByInstances(minSup)
			got := idx.FrequentEventsByInstanceCount(minSup)
			if len(got) != len(want) {
				t.Fatalf("FrequentEventsByInstanceCount(%d)=%v want %v", minSup, got, want)
			}
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("FrequentEventsByInstanceCount(%d)=%v want %v", minSup, got, want)
				}
			}
			wantSeq := db.FrequentEvents(minSup)
			gotSeq := idx.FrequentEventsBySeqSupport(minSup)
			if len(gotSeq) != len(wantSeq) {
				t.Fatalf("FrequentEventsBySeqSupport(%d)=%v want %v", minSup, gotSeq, wantSeq)
			}
			for k := range wantSeq {
				if gotSeq[k] != wantSeq[k] {
					t.Fatalf("FrequentEventsBySeqSupport(%d)=%v want %v", minSup, gotSeq, wantSeq)
				}
			}
		}
	}
}

// TestPositionIndexSeqProbes pins the planner's presence probes: SeqContains
// against a brute-force scan (out-of-range ids read as absent) and SeqLen
// against the raw sequences.
func TestPositionIndexSeqProbes(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for iter := 0; iter < 30; iter++ {
		db := randomIndexDB(rng, 1+rng.Intn(8), 10, 1+rng.Intn(6))
		idx := db.FlatIndex()
		for s, seq := range db.Sequences {
			if got := idx.SeqLen(s); got != len(seq) {
				t.Fatalf("SeqLen(%d)=%d want %d", s, got, len(seq))
			}
			for e := EventID(0); e < EventID(db.Dict.Size()); e++ {
				want := false
				for _, ev := range seq {
					if ev == e {
						want = true
						break
					}
				}
				if got := idx.SeqContains(s, e); got != want {
					t.Fatalf("SeqContains(%d, %d)=%v want %v", s, e, got, want)
				}
			}
			if idx.SeqContains(s, EventID(db.Dict.Size())) || idx.SeqContains(s, -1) {
				t.Fatalf("SeqContains out-of-range id reported present in seq %d", s)
			}
		}
	}
}

func TestFlatIndexCacheInvalidation(t *testing.T) {
	db := NewDatabase()
	db.AppendNames("a", "b")
	idx1 := db.FlatIndex()
	if idx1 != db.FlatIndex() {
		t.Errorf("FlatIndex not cached")
	}
	if idx1.Version() != 0 {
		t.Errorf("fresh index version %d want 0", idx1.Version())
	}
	db.AppendNames("c")
	idx2 := db.FlatIndex()
	if idx2.Version() == 0 {
		t.Errorf("appending did not bump the index version")
	}
	if idx2.NumSequences() != 2 {
		t.Errorf("extended index has %d sequences want 2", idx2.NumSequences())
	}
	if got := idx2.Positions(1, db.Dict.Lookup("c")); len(got) != 1 || got[0] != 0 {
		t.Errorf("extended index misses the appended sequence: %v", got)
	}
}
