package seqdb

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestSequenceBlockRoundTrip(t *testing.T) {
	cases := []Sequence{
		nil,
		{},
		{0},
		{5},
		{0, 0, 0, 0},
		{1, 1, 2, 2, 2, 1, 7, 7, 0},
		{1000000, 0, 1000000},
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		s := make(Sequence, rng.Intn(300))
		for j := range s {
			if j > 0 && rng.Intn(3) == 0 {
				s[j] = s[j-1] // force runs
			} else {
				s[j] = EventID(rng.Intn(40))
			}
		}
		cases = append(cases, s)
	}

	var buf []byte
	var lens []int
	for _, s := range cases {
		before := len(buf)
		buf = AppendSequenceBlock(buf, s)
		lens = append(lens, len(buf)-before)
	}
	// Blocks are self-delimiting: decode them back to back from one buffer.
	off := 0
	for i, want := range cases {
		got, n, err := DecodeSequenceBlock(buf[off:])
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if n != lens[i] {
			t.Fatalf("case %d: consumed %d bytes want %d", i, n, lens[i])
		}
		if len(got) != len(want) {
			t.Fatalf("case %d: %d events want %d", i, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("case %d: event %d is %d want %d", i, j, got[j], want[j])
			}
		}
		off += n
	}
	if off != len(buf) {
		t.Fatalf("decoded %d of %d bytes", off, len(buf))
	}
}

// TestSequenceBlockTruncation: every strict prefix of a valid block must fail
// to decode — a partially written block never surfaces as a shorter trace.
func TestSequenceBlockTruncation(t *testing.T) {
	s := Sequence{3, 3, 3, 9, 1, 1, 250, 250, 4}
	buf := AppendSequenceBlock(nil, s)
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := DecodeSequenceBlock(buf[:cut]); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", cut, len(buf))
		}
	}
}

func TestSequenceBlockRejectsCorruptCounts(t *testing.T) {
	// Declared count far beyond what the runs deliver must error, and a run
	// overflowing the declared count must error.
	overflow := AppendSequenceBlock(nil, Sequence{1, 1, 1})
	overflow[0] = 2 // claim 2 events, runs deliver 3
	if _, _, err := DecodeSequenceBlock(overflow); err == nil {
		t.Fatal("run overflowing the declared count decoded without error")
	}
	huge := []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f} // count ~2^62, no runs
	if _, _, err := DecodeSequenceBlock(huge); err == nil {
		t.Fatal("huge truncated count decoded without error")
	}
}

// TestDictionaryExportImportRoundTrip is the id-stability contract of the
// durable store: Export lists names in id-assignment order (not sorted!), and
// Import reproduces the exact same assignment, so segment files encoded
// against the old dictionary stay valid under the new one.
func TestDictionaryExportImportRoundTrip(t *testing.T) {
	d := NewDictionary()
	// Deliberately intern in non-lexicographic order: a sorted export would
	// remap every id and the round trip below would catch it.
	names := []string{"z.close", "a.open", "m.commit", "z.abort", "b.begin"}
	for _, n := range names {
		d.Intern(n)
	}
	exported := d.Export()
	if len(exported) != len(names) {
		t.Fatalf("exported %d names want %d", len(exported), len(names))
	}
	for i, n := range names {
		if exported[i] != n {
			t.Fatalf("export[%d] = %q want %q (export must be id order, not sorted)", i, exported[i], n)
		}
	}

	fresh := NewDictionary()
	if err := fresh.Import(exported); err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if fresh.Lookup(n) != d.Lookup(n) {
			t.Fatalf("%q maps to %d after import, was %d", n, fresh.Lookup(n), d.Lookup(n))
		}
	}
	// Import into a dictionary already holding a matching prefix extends it.
	partial := NewDictionary()
	partial.Intern(names[0])
	partial.Intern(names[1])
	if err := partial.Import(exported); err != nil {
		t.Fatal(err)
	}
	if partial.Size() != len(names) || partial.Lookup("b.begin") != d.Lookup("b.begin") {
		t.Fatalf("prefix import diverged: size %d", partial.Size())
	}
	// Conflicting prefix and duplicates must be rejected.
	bad := NewDictionary()
	bad.Intern("something.else")
	if err := bad.Import(exported); err == nil {
		t.Fatal("conflicting prefix imported without error")
	}
	dup := NewDictionary()
	if err := dup.Import([]string{"x", "y", "x"}); err == nil {
		t.Fatal("duplicate name imported without error")
	}
}

// TestDictionaryInternHookOrder: the OnIntern hook must observe fresh
// assignments in exact id order — it is how the store's dictionary WAL stays
// a faithful replay log.
func TestDictionaryInternHookOrder(t *testing.T) {
	d := NewDictionary()
	var seen []string
	var ids []EventID
	d.OnIntern(func(id EventID, name string) {
		ids = append(ids, id)
		seen = append(seen, name)
	})
	d.Intern("a")
	d.Intern("b")
	d.Intern("a") // re-intern: no hook
	d.Intern("c")
	d.OnIntern(nil)
	d.Intern("d") // hook removed: no call
	if want := []string{"a", "b", "c"}; len(seen) != len(want) {
		t.Fatalf("hook saw %v want %v", seen, want)
	}
	for i, id := range ids {
		if int(id) != i {
			t.Fatalf("hook id order %v not sequential", ids)
		}
	}
	var buf bytes.Buffer
	for _, n := range seen {
		buf.WriteString(n)
	}
	if buf.String() != "abc" {
		t.Fatalf("hook order %q want %q", buf.String(), "abc")
	}
}
