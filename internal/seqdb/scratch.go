package seqdb

// Scratch helpers shared by the mining hot paths. Both miners collect
// per-event extension buckets at every search-tree node; doing that with maps
// dominates the profile, so they use epoch-stamped dense arrays instead:
// bumping an epoch invalidates every entry at once and no clearing pass is
// ever needed between nodes. The subtle part — handling the (practically
// unreachable) epoch wraparound so stale stamps can never alias a fresh
// epoch — lives here exactly once.

// BumpEpoch advances an epoch counter, clearing the stamp arrays on uint32
// wraparound, and returns the new epoch.
func BumpEpoch(epoch *uint32, stamps ...[]uint32) uint32 {
	*epoch++
	if *epoch == 0 {
		for _, s := range stamps {
			clear(s)
		}
		*epoch = 1
	}
	return *epoch
}

// EventSlots assigns dense slot numbers to the distinct events touched while
// scanning one search-tree node, and counts occurrences per slot. Begin
// resets it in O(1); Add is O(1) per event.
type EventSlots struct {
	slotOf []int32
	stamp  []uint32
	epoch  uint32
	events []EventID
	counts []int32
}

// NewEventSlots returns slots for an event-id space of size numEvents.
func NewEventSlots(numEvents int) EventSlots {
	return EventSlots{
		slotOf: make([]int32, numEvents),
		stamp:  make([]uint32, numEvents),
	}
}

// Begin starts a new node: all previous slot assignments become invalid.
func (es *EventSlots) Begin() {
	BumpEpoch(&es.epoch, es.stamp)
	es.events = es.events[:0]
	es.counts = es.counts[:0]
}

// Add counts one occurrence of ev, assigning it a slot on first sight, and
// returns the slot.
func (es *EventSlots) Add(ev EventID) int32 {
	if es.stamp[ev] == es.epoch {
		s := es.slotOf[ev]
		es.counts[s]++
		return s
	}
	s := int32(len(es.events))
	es.stamp[ev] = es.epoch
	es.slotOf[ev] = s
	es.events = append(es.events, ev)
	es.counts = append(es.counts, 1)
	return s
}

// AddN counts n occurrences of ev at once, assigning it a slot on first
// sight, and returns the slot. It is Add generalised to weighted counting
// (the episode miner accumulates window counts rather than occurrences).
func (es *EventSlots) AddN(ev EventID, n int32) int32 {
	if es.stamp[ev] == es.epoch {
		s := es.slotOf[ev]
		es.counts[s] += n
		return s
	}
	s := int32(len(es.events))
	es.stamp[ev] = es.epoch
	es.slotOf[ev] = s
	es.events = append(es.events, ev)
	es.counts = append(es.counts, n)
	return s
}

// Slot returns the slot previously assigned to ev by Add in the current
// node. It must only be called for events already added.
func (es *EventSlots) Slot(ev EventID) int32 { return es.slotOf[ev] }

// Len returns the number of distinct events added in the current node.
func (es *EventSlots) Len() int { return len(es.events) }

// Event returns the event occupying the given slot.
func (es *EventSlots) Event(slot int) EventID { return es.events[slot] }

// Count returns the occurrence count of the given slot.
func (es *EventSlots) Count(slot int) int32 { return es.counts[slot] }

// Hash64 is an incremental FNV-1a hasher for the miners' landmark
// signatures; unlike hash/fnv it lives on the stack and allocates nothing.
type Hash64 uint64

// NewHash64 returns the FNV-1a offset basis.
func NewHash64() Hash64 { return 14695981039346656037 }

// Mix32 folds the four bytes of v into the hash, least significant first
// (byte-compatible with writing the little-endian encoding to hash/fnv).
func (h Hash64) Mix32(v int32) Hash64 {
	const prime64 = 1099511628211
	h = (h ^ Hash64(byte(v))) * prime64
	h = (h ^ Hash64(byte(v>>8))) * prime64
	h = (h ^ Hash64(byte(v>>16))) * prime64
	h = (h ^ Hash64(byte(v>>24))) * prime64
	return h
}

// Mix16 folds the low two bytes of v into the hash, least significant first.
func (h Hash64) Mix16(v int32) Hash64 {
	const prime64 = 1099511628211
	h = (h ^ Hash64(byte(v))) * prime64
	h = (h ^ Hash64(byte(v>>8))) * prime64
	return h
}
