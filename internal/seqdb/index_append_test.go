package seqdb

import (
	"math/rand"
	"sync"
	"testing"
)

// requireIndexEqual asserts that two indexes hold identical logical state:
// every header, arena region, posting list and counter matches what the other
// holds. An incrementally appended index must be indistinguishable from a
// fresh BuildPositionIndex over the same sequences.
func requireIndexEqual(t *testing.T, label string, got, want *PositionIndex) {
	t.Helper()
	if got.numEvents != want.numEvents {
		t.Fatalf("%s: numEvents %d want %d", label, got.numEvents, want.numEvents)
	}
	if got.NumSequences() != want.NumSequences() {
		t.Fatalf("%s: NumSequences %d want %d", label, got.NumSequences(), want.NumSequences())
	}
	if len(got.posArena) != len(want.posArena) {
		t.Fatalf("%s: posArena length %d want %d", label, len(got.posArena), len(want.posArena))
	}
	for i := range want.posArena {
		if got.posArena[i] != want.posArena[i] {
			t.Fatalf("%s: posArena[%d]=%d want %d", label, i, got.posArena[i], want.posArena[i])
		}
	}
	for si := range want.seqEvents {
		if len(got.seqEvents[si]) != len(want.seqEvents[si]) {
			t.Fatalf("%s: seq %d: %d distinct events want %d", label, si, len(got.seqEvents[si]), len(want.seqEvents[si]))
		}
		for k := range want.seqEvents[si] {
			if got.seqEvents[si][k] != want.seqEvents[si][k] {
				t.Fatalf("%s: seq %d: seqEvents[%d]=%d want %d", label, si, k, got.seqEvents[si][k], want.seqEvents[si][k])
			}
			if got.seqOffsets[si][k] != want.seqOffsets[si][k] {
				t.Fatalf("%s: seq %d: seqOffsets[%d]=%d want %d", label, si, k, got.seqOffsets[si][k], want.seqOffsets[si][k])
			}
		}
		if g, w := got.seqOffsets[si][len(got.seqEvents[si])], want.seqOffsets[si][len(want.seqEvents[si])]; g != w {
			t.Fatalf("%s: seq %d: offset sentinel %d want %d", label, si, g, w)
		}
		if len(got.prevOcc[si]) != len(want.prevOcc[si]) {
			t.Fatalf("%s: seq %d: prevOcc length %d want %d", label, si, len(got.prevOcc[si]), len(want.prevOcc[si]))
		}
		for j := range want.prevOcc[si] {
			if got.prevOcc[si][j] != want.prevOcc[si][j] {
				t.Fatalf("%s: seq %d: prevOcc[%d]=%d want %d", label, si, j, got.prevOcc[si][j], want.prevOcc[si][j])
			}
		}
	}
	if len(got.postOffsets) != len(want.postOffsets) {
		t.Fatalf("%s: postOffsets length %d want %d", label, len(got.postOffsets), len(want.postOffsets))
	}
	for e := range want.postOffsets {
		if got.postOffsets[e] != want.postOffsets[e] {
			t.Fatalf("%s: postOffsets[%d]=%d want %d", label, e, got.postOffsets[e], want.postOffsets[e])
		}
	}
	for i := range want.postSeqs {
		if got.postSeqs[i] != want.postSeqs[i] {
			t.Fatalf("%s: postSeqs[%d]=%d want %d", label, i, got.postSeqs[i], want.postSeqs[i])
		}
	}
	for e := range want.instCount {
		if got.instCount[e] != want.instCount[e] {
			t.Fatalf("%s: instCount[%d]=%d want %d", label, e, got.instCount[e], want.instCount[e])
		}
	}
}

func randomSeq(rng *rand.Rand, maxLen, alphabet int) Sequence {
	s := make(Sequence, rng.Intn(maxLen+1))
	for j := range s {
		s[j] = EventID(rng.Intn(alphabet))
	}
	return s
}

func TestAppendSequencesMatchesFreshBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for iter := 0; iter < 60; iter++ {
		alphabet := 1 + rng.Intn(9)
		var all []Sequence
		initial := rng.Intn(5)
		for i := 0; i < initial; i++ {
			all = append(all, randomSeq(rng, 12, alphabet))
		}
		idx := BuildPositionIndex(all, alphabet)
		if idx.Version() != 0 {
			t.Fatalf("fresh index version %d want 0", idx.Version())
		}

		batches := 1 + rng.Intn(4)
		version := uint64(0)
		for b := 0; b < batches; b++ {
			// Occasionally widen the alphabet mid-stream, as a growing
			// dictionary does.
			if rng.Intn(3) == 0 {
				alphabet += rng.Intn(3)
			}
			batch := make([]Sequence, 1+rng.Intn(3))
			for i := range batch {
				batch[i] = randomSeq(rng, 12, alphabet)
			}
			all = append(all, batch...)
			idx.AppendSequences(batch, alphabet)
			version++
			if idx.Version() != version {
				t.Fatalf("version %d after %d batches", idx.Version(), version)
			}
			requireIndexEqual(t, "after batch", idx, BuildPositionIndex(all, alphabet))
		}
	}
}

func TestAppendEventsMatchesFreshBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for iter := 0; iter < 60; iter++ {
		alphabet := 1 + rng.Intn(6)
		all := []Sequence{randomSeq(rng, 8, alphabet)}
		idx := BuildPositionIndex(all, alphabet)
		for step := 0; step < 6; step++ {
			switch rng.Intn(3) {
			case 0: // extend the open tail trace
				ext := randomSeq(rng, 5, alphabet)
				last := len(all) - 1
				all[last] = append(all[last], ext...)
				idx.AppendEvents(all[last], alphabet)
			case 1: // seal and start a new trace
				s := randomSeq(rng, 8, alphabet)
				all = append(all, s)
				idx.AppendSequence(s, alphabet)
			default: // extend after a snapshot pinned the tail region
				snap := idx.Snapshot()
				before := BuildPositionIndex(append([]Sequence(nil), all...), alphabet)
				ext := randomSeq(rng, 5, alphabet)
				last := len(all) - 1
				all[last] = append(all[last], ext...)
				idx.AppendEvents(all[last], alphabet)
				requireIndexEqual(t, "snapshot after tail rewrite", snap, before)
			}
			requireIndexEqual(t, "after step", idx, BuildPositionIndex(all, alphabet))
		}
	}
}

// TestSnapshotStableUnderAppends pins snapshots at several points of an
// append stream and verifies each still matches a fresh build over exactly
// the prefix it captured, after arbitrarily many further appends.
func TestSnapshotStableUnderAppends(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for iter := 0; iter < 30; iter++ {
		alphabet := 2 + rng.Intn(6)
		var all []Sequence
		idx := BuildPositionIndex(all, alphabet)
		type pinned struct {
			snap   *PositionIndex
			frozen []Sequence
		}
		var pins []pinned
		for step := 0; step < 10; step++ {
			if rng.Intn(2) == 0 || len(all) == 0 {
				s := randomSeq(rng, 10, alphabet)
				all = append(all, s)
				idx.AppendSequence(s, alphabet)
			} else {
				ext := randomSeq(rng, 6, alphabet)
				last := len(all) - 1
				all[last] = append(all[last], ext...)
				idx.AppendEvents(all[last], alphabet)
			}
			if rng.Intn(3) == 0 {
				frozen := make([]Sequence, len(all))
				for i, s := range all {
					frozen[i] = s.Clone()
				}
				pins = append(pins, pinned{snap: idx.Snapshot(), frozen: frozen})
			}
		}
		for _, p := range pins {
			requireIndexEqual(t, "pinned snapshot", p.snap, BuildPositionIndex(p.frozen, alphabet))
		}
	}
}

// TestSnapshotConcurrentReaders exercises the writer-appends/readers-scan
// protocol under the race detector: a single writer keeps appending and
// extending while readers verify snapshots they receive over a channel.
func TestSnapshotConcurrentReaders(t *testing.T) {
	const alphabet = 6
	type view struct {
		snap *PositionIndex
		want *PositionIndex
	}
	views := make(chan view, 16)
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for v := range views {
				for si := 0; si < v.want.NumSequences(); si++ {
					for e := EventID(0); e < EventID(alphabet); e++ {
						got := v.snap.Positions(si, e)
						want := v.want.Positions(si, e)
						if len(got) != len(want) {
							t.Errorf("seq %d event %d: %d positions want %d", si, e, len(got), len(want))
							return
						}
						for k := range want {
							if got[k] != want[k] {
								t.Errorf("seq %d event %d: positions differ", si, e)
								return
							}
						}
					}
				}
			}
		}()
	}

	rng := rand.New(rand.NewSource(53))
	var all []Sequence
	idx := BuildPositionIndex(all, alphabet)
	for step := 0; step < 200; step++ {
		if rng.Intn(3) > 0 || len(all) == 0 {
			s := randomSeq(rng, 10, alphabet)
			all = append(all, s)
			idx.AppendSequence(s, alphabet)
		} else {
			ext := randomSeq(rng, 6, alphabet)
			last := len(all) - 1
			all[last] = append(all[last], ext...)
			idx.AppendEvents(all[last], alphabet)
		}
		if step%5 == 0 {
			frozen := make([]Sequence, len(all))
			for i, s := range all {
				frozen[i] = s.Clone()
			}
			views <- view{snap: idx.Snapshot(), want: BuildPositionIndex(frozen, alphabet)}
		}
	}
	close(views)
	wg.Wait()
}

// TestDatabaseIncrementalFlatIndex drives the incremental path through the
// Database wrapper, interleaving Append/ExtendLast with FlatIndex calls and
// dictionary growth.
func TestDatabaseIncrementalFlatIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	for iter := 0; iter < 40; iter++ {
		db := NewDatabase()
		names := []string{"a", "b", "c", "d", "e", "f"}
		emit := func(n int) []string {
			out := make([]string, n)
			for i := range out {
				out[i] = names[rng.Intn(len(names))]
			}
			return out
		}
		db.AppendNames(emit(1 + rng.Intn(6))...)
		lastVersion := uint64(0)
		for step := 0; step < 8; step++ {
			switch rng.Intn(3) {
			case 0:
				db.AppendNames(emit(rng.Intn(8))...)
			case 1:
				evs := make([]EventID, 1+rng.Intn(4))
				for i := range evs {
					evs[i] = db.Dict.Intern(names[rng.Intn(len(names))])
				}
				db.ExtendLast(evs...)
			default:
				idx := db.FlatIndex()
				requireIndexEqual(t, "database flat index", idx, BuildPositionIndex(db.Sequences, db.Dict.Size()))
				if idx.Version() < lastVersion {
					t.Fatalf("version went backwards: %d -> %d", lastVersion, idx.Version())
				}
				lastVersion = idx.Version()
			}
		}
		idx := db.FlatIndex()
		requireIndexEqual(t, "final flat index", idx, BuildPositionIndex(db.Sequences, db.Dict.Size()))
	}
}
