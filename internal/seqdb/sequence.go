package seqdb

import (
	"sort"
	"strings"
)

// Sequence is one program execution trace: an ordered list of events.
// Positions are 0-based internally; the paper's definitions use 1-based
// temporal points, and the conversion is confined to rendering code.
type Sequence []EventID

// Len returns the number of events in the sequence.
func (s Sequence) Len() int { return len(s) }

// Clone returns an independent copy of the sequence.
func (s Sequence) Clone() Sequence {
	out := make(Sequence, len(s))
	copy(out, s)
	return out
}

// String renders the sequence using dict for event names.
func (s Sequence) String(dict *Dictionary) string {
	var b strings.Builder
	b.WriteByte('<')
	for i, e := range s {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(dict.Name(e))
	}
	b.WriteByte('>')
	return b.String()
}

// ContainsSubsequence reports whether p embeds into s as a (not necessarily
// contiguous) subsequence, i.e. whether p ⊑ s in the paper's notation.
func (s Sequence) ContainsSubsequence(p Pattern) bool {
	if len(p) == 0 {
		return true
	}
	j := 0
	for _, e := range s {
		if e == p[j] {
			j++
			if j == len(p) {
				return true
			}
		}
	}
	return false
}

// SubsequenceEndPositions returns every position j (0-based) such that
// s[j] == last(p) and p is a subsequence of s[0..j]. These are exactly the
// temporal points of Definition 5.1 (shifted to 0-based indexing).
func (s Sequence) SubsequenceEndPositions(p Pattern) []int {
	if len(p) == 0 {
		return nil
	}
	var out []int
	// matched is the length of the longest prefix of p embedded in s[0..i-1].
	matched := 0
	last := p[len(p)-1]
	for i, e := range s {
		if matched < len(p)-1 && e == p[matched] {
			matched++
		}
		if e == last && matched >= len(p)-1 {
			// The first len(p)-1 events embed strictly before i only when the
			// prefix completed at an earlier position; when p has length 1 the
			// prefix is empty and every occurrence of last counts.
			if len(p) == 1 {
				out = append(out, i)
				continue
			}
			// Ensure the embedding of the first len(p)-1 events finishes
			// strictly before i. matched counts prefix events consumed so far
			// including possibly the event at i itself when p[matched-1]==last
			// was just consumed here; re-check with an explicit scan only in
			// that ambiguous case.
			if prefixEmbedsBefore(s, p[:len(p)-1], i) {
				out = append(out, i)
			}
		}
	}
	return out
}

// prefixEmbedsBefore reports whether pre embeds into s[0..end-1].
func prefixEmbedsBefore(s Sequence, pre Pattern, end int) bool {
	if len(pre) == 0 {
		return true
	}
	j := 0
	for i := 0; i < end; i++ {
		if s[i] == pre[j] {
			j++
			if j == len(pre) {
				return true
			}
		}
	}
	return false
}

// EventPositions returns, for each event occurring in s, the sorted list of
// its positions. The result supports O(log n) "next occurrence after p"
// queries via NextOccurrence.
func (s Sequence) EventPositions() map[EventID][]int {
	m := make(map[EventID][]int)
	for i, e := range s {
		m[e] = append(m[e], i)
	}
	return m
}

// NextOccurrence returns the smallest position >= from at which event e
// occurs according to positions (the sorted position list for e), or -1 when
// there is none.
func NextOccurrence(positions []int, from int) int {
	i := sort.SearchInts(positions, from)
	if i == len(positions) {
		return -1
	}
	return positions[i]
}

// CountInRange returns how many occurrences listed in positions fall in the
// half-open interval [lo, hi).
func CountInRange(positions []int, lo, hi int) int {
	if hi <= lo {
		return 0
	}
	a := sort.SearchInts(positions, lo)
	b := sort.SearchInts(positions, hi)
	return b - a
}

// DistinctEvents returns the set of events appearing in s.
func (s Sequence) DistinctEvents() map[EventID]struct{} {
	set := make(map[EventID]struct{})
	for _, e := range s {
		set[e] = struct{}{}
	}
	return set
}
