package seqdb

import (
	"encoding/binary"
	"fmt"
)

// Sequence block codec: the on-disk representation of one trace inside a
// sealed segment file (see internal/store). The encoding is chosen for the
// trace shapes this system actually stores — long runs of repeated events
// (loops) and small alphabets with strong locality — and for decode speed:
//
//   - the event stream is split into maximal runs of one repeated event;
//   - each run is written as (zigzag varint delta from the previous run's
//     event id, uvarint run length), so loops collapse to one pair and
//     locality keeps deltas in one byte;
//   - the block is prefixed with the uvarint event count, which lets a reader
//     allocate exactly once and detect truncation without trailing markers.
//
// Blocks are self-delimiting: DecodeSequenceBlock reports how many bytes it
// consumed, so segments can concatenate blocks back to back and still support
// random access through their footer offset table.

// AppendSequenceBlock appends the block encoding of s to dst and returns the
// extended slice. An empty sequence encodes to a single zero byte.
func AppendSequenceBlock(dst []byte, s Sequence) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	prev := EventID(0)
	for i := 0; i < len(s); {
		ev := s[i]
		run := 1
		for i+run < len(s) && s[i+run] == ev {
			run++
		}
		dst = binary.AppendVarint(dst, int64(ev)-int64(prev))
		dst = binary.AppendUvarint(dst, uint64(run))
		prev = ev
		i += run
	}
	return dst
}

// DecodeSequenceBlock decodes one block from the front of buf, returning the
// sequence and the number of bytes consumed. Truncated or malformed input
// returns a descriptive error and consumes nothing.
func DecodeSequenceBlock(buf []byte) (Sequence, int, error) {
	total, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, 0, fmt.Errorf("seqdb: sequence block: bad event count")
	}
	off := n
	// Run-length encoding packs arbitrarily long sequences into few bytes, so
	// the declared count cannot be sanity-checked against the input size. Cap
	// the up-front allocation instead: a corrupt count either trips the run
	// accumulation check below or runs out of input, never out of memory.
	capHint := total
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	s := make(Sequence, 0, capHint)
	prev := int64(0)
	for uint64(len(s)) < total {
		delta, n := binary.Varint(buf[off:])
		if n <= 0 {
			return nil, 0, fmt.Errorf("seqdb: sequence block: truncated run delta at byte %d", off)
		}
		off += n
		run, n := binary.Uvarint(buf[off:])
		if n <= 0 {
			return nil, 0, fmt.Errorf("seqdb: sequence block: truncated run length at byte %d", off)
		}
		off += n
		prev += delta
		if prev < 0 || prev > int64(^uint32(0)>>1) {
			return nil, 0, fmt.Errorf("seqdb: sequence block: event id %d out of range", prev)
		}
		if run == 0 || uint64(len(s))+run > total {
			return nil, 0, fmt.Errorf("seqdb: sequence block: run length %d overflows declared count %d", run, total)
		}
		for k := uint64(0); k < run; k++ {
			s = append(s, EventID(prev))
		}
	}
	return s, off, nil
}

// EqualState reports whether two indexes hold identical logical state: every
// header, arena region, posting list and counter. It is how the durability
// layer asserts that a recovered index is byte-identical to a fresh build
// over the same sequences; a nil return means equal.
func (idx *PositionIndex) EqualState(other *PositionIndex) error {
	if idx.numEvents != other.numEvents {
		return fmt.Errorf("numEvents %d != %d", idx.numEvents, other.numEvents)
	}
	if len(idx.seqEvents) != len(other.seqEvents) {
		return fmt.Errorf("sequences %d != %d", len(idx.seqEvents), len(other.seqEvents))
	}
	if len(idx.posArena) != len(other.posArena) {
		return fmt.Errorf("position arena length %d != %d", len(idx.posArena), len(other.posArena))
	}
	for i := range idx.posArena {
		if idx.posArena[i] != other.posArena[i] {
			return fmt.Errorf("posArena[%d]: %d != %d", i, idx.posArena[i], other.posArena[i])
		}
	}
	for si := range idx.seqEvents {
		if len(idx.seqEvents[si]) != len(other.seqEvents[si]) {
			return fmt.Errorf("seq %d: distinct events %d != %d", si, len(idx.seqEvents[si]), len(other.seqEvents[si]))
		}
		for k := range idx.seqEvents[si] {
			if idx.seqEvents[si][k] != other.seqEvents[si][k] {
				return fmt.Errorf("seq %d: seqEvents[%d]: %d != %d", si, k, idx.seqEvents[si][k], other.seqEvents[si][k])
			}
			if idx.seqOffsets[si][k] != other.seqOffsets[si][k] {
				return fmt.Errorf("seq %d: seqOffsets[%d]: %d != %d", si, k, idx.seqOffsets[si][k], other.seqOffsets[si][k])
			}
		}
		last := len(idx.seqEvents[si])
		if idx.seqOffsets[si][last] != other.seqOffsets[si][last] {
			return fmt.Errorf("seq %d: offset sentinel %d != %d", si, idx.seqOffsets[si][last], other.seqOffsets[si][last])
		}
		if len(idx.prevOcc[si]) != len(other.prevOcc[si]) {
			return fmt.Errorf("seq %d: prevOcc length %d != %d", si, len(idx.prevOcc[si]), len(other.prevOcc[si]))
		}
		for j := range idx.prevOcc[si] {
			if idx.prevOcc[si][j] != other.prevOcc[si][j] {
				return fmt.Errorf("seq %d: prevOcc[%d]: %d != %d", si, j, idx.prevOcc[si][j], other.prevOcc[si][j])
			}
		}
	}
	if len(idx.postOffsets) != len(other.postOffsets) {
		return fmt.Errorf("postOffsets length %d != %d", len(idx.postOffsets), len(other.postOffsets))
	}
	for e := range idx.postOffsets {
		if idx.postOffsets[e] != other.postOffsets[e] {
			return fmt.Errorf("postOffsets[%d]: %d != %d", e, idx.postOffsets[e], other.postOffsets[e])
		}
	}
	for i := range idx.postSeqs {
		if idx.postSeqs[i] != other.postSeqs[i] {
			return fmt.Errorf("postSeqs[%d]: %d != %d", i, idx.postSeqs[i], other.postSeqs[i])
		}
	}
	for e := range idx.instCount {
		if idx.instCount[e] != other.instCount[e] {
			return fmt.Errorf("instCount[%d]: %d != %d", e, idx.instCount[e], other.instCount[e])
		}
	}
	return nil
}
