package seqdb

import (
	"fmt"
	"math/rand"
	"testing"
)

// Randomized equivalence tests for the postings hot paths — NextAfter,
// PrevBefore, and the galloping PosCursor — against brute-force linear scans
// of the raw sequences. The generator sweeps trace shapes that exercise both
// sides of the dense-bitmap split (and its qualification boundary): dense
// traces where most events take the bitmap path, sparse ones that stay on
// the binary-searched position lists, and run-heavy ones whose long
// single-event runs produce maximally skewed position lists.

// oracleNext is the reference NextAfter: first position >= from holding e.
func oracleNext(s Sequence, e EventID, from int) int32 {
	for p := max(from, 0); p < len(s); p++ {
		if s[p] == e {
			return int32(p)
		}
	}
	return -1
}

// oraclePrev is the reference PrevBefore: last position < before holding e.
func oraclePrev(s Sequence, e EventID, before int) int32 {
	for p := min(before, len(s)) - 1; p >= 0; p-- {
		if s[p] == e {
			return int32(p)
		}
	}
	return -1
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// genShape builds one random sequence of the named shape.
func genShape(rng *rand.Rand, shape string, seqLen, alphabet int) Sequence {
	s := make(Sequence, seqLen)
	switch shape {
	case "dense":
		// Tiny alphabet: every event far exceeds the density threshold.
		for i := range s {
			s[i] = EventID(rng.Intn(min(alphabet, 4)))
		}
	case "sparse":
		// Alphabet on the order of the sequence length: counts stay low,
		// nothing qualifies for a bitmap.
		for i := range s {
			s[i] = EventID(rng.Intn(alphabet))
		}
	case "runs":
		// Geometric runs of one event: position lists are contiguous blocks,
		// the worst case for galloping (long in-run O(1) stretches followed
		// by large jumps) and a mix of dense and sparse events.
		i := 0
		for i < len(s) {
			e := EventID(rng.Intn(alphabet))
			run := 1 + rng.Intn(24)
			for ; run > 0 && i < len(s); run, i = run-1, i+1 {
				s[i] = e
			}
		}
	default:
		panic("unknown shape " + shape)
	}
	return s
}

func TestPostingsRandomizedVsOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5eed))
	for _, shape := range []string{"dense", "sparse", "runs"} {
		for trial := 0; trial < 20; trial++ {
			seqLen := 1 + rng.Intn(300)
			alphabet := 2 + rng.Intn(64)
			db := NewDatabase()
			var seqs []Sequence
			for n := 1 + rng.Intn(4); n > 0; n-- {
				s := genShape(rng, shape, seqLen, alphabet)
				seqs = append(seqs, s)
				db.Append(s)
			}
			idx := db.FlatIndex()
			name := fmt.Sprintf("%s/trial=%d", shape, trial)
			for si, s := range seqs {
				// Probe every event that occurs plus one absent id, across
				// every boundary-adjacent from/before value.
				events := append([]EventID(nil), idx.SeqEvents(si)...)
				events = append(events, EventID(alphabet+1))
				for _, e := range events {
					for from := -2; from <= len(s)+2; from++ {
						if got, want := idx.NextAfter(si, e, from), oracleNext(s, e, from); got != want {
							t.Fatalf("%s: NextAfter(s=%d, e=%d, from=%d) = %d, oracle %d", name, si, e, from, got, want)
						}
						if got, want := idx.PrevBefore(si, e, from), oraclePrev(s, e, from); got != want {
							t.Fatalf("%s: PrevBefore(s=%d, e=%d, before=%d) = %d, oracle %d", name, si, e, from, got, want)
						}
					}
				}
			}
		}
	}
}

// TestPostingsCursorMonotone drives PosCursor with random non-decreasing
// probe sequences and checks every answer against PositionIndex.NextAfter
// (itself oracle-verified above), covering the cursor's O(1) next-entry fast
// path, gallop brackets of every size, and exhaustion.
func TestPostingsCursorMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(0xc0ffee))
	for _, shape := range []string{"dense", "sparse", "runs"} {
		for trial := 0; trial < 30; trial++ {
			seqLen := 1 + rng.Intn(400)
			alphabet := 2 + rng.Intn(32)
			s := genShape(rng, shape, seqLen, alphabet)
			db := NewDatabase()
			db.Append(s)
			idx := db.FlatIndex()
			for _, e := range idx.SeqEvents(0) {
				cur := idx.Cursor(0, e)
				from := int32(0)
				if rng.Intn(4) == 0 {
					from = -int32(rng.Intn(3)) // negative starts are legal
				}
				for from <= int32(seqLen)+1 {
					got := cur.NextAfter(from)
					want := idx.NextAfter(0, e, int(from))
					if got != want {
						t.Fatalf("%s/trial=%d: cursor NextAfter(%d) on e=%d = %d, index says %d", shape, trial, from, e, got, want)
					}
					// Advance by a mixed step distribution: mostly small (the
					// O(1) path), occasionally large (forcing a gallop).
					if rng.Intn(5) == 0 {
						from += int32(rng.Intn(seqLen + 1))
					} else {
						from += int32(rng.Intn(4))
					}
					if rng.Intn(3) == 0 && got >= 0 {
						from = max32(from, got+1) // the miners' "past this match" probe
					}
				}
			}
		}
	}
}

func max32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}

// TestPostingsBitmapThresholdBoundary pins the dense-bitmap qualification
// split at its exact boundary: events one occurrence below bmMinCount (or
// one short of the sparseness ratio) must use the binary-search path while
// events exactly at the boundary use the bitmap, and both must agree with
// the oracle. The sequence is laid out deterministically so each event's
// count is known by construction.
func TestPostingsBitmapThresholdBoundary(t *testing.T) {
	// seqLen chosen so count*bmSparseness == seqLen exactly at count = 2*bmMinCount.
	const seqLen = 2 * bmMinCount * bmSparseness // 256
	counts := []int{
		bmMinCount - 1,      // fails the absolute floor
		bmMinCount,          // meets floor but 16*8 = 128 < 256: fails ratio
		2*bmMinCount - 1,    // one short of the ratio boundary
		2 * bmMinCount,      // exactly on the ratio boundary: qualifies
		2*bmMinCount + 1,    // comfortably dense
		seqLen - bmMinCount, // filler event, dominates the tail
	}
	s := make(Sequence, 0, seqLen)
	for e, c := range counts {
		for i := 0; i < c && len(s) < seqLen; i++ {
			s = append(s, EventID(e))
		}
	}
	for len(s) < seqLen {
		s = append(s, EventID(len(counts)-1))
	}
	// Interleave deterministically so positions are spread, not blocked.
	rng := rand.New(rand.NewSource(7))
	rng.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })

	db := NewDatabase()
	db.Append(s)
	idx := db.FlatIndex()

	for e, c := range counts {
		want := denseBitmap(c, seqLen)
		slots := idx.bmSlots[0]
		events := idx.SeqEvents(0)
		k := lowerBound(events, EventID(e))
		got := slots != nil && slots[k] >= 0
		if c == counts[len(counts)-1] {
			// The filler's true count may exceed its nominal entry; recompute.
			want = denseBitmap(len(idx.Positions(0, EventID(e))), seqLen)
		}
		if got != want {
			t.Fatalf("event %d (count %d, seqLen %d): bitmap qualification = %v, want %v", e, c, seqLen, got, want)
		}
		for from := -1; from <= seqLen+1; from++ {
			if g, w := idx.NextAfter(0, EventID(e), from), oracleNext(s, EventID(e), from); g != w {
				t.Fatalf("boundary event %d: NextAfter(from=%d) = %d, oracle %d", e, from, g, w)
			}
			if g, w := idx.PrevBefore(0, EventID(e), from), oraclePrev(s, EventID(e), from); g != w {
				t.Fatalf("boundary event %d: PrevBefore(before=%d) = %d, oracle %d", e, from, g, w)
			}
		}
	}
}
