package seqdb

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
)

// The textual trace format is deliberately simple so that instrumented
// programs, test harnesses and shell pipelines can produce it:
//
//   - one trace per line,
//   - events separated by whitespace,
//   - blank lines and lines starting with '#' are ignored.
//
// The format mirrors what an instrumentation agent (such as the JBoss-AOP
// interceptor used in the paper's case study) would emit after flattening
// each test-case run into a single line of method names.

// ReadTraces parses the textual trace format from r into a new database.
func ReadTraces(r io.Reader) (*Database, error) {
	db := NewDatabase()
	if err := ReadTracesInto(db, r); err != nil {
		return nil, err
	}
	return db, nil
}

// ReadTracesInto parses the textual trace format from r, appending to db and
// interning through db's dictionary.
func ReadTracesInto(db *Database, r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		db.AppendNames(strings.Fields(line)...)
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("reading traces (line %d): %w", lineNo, err)
	}
	return nil
}

// ReadTraceFile reads the textual trace format from the file at path.
func ReadTraceFile(path string) (*Database, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	db, err := ReadTraces(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return db, nil
}

// WriteTraces writes db in the textual trace format to w.
func WriteTraces(w io.Writer, db *Database) error {
	bw := bufio.NewWriter(w)
	for _, s := range db.Sequences {
		for i, e := range s {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(db.Dict.Name(e)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteTraceFile writes db in the textual trace format to the file at path,
// creating or truncating it.
func WriteTraceFile(path string, db *Database) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteTraces(f, db); err != nil {
		f.Close()
		return fmt.Errorf("%s: %w", path, err)
	}
	return f.Close()
}
