package seqdb

import (
	"fmt"
	"sort"
)

// Database is the sequence database SeqDB of the paper: an ordered collection
// of sequences (traces) plus the dictionary that interns their event names.
type Database struct {
	Dict      *Dictionary
	Sequences []Sequence

	// positions[i] caches, for sequence i, the sorted occurrence positions of
	// every event in that sequence. It is built lazily by Index and used by
	// legacy callers for O(log n) next-occurrence queries.
	positions []map[EventID][]int

	// flat caches the flat positional index built by FlatIndex. The miners'
	// hot paths run entirely against it. flatSeqs is the number of sequences
	// the index covers: when sequences are appended, FlatIndex extends the
	// index incrementally instead of rebuilding it.
	flat     *PositionIndex
	flatSeqs int
}

// NewDatabase returns an empty database with a fresh dictionary.
func NewDatabase() *Database {
	return &Database{Dict: NewDictionary()}
}

// NewDatabaseWithDict returns an empty database that interns names through
// the supplied dictionary. Useful when several databases (for example a
// training set and a verification set) must share event ids.
func NewDatabaseWithDict(dict *Dictionary) *Database {
	if dict == nil {
		dict = NewDictionary()
	}
	return &Database{Dict: dict}
}

// Append adds a sequence of already-interned event ids to the database. An
// already-built flat index is not discarded: the next FlatIndex call extends
// it incrementally with the appended sequences.
func (db *Database) Append(s Sequence) {
	db.Sequences = append(db.Sequences, s)
	db.positions = nil
}

// ExtendLast appends events to the database's last sequence — the streaming
// case of an open trace receiving more events. The flat index, when current,
// is extended in place (only the last sequence's tail region is rewritten).
func (db *Database) ExtendLast(events ...EventID) {
	if len(db.Sequences) == 0 {
		db.Append(events)
		return
	}
	last := len(db.Sequences) - 1
	db.Sequences[last] = append(db.Sequences[last], events...)
	db.positions = nil
	if db.flat != nil && db.flatSeqs == len(db.Sequences) {
		db.flat.AppendEvents(db.Sequences[last], db.Dict.Size())
	}
}

// AppendNames interns each name and appends the resulting sequence. It is
// the main entry point for building databases from textual traces.
func (db *Database) AppendNames(names ...string) {
	s := make(Sequence, 0, len(names))
	for _, n := range names {
		s = append(s, db.Dict.Intern(n))
	}
	db.Append(s)
}

// NumSequences returns the number of traces in the database.
func (db *Database) NumSequences() int { return len(db.Sequences) }

// NumEvents returns the total number of events summed over all traces.
func (db *Database) NumEvents() int {
	n := 0
	for _, s := range db.Sequences {
		n += len(s)
	}
	return n
}

// Index builds (or rebuilds) the per-sequence occurrence-position cache and
// returns it. Miners call Index once up front; repeated calls are cheap when
// the database has not changed.
func (db *Database) Index() []map[EventID][]int {
	if db.positions != nil && len(db.positions) == len(db.Sequences) {
		return db.positions
	}
	db.positions = make([]map[EventID][]int, len(db.Sequences))
	for i, s := range db.Sequences {
		db.positions[i] = s.EventPositions()
	}
	return db.positions
}

// Positions returns the cached occurrence positions for sequence i, building
// the cache if necessary.
func (db *Database) Positions(i int) map[EventID][]int {
	return db.Index()[i]
}

// FlatIndex builds (or returns the cached) flat positional index over the
// database. All miners run their hot paths against this representation; see
// PositionIndex for the layout. When sequences were appended since the last
// call the index is extended incrementally rather than rebuilt, bumping its
// version; the returned state is always exactly what a fresh build over the
// current sequences would produce. The index must not be mutated while other
// goroutines read it — concurrent readers take FlatIndex().Snapshot() (or go
// through the stream package, whose shards serialise appends).
func (db *Database) FlatIndex() *PositionIndex {
	switch {
	case db.flat == nil:
		db.flat = BuildPositionIndex(db.Sequences, db.Dict.Size())
	case db.flatSeqs < len(db.Sequences):
		db.flat.AppendSequences(db.Sequences[db.flatSeqs:], db.Dict.Size())
	}
	db.flatSeqs = len(db.Sequences)
	return db.flat
}

// SnapshotView returns a read-only view of the database: the dictionary is
// shared, the sequence headers are copied, and a current flat index is
// captured via PositionIndex.Snapshot. The view stays consistent while the
// original keeps appending, so it can be handed to concurrent miners.
// SnapshotView must be called by the database's writer.
func (db *Database) SnapshotView() *Database {
	v := &Database{
		Dict:      db.Dict,
		Sequences: append([]Sequence(nil), db.Sequences...),
	}
	if db.flat != nil && db.flatSeqs == len(db.Sequences) {
		v.flat = db.flat.Snapshot()
		v.flatSeqs = len(v.Sequences)
	}
	return v
}

// EventSupport returns, for every event, the number of sequences in which it
// occurs at least once. This drives frequent-1 candidate generation.
func (db *Database) EventSupport() map[EventID]int {
	sup := make(map[EventID]int)
	for _, s := range db.Sequences {
		for e := range s.DistinctEvents() {
			sup[e]++
		}
	}
	return sup
}

// EventInstanceCount returns, for every event, its total number of
// occurrences across all sequences (the instance support of the
// single-event pattern <e>).
func (db *Database) EventInstanceCount() map[EventID]int {
	cnt := make(map[EventID]int)
	for _, s := range db.Sequences {
		for _, e := range s {
			cnt[e]++
		}
	}
	return cnt
}

// FrequentEvents returns the events whose sequence support is at least
// minSeqSup, sorted by id for determinism.
func (db *Database) FrequentEvents(minSeqSup int) []EventID {
	sup := db.EventSupport()
	out := make([]EventID, 0, len(sup))
	for e, c := range sup {
		if c >= minSeqSup {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FrequentEventsByInstances returns the events with at least minInstances
// total occurrences, sorted by id.
func (db *Database) FrequentEventsByInstances(minInstances int) []EventID {
	cnt := db.EventInstanceCount()
	out := make([]EventID, 0, len(cnt))
	for e, c := range cnt {
		if c >= minInstances {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Clone returns a deep copy of the database (dictionary and sequences).
func (db *Database) Clone() *Database {
	c := &Database{Dict: db.Dict.Clone()}
	c.Sequences = make([]Sequence, len(db.Sequences))
	for i, s := range db.Sequences {
		c.Sequences[i] = s.Clone()
	}
	return c
}

// Validate checks internal consistency: every event id referenced by a
// sequence must be known to the dictionary. It returns a descriptive error
// for the first inconsistency found.
func (db *Database) Validate() error {
	n := EventID(db.Dict.Size())
	for i, s := range db.Sequences {
		for j, e := range s {
			if e < 0 || e >= n {
				return fmt.Errorf("sequence %d position %d: event id %d outside dictionary (size %d)", i, j, e, n)
			}
		}
	}
	return nil
}

// AbsoluteSupport converts a relative support threshold (a fraction of the
// number of sequences, as used on the x-axes of the paper's figures, e.g.
// 0.0025 for 0.25%) into an absolute sequence count, never returning less
// than 1.
func (db *Database) AbsoluteSupport(rel float64) int {
	n := int(rel*float64(db.NumSequences()) + 0.5)
	if n < 1 {
		n = 1
	}
	return n
}
