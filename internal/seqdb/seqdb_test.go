package seqdb

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestDictionaryInternLookup(t *testing.T) {
	d := NewDictionary()
	a := d.Intern("lock")
	b := d.Intern("unlock")
	if a == b {
		t.Fatalf("distinct names interned to the same id %d", a)
	}
	if got := d.Intern("lock"); got != a {
		t.Errorf("re-interning lock: got %d want %d", got, a)
	}
	if got := d.Lookup("unlock"); got != b {
		t.Errorf("Lookup(unlock)=%d want %d", got, b)
	}
	if got := d.Lookup("missing"); got != NoEvent {
		t.Errorf("Lookup(missing)=%d want NoEvent", got)
	}
	if got := d.Name(a); got != "lock" {
		t.Errorf("Name(%d)=%q want lock", a, got)
	}
	if got := d.Name(EventID(99)); got != "ev99" {
		t.Errorf("Name(99)=%q want ev99", got)
	}
	if d.Size() != 2 {
		t.Errorf("Size=%d want 2", d.Size())
	}
}

func TestDictionaryClone(t *testing.T) {
	d := NewDictionary()
	d.Intern("a")
	d.Intern("b")
	c := d.Clone()
	c.Intern("c")
	if d.Size() != 2 || c.Size() != 3 {
		t.Errorf("clone not independent: d=%d c=%d", d.Size(), c.Size())
	}
	if c.Lookup("a") != d.Lookup("a") {
		t.Errorf("clone changed ids")
	}
	names := c.SortedNames()
	if !reflect.DeepEqual(names, []string{"a", "b", "c"}) {
		t.Errorf("SortedNames=%v", names)
	}
}

func TestSequenceContainsSubsequence(t *testing.T) {
	d := NewDictionary()
	s := Sequence{d.Intern("a"), d.Intern("b"), d.Intern("c"), d.Intern("b")}
	cases := []struct {
		pat  string
		want bool
	}{
		{"a", true},
		{"a b", true},
		{"a c b", true},
		{"b b", true},
		{"c a", false},
		{"a b c b", true},
		{"a b b c", false},
		{"", true},
	}
	for _, c := range cases {
		p := ParsePattern(d, c.pat)
		if got := s.ContainsSubsequence(p); got != c.want {
			t.Errorf("ContainsSubsequence(%q)=%v want %v", c.pat, got, c.want)
		}
	}
}

func TestSubsequenceEndPositions(t *testing.T) {
	d := NewDictionary()
	a, b := d.Intern("a"), d.Intern("b")
	cases := []struct {
		seq  Sequence
		pat  Pattern
		want []int
	}{
		{Sequence{a, b, a, b}, Pattern{a, b}, []int{1, 3}},
		{Sequence{b, a, b}, Pattern{a, b}, []int{2}},
		{Sequence{b, b}, Pattern{b, b}, []int{1}},
		{Sequence{a, a, a}, Pattern{a}, []int{0, 1, 2}},
		{Sequence{a, a, a}, Pattern{a, a}, []int{1, 2}},
		{Sequence{b, b, b}, Pattern{a, b}, nil},
		{Sequence{a, b}, Pattern{}, nil},
	}
	for i, c := range cases {
		got := c.seq.SubsequenceEndPositions(c.pat)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("case %d: got %v want %v", i, got, c.want)
		}
	}
}

// bruteEndPositions recomputes temporal points by definition: every j with
// S[j]==last(p) and p a subsequence of S[0..j].
func bruteEndPositions(s Sequence, p Pattern) []int {
	if len(p) == 0 {
		return nil
	}
	var out []int
	for j := range s {
		if s[j] != p[len(p)-1] {
			continue
		}
		prefix := s[:j+1]
		// p must embed with its last event exactly at j.
		if len(p) == 1 {
			out = append(out, j)
			continue
		}
		if Sequence(prefix[:j]).ContainsSubsequence(p[:len(p)-1]) {
			out = append(out, j)
		}
	}
	return out
}

func TestSubsequenceEndPositionsQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func() bool {
		n := 1 + rng.Intn(30)
		s := make(Sequence, n)
		for i := range s {
			s[i] = EventID(rng.Intn(4))
		}
		m := 1 + rng.Intn(3)
		p := make(Pattern, m)
		for i := range p {
			p[i] = EventID(rng.Intn(4))
		}
		got := s.SubsequenceEndPositions(p)
		want := bruteEndPositions(s, p)
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestNextOccurrenceAndCountInRange(t *testing.T) {
	pos := []int{2, 5, 9, 14}
	if got := NextOccurrence(pos, 0); got != 2 {
		t.Errorf("NextOccurrence(...,0)=%d want 2", got)
	}
	if got := NextOccurrence(pos, 5); got != 5 {
		t.Errorf("NextOccurrence(...,5)=%d want 5", got)
	}
	if got := NextOccurrence(pos, 6); got != 9 {
		t.Errorf("NextOccurrence(...,6)=%d want 9", got)
	}
	if got := NextOccurrence(pos, 15); got != -1 {
		t.Errorf("NextOccurrence(...,15)=%d want -1", got)
	}
	if got := CountInRange(pos, 3, 10); got != 2 {
		t.Errorf("CountInRange(3,10)=%d want 2", got)
	}
	if got := CountInRange(pos, 0, 100); got != 4 {
		t.Errorf("CountInRange(0,100)=%d want 4", got)
	}
	if got := CountInRange(pos, 10, 3); got != 0 {
		t.Errorf("CountInRange(10,3)=%d want 0", got)
	}
}

func TestPatternOperations(t *testing.T) {
	d := NewDictionary()
	p := ParsePattern(d, "a b c")
	if p.Len() != 3 || d.Name(p.First()) != "a" || d.Name(p.Last()) != "c" {
		t.Fatalf("ParsePattern basic properties broken: %v", p.String(d))
	}
	q := p.Append(d.Intern("d"))
	if q.String(d) != "<a, b, c, d>" {
		t.Errorf("Append: %s", q.String(d))
	}
	if p.Len() != 3 {
		t.Errorf("Append mutated receiver")
	}
	r := p.Prepend(d.Intern("x"))
	if r.String(d) != "<x, a, b, c>" {
		t.Errorf("Prepend: %s", r.String(d))
	}
	ins := p.InsertAt(1, d.Intern("y"))
	if ins.String(d) != "<a, y, b, c>" {
		t.Errorf("InsertAt: %s", ins.String(d))
	}
	rem := ins.RemoveAt(1)
	if !rem.Equal(p) {
		t.Errorf("RemoveAt: %s", rem.String(d))
	}
	cc := p.Concat(q)
	if cc.Len() != 7 {
		t.Errorf("Concat length %d", cc.Len())
	}
	if !p.IsSubsequenceOf(q) || q.IsSubsequenceOf(p) {
		t.Errorf("IsSubsequenceOf wrong")
	}
	if !p.IsSubsequenceOf(p) {
		t.Errorf("pattern must be subsequence of itself")
	}
	if !p.Contains(d.Lookup("b")) || p.Contains(d.Intern("zzz")) {
		t.Errorf("Contains wrong")
	}
	if len(p.Alphabet()) != 3 {
		t.Errorf("Alphabet size %d", len(p.Alphabet()))
	}
	if p.Key() == q.Key() {
		t.Errorf("distinct patterns share Key")
	}
	if ComparePatterns(p, q) >= 0 || ComparePatterns(q, p) <= 0 || ComparePatterns(p, p.Clone()) != 0 {
		t.Errorf("ComparePatterns ordering wrong")
	}
}

func TestPatternSubsequenceQuick(t *testing.T) {
	// IsSubsequenceOf must agree with an independent recursive definition.
	var recur func(p, q Pattern) bool
	recur = func(p, q Pattern) bool {
		if len(p) == 0 {
			return true
		}
		if len(q) == 0 {
			return false
		}
		if p[0] == q[0] && recur(p[1:], q[1:]) {
			return true
		}
		return recur(p, q[1:])
	}
	rng := rand.New(rand.NewSource(11))
	f := func() bool {
		p := make(Pattern, rng.Intn(5))
		q := make(Pattern, rng.Intn(8))
		for i := range p {
			p[i] = EventID(rng.Intn(3))
		}
		for i := range q {
			q[i] = EventID(rng.Intn(3))
		}
		return p.IsSubsequenceOf(q) == recur(p, q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestDatabaseBasics(t *testing.T) {
	db := NewDatabase()
	db.AppendNames("lock", "use", "unlock")
	db.AppendNames("lock", "unlock", "lock", "unlock")
	db.AppendNames("open", "read", "close")
	if db.NumSequences() != 3 {
		t.Fatalf("NumSequences=%d", db.NumSequences())
	}
	if db.NumEvents() != 10 {
		t.Fatalf("NumEvents=%d", db.NumEvents())
	}
	if err := db.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	sup := db.EventSupport()
	if sup[db.Dict.Lookup("lock")] != 2 {
		t.Errorf("sequence support of lock = %d want 2", sup[db.Dict.Lookup("lock")])
	}
	cnt := db.EventInstanceCount()
	if cnt[db.Dict.Lookup("lock")] != 3 {
		t.Errorf("instance count of lock = %d want 3", cnt[db.Dict.Lookup("lock")])
	}
	freq := db.FrequentEvents(2)
	if len(freq) != 2 { // lock and unlock appear in 2 sequences
		t.Errorf("FrequentEvents(2)=%v", freq)
	}
	freqI := db.FrequentEventsByInstances(3)
	if len(freqI) != 2 {
		t.Errorf("FrequentEventsByInstances(3)=%v", freqI)
	}
	if got := db.AbsoluteSupport(0.5); got != 2 {
		t.Errorf("AbsoluteSupport(0.5)=%d want 2", got)
	}
	if got := db.AbsoluteSupport(0.0001); got != 1 {
		t.Errorf("AbsoluteSupport(tiny)=%d want 1", got)
	}
}

func TestDatabaseValidateFailure(t *testing.T) {
	db := NewDatabase()
	db.Append(Sequence{EventID(5)})
	if err := db.Validate(); err == nil {
		t.Fatal("Validate accepted out-of-range event id")
	}
}

func TestDatabaseIndexAndClone(t *testing.T) {
	db := NewDatabase()
	db.AppendNames("a", "b", "a")
	idx := db.Index()
	a := db.Dict.Lookup("a")
	if !reflect.DeepEqual(idx[0][a], []int{0, 2}) {
		t.Errorf("index positions for a: %v", idx[0][a])
	}
	c := db.Clone()
	c.AppendNames("c")
	if db.NumSequences() != 1 || c.NumSequences() != 2 {
		t.Errorf("clone not independent")
	}
	// Appending invalidates and rebuilds the cache.
	db.AppendNames("a")
	idx2 := db.Index()
	if len(idx2) != 2 {
		t.Errorf("index not rebuilt after append: %d", len(idx2))
	}
}

func TestReadWriteTraces(t *testing.T) {
	input := "# comment line\nlock use unlock\n\nopen read  close\n"
	db, err := ReadTraces(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if db.NumSequences() != 2 {
		t.Fatalf("NumSequences=%d want 2", db.NumSequences())
	}
	var buf bytes.Buffer
	if err := WriteTraces(&buf, db); err != nil {
		t.Fatal(err)
	}
	want := "lock use unlock\nopen read close\n"
	if buf.String() != want {
		t.Errorf("round trip: got %q want %q", buf.String(), want)
	}
	// Re-reading the written form yields an identical database.
	db2, err := ReadTraces(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if db2.NumSequences() != db.NumSequences() || db2.NumEvents() != db.NumEvents() {
		t.Errorf("re-read mismatch")
	}
}

func TestReadWriteTraceFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/traces.txt"
	db := NewDatabase()
	db.AppendNames("x", "y")
	db.AppendNames("z")
	if err := WriteTraceFile(path, db); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumSequences() != 2 || got.NumEvents() != 3 {
		t.Errorf("file round trip mismatch: %d sequences %d events", got.NumSequences(), got.NumEvents())
	}
	if _, err := ReadTraceFile(dir + "/missing.txt"); err == nil {
		t.Errorf("expected error for missing file")
	}
}

func TestComputeStats(t *testing.T) {
	db := NewDatabase()
	db.AppendNames("a", "b")
	db.AppendNames("a", "b", "c", "d")
	db.AppendNames("a")
	st := ComputeStats(db)
	if st.NumSequences != 3 || st.NumEvents != 7 || st.DistinctEvents != 4 {
		t.Errorf("stats counts wrong: %+v", st)
	}
	if st.MinLength != 1 || st.MaxLength != 4 {
		t.Errorf("stats lengths wrong: %+v", st)
	}
	if st.MedianLength != 2 {
		t.Errorf("median %v want 2", st.MedianLength)
	}
	if st.String() == "" {
		t.Errorf("empty String()")
	}
	empty := ComputeStats(NewDatabase())
	if empty.NumSequences != 0 || empty.NumEvents != 0 {
		t.Errorf("empty stats wrong: %+v", empty)
	}
}

func TestLengthHistogramAndTopEvents(t *testing.T) {
	db := NewDatabase()
	db.AppendNames("a", "a", "b")
	db.AppendNames("a", "c")
	h := LengthHistogram(db, 2)
	if h[2] != 2 {
		t.Errorf("histogram %v", h)
	}
	h1 := LengthHistogram(db, 0) // bucket width coerced to 1
	if h1[3] != 1 || h1[2] != 1 {
		t.Errorf("histogram width-1 %v", h1)
	}
	top := TopEvents(db, 1)
	if len(top) != 1 || db.Dict.Name(top[0].Event) != "a" || top[0].Count != 3 {
		t.Errorf("TopEvents=%v", top)
	}
	all := TopEvents(db, -1)
	if len(all) != 3 {
		t.Errorf("TopEvents(-1) length %d", len(all))
	}
}

func TestSequenceStringAndClone(t *testing.T) {
	d := NewDictionary()
	s := Sequence{d.Intern("a"), d.Intern("b")}
	if s.String(d) != "<a, b>" {
		t.Errorf("String=%q", s.String(d))
	}
	c := s.Clone()
	c[0] = d.Intern("z")
	if s[0] == c[0] {
		t.Errorf("Clone not independent")
	}
}

func TestParsePatternEmpty(t *testing.T) {
	d := NewDictionary()
	p := ParsePattern(d, "   ")
	if p.Len() != 0 {
		t.Errorf("empty spec should give empty pattern, got %v", p)
	}
	p2 := PatternOf(EventID(1), EventID(2))
	if p2.Len() != 2 {
		t.Errorf("PatternOf length %d", p2.Len())
	}
}
