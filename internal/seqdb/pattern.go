package seqdb

import (
	"strings"
)

// Pattern is a series of events: the syntactic object shared by iterative
// patterns, sequential patterns, rule premises and rule consequents. The
// notation of the paper writes a pattern as <e1, e2, ..., en>.
type Pattern []EventID

// ParsePattern interns each space-separated event name in spec and returns
// the resulting pattern. It is a convenience for tests, examples and CLIs.
func ParsePattern(dict *Dictionary, spec string) Pattern {
	fields := strings.Fields(spec)
	p := make(Pattern, 0, len(fields))
	for _, f := range fields {
		p = append(p, dict.Intern(f))
	}
	return p
}

// PatternOf builds a pattern from already-interned event ids.
func PatternOf(ids ...EventID) Pattern { return Pattern(ids) }

// Len returns the number of events in the pattern.
func (p Pattern) Len() int { return len(p) }

// First returns first(P): the first event of the pattern. It panics on an
// empty pattern, mirroring the paper which only applies first/last to
// non-empty patterns.
func (p Pattern) First() EventID { return p[0] }

// Last returns last(P): the final event of the pattern.
func (p Pattern) Last() EventID { return p[len(p)-1] }

// Clone returns an independent copy of p.
func (p Pattern) Clone() Pattern {
	out := make(Pattern, len(p))
	copy(out, p)
	return out
}

// Concat returns p ++ q, the concatenation of the two patterns, as a fresh
// slice that shares storage with neither operand.
func (p Pattern) Concat(q Pattern) Pattern {
	out := make(Pattern, 0, len(p)+len(q))
	out = append(out, p...)
	out = append(out, q...)
	return out
}

// Append returns the suffix extension p ++ <e> as a fresh pattern.
func (p Pattern) Append(e EventID) Pattern {
	out := make(Pattern, 0, len(p)+1)
	out = append(out, p...)
	out = append(out, e)
	return out
}

// Prepend returns the prefix extension <e> ++ p as a fresh pattern.
func (p Pattern) Prepend(e EventID) Pattern {
	out := make(Pattern, 0, len(p)+1)
	out = append(out, e)
	out = append(out, p...)
	return out
}

// InsertAt returns the pattern obtained by inserting e before position i
// (0 <= i <= len(p)). InsertAt(0, e) is Prepend, InsertAt(len(p), e) is Append.
func (p Pattern) InsertAt(i int, e EventID) Pattern {
	out := make(Pattern, 0, len(p)+1)
	out = append(out, p[:i]...)
	out = append(out, e)
	out = append(out, p[i:]...)
	return out
}

// RemoveAt returns the pattern with the event at position i removed.
func (p Pattern) RemoveAt(i int) Pattern {
	out := make(Pattern, 0, len(p)-1)
	out = append(out, p[:i]...)
	out = append(out, p[i+1:]...)
	return out
}

// Equal reports whether p and q are identical event for event.
func (p Pattern) Equal(q Pattern) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// IsSubsequenceOf reports whether p ⊑ q: there exist indices
// i1 < i2 < ... < in into q such that p matches q at those indices.
func (p Pattern) IsSubsequenceOf(q Pattern) bool {
	if len(p) > len(q) {
		return false
	}
	j := 0
	for _, e := range q {
		if j < len(p) && e == p[j] {
			j++
		}
	}
	return j == len(p)
}

// Alphabet returns the set of distinct events used by the pattern. The QRE
// instance semantics of Definition 4.1 excludes exactly this set from the
// gaps between consecutive pattern events.
func (p Pattern) Alphabet() map[EventID]struct{} {
	set := make(map[EventID]struct{}, len(p))
	for _, e := range p {
		set[e] = struct{}{}
	}
	return set
}

// Contains reports whether event e appears anywhere in the pattern.
func (p Pattern) Contains(e EventID) bool {
	for _, x := range p {
		if x == e {
			return true
		}
	}
	return false
}

// Key returns a compact string key that uniquely identifies the pattern.
// It is suitable for use as a map key; it is not meant for display.
func (p Pattern) Key() string {
	var b strings.Builder
	b.Grow(len(p) * 3)
	for i, e := range p {
		if i > 0 {
			b.WriteByte(',')
		}
		writeInt(&b, int(e))
	}
	return b.String()
}

// String renders the pattern in the paper's angle-bracket notation using
// dict for event names. A nil dictionary falls back to numeric names.
func (p Pattern) String(dict *Dictionary) string {
	var b strings.Builder
	b.WriteByte('<')
	for i, e := range p {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(dict.Name(e))
	}
	b.WriteByte('>')
	return b.String()
}

// ComparePatterns orders patterns first by length, then lexicographically by
// event id. It gives deterministic output orderings across the repository.
func ComparePatterns(a, b Pattern) int {
	if len(a) != len(b) {
		if len(a) < len(b) {
			return -1
		}
		return 1
	}
	for i := range a {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// writeInt appends the decimal representation of v to b without allocating.
func writeInt(b *strings.Builder, v int) {
	if v < 0 {
		b.WriteByte('-')
		v = -v
	}
	var buf [12]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	b.Write(buf[i:])
}
