package seqdb

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// Concurrent-interning stress for the sharded Dictionary. Run under -race
// (the CI race matrix does) this exercises the striped fast path, the
// double-checked assignment slow path, and the assign-lock hook ordering all
// at once: many goroutines intern one shared vocabulary in different orders,
// so almost every name is raced by several first-time interners.
func TestDictionaryConcurrentIntern(t *testing.T) {
	const producers = 16
	const vocabSize = 2000
	vocab := make([]string, vocabSize)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("event/%04d", i)
	}

	d := NewDictionary()

	// The durability hook must observe every assignment exactly once, in
	// exact id order, before the id is visible to any other interner — the
	// dict-WAL ordering invariant. hookSeen records what it observed.
	var hookMu sync.Mutex
	hookSeen := make([]string, 0, vocabSize)
	d.OnIntern(func(id EventID, name string) {
		hookMu.Lock()
		defer hookMu.Unlock()
		if int(id) != len(hookSeen) {
			t.Errorf("hook saw id %d after %d assignments — out of order or duplicated", id, len(hookSeen))
		}
		hookSeen = append(hookSeen, name)
	})

	results := make([]map[string]EventID, producers)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(p) + 1))
			order := rng.Perm(vocabSize)
			got := make(map[string]EventID, vocabSize)
			for _, i := range order {
				got[vocab[i]] = d.Intern(vocab[i])
				// Re-intern a recent name immediately: the id a producer was
				// just handed must be stable on every subsequent call.
				j := order[rng.Intn(vocabSize)]
				if id, ok := got[vocab[j]]; ok && d.Intern(vocab[j]) != id {
					t.Errorf("producer %d: id for %q changed", p, vocab[j])
				}
			}
			results[p] = got
		}(p)
	}
	wg.Wait()

	// Every producer agrees on every id.
	for p := 1; p < producers; p++ {
		for name, id := range results[0] {
			if results[p][name] != id {
				t.Fatalf("producers 0 and %d disagree on %q: %d vs %d", p, name, id, results[p][name])
			}
		}
	}

	// Ids are dense: exactly vocabSize assignments covering 0..vocabSize-1.
	if d.Size() != vocabSize {
		t.Fatalf("Size() = %d, want %d", d.Size(), vocabSize)
	}
	seen := make([]bool, vocabSize)
	for name, id := range results[0] {
		if id < 0 || int(id) >= vocabSize {
			t.Fatalf("%q got out-of-range id %d", name, id)
		}
		if seen[id] {
			t.Fatalf("id %d assigned to two names", id)
		}
		seen[id] = true
		if got := d.Name(id); got != name {
			t.Fatalf("Name(%d) = %q, want %q", id, got, name)
		}
		if got := d.Lookup(name); got != id {
			t.Fatalf("Lookup(%q) = %d, want %d", name, got, id)
		}
	}

	// The hook's serialised record is exactly the assignment order.
	if len(hookSeen) != vocabSize {
		t.Fatalf("hook observed %d assignments, want %d", len(hookSeen), vocabSize)
	}
	for id, name := range hookSeen {
		if results[0][name] != EventID(id) {
			t.Fatalf("hook saw %q at id %d but producers resolved it to %d", name, id, results[0][name])
		}
	}

	// Export/Import round-trip: replaying the export into a fresh dictionary
	// reproduces the concurrent run's exact assignment, and matches what a
	// purely sequential replay of the same export produces.
	exported := d.Export()
	restored := NewDictionary()
	if err := restored.Import(exported); err != nil {
		t.Fatal(err)
	}
	sequential := NewDictionary()
	for _, name := range exported {
		sequential.Intern(name)
	}
	for id, name := range exported {
		if got := restored.Lookup(name); got != EventID(id) {
			t.Fatalf("restored dictionary maps %q to %d, want %d", name, got, id)
		}
		if got := sequential.Lookup(name); got != EventID(id) {
			t.Fatalf("sequential replay maps %q to %d, want %d", name, got, id)
		}
	}
	if restored.Size() != vocabSize || sequential.Size() != vocabSize {
		t.Fatalf("round-trip sizes %d/%d, want %d", restored.Size(), sequential.Size(), vocabSize)
	}
}
