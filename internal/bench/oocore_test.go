package bench

import (
	"reflect"
	"testing"

	"specmine/internal/core"
	"specmine/internal/store"
)

// TestOocoreFixture proves the properties the benchguard floors and the
// trajectory's oocore_cases section assume: the fixture builds one
// cluster-pure segment per cluster, out-of-core mining over it is equivalent
// to the in-memory miner at any cache budget, and the selective rule set
// skips at least 90% of segment bodies. If this fails, the floors measure a
// broken fixture, not the system.
func TestOocoreFixture(t *testing.T) {
	c := OocoreCases()[0]
	dir := t.TempDir()
	decoded, err := c.BuildStore(dir)
	if err != nil {
		t.Fatal(err)
	}

	eager, err := store.Open(c.OpenOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	db := eager.Recovered().Database(eager.Dict())
	db.FlatIndex()
	popts := core.PatternOptions{MinSupport: c.MinSupport(), MaxLength: 3}
	ref, err := core.MinePatterns(db, popts)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Patterns) == 0 {
		t.Fatal("fixture mines no patterns; the support threshold is off")
	}
	selective := c.SelectiveRules(db)
	refSum, err := core.CheckRules(db, selective)
	if err != nil {
		t.Fatal(err)
	}
	if err := eager.Close(); err != nil {
		t.Fatal(err)
	}

	lazy, err := store.Open(func() store.Options {
		o := c.OpenOptions(dir)
		o.OutOfCore = true
		return o
	}())
	if err != nil {
		t.Fatal(err)
	}
	defer lazy.Close()
	if got := len(lazy.Segments()); got < c.Clusters {
		t.Fatalf("%d segments for %d clusters", got, c.Clusters)
	}

	for _, budget := range []int64{decoded / 4, 0} {
		res, stats, err := core.MineStore(lazy, popts, core.OutOfCoreOptions{CacheBytes: budget})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Patterns, ref.Patterns) {
			t.Fatalf("budget %d: MineStore diverges from MinePatterns (%d vs %d patterns)",
				budget, len(res.Patterns), len(ref.Patterns))
		}
		if stats.SegmentsSkipped != 0 {
			t.Errorf("budget %d: full-sweep mining skipped %d segments; every cluster has seeds", budget, stats.SegmentsSkipped)
		}
	}

	sum, stats, err := core.CheckStore(lazy, selective, core.OutOfCoreOptions{CacheBytes: decoded / 4})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sum.Render(lazy.Dict(), 10), refSum.Render(db.Dict, 10); got != want {
		t.Errorf("selective CheckStore diverges:\n got %q\nwant %q", got, want)
	}
	skip := float64(stats.SegmentsSkipped) / float64(stats.SegmentsTotal)
	if skip < 0.9 {
		t.Errorf("selective skip rate %.3f < 0.9 (%d of %d skipped)", skip, stats.SegmentsSkipped, stats.SegmentsTotal)
	}
}
