package bench

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Profile capture hooks for the benchmark binaries. Two environment
// variables toggle them, so CI's bench smoke job (and anyone reproducing a
// contention report locally) can capture profiles without rebuilding:
//
//	SPECMINE_CPUPROFILE=path    write a CPU profile of the whole run
//	SPECMINE_MUTEXPROFILE=path  write a mutex-contention profile
//
// StartProfiles is wired into the bench package's TestMain and into
// benchguard, so both `go test -bench` invocations and the regression gate
// produce artifacts from the same switches.

// mutexProfileFraction is the sampling rate handed to
// runtime.SetMutexProfileFraction while a mutex profile is requested: one in
// five contention events is sampled, low enough not to distort the measured
// hot paths.
const mutexProfileFraction = 5

// StartProfiles starts the captures requested via the environment and
// returns a stop function that flushes them; the caller must invoke it
// before exiting. With neither variable set it is a no-op.
func StartProfiles() (stop func() error, err error) {
	var stops []func() error

	if path := os.Getenv("SPECMINE_CPUPROFILE"); path != "" {
		f, err := os.Create(path)
		if err != nil {
			return nil, fmt.Errorf("bench: creating cpu profile %s: %w", path, err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("bench: starting cpu profile: %w", err)
		}
		stops = append(stops, func() error {
			pprof.StopCPUProfile()
			return f.Close()
		})
	}

	if path := os.Getenv("SPECMINE_MUTEXPROFILE"); path != "" {
		prev := runtime.SetMutexProfileFraction(mutexProfileFraction)
		stops = append(stops, func() error {
			f, err := os.Create(path)
			if err != nil {
				return fmt.Errorf("bench: creating mutex profile %s: %w", path, err)
			}
			defer f.Close()
			defer runtime.SetMutexProfileFraction(prev)
			if err := pprof.Lookup("mutex").WriteTo(f, 0); err != nil {
				return fmt.Errorf("bench: writing mutex profile: %w", err)
			}
			return nil
		})
	}

	return func() error {
		var first error
		for _, s := range stops {
			if err := s(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}, nil
}
