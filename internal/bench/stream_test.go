package bench

import (
	"fmt"
	"testing"

	"specmine/internal/stream"
	"specmine/internal/verify"
)

// BenchmarkStreamIngest measures the sharded streaming front end end to end:
// interleaved chunks of live traces flow through the ingester, terminated
// traces are sealed and the per-shard indexes extended incrementally, and a
// final snapshot forces the last flush. Operations are pre-generated and
// pre-interned, so the measured region is the ingestion machinery itself.
// The events/op metric lets per-event allocs be read off allocs/op.
func BenchmarkStreamIngest(b *testing.B) {
	for _, c := range StreamCases() {
		dict, ops, engine, events := c.GenStream()
		b.Run(fmt.Sprintf("%s/shards=%d", c.Name, c.Shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ing := stream.NewIngester(stream.Config{
					Shards: c.Shards, FlushBatch: c.FlushBatch, Dict: dict, Engine: engine,
				})
				for _, op := range ops {
					if op.Seal {
						if err := ing.CloseTrace(op.TraceID); err != nil {
							b.Fatal(err)
						}
					} else if err := ing.IngestIDs(op.TraceID, op.Events...); err != nil {
						b.Fatal(err)
					}
				}
				v, err := ing.Snapshot()
				if err != nil {
					b.Fatal(err)
				}
				if v.DB.NumSequences() != c.Traces {
					b.Fatalf("snapshot has %d traces want %d", v.DB.NumSequences(), c.Traces)
				}
				if err := ing.Close(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(events), "events/op")
			b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
		})
	}
}

// BenchmarkOnlineVerify measures the online conformance automaton alone: one
// reused Checker consumes every trace of the serving batch event by event.
// This is the same work Engine.Check drives, isolated from database and
// index plumbing — the per-event cost an ingestion shard pays when an engine
// is attached.
func BenchmarkOnlineVerify(b *testing.B) {
	for _, c := range VerifyCases() {
		ruleSet, db := c.Gen()
		if len(ruleSet) == 0 {
			b.Fatalf("%s: no rules mined", c.Name)
		}
		engine, err := verify.NewEngine(ruleSet)
		if err != nil {
			b.Fatal(err)
		}
		events := db.NumEvents()
		b.Run(fmt.Sprintf("%s/rules=%d/online", c.Name, len(ruleSet)), func(b *testing.B) {
			b.ReportAllocs()
			checker := engine.NewChecker()
			for i := 0; i < b.N; i++ {
				reports := engine.NewReports()
				for si, s := range db.Sequences {
					for _, ev := range s {
						checker.Advance(ev)
					}
					checker.Close(si, reports)
				}
			}
			b.ReportMetric(float64(events), "events/op")
			b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
		})
	}
}
