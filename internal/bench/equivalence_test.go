package bench

import (
	"fmt"
	"math/rand"
	"testing"

	"specmine/internal/bench/baseline"
	"specmine/internal/episode"
	"specmine/internal/iterpattern"
	"specmine/internal/rules"
	"specmine/internal/seqdb"
	"specmine/internal/seqpattern"
	"specmine/internal/tracesim"
)

func seqdbBuildFlat(db *seqdb.Database) *seqdb.PositionIndex {
	return seqdb.BuildPositionIndex(db.Sequences, db.Dict.Size())
}

func seqdbBuildMap(db *seqdb.Database) []map[seqdb.EventID][]int {
	out := make([]map[seqdb.EventID][]int, len(db.Sequences))
	for i, s := range db.Sequences {
		out[i] = s.EventPositions()
	}
	return out
}

func randomDB(rng *rand.Rand, numSeqs, maxLen, alphabet int) *seqdb.Database {
	db := seqdb.NewDatabase()
	for i := 0; i < alphabet; i++ {
		db.Dict.Intern(string(rune('a' + i)))
	}
	for i := 0; i < numSeqs; i++ {
		n := 1 + rng.Intn(maxLen)
		s := make(seqdb.Sequence, n)
		for j := range s {
			s[j] = seqdb.EventID(rng.Intn(alphabet))
		}
		db.Append(s)
	}
	return db
}

func assertPatternResultsEqual(t *testing.T, label string, got, want *iterpattern.Result) {
	t.Helper()
	if len(got.Patterns) != len(want.Patterns) {
		t.Fatalf("%s: %d patterns, want %d", label, len(got.Patterns), len(want.Patterns))
	}
	for i := range want.Patterns {
		g, w := got.Patterns[i], want.Patterns[i]
		if !g.Pattern.Equal(w.Pattern) || g.Support != w.Support || g.SeqSupport != w.SeqSupport {
			t.Fatalf("%s: pattern %d differs: got %v sup=%d/%d want %v sup=%d/%d",
				label, i, g.Pattern, g.Support, g.SeqSupport, w.Pattern, w.Support, w.SeqSupport)
		}
		if len(g.Instances) != len(w.Instances) {
			t.Fatalf("%s: pattern %d instance count %d want %d", label, i, len(g.Instances), len(w.Instances))
		}
		for k := range w.Instances {
			if g.Instances[k] != w.Instances[k] {
				t.Fatalf("%s: pattern %d instance %d %v want %v", label, i, k, g.Instances[k], w.Instances[k])
			}
		}
	}
	if got.MinSupport != want.MinSupport {
		t.Fatalf("%s: MinSupport %d want %d", label, got.MinSupport, want.MinSupport)
	}
	gs, ws := got.Stats, want.Stats
	if gs.NodesExplored != ws.NodesExplored ||
		gs.NodesPrunedInfrequent != ws.NodesPrunedInfrequent ||
		gs.SubtreesPrunedEquivalent != ws.SubtreesPrunedEquivalent ||
		gs.NonClosedSuppressed != ws.NonClosedSuppressed ||
		gs.PatternsEmitted != ws.PatternsEmitted {
		t.Fatalf("%s: stats differ: got %+v want %+v", label, gs, ws)
	}
}

// TestFlatMinerMatchesBaseline pins the rewritten miner to the seed
// algorithm: identical patterns, supports, instances and search counters on
// workloads from the benchmark matrix and on random databases. This is also
// the regression test for the landmark-memory deduplication (shared instance
// slices instead of per-landmark clones): any behavioural drift in the
// equivalence pruning would change the counters or the emitted set.
func TestFlatMinerMatchesBaseline(t *testing.T) {
	cases := ClosedCases()
	light := []ClosedCase{cases[0], cases[4], cases[5]}
	for _, c := range light {
		db := c.Gen()
		opts := c.Opts
		opts.IncludeInstances = true
		flat, err := iterpattern.MineClosed(db, opts)
		if err != nil {
			t.Fatal(err)
		}
		base, err := baseline.MineClosed(db, opts)
		if err != nil {
			t.Fatal(err)
		}
		assertPatternResultsEqual(t, c.Name+"/closed", flat, base)
	}
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 25; iter++ {
		db := randomDB(rng, 3+rng.Intn(4), 12, 3+rng.Intn(3))
		opts := iterpattern.Options{MinInstanceSupport: 2 + rng.Intn(2), IncludeInstances: true}
		for _, closed := range []bool{false, true} {
			flat, err := iterpattern.Mine(db, opts, closed)
			if err != nil {
				t.Fatal(err)
			}
			base, err := baseline.Mine(db, opts, closed)
			if err != nil {
				t.Fatal(err)
			}
			assertPatternResultsEqual(t, "random/closed="+boolName(closed), flat, base)
		}
	}
}

func boolName(b bool) string {
	if b {
		return "true"
	}
	return "false"
}

// TestParallelPatternsMatchSequential is the parallel-vs-sequential
// equivalence property for the iterative-pattern miners: any worker count
// must produce results identical to workers=1, including search statistics.
// Run under -race this also exercises the worker pool for data races.
func TestParallelPatternsMatchSequential(t *testing.T) {
	check := func(label string, db *seqdb.Database, opts iterpattern.Options, closed bool) {
		t.Helper()
		opts.Workers = 1
		seq, err := iterpattern.Mine(db, opts, closed)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, -1} {
			opts.Workers = workers
			par, err := iterpattern.Mine(db, opts, closed)
			if err != nil {
				t.Fatal(err)
			}
			assertPatternResultsEqual(t, label, par, seq)
		}
	}
	c := ClosedCases()[0]
	opts := c.Opts
	opts.IncludeInstances = true
	check(c.Name, c.Gen(), opts, true)
	w := tracesim.Workloads()["security"]
	check("security-x30", w.MustGenerate(30, 7), iterpattern.Options{MinSupportRel: 0.9, MaxPatternLength: 3, IncludeInstances: true}, true)
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 20; iter++ {
		db := randomDB(rng, 3+rng.Intn(5), 12, 3+rng.Intn(4))
		o := iterpattern.Options{MinInstanceSupport: 2 + rng.Intn(2), IncludeInstances: true}
		check("random/full", db, o, false)
		check("random/closed", db, o, true)
	}
}

func assertSeqPatternResultsEqual(t *testing.T, label string, got, want *seqpattern.Result) {
	t.Helper()
	if len(got.Patterns) != len(want.Patterns) {
		t.Fatalf("%s: %d patterns, want %d", label, len(got.Patterns), len(want.Patterns))
	}
	for i := range want.Patterns {
		g, w := got.Patterns[i], want.Patterns[i]
		if !g.Pattern.Equal(w.Pattern) || g.SeqSupport != w.SeqSupport {
			t.Fatalf("%s: pattern %d differs: got %v sup=%d want %v sup=%d",
				label, i, g.Pattern, g.SeqSupport, w.Pattern, w.SeqSupport)
		}
	}
	if got.MinSupport != want.MinSupport {
		t.Fatalf("%s: MinSupport %d want %d", label, got.MinSupport, want.MinSupport)
	}
}

// TestSeqPatternMatchesBaseline pins the unified-kernel sequential-pattern
// miner to the seed implementation on Quest synth and tracesim workloads
// plus random databases, full and closed, and asserts byte-identical results
// across worker counts (run under -race in CI).
func TestSeqPatternMatchesBaseline(t *testing.T) {
	check := func(label string, db *seqdb.Database, opts seqpattern.Options) {
		t.Helper()
		want, err := baseline.MineSeqPatterns(db, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4, -1} {
			opts.Workers = workers
			got, err := seqpattern.Mine(db, opts)
			if err != nil {
				t.Fatal(err)
			}
			assertSeqPatternResultsEqual(t, fmt.Sprintf("%s/workers=%d", label, workers), got, want)
		}
	}
	for _, c := range SeqPatternCases() {
		check(c.Name, c.Gen(), c.Opts)
	}
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 20; iter++ {
		db := randomDB(rng, 3+rng.Intn(5), 12, 3+rng.Intn(3))
		opts := seqpattern.Options{MinSeqSupport: 2, ClosedOnly: iter%2 == 0}
		check("random", db, opts)
	}
}

func assertEpisodeResultsEqual(t *testing.T, label string, got, want *episode.Result) {
	t.Helper()
	if len(got.Episodes) != len(want.Episodes) {
		t.Fatalf("%s: %d episodes, want %d", label, len(got.Episodes), len(want.Episodes))
	}
	for i := range want.Episodes {
		g, w := got.Episodes[i], want.Episodes[i]
		if !g.Pattern.Equal(w.Pattern) || g.Windows != w.Windows || g.Frequency != w.Frequency {
			t.Fatalf("%s: episode %d differs: got %v w=%d f=%v want %v w=%d f=%v",
				label, i, g.Pattern, g.Windows, g.Frequency, w.Pattern, w.Windows, w.Frequency)
		}
	}
	if got.TotalWindows != want.TotalWindows {
		t.Fatalf("%s: TotalWindows %d want %d", label, got.TotalWindows, want.TotalWindows)
	}
}

// TestEpisodeMatchesBaseline pins the posting-driven episode miner to the
// seed's window-rescan implementation on tracesim workloads and random
// databases, single-sequence and database-level, across worker counts.
func TestEpisodeMatchesBaseline(t *testing.T) {
	check := func(label string, db *seqdb.Database, opts episode.Options) {
		t.Helper()
		want, err := baseline.MineEpisodeDatabase(db, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4, -1} {
			opts.Workers = workers
			got, err := episode.MineDatabase(db, opts)
			if err != nil {
				t.Fatal(err)
			}
			assertEpisodeResultsEqual(t, fmt.Sprintf("%s/workers=%d", label, workers), got, want)
		}
	}
	for _, c := range EpisodeCases() {
		if c.Name == "episode-transaction-x50-w6-len3" {
			continue // the seed side alone needs ~300ms; the light cases cover the semantics
		}
		check(c.Name, c.Gen(), c.Opts)
	}
	rng := rand.New(rand.NewSource(19))
	for iter := 0; iter < 15; iter++ {
		db := randomDB(rng, 2+rng.Intn(4), 14, 3+rng.Intn(3))
		opts := episode.Options{WindowWidth: 2 + rng.Intn(4), MinFrequency: 0.05 + rng.Float64()*0.3, MaxEpisodeLength: 1 + rng.Intn(3)}
		check("random", db, opts)
		// Single-sequence Mine against the seed's level-wise pass.
		s := db.Sequences[0]
		want, err := baseline.MineEpisodes(s, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := episode.Mine(s, opts)
		if err != nil {
			t.Fatal(err)
		}
		assertEpisodeResultsEqual(t, "random/single", got, want)
	}
}

func assertRuleResultsEqual(t *testing.T, label string, got, want *rules.Result) {
	t.Helper()
	if len(got.Rules) != len(want.Rules) {
		t.Fatalf("%s: %d rules, want %d", label, len(got.Rules), len(want.Rules))
	}
	for i := range want.Rules {
		g, w := got.Rules[i], want.Rules[i]
		if !g.Pre.Equal(w.Pre) || !g.Post.Equal(w.Post) ||
			g.SeqSupport != w.SeqSupport || g.InstanceSupport != w.InstanceSupport ||
			g.Confidence != w.Confidence {
			t.Fatalf("%s: rule %d differs: got %+v want %+v", label, i, g, w)
		}
	}
	gs, ws := got.Stats, want.Stats
	if gs.PremisesExplored != ws.PremisesExplored ||
		gs.PremisesPrunedRedundant != ws.PremisesPrunedRedundant ||
		gs.ConsequentNodesExplored != ws.ConsequentNodesExplored ||
		gs.RulesSuppressedRedundant != ws.RulesSuppressedRedundant ||
		gs.RulesEmitted != ws.RulesEmitted {
		t.Fatalf("%s: stats differ: got %+v want %+v", label, gs, ws)
	}
}

// TestParallelRulesMatchSequential is the parallel-vs-sequential equivalence
// property for the rule miners: consequent jobs fanned out over any worker
// count must produce rule sets identical to the sequential run.
func TestParallelRulesMatchSequential(t *testing.T) {
	check := func(label string, db *seqdb.Database, opts rules.Options, nr bool) {
		t.Helper()
		opts.Workers = 1
		seq, err := rules.Mine(db, opts, nr)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, -1} {
			opts.Workers = workers
			par, err := rules.Mine(db, opts, nr)
			if err != nil {
				t.Fatal(err)
			}
			assertRuleResultsEqual(t, label, par, seq)
		}
	}
	w := tracesim.Workloads()["locking"]
	check("locking-x30", w.MustGenerate(30, 7), rules.Options{
		MinSeqSupportRel: 0.9, MinInstanceSupport: 1, MinConfidence: 0.9,
		MaxPremiseLength: 3, MaxConsequentLength: 3,
	}, true)
	rng := rand.New(rand.NewSource(9))
	for iter := 0; iter < 15; iter++ {
		db := randomDB(rng, 3+rng.Intn(4), 10, 3+rng.Intn(3))
		o := rules.Options{
			MinSeqSupport: 2, MinInstanceSupport: 1, MinConfidence: 0.5,
			MaxPremiseLength: 3, MaxConsequentLength: 3,
		}
		check("random/full", db, o, false)
		check("random/nr", db, o, true)
	}
}
