// Package baseline preserves the seed's map-based iterative-pattern miner
// verbatim (per-sequence map[EventID][]int positional index, three map
// allocations per search node, instance lists grown by append from nil).
//
// It exists for two purposes only: as the reference implementation that the
// benchmarks in package bench compare the flat-index miner against, and as a
// regression oracle asserting that the rewritten miner produces an identical
// closed-pattern set. It must not be used by production code paths.
package baseline

import (
	"hash/fnv"
	"sort"
	"time"

	"specmine/internal/iterpattern"
	"specmine/internal/qre"
	"specmine/internal/seqdb"
)

// The result and option shapes are shared with the rewritten miner so outputs
// compare field for field. Workers is ignored: the baseline is sequential.
type (
	Options      = iterpattern.Options
	Result       = iterpattern.Result
	MinedPattern = iterpattern.MinedPattern
	Stats        = iterpattern.Stats
)

// Mine runs the closed miner when closed is true and the full miner
// otherwise.
func Mine(db *seqdb.Database, opts Options, closed bool) (*Result, error) {
	if closed {
		return MineClosed(db, opts)
	}
	return MineFull(db, opts)
}

// absoluteSupport mirrors the unexported Options.absoluteSupport resolution.
func absoluteSupport(o Options, numSequences int) int {
	if o.MinSupportRel > 0 {
		n := int(o.MinSupportRel*float64(numSequences) + 0.5)
		if n < 1 {
			n = 1
		}
		return n
	}
	return o.MinInstanceSupport
}

// MineFull mines the complete set of frequent iterative patterns.
func MineFull(db *seqdb.Database, opts Options) (*Result, error) {
	return mine(db, opts, false)
}

// MineClosed mines the closed set of frequent iterative patterns
// (Definition 4.2). The search prunes subtrees that can only produce
// non-closed patterns (see equivalence pruning in grow) and the surviving
// candidates pass through an exact closedness filter before being reported.
func MineClosed(db *seqdb.Database, opts Options) (*Result, error) {
	return mine(db, opts, true)
}

func mine(db *seqdb.Database, opts Options, closed bool) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	m := &miner{
		db:     db,
		pos:    db.Index(),
		opts:   opts,
		minSup: absoluteSupport(opts, db.NumSequences()),
		closed: closed,
	}
	if closed {
		m.landmarks = make(map[uint64][]landmark)
	}
	m.run()
	patterns := m.emitted
	if closed {
		patterns = m.closednessFilter(patterns)
		if !opts.IncludeInstances {
			for i := range patterns {
				patterns[i].Instances = nil
			}
		}
	}
	// Deliberate deviation from the seed: Stats are copied after the
	// closedness filter, matching the reporting fix in the rewritten miner so
	// NonClosedSuppressed stays comparable. Mining behaviour is unchanged.
	res := &Result{Patterns: patterns, Stats: m.stats, MinSupport: m.minSup}
	res.Stats.PatternsEmitted = len(res.Patterns)
	res.Stats.Duration = time.Since(start)
	res.Sort()
	return res, nil
}

// instance is the internal, allocation-friendly form of qre.Instance.
type instance struct {
	seq, start, end int32
}

func (in instance) export() qre.Instance {
	return qre.Instance{Seq: int(in.seq), Start: int(in.start), End: int(in.end)}
}

// landmark records an already-explored search node for the closed miner's
// equivalence pruning.
type landmark struct {
	pattern   seqdb.Pattern
	instances []instance
}

type miner struct {
	db     *seqdb.Database
	pos    []map[seqdb.EventID][]int
	opts   Options
	minSup int
	closed bool

	emitted   []MinedPattern
	stats     Stats
	landmarks map[uint64][]landmark
	stop      bool
}

func (m *miner) run() {
	// Frequent single events by instance count (apriori base case).
	counts := m.db.EventInstanceCount()
	events := make([]seqdb.EventID, 0, len(counts))
	for e, c := range counts {
		if c >= m.minSup {
			events = append(events, e)
		}
	}
	sort.Slice(events, func(i, j int) bool { return events[i] < events[j] })

	for _, e := range events {
		if m.stop {
			return
		}
		insts := m.singleEventInstances(e)
		m.grow(seqdb.Pattern{e}, insts)
	}
}

func (m *miner) singleEventInstances(e seqdb.EventID) []instance {
	var out []instance
	for si := range m.db.Sequences {
		for _, p := range m.pos[si][e] {
			out = append(out, instance{seq: int32(si), start: int32(p), end: int32(p)})
		}
	}
	return out
}

// grow explores the search-tree node for pattern p with instance list insts.
func (m *miner) grow(p seqdb.Pattern, insts []instance) {
	if m.stop {
		return
	}
	m.stats.NodesExplored++

	extInsts, windowEvents := m.extensions(p, insts)

	emit := true
	if m.closed {
		// Equivalence pruning (the "early identification and pruning of
		// non-closed patterns" of Section 4). If an earlier node L has exactly
		// the same instance list and p ⊑ L, then L witnesses that p is not
		// closed, so p is never emitted. If additionally no event of
		// alphabet(L)\alphabet(p) occurs in any forward window of p, every
		// extension of p has the matching extension of L with an identical
		// instance list, so the whole subtree can only produce non-closed
		// patterns and is skipped.
		if witness, pruneSubtree := m.checkLandmarks(p, insts, windowEvents); witness {
			emit = false
			m.stats.NonClosedSuppressed++
			if pruneSubtree {
				m.stats.SubtreesPrunedEquivalent++
				return
			}
		}
		// A suffix extension that preserves the support also witnesses
		// non-closedness of p (Definition 4.2 with a suffix super-sequence).
		if emit {
			for _, list := range extInsts {
				if len(list) == len(insts) {
					emit = false
					m.stats.NonClosedSuppressed++
					break
				}
			}
		}
	}
	if emit {
		m.emit(p, insts)
	}

	if m.opts.MaxPatternLength > 0 && len(p) >= m.opts.MaxPatternLength {
		return
	}

	// Deterministic extension order.
	exts := make([]seqdb.EventID, 0, len(extInsts))
	for e := range extInsts {
		exts = append(exts, e)
	}
	sort.Slice(exts, func(i, j int) bool { return exts[i] < exts[j] })

	for _, e := range exts {
		if m.stop {
			return
		}
		list := extInsts[e]
		if len(list) < m.minSup {
			m.stats.NodesPrunedInfrequent++
			continue
		}
		m.grow(p.Append(e), list)
	}
}

// extensions computes, for every event e, the instance list of p ++ <e>, and
// the set of all events observed in the forward windows of the instances.
//
// For each instance the candidate events are exactly the distinct events of
// the forward window: the run of non-alphabet events following the instance,
// terminated (inclusively) by the first alphabet event. A non-alphabet event
// additionally requires that it does not occur inside the instance span,
// because extending the pattern adds it to the QRE's exclusion set
// (Definition 4.1).
func (m *miner) extensions(p seqdb.Pattern, insts []instance) (map[seqdb.EventID][]instance, map[seqdb.EventID]struct{}) {
	alphabet := p.Alphabet()
	out := make(map[seqdb.EventID][]instance)
	window := make(map[seqdb.EventID]struct{})
	seen := make(map[seqdb.EventID]bool)
	for _, in := range insts {
		s := m.db.Sequences[in.seq]
		for k := range seen {
			delete(seen, k)
		}
		positions := m.pos[in.seq]
		for j := int(in.end) + 1; j < len(s); j++ {
			ev := s[j]
			window[ev] = struct{}{}
			if _, inAlpha := alphabet[ev]; inAlpha {
				// First alphabet event: always a valid extension, and the
				// window ends here.
				out[ev] = append(out[ev], instance{seq: in.seq, start: in.start, end: int32(j)})
				break
			}
			if seen[ev] {
				continue
			}
			seen[ev] = true
			// New symbol: its addition to the alphabet must not invalidate the
			// existing gaps, so it may not occur inside the span.
			if seqdb.CountInRange(positions[ev], int(in.start), int(in.end)+1) > 0 {
				continue
			}
			out[ev] = append(out[ev], instance{seq: in.seq, start: in.start, end: int32(j)})
		}
	}
	return out, window
}

func (m *miner) emit(p seqdb.Pattern, insts []instance) {
	mp := MinedPattern{Pattern: p.Clone(), Support: len(insts), SeqSupport: seqSupportOf(insts)}
	if m.opts.IncludeInstances || m.closed {
		// The closed miner always keeps instances while mining: the
		// closedness filter needs them. They are dropped afterwards unless
		// the caller asked for them.
		mp.Instances = exportInstances(insts)
	}
	m.emitted = append(m.emitted, mp)
	if m.opts.MaxPatterns > 0 && len(m.emitted) >= m.opts.MaxPatterns {
		m.stop = true
	}
}

func seqSupportOf(insts []instance) int {
	n := 0
	last := int32(-1)
	for _, in := range insts {
		if in.seq != last {
			n++
			last = in.seq
		}
	}
	return n
}

func exportInstances(insts []instance) []qre.Instance {
	out := make([]qre.Instance, len(insts))
	for i, in := range insts {
		out[i] = in.export()
	}
	return out
}

// checkLandmarks consults and updates the landmark table. It returns
// witness=true when an earlier pattern with an identical instance list is a
// super-sequence of p (so p is certainly not closed), and pruneSubtree=true
// when additionally none of the witness's extra events appears in p's forward
// windows (so no extension of p can behave differently from the witness's
// matching extension and the subtree holds no closed pattern).
func (m *miner) checkLandmarks(p seqdb.Pattern, insts []instance, windowEvents map[seqdb.EventID]struct{}) (witness, pruneSubtree bool) {
	sig := signatureOf(insts)
	entries := m.landmarks[sig]
	for i, lm := range entries {
		if !sameInstances(lm.instances, insts) {
			continue
		}
		if p.IsSubsequenceOf(lm.pattern) && len(p) < len(lm.pattern) {
			witness = true
			pruneSubtree = true
			for _, ev := range lm.pattern {
				if p.Contains(ev) {
					continue
				}
				if _, inWindow := windowEvents[ev]; inWindow {
					pruneSubtree = false
					break
				}
			}
			return witness, pruneSubtree
		}
		if lm.pattern.IsSubsequenceOf(p) {
			// p supersedes the stored landmark: remember the longer pattern so
			// that future equivalent nodes are pruned against it.
			entries[i] = landmark{pattern: p.Clone(), instances: lm.instances}
			m.landmarks[sig] = entries
			return false, false
		}
	}
	m.landmarks[sig] = append(entries, landmark{pattern: p.Clone(), instances: append([]instance(nil), insts...)})
	return false, false
}

func signatureOf(insts []instance) uint64 {
	h := fnv.New64a()
	var buf [12]byte
	for _, in := range insts {
		buf[0] = byte(in.seq)
		buf[1] = byte(in.seq >> 8)
		buf[2] = byte(in.seq >> 16)
		buf[3] = byte(in.seq >> 24)
		buf[4] = byte(in.start)
		buf[5] = byte(in.start >> 8)
		buf[6] = byte(in.start >> 16)
		buf[7] = byte(in.start >> 24)
		buf[8] = byte(in.end)
		buf[9] = byte(in.end >> 8)
		buf[10] = byte(in.end >> 16)
		buf[11] = byte(in.end >> 24)
		h.Write(buf[:])
	}
	return h.Sum64()
}

func sameInstances(a, b []instance) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
