package baseline

import (
	"sort"
	"time"

	"specmine/internal/seqdb"
	"specmine/internal/seqpattern"
)

// MineSeqPatterns preserves the seed's sequential-pattern miner: classic
// PrefixSpan-style pseudo-projection with per-node candidate maps and a
// per-sequence suffix rescan at every search node. It is the comparison
// point (and the equivalence oracle) for the index-backed rewrite in
// package seqpattern.
func MineSeqPatterns(db *seqdb.Database, opts seqpattern.Options) (*seqpattern.Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	m := &seqMiner{
		db:     db,
		opts:   opts,
		minSup: seqAbsoluteSupport(opts, db.NumSequences()),
	}
	m.run()
	res := &seqpattern.Result{Patterns: m.out, MinSupport: m.minSup}
	if opts.ClosedOnly {
		res.Patterns = filterClosedQuadratic(res.Patterns)
	}
	res.Duration = time.Since(start)
	res.Sort()
	return res, nil
}

func seqAbsoluteSupport(o seqpattern.Options, numSequences int) int {
	if o.MinSupportRel > 0 {
		n := int(o.MinSupportRel*float64(numSequences) + 0.5)
		if n < 1 {
			n = 1
		}
		return n
	}
	return o.MinSeqSupport
}

// seqProjection records, per sequence that still matches the current prefix,
// the position right after the last matched event.
type seqProjection struct {
	seq  int
	next int
}

type seqMiner struct {
	db     *seqdb.Database
	opts   seqpattern.Options
	minSup int
	out    []seqpattern.MinedPattern
}

func (m *seqMiner) run() {
	initial := make([]seqProjection, 0, m.db.NumSequences())
	for i := range m.db.Sequences {
		initial = append(initial, seqProjection{seq: i, next: 0})
	}
	m.grow(nil, initial)
}

// grow extends the current prefix pattern using the projected database proj.
func (m *seqMiner) grow(prefix seqdb.Pattern, proj []seqProjection) {
	if m.opts.MaxPatternLength > 0 && len(prefix) >= m.opts.MaxPatternLength {
		return
	}
	type occ struct {
		proj []seqProjection
	}
	counts := make(map[seqdb.EventID]*occ)
	for _, pr := range proj {
		s := m.db.Sequences[pr.seq]
		seen := make(map[seqdb.EventID]bool)
		for j := pr.next; j < len(s); j++ {
			ev := s[j]
			if seen[ev] {
				continue
			}
			seen[ev] = true
			o := counts[ev]
			if o == nil {
				o = &occ{}
				counts[ev] = o
			}
			o.proj = append(o.proj, seqProjection{seq: pr.seq, next: j + 1})
		}
	}
	events := make([]seqdb.EventID, 0, len(counts))
	for ev, o := range counts {
		if len(o.proj) >= m.minSup {
			events = append(events, ev)
		}
	}
	sort.Slice(events, func(i, j int) bool { return events[i] < events[j] })
	for _, ev := range events {
		o := counts[ev]
		p := prefix.Append(ev)
		m.out = append(m.out, seqpattern.MinedPattern{Pattern: p, SeqSupport: len(o.proj)})
		m.grow(p, o.proj)
	}
}

// filterClosedQuadratic is the seed closedness filter: all-pairs subsumption
// within equal-support groups.
func filterClosedQuadratic(patterns []seqpattern.MinedPattern) []seqpattern.MinedPattern {
	bySupport := make(map[int][]seqpattern.MinedPattern)
	for _, p := range patterns {
		bySupport[p.SeqSupport] = append(bySupport[p.SeqSupport], p)
	}
	keep := patterns[:0]
	for _, p := range patterns {
		closed := true
		for _, q := range bySupport[p.SeqSupport] {
			if len(q.Pattern) > len(p.Pattern) && p.Pattern.IsSubsequenceOf(q.Pattern) {
				closed = false
				break
			}
		}
		if closed {
			keep = append(keep, p)
		}
	}
	return keep
}
