package baseline

import (
	"specmine/internal/qre"
	"specmine/internal/seqdb"
)

// closednessFilter applies the closedness check of Definition 4.2 to the
// candidate patterns collected during the search. A pattern P is dropped when
// some super-sequence Q has the same support and every instance of P
// corresponds to (is contained in the span of) a distinct instance of Q.
//
// Witness super-sequences are searched slot by slot: a witness inserts a
// series of events either before the pattern (prefix), after it (suffix), or
// into one of its gaps (infix). For each slot the filter inspects the
// corresponding region of every instance — the backward window, the forward
// window, or the gap between the two neighbouring matched positions — and
// builds candidate insertions from the events common to all regions: each
// common event on its own (repeated as often as it appears when the
// multiplicities agree) and the common events taken together when their
// interleaving is identical in every region. Every candidate is then verified
// exactly against the database (instance count equality plus correspondence),
// so a pattern is only ever dropped with a genuine witness in hand.
func (m *miner) closednessFilter(candidates []MinedPattern) []MinedPattern {
	kept := candidates[:0]
	for _, cand := range candidates {
		if m.isClosed(cand) {
			kept = append(kept, cand)
		} else {
			m.stats.NonClosedSuppressed++
		}
	}
	return kept
}

func (m *miner) isClosed(cand MinedPattern) bool {
	p := cand.Pattern
	insts := cand.Instances
	if len(insts) == 0 {
		return true
	}
	alphabet := p.Alphabet()

	// regions[slot][k] is the event series of instance k's region for that
	// insertion slot.
	regions := make([][]seqdb.Sequence, len(p)+1)
	for slot := range regions {
		regions[slot] = make([]seqdb.Sequence, 0, len(insts))
	}
	for _, in := range insts {
		s := m.db.Sequences[in.Seq]
		matched := matchedPositions(s, p, in.Start)
		if matched == nil {
			// Should not happen: the instance was produced by the miner.
			continue
		}
		regions[0] = append(regions[0], sliceRegion(s, backwardWindowStart(s, alphabet, in.Start), in.Start-1))
		for g := 1; g < len(p); g++ {
			regions[g] = append(regions[g], sliceRegion(s, matched[g-1]+1, matched[g]-1))
		}
		regions[len(p)] = append(regions[len(p)], sliceRegion(s, in.End+1, forwardWindowEnd(s, alphabet, in.End)))
	}

	for slot := 0; slot <= len(p); slot++ {
		for _, w := range candidateInsertions(regions[slot]) {
			if m.witnesses(p, insts, slot, w) {
				return false
			}
		}
	}
	return true
}

// witnesses verifies exactly whether inserting series w at the given slot of
// p produces a super-pattern with identical support whose instances contain
// the instances of p (Definition 4.2).
func (m *miner) witnesses(p seqdb.Pattern, insts []qre.Instance, slot int, w []seqdb.EventID) bool {
	q := make(seqdb.Pattern, 0, len(p)+len(w))
	q = append(q, p[:slot]...)
	q = append(q, w...)
	q = append(q, p[slot:]...)
	qInsts := qre.FindAllInstances(m.db, q)
	if len(qInsts) != len(insts) {
		return false
	}
	return qre.CorrespondsTo(insts, qInsts)
}

// candidateInsertions derives the insertion series worth verifying for one
// slot from the per-instance region contents. An event can only take part in
// a witness if it occurs in every region; a single-event insertion must use
// the same multiplicity everywhere (the one-to-one correspondence requirement
// forces the witness to absorb every occurrence in the gap); and a
// multi-event insertion is proposed when the regions, restricted to the
// shared events with agreeing multiplicities, spell out the same series.
func candidateInsertions(regions []seqdb.Sequence) [][]seqdb.EventID {
	if len(regions) == 0 {
		return nil
	}
	// Count occurrences per event per region; start from the first region's
	// events and intersect.
	common := make(map[seqdb.EventID]int) // event -> multiplicity if consistent, -1 otherwise
	for _, ev := range regions[0] {
		common[ev]++
	}
	for _, region := range regions[1:] {
		if len(common) == 0 {
			return nil
		}
		counts := make(map[seqdb.EventID]int, len(region))
		for _, ev := range region {
			counts[ev]++
		}
		for ev, c := range common {
			rc, ok := counts[ev]
			if !ok {
				delete(common, ev)
				continue
			}
			if c != -1 && rc != c {
				common[ev] = -1
			}
		}
	}
	if len(common) == 0 {
		return nil
	}

	var out [][]seqdb.EventID
	// Single-event insertions.
	agreeing := make(map[seqdb.EventID]struct{})
	for ev, c := range common {
		if c == -1 {
			// The event occurs everywhere but with differing multiplicities;
			// a single occurrence can still witness a prefix/suffix border, so
			// propose the length-1 insertion.
			out = append(out, []seqdb.EventID{ev})
			continue
		}
		agreeing[ev] = struct{}{}
		w := make([]seqdb.EventID, c)
		for i := range w {
			w[i] = ev
		}
		out = append(out, w)
		if c > 1 {
			out = append(out, []seqdb.EventID{ev})
		}
	}
	// Multi-event insertion: the restriction of every region to the agreeing
	// events, when identical across regions.
	if len(agreeing) > 1 {
		first := restrict(regions[0], agreeing)
		same := true
		for _, region := range regions[1:] {
			if !first.Equal(seqdb.Pattern(restrict(region, agreeing))) {
				same = false
				break
			}
		}
		if same && len(first) > 0 {
			out = append(out, first)
		}
	}
	return out
}

// restrict returns the subsequence of region consisting of the events in keep.
func restrict(region seqdb.Sequence, keep map[seqdb.EventID]struct{}) seqdb.Pattern {
	var out seqdb.Pattern
	for _, ev := range region {
		if _, ok := keep[ev]; ok {
			out = append(out, ev)
		}
	}
	return out
}

// sliceRegion returns s[lo..hi] clamped to valid bounds (empty when hi < lo).
func sliceRegion(s seqdb.Sequence, lo, hi int) seqdb.Sequence {
	if lo < 0 {
		lo = 0
	}
	if hi >= len(s) {
		hi = len(s) - 1
	}
	if hi < lo {
		return nil
	}
	return s[lo : hi+1]
}

// matchedPositions returns the positions of every pattern event for the
// instance of p starting at start, or nil if no instance starts there.
func matchedPositions(s seqdb.Sequence, p seqdb.Pattern, start int) []int {
	if start < 0 || start >= len(s) || s[start] != p[0] {
		return nil
	}
	alphabet := p.Alphabet()
	out := make([]int, 0, len(p))
	out = append(out, start)
	pos := start
	for k := 1; k < len(p); k++ {
		pos++
		for pos < len(s) {
			if _, inAlpha := alphabet[s[pos]]; inAlpha {
				break
			}
			pos++
		}
		if pos >= len(s) || s[pos] != p[k] {
			return nil
		}
		out = append(out, pos)
	}
	return out
}

// backwardWindowStart returns the first position of the backward window of an
// instance starting at start: the window extends from start-1 backwards up to
// and including the nearest earlier event of the pattern's alphabet.
func backwardWindowStart(s seqdb.Sequence, alphabet map[seqdb.EventID]struct{}, start int) int {
	for i := start - 1; i >= 0; i-- {
		if _, inAlpha := alphabet[s[i]]; inAlpha {
			return i
		}
	}
	return 0
}

// forwardWindowEnd returns the last position of the forward window of an
// instance ending at end: the window extends from end+1 forwards up to and
// including the nearest later event of the pattern's alphabet.
func forwardWindowEnd(s seqdb.Sequence, alphabet map[seqdb.EventID]struct{}, end int) int {
	for i := end + 1; i < len(s); i++ {
		if _, inAlpha := alphabet[s[i]]; inAlpha {
			return i
		}
	}
	return len(s) - 1
}
