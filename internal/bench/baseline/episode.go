package baseline

import (
	"sort"
	"time"

	"specmine/internal/episode"
	"specmine/internal/seqdb"
)

// MineEpisodes preserves the seed's WINEPI miner: level-wise candidate
// generation with every candidate counted by rescanning all sliding windows
// of the trace. It is the comparison point (and the equivalence oracle) for
// the posting-driven rewrite in package episode.
func MineEpisodes(s seqdb.Sequence, opts episode.Options) (*episode.Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	totalWindows := len(s) + opts.WindowWidth - 1
	if len(s) == 0 {
		return &episode.Result{TotalWindows: 0, Duration: time.Since(start)}, nil
	}
	minWindows := int(opts.MinFrequency*float64(totalWindows) + 0.999999)
	if minWindows < 1 {
		minWindows = 1
	}

	maxLen := opts.WindowWidth
	if opts.MaxEpisodeLength > 0 && opts.MaxEpisodeLength < maxLen {
		maxLen = opts.MaxEpisodeLength
	}

	m := &epiMiner{s: s, width: opts.WindowWidth, minWindows: minWindows, maxLen: maxLen, total: totalWindows}
	m.run()
	res := &episode.Result{Episodes: m.out, TotalWindows: totalWindows, Duration: time.Since(start)}
	res.Sort()
	return res, nil
}

// MineEpisodeDatabase preserves the seed's database-level episode view: each
// sequence is mined separately with a one-window floor and the window counts
// are merged before the global frequency filter.
func MineEpisodeDatabase(db *seqdb.Database, opts episode.Options) (*episode.Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	merged := make(map[string]*episode.Episode)
	totalWindows := 0
	for _, s := range db.Sequences {
		res, err := MineEpisodes(s, episode.Options{WindowWidth: opts.WindowWidth, MinFrequency: 1.0 / float64(len(s)+opts.WindowWidth), MaxEpisodeLength: opts.MaxEpisodeLength})
		if err != nil {
			return nil, err
		}
		totalWindows += res.TotalWindows
		for _, ep := range res.Episodes {
			key := ep.Pattern.Key()
			if cur, ok := merged[key]; ok {
				cur.Windows += ep.Windows
			} else {
				cp := ep
				merged[key] = &cp
			}
		}
	}
	out := &episode.Result{TotalWindows: totalWindows}
	minWindows := int(opts.MinFrequency*float64(totalWindows) + 0.999999)
	if minWindows < 1 {
		minWindows = 1
	}
	for _, ep := range merged {
		if ep.Windows >= minWindows {
			ep.Frequency = float64(ep.Windows) / float64(totalWindows)
			out.Episodes = append(out.Episodes, *ep)
		}
	}
	out.Duration = time.Since(start)
	out.Sort()
	return out, nil
}

type epiMiner struct {
	s          seqdb.Sequence
	width      int
	minWindows int
	maxLen     int
	total      int
	out        []episode.Episode
}

func (m *epiMiner) run() {
	// Level-wise (apriori) search: candidate episodes of length k are built
	// from frequent episodes of length k-1, then counted against all windows.
	seen := make(map[seqdb.EventID]struct{})
	var singles []seqdb.Pattern
	for _, e := range m.s {
		if _, ok := seen[e]; ok {
			continue
		}
		seen[e] = struct{}{}
		singles = append(singles, seqdb.Pattern{e})
	}
	sort.Slice(singles, func(i, j int) bool { return singles[i][0] < singles[j][0] })
	level := m.countAndFilter(singles)

	for k := 2; k <= m.maxLen && len(level) > 0; k++ {
		var candidates []seqdb.Pattern
		for _, p := range level {
			for _, s := range singles {
				candidates = append(candidates, p.Append(s[0]))
			}
		}
		level = m.countAndFilter(candidates)
	}
}

func (m *epiMiner) countAndFilter(candidates []seqdb.Pattern) []seqdb.Pattern {
	var kept []seqdb.Pattern
	for _, p := range candidates {
		w := m.countWindows(p)
		if w >= m.minWindows {
			kept = append(kept, p)
			m.out = append(m.out, episode.Episode{Pattern: p, Windows: w, Frequency: float64(w) / float64(m.total)})
		}
	}
	return kept
}

// countWindows rescans every sliding window of width m.width and counts the
// ones containing p as a subsequence — the per-candidate full-trace pass the
// posting-driven miner exists to avoid.
func (m *epiMiner) countWindows(p seqdb.Pattern) int {
	count := 0
	for start := -(m.width - 1); start < len(m.s); start++ {
		lo := start
		if lo < 0 {
			lo = 0
		}
		hi := start + m.width
		if hi > len(m.s) {
			hi = len(m.s)
		}
		if hi <= lo {
			continue
		}
		if seqdb.Sequence(m.s[lo:hi]).ContainsSubsequence(p) {
			count++
		}
	}
	return count
}
