package bench

import (
	"fmt"
	"os"
	"testing"
)

// TestMain wires the SPECMINE_CPUPROFILE / SPECMINE_MUTEXPROFILE capture
// hooks (see profile.go) around the whole test/benchmark binary, so CI's
// bench smoke job uploads profiles of exactly what it measured.
func TestMain(m *testing.M) {
	stop, err := StartProfiles()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	code := m.Run()
	if err := stop(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}
