// Command benchguard is the CI benchmark-regression gate. It re-measures the
// headline cases — synth closed mining, the batched conformance check, dense
// sequential-pattern (comparator) mining, and durable store ingestion (as a
// soft, report-only row until the trajectory has history) — writes
// benchstat-compatible sample files (old.txt holding the checked-in
// BENCH_mining.json trajectory values, new.txt the live measurements), and
// exits non-zero when any hard case's best live run is more than the allowed
// factor slower than its trajectory value. Every case is measured and
// reported in one table before the verdict, so a regression in one case
// never hides another.
//
// CI runs it as
//
//	go run ./internal/bench/benchguard -trajectory BENCH_mining.json -out /tmp/benchguard
//	benchstat /tmp/benchguard/old.txt /tmp/benchguard/new.txt
//
// so the human-readable delta report comes from benchstat while the
// pass/fail decision stays hermetic (no external tooling needed to gate).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"specmine/internal/bench"
	"specmine/internal/iterpattern"
	"specmine/internal/seqpattern"
	"specmine/internal/store"
	"specmine/internal/stream"
	"specmine/internal/verify"
)

type trajectoryCase struct {
	Name        string `json:"name"`
	FlatNsPerOp int64  `json:"flat_ns_per_op"`
}

type verifyTrajectoryCase struct {
	Name           string `json:"name"`
	BatchedNsPerOp int64  `json:"batched_ns_per_op"`
}

type storeTrajectoryCase struct {
	Name           string `json:"name"`
	DurableNsPerOp int64  `json:"durable_ns_per_op"`
}

type trajectory struct {
	Schema          string                 `json:"schema"`
	Cases           []trajectoryCase       `json:"cases"`
	SeqPatternCases []trajectoryCase       `json:"seqpattern_cases"`
	VerifyCases     []verifyTrajectoryCase `json:"verify_cases"`
	StoreCases      []storeTrajectoryCase  `json:"store_cases"`
}

// gate is one benchmark case the guard re-measures against its trajectory
// value.
type gate struct {
	label     string // table row label
	benchName string // benchstat sample name
	oldNs     int64
	run       func(b *testing.B)
	// soft marks a report-only row: it is measured and printed but never
	// fails the build. The durable-ingest headline starts soft because a
	// single trajectory point on a virtualised runner is not yet a trend —
	// once a second PR has recorded a point (two store_cases generations in
	// the file's history), flip it to a hard gate.
	soft bool

	best int64 // filled by measurement
}

func main() {
	trajPath := flag.String("trajectory", "BENCH_mining.json", "path to the checked-in trajectory file")
	outDir := flag.String("out", ".", "directory for the benchstat sample files old.txt and new.txt")
	count := flag.Int("count", 5, "number of live benchmark runs per case")
	factor := flag.Float64("factor", 1.5, "maximum allowed ns/op regression factor")
	flag.Parse()

	buf, err := os.ReadFile(*trajPath)
	if err != nil {
		fatalf("reading trajectory: %v", err)
	}
	var traj trajectory
	if err := json.Unmarshal(buf, &traj); err != nil {
		fatalf("parsing trajectory: %v", err)
	}

	gates := []*gate{miningGate(traj), verifyGate(traj), seqPatternGate(traj)}
	if g := storeGate(traj); g != nil {
		gates = append(gates, g)
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatalf("creating output directory: %v", err)
	}
	var oldBuf, newBuf bytes.Buffer
	writeHeader(&oldBuf)
	writeHeader(&newBuf)

	for _, g := range gates {
		writeSamples(&oldBuf, g.benchName, []int64{g.oldNs})
		samples := make([]int64, 0, *count)
		for i := 0; i < *count; i++ {
			ns := testing.Benchmark(g.run).NsPerOp()
			samples = append(samples, ns)
			if g.best == 0 || ns < g.best {
				g.best = ns
			}
		}
		writeSamples(&newBuf, g.benchName, samples)
	}
	if err := os.WriteFile(filepath.Join(*outDir, "old.txt"), oldBuf.Bytes(), 0o644); err != nil {
		fatalf("writing old.txt: %v", err)
	}
	if err := os.WriteFile(filepath.Join(*outDir, "new.txt"), newBuf.Bytes(), 0o644); err != nil {
		fatalf("writing new.txt: %v", err)
	}

	// One readable verdict table covering every case, then the exit status.
	failed := 0
	fmt.Printf("benchguard: best of %d live runs vs checked-in trajectory (budget %.2fx)\n", *count, *factor)
	fmt.Printf("  %-42s %14s %14s %7s %7s\n", "case", "old ns/op", "best ns/op", "ratio", "status")
	for _, g := range gates {
		limit := int64(float64(g.oldNs) * *factor)
		status := "ok"
		switch {
		case g.best > limit && g.soft:
			status = "SOFT" // over budget, report-only: see gate.soft
		case g.best > limit:
			status = "FAIL"
			failed++
		case g.soft:
			status = "ok*" // report-only row within budget
		}
		fmt.Printf("  %-42s %14d %14d %6.2fx %7s\n",
			g.label, g.oldNs, g.best, float64(g.best)/float64(g.oldNs), status)
	}
	if failed > 0 {
		fatalf("%d of %d cases exceed the %.2fx budget", failed, len(gates), *factor)
	}
	fmt.Println("benchguard: within budget")
}

// miningGate re-measures the closed-mining acceptance headline.
func miningGate(traj trajectory) *gate {
	c := bench.ClosedCases()[0]
	g := &gate{
		label:     "mine-closed/" + c.Name,
		benchName: "BenchmarkMineClosed/" + c.Name + "/flat",
	}
	for _, tc := range traj.Cases {
		if tc.Name == c.Name {
			g.oldNs = tc.FlatNsPerOp
			break
		}
	}
	if g.oldNs == 0 {
		fatalf("headline case %s not found in trajectory", c.Name)
	}
	db := c.Gen()
	db.FlatIndex()
	g.run = func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := iterpattern.MineClosed(db, c.Opts); err != nil {
				b.Fatal(err)
			}
		}
	}
	return g
}

// verifyGate re-measures the batched conformance headline (which since the
// online overhaul also covers the streaming checker — Check drives it).
func verifyGate(traj trajectory) *gate {
	c := bench.VerifyCases()[0]
	g := &gate{
		label:     "verify-batched/" + c.Name,
		benchName: "BenchmarkVerify/" + c.Name + "/batched",
	}
	for _, vc := range traj.VerifyCases {
		if vc.Name == c.Name {
			g.oldNs = vc.BatchedNsPerOp
			break
		}
	}
	if g.oldNs == 0 {
		fatalf("verify headline case %s not found in trajectory", c.Name)
	}
	ruleSet, db := c.Gen()
	if len(ruleSet) == 0 {
		fatalf("verify headline case %s mined no rules", c.Name)
	}
	engine, err := verify.NewEngine(ruleSet)
	if err != nil {
		fatalf("compiling verify headline rules: %v", err)
	}
	g.run = func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = engine.Check(db)
		}
	}
	return g
}

// seqPatternGate re-measures the dense sequential-pattern comparator
// headline (the unified-kernel miner over the flat index).
func seqPatternGate(traj trajectory) *gate {
	c := bench.SeqPatternCases()[0]
	g := &gate{
		label:     "mine-seqpattern/" + c.Name,
		benchName: "BenchmarkMineSeqPatterns/" + c.Name + "/flat",
	}
	for _, tc := range traj.SeqPatternCases {
		if tc.Name == c.Name {
			g.oldNs = tc.FlatNsPerOp
			break
		}
	}
	if g.oldNs == 0 {
		fatalf("seqpattern headline case %s not found in trajectory", c.Name)
	}
	db := c.Gen()
	db.FlatIndex()
	g.run = func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := seqpattern.Mine(db, c.Opts); err != nil {
				b.Fatal(err)
			}
		}
	}
	return g
}

// storeGate re-measures the durable-ingest headline as a soft (report-only)
// row; see gate.soft. Returns nil when the trajectory predates schema v5 and
// has no store section to compare against.
func storeGate(traj trajectory) *gate {
	c := bench.StoreCases()[0]
	g := &gate{
		label:     "store-ingest/" + c.Name,
		benchName: "BenchmarkStoreIngest/" + c.Name + "/durable",
		soft:      true,
	}
	for _, tc := range traj.StoreCases {
		if tc.Name == c.Name {
			g.oldNs = tc.DurableNsPerOp
			break
		}
	}
	if g.oldNs == 0 {
		return nil
	}
	dict, ops, _, _ := c.GenStream()
	g.run = func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			dir, err := os.MkdirTemp("", "benchguard-store-*")
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			st, err := store.Open(store.Options{Dir: dir, Shards: c.Shards})
			if err != nil {
				b.Fatal(err)
			}
			for _, name := range dict.Export() {
				st.Dict().Intern(name)
			}
			ing, err := stream.Open(stream.Config{FlushBatch: c.FlushBatch, Store: st})
			if err != nil {
				b.Fatal(err)
			}
			for _, op := range ops {
				if op.Seal {
					err = ing.CloseTrace(op.TraceID)
				} else {
					err = ing.IngestIDs(op.TraceID, op.Events...)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
			if _, err := ing.Snapshot(); err != nil {
				b.Fatal(err)
			}
			if err := ing.Close(); err != nil {
				b.Fatal(err)
			}
			if err := st.Close(); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			os.RemoveAll(dir)
			b.StartTimer()
		}
	}
	return g
}

func writeHeader(buf *bytes.Buffer) {
	fmt.Fprintf(buf, "goos: %s\ngoarch: %s\npkg: specmine/internal/bench\n", runtime.GOOS, runtime.GOARCH)
}

// writeSamples appends benchstat-parsable sample lines.
func writeSamples(buf *bytes.Buffer, benchName string, nsPerOp []int64) {
	for _, ns := range nsPerOp {
		fmt.Fprintf(buf, "%s \t       1\t%12d ns/op\n", benchName, ns)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchguard: "+format+"\n", args...)
	os.Exit(1)
}
