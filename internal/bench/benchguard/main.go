// Command benchguard is the CI benchmark-regression gate. It re-measures the
// headline cases — synth closed mining, the batched conformance check, dense
// sequential-pattern (comparator) mining, and durable store ingestion (as a
// soft, report-only row until the trajectory has history) — writes
// benchstat-compatible sample files (old.txt holding the checked-in
// BENCH_mining.json trajectory values, new.txt the live measurements), and
// exits non-zero when any hard case's best live run is more than the allowed
// factor slower than its trajectory value. Every case is measured and
// reported in one table before the verdict, so a regression in one case
// never hides another.
//
// CI runs it as
//
//	go run ./internal/bench/benchguard -trajectory BENCH_mining.json -out /tmp/benchguard
//	benchstat /tmp/benchguard/old.txt /tmp/benchguard/new.txt
//
// so the human-readable delta report comes from benchstat while the
// pass/fail decision stays hermetic (no external tooling needed to gate).
//
// Beyond the per-case regression budget, the guard enforces ratio floors: a
// parallel-speedup floor on the closed-mining headline (workers=4 vs
// workers=1, measured live at GOMAXPROCS >= 4) that fails hard on multi-core
// runners and downgrades to report-only where the machine cannot physically
// exhibit parallelism, a soft durable-vs-memory throughput floor on the
// store headline, and — since schema v7 — two out-of-core floors on the
// clustered fixture of internal/bench/oocore.go: a soft oo-core-ratio floor
// (out-of-core mining throughput vs the in-memory cold path on a
// fits-in-RAM store, unlimited cache) and a hard segment-skip floor (the
// selective-rule check must answer >= 90% of segment bodies from statistics
// alone — a drop means segment statistics or the skip predicate regressed).
// Since schema v8 the guard also measures the stats-driven planner floor
// (the selective rule check through the planned, statistics-gated descent
// must beat the unplanned online automaton by the -planner-floor factor,
// soft until the trajectory has history), validates that the trajectory
// carries the v8 planner_cases section, and writes the headline query plan's
// Explain() render to <out>/explain.txt so CI uploads the plan alongside the
// benchstat samples. The observability generation added a hard obs-overhead
// floor: durable ingest with a live metrics registry attached to the store
// and the ingester must retain at least -obs-floor (default 0.97) of the
// uninstrumented run's throughput, both sides measured live in this run.
// Scaling rows that were measured on a machine with fewer
// processors than workers (num_cpu < workers at gomaxprocs >= workers — a
// sandboxed regeneration) are annotated as overhead-only rather than trusted
// as scaling evidence.
// All floors are measured live rather than read from the trajectory, so the
// gate cannot be satisfied by a stale file.
//
// The SPECMINE_CPUPROFILE / SPECMINE_MUTEXPROFILE environment toggles (see
// internal/bench/profile.go) capture profiles of exactly what the guard
// measured.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"specmine/internal/bench"
	"specmine/internal/core"
	"specmine/internal/iterpattern"
	"specmine/internal/obs"
	"specmine/internal/plan"
	"specmine/internal/seqdb"
	"specmine/internal/seqpattern"
	"specmine/internal/store"
	"specmine/internal/stream"
	"specmine/internal/verify"
)

// scalingRow mirrors the v6 trajectory's per-row scaling schema; the guard
// reads it to sanity-check that the checked-in curve was measured honestly
// (no parallel row with gomaxprocs < workers — the v5 file's defect).
type scalingRow struct {
	Workers    int   `json:"workers"`
	NsPerOp    int64 `json:"ns_per_op"`
	Gomaxprocs int   `json:"gomaxprocs"`
	NumCPU     int   `json:"num_cpu"`
}

type trajectoryCase struct {
	Name        string       `json:"name"`
	FlatNsPerOp int64        `json:"flat_ns_per_op"`
	Scaling     []scalingRow `json:"scaling"`
}

type verifyTrajectoryCase struct {
	Name           string `json:"name"`
	BatchedNsPerOp int64  `json:"batched_ns_per_op"`
}

type storeTrajectoryCase struct {
	Name           string `json:"name"`
	DurableNsPerOp int64  `json:"durable_ns_per_op"`
}

// plannerTrajectoryCase mirrors the v8 trajectory's planner section; the
// guard only needs to know the section exists and what speedup was recorded
// (the floor itself is measured live).
type plannerTrajectoryCase struct {
	Name    string  `json:"name"`
	Speedup float64 `json:"speedup"`
}

type trajectory struct {
	Schema          string                  `json:"schema"`
	Cases           []trajectoryCase        `json:"cases"`
	SeqPatternCases []trajectoryCase        `json:"seqpattern_cases"`
	VerifyCases     []verifyTrajectoryCase  `json:"verify_cases"`
	StoreCases      []storeTrajectoryCase   `json:"store_cases"`
	PlannerCases    []plannerTrajectoryCase `json:"planner_cases"`
}

// trajectorySchema is the schema generation the guard accepts. Bumped in
// lockstep with the writer in internal/bench/bench_test.go — an old file
// fails fast instead of silently skipping the sections it is missing.
const trajectorySchema = "specmine/bench-mining/v8"

// gate is one benchmark case the guard re-measures against its trajectory
// value.
type gate struct {
	label     string // table row label
	benchName string // benchstat sample name
	oldNs     int64
	run       func(b *testing.B)
	// soft marks a report-only row: it is measured and printed but never
	// fails the build. The durable-ingest headline starts soft because a
	// single trajectory point on a virtualised runner is not yet a trend —
	// once a second PR has recorded a point (two store_cases generations in
	// the file's history), flip it to a hard gate.
	soft bool

	best int64 // filled by measurement
}

// ratioCheck is one live-measured floor: a ratio (speedup or throughput
// fraction) that must stay at or above its floor. Unlike gates it has no
// trajectory baseline — both sides of the ratio are measured in this run.
type ratioCheck struct {
	label string
	floor float64
	value float64
	soft  bool   // report-only: printed, never fails the build
	note  string // why a check is soft, when it is
}

// speedupWorkers is the parallel worker count the speedup floor compares
// against the sequential run. Matches the acceptance headline: workers=4
// must reach the floor over workers=1.
const speedupWorkers = 4

// profStop flushes any SPECMINE_*PROFILE captures; fatalf calls it so a
// failed gate still uploads its profiles.
var profStop = func() error { return nil }

func main() {
	trajPath := flag.String("trajectory", "BENCH_mining.json", "path to the checked-in trajectory file")
	outDir := flag.String("out", ".", "directory for the benchstat sample files old.txt and new.txt")
	count := flag.Int("count", 5, "number of live benchmark runs per case")
	factor := flag.Float64("factor", 1.5, "maximum allowed ns/op regression factor")
	speedupFloor := flag.Float64("speedup-floor", 2.5, "minimum closed-mining speedup at workers=4 vs workers=1 (hard when NumCPU >= 4)")
	durableFloor := flag.Float64("durable-floor", 0.7, "minimum durable-ingest throughput as a fraction of memory-only (report-only)")
	fsimFloor := flag.Float64("fsim-floor", 0.97, "minimum durable-ingest throughput vs the pre-fsim trajectory value (report-only; <3% filesystem-indirection overhead)")
	oocoreFloor := flag.Float64("oocore-floor", 0.5, "minimum out-of-core mining throughput as a fraction of the in-memory cold path (report-only)")
	skipFloor := flag.Float64("skip-floor", 0.9, "minimum segment skip rate on the selective-rule check workload (hard)")
	plannerFloor := flag.Float64("planner-floor", 1.5, "minimum planned-vs-unplanned speedup on the selective rule check (report-only)")
	obsFloor := flag.Float64("obs-floor", 0.97, "minimum instrumented durable-ingest throughput as a fraction of uninstrumented (hard)")
	flag.Parse()

	stop, err := bench.StartProfiles()
	if err != nil {
		fatalf("%v", err)
	}
	profStop = stop

	buf, err := os.ReadFile(*trajPath)
	if err != nil {
		fatalf("reading trajectory: %v", err)
	}
	var traj trajectory
	if err := json.Unmarshal(buf, &traj); err != nil {
		fatalf("parsing trajectory: %v", err)
	}
	if traj.Schema != trajectorySchema {
		fatalf("trajectory schema %q, want %q — regenerate BENCH_mining.json with the current writer", traj.Schema, trajectorySchema)
	}
	if len(traj.PlannerCases) == 0 {
		fatalf("trajectory has no planner_cases — regenerate BENCH_mining.json with the v8 writer")
	}
	checkScalingRows(traj)

	gates := []*gate{miningGate(traj), verifyGate(traj), seqPatternGate(traj)}
	sg := storeGate(traj)
	if sg != nil {
		gates = append(gates, sg)
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatalf("creating output directory: %v", err)
	}
	var oldBuf, newBuf bytes.Buffer
	writeHeader(&oldBuf)
	writeHeader(&newBuf)

	for _, g := range gates {
		writeSamples(&oldBuf, g.benchName, []int64{g.oldNs})
		samples := make([]int64, 0, *count)
		for i := 0; i < *count; i++ {
			ns := testing.Benchmark(g.run).NsPerOp()
			samples = append(samples, ns)
			if g.best == 0 || ns < g.best {
				g.best = ns
			}
		}
		writeSamples(&newBuf, g.benchName, samples)
	}
	if err := os.WriteFile(filepath.Join(*outDir, "old.txt"), oldBuf.Bytes(), 0o644); err != nil {
		fatalf("writing old.txt: %v", err)
	}
	if err := os.WriteFile(filepath.Join(*outDir, "new.txt"), newBuf.Bytes(), 0o644); err != nil {
		fatalf("writing new.txt: %v", err)
	}

	// One readable verdict table covering every case, then the exit status.
	failed := 0
	fmt.Printf("benchguard: best of %d live runs vs checked-in trajectory (budget %.2fx)\n", *count, *factor)
	fmt.Printf("  %-42s %14s %14s %7s %7s\n", "case", "old ns/op", "best ns/op", "ratio", "status")
	for _, g := range gates {
		limit := int64(float64(g.oldNs) * *factor)
		status := "ok"
		switch {
		case g.best > limit && g.soft:
			status = "SOFT" // over budget, report-only: see gate.soft
		case g.best > limit:
			status = "FAIL"
			failed++
		case g.soft:
			status = "ok*" // report-only row within budget
		}
		fmt.Printf("  %-42s %14d %14d %6.2fx %7s\n",
			g.label, g.oldNs, g.best, float64(g.best)/float64(g.oldNs), status)
	}

	checks := []*ratioCheck{speedupCheck(*speedupFloor), durableRatioCheck(*durableFloor), obsOverheadCheck(*obsFloor)}
	if sg != nil {
		checks = append(checks, fsimOverheadCheck(*fsimFloor, sg))
	}
	checks = append(checks, oocoreChecks(*oocoreFloor, *skipFloor)...)
	checks = append(checks, plannerCheck(*plannerFloor, *outDir))
	fmt.Printf("benchguard: live ratio floors (gomaxprocs raised per measurement, num_cpu=%d)\n", runtime.NumCPU())
	fmt.Printf("  %-42s %8s %8s %7s\n", "check", "floor", "value", "status")
	for _, c := range checks {
		status := "ok"
		switch {
		case c.value < c.floor && c.soft:
			status = "SOFT"
		case c.value < c.floor:
			status = "FAIL"
			failed++
		case c.soft:
			status = "ok*"
		}
		fmt.Printf("  %-42s %7.2fx %7.2fx %7s", c.label, c.floor, c.value, status)
		if c.note != "" {
			fmt.Printf("  (%s)", c.note)
		}
		fmt.Println()
	}

	if failed > 0 {
		fatalf("%d checks failed (regression budget %.2fx / ratio floors)", failed, *factor)
	}
	if err := profStop(); err != nil {
		fatalf("%v", err)
	}
	fmt.Println("benchguard: within budget")
}

// checkScalingRows rejects a trajectory whose scaling curves contain the v5
// defect: a parallel row recorded with fewer processors than workers. The
// writer refuses to produce such rows; the guard refuses to trust a file
// that contains one (hand-edited, or produced by an older writer).
//
// Rows the writer could legally emit but that were measured on a machine
// with fewer physical processors than workers (gomaxprocs raised to the
// worker count over num_cpu cores — a sandboxed or over-subscribed
// regeneration) are a different matter: they are honest about their
// conditions, but they measure scheduling overhead, not scaling. The guard
// annotates them as advisory instead of failing, so a trajectory regenerated
// in a 1-CPU sandbox is recognisable at a glance without blocking CI.
func checkScalingRows(traj trajectory) {
	advisory := 0
	check := func(section, name string, rows []scalingRow) {
		for _, r := range rows {
			if r.Workers > 1 && r.Gomaxprocs < r.Workers {
				fatalf("%s/%s: scaling row workers=%d recorded at gomaxprocs=%d — regenerate with the v6 writer",
					section, name, r.Workers, r.Gomaxprocs)
			}
			if r.Workers > 1 && r.NumCPU < r.Workers {
				fmt.Printf("benchguard: note: %s/%s workers=%d row measured on num_cpu=%d — overhead-only, advisory\n",
					section, name, r.Workers, r.NumCPU)
				advisory++
			}
		}
	}
	for _, tc := range traj.Cases {
		check("cases", tc.Name, tc.Scaling)
	}
	for _, tc := range traj.SeqPatternCases {
		check("seqpattern_cases", tc.Name, tc.Scaling)
	}
	if advisory > 0 {
		fmt.Printf("benchguard: %d scaling row(s) are sandbox-measured; treat their speedups as pool overhead, not scaling\n", advisory)
	}
}

// speedupCheck measures the closed-mining headline's parallel speedup live:
// workers=1 vs workers=4, each at GOMAXPROCS >= workers (restored after). On
// a runner with fewer than 4 processors the ratio measures scheduling
// overhead, not parallelism, so the floor downgrades to report-only there —
// CI's 4-vCPU runners enforce it hard.
func speedupCheck(floor float64) *ratioCheck {
	c := bench.ClosedCases()[0]
	ck := &ratioCheck{
		label: fmt.Sprintf("speedup/%s/workers=%d", c.Name, speedupWorkers),
		floor: floor,
	}
	if runtime.NumCPU() < speedupWorkers {
		ck.soft = true
		ck.note = fmt.Sprintf("num_cpu=%d < %d, report-only", runtime.NumCPU(), speedupWorkers)
	}
	db := c.Gen()
	db.FlatIndex()
	measure := func(workers int) int64 {
		opts := c.Opts
		opts.Workers = workers
		procs := runtime.NumCPU()
		if procs < workers {
			procs = workers
		}
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		var best int64
		for i := 0; i < 3; i++ {
			ns := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := iterpattern.MineClosed(db, opts); err != nil {
						b.Fatal(err)
					}
				}
			}).NsPerOp()
			if best == 0 || ns < best {
				best = ns
			}
		}
		return best
	}
	sequential := measure(1)
	parallel := measure(speedupWorkers)
	ck.value = float64(sequential) / float64(parallel)
	return ck
}

// durableRatioCheck measures the store headline's durable-ingest throughput
// as a fraction of the memory-only ingester on the same operation stream.
// Soft (report-only) for the same reason as the store regression gate: a
// virtualised runner's fsync-adjacent numbers are too noisy to fail a build
// on a single run's ratio.
func durableRatioCheck(floor float64) *ratioCheck {
	c := bench.StoreCases()[0]
	ck := &ratioCheck{
		label: "durable-vs-memory/" + c.Name,
		floor: floor,
		soft:  true,
		note:  "report-only",
	}
	dict, ops, _, _ := c.GenStream()
	best := func(run func(b *testing.B)) int64 {
		var best int64
		for i := 0; i < 3; i++ {
			ns := testing.Benchmark(run).NsPerOp()
			if best == 0 || ns < best {
				best = ns
			}
		}
		return best
	}
	durable := best(durableRun(c, dict, ops))
	memory := best(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ing := stream.NewIngester(stream.Config{
				Shards: c.Shards, FlushBatch: c.FlushBatch, Dict: dict.Clone(),
			})
			for _, op := range ops {
				if err := applyOp(ing, op); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := ing.Snapshot(); err != nil {
				b.Fatal(err)
			}
			if err := ing.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})
	ck.value = float64(memory) / float64(durable)
	return ck
}

// obsOverheadCheck measures the cost of the observability layer on the
// durable-ingest headline: the same operation stream replayed with a live
// metrics registry attached to both the store and the ingester must stay
// within a few percent of the uninstrumented run. This floor is HARD — the
// whole design of internal/obs (nil-checked handles, striped atomics,
// enabled-gated clock reads) exists to make instrumentation free enough to
// leave on, and a regression here means a hot path grew a lock, an
// allocation, or an ungated time.Now(). Both sides are measured live in this
// run (best of 3), so runner speed cancels out of the ratio.
func obsOverheadCheck(floor float64) *ratioCheck {
	c := bench.StoreCases()[0]
	ck := &ratioCheck{
		label: "obs-overhead/" + c.Name,
		floor: floor,
	}
	dict, ops, _, _ := c.GenStream()
	best := func(run func(b *testing.B)) int64 {
		var best int64
		for i := 0; i < 3; i++ {
			ns := testing.Benchmark(run).NsPerOp()
			if best == 0 || ns < best {
				best = ns
			}
		}
		return best
	}
	disabled := best(durableRun(c, dict, ops))
	enabled := best(durableRunObs(c, dict, ops, true))
	ck.value = float64(disabled) / float64(enabled)
	return ck
}

// fsimOverheadCheck turns the store gate's measurement into an overhead
// floor: since every store syscall is now routed through the fsim.FS
// interface, the live durable-ingest headline must stay within a few percent
// of the trajectory value that was recorded against direct os calls. It
// reuses the gate's best-of-N sample rather than re-measuring, so the two
// rows can never disagree about what was observed. Soft for the same reason
// as the store gate itself: single-run fsync-adjacent numbers on a
// virtualised runner are too noisy to fail a build on.
func fsimOverheadCheck(floor float64, sg *gate) *ratioCheck {
	return &ratioCheck{
		label: "fsim-passthrough-overhead/" + sg.label,
		floor: floor,
		value: float64(sg.oldNs) / float64(sg.best),
		soft:  true,
		note:  "report-only; durable ingest vs pre-fsim trajectory",
	}
}

// oocoreChecks measures the two out-of-core floors on the shared clustered
// fixture (internal/bench/oocore.go): the mining-throughput ratio of
// MineStore (unlimited cache — the fits-in-RAM configuration) against the
// in-memory cold path (eager open + index + mine on the same store), and the
// fraction of segment bodies the selective cluster-0 rule check answered
// from per-segment statistics without decoding. The ratio is soft — the
// out-of-core path rebuilds a per-seed index that the in-memory side builds
// once, so its cost model is workload-shaped — but the skip rate is a pure
// correctness-of-pruning property and fails hard.
func oocoreChecks(ratioFloor, skipFloor float64) []*ratioCheck {
	c := bench.OocoreCases()[0]
	dir, err := os.MkdirTemp("", "benchguard-oocore-*")
	if err != nil {
		fatalf("oocore fixture dir: %v", err)
	}
	defer os.RemoveAll(dir)
	if _, err := c.BuildStore(dir); err != nil {
		fatalf("building oocore fixture: %v", err)
	}
	popts := core.PatternOptions{MinSupport: c.MinSupport(), MaxLength: 3}

	eager, err := store.Open(c.OpenOptions(dir))
	if err != nil {
		fatalf("opening oocore fixture: %v", err)
	}
	db := eager.Recovered().Database(eager.Dict())
	db.FlatIndex()
	refPatterns, err := core.MinePatterns(db, popts)
	if err != nil {
		fatalf("oocore in-memory reference: %v", err)
	}
	selective := c.SelectiveRules(db)
	if err := eager.Close(); err != nil {
		fatalf("closing oocore fixture: %v", err)
	}

	best := func(run func(b *testing.B)) int64 {
		var best int64
		for i := 0; i < 3; i++ {
			ns := testing.Benchmark(run).NsPerOp()
			if best == 0 || ns < best {
				best = ns
			}
		}
		return best
	}
	inmem := best(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			st, err := store.Open(c.OpenOptions(dir))
			if err != nil {
				b.Fatal(err)
			}
			mdb := st.Recovered().Database(st.Dict())
			mdb.FlatIndex()
			if _, err := core.MinePatterns(mdb, popts); err != nil {
				b.Fatal(err)
			}
			if err := st.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})

	lazyOpts := c.OpenOptions(dir)
	lazyOpts.OutOfCore = true
	lazy, err := store.Open(lazyOpts)
	if err != nil {
		fatalf("opening oocore fixture out-of-core: %v", err)
	}
	defer lazy.Close()
	res, _, err := core.MineStore(lazy, popts, core.OutOfCoreOptions{})
	if err != nil {
		fatalf("oocore MineStore: %v", err)
	}
	if len(res.Patterns) != len(refPatterns.Patterns) {
		fatalf("oocore MineStore found %d patterns, in-memory %d — equivalence broken, ratio meaningless",
			len(res.Patterns), len(refPatterns.Patterns))
	}
	oocore := best(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.MineStore(lazy, popts, core.OutOfCoreOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	_, stats, err := core.CheckStore(lazy, selective, core.OutOfCoreOptions{})
	if err != nil {
		fatalf("oocore CheckStore: %v", err)
	}
	if stats.SegmentsTotal == 0 {
		fatalf("oocore fixture has no segments")
	}
	return []*ratioCheck{
		{
			label: "oo-core-ratio/" + c.Name,
			floor: ratioFloor,
			value: float64(inmem) / float64(oocore),
			soft:  true,
			note:  "report-only; unlimited cache vs in-memory cold path",
		},
		{
			label: "segment-skip/" + c.Name,
			floor: skipFloor,
			value: float64(stats.SegmentsSkipped) / float64(stats.SegmentsTotal),
		},
	}
}

// plannerCheck measures the stats-driven planner floor live: the selective
// cluster-0 rule check through the planned descent (selectivity-ordered
// probes, premise gating, consequent short-circuiting) against the unplanned
// online automaton over the clustered fixture's eager database. Soft until
// the trajectory has planner history — a single generation is not a trend.
// The instrumented run's Explain() render, together with a predicated
// CheckStoreWhere sweep's catalog-level plan, is written to
// <outDir>/explain.txt so CI uploads the query plan the floor was measured
// on.
func plannerCheck(floor float64, outDir string) *ratioCheck {
	c := bench.OocoreCases()[0]
	dir, err := os.MkdirTemp("", "benchguard-planner-*")
	if err != nil {
		fatalf("planner fixture dir: %v", err)
	}
	defer os.RemoveAll(dir)
	if _, err := c.BuildStore(dir); err != nil {
		fatalf("building planner fixture: %v", err)
	}
	eager, err := store.Open(c.OpenOptions(dir))
	if err != nil {
		fatalf("opening planner fixture: %v", err)
	}
	db := eager.Recovered().Database(eager.Dict())
	db.FlatIndex()
	selective := c.SelectiveRules(db)
	if err := eager.Close(); err != nil {
		fatalf("closing planner fixture: %v", err)
	}
	engine, err := verify.NewEngine(selective)
	if err != nil {
		fatalf("compiling planner rules: %v", err)
	}

	best := func(run func(b *testing.B)) int64 {
		var best int64
		for i := 0; i < 3; i++ {
			ns := testing.Benchmark(run).NsPerOp()
			if best == 0 || ns < best {
				best = ns
			}
		}
		return best
	}
	unplanned := best(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = engine.Check(db)
		}
	})
	pl := plan.New(engine, plan.IndexStats{Idx: db.FlatIndex()})
	planned := best(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, _ = pl.CheckDatabase(db)
		}
	})

	// One instrumented run each for the artifact: the in-memory headline plan
	// and the catalog-pruning plan of the same rules behind a cluster-0
	// predicate.
	_, run := pl.CheckDatabase(db)
	explain := run.Explain().Render(db.Dict)
	lazyOpts := c.OpenOptions(dir)
	lazyOpts.OutOfCore = true
	lazy, err := store.Open(lazyOpts)
	if err != nil {
		fatalf("opening planner fixture out-of-core: %v", err)
	}
	where := core.Where{HasAll: []seqdb.EventID{c.EventBase(db.Dict, 0)}}
	_, _, ex, err := core.CheckStoreWhere(lazy, selective, where, core.OutOfCoreOptions{})
	if err != nil {
		fatalf("planner CheckStoreWhere: %v", err)
	}
	if err := lazy.Close(); err != nil {
		fatalf("closing planner fixture: %v", err)
	}
	explain += "\n--- CheckStoreWhere (HasAll c0_open) ---\n" + ex.Render(db.Dict)
	if err := os.WriteFile(filepath.Join(outDir, "explain.txt"), []byte(explain), 0o644); err != nil {
		fatalf("writing explain.txt: %v", err)
	}

	return &ratioCheck{
		label: "planner-speedup/" + c.Name,
		floor: floor,
		value: float64(unplanned) / float64(planned),
		soft:  true,
		note:  "report-only; planned vs unplanned selective check",
	}
}

// miningGate re-measures the closed-mining acceptance headline.
func miningGate(traj trajectory) *gate {
	c := bench.ClosedCases()[0]
	g := &gate{
		label:     "mine-closed/" + c.Name,
		benchName: "BenchmarkMineClosed/" + c.Name + "/flat",
	}
	for _, tc := range traj.Cases {
		if tc.Name == c.Name {
			g.oldNs = tc.FlatNsPerOp
			break
		}
	}
	if g.oldNs == 0 {
		fatalf("headline case %s not found in trajectory", c.Name)
	}
	db := c.Gen()
	db.FlatIndex()
	g.run = func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := iterpattern.MineClosed(db, c.Opts); err != nil {
				b.Fatal(err)
			}
		}
	}
	return g
}

// verifyGate re-measures the batched conformance headline (which since the
// online overhaul also covers the streaming checker — Check drives it).
func verifyGate(traj trajectory) *gate {
	c := bench.VerifyCases()[0]
	g := &gate{
		label:     "verify-batched/" + c.Name,
		benchName: "BenchmarkVerify/" + c.Name + "/batched",
	}
	for _, vc := range traj.VerifyCases {
		if vc.Name == c.Name {
			g.oldNs = vc.BatchedNsPerOp
			break
		}
	}
	if g.oldNs == 0 {
		fatalf("verify headline case %s not found in trajectory", c.Name)
	}
	ruleSet, db := c.Gen()
	if len(ruleSet) == 0 {
		fatalf("verify headline case %s mined no rules", c.Name)
	}
	engine, err := verify.NewEngine(ruleSet)
	if err != nil {
		fatalf("compiling verify headline rules: %v", err)
	}
	g.run = func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = engine.Check(db)
		}
	}
	return g
}

// seqPatternGate re-measures the dense sequential-pattern comparator
// headline (the unified-kernel miner over the flat index).
func seqPatternGate(traj trajectory) *gate {
	c := bench.SeqPatternCases()[0]
	g := &gate{
		label:     "mine-seqpattern/" + c.Name,
		benchName: "BenchmarkMineSeqPatterns/" + c.Name + "/flat",
	}
	for _, tc := range traj.SeqPatternCases {
		if tc.Name == c.Name {
			g.oldNs = tc.FlatNsPerOp
			break
		}
	}
	if g.oldNs == 0 {
		fatalf("seqpattern headline case %s not found in trajectory", c.Name)
	}
	db := c.Gen()
	db.FlatIndex()
	g.run = func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := seqpattern.Mine(db, c.Opts); err != nil {
				b.Fatal(err)
			}
		}
	}
	return g
}

// storeGate re-measures the durable-ingest headline as a soft (report-only)
// row; see gate.soft. Returns nil when the trajectory predates schema v5 and
// has no store section to compare against.
func storeGate(traj trajectory) *gate {
	c := bench.StoreCases()[0]
	g := &gate{
		label:     "store-ingest/" + c.Name,
		benchName: "BenchmarkStoreIngest/" + c.Name + "/durable",
		soft:      true,
	}
	for _, tc := range traj.StoreCases {
		if tc.Name == c.Name {
			g.oldNs = tc.DurableNsPerOp
			break
		}
	}
	if g.oldNs == 0 {
		return nil
	}
	dict, ops, _, _ := c.GenStream()
	g.run = durableRun(c, dict, ops)
	return g
}

// applyOp replays one pre-generated ingestion operation.
func applyOp(ing *stream.Ingester, op bench.StreamOp) error {
	if op.Seal {
		return ing.CloseTrace(op.TraceID)
	}
	return ing.IngestIDs(op.TraceID, op.Events...)
}

// durableRun builds the store-backed replay loop shared by the regression
// gate and the durable-vs-memory ratio check: open a store in a fresh
// directory, replay the stream through a store-backed ingester, snapshot,
// and close cleanly. Directory setup/teardown stays off the clock.
func durableRun(c bench.StreamCase, dict *seqdb.Dictionary, ops []bench.StreamOp) func(b *testing.B) {
	return durableRunObs(c, dict, ops, false)
}

// durableRunObs is durableRun with an optional live metrics registry attached
// to the store and the ingester — the instrumented side of the obs-overhead
// floor. A fresh registry per iteration keeps registration cost on the clock,
// exactly as a real instrumented session pays it.
func durableRunObs(c bench.StreamCase, dict *seqdb.Dictionary, ops []bench.StreamOp, instrumented bool) func(b *testing.B) {
	return func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			dir, err := os.MkdirTemp("", "benchguard-store-*")
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			var reg *obs.Registry
			if instrumented {
				reg = obs.NewRegistry()
			}
			st, err := store.Open(store.Options{Dir: dir, Shards: c.Shards, Obs: reg})
			if err != nil {
				b.Fatal(err)
			}
			for _, name := range dict.Export() {
				st.Dict().Intern(name)
			}
			ing, err := stream.Open(stream.Config{FlushBatch: c.FlushBatch, Store: st, Obs: reg})
			if err != nil {
				b.Fatal(err)
			}
			for _, op := range ops {
				if err := applyOp(ing, op); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := ing.Snapshot(); err != nil {
				b.Fatal(err)
			}
			if err := ing.Close(); err != nil {
				b.Fatal(err)
			}
			if err := st.Close(); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			os.RemoveAll(dir)
			b.StartTimer()
		}
	}
}

func writeHeader(buf *bytes.Buffer) {
	fmt.Fprintf(buf, "goos: %s\ngoarch: %s\npkg: specmine/internal/bench\n", runtime.GOOS, runtime.GOARCH)
}

// writeSamples appends benchstat-parsable sample lines.
func writeSamples(buf *bytes.Buffer, benchName string, nsPerOp []int64) {
	for _, ns := range nsPerOp {
		fmt.Fprintf(buf, "%s \t       1\t%12d ns/op\n", benchName, ns)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchguard: "+format+"\n", args...)
	if err := profStop(); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
	}
	os.Exit(1)
}
