// Command benchguard is the CI benchmark-regression gate. It re-measures the
// headline synth closed-mining case, writes benchstat-compatible sample
// files — old.txt holding the checked-in BENCH_mining.json trajectory value
// and new.txt holding the live measurements — and exits non-zero when the
// best live run is more than the allowed factor slower than the trajectory.
//
// CI runs it as
//
//	go run ./internal/bench/benchguard -trajectory BENCH_mining.json -out /tmp/benchguard
//	benchstat /tmp/benchguard/old.txt /tmp/benchguard/new.txt
//
// so the human-readable delta report comes from benchstat while the
// pass/fail decision stays hermetic (no external tooling needed to gate).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"specmine/internal/bench"
	"specmine/internal/iterpattern"
)

type trajectoryCase struct {
	Name        string `json:"name"`
	FlatNsPerOp int64  `json:"flat_ns_per_op"`
}

type trajectory struct {
	Schema string           `json:"schema"`
	Cases  []trajectoryCase `json:"cases"`
}

func main() {
	trajPath := flag.String("trajectory", "BENCH_mining.json", "path to the checked-in trajectory file")
	outDir := flag.String("out", ".", "directory for the benchstat sample files old.txt and new.txt")
	count := flag.Int("count", 5, "number of live benchmark runs")
	factor := flag.Float64("factor", 1.5, "maximum allowed ns/op regression factor")
	flag.Parse()

	buf, err := os.ReadFile(*trajPath)
	if err != nil {
		fatalf("reading trajectory: %v", err)
	}
	var traj trajectory
	if err := json.Unmarshal(buf, &traj); err != nil {
		fatalf("parsing trajectory: %v", err)
	}

	c := bench.ClosedCases()[0] // the acceptance headline case
	var oldNs int64
	for _, tc := range traj.Cases {
		if tc.Name == c.Name {
			oldNs = tc.FlatNsPerOp
			break
		}
	}
	if oldNs == 0 {
		fatalf("headline case %s not found in %s", c.Name, *trajPath)
	}

	benchName := "BenchmarkMineClosed/" + c.Name + "/flat"
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatalf("creating output directory: %v", err)
	}
	if err := writeSamples(filepath.Join(*outDir, "old.txt"), benchName, []int64{oldNs}); err != nil {
		fatalf("writing old.txt: %v", err)
	}

	db := c.Gen()
	db.FlatIndex()
	best := int64(0)
	samples := make([]int64, 0, *count)
	for i := 0; i < *count; i++ {
		r := testing.Benchmark(func(b *testing.B) {
			for j := 0; j < b.N; j++ {
				if _, err := iterpattern.MineClosed(db, c.Opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		ns := r.NsPerOp()
		samples = append(samples, ns)
		if best == 0 || ns < best {
			best = ns
		}
	}
	if err := writeSamples(filepath.Join(*outDir, "new.txt"), benchName, samples); err != nil {
		fatalf("writing new.txt: %v", err)
	}

	limit := int64(float64(oldNs) * *factor)
	fmt.Printf("benchguard: %s trajectory %d ns/op, best of %d live runs %d ns/op, limit %d ns/op\n",
		c.Name, oldNs, *count, best, limit)
	if best > limit {
		fatalf("benchmark regression: best live run %d ns/op exceeds %.2fx the checked-in %d ns/op",
			best, *factor, oldNs)
	}
	fmt.Println("benchguard: within budget")
}

// writeSamples emits one benchstat-parsable sample file.
func writeSamples(path, benchName string, nsPerOp []int64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintf(f, "goos: %s\ngoarch: %s\npkg: specmine/internal/bench\n", runtime.GOOS, runtime.GOARCH)
	for _, ns := range nsPerOp {
		fmt.Fprintf(f, "%s \t       1\t%12d ns/op\n", benchName, ns)
	}
	return nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchguard: "+format+"\n", args...)
	os.Exit(1)
}
