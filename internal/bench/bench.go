// Package bench defines the mining-core benchmark matrix: closed-pattern and
// rule mining over tracesim and synth workloads that vary the number of
// sequences, the alphabet size and the event density. The matrix backs three
// artifacts:
//
//   - go test -bench benchmarks comparing the flat-index miner against the
//     seed's map-based implementation (package bench/baseline);
//   - equivalence regression tests asserting that the rewritten and the
//     parallel miners produce results identical to the seed algorithm;
//   - the BENCH_mining.json trajectory file checked in at the repository
//     root (regenerate with SPECMINE_WRITE_BENCH=1, see bench_test.go).
//
// Thresholds are chosen so every case finishes in milliseconds-to-seconds:
// iterative-pattern mining is exponential below a workload-dependent support
// cliff (the paper's Figure 1 regime), and the benchmark matrix deliberately
// stays on the tractable side of it while still exercising millions of
// search-node operations.
package bench

import (
	"specmine/internal/iterpattern"
	"specmine/internal/rules"
	"specmine/internal/seqdb"
	"specmine/internal/synth"
	"specmine/internal/tracesim"
)

// ClosedCase is one closed-pattern mining benchmark configuration.
type ClosedCase struct {
	Name string
	// Sequences and Alphabet describe the workload for reporting.
	Sequences int
	Alphabet  int
	Density   string
	Gen       func() *seqdb.Database
	Opts      iterpattern.Options
}

// ClosedCases returns the closed-pattern benchmark matrix. The first case is
// the acceptance headline: >= 50 sequences over an alphabet of >= 100 events.
func ClosedCases() []ClosedCase {
	synthCase := func(name string, cfg synth.Config, minSup int, density string) ClosedCase {
		return ClosedCase{
			Name:      name,
			Sequences: cfg.NumSequences,
			Alphabet:  cfg.NumEvents,
			Density:   density,
			Gen:       func() *seqdb.Database { return synth.MustGenerate(cfg) },
			Opts:      iterpattern.Options{MinInstanceSupport: minSup},
		}
	}
	traceCase := func(name, workload string, traces int, opts iterpattern.Options, density string) ClosedCase {
		w := tracesim.Workloads()[workload]
		return ClosedCase{
			Name:      name,
			Sequences: traces,
			Alphabet:  len(w.NoiseEvents) + 16,
			Density:   density,
			Gen:       func() *seqdb.Database { return w.MustGenerate(traces, 7) },
			Opts:      opts,
		}
	}
	return []ClosedCase{
		synthCase("synth-D0.05C30N0.1S8-sup20",
			synth.Config{NumSequences: 50, AvgSequenceLength: 30, NumEvents: 100, AvgPatternLength: 8, Seed: 1}, 20, "quest-default"),
		synthCase("synth-D0.1C40N0.2S10-sup35",
			synth.Config{NumSequences: 100, AvgSequenceLength: 40, NumEvents: 200, AvgPatternLength: 10, Seed: 2}, 35, "quest-default"),
		synthCase("synth-D0.2C50N1S10-sup60",
			synth.Config{NumSequences: 200, AvgSequenceLength: 50, NumEvents: 1000, AvgPatternLength: 10, Seed: 3}, 60, "quest-sparse-alphabet"),
		traceCase("tracesim-transaction-x50-len4", "transaction", 50,
			iterpattern.Options{MinSupportRel: 0.9, MaxPatternLength: 4}, "dense-looping"),
		traceCase("tracesim-security-x50-len4", "security", 50,
			iterpattern.Options{MinSupportRel: 0.9, MaxPatternLength: 4}, "medium"),
		traceCase("tracesim-locking-x50-len4", "locking", 50,
			iterpattern.Options{MinSupportRel: 0.9, MaxPatternLength: 4}, "light"),
	}
}

// RuleCase is one rule-mining benchmark configuration (flat miner only: the
// rules baseline was not preserved, the acceptance target compares closed
// mining).
type RuleCase struct {
	Name string
	Gen  func() *seqdb.Database
	Opts rules.Options
}

// RuleCases returns the rule-mining benchmark matrix.
func RuleCases() []RuleCase {
	traceCase := func(name, workload string, traces int, opts rules.Options) RuleCase {
		w := tracesim.Workloads()[workload]
		return RuleCase{
			Name: name,
			Gen:  func() *seqdb.Database { return w.MustGenerate(traces, 7) },
			Opts: opts,
		}
	}
	return []RuleCase{
		traceCase("nr-security-x30-pre2-post2", "security", 30, rules.Options{
			MinSeqSupportRel: 0.9, MinInstanceSupport: 1, MinConfidence: 0.9,
			MaxPremiseLength: 2, MaxConsequentLength: 2,
		}),
		traceCase("nr-locking-x50-pre3-post3", "locking", 50, rules.Options{
			MinSeqSupportRel: 0.9, MinInstanceSupport: 1, MinConfidence: 0.9,
			MaxPremiseLength: 3, MaxConsequentLength: 3,
		}),
	}
}
