// Package bench defines the mining-core benchmark matrix: closed-pattern
// mining, rule mining and batched conformance checking over tracesim and
// synth workloads that vary the number of sequences, the alphabet size and
// the event density. The matrix backs three artifacts:
//
//   - go test -bench benchmarks comparing the flat-index miner against the
//     seed's map-based implementation (package bench/baseline), plus
//     worker-scaling and batched-vs-per-rule verification benchmarks;
//   - equivalence regression tests asserting that the rewritten and the
//     parallel miners produce results identical to the seed algorithm, and
//     that the batched verifier reproduces the per-rule reports;
//   - the BENCH_mining.json trajectory file checked in at the repository
//     root (regenerate with SPECMINE_WRITE_BENCH=1, see bench_test.go).
//
// Thresholds are chosen so every case finishes in milliseconds-to-seconds:
// iterative-pattern mining is exponential below a workload-dependent support
// cliff (the paper's Figure 1 regime), and the benchmark matrix deliberately
// stays on the tractable side of it while still exercising millions of
// search-node operations. The dense looping cases (`transaction-*`) probe the
// support-cliff neighbourhood itself: looping traces generate near-quadratic
// instance populations, which is exactly what the run-compressed, count-first
// mining core exists for.
package bench

import (
	"specmine/internal/episode"
	"specmine/internal/iterpattern"
	"specmine/internal/rules"
	"specmine/internal/seqdb"
	"specmine/internal/seqpattern"
	"specmine/internal/synth"
	"specmine/internal/tracesim"
	"specmine/internal/verify"
)

// ClosedCase is one closed-pattern mining benchmark configuration.
type ClosedCase struct {
	Name string
	// Sequences and Alphabet describe the workload for reporting.
	Sequences int
	Alphabet  int
	Density   string
	Gen       func() *seqdb.Database
	Opts      iterpattern.Options
	// SkipBaseline marks stress cases too heavy for the seed's map-based
	// miner; the trajectory then records flat-miner numbers only.
	SkipBaseline bool
	// Parallel marks the cases that get worker-scaling rows (workers
	// 1/2/4/8) in the benchmark matrix and the trajectory.
	Parallel bool
}

// ScalingWorkerCounts are the worker-pool sizes measured for the cases marked
// Parallel, in both the -bench matrix and the trajectory's scaling curves.
// The 1-worker row anchors each curve: every speedup in the trajectory is
// relative to it, measured under the same GOMAXPROCS regime.
var ScalingWorkerCounts = []int{1, 2, 4, 8}

// ClosedCases returns the closed-pattern benchmark matrix. The first case is
// the acceptance headline: >= 50 sequences over an alphabet of >= 100 events.
func ClosedCases() []ClosedCase {
	synthCase := func(name string, cfg synth.Config, minSup int, density string) ClosedCase {
		return ClosedCase{
			Name:      name,
			Sequences: cfg.NumSequences,
			Alphabet:  cfg.NumEvents,
			Density:   density,
			Gen:       func() *seqdb.Database { return synth.MustGenerate(cfg) },
			Opts:      iterpattern.Options{MinInstanceSupport: minSup},
		}
	}
	traceCase := func(name, workload string, traces int, opts iterpattern.Options, density string) ClosedCase {
		w := tracesim.Workloads()[workload]
		return ClosedCase{
			Name:      name,
			Sequences: traces,
			Alphabet:  len(w.NoiseEvents) + 16,
			Density:   density,
			Gen:       func() *seqdb.Database { return w.MustGenerate(traces, 7) },
			Opts:      opts,
		}
	}
	cases := []ClosedCase{
		synthCase("synth-D0.05C30N0.1S8-sup20",
			synth.Config{NumSequences: 50, AvgSequenceLength: 30, NumEvents: 100, AvgPatternLength: 8, Seed: 1}, 20, "quest-default"),
		synthCase("synth-D0.1C40N0.2S10-sup35",
			synth.Config{NumSequences: 100, AvgSequenceLength: 40, NumEvents: 200, AvgPatternLength: 10, Seed: 2}, 35, "quest-default"),
		synthCase("synth-D0.2C50N1S10-sup60",
			synth.Config{NumSequences: 200, AvgSequenceLength: 50, NumEvents: 1000, AvgPatternLength: 10, Seed: 3}, 60, "quest-sparse-alphabet"),
		traceCase("tracesim-transaction-x50-len4", "transaction", 50,
			iterpattern.Options{MinSupportRel: 0.9, MaxPatternLength: 4}, "dense-looping"),
		traceCase("tracesim-security-x50-len4", "security", 50,
			iterpattern.Options{MinSupportRel: 0.9, MaxPatternLength: 4}, "medium"),
		traceCase("tracesim-locking-x50-len4", "locking", 50,
			iterpattern.Options{MinSupportRel: 0.9, MaxPatternLength: 4}, "light"),
		traceCase("tracesim-transaction-x100-len6", "transaction", 100,
			iterpattern.Options{MinSupportRel: 0.9, MaxPatternLength: 6}, "dense-looping-stress"),
	}
	cases[0].Parallel = true     // acceptance headline
	cases[3].Parallel = true     // dense looping target of the overhaul
	cases[6].SkipBaseline = true // seed miner needs minutes per op here
	cases[6].Parallel = true
	return cases
}

// ComparatorWorkerCounts are the worker-pool sizes measured for the
// comparator miners' Parallel cases (sequential row plus one mid-size pool).
var ComparatorWorkerCounts = []int{1, 4}

// SeqPatternCase is one sequential-pattern (PrefixSpan comparator) benchmark
// configuration, measured for the unified-kernel miner and the seed
// implementation preserved in bench/baseline.
type SeqPatternCase struct {
	Name      string
	Sequences int
	Density   string
	Gen       func() *seqdb.Database
	Opts      seqpattern.Options
	// Parallel marks the cases with worker-scaling rows (workers 1/4).
	Parallel bool
}

// SeqPatternCases returns the sequential-pattern benchmark matrix. The first
// case is the comparator headline gated by benchguard: dense looping traces,
// the regime where the seed's per-node maps and quadratic closedness filter
// collapse.
func SeqPatternCases() []SeqPatternCase {
	traceCase := func(name, workload string, traces int, opts seqpattern.Options, density string) SeqPatternCase {
		w := tracesim.Workloads()[workload]
		return SeqPatternCase{
			Name:      name,
			Sequences: traces,
			Density:   density,
			Gen:       func() *seqdb.Database { return w.MustGenerate(traces, 7) },
			Opts:      opts,
		}
	}
	cases := []SeqPatternCase{
		traceCase("seqpattern-transaction-x50-len4-closed", "transaction", 50,
			seqpattern.Options{MinSupportRel: 0.9, MaxPatternLength: 4, ClosedOnly: true}, "dense-looping"),
		{
			Name:      "seqpattern-quest-D0.05C30N0.1S8-sup15-closed",
			Sequences: 50,
			Density:   "quest-default",
			Gen: func() *seqdb.Database {
				return synth.MustGenerate(synth.Config{NumSequences: 50, AvgSequenceLength: 30, NumEvents: 100, AvgPatternLength: 8, Seed: 1})
			},
			Opts: seqpattern.Options{MinSeqSupport: 15, ClosedOnly: true},
		},
		traceCase("seqpattern-security-x50-len4-full", "security", 50,
			seqpattern.Options{MinSupportRel: 0.5, MaxPatternLength: 4}, "medium"),
	}
	cases[0].Parallel = true
	return cases
}

// EpisodeCase is one episode-mining (WINEPI comparator) benchmark
// configuration over a trace database, measured for the posting-driven miner
// and the seed's window-rescan implementation in bench/baseline.
type EpisodeCase struct {
	Name     string
	Gen      func() *seqdb.Database
	Opts     episode.Options
	Parallel bool
}

// EpisodeCases returns the episode benchmark matrix.
func EpisodeCases() []EpisodeCase {
	traceCase := func(name, workload string, traces int, opts episode.Options) EpisodeCase {
		w := tracesim.Workloads()[workload]
		return EpisodeCase{
			Name: name,
			Gen:  func() *seqdb.Database { return w.MustGenerate(traces, 7) },
			Opts: opts,
		}
	}
	cases := []EpisodeCase{
		traceCase("episode-transaction-x50-w6-len3", "transaction", 50,
			episode.Options{WindowWidth: 6, MinFrequency: 0.3, MaxEpisodeLength: 3}),
		traceCase("episode-locking-x100-w8-len4", "locking", 100,
			episode.Options{WindowWidth: 8, MinFrequency: 0.1, MaxEpisodeLength: 4}),
		traceCase("episode-security-x50-w6-len3", "security", 50,
			episode.Options{WindowWidth: 6, MinFrequency: 0.05, MaxEpisodeLength: 3}),
	}
	cases[0].Parallel = true
	return cases
}

// RuleCase is one rule-mining benchmark configuration (flat miner only: the
// rules baseline was not preserved, the acceptance target compares closed
// mining).
type RuleCase struct {
	Name     string
	Gen      func() *seqdb.Database
	Opts     rules.Options
	Parallel bool
}

// RuleCases returns the rule-mining benchmark matrix.
func RuleCases() []RuleCase {
	traceCase := func(name, workload string, traces int, opts rules.Options) RuleCase {
		w := tracesim.Workloads()[workload]
		return RuleCase{
			Name: name,
			Gen:  func() *seqdb.Database { return w.MustGenerate(traces, 7) },
			Opts: opts,
		}
	}
	cases := []RuleCase{
		// The strict 0.9/0.9 thresholds mine zero rules from the aberrated
		// security traces; the relaxed pair produces a few hundred.
		traceCase("nr-security-x30-rel0.5-conf0.8", "security", 30, rules.Options{
			MinSeqSupportRel: 0.5, MinInstanceSupport: 1, MinConfidence: 0.8,
			MaxPremiseLength: 2, MaxConsequentLength: 2,
		}),
		traceCase("nr-locking-x50-pre3-post3", "locking", 50, rules.Options{
			MinSeqSupportRel: 0.9, MinInstanceSupport: 1, MinConfidence: 0.9,
			MaxPremiseLength: 3, MaxConsequentLength: 3,
		}),
		traceCase("nr-transaction-x50-pre2-post2", "transaction", 50, rules.Options{
			MinSeqSupportRel: 0.9, MinInstanceSupport: 1, MinConfidence: 0.9,
			MaxPremiseLength: 2, MaxConsequentLength: 2,
		}),
	}
	cases[1].Parallel = true
	cases[2].Parallel = true
	return cases
}

// VerifyCase is one batched-verification benchmark configuration: a rule set
// mined from a training batch, checked against a larger fresh batch with an
// elevated violation rate (the serving-path scenario).
type VerifyCase struct {
	Name string
	// Gen returns the rule set to compile and the trace batch to check.
	Gen func() ([]rules.Rule, *seqdb.Database)
}

// VerifyCases returns the conformance-checking benchmark matrix.
func VerifyCases() []VerifyCase {
	mk := func(name, workload string, trainN, checkN int, opts rules.Options) VerifyCase {
		return VerifyCase{Name: name, Gen: func() ([]rules.Rule, *seqdb.Database) {
			w := tracesim.Workloads()[workload]
			train := w.MustGenerate(trainN, 7)
			res, err := rules.MineNonRedundant(train, opts)
			if err != nil {
				panic(err)
			}
			fresh := w
			fresh.ViolationRate = 0.25
			return res.Rules, rebased(train.Dict, fresh.MustGenerate(checkN, 99))
		}}
	}
	relaxed := rules.Options{
		MinSeqSupportRel: 0.5, MinInstanceSupport: 1, MinConfidence: 0.8,
		MaxPremiseLength: 2, MaxConsequentLength: 2,
	}
	strict := rules.Options{
		MinSeqSupportRel: 0.9, MinInstanceSupport: 1, MinConfidence: 0.9,
		MaxPremiseLength: 3, MaxConsequentLength: 3,
	}
	return []VerifyCase{
		mk("verify-security-x200", "security", 30, 200, relaxed),
		mk("verify-locking-x500", "locking", 50, 500, strict),
		mk("verify-transaction-x200", "transaction", 30, 200, relaxed),
	}
}

// StreamCase is one streaming-ingestion benchmark configuration: a tracesim
// workload replayed as an interleaved chunk stream (see tracesim.Stream)
// into a sharded stream.Ingester, optionally with an online conformance
// engine attached. The headline metrics are events/sec and per-event allocs.
type StreamCase struct {
	Name     string
	Workload string
	Traces   int
	Shards   int
	// FlushBatch is the sealed-trace batch size between incremental index
	// extensions.
	FlushBatch int
	// Concurrency is how many traces the replay keeps open at once.
	Concurrency int
	// Checked attaches an online engine compiled from rules mined on a
	// training batch, so every event also advances conformance automata.
	Checked bool
}

// StreamOp is one pre-generated ingestion operation: events to append to a
// trace, or (with Seal) its termination. Pre-generating operations keeps
// workload synthesis and name interning out of the measured region.
type StreamOp struct {
	TraceID string
	Events  []seqdb.EventID
	Seal    bool
}

// StreamCases returns the streaming-ingestion benchmark matrix.
func StreamCases() []StreamCase {
	return []StreamCase{
		{Name: "stream-locking-x200", Workload: "locking", Traces: 200,
			Shards: 4, FlushBatch: 32, Concurrency: 16},
		{Name: "stream-transaction-x200", Workload: "transaction", Traces: 200,
			Shards: 4, FlushBatch: 32, Concurrency: 16},
		{Name: "stream-security-x200-checked", Workload: "security", Traces: 200,
			Shards: 4, FlushBatch: 32, Concurrency: 16, Checked: true},
	}
}

// StoreCases returns the durable-ingestion benchmark matrix: stream cases
// replayed through a stream ingester bound to a log-structured store, so the
// measured path includes WAL appends, group commits, segment flushes and the
// final snapshot barrier — plus the store's open/recover/close lifecycle,
// which is why these cases run 500 traces: a real process opens its store
// once per run, not once per 20k events, and a longer stream keeps the
// fixed file-creation cost from dominating what is measured. The same cases
// back BenchmarkRecover (events/sec replayed from segments + WAL on a cold
// start). The first case is the headline benchguard tracks as a soft row.
func StoreCases() []StreamCase {
	return []StreamCase{
		{Name: "store-locking-x500", Workload: "locking", Traces: 500,
			Shards: 4, FlushBatch: 32, Concurrency: 16},
		{Name: "store-transaction-x500", Workload: "transaction", Traces: 500,
			Shards: 4, FlushBatch: 32, Concurrency: 16},
	}
}

// GenStream pre-generates the case's operation stream against a fresh
// dictionary, returning the dictionary (pass it to the ingester so ids
// resolve), the operations, the engine to attach (nil unless Checked) and
// the total event count.
func (c StreamCase) GenStream() (*seqdb.Dictionary, []StreamOp, *verify.Engine, int) {
	w := tracesim.Workloads()[c.Workload]
	var engine *verify.Engine
	dict := seqdb.NewDictionary()
	if c.Checked {
		train := w.MustGenerate(30, 7)
		res, err := rules.MineNonRedundant(train, rules.Options{
			MinSeqSupportRel: 0.5, MinInstanceSupport: 1, MinConfidence: 0.8,
			MaxPremiseLength: 2, MaxConsequentLength: 2,
		})
		if err != nil {
			panic(err)
		}
		if len(res.Rules) == 0 {
			panic("bench: no rules mined for checked stream case")
		}
		engine, err = verify.NewEngine(res.Rules)
		if err != nil {
			panic(err)
		}
		dict = train.Dict
		w.ViolationRate = 0.25
	}
	var ops []StreamOp
	events := 0
	err := w.Stream(c.Traces, 99, c.Concurrency, func(ch tracesim.StreamChunk) error {
		ids := make([]seqdb.EventID, len(ch.Events))
		for i, n := range ch.Events {
			ids[i] = dict.Intern(n)
		}
		events += len(ids)
		if len(ids) > 0 {
			ops = append(ops, StreamOp{TraceID: ch.TraceID, Events: ids})
		}
		if ch.Final {
			ops = append(ops, StreamOp{TraceID: ch.TraceID, Seal: true})
		}
		return nil
	})
	if err != nil {
		panic(err)
	}
	return dict, ops, engine, events
}

// rebased re-interns db's traces through dict, so rules mined against dict
// apply to traces generated with an independent dictionary (fresh batches
// intern events in a different order).
func rebased(dict *seqdb.Dictionary, db *seqdb.Database) *seqdb.Database {
	out := seqdb.NewDatabaseWithDict(dict)
	names := make([]string, 0, 64)
	for _, s := range db.Sequences {
		names = names[:0]
		for _, ev := range s {
			names = append(names, db.Dict.Name(ev))
		}
		out.AppendNames(names...)
	}
	return out
}
