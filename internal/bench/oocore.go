package bench

import (
	"fmt"

	"specmine/internal/core"
	"specmine/internal/seqdb"
	"specmine/internal/store"
	"specmine/internal/stream"
)

// --- out-of-core mining fixture ---------------------------------------------
//
// OocoreCase builds the durable fixture behind the trajectory's oocore_cases
// section and benchguard's oo-core-ratio / segment-skip floors: equal-size
// trace clusters with fully disjoint event alphabets, each cluster
// canonicalised into its own sealed segment (one ingest-and-close cycle per
// cluster; the next open rolls the WAL tail into a segment, and CompactBytes
// 1 keeps the compactor from ever merging across clusters). Per-segment
// statistics can then prove every cluster-pure segment irrelevant to a
// workload that only touches other clusters — which is what the segment-skip
// floor measures — while the full-sweep mining workload (seeds in every
// cluster) prices the pin-and-evict cache against the in-memory miner.
//
// The database deliberately fits in RAM: the ratio floor compares the two
// paths where the in-memory one is at its best. Scale-out correctness (DB
// many times the cache, GOMEMLIMIT-capped) is the CI out-of-core job's
// territory, not the benchmark's.

const (
	// oocoreOps (op, ...) slots per trace, cycling over an alphabet of
	// oocoreAlphabet op events, so each op event appears in ops/alphabet of
	// the cluster's traces. oocoreDrop drops every Nth close event.
	oocoreOps      = 12
	oocoreAlphabet = 16
	oocoreDrop     = 9
)

// OocoreCase is one out-of-core benchmark fixture: Clusters clusters of
// PerCluster traces each, disjoint alphabets, one sealed segment per cluster.
type OocoreCase struct {
	Name       string
	Clusters   int
	PerCluster int
}

// OocoreCases returns the out-of-core benchmark matrix. The headline (and
// only) case is sized to fit comfortably in RAM — see the package comment
// above — with enough clusters that the selective workload's ≥ 90% skip
// floor has real slack (1 cluster of 24 touched ⇒ ~96% skipped).
func OocoreCases() []OocoreCase {
	return []OocoreCase{{Name: "clustered/c=24/n=200", Clusters: 24, PerCluster: 200}}
}

// MinSupport is the pattern threshold every out-of-core benchmark mines at:
// strictly between each cluster's op events (12/16 of its traces) and its
// close event (8/9 of them), so the seed set is exactly the open/use/close
// triple of every cluster — a full-sweep workload with bounded fan-out.
func (c OocoreCase) MinSupport() int { return c.PerCluster * 8 / 10 }

// EventBase interns cluster k's alphabet (idempotent — Intern returns the
// existing id on reopen) and returns the id of c{k}_open; c{k}_use,
// c{k}_close and the op events follow at stable offsets +1, +2, +3...
func (c OocoreCase) EventBase(dict *seqdb.Dictionary, k int) seqdb.EventID {
	base := dict.Intern(fmt.Sprintf("c%d_open", k))
	dict.Intern(fmt.Sprintf("c%d_use", k))
	dict.Intern(fmt.Sprintf("c%d_close", k))
	for j := 0; j < oocoreAlphabet; j++ {
		dict.Intern(fmt.Sprintf("c%d_op%d", k, j))
	}
	return base
}

// trace writes cluster trace i into buf: open, a run of op slots, use, and —
// unless i hits the drop cadence — close.
func (c OocoreCase) trace(buf []seqdb.EventID, base seqdb.EventID, i int) []seqdb.EventID {
	buf = buf[:0]
	buf = append(buf, base)
	for j := 0; j < oocoreOps; j++ {
		buf = append(buf, base+3+seqdb.EventID((i*5+j*7)%oocoreAlphabet))
	}
	buf = append(buf, base+1)
	if i%oocoreDrop != oocoreDrop-1 {
		buf = append(buf, base+2)
	}
	return buf
}

// OpenOptions returns the store options every consumer of the fixture must
// open it with: the compactor disabled, so cluster-pure segments are never
// merged behind the benchmark's back.
func (c OocoreCase) OpenOptions(dir string) store.Options {
	return store.Options{Dir: dir, Shards: 1, CompactBytes: 1}
}

// BuildStore writes the fixture into dir and leaves it cleanly closed with
// every cluster in its own sealed segment. Returns the decoded-size estimate
// of the full database in the segment cache's units (24 bytes per trace + 4
// per event) — the quantity cache budgets are expressed against.
func (c OocoreCase) BuildStore(dir string) (int64, error) {
	var decoded int64
	buf := make([]seqdb.EventID, 0, oocoreOps+3)
	for k := 0; k < c.Clusters; k++ {
		st, err := store.Open(c.OpenOptions(dir))
		if err != nil {
			return 0, err
		}
		// Interning the whole alphabet up front (first cycle only) keeps
		// event ids contiguous per cluster regardless of ingest order.
		base := c.EventBase(st.Dict(), k)
		if k == 0 {
			for j := 1; j < c.Clusters; j++ {
				c.EventBase(st.Dict(), j)
			}
		}
		ing, err := stream.Open(stream.Config{FlushBatch: 64, Store: st})
		if err != nil {
			st.Close()
			return 0, err
		}
		for i := 0; i < c.PerCluster; i++ {
			buf = c.trace(buf, base, i)
			id := fmt.Sprintf("c%d-%d", k, i)
			if err := ing.IngestIDs(id, buf...); err != nil {
				ing.Close()
				st.Close()
				return 0, err
			}
			if err := ing.CloseTrace(id); err != nil {
				ing.Close()
				st.Close()
				return 0, err
			}
			decoded += int64(24 + 4*len(buf))
		}
		if err := ing.Close(); err != nil {
			st.Close()
			return 0, err
		}
		if err := st.Close(); err != nil {
			return 0, err
		}
	}
	// One more open canonicalises the last cluster's WAL tail, and proves the
	// layout the benchmarks depend on actually materialised.
	st, err := store.Open(c.OpenOptions(dir))
	if err != nil {
		return 0, err
	}
	nsegs := len(st.Segments())
	if err := st.Close(); err != nil {
		return 0, err
	}
	if nsegs < c.Clusters {
		return 0, fmt.Errorf("oocore fixture: %d segments for %d clusters — cluster purity lost", nsegs, c.Clusters)
	}
	return decoded, nil
}

// SelectiveRules returns the cluster-0-only rule set: both premises are
// events no other cluster's segments contain, so statistics alone answer
// every other segment. This is the segment-skip workload.
func (c OocoreCase) SelectiveRules(db *core.Database) []core.Rule {
	base := c.EventBase(db.Dict, 0)
	return []core.Rule{
		core.EvaluateRule(db, seqdb.Pattern{base}, seqdb.Pattern{base + 2}),
		core.EvaluateRule(db, seqdb.Pattern{base}, seqdb.Pattern{base + 1}),
	}
}
