package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"specmine/internal/bench/baseline"
	"specmine/internal/iterpattern"
	"specmine/internal/rules"
)

func BenchmarkMineClosed(b *testing.B) {
	for _, c := range ClosedCases() {
		db := c.Gen()
		db.FlatIndex()
		db.Index()
		b.Run(c.Name+"/flat", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := iterpattern.MineClosed(db, c.Opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(c.Name+"/baseline", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := baseline.MineClosed(db, c.Opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkMineClosedWorkers(b *testing.B) {
	c := ClosedCases()[1]
	db := c.Gen()
	db.FlatIndex()
	for _, workers := range []int{1, 2, 4} {
		opts := c.Opts
		opts.Workers = workers
		b.Run(c.Name+"/workers="+string(rune('0'+workers)), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := iterpattern.MineClosed(db, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkMineRules(b *testing.B) {
	for _, c := range RuleCases() {
		db := c.Gen()
		db.FlatIndex()
		b.Run(c.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := rules.MineNonRedundant(db, c.Opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkBuildIndex(b *testing.B) {
	c := ClosedCases()[2]
	db := c.Gen()
	b.Run("flat", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = seqdbBuildFlat(db)
		}
	})
	b.Run("map", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = seqdbBuildMap(db)
		}
	})
}

// --- BENCH_mining.json trajectory ----------------------------------------

// trajectoryCase is one row of the checked-in benchmark trajectory.
type trajectoryCase struct {
	Name              string  `json:"name"`
	Sequences         int     `json:"sequences"`
	Alphabet          int     `json:"alphabet"`
	Density           string  `json:"density"`
	Patterns          int     `json:"patterns"`
	FlatNsPerOp       int64   `json:"flat_ns_per_op"`
	FlatAllocsPerOp   int64   `json:"flat_allocs_per_op"`
	FlatBytesPerOp    int64   `json:"flat_bytes_per_op"`
	BaseNsPerOp       int64   `json:"baseline_ns_per_op"`
	BaseAllocsPerOp   int64   `json:"baseline_allocs_per_op"`
	BaseBytesPerOp    int64   `json:"baseline_bytes_per_op"`
	Speedup           float64 `json:"speedup"`
	AllocReduction    float64 `json:"alloc_reduction"`
	BytesReduction    float64 `json:"bytes_reduction"`
	ParallelW4NsPerOp int64   `json:"parallel_w4_ns_per_op,omitempty"`
}

type trajectory struct {
	Schema     string           `json:"schema"`
	Generator  string           `json:"generator"`
	GoVersion  string           `json:"go_version"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	Cases      []trajectoryCase `json:"cases"`
}

// TestWriteBenchTrajectory regenerates BENCH_mining.json at the repository
// root. It is the authoritative producer of the checked-in file; run it with
//
//	SPECMINE_WRITE_BENCH=1 go test ./internal/bench -run TestWriteBenchTrajectory -v
//
// Without the environment variable the test is skipped, so routine test runs
// never rewrite the artifact (or pay the benchmarking cost).
func TestWriteBenchTrajectory(t *testing.T) {
	if os.Getenv("SPECMINE_WRITE_BENCH") == "" {
		t.Skip("set SPECMINE_WRITE_BENCH=1 to regenerate BENCH_mining.json")
	}
	out := trajectory{
		Schema:     "specmine/bench-mining/v1",
		Generator:  "SPECMINE_WRITE_BENCH=1 go test ./internal/bench -run TestWriteBenchTrajectory",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for i, c := range ClosedCases() {
		db := c.Gen()
		db.FlatIndex()
		db.Index()
		res, err := iterpattern.MineClosed(db, c.Opts)
		if err != nil {
			t.Fatal(err)
		}
		flat := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := iterpattern.MineClosed(db, c.Opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		base := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := baseline.MineClosed(db, c.Opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		tc := trajectoryCase{
			Name:            c.Name,
			Sequences:       c.Sequences,
			Alphabet:        c.Alphabet,
			Density:         c.Density,
			Patterns:        len(res.Patterns),
			FlatNsPerOp:     flat.NsPerOp(),
			FlatAllocsPerOp: flat.AllocsPerOp(),
			FlatBytesPerOp:  flat.AllocedBytesPerOp(),
			BaseNsPerOp:     base.NsPerOp(),
			BaseAllocsPerOp: base.AllocsPerOp(),
			BaseBytesPerOp:  base.AllocedBytesPerOp(),
			Speedup:         round2(float64(base.NsPerOp()) / float64(flat.NsPerOp())),
			AllocReduction:  round2(float64(base.AllocsPerOp()) / float64(flat.AllocsPerOp())),
			BytesReduction:  round2(float64(base.AllocedBytesPerOp()) / float64(flat.AllocedBytesPerOp())),
		}
		if i == 0 {
			opts := c.Opts
			opts.Workers = 4
			par := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := iterpattern.MineClosed(db, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
			tc.ParallelW4NsPerOp = par.NsPerOp()
		}
		out.Cases = append(out.Cases, tc)
		t.Logf("%s: speedup %.2fx, alloc reduction %.1fx", c.Name, tc.Speedup, tc.AllocReduction)
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("..", "..", "BENCH_mining.json")
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", path)
}

func round2(f float64) float64 { return float64(int64(f*100+0.5)) / 100 }
