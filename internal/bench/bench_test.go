package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"specmine/internal/bench/baseline"
	"specmine/internal/core"
	"specmine/internal/episode"
	"specmine/internal/iterpattern"
	"specmine/internal/plan"
	"specmine/internal/rules"
	"specmine/internal/seqdb"
	"specmine/internal/seqpattern"
	"specmine/internal/store"
	"specmine/internal/stream"
	"specmine/internal/verify"
)

func BenchmarkMineClosed(b *testing.B) {
	for _, c := range ClosedCases() {
		db := c.Gen()
		db.FlatIndex()
		if !c.SkipBaseline {
			db.Index()
		}
		b.Run(c.Name+"/flat", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := iterpattern.MineClosed(db, c.Opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		if c.SkipBaseline {
			continue
		}
		b.Run(c.Name+"/baseline", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := baseline.MineClosed(db, c.Opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMineClosedWorkers measures parallel scaling of the pattern miner
// on the cases marked Parallel. Interpret ns/op together with GOMAXPROCS
// (reported in the trajectory per row): on a single-processor runner the
// rows measure pool overhead, not speedup.
func BenchmarkMineClosedWorkers(b *testing.B) {
	for _, c := range ClosedCases() {
		if !c.Parallel {
			continue
		}
		db := c.Gen()
		db.FlatIndex()
		for _, workers := range ScalingWorkerCounts {
			opts := c.Opts
			opts.Workers = workers
			b.Run(fmt.Sprintf("%s/workers=%d", c.Name, workers), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := iterpattern.MineClosed(db, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkMineSeqPatterns compares the unified-kernel sequential-pattern
// miner against the seed's map-based PrefixSpan on the comparator matrix.
func BenchmarkMineSeqPatterns(b *testing.B) {
	for _, c := range SeqPatternCases() {
		db := c.Gen()
		db.FlatIndex()
		b.Run(c.Name+"/flat", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := seqpattern.Mine(db, c.Opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(c.Name+"/baseline", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := baseline.MineSeqPatterns(db, c.Opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMineSeqPatternsWorkers measures the comparator's worker scaling
// on the Parallel cases (workers 1/4).
func BenchmarkMineSeqPatternsWorkers(b *testing.B) {
	for _, c := range SeqPatternCases() {
		if !c.Parallel {
			continue
		}
		db := c.Gen()
		db.FlatIndex()
		for _, workers := range ComparatorWorkerCounts {
			opts := c.Opts
			opts.Workers = workers
			b.Run(fmt.Sprintf("%s/workers=%d", c.Name, workers), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := seqpattern.Mine(db, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkMineEpisodes compares the posting-driven episode miner against
// the seed's per-candidate window rescan on the comparator matrix.
func BenchmarkMineEpisodes(b *testing.B) {
	for _, c := range EpisodeCases() {
		db := c.Gen()
		db.FlatIndex()
		b.Run(c.Name+"/flat", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := episode.MineDatabase(db, c.Opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(c.Name+"/baseline", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := baseline.MineEpisodeDatabase(db, c.Opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMineEpisodesWorkers measures episode-mining worker scaling on the
// Parallel cases (workers 1/4).
func BenchmarkMineEpisodesWorkers(b *testing.B) {
	for _, c := range EpisodeCases() {
		if !c.Parallel {
			continue
		}
		db := c.Gen()
		db.FlatIndex()
		for _, workers := range ComparatorWorkerCounts {
			opts := c.Opts
			opts.Workers = workers
			b.Run(fmt.Sprintf("%s/workers=%d", c.Name, workers), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := episode.MineDatabase(db, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkMineRules(b *testing.B) {
	for _, c := range RuleCases() {
		db := c.Gen()
		db.FlatIndex()
		b.Run(c.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := rules.MineNonRedundant(db, c.Opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMineRulesWorkers measures parallel scaling of the rule miner —
// premise enumeration and consequent mining both fan out — on the cases
// marked Parallel.
func BenchmarkMineRulesWorkers(b *testing.B) {
	for _, c := range RuleCases() {
		if !c.Parallel {
			continue
		}
		db := c.Gen()
		db.FlatIndex()
		for _, workers := range ScalingWorkerCounts {
			opts := c.Opts
			opts.Workers = workers
			b.Run(fmt.Sprintf("%s/workers=%d", c.Name, workers), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := rules.MineNonRedundant(db, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkVerify compares the batched conformance engine against the
// per-rule rescan on the serving-path scenario: a fixed mined rule set
// checked against a fresh trace batch.
func BenchmarkVerify(b *testing.B) {
	for _, c := range VerifyCases() {
		ruleSet, db := c.Gen()
		if len(ruleSet) == 0 {
			b.Fatalf("%s: no rules mined", c.Name)
		}
		engine, err := verify.NewEngine(ruleSet)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("%s/rules=%d/batched", c.Name, len(ruleSet)), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = engine.Check(db)
			}
		})
		b.Run(fmt.Sprintf("%s/rules=%d/per-rule", c.Name, len(ruleSet)), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, r := range ruleSet {
					if _, err := verify.CheckRule(db, r); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

func BenchmarkBuildIndex(b *testing.B) {
	c := ClosedCases()[2]
	db := c.Gen()
	b.Run("flat", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = seqdbBuildFlat(db)
		}
	})
	b.Run("map", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = seqdbBuildMap(db)
		}
	})
}

// BenchmarkPlannedCheck prices the stats-driven planner against the online
// automaton on the clustered oocore fixture's eager database: the selective
// rule set touches one cluster of 24, so the planned path answers almost
// every (rule, trace) pair from a single presence probe.
func BenchmarkPlannedCheck(b *testing.B) {
	for _, c := range OocoreCases() {
		dir := b.TempDir()
		if _, err := c.BuildStore(dir); err != nil {
			b.Fatal(err)
		}
		st, err := store.Open(c.OpenOptions(dir))
		if err != nil {
			b.Fatal(err)
		}
		db := st.Recovered().Database(st.Dict())
		db.FlatIndex()
		selective := c.SelectiveRules(db)
		if err := st.Close(); err != nil {
			b.Fatal(err)
		}
		engine, err := verify.NewEngine(selective)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(c.Name+"/unplanned", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = engine.Check(db)
			}
		})
		pl := plan.New(engine, plan.IndexStats{Idx: db.FlatIndex()})
		b.Run(c.Name+"/planned", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, _ = pl.CheckDatabase(db)
			}
		})
	}
}

// --- BENCH_mining.json trajectory (schema v8) ------------------------------

// scalingRow is one point of a worker-scaling curve. GOMAXPROCS and the
// machine's processor count are recorded per row — a parallel ns/op is
// meaningless without knowing how many processors the pool actually had. The
// v5 file recorded every parallel row at gomaxprocs 1 (identical ns/op for
// workers 2/4/8, measuring only pool overhead); v6 raises GOMAXPROCS to at
// least the worker count for every row and the writer refuses to emit a
// parallel row where it could not. Speedup is relative to the curve's
// 1-worker row; num_cpu reports the physical truth, so a curve measured on a
// single-core box is recognisable as overhead-only rather than mistaken for
// scaling.
type scalingRow struct {
	Workers    int     `json:"workers"`
	NsPerOp    int64   `json:"ns_per_op"`
	Gomaxprocs int     `json:"gomaxprocs"`
	NumCPU     int     `json:"num_cpu"`
	Speedup    float64 `json:"speedup,omitempty"`
}

// scalingCurve measures one case across worker counts, raising GOMAXPROCS to
// max(NumCPU, workers) for the duration of each measurement (and restoring
// it), so every recorded row satisfies gomaxprocs >= workers. bench runs the
// case body at the given worker count for b.N iterations.
func scalingCurve(t *testing.T, counts []int, bench func(workers int, b *testing.B)) []scalingRow {
	t.Helper()
	rows := make([]scalingRow, 0, len(counts))
	var base int64
	for _, w := range counts {
		procs := runtime.NumCPU()
		if procs < w {
			procs = w
		}
		prev := runtime.GOMAXPROCS(procs)
		res := benchOnce(func(b *testing.B) { bench(w, b) })
		runtime.GOMAXPROCS(prev)
		row := scalingRow{Workers: w, NsPerOp: res.NsPerOp(), Gomaxprocs: procs, NumCPU: runtime.NumCPU()}
		if w > 1 && row.Gomaxprocs < w {
			// The writer's refusal contract: a parallel row measured with
			// fewer processors than workers is the v5 lie all over again.
			t.Fatalf("refusing to record workers=%d scaling row at gomaxprocs=%d", w, row.Gomaxprocs)
		}
		if w == 1 {
			base = row.NsPerOp
		} else if base > 0 {
			row.Speedup = round2(float64(base) / float64(row.NsPerOp))
		}
		rows = append(rows, row)
	}
	return rows
}

// trajectoryCase is one closed-mining row of the checked-in trajectory.
type trajectoryCase struct {
	Name            string       `json:"name"`
	Sequences       int          `json:"sequences"`
	Alphabet        int          `json:"alphabet"`
	Density         string       `json:"density"`
	Patterns        int          `json:"patterns"`
	FlatNsPerOp     int64        `json:"flat_ns_per_op"`
	FlatAllocsPerOp int64        `json:"flat_allocs_per_op"`
	FlatBytesPerOp  int64        `json:"flat_bytes_per_op"`
	BaseNsPerOp     int64        `json:"baseline_ns_per_op,omitempty"`
	BaseAllocsPerOp int64        `json:"baseline_allocs_per_op,omitempty"`
	BaseBytesPerOp  int64        `json:"baseline_bytes_per_op,omitempty"`
	Speedup         float64      `json:"speedup,omitempty"`
	AllocReduction  float64      `json:"alloc_reduction,omitempty"`
	BytesReduction  float64      `json:"bytes_reduction,omitempty"`
	Scaling         []scalingRow `json:"scaling,omitempty"`
}

// comparatorTrajectoryCase is one comparator-miner (seqpattern / episode)
// row: unified-kernel numbers against the retained seed implementation.
type comparatorTrajectoryCase struct {
	Name            string       `json:"name"`
	Results         int          `json:"results"`
	FlatNsPerOp     int64        `json:"flat_ns_per_op"`
	FlatAllocsPerOp int64        `json:"flat_allocs_per_op"`
	FlatBytesPerOp  int64        `json:"flat_bytes_per_op"`
	BaseNsPerOp     int64        `json:"baseline_ns_per_op"`
	BaseAllocsPerOp int64        `json:"baseline_allocs_per_op"`
	BaseBytesPerOp  int64        `json:"baseline_bytes_per_op"`
	Speedup         float64      `json:"speedup"`
	Scaling         []scalingRow `json:"scaling,omitempty"`
}

// ruleTrajectoryCase is one rule-mining row.
type ruleTrajectoryCase struct {
	Name        string       `json:"name"`
	Rules       int          `json:"rules"`
	NsPerOp     int64        `json:"ns_per_op"`
	AllocsPerOp int64        `json:"allocs_per_op"`
	BytesPerOp  int64        `json:"bytes_per_op"`
	Scaling     []scalingRow `json:"scaling,omitempty"`
}

// verifyTrajectoryCase is one batched-verification row. Since the online
// overhaul the batched engine drives the per-event checker, so the row also
// records the per-event view of the same work (events/sec and allocations
// per event through a reused Checker).
type verifyTrajectoryCase struct {
	Name               string  `json:"name"`
	Rules              int     `json:"rules"`
	Traces             int     `json:"traces"`
	Events             int     `json:"events"`
	BatchedNsPerOp     int64   `json:"batched_ns_per_op"`
	BatchedAllocsPerOp int64   `json:"batched_allocs_per_op"`
	PerRuleNsPerOp     int64   `json:"per_rule_ns_per_op"`
	PerRuleAllocsPerOp int64   `json:"per_rule_allocs_per_op"`
	Speedup            float64 `json:"speedup"`
	OnlineEventsPerSec float64 `json:"online_events_per_sec"`
	OnlineAllocsPerEvt float64 `json:"online_allocs_per_event"`
}

// streamTrajectoryCase is one streaming-ingestion row: a chunked trace
// stream pushed through the sharded ingester (sealing, online checking when
// configured, incremental index flushes, final snapshot).
type streamTrajectoryCase struct {
	Name           string  `json:"name"`
	Shards         int     `json:"shards"`
	Traces         int     `json:"traces"`
	Events         int     `json:"events"`
	Checked        bool    `json:"checked"`
	NsPerOp        int64   `json:"ns_per_op"`
	EventsPerSec   float64 `json:"events_per_sec"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	BytesPerOp     int64   `json:"bytes_per_op"`
}

// storeTrajectoryCase is one durable-ingestion row (schema v5): the same
// chunk stream through the store-backed ingester and the memory-only one,
// the throughput ratio between them (the acceptance bar is >= 0.25), a cold
// recovery rate, and the store's on-disk footprint after a clean close.
type storeTrajectoryCase struct {
	Name                string  `json:"name"`
	Shards              int     `json:"shards"`
	Traces              int     `json:"traces"`
	Events              int     `json:"events"`
	DurableNsPerOp      int64   `json:"durable_ns_per_op"`
	DurableEventsPerSec float64 `json:"durable_events_per_sec"`
	MemoryNsPerOp       int64   `json:"memory_ns_per_op"`
	MemoryEventsPerSec  float64 `json:"memory_events_per_sec"`
	DurableVsMemory     float64 `json:"durable_vs_memory"`
	RecoverNsPerOp      int64   `json:"recover_ns_per_op"`
	RecoverEventsPerSec float64 `json:"recover_events_per_sec"`
	WALBytes            int64   `json:"wal_bytes"`
	SegmentBytes        int64   `json:"segment_bytes"`
	Segments            int     `json:"segments"`
}

// oocoreTrajectoryCase is one out-of-core row (schema v7): the clustered
// fixture of internal/bench/oocore.go mined through the pin-and-evict
// segment cache at one cache budget, against the in-memory cold path (eager
// open + index + mine) on the same store. Three rows per fixture sweep the
// budget — a quarter of the decoded size, half of it, and unlimited — so the
// trajectory records how the ratio degrades as the cache tightens.
// SelectiveSkipRate is the fraction of segment bodies the cluster-0 rule
// check never decoded (benchguard's segment-skip floor asserts ≥ 0.9 live);
// the cache counters come from one instrumented full-sweep mining run.
type oocoreTrajectoryCase struct {
	Name              string  `json:"name"`
	Clusters          int     `json:"clusters"`
	Traces            int     `json:"traces"`
	Segments          int     `json:"segments"`
	DecodedBytes      int64   `json:"decoded_bytes"`
	CacheBytes        int64   `json:"cache_bytes"` // 0 = unlimited
	InMemoryNsPerOp   int64   `json:"inmemory_ns_per_op"`
	OocoreNsPerOp     int64   `json:"oocore_ns_per_op"`
	OocoreVsInMemory  float64 `json:"oocore_vs_inmemory"`
	CheckNsPerOp      int64   `json:"check_ns_per_op"`
	SelectiveSkipRate float64 `json:"selective_skip_rate"`
	BodiesOpened      int64   `json:"bodies_opened"`
	CacheEvictions    int64   `json:"cache_evictions"`
	PeakCacheBytes    int64   `json:"peak_cache_bytes"`
}

// plannerTrajectoryCase is one stats-driven planner row (schema v8): the
// selective cluster-0 rule set of the oocore fixture checked through the
// planned path (selectivity-ordered descent, premise gating, consequent
// short-circuiting) against the unplanned online automaton over the same
// eager database, plus one predicated CheckStoreWhere sweep that pushes the
// cluster-0 predicate into the segment catalog. The gate counters come from
// one instrumented planned run; benchguard's planner floor asserts the
// speedup live rather than trusting this row.
type plannerTrajectoryCase struct {
	Name              string  `json:"name"`
	Rules             int     `json:"rules"`
	Traces            int     `json:"traces"`
	UnplannedNsPerOp  int64   `json:"unplanned_ns_per_op"`
	PlannedNsPerOp    int64   `json:"planned_ns_per_op"`
	Speedup           float64 `json:"speedup"`
	TracesSkipped     int64   `json:"traces_skipped"`
	RuleTraceGates    int64   `json:"rule_trace_gates"`
	ShortCircuits     int64   `json:"consequent_short_circuits"`
	GatesPerTrace     float64 `json:"gates_per_trace"`
	CheckWhereNsPerOp int64   `json:"checkwhere_ns_per_op"`
	SegmentsPruned    int     `json:"segments_pruned"`
	SegmentsTotal     int     `json:"segments_total"`
}

type trajectory struct {
	Schema          string                     `json:"schema"`
	Generator       string                     `json:"generator"`
	GoVersion       string                     `json:"go_version"`
	NumCPU          int                        `json:"num_cpu"`
	Gomaxprocs      int                        `json:"gomaxprocs"`
	Cases           []trajectoryCase           `json:"cases"`
	SeqPatternCases []comparatorTrajectoryCase `json:"seqpattern_cases"`
	EpisodeCases    []comparatorTrajectoryCase `json:"episode_cases"`
	RuleCases       []ruleTrajectoryCase       `json:"rule_cases"`
	VerifyCases     []verifyTrajectoryCase     `json:"verify_cases"`
	StreamCases     []streamTrajectoryCase     `json:"stream_cases"`
	StoreCases      []storeTrajectoryCase      `json:"store_cases"`
	OocoreCases     []oocoreTrajectoryCase     `json:"oocore_cases"`
	PlannerCases    []plannerTrajectoryCase    `json:"planner_cases"`
}

// benchOnce measures one case best-of-3: a single testing.Benchmark sample
// on a virtualised runner can land 2x off its steady-state value (observed
// on the verify rows of the v4->v5 regeneration), and the checked-in
// trajectory both documents performance and feeds benchguard's regression
// budget — a noise-inflated baseline would quietly loosen the gate.
func benchOnce(f func(b *testing.B)) testing.BenchmarkResult {
	var best testing.BenchmarkResult
	for i := 0; i < 3; i++ {
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			f(b)
		})
		if i == 0 || res.NsPerOp() < best.NsPerOp() {
			best = res
		}
	}
	return best
}

// TestWriteBenchTrajectory regenerates BENCH_mining.json at the repository
// root. It is the authoritative producer of the checked-in file; run it with
//
//	SPECMINE_WRITE_BENCH=1 go test ./internal/bench -run TestWriteBenchTrajectory -v -timeout 30m
//
// Without the environment variable the test is skipped, so routine test runs
// never rewrite the artifact (or pay the benchmarking cost).
func TestWriteBenchTrajectory(t *testing.T) {
	if os.Getenv("SPECMINE_WRITE_BENCH") == "" {
		t.Skip("set SPECMINE_WRITE_BENCH=1 to regenerate BENCH_mining.json")
	}
	out := trajectory{
		Schema:     "specmine/bench-mining/v8",
		Generator:  "SPECMINE_WRITE_BENCH=1 go test ./internal/bench -run TestWriteBenchTrajectory",
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		Gomaxprocs: runtime.GOMAXPROCS(0),
	}
	for _, c := range ClosedCases() {
		db := c.Gen()
		db.FlatIndex()
		res, err := iterpattern.MineClosed(db, c.Opts)
		if err != nil {
			t.Fatal(err)
		}
		flat := benchOnce(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := iterpattern.MineClosed(db, c.Opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		tc := trajectoryCase{
			Name:            c.Name,
			Sequences:       c.Sequences,
			Alphabet:        c.Alphabet,
			Density:         c.Density,
			Patterns:        len(res.Patterns),
			FlatNsPerOp:     flat.NsPerOp(),
			FlatAllocsPerOp: flat.AllocsPerOp(),
			FlatBytesPerOp:  flat.AllocedBytesPerOp(),
		}
		if !c.SkipBaseline {
			db.Index()
			base := benchOnce(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := baseline.MineClosed(db, c.Opts); err != nil {
						b.Fatal(err)
					}
				}
			})
			tc.BaseNsPerOp = base.NsPerOp()
			tc.BaseAllocsPerOp = base.AllocsPerOp()
			tc.BaseBytesPerOp = base.AllocedBytesPerOp()
			tc.Speedup = round2(float64(base.NsPerOp()) / float64(flat.NsPerOp()))
			tc.AllocReduction = round2(float64(base.AllocsPerOp()) / float64(flat.AllocsPerOp()))
			tc.BytesReduction = round2(float64(base.AllocedBytesPerOp()) / float64(flat.AllocedBytesPerOp()))
		}
		if c.Parallel {
			tc.Scaling = scalingCurve(t, ScalingWorkerCounts, func(workers int, b *testing.B) {
				opts := c.Opts
				opts.Workers = workers
				for i := 0; i < b.N; i++ {
					if _, err := iterpattern.MineClosed(db, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		out.Cases = append(out.Cases, tc)
		t.Logf("%s: flat %v ns/op (%d allocs), speedup %.2fx", c.Name, tc.FlatNsPerOp, tc.FlatAllocsPerOp, tc.Speedup)
	}

	for _, c := range SeqPatternCases() {
		db := c.Gen()
		db.FlatIndex()
		res, err := seqpattern.Mine(db, c.Opts)
		if err != nil {
			t.Fatal(err)
		}
		flat := benchOnce(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := seqpattern.Mine(db, c.Opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		base := benchOnce(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := baseline.MineSeqPatterns(db, c.Opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		tc := comparatorTrajectoryCase{
			Name:            c.Name,
			Results:         len(res.Patterns),
			FlatNsPerOp:     flat.NsPerOp(),
			FlatAllocsPerOp: flat.AllocsPerOp(),
			FlatBytesPerOp:  flat.AllocedBytesPerOp(),
			BaseNsPerOp:     base.NsPerOp(),
			BaseAllocsPerOp: base.AllocsPerOp(),
			BaseBytesPerOp:  base.AllocedBytesPerOp(),
			Speedup:         round2(float64(base.NsPerOp()) / float64(flat.NsPerOp())),
		}
		if c.Parallel {
			tc.Scaling = scalingCurve(t, ComparatorWorkerCounts, func(workers int, b *testing.B) {
				opts := c.Opts
				opts.Workers = workers
				for i := 0; i < b.N; i++ {
					if _, err := seqpattern.Mine(db, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		out.SeqPatternCases = append(out.SeqPatternCases, tc)
		t.Logf("%s: flat %v ns/op vs seed %v ns/op (%.2fx), %d patterns",
			c.Name, tc.FlatNsPerOp, tc.BaseNsPerOp, tc.Speedup, tc.Results)
	}

	for _, c := range EpisodeCases() {
		db := c.Gen()
		db.FlatIndex()
		res, err := episode.MineDatabase(db, c.Opts)
		if err != nil {
			t.Fatal(err)
		}
		flat := benchOnce(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := episode.MineDatabase(db, c.Opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		base := benchOnce(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := baseline.MineEpisodeDatabase(db, c.Opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		tc := comparatorTrajectoryCase{
			Name:            c.Name,
			Results:         len(res.Episodes),
			FlatNsPerOp:     flat.NsPerOp(),
			FlatAllocsPerOp: flat.AllocsPerOp(),
			FlatBytesPerOp:  flat.AllocedBytesPerOp(),
			BaseNsPerOp:     base.NsPerOp(),
			BaseAllocsPerOp: base.AllocsPerOp(),
			BaseBytesPerOp:  base.AllocedBytesPerOp(),
			Speedup:         round2(float64(base.NsPerOp()) / float64(flat.NsPerOp())),
		}
		if c.Parallel {
			tc.Scaling = scalingCurve(t, ComparatorWorkerCounts, func(workers int, b *testing.B) {
				opts := c.Opts
				opts.Workers = workers
				for i := 0; i < b.N; i++ {
					if _, err := episode.MineDatabase(db, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		out.EpisodeCases = append(out.EpisodeCases, tc)
		t.Logf("%s: flat %v ns/op vs seed %v ns/op (%.2fx), %d episodes",
			c.Name, tc.FlatNsPerOp, tc.BaseNsPerOp, tc.Speedup, tc.Results)
	}

	for _, c := range RuleCases() {
		db := c.Gen()
		db.FlatIndex()
		res, err := rules.MineNonRedundant(db, c.Opts)
		if err != nil {
			t.Fatal(err)
		}
		run := benchOnce(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := rules.MineNonRedundant(db, c.Opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		rc := ruleTrajectoryCase{
			Name:        c.Name,
			Rules:       len(res.Rules),
			NsPerOp:     run.NsPerOp(),
			AllocsPerOp: run.AllocsPerOp(),
			BytesPerOp:  run.AllocedBytesPerOp(),
		}
		if c.Parallel {
			rc.Scaling = scalingCurve(t, ScalingWorkerCounts, func(workers int, b *testing.B) {
				opts := c.Opts
				opts.Workers = workers
				for i := 0; i < b.N; i++ {
					if _, err := rules.MineNonRedundant(db, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		out.RuleCases = append(out.RuleCases, rc)
		t.Logf("%s: %v ns/op, %d rules", c.Name, rc.NsPerOp, rc.Rules)
	}

	for _, c := range VerifyCases() {
		ruleSet, db := c.Gen()
		if len(ruleSet) == 0 {
			t.Fatalf("%s: no rules mined", c.Name)
		}
		engine, err := verify.NewEngine(ruleSet)
		if err != nil {
			t.Fatal(err)
		}
		batched := benchOnce(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = engine.Check(db)
			}
		})
		perRule := benchOnce(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, r := range ruleSet {
					if _, err := verify.CheckRule(db, r); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		events := db.NumEvents()
		checker := engine.NewChecker()
		online := benchOnce(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				reports := engine.NewReports()
				for si, s := range db.Sequences {
					for _, ev := range s {
						checker.Advance(ev)
					}
					checker.Close(si, reports)
				}
			}
		})
		vc := verifyTrajectoryCase{
			Name:               c.Name,
			Rules:              len(ruleSet),
			Traces:             db.NumSequences(),
			Events:             events,
			BatchedNsPerOp:     batched.NsPerOp(),
			BatchedAllocsPerOp: batched.AllocsPerOp(),
			PerRuleNsPerOp:     perRule.NsPerOp(),
			PerRuleAllocsPerOp: perRule.AllocsPerOp(),
			Speedup:            round2(float64(perRule.NsPerOp()) / float64(batched.NsPerOp())),
			OnlineEventsPerSec: round2(float64(events) * 1e9 / float64(online.NsPerOp())),
			OnlineAllocsPerEvt: round2(float64(online.AllocsPerOp()) / float64(events)),
		}
		out.VerifyCases = append(out.VerifyCases, vc)
		t.Logf("%s: batched %v ns/op vs per-rule %v ns/op (%.2fx), online %.0f events/sec",
			c.Name, vc.BatchedNsPerOp, vc.PerRuleNsPerOp, vc.Speedup, vc.OnlineEventsPerSec)
	}

	for _, c := range StreamCases() {
		dict, ops, engine, events := c.GenStream()
		run := benchOnce(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ing := stream.NewIngester(stream.Config{
					Shards: c.Shards, FlushBatch: c.FlushBatch, Dict: dict, Engine: engine,
				})
				for _, op := range ops {
					if op.Seal {
						if err := ing.CloseTrace(op.TraceID); err != nil {
							b.Fatal(err)
						}
					} else if err := ing.IngestIDs(op.TraceID, op.Events...); err != nil {
						b.Fatal(err)
					}
				}
				if _, err := ing.Snapshot(); err != nil {
					b.Fatal(err)
				}
				if err := ing.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
		sc := streamTrajectoryCase{
			Name:           c.Name,
			Shards:         c.Shards,
			Traces:         c.Traces,
			Events:         events,
			Checked:        c.Checked,
			NsPerOp:        run.NsPerOp(),
			EventsPerSec:   round2(float64(events) * 1e9 / float64(run.NsPerOp())),
			AllocsPerEvent: round2(float64(run.AllocsPerOp()) / float64(events)),
			BytesPerOp:     run.AllocedBytesPerOp(),
		}
		out.StreamCases = append(out.StreamCases, sc)
		t.Logf("%s: %v ns/op, %.0f events/sec, %.2f allocs/event", c.Name, sc.NsPerOp, sc.EventsPerSec, sc.AllocsPerEvent)
	}

	for _, c := range StoreCases() {
		dict, ops, _, events := c.GenStream()
		durable := benchOnce(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				dir, err := os.MkdirTemp("", "specmine-traj-store-*")
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if err := replayDurable(dir, c, dict, ops); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				os.RemoveAll(dir)
				b.StartTimer()
			}
		})
		memory := benchOnce(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := replayMemory(c, dict, ops); err != nil {
					b.Fatal(err)
				}
			}
		})
		// A persistent replay backs the recovery measurement and the on-disk
		// footprint. Measure the footprint first: each benchmarked Open
		// canonicalises and compacts, and the recorded numbers must describe
		// the store as a clean close left it.
		recDir := filepath.Join(t.TempDir(), "traj-recover-"+c.Name)
		if err := replayDurable(recDir, c, dict, ops); err != nil {
			t.Fatal(err)
		}
		walBytes, segBytes, segments, err := storeFootprint(recDir)
		if err != nil {
			t.Fatal(err)
		}
		recov := benchOnce(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st, err := store.Open(store.Options{Dir: recDir})
				if err != nil {
					b.Fatal(err)
				}
				db := st.Recovered().Database(st.Dict())
				db.FlatIndex()
				if err := st.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
		sc := storeTrajectoryCase{
			Name:                c.Name,
			Shards:              c.Shards,
			Traces:              c.Traces,
			Events:              events,
			DurableNsPerOp:      durable.NsPerOp(),
			DurableEventsPerSec: round2(float64(events) * 1e9 / float64(durable.NsPerOp())),
			MemoryNsPerOp:       memory.NsPerOp(),
			MemoryEventsPerSec:  round2(float64(events) * 1e9 / float64(memory.NsPerOp())),
			DurableVsMemory:     round2(float64(memory.NsPerOp()) / float64(durable.NsPerOp())),
			RecoverNsPerOp:      recov.NsPerOp(),
			RecoverEventsPerSec: round2(float64(events) * 1e9 / float64(recov.NsPerOp())),
			WALBytes:            walBytes,
			SegmentBytes:        segBytes,
			Segments:            segments,
		}
		out.StoreCases = append(out.StoreCases, sc)
		t.Logf("%s: durable %.0f events/sec (%.2fx of memory), recover %.0f events/sec, %d segments / %d KiB",
			c.Name, sc.DurableEventsPerSec, sc.DurableVsMemory, sc.RecoverEventsPerSec, sc.Segments, (walBytes+segBytes)>>10)
	}

	for _, c := range OocoreCases() {
		dir := t.TempDir()
		decoded, err := c.BuildStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		eager, err := store.Open(c.OpenOptions(dir))
		if err != nil {
			t.Fatal(err)
		}
		db := eager.Recovered().Database(eager.Dict())
		db.FlatIndex()
		popts := core.PatternOptions{MinSupport: c.MinSupport(), MaxLength: 3}
		ref, err := core.MinePatterns(db, popts)
		if err != nil {
			t.Fatal(err)
		}
		selective := c.SelectiveRules(db)
		traces := db.NumSequences()
		if err := eager.Close(); err != nil {
			t.Fatal(err)
		}

		// The in-memory side is the cold path a caller actually pays to mine
		// a durable store in memory: eager open (decode every segment), build
		// the index, mine, close. Measured once — the budget sweep below only
		// varies the out-of-core side.
		inmem := benchOnce(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st, err := store.Open(c.OpenOptions(dir))
				if err != nil {
					b.Fatal(err)
				}
				mdb := st.Recovered().Database(st.Dict())
				mdb.FlatIndex()
				if _, err := core.MinePatterns(mdb, popts); err != nil {
					b.Fatal(err)
				}
				if err := st.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})

		lazyOpts := c.OpenOptions(dir)
		lazyOpts.OutOfCore = true
		lazy, err := store.Open(lazyOpts)
		if err != nil {
			t.Fatal(err)
		}
		budgets := []struct {
			label string
			bytes int64
		}{
			{"quarter", decoded / 4},
			{"half", decoded / 2},
			{"unlimited", 0},
		}
		for _, bd := range budgets {
			oo := core.OutOfCoreOptions{CacheBytes: bd.bytes}
			res, mstats, err := core.MineStore(lazy, popts, oo)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Patterns) != len(ref.Patterns) {
				t.Fatalf("%s/%s: MineStore found %d patterns, in-memory %d",
					c.Name, bd.label, len(res.Patterns), len(ref.Patterns))
			}
			mine := benchOnce(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := core.MineStore(lazy, popts, oo); err != nil {
						b.Fatal(err)
					}
				}
			})
			_, cstats, err := core.CheckStore(lazy, selective, oo)
			if err != nil {
				t.Fatal(err)
			}
			check := benchOnce(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := core.CheckStore(lazy, selective, oo); err != nil {
						b.Fatal(err)
					}
				}
			})
			oc := oocoreTrajectoryCase{
				Name:              c.Name + "/budget=" + bd.label,
				Clusters:          c.Clusters,
				Traces:            traces,
				Segments:          mstats.SegmentsTotal,
				DecodedBytes:      decoded,
				CacheBytes:        bd.bytes,
				InMemoryNsPerOp:   inmem.NsPerOp(),
				OocoreNsPerOp:     mine.NsPerOp(),
				OocoreVsInMemory:  round2(float64(inmem.NsPerOp()) / float64(mine.NsPerOp())),
				CheckNsPerOp:      check.NsPerOp(),
				SelectiveSkipRate: round2(float64(cstats.SegmentsSkipped) / float64(cstats.SegmentsTotal)),
				BodiesOpened:      mstats.BodiesOpened,
				CacheEvictions:    mstats.CacheEvictions,
				PeakCacheBytes:    mstats.PeakCacheBytes,
			}
			out.OocoreCases = append(out.OocoreCases, oc)
			t.Logf("%s: oocore %v ns/op vs in-memory %v ns/op (%.2fx), skip %.2f, %d bodies opened",
				oc.Name, oc.OocoreNsPerOp, oc.InMemoryNsPerOp, oc.OocoreVsInMemory, oc.SelectiveSkipRate, oc.BodiesOpened)
		}

		// Planner rows: the same selective rule set through the unplanned
		// online automaton and the planned, statistics-gated descent over the
		// eager database, then a predicated CheckStoreWhere sweep over the
		// lazy store. The planned path must win on this fixture — every
		// foreign cluster's (rule, trace) pairs gate on the first probe.
		engine, err := verify.NewEngine(selective)
		if err != nil {
			t.Fatal(err)
		}
		unplanned := benchOnce(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = engine.Check(db)
			}
		})
		pl := plan.New(engine, plan.IndexStats{Idx: db.FlatIndex()})
		planned := benchOnce(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _ = pl.CheckDatabase(db)
			}
		})
		_, run := pl.CheckDatabase(db)
		where := core.Where{HasAll: []seqdb.EventID{c.EventBase(db.Dict, 0)}}
		_, _, ex, err := core.CheckStoreWhere(lazy, selective, where, core.OutOfCoreOptions{})
		if err != nil {
			t.Fatal(err)
		}
		checkWhere := benchOnce(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, _, err := core.CheckStoreWhere(lazy, selective, where, core.OutOfCoreOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		pc := plannerTrajectoryCase{
			Name:              c.Name + "/selective",
			Rules:             len(selective),
			Traces:            traces,
			UnplannedNsPerOp:  unplanned.NsPerOp(),
			PlannedNsPerOp:    planned.NsPerOp(),
			Speedup:           round2(float64(unplanned.NsPerOp()) / float64(planned.NsPerOp())),
			TracesSkipped:     run.Metrics.TracesSkipped,
			RuleTraceGates:    run.Metrics.RuleTraceGates,
			ShortCircuits:     run.Metrics.ConsequentShortCircuits,
			GatesPerTrace:     round2(float64(run.Metrics.RuleTraceGates) / float64(traces)),
			CheckWhereNsPerOp: checkWhere.NsPerOp(),
			SegmentsPruned:    ex.SegmentsPruned,
			SegmentsTotal:     ex.SegmentsTotal,
		}
		out.PlannerCases = append(out.PlannerCases, pc)
		t.Logf("%s: planned %v ns/op vs unplanned %v ns/op (%.2fx), %d gates, CheckWhere %v ns/op pruning %d/%d segments",
			pc.Name, pc.PlannedNsPerOp, pc.UnplannedNsPerOp, pc.Speedup, pc.RuleTraceGates, pc.CheckWhereNsPerOp, pc.SegmentsPruned, pc.SegmentsTotal)

		if err := lazy.Close(); err != nil {
			t.Fatal(err)
		}
	}

	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("..", "..", "BENCH_mining.json")
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", path)
}

func round2(f float64) float64 { return float64(int64(f*100+0.5)) / 100 }
